package graphblas_test

// Delegation coverage: every thin wrapper in operations.go is exercised with
// a minimal semantic check, so an argument-order mistake in the facade would
// fail here even though the core package has its own deep tests.

import (
	"testing"

	"graphblas"
)

func mat(t *testing.T, nr, nc int, is, js []int, vs []float64) *graphblas.Matrix[float64] {
	t.Helper()
	m, err := graphblas.NewMatrix[float64](nr, nc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(is, js, vs, graphblas.NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	return m
}

func vec(t *testing.T, n int, is []int, vs []float64) *graphblas.Vector[float64] {
	t.Helper()
	v, err := graphblas.NewVector[float64](n)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(is, vs, graphblas.NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	return v
}

func matHas(t *testing.T, m *graphblas.Matrix[float64], i, j int, want float64, label string) {
	t.Helper()
	v, err := m.ExtractElement(i, j)
	if err != nil || v != want {
		t.Fatalf("%s: (%d,%d) got %v (%v) want %v", label, i, j, v, err, want)
	}
}

func vecHas(t *testing.T, v *graphblas.Vector[float64], i int, want float64, label string) {
	t.Helper()
	x, err := v.ExtractElement(i)
	if err != nil || x != want {
		t.Fatalf("%s: (%d) got %v (%v) want %v", label, i, x, err, want)
	}
}

func TestFacadeDelegation(t *testing.T) {
	pt := graphblas.PlusTimes[float64]()
	na := graphblas.NoAccum[float64]()

	t.Run("MxM", func(t *testing.T) {
		a := mat(t, 2, 2, []int{0, 1}, []int{1, 0}, []float64{2, 3})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		if err := graphblas.MxM(c, graphblas.NoMask, na, pt, a, a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 6, "MxM")
	})
	t.Run("MxV", func(t *testing.T) {
		a := mat(t, 2, 3, []int{0, 1}, []int{2, 0}, []float64{5, 7})
		u := vec(t, 3, []int{0, 2}, []float64{10, 100})
		w, _ := graphblas.NewVector[float64](2)
		if err := graphblas.MxV(w, graphblas.NoMaskV, na, pt, a, u, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 0, 500, "MxV")
		vecHas(t, w, 1, 70, "MxV")
	})
	t.Run("VxM", func(t *testing.T) {
		a := mat(t, 2, 3, []int{0, 1}, []int{2, 0}, []float64{5, 7})
		u := vec(t, 2, []int{0}, []float64{4})
		w, _ := graphblas.NewVector[float64](3)
		if err := graphblas.VxM(w, graphblas.NoMaskV, na, pt, u, a, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 20, "VxM")
	})
	t.Run("EWiseAddM and monoid form", func(t *testing.T) {
		a := mat(t, 2, 2, []int{0}, []int{0}, []float64{1})
		b := mat(t, 2, 2, []int{0, 1}, []int{0, 1}, []float64{2, 5})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		if err := graphblas.EWiseAddM(c, graphblas.NoMask, na, graphblas.Plus[float64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 3, "EWiseAddM")
		matHas(t, c, 1, 1, 5, "EWiseAddM")
		if err := graphblas.EWiseAddMonoidM(c, graphblas.NoMask, na, graphblas.PlusMonoid[float64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 3, "EWiseAddMonoidM")
	})
	t.Run("EWiseAddV and monoid form", func(t *testing.T) {
		u := vec(t, 3, []int{0}, []float64{1})
		v := vec(t, 3, []int{0, 2}, []float64{2, 4})
		w, _ := graphblas.NewVector[float64](3)
		if err := graphblas.EWiseAddV(w, graphblas.NoMaskV, na, graphblas.Plus[float64](), u, v, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 0, 3, "EWiseAddV")
		if err := graphblas.EWiseAddMonoidV(w, graphblas.NoMaskV, na, graphblas.PlusMonoid[float64](), u, v, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 4, "EWiseAddMonoidV")
	})
	t.Run("EWiseMult forms", func(t *testing.T) {
		a := mat(t, 2, 2, []int{0, 1}, []int{0, 1}, []float64{3, 4})
		b := mat(t, 2, 2, []int{0}, []int{0}, []float64{5})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		if err := graphblas.EWiseMultM(c, graphblas.NoMask, na, graphblas.Times[float64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 15, "EWiseMultM")
		if nv, _ := c.NVals(); nv != 1 {
			t.Fatalf("EWiseMultM intersection: %d", nv)
		}
		if err := graphblas.EWiseMultSemiringM(c, graphblas.NoMask, na, pt, a, b, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 15, "EWiseMultSemiringM")
		u := vec(t, 2, []int{0, 1}, []float64{3, 9})
		v := vec(t, 2, []int{1}, []float64{2})
		w, _ := graphblas.NewVector[float64](2)
		if err := graphblas.EWiseMultV(w, graphblas.NoMaskV, na, graphblas.Times[float64](), u, v, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 1, 18, "EWiseMultV")
	})
	t.Run("Apply family", func(t *testing.T) {
		a := mat(t, 2, 2, []int{0}, []int{1}, []float64{4})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		if err := graphblas.ApplyM(c, graphblas.NoMask, na, graphblas.AInv[float64](), a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 1, -4, "ApplyM")
		if err := graphblas.ApplyBindFirstM(c, graphblas.NoMask, na, graphblas.Minus[float64](), 10, a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 1, 6, "ApplyBindFirstM") // 10 - 4
		if err := graphblas.ApplyBindSecondM(c, graphblas.NoMask, na, graphblas.Minus[float64](), a, 1, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 1, 3, "ApplyBindSecondM") // 4 - 1
		rowcol := graphblas.IndexUnaryOp[float64, float64]{Name: "ij", F: func(v float64, i, j int) float64 { return v + float64(10*i+j) }}
		if err := graphblas.ApplyIndexOpM(c, graphblas.NoMask, na, rowcol, a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 1, 5, "ApplyIndexOpM") // 4 + 0*10 + 1

		u := vec(t, 3, []int{2}, []float64{8})
		w, _ := graphblas.NewVector[float64](3)
		if err := graphblas.ApplyV(w, graphblas.NoMaskV, na, graphblas.AInv[float64](), u, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, -8, "ApplyV")
		if err := graphblas.ApplyBindFirstV(w, graphblas.NoMaskV, na, graphblas.Minus[float64](), 10, u, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 2, "ApplyBindFirstV")
		if err := graphblas.ApplyBindSecondV(w, graphblas.NoMaskV, na, graphblas.Minus[float64](), u, 3, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 5, "ApplyBindSecondV")
		iu := graphblas.IndexUnaryOp[float64, float64]{Name: "i", F: func(v float64, i, _ int) float64 { return v + float64(i) }}
		if err := graphblas.ApplyIndexOpV(w, graphblas.NoMaskV, na, iu, u, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 10, "ApplyIndexOpV")
	})
	t.Run("Reduce family", func(t *testing.T) {
		a := mat(t, 2, 3, []int{0, 0, 1}, []int{0, 2, 1}, []float64{1, 2, 5})
		w, _ := graphblas.NewVector[float64](2)
		if err := graphblas.ReduceMatrixToVector(w, graphblas.NoMaskV, na, graphblas.PlusMonoid[float64](), a, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 0, 3, "ReduceMatrixToVector")
		total, err := graphblas.ReduceMatrixToScalar(0, na, graphblas.PlusMonoid[float64](), a)
		if err != nil || total != 8 {
			t.Fatalf("ReduceMatrixToScalar %v %v", total, err)
		}
		vt, err := graphblas.ReduceVectorToScalar(0, na, graphblas.PlusMonoid[float64](), w)
		if err != nil || vt != 8 {
			t.Fatalf("ReduceVectorToScalar %v %v", vt, err)
		}
	})
	t.Run("Transpose", func(t *testing.T) {
		a := mat(t, 2, 3, []int{0}, []int{2}, []float64{7})
		c, _ := graphblas.NewMatrix[float64](3, 2)
		if err := graphblas.Transpose(c, graphblas.NoMask, na, a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 2, 0, 7, "Transpose")
	})
	t.Run("Extract family", func(t *testing.T) {
		a := mat(t, 3, 3, []int{0, 1, 2}, []int{0, 1, 2}, []float64{1, 2, 3})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		if err := graphblas.ExtractSubmatrix(c, graphblas.NoMask, na, a, []int{1, 2}, []int{1, 2}, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 0, 2, "ExtractSubmatrix")
		u := vec(t, 4, []int{1, 3}, []float64{10, 30})
		w, _ := graphblas.NewVector[float64](2)
		if err := graphblas.ExtractSubvector(w, graphblas.NoMaskV, na, u, []int{3, 0}, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 0, 30, "ExtractSubvector")
		col, _ := graphblas.NewVector[float64](3)
		if err := graphblas.ExtractColVector(col, graphblas.NoMaskV, na, a, graphblas.All, 1, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, col, 1, 2, "ExtractColVector")
	})
	t.Run("Assign family", func(t *testing.T) {
		w := vec(t, 4, []int{0}, []float64{1})
		u := vec(t, 2, []int{0, 1}, []float64{7, 8})
		if err := graphblas.AssignVector(w, graphblas.NoMaskV, na, u, []int{2, 3}, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 2, 7, "AssignVector")
		if err := graphblas.AssignVectorScalar(w, graphblas.NoMaskV, na, -1, []int{1}, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 1, -1, "AssignVectorScalar")

		c := mat(t, 3, 3, []int{0}, []int{0}, []float64{9})
		sub := mat(t, 2, 2, []int{0, 1}, []int{0, 1}, []float64{4, 5})
		if err := graphblas.AssignMatrix(c, graphblas.NoMask, na, sub, []int{1, 2}, []int{1, 2}, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 1, 1, 4, "AssignMatrix")
		if err := graphblas.AssignMatrixScalar(c, graphblas.NoMask, na, 6, []int{0}, []int{2}, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 0, 2, 6, "AssignMatrixScalar")
		rowv := vec(t, 3, []int{0}, []float64{11})
		if err := graphblas.AssignRow(c, graphblas.NoMaskV, na, rowv, 2, graphblas.All, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 2, 0, 11, "AssignRow")
		colv := vec(t, 3, []int{1}, []float64{12})
		if err := graphblas.AssignCol(c, graphblas.NoMaskV, na, colv, graphblas.All, 0, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, c, 1, 0, 12, "AssignCol")
	})
	t.Run("Select Kron Diag", func(t *testing.T) {
		a := mat(t, 2, 2, []int{0, 1}, []int{0, 1}, []float64{-1, 5})
		c, _ := graphblas.NewMatrix[float64](2, 2)
		pos := graphblas.IndexUnaryOp[float64, bool]{Name: "pos", F: func(v float64, _, _ int) bool { return v > 0 }}
		if err := graphblas.SelectM(c, graphblas.NoMask, na, pos, a, nil); err != nil {
			t.Fatal(err)
		}
		if nv, _ := c.NVals(); nv != 1 {
			t.Fatalf("SelectM kept %d", nv)
		}
		u := vec(t, 2, []int{0, 1}, []float64{-1, 5})
		w, _ := graphblas.NewVector[float64](2)
		if err := graphblas.SelectV(w, graphblas.NoMaskV, na, pos, u, nil); err != nil {
			t.Fatal(err)
		}
		vecHas(t, w, 1, 5, "SelectV")
		k, _ := graphblas.NewMatrix[float64](4, 4)
		if err := graphblas.Kronecker(k, graphblas.NoMask, na, graphblas.Times[float64](), a, a, nil); err != nil {
			t.Fatal(err)
		}
		matHas(t, k, 3, 3, 25, "Kronecker")
		d, err := graphblas.Diag(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		matHas(t, d, 1, 1, 5, "Diag")
	})
	t.Run("ImportExport", func(t *testing.T) {
		a := mat(t, 2, 2, []int{1}, []int{0}, []float64{3})
		ptr, col, vals, err := graphblas.MatrixExportCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := graphblas.MatrixImportCSR(2, 2, ptr, col, vals)
		if err != nil {
			t.Fatal(err)
		}
		matHas(t, back, 1, 0, 3, "MatrixImportCSR")
		u := vec(t, 3, []int{2}, []float64{4})
		idx, uv, err := graphblas.VectorExport(u)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := graphblas.VectorImport(3, idx, uv)
		if err != nil {
			t.Fatal(err)
		}
		vecHas(t, vb, 2, 4, "VectorImport")
	})
}

func TestFacadeEWiseUnion(t *testing.T) {
	a := mat(t, 2, 2, []int{0}, []int{0}, []float64{5})
	b := mat(t, 2, 2, []int{1}, []int{1}, []float64{3})
	c, _ := graphblas.NewMatrix[float64](2, 2)
	if err := graphblas.EWiseUnionM(c, graphblas.NoMask, graphblas.NoAccum[float64](),
		graphblas.Minus[float64](), a, 0, b, 0, nil); err != nil {
		t.Fatal(err)
	}
	matHas(t, c, 0, 0, 5, "EWiseUnionM a-side")
	matHas(t, c, 1, 1, -3, "EWiseUnionM b-side")

	u := vec(t, 3, []int{0}, []float64{5})
	v := vec(t, 3, []int{2}, []float64{3})
	w, _ := graphblas.NewVector[float64](3)
	if err := graphblas.EWiseUnionV(w, graphblas.NoMaskV, graphblas.NoAccum[float64](),
		graphblas.Minus[float64](), u, 0, v, 0, nil); err != nil {
		t.Fatal(err)
	}
	vecHas(t, w, 0, 5, "EWiseUnionV")
	vecHas(t, w, 2, -3, "EWiseUnionV")
}

package graphblas_test

import (
	"testing"

	"graphblas"
)

func TestMatrixIterator(t *testing.T) {
	m := mat(t, 3, 3, []int{0, 0, 2}, []int{1, 2, 0}, []float64{1, 2, 3})
	it, err := graphblas.MatrixIterate(m)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		i, j int
		v    float64
	}
	var got []entry
	for {
		i, j, v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, entry{i, j, v})
	}
	want := []entry{{0, 1, 1}, {0, 2, 2}, {2, 0, 3}}
	if len(got) != len(want) {
		t.Fatalf("entries %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("entry %d: %v want %v", k, got[k], want[k])
		}
	}
	// Seek to a row.
	it2, _ := graphblas.MatrixIterate(m)
	if err := it2.Seek(2); err != nil {
		t.Fatal(err)
	}
	i, j, v, ok := it2.Next()
	if !ok || i != 2 || j != 0 || v != 3 {
		t.Fatalf("seek entry (%d,%d,%v,%v)", i, j, v, ok)
	}
	if err := it2.Seek(9); graphblas.InfoOf(err) != graphblas.InvalidIndex {
		t.Fatalf("seek out of range: %v", err)
	}
	// Snapshot semantics: mutations after creation are invisible.
	it3, _ := graphblas.MatrixIterate(m)
	_ = m.SetElement(99, 1, 1)
	count := 0
	for {
		if _, _, _, ok := it3.Next(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("snapshot saw %d entries", count)
	}
}

func TestVectorIteratorAndForEach(t *testing.T) {
	v := vec(t, 6, []int{1, 4}, []float64{7, 8})
	it, err := graphblas.VectorIterate(v)
	if err != nil {
		t.Fatal(err)
	}
	i1, x1, ok := it.Next()
	if !ok || i1 != 1 || x1 != 7 {
		t.Fatalf("first (%d,%v,%v)", i1, x1, ok)
	}
	i2, x2, _ := it.Next()
	if i2 != 4 || x2 != 8 {
		t.Fatalf("second (%d,%v)", i2, x2)
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator did not end")
	}
	// ForEach with early stop.
	seen := 0
	_ = graphblas.VectorForEach(v, func(int, float64) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("early stop saw %d", seen)
	}
	m := mat(t, 2, 2, []int{0, 1}, []int{0, 1}, []float64{1, 2})
	sum := 0.0
	_ = graphblas.MatrixForEach(m, func(_, _ int, v float64) bool {
		sum += v
		return true
	})
	if sum != 3 {
		t.Fatalf("foreach sum %v", sum)
	}
}

func TestSelectOpCatalog(t *testing.T) {
	var is, js []int
	var vs []float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			is = append(is, i)
			js = append(js, j)
			vs = append(vs, float64(i*4+j))
		}
	}
	a := mat(t, 4, 4, is, js, vs)
	count := func(op graphblas.IndexUnaryOp[float64, bool]) int {
		c, _ := graphblas.NewMatrix[float64](4, 4)
		if err := graphblas.SelectM(c, graphblas.NoMask, graphblas.NoAccum[float64](), op, a, nil); err != nil {
			t.Fatal(err)
		}
		nv, _ := c.NVals()
		return nv
	}
	if got := count(graphblas.Tril[float64](0)); got != 10 {
		t.Fatalf("tril(0) %d", got)
	}
	if got := count(graphblas.Tril[float64](-1)); got != 6 {
		t.Fatalf("tril(-1) %d", got)
	}
	if got := count(graphblas.Triu[float64](1)); got != 6 {
		t.Fatalf("triu(1) %d", got)
	}
	if got := count(graphblas.DiagSel[float64](0)); got != 4 {
		t.Fatalf("diag %d", got)
	}
	if got := count(graphblas.OffDiag[float64](0)); got != 12 {
		t.Fatalf("offdiag %d", got)
	}
	if got := count(graphblas.ValueEQ(5.0)); got != 1 {
		t.Fatalf("valueeq %d", got)
	}
	if got := count(graphblas.ValueNE(5.0)); got != 15 {
		t.Fatalf("valuene %d", got)
	}
	if got := count(graphblas.ValueLT(4.0)); got != 4 {
		t.Fatalf("valuelt %d", got)
	}
	if got := count(graphblas.ValueLE(4.0)); got != 5 {
		t.Fatalf("valuele %d", got)
	}
	if got := count(graphblas.ValueGT(12.0)); got != 3 {
		t.Fatalf("valuegt %d", got)
	}
	if got := count(graphblas.ValueGE(12.0)); got != 4 {
		t.Fatalf("valuege %d", got)
	}
	// Index-producing ops via apply.
	rows, _ := graphblas.NewMatrix[int64](4, 4)
	if err := graphblas.ApplyIndexOpM(rows, graphblas.NoMask, graphblas.NoAccum[int64](), graphblas.RowIndex[float64](), a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := rows.ExtractElement(2, 3); v != 2 {
		t.Fatalf("rowindex %d", v)
	}
	cols, _ := graphblas.NewMatrix[int64](4, 4)
	if err := graphblas.ApplyIndexOpM(cols, graphblas.NoMask, graphblas.NoAccum[int64](), graphblas.ColIndex[float64](), a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := cols.ExtractElement(2, 3); v != 3 {
		t.Fatalf("colindex %d", v)
	}
}

func TestTerminalMonoidEarlyExit(t *testing.T) {
	// A monoid whose terminal predicate counts invocations: the reduction
	// over a vector with an early true must stop before consuming all
	// entries.
	calls := 0
	or, _ := graphblas.NewBinaryOp("or", func(x, y bool) bool {
		calls++
		return x || y
	})
	m, err := graphblas.NewMonoidWithTerminal(or, false, func(v bool) bool { return v })
	if err != nil {
		t.Fatal(err)
	}
	v, _ := graphblas.NewVector[bool](100)
	for i := 0; i < 100; i++ {
		_ = v.SetElement(i == 3, i) // true at index 3, false elsewhere
	}
	got, err := graphblas.ReduceVectorToScalar(false, graphblas.NoAccum[bool](), m, v)
	if err != nil || got != true {
		t.Fatalf("reduce %v %v", got, err)
	}
	if calls > 10 {
		t.Fatalf("terminal did not stop early: %d operator calls", calls)
	}
	// Built-in monoids carry terminals.
	if graphblas.LOrMonoid().Terminal == nil || graphblas.MinMonoid[int32]().Terminal == nil {
		t.Fatal("built-in monoids missing terminals")
	}
	if !graphblas.LOrMonoid().Terminal(true) || graphblas.LOrMonoid().Terminal(false) {
		t.Fatal("LOr terminal wrong")
	}
	if err := func() error {
		_, err := graphblas.NewMonoidWithTerminal(or, false, nil)
		return err
	}(); graphblas.InfoOf(err) != graphblas.NullPointer {
		t.Fatalf("nil terminal accepted: %v", err)
	}
}

// Command algos runs any algorithm of the suite on a generated graph or a
// Matrix Market file, via the graph convenience layer.
//
//	algos -alg bfs -scale 12 -source 0
//	algos -alg pagerank -in web.mtx -top 20
//	algos -alg ktruss -k 5 -kind gnm -n 2000 -m 20000
//
// Algorithms: bfs sssp pagerank bc tc cc scc kcore ktruss cluster mis color
// reach degrees.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"graphblas"
	"graphblas/internal/generate"
	"graphblas/internal/graph"
)

func main() {
	alg := flag.String("alg", "bfs", "algorithm: bfs | sssp | pagerank | bc | bcall | tc | cc | scc | kcore | ktruss | cluster | mis | color | reach | degrees")
	in := flag.String("in", "", "Matrix Market input (otherwise generate)")
	kind := flag.String("kind", "rmat", "generator when no -in: rmat | gnm | gnp | grid | cycle | path")
	scale := flag.Int("scale", 11, "rmat scale")
	ef := flag.Int("ef", 8, "rmat edge factor")
	n := flag.Int("n", 1000, "gnm/gnp/cycle/path size; grid side")
	m := flag.Int("m", 8000, "gnm edges")
	p := flag.Float64("p", 0.01, "gnp probability")
	seed := flag.Uint64("seed", 42, "generator seed")
	source := flag.Int("source", 0, "bfs/sssp source; bc batch start")
	batch := flag.Int("batch", 16, "bc batch size")
	k := flag.Int("k", 4, "ktruss k")
	top := flag.Int("top", 10, "how many top entries to print")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	var g *graph.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.FromMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var eg *generate.Graph
		switch *kind {
		case "rmat":
			eg = generate.RMAT(*scale, *ef, *seed).Dedup(true)
		case "gnm":
			eg = generate.ErdosRenyiGnm(*n, *m, *seed)
		case "gnp":
			eg = generate.ErdosRenyiGnp(*n, *p, *seed)
		case "grid":
			eg = generate.Grid2D(*n, *n)
		case "cycle":
			eg = generate.Cycle(*n)
		case "path":
			eg = generate.Path(*n)
		default:
			log.Fatalf("unknown generator %q", *kind)
		}
		g = graph.FromEdges(eg)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.NumEdges())

	start := time.Now()
	switch *alg {
	case "bfs":
		levels, err := g.BFS(*source)
		must(err)
		reached, maxd := 0, 0
		for _, l := range levels {
			if l >= 0 {
				reached++
				if l > maxd {
					maxd = l
				}
			}
		}
		fmt.Printf("bfs from %d: reached %d vertices, eccentricity %d\n", *source, reached, maxd)
	case "sssp":
		dist, reachedV, err := g.SSSP(*source)
		must(err)
		reached, far := 0, 0.0
		for v := range dist {
			if reachedV[v] {
				reached++
				if dist[v] > far {
					far = dist[v]
				}
			}
		}
		fmt.Printf("sssp from %d: reached %d vertices, max distance %.3f\n", *source, reached, far)
	case "pagerank":
		rank, iters, err := g.PageRank(0.85, 1e-9, 500)
		must(err)
		fmt.Printf("pagerank converged in %d sweeps\n", iters)
		printTop(rank, *top, "rank")
	case "bc":
		sources := make([]int, 0, *batch)
		for i := 0; i < *batch; i++ {
			sources = append(sources, (*source+i)%g.N())
		}
		bc, err := g.BC(sources)
		must(err)
		printTop(bc, *top, "betweenness")
	case "bcall":
		bc, err := g.BCAll(*batch)
		must(err)
		printTop(bc, *top, "betweenness")
	case "tc":
		count, err := g.TriangleCount()
		must(err)
		fmt.Printf("triangles: %d\n", count)
	case "cc":
		labels, err := g.ConnectedComponents()
		must(err)
		fmt.Printf("weakly connected components: %d\n", countDistinct(labels))
	case "scc":
		labels, err := g.SCC()
		must(err)
		fmt.Printf("strongly connected components: %d\n", countDistinct(labels))
	case "kcore":
		cores, err := g.CoreNumbers()
		must(err)
		maxCore := 0
		for _, c := range cores {
			if c > maxCore {
				maxCore = c
			}
		}
		fmt.Printf("degeneracy (max coreness): %d\n", maxCore)
	case "ktruss":
		edges, err := g.KTruss(*k)
		must(err)
		fmt.Printf("%d-truss: %d undirected edges\n", *k, len(edges))
	case "cluster":
		coef, err := g.ClusteringCoefficients()
		must(err)
		sum := 0.0
		for _, c := range coef {
			sum += c
		}
		fmt.Printf("mean local clustering coefficient: %.4f\n", sum/float64(len(coef)))
	case "mis":
		set, err := g.MIS(*seed)
		must(err)
		fmt.Printf("maximal independent set: %d vertices\n", len(set))
	case "color":
		_, used, err := g.GreedyColor(*seed)
		must(err)
		fmt.Printf("greedy coloring: %d colors\n", used)
	case "reach":
		sources := []int{*source, (*source + 1) % g.N(), (*source + 2) % g.N()}
		reach, err := g.Reach(sources)
		must(err)
		counts := make([]int, len(sources)+1)
		for _, sets := range reach {
			counts[len(sets)]++
		}
		fmt.Printf("power-set reach from %v: vertices seeing k sources: %v\n", sources, counts)
	case "degrees":
		deg, err := g.OutDegrees()
		must(err)
		maxDeg := 0
		for _, d := range deg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		fmt.Printf("max out-degree: %d, mean %.2f\n", maxDeg, float64(g.NumEdges())/float64(g.N()))
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	fmt.Printf("elapsed: %v\n", time.Since(start))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func printTop(score []float64, top int, label string) {
	order := make([]int, len(score))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return score[order[a]] > score[order[b]] })
	if top > len(order) {
		top = len(order)
	}
	for _, v := range order[:top] {
		fmt.Printf("  vertex %6d  %s %.6g\n", v, label, score[v])
	}
}

func countDistinct(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

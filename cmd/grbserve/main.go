// Command grbserve is the fault-tolerant graph query server: HTTP endpoints
// for k-hop, personalized PageRank, and triangle statistics over a live
// streaming GraphBLAS matrix, with per-request deadlines threaded into the
// engine's flush scheduler, admission control with load shedding, seeded
// retry of transient faults, a circuit breaker around compaction, and
// graceful drain on SIGINT/SIGTERM.
//
// With -shards=N the store is row-partitioned across N independent engine
// instances (one nonblocking queue, scheduler, and flush lock each); queries
// run scatter-gather across the shards and ingest commits all-shards-or-none,
// behind the same endpoints and resilience ladder.
//
//	grbserve -addr :8080 -scale 11
//	grbserve -addr :8080 -scale 11 -shards 4
//	curl 'localhost:8080/query/khop?src=0&k=2&timeout=50ms'
//	curl 'localhost:8080/query/ppr?src=0&k=10'
//	curl 'localhost:8080/query/degree?v=0'
//	curl 'localhost:8080/stats'
//	curl -XPOST -d '{"inserts":[[1,2,1]],"deletes":[[3,4]]}' localhost:8080/ingest
//	curl 'localhost:8080/healthz'   # liveness: breaker state, epoch, queue
//	curl 'localhost:8080/readyz'    # readiness: 503 while draining
//	curl 'localhost:8080/metrics'   # Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphblas"
	"graphblas/internal/generate"
	"graphblas/internal/serve"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 10, "RMAT scale of the preloaded graph (vertex space is 2^scale)")
	ef := flag.Int("ef", 8, "RMAT edge factor of the preloaded graph")
	seed := flag.Uint64("seed", 42, "graph generator and retry-jitter seed")
	empty := flag.Bool("empty", false, "start with an empty graph (vertex space still 2^scale)")
	shards := flag.Int("shards", 1, "row-partition the store across this many engine instances")
	maxConc := flag.Int("max-concurrent", 4, "simultaneously executing requests")
	maxQueue := flag.Int("max-queue", 0, "admission queue watermark (0: 2x max-concurrent)")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()
	graphblas.SetScheduler(graphblas.SchedDag)

	g := generate.RMAT(*scale, *ef, *seed).Dedup(true)
	var preload *stream.Batch[float64]
	if !*empty {
		preload = stream.NewBatch[float64]()
		for _, e := range g.Edges {
			preload.Insert(e.Src, e.Dst, 1)
		}
	}

	var backend serve.Backend
	if *shards > 1 {
		st, err := shard.NewStore(shard.Config{N: g.N, Shards: *shards})
		if err != nil {
			log.Fatal(err)
		}
		if preload != nil {
			if err := st.Ingest(preload); err != nil {
				log.Fatal(err)
			}
			if err := st.Compact(); err != nil {
				log.Fatal(err)
			}
		}
		backend = serve.NewShardedBackend(st)
		log.Printf("sharded store: %d shards (%s partition)", st.ShardCount(), st.Plan().Strategy)
	} else {
		eng, err := serve.NewEngine(serve.Config{N: g.N})
		if err != nil {
			log.Fatal(err)
		}
		if preload != nil {
			if err := eng.Ingest(preload); err != nil {
				log.Fatal(err)
			}
			if err := eng.Compact(); err != nil {
				log.Fatal(err)
			}
		}
		backend = serve.NewEngineBackend(eng)
	}
	if preload != nil {
		log.Printf("preloaded RMAT scale %d: %d vertices, %d edges", *scale, g.N, len(g.Edges))
	}

	s := serve.NewServer(serve.Options{
		Backend:        backend,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		RetrySeed:      *seed,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("received %v: draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Order matters: flip readiness and stop admitting first, so the
		// listener's remaining in-flight requests are the only work left,
		// then close the listener, then flush the engine.
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("engine drain: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("grbserve listening on %s (shards=%d, max-concurrent=%d, timeout=%v)", *addr, *shards, *maxConc, *timeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("drained clean")
}

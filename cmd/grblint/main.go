// Command grblint runs the engine's static-analysis suite — the
// project-specific invariant checkers in internal/analysis — over a set of
// package patterns, in the style of a go/analysis multichecker:
//
//	go run ./cmd/grblint ./...
//	go run ./cmd/grblint -json ./internal/core
//	go run ./cmd/grblint -report ./...
//
// Exit status: 0 when the tree is clean, 1 when findings were reported, 2
// when loading or type-checking failed. With -json the output is a JSON
// object {"findings": [...], "suppressions": [...]}: findings are
// {file, line, col, analyzer, message}; suppressions inventory every
// //grblint:ignore directive as {file, line, analyzer, justification, used},
// where file/line locate the justification comment itself and used reports
// whether this run honored it. -report prints the same inventory as text
// (per-analyzer counts plus each directive's justification) — the CI
// suppression-audit artifact. Otherwise one vet-style line per finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"graphblas/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("grblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "print {findings, suppressions} as JSON instead of vet-style lines")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	report := fs.Bool("report", false, "print the suppression inventory (count per analyzer + justifications)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: grblint [-json] [-report] [-only a,b] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the engine invariant analyzers over the given package patterns\n")
		fmt.Fprintf(stderr, "(default ./...). Suppress a finding with a justified directive:\n")
		fmt.Fprintf(stderr, "\t//grblint:ignore <analyzer> <why this is safe>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.NewSuite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "grblint: unknown analyzer %q\n", name)
			return 2
		}
		suite = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPackages(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}
	findings, suppressions, err := analysis.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}

	switch {
	case *jsonOut:
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if suppressions == nil {
			suppressions = []analysis.Suppression{}
		}
		out := struct {
			Findings     []analysis.Finding     `json:"findings"`
			Suppressions []analysis.Suppression `json:"suppressions"`
		}{findings, suppressions}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "grblint: %v\n", err)
			return 2
		}
	case *report:
		printReport(stdout, suppressions)
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "grblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// printReport renders the suppression inventory: per-analyzer counts, then
// every directive with the location and text of its justification and
// whether this run honored it. A STALE entry means the suppressed finding no
// longer fires — the directive should be deleted, or the code it covered has
// moved out from under it.
func printReport(stdout *os.File, suppressions []analysis.Suppression) {
	fmt.Fprintf(stdout, "suppression inventory: %d directive(s)\n", len(suppressions))
	counts := map[string]int{}
	var names []string
	for _, s := range suppressions {
		if counts[s.Analyzer] == 0 {
			names = append(names, s.Analyzer)
		}
		counts[s.Analyzer]++
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "  %-14s %d\n", name, counts[name])
	}
	for _, s := range suppressions {
		fmt.Fprintln(stdout, s.String())
	}
}

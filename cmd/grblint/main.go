// Command grblint runs the engine's static-analysis suite — the five
// project-specific invariant checkers in internal/analysis — over a set of
// package patterns, in the style of a go/analysis multichecker:
//
//	go run ./cmd/grblint ./...
//	go run ./cmd/grblint -json ./internal/core
//
// Exit status: 0 when the tree is clean, 1 when findings were reported, 2
// when loading or type-checking failed. With -json the findings are printed
// as a JSON array of {file, line, col, analyzer, message} objects for CI and
// editor tooling; otherwise one vet-style line per finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"graphblas/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("grblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of vet-style lines")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: grblint [-json] [-only a,b] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the engine invariant analyzers over the given package patterns\n")
		fmt.Fprintf(stderr, "(default ./...). Suppress a finding with a justified directive:\n")
		fmt.Fprintf(stderr, "\t//grblint:ignore <analyzer> <why this is safe>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.NewSuite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "grblint: unknown analyzer %q\n", name)
			return 2
		}
		suite = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPackages(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "grblint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "grblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// Command graphgen writes synthetic graphs in Matrix Market coordinate
// format: the RMAT/Kronecker generator of the Graph500 lineage, Erdős–Rényi
// models, and regular families. These are the reproducible stand-ins for
// the social-network datasets the GraphBLAS literature evaluates on.
//
// Usage:
//
//	graphgen -kind rmat -scale 14 -ef 16 -seed 42 -o rmat14.mtx
//	graphgen -kind gnm -n 10000 -m 80000 -symmetric -o er.mtx
//	graphgen -kind grid -rows 64 -cols 64 -o grid.mtx
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphblas/internal/generate"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat | gnm | gnp | path | cycle | complete | star | grid | tree | bipartite")
	scale := flag.Int("scale", 10, "rmat: log2 of vertex count")
	ef := flag.Int("ef", 8, "rmat: edge factor")
	n := flag.Int("n", 1000, "gnm/gnp/path/cycle/complete/star: vertex count")
	m := flag.Int("m", 8000, "gnm: edge count")
	p := flag.Float64("p", 0.01, "gnp/bipartite: edge probability")
	rows := flag.Int("rows", 32, "grid: rows")
	cols := flag.Int("cols", 32, "grid: cols")
	depth := flag.Int("depth", 8, "tree: depth")
	left := flag.Int("left", 100, "bipartite: left vertices")
	right := flag.Int("right", 100, "bipartite: right vertices")
	seed := flag.Uint64("seed", 42, "generator seed")
	symmetric := flag.Bool("symmetric", false, "symmetrize the edge set")
	dedup := flag.Bool("dedup", true, "remove duplicate edges and self-loops")
	pattern := flag.Bool("pattern", false, "write pattern (structure only) instead of real weights")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *generate.Graph
	switch *kind {
	case "rmat":
		g = generate.RMAT(*scale, *ef, *seed)
	case "gnm":
		g = generate.ErdosRenyiGnm(*n, *m, *seed)
	case "gnp":
		g = generate.ErdosRenyiGnp(*n, *p, *seed)
	case "path":
		g = generate.Path(*n)
	case "cycle":
		g = generate.Cycle(*n)
	case "complete":
		g = generate.Complete(*n)
	case "star":
		g = generate.Star(*n)
	case "grid":
		g = generate.Grid2D(*rows, *cols)
	case "tree":
		g = generate.BinaryTree(*depth)
	case "bipartite":
		g = generate.Bipartite(*left, *right, *p, *seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if *symmetric {
		g = g.Symmetrize()
	}
	if *dedup {
		g = g.Dedup(true)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *pattern {
		err = generate.WriteMatrixMarketPattern(w, g)
	} else {
		err = generate.WriteMatrixMarket(w, g)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d vertices, %d edges\n", *kind, g.N, len(g.Edges))
}

// Command bc computes betweenness centrality with the paper's Figure 3
// BC_update algorithm, over a generated RMAT graph or a Matrix Market file,
// processing all (or a sampled subset of) sources in batches and optionally
// cross-validating against classic Brandes.
//
// Usage:
//
//	bc -scale 12 -ef 8 -batch 32 -sources 128 -verify
//	bc -in graph.mtx -batch 64 -top 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/builtins"
	"graphblas/internal/core"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func main() {
	in := flag.String("in", "", "Matrix Market input file (otherwise RMAT)")
	scale := flag.Int("scale", 11, "RMAT scale")
	ef := flag.Int("ef", 8, "RMAT edge factor")
	seed := flag.Uint64("seed", 42, "generator / sampling seed")
	batch := flag.Int("batch", 32, "sources per BC_update batch")
	nsources := flag.Int("sources", 64, "total sources to process (0 = all vertices)")
	top := flag.Int("top", 10, "how many top-centrality vertices to print")
	verify := flag.Bool("verify", false, "cross-check against classic Brandes")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	var g *generate.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		g, _, err = generate.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		g = g.Dedup(true)
	} else {
		g = generate.RMAT(*scale, *ef, *seed).Dedup(true)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, len(g.Edges))

	a, err := graphblas.NewMatrix[int32](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols, _ := g.Tuples()
	ones := make([]int32, len(rows))
	for i := range ones {
		ones[i] = 1
	}
	if err := a.Build(rows, cols, ones, builtins.First[int32]()); err != nil {
		log.Fatal(err)
	}

	// Source list: all vertices or a random sample.
	var sources []int
	if *nsources <= 0 || *nsources >= g.N {
		sources = make([]int, g.N)
		for i := range sources {
			sources[i] = i
		}
	} else {
		sources = generate.NewRNG(*seed + 1).Perm(g.N)[:*nsources]
	}

	// Accumulate batched BC updates into the total score vector.
	total, _ := graphblas.NewVector[float32](g.N)
	start := time.Now()
	for lo := 0; lo < len(sources); lo += *batch {
		hi := lo + *batch
		if hi > len(sources) {
			hi = len(sources)
		}
		delta, err := algorithms.BCUpdate(a, sources[lo:hi])
		if err != nil {
			log.Fatal(err)
		}
		if err := core.EWiseAddV(total, core.NoMaskV, core.NoAccum[float32](),
			builtins.Plus[float32](), total, delta, nil); err != nil {
			log.Fatal(err)
		}
	}
	idx, val, err := total.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("BC_update over %d sources in %d-source batches: %v\n", len(sources), *batch, elapsed)

	bc := make([]float64, g.N)
	for k := range idx {
		bc[idx[k]] = float64(val[k])
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bc[order[a]] > bc[order[b]] })
	fmt.Printf("\n%-10s %s\n", "vertex", "betweenness")
	for _, v := range order[:min(*top, g.N)] {
		fmt.Printf("%-10d %.2f\n", v, bc[v])
	}

	if *verify {
		start = time.Now()
		want := refalgo.BrandesBC(refalgo.NewAdjacency(g), sources)
		refElapsed := time.Since(start)
		worst := 0.0
		for v := 0; v < g.N; v++ {
			d := math.Abs(bc[v]-want[v]) / math.Max(1, math.Abs(want[v]))
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("\nclassic Brandes: %v; max relative deviation %.2e %s\n",
			refElapsed, worst, map[bool]string{true: "(agreement ✓)", false: "(DISAGREEMENT)"}[worst < 1e-3])
	}
}

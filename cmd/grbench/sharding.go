package main

// The sharding sweep (EXPERIMENTS.md E12, BENCH_sharding.json): the same
// seeded serving load driven against the row-partitioned multi-engine store
// at 1, 2, 4, and 8 shards. Shard count 1 is the single-engine backend — the
// oracle the differential tests prove the sharded paths tuple-identical to —
// so its row is the baseline every other row is judged against. Each row
// also times sharded streaming ingest directly (ns/edge through the
// all-shards-or-none commit, bypassing HTTP) since the serving mix only
// exercises writes incidentally. Scatter-gather fan-out and per-shard flush
// run on goroutines, so QPS/latency scaling is parallelism-sensitive:
// benchEnv stamps the hardware and warnIfSerial flags single-core runs where
// scaling cannot physically appear.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"graphblas/internal/generate"
	"graphblas/internal/serve"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

type shardRow struct {
	Shards        int     `json:"shards"`
	Backend       string  `json:"backend"`
	IngestNsEdge  float64 `json:"ingest_ns_per_edge"`
	IngestBatches int     `json:"ingest_batches"`
	serve.LoadResult
}

type shardReport struct {
	Generated string `json:"generated"`
	Command   string `json:"command"`
	benchEnv
	Scale    int        `json:"scale"`
	EdgeFac  int        `json:"edge_factor"`
	Seed     uint64     `json:"seed"`
	Requests int        `json:"requests_per_row"`
	Note     string     `json:"note"`
	Rows     []shardRow `json:"rows"`
}

// shardBackend builds a fresh backend preloaded with the workload graph:
// the single engine at shards=1, the row-partitioned store above that.
func shardBackend(g *generate.Graph, shards int) serve.Backend {
	b := stream.NewBatch[float64]()
	for _, e := range g.Edges {
		b.Insert(e.Src, e.Dst, 1)
	}
	if shards <= 1 {
		eng, err := serve.NewEngine(serve.Config{N: g.N})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Ingest(b); err != nil {
			log.Fatal(err)
		}
		if err := eng.Compact(); err != nil {
			log.Fatal(err)
		}
		return serve.NewEngineBackend(eng)
	}
	st, err := shard.NewStore(shard.Config{N: g.N, Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Ingest(b); err != nil {
		log.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		log.Fatal(err)
	}
	return serve.NewShardedBackend(st)
}

// timeShardedIngest streams seeded batches through a fresh backend and
// returns mean ns per routed edge across the acknowledged commits.
func timeShardedIngest(g *generate.Graph, shards int, seed uint64, batches, batchSize int) float64 {
	be := shardBackend(g, shards)
	gen := generate.RMAT(7, 8, seed+uint64(shards)).Dedup(true)
	edges := 0
	t0 := time.Now()
	for bi := 0; bi < batches; bi++ {
		b := stream.NewBatch[float64]()
		for k := 0; k < batchSize; k++ {
			e := gen.Edges[(bi*batchSize+k)%len(gen.Edges)]
			b.Insert(e.Src%g.N, e.Dst%g.N, 1)
			edges++
		}
		if err := be.Ingest(b); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(t0)
	return float64(elapsed.Nanoseconds()) / float64(edges)
}

func runShard(scale, ef int, seed uint64) {
	header("SHARD", fmt.Sprintf("E12: horizontal sharding scatter-gather scaling, RMAT scale %d", scale))
	warnIfSerial("SHARD")
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	requests := serveRequests
	fmt.Printf("  workload: %d vertices, %d edges, %d requests per row\n", g.N, len(g.Edges), requests)

	const (
		ingestBatches = 64
		batchSize     = 64
	)
	report := shardReport{
		Generated: time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/grbench -exp SHARD -scale %d -ef %d -seed %d -requests %d", scale, ef, seed, requests),
		benchEnv:  currentEnv(),
		Scale:     scale,
		EdgeFac:   ef,
		Seed:      seed,
		Requests:  requests,
		Note: "in-process drive (httptest, no sockets); shards=1 is the single-engine " +
			"backend, every other row the row-partitioned store behind the same serve.Backend " +
			"interface; the query mix and ingest batches are seed-deterministic, and the " +
			"differential suite proves every row returns tuple-identical results, so only " +
			"latency/QPS/ns-per-edge columns vary; scatter-gather scaling requires real cores " +
			"(see benchEnv) — on a serial host the fan-out rows measure coordination overhead only",
	}

	spec := serve.LoadSpec{
		Seed:        seed,
		Requests:    requests,
		Workers:     8,
		N:           g.N,
		KHopFrac:    0.6,
		PPRFrac:     0.3,
		IngestEvery: 20,
		BatchSize:   16,
	}

	fmt.Printf("  %-8s %-8s %8s %8s %6s %9s %9s %9s %12s\n",
		"shards", "backend", "ok", "shed", "err", "p50", "p99", "qps", "ns/edge")
	for _, shards := range []int{1, 2, 4, 8} {
		be := shardBackend(g, shards)
		s := serve.NewServer(serve.Options{
			Backend:       be,
			MaxConcurrent: 8,
			RetrySeed:     seed,
		})
		res := serve.RunLoad(s, spec)
		nsEdge := timeShardedIngest(g, shards, seed, ingestBatches, batchSize)
		name := "sharded"
		if shards == 1 {
			name = "engine"
		}
		report.Rows = append(report.Rows, shardRow{
			Shards:        shards,
			Backend:       name,
			IngestNsEdge:  nsEdge,
			IngestBatches: ingestBatches,
			LoadResult:    res,
		})
		fmt.Printf("  %-8d %-8s %8d %8d %6d %8.2fms %8.2fms %9.0f %12.0f\n",
			shards, name, res.OK, res.Shed, res.Errors, res.P50Ms, res.P99Ms, res.QPS, nsEdge)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sharding.json", append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote BENCH_sharding.json")
}

package main

// The serving sweep (EXPERIMENTS.md E11, BENCH_serving.json): the grbserve
// stack — admission control, per-request deadlines, retries, degradation —
// driven in-process by the seed-deterministic load generator under four
// regimes: nominal load, admission overload, tight deadlines, and injected
// kernel faults. Outcome counts come from the responses themselves (status
// codes and resilience headers), so rows are comparable across runs; only
// the latency columns are machine-dependent, which is what benchEnv stamps.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"graphblas/internal/faults"
	"graphblas/internal/generate"
	"graphblas/internal/serve"
	"graphblas/internal/stream"
)

type serveRow struct {
	Config  string `json:"config"`
	Workers int    `json:"workers"`
	serve.LoadResult
}

type serveReport struct {
	Generated string `json:"generated"`
	Command   string `json:"command"`
	benchEnv
	Scale    int        `json:"scale"`
	EdgeFac  int        `json:"edge_factor"`
	Seed     uint64     `json:"seed"`
	Requests int        `json:"requests_per_row"`
	Note     string     `json:"note"`
	Rows     []serveRow `json:"rows"`
}

// serveStack builds a fresh engine+server seeded with the workload graph, so
// every row starts from an identical store.
func serveStack(g *generate.Graph, seed uint64) *serve.Server {
	eng, err := serve.NewEngine(serve.Config{N: g.N})
	if err != nil {
		log.Fatal(err)
	}
	b := stream.NewBatch[float64]()
	for _, e := range g.Edges {
		b.Insert(e.Src, e.Dst, 1)
	}
	if err := eng.Ingest(b); err != nil {
		log.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		log.Fatal(err)
	}
	return serve.NewServer(serve.Options{
		Engine:        eng,
		MaxConcurrent: 4,
		RetrySeed:     seed,
	})
}

func runServe(scale, ef int, seed uint64) {
	header("SERVE", fmt.Sprintf("E11: fault-tolerant serving under load, RMAT scale %d", scale))
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	requests := serveRequests
	fmt.Printf("  workload: %d vertices, %d edges, %d requests per row\n", g.N, len(g.Edges), requests)

	report := serveReport{
		Generated: time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/grbench -exp SERVE -scale %d -ef %d -seed %d -requests %d", scale, ef, seed, requests),
		benchEnv:  currentEnv(),
		Scale:     scale,
		EdgeFac:   ef,
		Seed:      seed,
		Requests:  requests,
		Note: "in-process drive (httptest, no sockets); each row uses a fresh engine " +
			"seeded with the same graph; counts are from response status codes and " +
			"resilience headers, so shed/degraded/stale/retried are seed-deterministic " +
			"up to goroutine interleaving while latencies are machine-dependent; the " +
			"faults row injects seeded kernel faults on the query sites only",
	}

	base := serve.LoadSpec{
		Seed:        seed,
		Requests:    requests,
		N:           g.N,
		KHopFrac:    0.6,
		PPRFrac:     0.3,
		IngestEvery: 20,
		BatchSize:   16,
	}
	regimes := []struct {
		name    string
		workers int
		timeout time.Duration
		chaos   bool
	}{
		{"nominal", 4, 0, false},
		{"overload", 16, 0, false},
		{"tight-deadline", 8, 2 * time.Millisecond, false},
		{"faults", 8, 0, true},
	}

	fmt.Printf("  %-15s %8s %8s %6s %6s %6s %6s %6s %9s %9s %9s\n",
		"config", "ok", "shed", "t/o", "err", "stale", "degr", "retry", "p50", "p99", "qps")
	for _, r := range regimes {
		s := serveStack(g, seed)
		if r.chaos {
			faults.Configure(int64(seed),
				faults.Rule{Site: "VxM", Kind: faults.KernelErr, Prob: 0.05},
				faults.Rule{Site: "ApplyV", Kind: faults.OOM, Prob: 0.03},
				faults.Rule{Site: "MxM", Kind: faults.OOM, Prob: 0.02},
			)
		}
		spec := base
		spec.Workers = r.workers
		spec.Timeout = r.timeout
		res := serve.RunLoad(s, spec)
		faults.Disable()
		report.Rows = append(report.Rows, serveRow{Config: r.name, Workers: r.workers, LoadResult: res})
		fmt.Printf("  %-15s %8d %8d %6d %6d %6d %6d %6d %8.2fms %8.2fms %9.0f\n",
			r.name, res.OK, res.Shed, res.Timeout, res.Errors, res.Stale, res.Degraded, res.Retried,
			res.P50Ms, res.P99Ms, res.QPS)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote BENCH_serving.json")
}

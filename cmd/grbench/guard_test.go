package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStaleBenchGuard pins the overwrite-protection matrix: a single-core
// run must not clobber a multi-core artifact unless forced; everything else
// passes through.
func TestStaleBenchGuard(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	multi := write("multi.json", `{"cores": 8, "gomaxprocs": 8}`)
	single := write("single.json", `{"cores": 1, "gomaxprocs": 4}`)
	garbage := write("garbage.json", `not json`)
	missing := filepath.Join(dir, "missing.json")

	cases := []struct {
		name    string
		path    string
		cur     benchEnv
		force   bool
		refuses bool
	}{
		{"single over multi refused", multi, benchEnv{Cores: 1, GoMaxProcs: 4}, false, true},
		{"single over multi forced", multi, benchEnv{Cores: 1, GoMaxProcs: 4}, true, false},
		{"multi over multi ok", multi, benchEnv{Cores: 16, GoMaxProcs: 16}, false, false},
		{"single over single ok", single, benchEnv{Cores: 1, GoMaxProcs: 4}, false, false},
		{"multi over single ok", single, benchEnv{Cores: 8, GoMaxProcs: 8}, false, false},
		{"no existing file ok", missing, benchEnv{Cores: 1, GoMaxProcs: 1}, false, false},
		{"unparseable existing ok", garbage, benchEnv{Cores: 1, GoMaxProcs: 1}, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := staleBenchErr(tc.path, tc.cur, tc.force)
			if tc.refuses && err == nil {
				t.Fatalf("staleBenchErr(%s, cores=%d, force=%v) = nil, want refusal", tc.path, tc.cur.Cores, tc.force)
			}
			if !tc.refuses && err != nil {
				t.Fatalf("staleBenchErr(%s, cores=%d, force=%v) = %v, want nil", tc.path, tc.cur.Cores, tc.force, err)
			}
		})
	}
}

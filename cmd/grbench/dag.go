package main

// The flush-parallelism sweep (EXPERIMENTS.md E6b, BENCH_dataflow.json):
// the same deferred workload is flushed under the sequential drain, the DAG
// scheduler with fusion ablated, and the full DAG scheduler, on a workload
// shape the DAG can exploit (independent op chains) and one it cannot (a
// single dependent chain). The chained rows used to be the pure-overhead
// control: hazard edges leave the DAG no width there, so before flush-time
// fusion any gap between the schedulers on that workload was scheduling
// overhead — and it ran below 1×. With fusion the chained pipeline's
// intermediates are elided, so the dag row is expected at ≥1×; the
// dag-nofuse row preserves the old overhead measurement.
//
// Realized speedup is bounded by min(chains, workers, cores): the JSON
// records all three so a reader (or CI on different hardware) can judge the
// numbers. On a single-core host the independent rows collapse to ~1× by
// physics; the realized schedule width (max_width) still proves the overlap
// happened.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"graphblas"
	"graphblas/internal/generate"
)

const (
	dagChains      = 8 // independent chains per flush
	dagOpsPerChain = 3 // MxV → ApplyV → ApplyV per chain
)

type dagRow struct {
	Workload   string  `json:"workload"` // "independent" or "chained"
	Sched      string  `json:"sched"`    // "sequential", "dag-nofuse", "dag"
	Workers    int     `json:"workers"`
	Ops        int     `json:"ops_per_flush"`
	NsPerOp    float64 `json:"ns_per_flush"`
	Speedup    float64 `json:"speedup_vs_sequential"`
	DagNodes   int64   `json:"dag_nodes,omitempty"`
	DagEdges   int64   `json:"dag_edges,omitempty"`
	MaxWidth   int64   `json:"max_width,omitempty"`
	ParFlush   int64   `json:"parallel_flushes,omitempty"`
	FusedPairs int64   `json:"fused_pairs,omitempty"`
	FusedOps   int64   `json:"fused_ops,omitempty"`
}

type dagReport struct {
	Generated string `json:"generated"`
	Command   string `json:"command"`
	benchEnv
	Scale     int      `json:"scale"`
	EdgeFac   int      `json:"edge_factor"`
	Chains    int      `json:"chains"`
	OpsChain  int      `json:"ops_per_chain"`
	Note      string   `json:"note"`
	Results   []dagRow `json:"results"`
}

// dagWorkload owns the objects of one sweep: per-chain adjacency matrices
// and vector pipelines, rebuilt once and reused across timed flushes.
type dagWorkload struct {
	n   int
	a   []*graphblas.Matrix[float64]
	src []*graphblas.Vector[float64]
	mid []*graphblas.Vector[float64]
	tmp []*graphblas.Vector[float64]
	out []*graphblas.Vector[float64]
}

func buildDagWorkload(scale, ef int, seed uint64) *dagWorkload {
	w := &dagWorkload{}
	for k := 0; k < dagChains; k++ {
		g := generate.RMAT(scale, ef, seed+uint64(k)).Dedup(true)
		rows, cols, vals := g.Tuples()
		a, err := graphblas.NewMatrix[float64](g.N, g.N)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Build(rows, cols, vals, graphblas.First[float64]()); err != nil {
			log.Fatal(err)
		}
		w.n = g.N
		src, _ := graphblas.NewVector[float64](g.N)
		idx := make([]int, g.N)
		ones := make([]float64, g.N)
		for i := range idx {
			idx[i], ones[i] = i, 1
		}
		if err := src.Build(idx, ones, graphblas.NoAccum[float64]()); err != nil {
			log.Fatal(err)
		}
		mid, _ := graphblas.NewVector[float64](g.N)
		tmp, _ := graphblas.NewVector[float64](g.N)
		out, _ := graphblas.NewVector[float64](g.N)
		w.a = append(w.a, a)
		w.src = append(w.src, src)
		w.mid = append(w.mid, mid)
		w.tmp = append(w.tmp, tmp)
		w.out = append(w.out, out)
	}
	if err := graphblas.Wait(); err != nil {
		log.Fatal(err)
	}
	return w
}

// flushIndependent enqueues dagChains disjoint MxV→ApplyV→ApplyV pipelines
// and flushes them as one sequence: a (chains × opsPerChain)-node DAG with
// no cross-chain edges.
func (w *dagWorkload) flushIndependent(s graphblas.Semiring[float64, float64, float64], half graphblas.UnaryOp[float64, float64]) error {
	na := graphblas.NoAccum[float64]()
	for k := 0; k < dagChains; k++ {
		if err := graphblas.MxV(w.mid[k], graphblas.NoMaskV, na, s, w.a[k], w.src[k], nil); err != nil {
			return err
		}
		if err := graphblas.ApplyV(w.tmp[k], graphblas.NoMaskV, na, half, w.mid[k], nil); err != nil {
			return err
		}
		if err := graphblas.ApplyV(w.out[k], graphblas.NoMaskV, na, half, w.tmp[k], nil); err != nil {
			return err
		}
	}
	return graphblas.Wait()
}

// flushChained enqueues the same number of operations as one fully
// dependent pipeline on chain 0's objects: every op consumes its
// predecessor's output, so the hazard DAG is a line and offers the
// scheduler no parallelism.
func (w *dagWorkload) flushChained(s graphblas.Semiring[float64, float64, float64], half graphblas.UnaryOp[float64, float64]) error {
	na := graphblas.NoAccum[float64]()
	cur := w.src[0]
	buf := [2]*graphblas.Vector[float64]{w.mid[0], w.tmp[0]}
	ops := dagChains * dagOpsPerChain
	for i := 0; i < ops; i++ {
		nxt := buf[i%2]
		var err error
		if i%dagOpsPerChain == 0 {
			err = graphblas.MxV(nxt, graphblas.NoMaskV, na, s, w.a[0], cur, nil)
		} else {
			err = graphblas.ApplyV(nxt, graphblas.NoMaskV, na, half, cur, nil)
		}
		if err != nil {
			return err
		}
		cur = nxt
	}
	return graphblas.Wait()
}

// runDag is the flush-parallelism sweep: EXPERIMENTS.md E6b.
func runDag(scale, ef int, seed uint64) {
	prevSched := graphblas.CurrentScheduler()
	defer graphblas.SetScheduler(prevSched)
	workers := runtime.NumCPU()
	if workers < 4 {
		// Exercise the scheduler even on small hosts; extra workers beyond
		// the core count cost nothing on independent chains and the JSON
		// records both numbers.
		workers = 4
	}
	prevWorkers := graphblas.SetMaxWorkers(workers)
	defer graphblas.SetMaxWorkers(prevWorkers)
	header("DAG", "E6b: flush parallelism — sequential vs DAG scheduler")
	warnIfSerial("DAG")

	w := buildDagWorkload(scale, ef, seed)
	s := graphblas.PlusTimes[float64]()
	half, err := graphblas.NewUnaryOp("half", func(x float64) float64 { return x / 2 })
	if err != nil {
		log.Fatal(err)
	}

	type bench struct {
		workload string
		flush    func() error
	}
	benches := []bench{
		{"independent", func() error { return w.flushIndependent(s, half) }},
		{"chained", func() error { return w.flushChained(s, half) }},
	}
	// Three configurations per workload: the sequential drain (reference),
	// the DAG scheduler with fusion ablated, and the full DAG scheduler.
	// The nofuse row isolates what each mechanism buys: on the chained
	// workload the DAG has no width to exploit, so any gain in the "dag" row
	// over "dag-nofuse" is purely the fusion pass eliding intermediates.
	type config struct {
		name  string
		sched graphblas.Scheduler
		fuse  bool
	}
	configs := []config{
		{"sequential", graphblas.SchedSequential, false},
		{"dag-nofuse", graphblas.SchedDag, false},
		{"dag", graphblas.SchedDag, true},
	}
	prevFuse := graphblas.SetFusion(true)
	defer graphblas.SetFusion(prevFuse)

	report := dagReport{
		Generated: time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/grbench -exp DAG -scale %d -ef %d -seed %d", scale, ef, seed),
		benchEnv:  currentEnv(),
		Scale:     scale,
		EdgeFac:   ef,
		Chains:    dagChains,
		OpsChain:  dagOpsPerChain,
		Note: "speedup_vs_sequential is bounded by min(chains, workers, cores); " +
			"max_width is the process-wide high-water of realized schedule width, " +
			"which proves overlap independently of the host's core count (the " +
			"chained control inherits the high-water of earlier flushes); " +
			"dag-nofuse rows ablate the flush-time fusion pass, so dag vs " +
			"dag-nofuse on the chained workload isolates what fusion buys " +
			"where the DAG has no width to exploit",
	}

	fmt.Printf("%-12s %-11s %8s %14s %9s %6s %6s %6s %6s\n",
		"workload", "sched", "workers", "ns/flush", "speedup", "nodes", "edges", "width", "fused")
	for _, b := range benches {
		var seqNs float64
		for _, cfg := range configs {
			graphblas.SetScheduler(cfg.sched)
			graphblas.SetFusion(cfg.fuse)
			// One untimed warm-up flush per configuration so format
			// conversions and allocator warm-up stay out of the timing.
			if err := b.flush(); err != nil {
				log.Fatal(err)
			}
			before := graphblas.StatsSnapshot()
			d := timeIt(b.flush)
			after := graphblas.StatsSnapshot()
			ns := float64(d.Nanoseconds())
			row := dagRow{
				Workload: b.workload,
				Sched:    cfg.name,
				Workers:  workers,
				Ops:      dagChains * dagOpsPerChain,
				NsPerOp:  ns,
			}
			if cfg.sched == graphblas.SchedSequential {
				seqNs = ns
				row.Speedup = 1
			} else if ns > 0 {
				row.Speedup = seqNs / ns
				// timeIt runs the flush three times; report per-flush DAG
				// shape from the stats delta.
				flushes := after.ParallelFlushes - before.ParallelFlushes
				if flushes > 0 {
					row.DagNodes = (after.DagNodes - before.DagNodes) / flushes
					row.DagEdges = (after.DagEdges - before.DagEdges) / flushes
					row.FusedPairs = (after.FusedPairs - before.FusedPairs) / flushes
					row.FusedOps = (after.FusedOps - before.FusedOps) / flushes
				}
				row.MaxWidth = after.MaxWidth
				row.ParFlush = flushes
			}
			report.Results = append(report.Results, row)
			fmt.Printf("%-12s %-11s %8d %14.0f %8.2fx %6d %6d %6d %6d\n",
				b.workload, row.Sched, row.Workers, row.NsPerOp, row.Speedup,
				row.DagNodes, row.DagEdges, row.MaxWidth, row.FusedPairs)
		}
	}

	guardStaleBench("BENCH_dataflow.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("BENCH_dataflow.json", append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote BENCH_dataflow.json")
}

// Command grbench regenerates the per-experiment tables of EXPERIMENTS.md:
// the reproduction artifacts for each table and figure of "Design of the
// GraphBLAS API for C" (see DESIGN.md §3 for the experiment index).
//
//	grbench -exp all
//	grbench -exp E5 -scale 12
//	grbench -exp DAG -sched dag
//
// E4 (API-surface parity) and E7 (error model) are pure test-suite
// experiments: run `go test -run 'TestAPISurface|TestErrorModel' ./...`.
// E7b quantifies the fault-injection harness: faults injected, CSR retries,
// transactional rollbacks, and result integrity under each plan.
// DAG sweeps the flush-parallelism experiment (sequential vs DAG scheduler
// on chained vs independent workloads) and writes BENCH_dataflow.json.
// STREAM sweeps the streaming graph engine (batched edge updates across
// merge policies, plus incremental vs from-scratch PageRank) and writes
// BENCH_streaming.json.
// SERVE drives the grbserve stack with the seeded load generator under four
// regimes (nominal, overload, tight deadlines, injected faults) and writes
// BENCH_serving.json.
// SHARD drives the same load against the row-partitioned multi-engine store
// at 1/2/4/8 shards (shards=1 is the single-engine baseline) plus a direct
// sharded-ingest timing, and writes BENCH_sharding.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"graphblas"
)

// serveRequests is the -requests flag: per-row query count of the SERVE sweep.
var serveRequests int

// forceBench is the -force flag: allow a run to overwrite a bench JSON that
// was generated on better hardware (see guardStaleBench).
var forceBench bool

func main() {
	exp := flag.String("exp", "all", "experiment id: E1 E2 E3 E5 E6 E7B E8 DAG STREAM SERVE SHARD or all")
	scale := flag.Int("scale", 11, "RMAT scale for the workload experiments")
	ef := flag.Int("ef", 8, "RMAT edge factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	sched := flag.String("sched", "dag", "nonblocking flush scheduler: dag or sequential")
	metrics := flag.Bool("metrics", false, "trace the run and dump the engine metrics registry (Prometheus text) after the experiments")
	flag.IntVar(&serveRequests, "requests", 400, "SERVE: query requests per load-regime row")
	flag.BoolVar(&forceBench, "force", false, "overwrite bench JSONs even when the existing file was generated on more cores than this host has")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	if *metrics {
		graphblas.SetTracer(graphblas.NewMetricsTracer())
		graphblas.SetProfilingLabels(true)
		defer func() {
			fmt.Println("=== engine metrics (Prometheus text exposition) ===")
			if err := graphblas.WriteMetricsText(os.Stdout); err != nil {
				log.Printf("metrics dump failed: %v", err)
			}
		}()
	}

	switch strings.ToLower(*sched) {
	case "dag":
		graphblas.SetScheduler(graphblas.SchedDag)
	case "sequential", "seq":
		graphblas.SetScheduler(graphblas.SchedSequential)
	default:
		log.Fatalf("unknown scheduler %q (valid: dag, sequential)", *sched)
	}

	run := map[string]func(scale, ef int, seed uint64){
		"E1": runE1, "E2": runE2, "E3": runE3, "E5": runE5, "E6": runE6, "E7B": runE7b, "E8": runE8,
		"DAG": runDag, "STREAM": runStream, "SERVE": runServe, "SHARD": runShard,
	}
	ids := []string{"E1", "E2", "E3", "E5", "E6", "E7B", "E8", "DAG", "STREAM", "SERVE", "SHARD"}
	want := strings.ToUpper(*exp)
	matched := false
	for _, id := range ids {
		if want == "ALL" || want == id {
			run[id](*scale, *ef, *seed)
			fmt.Println()
			matched = true
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q (valid: %v, all)", *exp, ids)
	}
}

// header prints a section banner. Every experiment header names the active
// flush scheduler and worker bound, so logs and the bench JSONs derived
// from them are self-describing about how the engine executed.
func header(id, title string) {
	fmt.Printf("=== %s — %s [sched=%v workers=%d] ===\n",
		id, title, graphblas.CurrentScheduler(), graphblas.MaxWorkers())
}

// benchEnv is embedded in every BENCH_*.json report so a reader can judge
// parallel numbers against the hardware that produced them — an earlier
// BENCH_dataflow.json was generated on one core and its speedup rows were
// silently meaningless without this context.
type benchEnv struct {
	Cores      int `json:"cores"`
	GoMaxProcs int `json:"gomaxprocs"`
}

func currentEnv() benchEnv {
	return benchEnv{Cores: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
}

// warnIfSerial flags a parallelism-sensitive experiment running without any:
// the numbers are still valid measurements, but speedup conclusions are not.
func warnIfSerial(id string) {
	if env := currentEnv(); env.Cores == 1 || env.GoMaxProcs == 1 {
		fmt.Printf("WARNING: %s is a parallel experiment but this run has cores=%d GOMAXPROCS=%d; "+
			"speedup rows will collapse to ~1x by physics\n", id, env.Cores, env.GoMaxProcs)
	}
}

// guardStaleBench refuses to let a single-core run clobber a bench JSON that
// was generated on a multi-core host: the committed artifact would silently
// downgrade from real speedup rows to ~1× physics, which is exactly the
// regression that hid the chained-workload slowdown. -force overrides (for
// intentional single-core baselines).
func guardStaleBench(path string) {
	if err := staleBenchErr(path, currentEnv(), forceBench); err != nil {
		log.Fatal(err)
	}
}

// staleBenchErr is the guard's decision: non-nil when overwriting path from
// the cur environment would replace multi-core speedup rows with single-core
// ones and force is not set. A missing or unparseable existing file protects
// nothing.
func staleBenchErr(path string, cur benchEnv, force bool) error {
	if force {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev benchEnv
	if json.Unmarshal(data, &prev) != nil {
		return nil
	}
	if prev.Cores > 1 && cur.Cores == 1 {
		return fmt.Errorf("refusing to overwrite %s: existing file was generated with cores=%d, "+
			"this run has cores=%d and its speedup rows would be meaningless; "+
			"rerun on comparable hardware or pass -force", path, prev.Cores, cur.Cores)
	}
	return nil
}

package main

// The streaming-engine sweep (EXPERIMENTS.md E10, BENCH_streaming.json):
// one fixed schedule of edge updates is ingested through ApplyUpdateBatch
// under every batch-size × merge-policy combination, then incremental
// PageRank (warm restart from the pre-update rank vector) races a
// from-scratch recomputation after small-batch perturbations.
//
// Ingest rows are single-shot timings — ingestion mutates the matrix, so
// best-of-3 would bill a different (already-merged) store on reruns.
// "first_read_ns" is the staleness price of the chosen policy: what the
// first merged-view read pays after ingest (manual defers everything to
// that read; eager pays it during ingest instead).

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/generate"
	"graphblas/internal/obs"
	"graphblas/internal/refalgo"
)

const streamTotalUpdates = 1 << 14 // edge updates ingested per configuration

type streamIngestRow struct {
	BatchEdges    int     `json:"batch_edges"`
	Policy        string  `json:"policy"`
	Batches       int     `json:"batches"`
	NsPerEdge     float64 `json:"ingest_ns_per_edge"`
	FirstReadNs   float64 `json:"first_read_ns"`
	Merges        int64   `json:"merges"`
	MergeBytes    int64   `json:"merge_bytes"`
	ResidualDelta int     `json:"residual_delta_nnz"`
	FinalNVals    int     `json:"final_nvals"`
}

type streamPRRow struct {
	BatchEdges int     `json:"batch_edges"`
	ColdNs     float64 `json:"cold_ns"`
	WarmNs     float64 `json:"warm_ns"`
	ColdSweeps int     `json:"cold_sweeps"`
	WarmSweeps int     `json:"warm_sweeps"`
	Speedup    float64 `json:"warm_speedup_x"`
	OracleOK   bool    `json:"oracle_ok"`
}

type streamReport struct {
	Generated string `json:"generated"`
	Command   string `json:"command"`
	benchEnv
	Scale     int               `json:"scale"`
	EdgeFac   int               `json:"edge_factor"`
	BaseEdges int               `json:"base_edges"`
	Note      string            `json:"note"`
	Ingest    []streamIngestRow `json:"ingest"`
	PageRank  []streamPRRow     `json:"incremental_pagerank"`
}

type edgeUpdate struct {
	i, j int
	del  bool
}

// streamFloat builds just the float64 adjacency (the sweep never needs the
// bool/int32 domains buildAdjacencies would also pay for).
func streamFloat(g *generate.Graph) *graphblas.Matrix[float64] {
	rows, cols, w := g.Tuples()
	a, err := graphblas.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(rows, cols, w, graphblas.First[float64]()); err != nil {
		log.Fatal(err)
	}
	return a
}

// streamSchedule fixes one update stream (≈25% deletes of base edges, the
// rest random non-loop inserts) so every policy/batch-size configuration
// ingests identical work.
func streamSchedule(g *generate.Graph, n int, seed uint64) []edgeUpdate {
	rng := generate.NewRNG(seed)
	out := make([]edgeUpdate, 0, n)
	for k := 0; k < n; k++ {
		if rng.Intn(4) == 0 && len(g.Edges) > 0 {
			e := g.Edges[rng.Intn(len(g.Edges))]
			out = append(out, edgeUpdate{e.Src, e.Dst, true})
		} else {
			i, j := rng.Intn(g.N), rng.Intn(g.N)
			if i == j {
				j = (j + 1) % g.N
			}
			out = append(out, edgeUpdate{i, j, false})
		}
	}
	return out
}

// applySchedule replays updates[lo:hi] into the batch builder.
func applySchedule(b *graphblas.UpdateBatch[float64], updates []edgeUpdate) {
	for _, u := range updates {
		if u.del {
			b.Delete(u.i, u.j)
		} else {
			b.Insert(u.i, u.j, 1)
		}
	}
}

func streamIngestRun(base *generate.Graph, updates []edgeUpdate, batchEdges int, polName string, pol graphblas.MergePolicy) streamIngestRow {
	a := streamFloat(base)
	if _, err := a.SetMergePolicy(pol); err != nil {
		log.Fatal(err)
	}
	// Settle the build (and its format conversions) before the clock starts.
	if _, err := a.NVals(); err != nil {
		log.Fatal(err)
	}
	mergesBefore := obs.StreamMerges.Value()
	bytesBefore := obs.StreamMergeBytes.Value()

	b := graphblas.NewUpdateBatch[float64]()
	batches := 0
	start := time.Now()
	for lo := 0; lo < len(updates); lo += batchEdges {
		hi := lo + batchEdges
		if hi > len(updates) {
			hi = len(updates)
		}
		b.Reset()
		applySchedule(b, updates[lo:hi])
		if err := a.ApplyUpdateBatch(b); err != nil {
			log.Fatal(err)
		}
		batches++
	}
	if err := graphblas.Wait(); err != nil {
		log.Fatal(err)
	}
	ingest := time.Since(start)

	start = time.Now()
	nv, err := a.NVals()
	if err != nil {
		log.Fatal(err)
	}
	firstRead := time.Since(start)

	resid, err := a.DeltaNVals()
	if err != nil {
		log.Fatal(err)
	}
	return streamIngestRow{
		BatchEdges:    batchEdges,
		Policy:        polName,
		Batches:       batches,
		NsPerEdge:     float64(ingest.Nanoseconds()) / float64(len(updates)),
		FirstReadNs:   float64(firstRead.Nanoseconds()),
		Merges:        obs.StreamMerges.Value() - mergesBefore,
		MergeBytes:    obs.StreamMergeBytes.Value() - bytesBefore,
		ResidualDelta: resid,
		FinalNVals:    nv,
	}
}

// streamMutate builds one batch of nUpdates against g and the updated graph
// (deterministic edge order) for the refalgo oracle.
func streamMutate(g *generate.Graph, nUpdates int, seed uint64) (*graphblas.UpdateBatch[float64], *generate.Graph) {
	edges := map[[2]int]float64{}
	for _, e := range g.Edges {
		edges[[2]int{e.Src, e.Dst}] = e.Weight
	}
	b := graphblas.NewUpdateBatch[float64]()
	for _, u := range streamSchedule(g, nUpdates, seed) {
		if u.del {
			b.Delete(u.i, u.j)
			delete(edges, [2]int{u.i, u.j})
		} else {
			b.Insert(u.i, u.j, 1)
			edges[[2]int{u.i, u.j}] = 1
		}
	}
	keys := make([][2]int, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x][0] != keys[y][0] {
			return keys[x][0] < keys[y][0]
		}
		return keys[x][1] < keys[y][1]
	})
	upd := &generate.Graph{N: g.N}
	for _, k := range keys {
		upd.Edges = append(upd.Edges, generate.Edge{Src: k[0], Dst: k[1], Weight: edges[k]})
	}
	return b, upd
}

func streamPRRun(base *generate.Graph, batchEdges int, seed uint64) streamPRRow {
	const damping, tol, maxIter = 0.85, 1e-8, 200
	a := streamFloat(base)
	r0, _, err := algorithms.PageRank(a, damping, tol, maxIter)
	if err != nil {
		log.Fatal(err)
	}

	batch, updated := streamMutate(base, batchEdges, seed)
	if err := a.ApplyUpdateBatch(batch); err != nil {
		log.Fatal(err)
	}
	// Force ingestion and the merged-view materialization now, so neither
	// contender's timing pays them.
	if _, err := a.NVals(); err != nil {
		log.Fatal(err)
	}

	var warm *graphblas.Vector[float64]
	var warmIters int
	warmD := timeIt(func() error {
		var err error
		warm, warmIters, err = algorithms.PageRankFrom(a, r0, damping, tol, maxIter)
		return err
	})
	var coldIters int
	coldD := timeIt(func() error {
		var err error
		_, coldIters, err = algorithms.PageRank(a, damping, tol, maxIter)
		return err
	})

	want, _ := refalgo.PageRank(refalgo.NewAdjacency(updated), damping, tol, maxIter)
	idx, val, err := warm.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	got := make([]float64, base.N)
	for k := range idx {
		got[idx[k]] = val[k]
	}
	ok := true
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-5 {
			ok = false
			break
		}
	}
	return streamPRRow{
		BatchEdges: batchEdges,
		ColdNs:     float64(coldD.Nanoseconds()),
		WarmNs:     float64(warmD.Nanoseconds()),
		ColdSweeps: coldIters,
		WarmSweeps: warmIters,
		Speedup:    float64(coldD) / float64(warmD),
		OracleOK:   ok,
	}
}

// runStream is the streaming-engine sweep: EXPERIMENTS.md E10.
func runStream(scale, ef int, seed uint64) {
	if scale < 12 {
		// The experiment's acceptance bar is a scale-12+ graph; smaller
		// workloads make the warm-start margin noise-dominated.
		scale = 12
	}
	header("STREAM", fmt.Sprintf("E10: streaming ingest and incremental recomputation, RMAT scale %d", scale))
	base := generate.RMAT(scale, ef, seed).Dedup(true)
	fmt.Printf("  workload: %d vertices, %d edges, %d updates per ingest run\n",
		base.N, len(base.Edges), streamTotalUpdates)

	report := streamReport{
		Generated: time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/grbench -exp STREAM -scale %d -ef %d -seed %d", scale, ef, seed),
		benchEnv:  currentEnv(),
		Scale:     scale,
		EdgeFac:   ef,
		BaseEdges: len(base.Edges),
		Note: "ingest rows are single-shot (ingestion is stateful); first_read_ns is " +
			"the post-ingest staleness price of the policy (manual defers merge-view " +
			"work to the first read, eager pays it during ingest); pagerank rows are " +
			"best-of-3 and warm restarts from the pre-update rank vector, validated " +
			"against the refalgo power-iteration oracle on the updated graph",
	}

	updates := streamSchedule(base, streamTotalUpdates, seed+1)
	policies := []struct {
		name string
		p    graphblas.MergePolicy
	}{
		{"eager", graphblas.EagerMerge()},
		{"size+age", graphblas.DefaultMergePolicy()},
		{"manual", graphblas.ManualMerge()},
	}
	fmt.Printf("  %-8s %-10s %8s %12s %14s %7s %12s %8s\n",
		"batch", "policy", "batches", "ns/edge", "first read", "merges", "merge bytes", "delta")
	for _, batchEdges := range []int{128, 1024, 8192} {
		for _, pol := range policies {
			row := streamIngestRun(base, updates, batchEdges, pol.name, pol.p)
			report.Ingest = append(report.Ingest, row)
			fmt.Printf("  %-8d %-10s %8d %12.1f %14v %7d %12d %8d\n",
				row.BatchEdges, row.Policy, row.Batches, row.NsPerEdge,
				time.Duration(row.FirstReadNs).Round(time.Microsecond),
				row.Merges, row.MergeBytes, row.ResidualDelta)
		}
	}

	fmt.Printf("  %-8s %14s %14s %8s %12s %12s %8s\n",
		"batch", "cold", "warm", "speedup", "cold sweeps", "warm sweeps", "oracle")
	for _, batchEdges := range []int{64, 512, 4096} {
		row := streamPRRun(base, batchEdges, seed+2)
		report.PageRank = append(report.PageRank, row)
		fmt.Printf("  %-8d %14v %14v %7.2fx %12d %12d %8s\n",
			row.BatchEdges,
			time.Duration(row.ColdNs).Round(time.Microsecond),
			time.Duration(row.WarmNs).Round(time.Microsecond),
			row.Speedup, row.ColdSweeps, row.WarmSweeps,
			map[bool]string{true: "✓", false: "✗"}[row.OracleOK])
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("BENCH_streaming.json", append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote BENCH_streaming.json")
}

package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/builtins"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

// buildAdjacencies materializes the standard workload in the three domains
// the experiments need.
func buildAdjacencies(g *generate.Graph) (*graphblas.Matrix[float64], *graphblas.Matrix[bool], *graphblas.Matrix[int32]) {
	rows, cols, w := g.Tuples()
	af, err := graphblas.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := af.Build(rows, cols, w, graphblas.First[float64]()); err != nil {
		log.Fatal(err)
	}
	ab, err := graphblas.NewMatrix[bool](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	bvals := make([]bool, len(rows))
	for i := range bvals {
		bvals[i] = true
	}
	if err := ab.Build(rows, cols, bvals, graphblas.LOr()); err != nil {
		log.Fatal(err)
	}
	ai, err := graphblas.NewMatrix[int32](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	ivals := make([]int32, len(rows))
	for i := range ivals {
		ivals[i] = 1
	}
	if err := ai.Build(rows, cols, ivals, graphblas.First[int32]()); err != nil {
		log.Fatal(err)
	}
	return af, ab, ai
}

// timeIt reports the best of three runs of f (after a GC barrier, so one
// section's garbage does not bill the next), aborting on error. Best-of-N
// is the right summary for a single-shot experiment table; the Go benchmark
// harness (bench_test.go) provides the statistically grounded numbers.
func timeIt(f func() error) time.Duration {
	best := time.Duration(0)
	for run := 0; run < 3; run++ {
		runtime.GC()
		start := time.Now()
		if err := f(); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); run == 0 || d < best {
			best = d
		}
	}
	return best
}

// runE1 demonstrates Table I: one fixed 6-vertex matrix multiplied under
// each of the five semirings, with the algebraic laws spot-checked.
func runE1(_, _ int, _ uint64) {
	header("E1", "Table I: five semirings over one stored matrix")
	// The semirings example holds the narrative version; here we verify the
	// five results against hand-computed expectations on the flight graph.
	const n = 6
	rows := []int{0, 0, 1, 1, 2, 3, 4, 4, 5}
	cols := []int{1, 4, 2, 3, 3, 5, 2, 5, 3}
	fare := []float64{99, 150, 80, 210, 65, 120, 70, 95, 60}

	af, _ := graphblas.NewMatrix[float64](n, n)
	if err := af.Build(rows, cols, fare, graphblas.NoAccum[float64]()); err != nil {
		log.Fatal(err)
	}
	// The seed value is the semiring's "neutral start": 1 for products, 0
	// for tropical sums (min-plus path lengths and min-max leg maxima).
	twoHop := func(s graphblas.Semiring[float64, float64, float64], seedVal float64) map[int]float64 {
		v, _ := graphblas.NewVector[float64](n)
		_ = v.SetElement(seedVal, 0)
		for hop := 0; hop < 2; hop++ {
			if err := graphblas.VxM(v, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, v, af, nil); err != nil {
				log.Fatal(err)
			}
		}
		idx, val, _ := v.ExtractTuples()
		out := map[int]float64{}
		for k := range idx {
			out[idx[k]] = val[k]
		}
		return out
	}
	check := func(name string, got, want map[int]float64) {
		ok := len(got) == len(want)
		for k, v := range want {
			if got[k] != v {
				ok = false
			}
		}
		fmt.Printf("  %-28s %-44s %s\n", name, fmt.Sprint(got), map[bool]string{true: "✓", false: "✗ want " + fmt.Sprint(want)}[ok])
	}
	// 2-hop paths from SFO: 0→1→2 (99,80), 0→1→3 (99,210), 0→4→2 (150,70),
	// 0→4→5 (150,95).
	check("arithmetic ⟨+,×⟩", twoHop(graphblas.PlusTimes[float64](), 1),
		map[int]float64{2: 99*80 + 150*70, 3: 99 * 210, 5: 150 * 95})
	check("tropical ⟨min,+⟩", twoHop(graphblas.MinPlus[float64](), 0),
		map[int]float64{2: 179, 3: 309, 5: 245})
	check("min-max ⟨min,max⟩", twoHop(graphblas.MinMax[float64](), 0),
		map[int]float64{2: 99, 3: 210, 5: 150})
	// GF(2) and power-set over the pattern.
	ab, _ := graphblas.NewMatrix[bool](n, n)
	if err := graphblas.ApplyM(ab, graphblas.NoMask, graphblas.NoAccum[bool](), graphblas.CastToBool[float64](), af, nil); err != nil {
		log.Fatal(err)
	}
	par, _ := graphblas.NewVector[bool](n)
	_ = par.SetElement(true, 0)
	for hop := 0; hop < 2; hop++ {
		if err := graphblas.VxM(par, graphblas.NoMaskV, graphblas.NoAccum[bool](), graphblas.XorAnd(), par, ab, nil); err != nil {
			log.Fatal(err)
		}
	}
	pi, pv, _ := par.ExtractTuples()
	gotPar := map[int]bool{}
	for k := range pi {
		gotPar[pi[k]] = pv[k]
	}
	// SFO 2-hop route counts: ORD 1 (via DEN... none) — computed by hand:
	// routes: 0→1→2, 0→1→3, 0→4→2, 0→4→5 → counts ORD:2 JFK:1 MIA:1.
	wantPar := map[int]bool{2: false, 3: true, 5: true}
	okPar := len(gotPar) == len(wantPar)
	for k, v := range wantPar {
		if gotPar[k] != v {
			okPar = false
		}
	}
	fmt.Printf("  %-28s %-44s %s\n", "GF(2) ⟨xor,and⟩ parity", fmt.Sprint(gotPar), map[bool]string{true: "✓", false: "✗"}[okPar])

	labels, err := algorithms.Reach(ab, []int{0, 2, 5})
	if err != nil {
		log.Fatal(err)
	}
	li, lv, _ := labels.ExtractTuples()
	gotReach := map[int]string{}
	for k := range li {
		gotReach[li[k]] = lv[k].String()
	}
	wantReach := map[int]string{0: "{0}", 1: "{0}", 2: "{0,1}", 3: "{0,1,2}", 4: "{0}", 5: "{0,1,2}"}
	okReach := len(gotReach) == len(wantReach)
	for k, v := range wantReach {
		if gotReach[k] != v {
			okReach = false
		}
	}
	fmt.Printf("  %-28s %-44s %s\n", "power set ⟨∪,∩⟩ reach", fmt.Sprint(gotReach), map[bool]string{true: "✓", false: "✗"}[okReach])
}

// runE2 times every Table II operation on the standard RMAT workload.
func runE2(scale, ef int, seed uint64) {
	header("E2", fmt.Sprintf("Table II: operation timings on RMAT scale %d (ef %d)", scale, ef))
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	af, ab, _ := buildAdjacencies(g)
	n := g.N
	fmt.Printf("  workload: %d vertices, %d edges\n", n, len(g.Edges))
	pt := graphblas.PlusTimes[float64]()

	frontier, _ := graphblas.NewVector[float64](n)
	rng := generate.NewRNG(seed)
	for k := 0; k < n/16; k++ {
		_ = frontier.SetElement(1, rng.Intn(n))
	}
	c, _ := graphblas.NewMatrix[float64](n, n)
	w, _ := graphblas.NewVector[float64](n)
	_ = ab

	report := func(name string, d time.Duration, extra string) {
		fmt.Printf("  %-12s %12v   %s\n", name, d.Round(time.Microsecond), extra)
	}
	d := timeIt(func() error {
		if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), pt, af, af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	nv, _ := c.NVals()
	report("mxm", d, fmt.Sprintf("C = A⊕.⊗A, %d output entries", nv))

	d = timeIt(func() error {
		if err := graphblas.MxV(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, af, frontier, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("mxv", d, "pull (dot) kernel")

	d = timeIt(func() error {
		if err := graphblas.VxM(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, frontier, af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("vxm", d, "push kernel")

	d = timeIt(func() error {
		if err := graphblas.EWiseMultM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.Times[float64](), af, af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("eWiseMult", d, "A .× A (intersection)")

	d = timeIt(func() error {
		if err := graphblas.EWiseAddM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.Plus[float64](), af, af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("eWiseAdd", d, "A .+ A (union)")

	d = timeIt(func() error {
		if err := graphblas.ReduceMatrixToVector(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), graphblas.PlusMonoid[float64](), af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("reduce", d, "row sums")

	d = timeIt(func() error {
		if err := graphblas.ApplyM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.AInv[float64](), af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("apply", d, "negate all values")

	d = timeIt(func() error {
		if err := graphblas.Transpose(c, graphblas.NoMask, graphblas.NoAccum[float64](), af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("transpose", d, "(cached after first run — by design)")

	half := make([]int, n/2)
	for i := range half {
		half[i] = 2 * i
	}
	sub, _ := graphblas.NewMatrix[float64](len(half), len(half))
	d = timeIt(func() error {
		if err := graphblas.ExtractSubmatrix(sub, graphblas.NoMask, graphblas.NoAccum[float64](), af, half, half, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("extract", d, "even-index submatrix")

	d = timeIt(func() error {
		if err := graphblas.AssignMatrixScalar(c, graphblas.NoMask, graphblas.NoAccum[float64](), 1, half, half, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	report("assign", d, "scalar fill of even block")
}

// runE3 shows the mask pruning benefit of Figure 2's masked mxm.
func runE3(scale, ef int, seed uint64) {
	header("E3", fmt.Sprintf("Figure 2: masked vs unmasked mxm on RMAT scale %d", scale))
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	af, ab, _ := buildAdjacencies(g)
	n := g.N
	_ = ab
	pt := graphblas.PlusTimes[float64]()
	// Sparse mask: the graph's own pattern (≈nnz positions of n² possible).
	c, _ := graphblas.NewMatrix[float64](n, n)
	dU := timeIt(func() error {
		if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), pt, af, af, nil); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	full, _ := c.NVals()
	dM := timeIt(func() error {
		if err := graphblas.MxM(c, af, graphblas.NoAccum[float64](), pt, af, af, graphblas.Desc().ReplaceOutput()); err != nil {
			return err
		}
		return graphblas.Wait()
	})
	masked, _ := c.NVals()
	fmt.Printf("  unmasked C=A²:    %12v   %9d entries\n", dU.Round(time.Microsecond), full)
	fmt.Printf("  masked  C⟨A⟩=A²:  %12v   %9d entries   speedup ×%.2f\n",
		dM.Round(time.Microsecond), masked, float64(dU)/float64(dM))
	fmt.Println("  (the 64-combination semantics sweep runs in `go test -run TestFig2`)")
}

// runE5 reproduces the Figure 3 experiment: batched BC vs classic Brandes
// across scales.
func runE5(scale, ef int, seed uint64) {
	header("E5", "Figure 3: batched BC_update vs classic Brandes")
	fmt.Printf("  %-8s %10s %10s %14s %14s %8s %10s\n",
		"scale", "vertices", "edges", "GraphBLAS", "Brandes", "ratio", "agreement")
	for s := 8; s <= scale; s++ {
		g := generate.RMAT(s, ef, seed).Dedup(true)
		_, _, ai := buildAdjacencies(g)
		sources := generate.NewRNG(seed + 1).Perm(g.N)[:16]
		var delta *graphblas.Vector[float32]
		dG := timeIt(func() error {
			var err error
			delta, err = algorithms.BCUpdate(ai, sources)
			if err != nil {
				return err
			}
			_, _, err = delta.ExtractTuples()
			return err
		})
		var want []float64
		dR := timeIt(func() error {
			want = refalgo.BrandesBC(refalgo.NewAdjacency(g), sources)
			return nil
		})
		idx, val, _ := delta.ExtractTuples()
		got := make([]float64, g.N)
		for k := range idx {
			got[idx[k]] = float64(val[k])
		}
		worst := 0.0
		for v := 0; v < g.N; v++ {
			d := math.Abs(got[v]-want[v]) / math.Max(1, math.Abs(want[v]))
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("  %-8d %10d %10d %14v %14v %8.2f %10s\n",
			s, g.N, len(g.Edges), dG.Round(time.Microsecond), dR.Round(time.Microsecond),
			float64(dG)/float64(dR), map[bool]string{true: "✓", false: "✗"}[worst < 1e-3])
	}
}

// runE6 times the nonblocking engine's dead-store elimination.
func runE6(scale, ef int, seed uint64) {
	header("E6", "Section IV: nonblocking dead-store elimination")
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	af, _, _ := buildAdjacencies(g)
	n := g.N
	pt := graphblas.PlusTimes[float64]()
	// An overwrite-heavy sequence: k full overwrites of c, only the last
	// one observable.
	sequence := func() error {
		c, err := graphblas.NewMatrix[float64](n, n)
		if err != nil {
			return err
		}
		for k := 0; k < 8; k++ {
			if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), pt, af, af, nil); err != nil {
				return err
			}
		}
		if err := graphblas.Wait(); err != nil {
			return err
		}
		_, err = c.NVals()
		return err
	}
	graphblas.SetElision(false)
	dOff := timeIt(sequence)
	graphblas.SetElision(true)
	dOn := timeIt(sequence)
	st := graphblas.StatsSnapshot()
	fmt.Printf("  8 redundant A² overwrites, elision off: %12v\n", dOff.Round(time.Microsecond))
	fmt.Printf("  8 redundant A² overwrites, elision on:  %12v   speedup ×%.2f\n",
		dOn.Round(time.Microsecond), float64(dOff)/float64(dOn))
	fmt.Printf("  engine counters: %d enqueued, %d executed, %d elided\n",
		st.OpsEnqueued, st.OpsExecuted, st.OpsElided)
}

// runE8 compares the GraphBLAS algorithm suite against the direct baselines.
func runE8(scale, ef int, seed uint64) {
	header("E8", fmt.Sprintf("Section VIII: algorithm suite vs baselines, RMAT scale %d", scale))
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	sym := generate.RMAT(scale, ef, seed).Symmetrize().Dedup(true)
	af, ab, _ := buildAdjacencies(g)
	_, sb, _ := buildAdjacencies(sym)
	adj := refalgo.NewAdjacency(g)
	sadj := refalgo.NewAdjacency(sym)
	fmt.Printf("  %-12s %14s %14s %8s %10s\n", "algorithm", "GraphBLAS", "baseline", "ratio", "agreement")

	row := func(name string, grb func() (any, error), base func() any, agree func(any, any) bool) {
		var gv any
		dG := timeIt(func() error {
			var err error
			gv, err = grb()
			return err
		})
		var bv any
		dB := timeIt(func() error { bv = base(); return nil })
		fmt.Printf("  %-12s %14v %14v %8.2f %10s\n", name,
			dG.Round(time.Microsecond), dB.Round(time.Microsecond), float64(dG)/float64(dB),
			map[bool]string{true: "✓", false: "✗"}[agree(gv, bv)])
	}

	row("BFS",
		func() (any, error) {
			lv, err := algorithms.BFSLevels(ab, 0)
			if err != nil {
				return nil, err
			}
			idx, val, err := lv.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]int, g.N)
			for i := range out {
				out[i] = -1
			}
			for k := range idx {
				out[idx[k]] = int(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.BFSLevels(adj, 0) },
		func(a, b any) bool {
			x, y := a.([]int), b.([]int)
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		})

	row("SSSP",
		func() (any, error) {
			dist, err := algorithms.SSSP(af, 0)
			if err != nil {
				return nil, err
			}
			idx, val, err := dist.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]float64, g.N)
			for i := range out {
				out[i] = math.Inf(1)
			}
			for k := range idx {
				out[idx[k]] = val[k]
			}
			return out, nil
		},
		func() any { return refalgo.Dijkstra(adj, 0) },
		func(a, b any) bool {
			x, y := a.([]float64), b.([]float64)
			for i := range x {
				if math.IsInf(x[i], 1) != math.IsInf(y[i], 1) {
					return false
				}
				if !math.IsInf(x[i], 1) && math.Abs(x[i]-y[i]) > 1e-9 {
					return false
				}
			}
			return true
		})

	row("PageRank",
		func() (any, error) {
			r, _, err := algorithms.PageRank(af, 0.85, 1e-8, 200)
			if err != nil {
				return nil, err
			}
			idx, val, err := r.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]float64, g.N)
			for k := range idx {
				out[idx[k]] = val[k]
			}
			return out, nil
		},
		func() any { r, _ := refalgo.PageRank(adj, 0.85, 1e-8, 200); return r },
		func(a, b any) bool {
			x, y := a.([]float64), b.([]float64)
			for i := range x {
				if math.Abs(x[i]-y[i]) > 1e-5 {
					return false
				}
			}
			return true
		})

	row("Triangles",
		func() (any, error) { return algorithms.TriangleCount(sb) },
		func() any { return refalgo.TriangleCount(sadj) },
		func(a, b any) bool { return a.(int64) == b.(int64) })

	row("Components",
		func() (any, error) {
			l, err := algorithms.ConnectedComponents(sb)
			if err != nil {
				return nil, err
			}
			idx, val, err := l.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]int, sym.N)
			for k := range idx {
				out[idx[k]] = int(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.ConnectedComponents(sym) },
		func(a, b any) bool {
			x, y := a.([]int), b.([]int)
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		})

	intsAgree := func(a, b any) bool {
		x, y := a.([]int), b.([]int)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}

	row("BFS (dir-opt)",
		func() (any, error) {
			lv, err := algorithms.BFSLevelsDO(ab, 0)
			if err != nil {
				return nil, err
			}
			idx, val, err := lv.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]int, g.N)
			for i := range out {
				out[i] = -1
			}
			for k := range idx {
				out[idx[k]] = int(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.BFSLevels(adj, 0) },
		intsAgree)

	row("k-core",
		func() (any, error) {
			c, err := algorithms.CoreNumbers(sb)
			if err != nil {
				return nil, err
			}
			idx, val, err := c.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]int, sym.N)
			for k := range idx {
				out[idx[k]] = int(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.CoreNumbers(sadj) },
		intsAgree)

	row("SCC",
		func() (any, error) {
			l, err := algorithms.SCC(ab)
			if err != nil {
				return nil, err
			}
			idx, val, err := l.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]int, g.N)
			for k := range idx {
				out[idx[k]] = int(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.TarjanSCC(adj) },
		intsAgree)

	// BC is E5's table; include the single-scale row here for completeness.
	_, _, ai := buildAdjacencies(g)
	sources := generate.NewRNG(seed + 1).Perm(g.N)[:16]
	row("BC (batch16)",
		func() (any, error) {
			d, err := algorithms.BCUpdate(ai, sources)
			if err != nil {
				return nil, err
			}
			idx, val, err := d.ExtractTuples()
			if err != nil {
				return nil, err
			}
			out := make([]float64, g.N)
			for k := range idx {
				out[idx[k]] = float64(val[k])
			}
			return out, nil
		},
		func() any { return refalgo.BrandesBC(adj, sources) },
		func(a, b any) bool {
			x, y := a.([]float64), b.([]float64)
			for i := range x {
				if math.Abs(x[i]-y[i])/math.Max(1, math.Abs(y[i])) > 1e-3 {
					return false
				}
			}
			return true
		})

	_ = builtins.PlusFP32
}

// runE7b exercises the fault-injection harness end to end: deterministic
// fault plans against the live engine, reporting how many faults were
// injected, how the engine absorbed them (CSR retries vs transactional
// rollbacks), and whether the observable results survived intact. This is
// the quantitative companion to the E7 error-model test suite (Section V).
func runE7b(scale, ef int, seed uint64) {
	header("E7b", fmt.Sprintf("Section V: fault injection and transactional recovery, RMAT scale %d", scale))
	g := generate.RMAT(scale, ef, seed).Dedup(true)
	n := g.N
	pt := graphblas.PlusTimes[float64]()
	defer graphblas.DisableFaults()

	// Dense operand vector and the clean reference result.
	ones := make([]float64, n)
	idx := make([]int, n)
	for i := range ones {
		ones[i], idx[i] = 1, i
	}
	newX := func() *graphblas.Vector[float64] {
		x, err := graphblas.NewVector[float64](n)
		if err != nil {
			log.Fatal(err)
		}
		if err := x.Build(idx, ones, graphblas.NoAccum[float64]()); err != nil {
			log.Fatal(err)
		}
		return x
	}
	vecOf := func(v *graphblas.Vector[float64]) map[int]float64 {
		vi, vv, err := v.ExtractTuples()
		if err != nil {
			log.Fatal(err)
		}
		out := make(map[int]float64, len(vi))
		for k := range vi {
			out[vi[k]] = vv[k]
		}
		return out
	}
	af, _, _ := buildAdjacencies(g)
	ref, err := graphblas.NewVector[float64](n)
	if err != nil {
		log.Fatal(err)
	}
	if err := graphblas.MxV(ref, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, af, newX(), nil); err != nil {
		log.Fatal(err)
	}
	if err := graphblas.Wait(); err != nil {
		log.Fatal(err)
	}
	want := vecOf(ref)

	fmt.Printf("  %-38s %9s %8s %10s %7s   %s\n", "scenario", "injected", "retries", "rollbacks", "errors", "result")

	agree := func(v *graphblas.Vector[float64]) bool {
		got := vecOf(v)
		if len(got) != len(want) {
			return false
		}
		for i, x := range want {
			if got[i] != x {
				return false
			}
		}
		return true
	}

	// mxvRound runs rounds MxV products on a fresh bitmap-pinned adjacency
	// under whatever plan the caller installed and reports the outcome row.
	mxvRound := func(name string, rounds int) {
		a, _, _ := buildAdjacencies(g)
		if err := a.SetFormat(graphblas.FormatBitmap); err != nil {
			log.Fatal(err)
		}
		before := graphblas.StatsSnapshot()
		ok := true
		for r := 0; r < rounds; r++ {
			w, err := graphblas.NewVector[float64](n)
			if err != nil {
				log.Fatal(err)
			}
			if err := graphblas.MxV(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, a, newX(), nil); err != nil {
				log.Fatal(err)
			}
			if err := graphblas.Wait(); err != nil {
				ok = false
			}
			ok = ok && agree(w)
		}
		injected := graphblas.InjectedFaults()
		graphblas.DisableFaults()
		graphblas.SetAllocBudget(0)
		after := graphblas.StatsSnapshot()
		fmt.Printf("  %-38s %9d %8d %10d %7d   %s\n", name, injected,
			after.KernelRetries-before.KernelRetries, after.Rollbacks-before.Rollbacks,
			len(graphblas.SequenceErrors()),
			map[bool]string{true: "✓ matches CSR result", false: "✗ diverged"}[ok])
	}

	graphblas.ConfigureFaults(int64(seed), graphblas.FaultRule{Site: "format.kernel.bitmap.*", Kind: graphblas.FaultErr, Every: 2})
	mxvRound("bitmap kernel faults (every 2nd call)", 8)

	graphblas.SetAllocBudget(1 << 10)
	mxvRound("alloc governor starved (1 KiB cap)", 8)

	// Op-level faults: whole operations fail; outputs roll back and the
	// sequence error log records each failure.
	graphblas.ConfigureFaults(int64(seed), graphblas.FaultRule{Site: "MxV", Kind: graphblas.FaultOOM, Every: 3})
	before := graphblas.StatsSnapshot()
	survived, logged := 0, 0
	const opRounds = 9
	for r := 0; r < opRounds; r++ {
		w, err := graphblas.NewVector[float64](n)
		if err != nil {
			log.Fatal(err)
		}
		if err := graphblas.MxV(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, af, newX(), nil); err != nil {
			log.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			// Each Wait terminates one sequence; harvest its error log
			// before the next sequence replaces it.
			logged += len(graphblas.SequenceErrors())
			continue
		}
		if agree(w) {
			survived++
		}
	}
	injected := graphblas.InjectedFaults()
	graphblas.DisableFaults()
	after := graphblas.StatsSnapshot()
	fmt.Printf("  %-38s %9d %8d %10d %7d   ✓ %d/%d ops survived, failures logged\n",
		fmt.Sprintf("op-level OOM (every 3rd of %d MxV)", opRounds), injected,
		after.KernelRetries-before.KernelRetries, after.Rollbacks-before.Rollbacks,
		logged, survived, opRounds)

	// A faulty user operator panics mid-kernel: the op fails with GrB_PANIC,
	// the output rolls back, and a full overwrite rehabilitates it.
	boom, err := graphblas.NewUnaryOp("boom", func(float64) float64 { panic("user operator bug") })
	if err != nil {
		log.Fatal(err)
	}
	c, err := graphblas.NewMatrix[float64](n, n)
	if err != nil {
		log.Fatal(err)
	}
	before = graphblas.StatsSnapshot()
	_ = graphblas.ApplyM(c, graphblas.NoMask, graphblas.NoAccum[float64](), boom, af, nil)
	werr := graphblas.Wait()
	panicLogged := len(graphblas.SequenceErrors())
	rehab := graphblas.Transpose(c, graphblas.NoMask, graphblas.NoAccum[float64](), af, nil) == nil && graphblas.Wait() == nil
	after = graphblas.StatsSnapshot()
	status := "✗ not recovered"
	if graphblas.InfoOf(werr) == graphblas.PanicInfo && rehab {
		status = "✓ GrB_PANIC + rollback, rehabilitated"
	}
	fmt.Printf("  %-38s %9d %8d %10d %7d   %s\n", "faulty user operator (panic)", 0,
		after.KernelRetries-before.KernelRetries, after.Rollbacks-before.Rollbacks,
		panicLogged, status)
}

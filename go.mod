module graphblas

go 1.24

package graphblas_test

import (
	"fmt"

	"graphblas"
)

// ExampleMxM demonstrates the Figure 2 operation: a masked, accumulated
// matrix product over the arithmetic semiring.
func ExampleMxM() {
	a, _ := graphblas.NewMatrix[float64](2, 2)
	_ = a.Build([]int{0, 0, 1}, []int{0, 1, 1}, []float64{1, 2, 3}, graphblas.NoAccum[float64]())

	c, _ := graphblas.NewMatrix[float64](2, 2)
	_ = graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](),
		graphblas.PlusTimes[float64](), a, a, nil)

	is, js, vs, _ := c.ExtractTuples()
	for k := range is {
		fmt.Printf("C(%d,%d) = %g\n", is[k], js[k], vs[k])
	}
	// Output:
	// C(0,0) = 1
	// C(0,1) = 8
	// C(1,1) = 9
}

// ExampleVxM demonstrates one BFS frontier expansion with a complemented
// write mask — the paper's central idiom (Section VII).
func ExampleVxM() {
	// Path graph 0→1→2→3.
	a, _ := graphblas.NewMatrix[bool](4, 4)
	_ = a.Build([]int{0, 1, 2}, []int{1, 2, 3}, []bool{true, true, true}, graphblas.NoAccum[bool]())

	frontier, _ := graphblas.NewVector[bool](4)
	_ = frontier.SetElement(true, 0)
	visited, _ := graphblas.NewVector[bool](4)
	_ = visited.SetElement(true, 0)

	// frontier<!visited> = frontier ∨.∧ A
	_ = graphblas.VxM(frontier, visited, graphblas.NoAccum[bool](),
		graphblas.LorLand(), frontier, a, graphblas.Desc().CompMask().ReplaceOutput())

	idx, _, _ := frontier.ExtractTuples()
	fmt.Println("next frontier:", idx)
	// Output:
	// next frontier: [1]
}

// ExampleMinPlus shows the Table I semiring swap: the same matrix answers a
// shortest-path question under min-plus and a path-count question under
// plus-times.
func ExampleMinPlus() {
	// 0→1 (cost 3), 1→2 (cost 4), 0→2 (cost 10).
	a, _ := graphblas.NewMatrix[float64](3, 3)
	_ = a.Build([]int{0, 1, 0}, []int{1, 2, 2}, []float64{3, 4, 10}, graphblas.NoAccum[float64]())

	c, _ := graphblas.NewMatrix[float64](3, 3)
	_ = graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](),
		graphblas.MinPlus[float64](), a, a, nil)
	two, _ := c.ExtractElement(0, 2)
	fmt.Printf("cheapest 2-hop 0→2: %g\n", two)
	// Output:
	// cheapest 2-hop 0→2: 7
}

// ExampleReduceMatrixToVector reduces matrix rows with a monoid, the
// Figure 3 line 78 pattern including the accumulator.
func ExampleReduceMatrixToVector() {
	a, _ := graphblas.NewMatrix[float64](3, 3)
	_ = a.Build([]int{0, 0, 2}, []int{0, 1, 2}, []float64{1, 2, 5}, graphblas.NoAccum[float64]())

	w, _ := graphblas.NewVector[float64](3)
	_ = graphblas.AssignVectorScalar(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), -1, graphblas.All, nil)
	_ = graphblas.ReduceMatrixToVector(w, graphblas.NoMaskV, graphblas.Plus[float64](),
		graphblas.PlusMonoid[float64](), a, nil)

	idx, val, _ := w.ExtractTuples()
	for k := range idx {
		fmt.Printf("w(%d) = %g\n", idx[k], val[k])
	}
	// Output:
	// w(0) = 2
	// w(1) = -1
	// w(2) = 4
}

// ExampleUnionIntersect runs the power-set semiring of Table I: label sets
// flowing along edges with ∪ merging parallel paths.
func ExampleUnionIntersect() {
	// Diamond: 0→1, 0→2, 1→3, 2→3. Which of the sources {0, 1} reach 3?
	a, _ := graphblas.NewMatrix[graphblas.IntSet](4, 4)
	full := graphblas.FullIntSet(2)
	_ = a.Build([]int{0, 0, 1, 2}, []int{1, 2, 3, 3},
		[]graphblas.IntSet{full, full, full, full}, graphblas.NoAccum[graphblas.IntSet]())

	labels, _ := graphblas.NewVector[graphblas.IntSet](4)
	_ = labels.SetElement(graphblas.IntSetOf(2, 0), 0)
	_ = labels.SetElement(graphblas.IntSetOf(2, 1), 1)

	s := graphblas.UnionIntersect(2)
	for hop := 0; hop < 3; hop++ {
		_ = graphblas.VxM(labels, graphblas.NoMaskV, s.Add.Op, s, labels, a, nil)
	}
	at3, _ := labels.ExtractElement(3)
	fmt.Println("sources reaching vertex 3:", at3)
	// Output:
	// sources reaching vertex 3: {0,1}
}

// ExampleMatrixSerialize round-trips a matrix through the binary format.
func ExampleMatrixSerialize() {
	m, _ := graphblas.NewMatrix[int32](2, 3)
	_ = m.SetElement(7, 1, 2)

	var buf writerBuffer
	_ = graphblas.MatrixSerialize(m, &buf)
	back, _ := graphblas.MatrixDeserialize[int32](&buf)

	v, _ := back.ExtractElement(1, 2)
	nr, _ := back.NRows()
	nc, _ := back.NCols()
	fmt.Printf("%dx%d matrix, m(1,2) = %d\n", nr, nc, v)
	// Output:
	// 2x3 matrix, m(1,2) = 7
}

// writerBuffer is a minimal in-memory io.ReadWriter for the example.
type writerBuffer struct{ data []byte }

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
func (b *writerBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

package graphblas_test

// Facade coverage for the observability extension: the tracer hook, the
// built-in metrics tracer, and the exporters, all through the public API.

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"graphblas"
)

type recordingTracer struct {
	mu    sync.Mutex
	spans []*graphblas.Span
}

func (r *recordingTracer) OnSpan(s *graphblas.Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

func TestObservabilityFacade(t *testing.T) {
	rec := &recordingTracer{}
	prev := graphblas.SetTracer(rec)
	defer graphblas.SetTracer(prev)

	pt := graphblas.PlusTimes[float64]()
	a := mat(t, 3, 3, []int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3})
	c, _ := graphblas.NewMatrix[float64](3, 3)
	if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), pt, a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	rec.mu.Lock()
	var mxm *graphblas.Span
	for _, s := range rec.spans {
		if s.Op == "MxM" {
			mxm = s
		}
	}
	rec.mu.Unlock()
	if mxm == nil {
		t.Fatalf("no MxM span delivered to the registered tracer")
	}
	if mxm.Outcome != graphblas.SpanOK {
		t.Errorf("MxM span outcome: got %v want %v", mxm.Outcome, graphblas.SpanOK)
	}
	if mxm.Duration() <= 0 {
		t.Errorf("MxM span has no duration")
	}

	// Swapping in the metrics tracer feeds the registry, which both
	// exporters expose.
	graphblas.SetTracer(graphblas.NewMetricsTracer())
	u := vec(t, 3, []int{0, 1, 2}, []float64{1, 1, 1})
	w, _ := graphblas.NewVector[float64](3)
	if err := graphblas.MxV(w, graphblas.NoMaskV, graphblas.NoAccum[float64](), pt, a, u, nil); err != nil {
		t.Fatalf("MxV: %v", err)
	}
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	var buf bytes.Buffer
	if err := graphblas.WriteMetricsText(&buf); err != nil {
		t.Fatalf("WriteMetricsText: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE graphblas_ops_executed_total counter",
		`graphblas_ops_executed_total{op="MxV"}`,
		"# TYPE graphblas_op_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}

	snap := graphblas.MetricsSnapshot()
	if len(snap) == 0 {
		t.Fatalf("empty metrics snapshot")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-able: %v", err)
	}
	if _, ok := snap["graphblas_ops_executed_total"]; !ok {
		t.Errorf("snapshot missing ops-executed counter")
	}

	// Idempotent expvar publication must not panic, including when repeated.
	graphblas.PublishExpvarMetrics()
	graphblas.PublishExpvarMetrics()

	if on := graphblas.SetProfilingLabels(true); on {
		t.Errorf("profiling labels were already on")
	}
	if on := graphblas.SetProfilingLabels(false); !on {
		t.Errorf("SetProfilingLabels did not report the previous setting")
	}
}

package graphblas_test

// Facade coverage for the dataflow-scheduler API: the Scheduler type and
// its toggles forward to internal/core, StatsSnapshot exposes the DAG
// counters, and a parallel flush through the public API behaves like the
// sequential one.

import (
	"testing"

	"graphblas"
)

func TestSchedulerFacade(t *testing.T) {
	if s := graphblas.CurrentScheduler(); s != graphblas.SchedDag {
		t.Fatalf("CurrentScheduler() = %v, want dag (the default)", s)
	}
	if s := graphblas.SchedDag.String(); s != "dag" {
		t.Fatalf("SchedDag.String() = %q", s)
	}
	if s := graphblas.SchedSequential.String(); s != "sequential" {
		t.Fatalf("SchedSequential.String() = %q", s)
	}
	prev := graphblas.SetScheduler(graphblas.SchedSequential)
	if prev != graphblas.SchedDag {
		t.Fatalf("SetScheduler returned %v, want dag", prev)
	}
	defer graphblas.SetScheduler(prev)
	if s := graphblas.CurrentScheduler(); s != graphblas.SchedSequential {
		t.Fatalf("CurrentScheduler() = %v after SetScheduler(sequential)", s)
	}
}

func TestStatsSnapshotDagCounters(t *testing.T) {
	prevW := graphblas.SetMaxWorkers(4)
	defer graphblas.SetMaxWorkers(prevW)
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("drain Wait: %v", err)
	}
	double, _ := graphblas.NewUnaryOp("double", func(x float64) float64 { return 2 * x })
	// Four independent apply chains: a 4-node, 0-edge DAG. Sources are
	// committed first so the measured flush holds exactly the four applies.
	var src, dst [4]*graphblas.Matrix[float64]
	for k := range dst {
		src[k] = mat(t, 1, 1, []int{0}, []int{0}, []float64{float64(k + 1)})
		dst[k], _ = graphblas.NewMatrix[float64](1, 1)
	}
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("setup Wait: %v", err)
	}
	before := graphblas.StatsSnapshot()
	for k := range dst {
		if err := graphblas.ApplyM(dst[k], graphblas.NoMask, graphblas.NoAccum[float64](), double, src[k], nil); err != nil {
			t.Fatalf("ApplyM %d: %v", k, err)
		}
	}
	if err := graphblas.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	after := graphblas.StatsSnapshot()
	if after.ParallelFlushes <= before.ParallelFlushes {
		t.Errorf("ParallelFlushes did not grow: %d -> %d", before.ParallelFlushes, after.ParallelFlushes)
	}
	if after.DagNodes <= before.DagNodes {
		t.Errorf("DagNodes did not grow: %d -> %d", before.DagNodes, after.DagNodes)
	}
	for k := range dst {
		matHas(t, dst[k], 0, 0, 2*float64(k+1), "dag result")
	}
}

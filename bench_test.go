package graphblas_test

// The benchmark harness regenerating the per-table / per-figure experiments
// of EXPERIMENTS.md:
//
//	BenchmarkTableI_*     — the five semirings over one fixed matrix
//	BenchmarkTableII_*    — every fundamental operation
//	BenchmarkFig2_*       — masked vs unmasked mxm (Figure 2 semantics)
//	BenchmarkFig3_*       — batched BC vs classic Brandes (Figure 3)
//	BenchmarkExecMode_*   — blocking vs nonblocking engine (Section IV, E6)
//	BenchmarkE8_*         — algorithm suite vs direct baselines
//	BenchmarkAblation_*   — the DESIGN.md §4 design-choice ablations
//
// Run: go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/generate"
	"graphblas/internal/parallel"
	"graphblas/internal/refalgo"
	"graphblas/internal/sparse"
)

const (
	benchScale = 12
	benchEF    = 8
	benchSeed  = 42
)

type workload struct {
	g    *generate.Graph
	sym  *generate.Graph
	adj  *refalgo.Adjacency
	sadj *refalgo.Adjacency
	af   *graphblas.Matrix[float64]
	ab   *graphblas.Matrix[bool]
	ai   *graphblas.Matrix[int32]
	sb   *graphblas.Matrix[bool]
	csr  *sparse.CSR[float64]
	// frontier vectors at several densities (fraction of n).
	frontiers map[string]*graphblas.Vector[float64]
}

var (
	wlOnce sync.Once
	wl     *workload
)

func benchWorkload(b *testing.B) *workload {
	b.Helper()
	wlOnce.Do(func() {
		g := generate.RMAT(benchScale, benchEF, benchSeed).Dedup(true)
		sym := generate.RMAT(benchScale, benchEF, benchSeed).Symmetrize().Dedup(true)
		w := &workload{
			g:    g,
			sym:  sym,
			adj:  refalgo.NewAdjacency(g),
			sadj: refalgo.NewAdjacency(sym),
		}
		rows, cols, wts := g.Tuples()
		w.af, _ = graphblas.NewMatrix[float64](g.N, g.N)
		if err := w.af.Build(rows, cols, wts, graphblas.First[float64]()); err != nil {
			panic(err)
		}
		bv := make([]bool, len(rows))
		iv := make([]int32, len(rows))
		for i := range bv {
			bv[i] = true
			iv[i] = 1
		}
		w.ab, _ = graphblas.NewMatrix[bool](g.N, g.N)
		if err := w.ab.Build(rows, cols, bv, graphblas.LOr()); err != nil {
			panic(err)
		}
		w.ai, _ = graphblas.NewMatrix[int32](g.N, g.N)
		if err := w.ai.Build(rows, cols, iv, graphblas.First[int32]()); err != nil {
			panic(err)
		}
		srows, scols, _ := sym.Tuples()
		sv := make([]bool, len(srows))
		for i := range sv {
			sv[i] = true
		}
		w.sb, _ = graphblas.NewMatrix[bool](sym.N, sym.N)
		if err := w.sb.Build(srows, scols, sv, graphblas.LOr()); err != nil {
			panic(err)
		}
		var ok bool
		w.csr, ok = sparse.BuildCSR(g.N, g.N, rows, cols, wts, func(a, _ float64) float64 { return a })
		if !ok {
			panic("BuildCSR")
		}
		w.frontiers = map[string]*graphblas.Vector[float64]{}
		rng := generate.NewRNG(benchSeed + 9)
		for _, f := range []struct {
			name string
			frac int // one entry per frac vertices
		}{{"dense", 1}, {"p25", 4}, {"p03", 32}, {"sparse", 512}} {
			v, _ := graphblas.NewVector[float64](g.N)
			for i := 0; i < g.N/f.frac; i++ {
				_ = v.SetElement(1, rng.Intn(g.N))
			}
			w.frontiers[f.name] = v
		}
		if err := graphblas.Wait(); err != nil {
			panic(err)
		}
		wl = w
	})
	return wl
}

// --- Table I: one matrix, five semirings -------------------------------

func benchSemiringMxV(b *testing.B, s graphblas.Semiring[float64, float64, float64]) {
	w := benchWorkload(b)
	u := w.frontiers["p25"]
	out, _ := graphblas.NewVector[float64](w.g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxV(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, w.af, u, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI_Arithmetic(b *testing.B) { benchSemiringMxV(b, graphblas.PlusTimes[float64]()) }
func BenchmarkTableI_MaxPlus(b *testing.B)    { benchSemiringMxV(b, graphblas.MaxPlus[float64]()) }
func BenchmarkTableI_MinMax(b *testing.B)     { benchSemiringMxV(b, graphblas.MinMax[float64]()) }

func BenchmarkTableI_GF2(b *testing.B) {
	w := benchWorkload(b)
	u, _ := graphblas.NewVector[bool](w.g.N)
	rng := generate.NewRNG(1)
	for i := 0; i < w.g.N/4; i++ {
		_ = u.SetElement(true, rng.Intn(w.g.N))
	}
	out, _ := graphblas.NewVector[bool](w.g.N)
	s := graphblas.XorAnd()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxV(out, graphblas.NoMaskV, graphblas.NoAccum[bool](), s, w.ab, u, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI_PowerSet(b *testing.B) {
	w := benchWorkload(b)
	const uni = 32
	full := graphblas.FullIntSet(uni)
	setA, _ := graphblas.NewMatrix[graphblas.IntSet](w.g.N, w.g.N)
	lift, _ := graphblas.NewUnaryOp("toU", func(bool) graphblas.IntSet { return full })
	if err := graphblas.ApplyM(setA, graphblas.NoMask, graphblas.NoAccum[graphblas.IntSet](), lift, w.ab, nil); err != nil {
		b.Fatal(err)
	}
	u, _ := graphblas.NewVector[graphblas.IntSet](w.g.N)
	rng := generate.NewRNG(2)
	for k := 0; k < uni; k++ {
		_ = u.SetElement(graphblas.IntSetOf(uni, k), rng.Intn(w.g.N))
	}
	out, _ := graphblas.NewVector[graphblas.IntSet](w.g.N)
	s := graphblas.UnionIntersect(uni)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.VxM(out, graphblas.NoMaskV, graphblas.NoAccum[graphblas.IntSet](), s, u, setA, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: every fundamental operation ------------------------------

func BenchmarkTableII_MxM(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	s := graphblas.PlusTimes[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), s, w.af, w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_MxV(b *testing.B) {
	w := benchWorkload(b)
	out, _ := graphblas.NewVector[float64](w.g.N)
	s := graphblas.PlusTimes[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxV(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, w.af, w.frontiers["p25"], nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_VxM(b *testing.B) {
	w := benchWorkload(b)
	out, _ := graphblas.NewVector[float64](w.g.N)
	s := graphblas.PlusTimes[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.VxM(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, w.frontiers["p25"], w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_EWiseMult(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.EWiseMultM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.Times[float64](), w.af, w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_EWiseAdd(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.EWiseAddM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.Plus[float64](), w.af, w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Reduce(b *testing.B) {
	w := benchWorkload(b)
	out, _ := graphblas.NewVector[float64](w.g.N)
	m := graphblas.PlusMonoid[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.ReduceMatrixToVector(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), m, w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Apply(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.ApplyM(c, graphblas.NoMask, graphblas.NoAccum[float64](), graphblas.AInv[float64](), w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Transpose(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Transpose caching would hide the kernel; alternate a mutation to
		// keep the transpose cold, matching a fresh-input regime.
		if err := graphblas.Transpose(c, graphblas.NoMask, graphblas.NoAccum[float64](), w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Extract(b *testing.B) {
	w := benchWorkload(b)
	half := make([]int, w.g.N/2)
	for i := range half {
		half[i] = 2 * i
	}
	c, _ := graphblas.NewMatrix[float64](len(half), len(half))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.ExtractSubmatrix(c, graphblas.NoMask, graphblas.NoAccum[float64](), w.af, half, half, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Assign(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	quarter := make([]int, w.g.N/4)
	for i := range quarter {
		quarter[i] = 4 * i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.AssignMatrixScalar(c, graphblas.NoMask, graphblas.NoAccum[float64](), 1, quarter, quarter, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2: masked vs unmasked mxm ------------------------------------

func BenchmarkFig2_MxMUnmasked(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	s := graphblas.PlusTimes[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), s, w.af, w.af, nil); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_MxMMasked(b *testing.B) {
	w := benchWorkload(b)
	c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
	s := graphblas.PlusTimes[float64]()
	d := graphblas.Desc().ReplaceOutput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graphblas.MxM(c, w.af, graphblas.NoAccum[float64](), s, w.af, w.af, d); err != nil {
			b.Fatal(err)
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: batched BC vs Brandes --------------------------------------

func BenchmarkFig3_BCGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	sources := generate.NewRNG(benchSeed + 1).Perm(w.g.N)[:16]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta, err := algorithms.BCUpdate(w.ai, sources)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := delta.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_BCBrandes(b *testing.B) {
	w := benchWorkload(b)
	sources := generate.NewRNG(benchSeed + 1).Perm(w.g.N)[:16]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.BrandesBC(w.adj, sources)
	}
}

// --- Section IV: execution modes (E6) --------------------------------------

func benchOverwriteSequence(b *testing.B, elide bool) {
	w := benchWorkload(b)
	prev := graphblas.SetElision(elide)
	defer graphblas.SetElision(prev)
	s := graphblas.PlusTimes[float64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := graphblas.NewMatrix[float64](w.g.N, w.g.N)
		for k := 0; k < 4; k++ {
			if err := graphblas.MxM(c, graphblas.NoMask, graphblas.NoAccum[float64](), s, w.af, w.af, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := graphblas.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecMode_NonblockingElision(b *testing.B)   { benchOverwriteSequence(b, true) }
func BenchmarkExecMode_NonblockingNoElision(b *testing.B) { benchOverwriteSequence(b, false) }

// --- E8: algorithm suite vs baselines --------------------------------------

func BenchmarkE8_BFSGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv, err := algorithms.BFSLevels(w.ab, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := lv.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_BFSBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.BFSLevels(w.adj, 0)
	}
}

func BenchmarkE8_SSSPGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := algorithms.SSSP(w.af, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := d.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_SSSPBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.Dijkstra(w.adj, 0)
	}
}

func BenchmarkE8_PageRankGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := algorithms.PageRank(w.af, 0.85, 1e-8, 100)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_PageRankBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = refalgo.PageRank(w.adj, 0.85, 1e-8, 100)
	}
}

func BenchmarkE8_TrianglesGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.TriangleCount(w.sb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_TrianglesBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.TriangleCount(w.sadj)
	}
}

func BenchmarkE8_ComponentsGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := algorithms.ConnectedComponents(w.sb)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := l.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_ComponentsBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.ConnectedComponents(w.sym)
	}
}

// --- DESIGN.md §4 ablations -------------------------------------------------

func BenchmarkAblation_SpGEMM_SPA(b *testing.B) {
	w := benchWorkload(b)
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.SpGEMM(w.csr, w.csr, mul, add, nil)
	}
}

func BenchmarkAblation_SpGEMM_Heap(b *testing.B) {
	w := benchWorkload(b)
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.SpGEMMHeap(w.csr, w.csr, mul, add)
	}
}

func BenchmarkAblation_MaskFusion_InKernel(b *testing.B) {
	w := benchWorkload(b)
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }
	mask := &sparse.MatMask{
		NCols:  w.g.N,
		EffPtr: w.csr.Ptr, EffIdx: w.csr.ColIdx,
		StrPtr: w.csr.Ptr, StrIdx: w.csr.ColIdx,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sparse.SpGEMM(w.csr, w.csr, mul, add, mask)
		_ = sparse.MaskMergeCSR(w.csr, t, mask, true)
	}
}

func BenchmarkAblation_MaskFusion_PostHoc(b *testing.B) {
	w := benchWorkload(b)
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }
	mask := &sparse.MatMask{
		NCols:  w.g.N,
		EffPtr: w.csr.Ptr, EffIdx: w.csr.ColIdx,
		StrPtr: w.csr.Ptr, StrIdx: w.csr.ColIdx,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sparse.SpGEMM(w.csr, w.csr, mul, add, nil) // full product
		_ = sparse.MaskMergeCSR(w.csr, t, mask, true)   // then filter
	}
}

func BenchmarkAblation_Partition_NNZBalanced(b *testing.B) {
	w := benchWorkload(b)
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			for p := w.csr.Ptr[i]; p < w.csr.Ptr[i+1]; p++ {
				s += w.csr.Val[p]
			}
		}
		_ = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.ForWeighted(w.csr.NRows, w.csr.Ptr, work)
	}
}

func BenchmarkAblation_Partition_EqualRows(b *testing.B) {
	w := benchWorkload(b)
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			for p := w.csr.Ptr[i]; p < w.csr.Ptr[i+1]; p++ {
				s += w.csr.Val[p]
			}
		}
		_ = s
	}
	rowsPerChunk := w.csr.NRows / parallel.MaxWorkers()
	if rowsPerChunk < 1 {
		rowsPerChunk = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.For(w.csr.NRows, rowsPerChunk, work)
	}
}

func BenchmarkAblation_MxVDensity(b *testing.B) {
	w := benchWorkload(b)
	mul := func(x, y float64) float64 { return x * y }
	add := func(x, y float64) float64 { return x + y }
	tr := w.csr.Transpose()
	for _, density := range []string{"dense", "p25", "p03", "sparse"} {
		u := w.frontiers[density]
		idx, val, err := u.ExtractTuples()
		if err != nil {
			b.Fatal(err)
		}
		uv := &sparse.Vec[float64]{N: w.g.N, Idx: idx, Val: val}
		b.Run("dot_"+density, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sparse.DotMxV(w.csr, uv, mul, add, nil)
			}
		})
		b.Run("push_"+density, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sparse.PushMxV(tr, uv, mul, add, nil)
			}
		})
	}
}

// --- extended algorithm suite benches ---------------------------------------

func BenchmarkE8_BFSDirectionOptimizing(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv, err := algorithms.BFSLevelsDO(w.ab, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := lv.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_CoreNumbersGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := algorithms.CoreNumbers(w.sb)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.ExtractTuples(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_CoreNumbersBaseline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refalgo.CoreNumbers(w.sadj)
	}
}

func BenchmarkE8_JaccardGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := algorithms.Jaccard(w.sb)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.NVals(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_KTrussGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := algorithms.KTruss(w.sb, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.NVals(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serialization path ------------------------------------------------------

func BenchmarkSerialize_Matrix(b *testing.B) {
	w := benchWorkload(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := graphblas.MatrixSerialize(w.af, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSerialize_MatrixRoundTrip(b *testing.B) {
	w := benchWorkload(b)
	var buf bytes.Buffer
	if err := graphblas.MatrixSerialize(w.af, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphblas.MatrixDeserialize[float64](bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetElementPendingTuples(b *testing.B) {
	// 50k random point updates into a large matrix: the pending-tuple buffer
	// makes this O(k log k + nnz) total instead of O(k·nnz).
	const n = 20000
	rng := generate.NewRNG(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := graphblas.NewMatrix[float64](n, n)
		for k := 0; k < 50000; k++ {
			_ = m.SetElement(1, rng.Intn(n), rng.Intn(n))
		}
		if _, err := m.NVals(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_ColoringGraphBLAS(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.GreedyColor(w.sb, 17); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Format sweep (DESIGN.md §5, BENCH_formats.json) -------------------
//
// Sweeps mxv and mxm across fill ratios from hypersparse (1e-5) to half
// dense (0.5) with the storage format forced to CSR, forced to bitmap,
// and left adaptive. The adaptive engine must track the better forced
// format (within 10%), and the bitmap kernel must win clearly on the
// dense-ish mxv points. Regenerate BENCH_formats.json with:
//
//	go test -run=NONE -bench=BenchmarkFormatSweep -benchtime=200ms .

var formatSweepFills = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.2, 0.5}

var formatSweepModes = []struct {
	name string
	kind graphblas.Format
}{
	{"csr", graphblas.FormatCSR},
	{"bitmap", graphblas.FormatBitmap},
	{"adaptive", graphblas.FormatAuto},
}

// sweepMatrix builds an n×n float64 matrix with each cell present
// independently with probability fill, deterministic in (n, fill).
func sweepMatrix(b *testing.B, n int, fill float64) *graphblas.Matrix[float64] {
	b.Helper()
	rng := generate.NewRNG(uint64(benchSeed) ^ uint64(fill*1e9) ^ uint64(n))
	var rows, cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < fill {
				rows = append(rows, i)
				cols = append(cols, j)
				vals = append(vals, 1+rng.Float64())
			}
		}
	}
	if len(rows) == 0 { // keep degenerate fills non-empty
		rows, cols, vals = []int{0}, []int{0}, []float64{1}
	}
	m, _ := graphblas.NewMatrix[float64](n, n)
	if err := m.Build(rows, cols, vals, graphblas.NoAccum[float64]()); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkFormatSweep_MxV(b *testing.B) {
	const n = 1024
	s := graphblas.PlusTimes[float64]()
	for _, fill := range formatSweepFills {
		a := sweepMatrix(b, n, fill)
		u, _ := graphblas.NewVector[float64](n)
		rng := generate.NewRNG(benchSeed + 7)
		for i := 0; i < n; i++ {
			_ = u.SetElement(1+rng.Float64(), i)
		}
		out, _ := graphblas.NewVector[float64](n)
		for _, mode := range formatSweepModes {
			b.Run(fmt.Sprintf("fill=%g/mode=%s", fill, mode.name), func(b *testing.B) {
				if err := a.SetFormat(mode.kind); err != nil {
					b.Fatal(err)
				}
				// Warm up once untimed so forced modes pay their one-off
				// layout conversion outside the measurement.
				if err := graphblas.MxV(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, a, u, nil); err != nil {
					b.Fatal(err)
				}
				if err := graphblas.Wait(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := graphblas.MxV(out, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, a, u, nil); err != nil {
						b.Fatal(err)
					}
					if err := graphblas.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		_ = a.SetFormat(graphblas.FormatAuto)
	}
}

func BenchmarkFormatSweep_MxM(b *testing.B) {
	const n = 512
	s := graphblas.PlusTimes[float64]()
	for _, fill := range formatSweepFills {
		a := sweepMatrix(b, n, fill)
		m2 := sweepMatrix(b, n, fill)
		out, _ := graphblas.NewMatrix[float64](n, n)
		for _, mode := range formatSweepModes {
			b.Run(fmt.Sprintf("fill=%g/mode=%s", fill, mode.name), func(b *testing.B) {
				if err := m2.SetFormat(mode.kind); err != nil {
					b.Fatal(err)
				}
				if err := graphblas.MxM(out, graphblas.NoMask, graphblas.NoAccum[float64](), s, a, m2, nil); err != nil {
					b.Fatal(err)
				}
				if err := graphblas.Wait(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := graphblas.MxM(out, graphblas.NoMask, graphblas.NoAccum[float64](), s, a, m2, nil); err != nil {
						b.Fatal(err)
					}
					if err := graphblas.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		_ = m2.SetFormat(graphblas.FormatAuto)
	}
}

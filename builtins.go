package graphblas

import "graphblas/internal/builtins"

// This file re-exports the predefined operator/monoid/semiring catalog
// (Table IV and the Table I semirings). Instantiate with a domain:
// Plus[int32](), MinPlus[float64](), ….

// Number constrains the built-in numeric GraphBLAS domains.
type Number = builtins.Number

// Integer constrains the integer domains.
type Integer = builtins.Integer

// FloatDomain constrains the floating-point domains.
type FloatDomain = builtins.Float

// --- binary operators ---

// Plus returns x + y (GrB_PLUS_T).
func Plus[T Number]() BinaryOp[T, T, T] { return builtins.Plus[T]() }

// Times returns x * y (GrB_TIMES_T).
func Times[T Number]() BinaryOp[T, T, T] { return builtins.Times[T]() }

// Minus returns x - y (GrB_MINUS_T).
func Minus[T Number]() BinaryOp[T, T, T] { return builtins.Minus[T]() }

// Div returns x / y (GrB_DIV_T).
func Div[T Number]() BinaryOp[T, T, T] { return builtins.Div[T]() }

// Min returns min(x, y) (GrB_MIN_T).
func Min[T Number]() BinaryOp[T, T, T] { return builtins.Min[T]() }

// Max returns max(x, y) (GrB_MAX_T).
func Max[T Number]() BinaryOp[T, T, T] { return builtins.Max[T]() }

// First returns x (GrB_FIRST_T).
func First[T any]() BinaryOp[T, T, T] { return builtins.First[T]() }

// Second returns y (GrB_SECOND_T).
func Second[T any]() BinaryOp[T, T, T] { return builtins.Second[T]() }

// Eq returns x == y (GrB_EQ_T).
func Eq[T Number]() BinaryOp[T, T, bool] { return builtins.Eq[T]() }

// Ne returns x != y (GrB_NE_T).
func Ne[T Number]() BinaryOp[T, T, bool] { return builtins.Ne[T]() }

// Lt returns x < y (GrB_LT_T).
func Lt[T Number]() BinaryOp[T, T, bool] { return builtins.Lt[T]() }

// Gt returns x > y (GrB_GT_T).
func Gt[T Number]() BinaryOp[T, T, bool] { return builtins.Gt[T]() }

// Le returns x <= y (GrB_LE_T).
func Le[T Number]() BinaryOp[T, T, bool] { return builtins.Le[T]() }

// Ge returns x >= y (GrB_GE_T).
func Ge[T Number]() BinaryOp[T, T, bool] { return builtins.Ge[T]() }

// LOr returns x ∨ y (GrB_LOR).
func LOr() BinaryOp[bool, bool, bool] { return builtins.LOr() }

// LAnd returns x ∧ y (GrB_LAND).
func LAnd() BinaryOp[bool, bool, bool] { return builtins.LAnd() }

// LXor returns x ⊻ y (GrB_LXOR).
func LXor() BinaryOp[bool, bool, bool] { return builtins.LXor() }

// --- unary operators ---

// Identity returns the identity operator (GrB_IDENTITY_T).
func Identity[T any]() UnaryOp[T, T] { return builtins.Identity[T]() }

// AInv returns -x (GrB_AINV_T).
func AInv[T Number]() UnaryOp[T, T] { return builtins.AInv[T]() }

// MInv returns 1/x (GrB_MINV_T; Figure 3 line 57).
func MInv[T FloatDomain]() UnaryOp[T, T] { return builtins.MInv[T]() }

// LNot returns ¬x (GrB_LNOT).
func LNot() UnaryOp[bool, bool] { return builtins.LNot() }

// Abs returns |x| (extension).
func Abs[T Number]() UnaryOp[T, T] { return builtins.Abs[T]() }

// One returns the constant 1 (extension).
func One[T Number]() UnaryOp[T, T] { return builtins.One[T]() }

// Cast converts between numeric domains (the explicit form of the C API's
// implicit typecasts).
func Cast[From, To Number]() UnaryOp[From, To] { return builtins.Cast[From, To]() }

// CastToBool converts a numeric domain to bool (v != 0) — the Figure 3
// line 41 GrB_IDENTITY_BOOL cast.
func CastToBool[From Number]() UnaryOp[From, bool] { return builtins.CastToBool[From]() }

// CastBoolTo converts bool to a numeric domain (false→0, true→1).
func CastBoolTo[To Number]() UnaryOp[bool, To] { return builtins.CastBoolTo[To]() }

// --- monoids ---

// PlusMonoid returns ⟨T, +, 0⟩ (Figure 3 line 10).
func PlusMonoid[T Number]() Monoid[T] { return builtins.PlusMonoid[T]() }

// TimesMonoid returns ⟨T, ×, 1⟩ (Figure 3 line 51).
func TimesMonoid[T Number]() Monoid[T] { return builtins.TimesMonoid[T]() }

// MinMonoid returns ⟨T, min, +∞⟩.
func MinMonoid[T Number]() Monoid[T] { return builtins.MinMonoid[T]() }

// MaxMonoid returns ⟨T, max, -∞⟩.
func MaxMonoid[T Number]() Monoid[T] { return builtins.MaxMonoid[T]() }

// LOrMonoid returns ⟨bool, ∨, false⟩.
func LOrMonoid() Monoid[bool] { return builtins.LOrMonoid() }

// LAndMonoid returns ⟨bool, ∧, true⟩.
func LAndMonoid() Monoid[bool] { return builtins.LAndMonoid() }

// LXorMonoid returns ⟨bool, ⊻, false⟩ (GF(2) addition).
func LXorMonoid() Monoid[bool] { return builtins.LXorMonoid() }

// --- semirings (Table I) ---

// PlusTimes returns standard arithmetic ⟨+, ×, 0⟩ — Table I row 1.
func PlusTimes[T Number]() Semiring[T, T, T] { return builtins.PlusTimes[T]() }

// MaxPlus returns the max-plus algebra ⟨max, +, -∞⟩ — Table I row 2.
func MaxPlus[T Number]() Semiring[T, T, T] { return builtins.MaxPlus[T]() }

// MinPlus returns the tropical semiring ⟨min, +, +∞⟩ (shortest paths).
func MinPlus[T Number]() Semiring[T, T, T] { return builtins.MinPlus[T]() }

// MinMax returns the min-max algebra ⟨min, max, +∞⟩ — Table I row 3.
func MinMax[T Number]() Semiring[T, T, T] { return builtins.MinMax[T]() }

// MaxMin returns the bottleneck semiring ⟨max, min, -∞⟩.
func MaxMin[T Number]() Semiring[T, T, T] { return builtins.MaxMin[T]() }

// MinTimes returns ⟨min, ×, +∞⟩.
func MinTimes[T Number]() Semiring[T, T, T] { return builtins.MinTimes[T]() }

// MinFirst returns ⟨min, first, +∞⟩ (BFS parents).
func MinFirst[T Number]() Semiring[T, T, T] { return builtins.MinFirst[T]() }

// XorAnd returns GF(2) ⟨xor, and, false⟩ — Table I row 4.
func XorAnd() Semiring[bool, bool, bool] { return builtins.XorAnd() }

// LorLand returns the boolean reachability semiring ⟨∨, ∧, false⟩.
func LorLand() Semiring[bool, bool, bool] { return builtins.LorLand() }

// PlusFirst returns ⟨+, first, 0⟩.
func PlusFirst[T Number]() Semiring[T, T, T] { return builtins.PlusFirst[T]() }

// PlusSecond returns ⟨+, second, 0⟩.
func PlusSecond[T Number]() Semiring[T, T, T] { return builtins.PlusSecond[T]() }

// MaxValue returns the largest value of the domain (Min monoid identity).
func MaxValue[T Number]() T { return builtins.MaxValue[T]() }

// MinValue returns the smallest value of the domain (Max monoid identity).
func MinValue[T Number]() T { return builtins.MinValue[T]() }

// --- predefined select / index operators (extension) ---

// Tril keeps entries on or below the k-th diagonal.
func Tril[D any](k int) IndexUnaryOp[D, bool] { return builtins.Tril[D](k) }

// Triu keeps entries on or above the k-th diagonal.
func Triu[D any](k int) IndexUnaryOp[D, bool] { return builtins.Triu[D](k) }

// DiagSel keeps entries on the k-th diagonal.
func DiagSel[D any](k int) IndexUnaryOp[D, bool] { return builtins.DiagSel[D](k) }

// OffDiag keeps entries off the k-th diagonal.
func OffDiag[D any](k int) IndexUnaryOp[D, bool] { return builtins.OffDiag[D](k) }

// ValueEQ keeps entries equal to x.
func ValueEQ[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueEQ(x) }

// ValueNE keeps entries not equal to x.
func ValueNE[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueNE(x) }

// ValueLT keeps entries less than x.
func ValueLT[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueLT(x) }

// ValueLE keeps entries at most x.
func ValueLE[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueLE(x) }

// ValueGT keeps entries greater than x.
func ValueGT[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueGT(x) }

// ValueGE keeps entries at least x.
func ValueGE[D Number](x D) IndexUnaryOp[D, bool] { return builtins.ValueGE(x) }

// RowIndex returns each entry's row index.
func RowIndex[D any]() IndexUnaryOp[D, int64] { return builtins.RowIndex[D]() }

// ColIndex returns each entry's column index.
func ColIndex[D any]() IndexUnaryOp[D, int64] { return builtins.ColIndex[D]() }

// Package graphblas is a Go implementation of the GraphBLAS C API design of
// Buluç, Mattson, McMillan, Moreira and Yang ("Design of the GraphBLAS API
// for C", IPDPS Workshops 2017): linear-algebraic building blocks for graph
// algorithms over arbitrary semirings, with opaque sparse collections,
// masks, accumulators, descriptors, a blocking/nonblocking execution model,
// and the paper's error model.
//
// # Mapping from the C API
//
//   - Opaque handles (GrB_Matrix, GrB_Vector, …) are pointers to structs
//     with unexported fields: Matrix[D], Vector[D].
//   - The C API's domain-suffixed function families and implicit typecasts
//     become Go generics: a GraphBLAS binary operator ⟨D1, D2, D3, ⊙⟩ is a
//     BinaryOp[D1, D2, D3]; predefined operators are generic constructors
//     (Plus[int32]() rather than GrB_PLUS_INT32).
//   - GrB_Info return codes become errors carrying an Info code (InfoOf).
//   - GrB_NULL becomes nil (masks, descriptors) or a zero value (NoAccum).
//   - GrB_ALL becomes All (a nil index slice).
//   - GrB_Index is Go int.
//
// # Quickstart
//
//	_ = graphblas.Init(graphblas.NonBlocking)
//	defer graphblas.Finalize()
//
//	A, _ := graphblas.NewMatrix[float64](n, n)
//	_ = A.Build(rows, cols, weights, graphblas.NoAccum[float64]())
//	frontier, _ := graphblas.NewVector[float64](n)
//	_ = frontier.SetElement(0, source)
//	_ = graphblas.VxM(frontier, graphblas.NoMaskV, graphblas.NoAccum[float64](),
//	    graphblas.MinPlus[float64](), frontier, A, nil)
//
// See the examples directory for complete programs, including the paper's
// batched betweenness-centrality algorithm (Figure 3).
package graphblas

import (
	"context"
	"io"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
	"graphblas/internal/setalg"
	"graphblas/internal/stream"
)

// --- collections (Section III-A) ---

// Matrix is the opaque GraphBLAS matrix ⟨D, M, N, {(i, j, A_ij)}⟩; absent
// elements are undefined, not implicit zeros.
type Matrix[D any] = core.Matrix[D]

// Vector is the opaque GraphBLAS vector ⟨D, N, {(i, v_i)}⟩.
type Vector[D any] = core.Vector[D]

// Format identifies a matrix storage layout of the multi-format engine
// (extension). The opaque-object design lets the implementation adapt data
// structures to the problem; Matrix.SetFormat pins a layout and
// Matrix.Format reports the engine's current choice.
type Format = format.Kind

// Storage layouts.
const (
	// FormatAuto lets the engine choose per operation from the fill ratio
	// and the consuming operation (the default).
	FormatAuto = format.Auto
	// FormatCSR forces compressed sparse row.
	FormatCSR = format.CSRKind
	// FormatBitmap forces the dense bitmap layout (validity bitset plus a
	// full value array; O(1) random access).
	FormatBitmap = format.BitmapKind
	// FormatHyper forces the hypersparse layout (only non-empty rows are
	// represented).
	FormatHyper = format.HyperKind
)

// NewMatrix creates an nrows-by-ncols matrix (GrB_Matrix_new).
func NewMatrix[D any](nrows, ncols int) (*Matrix[D], error) {
	return core.NewMatrix[D](nrows, ncols)
}

// NewVector creates a vector of size n (GrB_Vector_new).
func NewVector[D any](n int) (*Vector[D], error) { return core.NewVector[D](n) }

// --- streaming graph engine (extension) ---

// UpdateBatch collects edge inserts and deletes for one atomic application
// via Matrix.ApplyUpdateBatch. Updates dedup last-wins when the batch is
// sealed; the builder may be reused (Reset) after applying.
type UpdateBatch[D any] = stream.Batch[D]

// NewUpdateBatch creates an empty update batch.
func NewUpdateBatch[D any]() *UpdateBatch[D] { return stream.NewBatch[D]() }

// MergePolicy is the size/age policy deciding when a matrix's streamed
// delta overlay compacts into its main store (Matrix.SetMergePolicy).
type MergePolicy = stream.Policy

// DefaultMergePolicy bounds the overlay at 32Ki updates or 64 batches.
func DefaultMergePolicy() MergePolicy { return stream.DefaultPolicy() }

// ManualMerge never compacts automatically; only Matrix.Compact merges.
func ManualMerge() MergePolicy { return stream.Manual() }

// EagerMerge compacts after every absorbed batch.
func EagerMerge() MergePolicy { return stream.Eager() }

// Epoch is a snapshot-isolated read view pinned by Matrix.PinEpoch: it keeps
// serving the matrix content as of the pin while later batches and merges
// publish new state.
type Epoch[D any] = stream.Epoch[D]

// --- algebraic objects (Section III-B, Figure 1) ---

// UnaryOp is a GraphBLAS unary operator ⟨D1, D2, f⟩.
type UnaryOp[D1, D2 any] = core.UnaryOp[D1, D2]

// BinaryOp is a GraphBLAS binary operator ⟨D1, D2, D3, ⊙⟩.
type BinaryOp[D1, D2, D3 any] = core.BinaryOp[D1, D2, D3]

// IndexUnaryOp maps (value, row, col) → result (select/apply extension).
type IndexUnaryOp[D1, D2 any] = core.IndexUnaryOp[D1, D2]

// Monoid is a GraphBLAS monoid ⟨D, ⊙, identity⟩.
type Monoid[D any] = core.Monoid[D]

// Semiring is a GraphBLAS semiring ⟨D1, D2, D3, ⊕, ⊗, 0⟩.
type Semiring[D1, D2, D3 any] = core.Semiring[D1, D2, D3]

// NewUnaryOp builds a unary operator from a function (GrB_UnaryOp_new).
func NewUnaryOp[D1, D2 any](name string, f func(D1) D2) (UnaryOp[D1, D2], error) {
	return core.NewUnaryOp(name, f)
}

// NewBinaryOp builds a binary operator from a function (GrB_BinaryOp_new).
func NewBinaryOp[D1, D2, D3 any](name string, f func(D1, D2) D3) (BinaryOp[D1, D2, D3], error) {
	return core.NewBinaryOp(name, f)
}

// NewMonoid builds a monoid from an operator and identity (GrB_Monoid_new).
func NewMonoid[D any](op BinaryOp[D, D, D], identity D) (Monoid[D], error) {
	return core.NewMonoid(op, identity)
}

// NewSemiring builds a semiring from an additive monoid and multiplicative
// operator (GrB_Semiring_new).
func NewSemiring[D1, D2, D3 any](add Monoid[D3], mul BinaryOp[D1, D2, D3]) (Semiring[D1, D2, D3], error) {
	return core.NewSemiring(add, mul)
}

// NoAccum is the "no accumulator" argument (GrB_NULL for accum).
func NoAccum[D any]() BinaryOp[D, D, D] { return core.NoAccum[D]() }

// --- control objects (Section III-C) ---

// Descriptor modifies method semantics; nil selects all defaults.
type Descriptor = core.Descriptor

// Field identifies the descriptor field (GrB_OUTP, GrB_MASK, GrB_INP0/1).
type Field = core.Field

// Value is a descriptor setting (GrB_REPLACE, GrB_SCMP, GrB_TRAN).
type Value = core.Value

// Descriptor fields and values (Table V literals).
const (
	OutP      = core.OutP
	MaskField = core.MaskField
	Inp0      = core.Inp0
	Inp1      = core.Inp1

	Replace = core.Replace
	SCMP    = core.SCMP
	Tran    = core.Tran
)

// NewDescriptor creates an empty descriptor (GrB_Descriptor_new).
func NewDescriptor() (*Descriptor, error) { return core.NewDescriptor() }

// Desc starts a chainable descriptor builder.
func Desc() *Descriptor { return core.Desc() }

// NoMask is the "no write mask" argument for matrix outputs (GrB_NULL).
var NoMask *Matrix[bool]

// NoMaskV is the "no write mask" argument for vector outputs (GrB_NULL).
var NoMaskV *Vector[bool]

// All is the GrB_ALL literal: a nil index list selects all indices.
var All []int

// --- context and execution model (Section IV) ---

// Mode selects blocking or nonblocking execution.
type Mode = core.Mode

// Execution modes.
const (
	Blocking    = core.Blocking
	NonBlocking = core.NonBlocking
)

// Stats reports execution-engine counters.
type Stats = core.Stats

// Scheduler selects how a nonblocking flush executes the deferred queue.
type Scheduler = core.Scheduler

// Flush schedulers.
const (
	// SchedSequential drains the queue one operation at a time in program
	// order.
	SchedSequential = core.SchedSequential
	// SchedDag executes independent queued operations concurrently on the
	// dataflow scheduler (the default), preserving observable program-order
	// semantics.
	SchedDag = core.SchedDag
)

// Init establishes the GraphBLAS context (GrB_init); once per program.
func Init(mode Mode) error { return core.Init(mode) }

// Finalize terminates the context (GrB_finalize).
func Finalize() error { return core.Finalize() }

// Wait terminates the current sequence, completing all pending operations
// (GrB_wait).
func Wait() error { return core.Wait() }

// WaitContext is Wait bounded by a context (extension). When ctx is canceled
// or its deadline expires mid-flush, operations not yet dispatched are
// abandoned with a Canceled error — their outputs become invalid but
// restorable, like after any execution error — while kernels already running
// finish. Cancellation is flush-scoped: the engine has one shared queue, so a
// deadline expiring in one goroutine's WaitContext abandons whatever deferred
// work is in the flush, not only the caller's. A nil ctx is identical to Wait.
func WaitContext(ctx context.Context) error { return core.WaitContext(ctx) }

// ResetForTesting restores a pristine context; not part of the paper's API.
func ResetForTesting() { core.ResetForTesting() }

// CurrentMode reports the context mode.
func CurrentMode() Mode { return core.CurrentMode() }

// StatsSnapshot returns a consistent snapshot of the execution-engine
// counters; the sanctioned way to read them once flushes run in parallel.
func StatsSnapshot() Stats { return core.StatsSnapshot() }

// GetStats is an alias for StatsSnapshot, kept for source compatibility.
func GetStats() Stats { return core.StatsSnapshot() }

// SetElision toggles dead-store elimination in the nonblocking engine.
func SetElision(on bool) bool { return core.SetElision(on) }

// SetFusion toggles the flush-time kernel-fusion pass of the DAG scheduler
// (on by default) and returns the previous setting. With it off — or on the
// sequential scheduler — every operation materializes its output, the
// unfused reference semantics.
func SetFusion(on bool) bool { return core.SetFusion(on) }

// FusionEnabled reports whether flush-time kernel fusion is enabled.
func FusionEnabled() bool { return core.FusionEnabled() }

// SetScheduler selects the nonblocking flush strategy (SchedDag by default)
// and returns the previous one.
func SetScheduler(s Scheduler) Scheduler { return core.SetScheduler(s) }

// CurrentScheduler reports the nonblocking flush strategy.
func CurrentScheduler() Scheduler { return core.CurrentScheduler() }

// LastError returns the most recent execution-error detail (GrB_error).
func LastError() string { return core.LastError() }

// --- error model (Section V) ---

// Info enumerates the GraphBLAS status codes.
type Info = core.Info

// Error is the error type returned by GraphBLAS methods.
type Error = core.Error

// Status codes (GrB_Info values).
const (
	Success              = core.Success
	NoValue              = core.NoValue
	UninitializedObject  = core.UninitializedObject
	NullPointer          = core.NullPointer
	InvalidValue         = core.InvalidValue
	InvalidIndex         = core.InvalidIndex
	DomainMismatch       = core.DomainMismatch
	DimensionMismatch    = core.DimensionMismatch
	OutputNotEmpty       = core.OutputNotEmpty
	UninitializedContext = core.UninitializedContext
	OutOfMemory          = core.OutOfMemory
	IndexOutOfBounds     = core.IndexOutOfBounds
	InvalidObject        = core.InvalidObject
	PanicInfo            = core.PanicInfo
	Canceled             = core.Canceled
)

// InfoOf extracts the status code from an error (Success for nil).
func InfoOf(err error) Info { return core.InfoOf(err) }

// IsNoValue reports whether err is the benign NoValue indication.
func IsNoValue(err error) bool { return core.IsNoValue(err) }

// SequenceError is one entry of the per-sequence execution error log: the
// failing operation's method name, its program-order position in the
// sequence, and the error. Wait reports only the first error of a sequence
// (Section V); SequenceErrors exposes all of them.
type SequenceError = core.SequenceError

// SequenceErrors returns the execution error log of the current sequence,
// or of the most recently terminated one if none is open.
func SequenceErrors() []SequenceError { return core.SequenceErrors() }

// --- fault injection & recovery (robustness extension) ---

// FaultRule describes one rule of a fault-injection plan: which sites it
// targets (an op name like "MxM", a kernel site like
// "format.kernel.bitmap.mxv", a "format.*" glob, or "" for all), what kind
// of fault to inject, and when (call-count and probability gates).
type FaultRule = faults.Rule

// FaultKind classifies an injected fault.
type FaultKind = faults.Kind

// Injectable fault kinds.
const (
	// FaultOOM injects an allocation failure (GrB_OUT_OF_MEMORY).
	FaultOOM = faults.OOM
	// FaultErr injects an unspecified kernel failure (GrB_PANIC).
	FaultErr = faults.KernelErr
	// FaultPanic injects a user-operator-path panic (GrB_PANIC).
	FaultPanic = faults.PanicFault
)

// ConfigureFaults installs a deterministic fault-injection plan, replacing
// any previous one. The engine survives what the plan injects: failed
// operations roll their output back (invalid but restorable), failed
// fast-path kernels retry on the generic CSR path, and every failure lands
// in the sequence error log.
func ConfigureFaults(seed int64, rules ...FaultRule) { faults.Configure(seed, rules...) }

// DisableFaults removes the fault-injection plan.
func DisableFaults() { faults.Disable() }

// ResetFaultCounters zeroes the plan's call and injection counters so the
// same schedule replays from the start.
func ResetFaultCounters() { faults.Reset() }

// InjectedFaults reports the number of faults injected since the plan was
// installed or last reset.
func InjectedFaults() int64 { return faults.InjectedCount() }

// SetAllocBudget sets the storage engine's per-allocation byte cap — the
// allocation-budget governor denies larger requests with OutOfMemory before
// attempting them — and returns the previous cap. n <= 0 restores the
// default (1 TiB).
func SetAllocBudget(n int64) int64 { return faults.SetAllocBudget(n) }

// --- observability (extension) ---

// Span is the record of one operation's passage through the execution
// engine: method name, program-order position, the storage layout the kernel
// consumed, bytes touched, stage timestamps (enqueue → schedule → kernel →
// done), whether the op retried on the generic path or rolled back, and the
// outcome.
type Span = obs.Span

// SpanOutcome classifies how an operation's execution concluded.
type SpanOutcome = obs.Outcome

// Span outcomes.
const (
	// SpanOK: the kernel ran and the result committed.
	SpanOK = obs.OutcomeOK
	// SpanError: the kernel failed; the output rolled back and was marked
	// invalid.
	SpanError = obs.OutcomeError
	// SpanShortCircuit: the operation was cancelled because an input carried
	// a prior execution error.
	SpanShortCircuit = obs.OutcomeShortCircuit
	// SpanElided: dead-store elimination pruned the operation.
	SpanElided = obs.OutcomeElided
)

// Tracer receives completed operation spans. OnSpan may be called from
// concurrent flush workers, so implementations must be concurrency-safe.
type Tracer = obs.Tracer

// SetTracer registers t as the engine's span consumer and returns the
// previous one. Passing nil disables span collection entirely; the disabled
// per-operation cost is a single atomic load and no allocation.
func SetTracer(t Tracer) Tracer { return obs.SetTracer(t) }

// NewMetricsTracer returns the built-in tracer that folds spans into the
// engine metrics registry (per-op latency and queue-delay histograms,
// per-outcome counters), making them visible through WriteMetricsText and
// MetricsSnapshot.
func NewMetricsTracer() Tracer { return obs.NewMetricsTracer() }

// WriteMetricsText writes the engine metrics registry in the Prometheus text
// exposition format.
func WriteMetricsText(w io.Writer) error { return obs.WriteText(w) }

// MetricsSnapshot returns a JSON-able snapshot of the engine metrics
// registry: counter values and histogram bucket counts keyed by metric name.
func MetricsSnapshot() map[string]any { return obs.Snapshot() }

// PublishExpvarMetrics publishes the metrics snapshot under the expvar name
// "graphblas_metrics" (visible at /debug/vars). Idempotent.
func PublishExpvarMetrics() { obs.PublishExpvar() }

// SetProfilingLabels toggles pprof labeling of operation execution and
// returns the previous setting: CPU profile samples taken inside flush
// workers then carry a "graphblas_op" label naming the operation kind.
func SetProfilingLabels(on bool) bool { return obs.SetProfilingLabels(on) }

// --- power-set algebra (Table I, row 5) ---

// IntSet is an immutable subset of a bounded integer universe, the element
// domain of the power-set semiring.
type IntSet = setalg.Set

// NewIntSet returns the empty set over [0, universe).
func NewIntSet(universe int) IntSet { return setalg.NewSet(universe) }

// IntSetOf returns the set holding the given members.
func IntSetOf(universe int, members ...int) IntSet { return setalg.SetOf(universe, members...) }

// FullIntSet returns the whole universe (the ∩ identity).
func FullIntSet(universe int) IntSet { return setalg.FullSet(universe) }

// UnionIntersect returns the power-set semiring ⟨∪, ∩, ∅⟩ of Table I.
func UnionIntersect(universe int) Semiring[IntSet, IntSet, IntSet] {
	return setalg.UnionIntersect(universe)
}

// UnionMonoid returns ⟨P(Z), ∪, ∅⟩.
func UnionMonoid(universe int) Monoid[IntSet] { return setalg.UnionMonoid(universe) }

// IntersectMonoid returns ⟨P(Z), ∩, U⟩.
func IntersectMonoid(universe int) Monoid[IntSet] { return setalg.IntersectMonoid(universe) }

// --- serialization (extension) ---

// MatrixSerialize writes m in the stable binary format; forces completion.
func MatrixSerialize[D any](m *Matrix[D], w io.Writer) error { return core.MatrixSerialize(m, w) }

// MatrixDeserialize reconstructs a serialized matrix; the domain must match.
func MatrixDeserialize[D any](r io.Reader) (*Matrix[D], error) {
	return core.MatrixDeserialize[D](r)
}

// VectorSerialize writes v in the stable binary format; forces completion.
func VectorSerialize[D any](v *Vector[D], w io.Writer) error { return core.VectorSerialize(v, w) }

// VectorDeserialize reconstructs a serialized vector; the domain must match.
func VectorDeserialize[D any](r io.Reader) (*Vector[D], error) {
	return core.VectorDeserialize[D](r)
}

// --- raw import/export (GrB 1.3-style extension) ---

// MatrixExportCSR copies out the CSR arrays of m; forces completion.
func MatrixExportCSR[D any](m *Matrix[D]) (rowPtr, colIdx []int, values []D, err error) {
	return core.MatrixExportCSR(m)
}

// MatrixImportCSR constructs a matrix from validated CSR arrays.
func MatrixImportCSR[D any](nrows, ncols int, rowPtr, colIdx []int, values []D) (*Matrix[D], error) {
	return core.MatrixImportCSR(nrows, ncols, rowPtr, colIdx, values)
}

// VectorExport copies out the sorted (indices, values) content of v.
func VectorExport[D any](v *Vector[D]) (indices []int, values []D, err error) {
	return core.VectorExport(v)
}

// VectorImport constructs a vector from sorted index/value arrays.
func VectorImport[D any](n int, indices []int, values []D) (*Vector[D], error) {
	return core.VectorImport(n, indices, values)
}

// --- iterators (extension) ---

// MatrixIterator streams matrix entries in row-major order.
type MatrixIterator[D any] = core.MatrixIterator[D]

// VectorIterator streams vector entries in index order.
type VectorIterator[D any] = core.VectorIterator[D]

// MatrixIterate returns a snapshot iterator over m's entries; forces
// completion.
func MatrixIterate[D any](m *Matrix[D]) (*MatrixIterator[D], error) {
	return core.MatrixIterate(m)
}

// VectorIterate returns a snapshot iterator over v's entries; forces
// completion.
func VectorIterate[D any](v *Vector[D]) (*VectorIterator[D], error) {
	return core.VectorIterate(v)
}

// MatrixForEach calls f for every stored entry in row-major order; return
// false to stop early.
func MatrixForEach[D any](m *Matrix[D], f func(i, j int, v D) bool) error {
	return core.MatrixForEach(m, f)
}

// VectorForEach calls f for every stored entry in index order; return false
// to stop early.
func VectorForEach[D any](v *Vector[D], f func(i int, x D) bool) error {
	return core.VectorForEach(v, f)
}

// NewMonoidWithTerminal builds a monoid with an annihilator predicate for
// early-exit reductions (extension).
func NewMonoidWithTerminal[D any](op BinaryOp[D, D, D], identity D, terminal func(D) bool) (Monoid[D], error) {
	return core.NewMonoidWithTerminal(op, identity, terminal)
}

// --- runtime tuning ---

// SetMaxWorkers bounds the goroutines any parallel kernel uses and returns
// the previous bound. The default is GOMAXPROCS.
func SetMaxWorkers(n int) int { return parallel.SetMaxWorkers(n) }

// MaxWorkers reports the current kernel parallelism bound.
func MaxWorkers() int { return parallel.MaxWorkers() }

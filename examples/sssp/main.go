// Command sssp computes single-source shortest paths over the min-plus
// (tropical) semiring, written directly against the public API: the
// Bellman-Ford relaxation d ⊙min= d min.+ A iterated to a fixed point.
// Results are verified against Dijkstra on the same graph.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"graphblas"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func main() {
	nFlag := flag.Int("n", 2000, "vertices")
	mFlag := flag.Int("m", 12000, "edges")
	src := flag.Int("source", 0, "source vertex")
	seed := flag.Uint64("seed", 7, "generator seed")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	g := generate.ErdosRenyiGnm(*nFlag, *mFlag, *seed)
	fmt.Printf("G(n=%d, m=%d) uniform weights in [1,2)\n", g.N, len(g.Edges))

	a, err := graphblas.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols, w := g.Tuples()
	if err := a.Build(rows, cols, w, graphblas.First[float64]()); err != nil {
		log.Fatal(err)
	}

	// dist = {source: 0}; relax until fixed point.
	dist, _ := graphblas.NewVector[float64](g.N)
	_ = dist.SetElement(0, *src)
	minPlus := graphblas.MinPlus[float64]()
	minOp := graphblas.Min[float64]()

	start := time.Now()
	rounds := 0
	prevIdx, prevVal, _ := dist.ExtractTuples()
	for iter := 0; iter < g.N; iter++ {
		if err := graphblas.VxM(dist, graphblas.NoMaskV, minOp, minPlus, dist, a, nil); err != nil {
			log.Fatal(err)
		}
		idx, val, err := dist.ExtractTuples()
		if err != nil {
			log.Fatal(err)
		}
		rounds++
		if sameTuples(prevIdx, prevVal, idx, val) {
			break
		}
		prevIdx, prevVal = idx, val
	}
	grbTime := time.Since(start)

	start = time.Now()
	want := refalgo.Dijkstra(refalgo.NewAdjacency(g), *src)
	refTime := time.Since(start)

	got := make([]float64, g.N)
	for i := range got {
		got[i] = math.Inf(1)
	}
	for k := range prevIdx {
		got[prevIdx[k]] = prevVal[k]
	}
	reached, maxErr := 0, 0.0
	for v := 0; v < g.N; v++ {
		if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
			log.Fatalf("reachability mismatch at %d", v)
		}
		if !math.IsInf(want[v], 1) {
			reached++
			if d := math.Abs(got[v] - want[v]); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("reached %d/%d vertices in %d min-plus rounds\n", reached, g.N, rounds)
	fmt.Printf("GraphBLAS Bellman-Ford: %v\nDijkstra baseline:      %v\n", grbTime, refTime)
	fmt.Printf("max |Δdist| vs Dijkstra: %.2e %s\n", maxErr,
		map[bool]string{true: "(agreement ✓)", false: "(DISAGREEMENT)"}[maxErr < 1e-9])
}

func sameTuples(ai []int, av []float64, bi []int, bv []float64) bool {
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || av[k] != bv[k] {
			return false
		}
	}
	return true
}

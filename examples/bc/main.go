// Command bc runs the paper's Section VII example end-to-end: batched
// Brandes betweenness centrality (Figure 3) on an RMAT graph, cross-checked
// against a classic queue-and-stack Brandes implementation — the role GBTL
// played in the paper's Section VIII.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func main() {
	scale := flag.Int("scale", 10, "RMAT scale (2^scale vertices)")
	edgeFactor := flag.Int("ef", 8, "edges per vertex")
	batch := flag.Int("batch", 16, "number of source vertices in the batch")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	g := generate.RMAT(*scale, *edgeFactor, *seed).Dedup(true)
	fmt.Printf("RMAT scale %d: %d vertices, %d edges (deduplicated)\n", *scale, g.N, len(g.Edges))

	// Figure 3 takes an integer adjacency matrix with stored 1s.
	a, err := graphblas.NewMatrix[int32](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols, _ := g.Tuples()
	ones := make([]int32, len(rows))
	for i := range ones {
		ones[i] = 1
	}
	if err := a.Build(rows, cols, ones, graphblas.First[int32]()); err != nil {
		log.Fatal(err)
	}

	// Pick a deterministic batch of distinct sources.
	rng := generate.NewRNG(*seed + 1)
	perm := rng.Perm(g.N)
	sources := perm[:*batch]

	start := time.Now()
	delta, err := algorithms.BCUpdate(a, sources)
	if err != nil {
		log.Fatal(err)
	}
	idx, val, err := delta.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	grbTime := time.Since(start)

	start = time.Now()
	want := refalgo.BrandesBC(refalgo.NewAdjacency(g), sources)
	refTime := time.Since(start)

	got := make([]float64, g.N)
	for k := range idx {
		got[idx[k]] = float64(val[k])
	}
	worst := 0.0
	for v := 0; v < g.N; v++ {
		diff := math.Abs(got[v]-want[v]) / math.Max(1, math.Abs(want[v]))
		if diff > worst {
			worst = diff
		}
	}

	type vc struct {
		v  int
		bc float64
	}
	top := make([]vc, g.N)
	for v := range top {
		top[v] = vc{v, got[v]}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].bc > top[b].bc })

	fmt.Printf("\ntop-5 betweenness (batch of %d sources):\n", *batch)
	for _, t := range top[:5] {
		fmt.Printf("  vertex %5d  bc %.2f\n", t.v, t.bc)
	}
	fmt.Printf("\nGraphBLAS BC_update: %v\nclassic Brandes:     %v\n", grbTime, refTime)
	fmt.Printf("max relative deviation vs Brandes: %.2e %s\n", worst,
		map[bool]string{true: "(agreement ✓)", false: "(DISAGREEMENT)"}[worst < 1e-3])
}

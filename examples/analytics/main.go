// Command analytics runs the whole algorithm suite over one graph through
// the high-level graph layer (the LAGraph-style convenience API), printing
// a profile of the network: connectivity, centrality, cohesion, and
// community structure — a dozen GraphBLAS algorithms, one page of code.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"graphblas"
	"graphblas/internal/generate"
	"graphblas/internal/graph"
)

func main() {
	scale := flag.Int("scale", 10, "RMAT scale")
	ef := flag.Int("ef", 8, "edge factor")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	g := graph.FromEdges(generate.RMAT(*scale, *ef, *seed).Dedup(true))
	fmt.Printf("network profile: RMAT scale %d — %d vertices, %d edges\n\n",
		*scale, g.N(), g.NumEdges())

	// Degrees.
	deg, err := g.OutDegrees()
	check(err)
	maxDeg, isolated := 0, 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 {
			isolated++
		}
	}
	fmt.Printf("degree:        max out-degree %d, %d isolated vertices\n", maxDeg, isolated)

	// Connectivity.
	cc, err := g.ConnectedComponents()
	check(err)
	scc, err := g.SCC()
	check(err)
	fmt.Printf("connectivity:  %d weak components, %d strong components\n",
		distinct(cc), distinct(scc))

	levels, err := g.BFS(0)
	check(err)
	reached, ecc := 0, 0
	for _, l := range levels {
		if l >= 0 {
			reached++
			if l > ecc {
				ecc = l
			}
		}
	}
	fmt.Printf("traversal:     BFS(0) reaches %d vertices, eccentricity %d\n", reached, ecc)

	// Centrality.
	rank, sweeps, err := g.PageRank(0.85, 1e-9, 200)
	check(err)
	bc, err := g.BC([]int{0, 1, 2, 3, 4, 5, 6, 7})
	check(err)
	fmt.Printf("centrality:    PageRank leader v%d (%.4f, %d sweeps); BC leader v%d (%.1f, batch 8)\n",
		argmax(rank), rank[argmax(rank)], sweeps, argmax(bc), bc[argmax(bc)])

	// Cohesion.
	tri, err := g.TriangleCount()
	check(err)
	coef, err := g.ClusteringCoefficients()
	check(err)
	meanCC := 0.0
	for _, c := range coef {
		meanCC += c
	}
	meanCC /= float64(len(coef))
	cores, err := g.CoreNumbers()
	check(err)
	degeneracy := 0
	for _, c := range cores {
		if c > degeneracy {
			degeneracy = c
		}
	}
	truss, err := g.KTruss(4)
	check(err)
	fmt.Printf("cohesion:      %d triangles, mean clustering %.4f, degeneracy %d, |4-truss| %d edges\n",
		tri, meanCC, degeneracy, len(truss))

	// Independence.
	mis, err := g.MIS(*seed)
	check(err)
	fmt.Printf("independence:  maximal independent set of %d vertices\n", len(mis))

	// Multi-source reachability over the power-set semiring.
	hubs := topK(deg, 3)
	reach, err := g.Reach(hubs)
	check(err)
	counts := make([]int, 4)
	for _, sets := range reach {
		counts[len(sets)]++
	}
	fmt.Printf("reachability:  from top-degree hubs %v: %d vertices see none, %d see all three\n",
		hubs, counts[0], counts[3])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func distinct(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func topK(deg []int, k int) []int {
	order := make([]int, len(deg))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	return order[:k]
}

// Command semirings tours Table I of the paper: the same 6-vertex flight
// network multiplied under five different semirings answers five different
// questions — cost accumulation, best bottleneck, two-hop reachability over
// GF(2) parity, classic reachability, and "which origins can route here"
// over the power-set algebra. The stored matrix never changes; only the
// algebra does, which is the design point of Section II.
package main

import (
	"fmt"
	"log"

	"graphblas"
)

const n = 6

var cities = [n]string{"SFO", "DEN", "ORD", "JFK", "ATL", "MIA"}

// buildWeighted builds the fare matrix.
func buildWeighted() *graphblas.Matrix[float64] {
	a, err := graphblas.NewMatrix[float64](n, n)
	if err != nil {
		log.Fatal(err)
	}
	rows := []int{0, 0, 1, 1, 2, 3, 4, 4, 5}
	cols := []int{1, 4, 2, 3, 3, 5, 2, 5, 3}
	fare := []float64{99, 150, 80, 210, 65, 120, 70, 95, 60}
	if err := a.Build(rows, cols, fare, graphblas.NoAccum[float64]()); err != nil {
		log.Fatal(err)
	}
	return a
}

// vecString renders a float vector with city labels.
func vecString(v *graphblas.Vector[float64]) string {
	idx, val, _ := v.ExtractTuples()
	s := ""
	for k := range idx {
		if k > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s:%.0f", cities[idx[k]], val[k])
	}
	if s == "" {
		return "(none)"
	}
	return s
}

func main() {
	if err := graphblas.Init(graphblas.Blocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	a := buildWeighted()

	// Row 1 — standard arithmetic ⟨+, ×, 0⟩: total fare mass flowing two
	// hops out of SFO (path enumeration weight).
	from := func() *graphblas.Vector[float64] {
		v, _ := graphblas.NewVector[float64](n)
		_ = v.SetElement(1, 0) // unit mass at SFO
		return v
	}
	twoHop := func(s graphblas.Semiring[float64, float64, float64]) *graphblas.Vector[float64] {
		v := from()
		for hop := 0; hop < 2; hop++ {
			if err := graphblas.VxM(v, graphblas.NoMaskV, graphblas.NoAccum[float64](), s, v, a, nil); err != nil {
				log.Fatal(err)
			}
		}
		return v
	}
	fmt.Println("Table I semiring tour — the matrix is fixed, the algebra varies")
	fmt.Println("\n1. standard arithmetic ⟨+,×⟩   (two-hop path-weight products from SFO):")
	fmt.Println("  ", vecString(twoHop(graphblas.PlusTimes[float64]())))

	// Row 2 — min-plus (the tropical dual of max-plus): cheapest two-hop
	// fare from SFO.
	fmt.Println("\n2. tropical ⟨min,+⟩            (cheapest 2-hop fares from SFO):")
	fmt.Println("  ", vecString(twoHop(graphblas.MinPlus[float64]())))

	// Row 3 — min-max: the minimax fare — minimize the most expensive leg.
	fmt.Println("\n3. min-max ⟨min,max⟩           (smallest worst-leg over 2-hop routes):")
	fmt.Println("  ", vecString(twoHop(graphblas.MinMax[float64]())))

	// Row 4 — GF(2) xor/and: parity of the number of distinct 2-hop routes.
	pattern, _ := graphblas.NewMatrix[bool](n, n)
	if err := graphblas.ApplyM(pattern, graphblas.NoMask, graphblas.NoAccum[bool](),
		graphblas.CastToBool[float64](), a, nil); err != nil {
		log.Fatal(err)
	}
	par, _ := graphblas.NewVector[bool](n)
	_ = par.SetElement(true, 0)
	for hop := 0; hop < 2; hop++ {
		if err := graphblas.VxM(par, graphblas.NoMaskV, graphblas.NoAccum[bool](),
			graphblas.XorAnd(), par, pattern, nil); err != nil {
			log.Fatal(err)
		}
	}
	pIdx, pVal, _ := par.ExtractTuples()
	fmt.Println("\n4. GF(2) ⟨xor,and⟩             (odd number of 2-hop routes from SFO):")
	fmt.Print("   ")
	for k := range pIdx {
		if pVal[k] {
			fmt.Printf("%s ", cities[pIdx[k]])
		}
	}
	fmt.Println()

	// Row 5 — power-set ⟨∪,∩⟩: which of {SFO, ORD, MIA} can route to each
	// city within two hops. Labels are sets over the source universe; the
	// adjacency carries the full universe U (the ∩ identity).
	uni := 3
	sources := []int{0, 2, 5} // SFO, ORD, MIA
	labels, _ := graphblas.NewVector[graphblas.IntSet](n)
	for k, s := range sources {
		_ = labels.SetElement(graphblas.IntSetOf(uni, k), s)
	}
	setA, _ := graphblas.NewMatrix[graphblas.IntSet](n, n)
	full := graphblas.FullIntSet(uni)
	lift, _ := graphblas.NewUnaryOp("toU", func(bool) graphblas.IntSet { return full })
	if err := graphblas.ApplyM(setA, graphblas.NoMask, graphblas.NoAccum[graphblas.IntSet](), lift, pattern, nil); err != nil {
		log.Fatal(err)
	}
	ui := graphblas.UnionIntersect(uni)
	for hop := 0; hop < 2; hop++ {
		if err := graphblas.VxM(labels, graphblas.NoMaskV, ui.Add.Op, ui, labels, setA, nil); err != nil {
			log.Fatal(err)
		}
	}
	lIdx, lVal, _ := labels.ExtractTuples()
	fmt.Println("\n5. power set ⟨∪,∩⟩             (which of {SFO,ORD,MIA} reach each city ≤2 hops):")
	names := []string{"SFO", "ORD", "MIA"}
	for k := range lIdx {
		fmt.Printf("   %s ← {", cities[lIdx[k]])
		for i, m := range lVal[k].Members() {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(names[m])
		}
		fmt.Println("}")
	}
}

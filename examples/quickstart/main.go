// Command quickstart is the smallest end-to-end GraphBLAS program: build a
// graph as a sparse boolean matrix, run one masked frontier expansion (the
// core BFS step of the paper's Section VII), and read the results back out
// of the opaque objects.
package main

import (
	"fmt"
	"log"

	"graphblas"
)

func main() {
	// A GraphBLAS program runs inside a context (Section IV). Nonblocking
	// mode lets the library defer and optimize the operations.
	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := graphblas.Finalize(); err != nil {
			log.Fatal(err)
		}
	}()

	// A small directed graph:
	//
	//	0 → 1 → 2
	//	↓       ↑
	//	3 ------+
	const n = 4
	a, err := graphblas.NewMatrix[bool](n, n)
	if err != nil {
		log.Fatal(err)
	}
	rows := []int{0, 1, 0, 3}
	cols := []int{1, 2, 3, 2}
	vals := []bool{true, true, true, true}
	if err := a.Build(rows, cols, vals, graphblas.NoAccum[bool]()); err != nil {
		log.Fatal(err)
	}

	// A frontier holding vertex 0, and a "visited" vector used as a mask.
	frontier, _ := graphblas.NewVector[bool](n)
	visited, _ := graphblas.NewVector[bool](n)
	_ = frontier.SetElement(true, 0)
	_ = visited.SetElement(true, 0)

	// Expand the frontier twice over the boolean ∨.∧ semiring, pruning
	// visited vertices with a complemented mask — the paper's key idiom.
	desc := graphblas.Desc().ReplaceOutput().CompMask()
	for step := 1; step <= 2; step++ {
		if err := graphblas.VxM(frontier, visited, graphblas.NoAccum[bool](),
			graphblas.LorLand(), frontier, a, desc); err != nil {
			log.Fatal(err)
		}
		// visited ∨= frontier.
		if err := graphblas.AssignVectorScalar(visited, frontier,
			graphblas.NoAccum[bool](), true, graphblas.All, nil); err != nil {
			log.Fatal(err)
		}
		idx, _, err := frontier.ExtractTuples() // forces completion
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frontier after %d hop(s): %v\n", step, idx)
	}

	idx, _, _ := visited.ExtractTuples()
	fmt.Printf("reachable from 0: %v\n", idx)

	stats := graphblas.StatsSnapshot()
	fmt.Printf("execution engine: %d ops deferred, %d executed, %d flushes\n",
		stats.OpsEnqueued, stats.OpsExecuted, stats.Flushes)
}

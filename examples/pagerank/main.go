// Command pagerank ranks the vertices of an RMAT graph with the
// GraphBLAS-expressed PageRank and cross-checks the classic power-iteration
// baseline, demonstrating the algorithm suite layered on the API.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"graphblas"
	"graphblas/internal/algorithms"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func main() {
	scale := flag.Int("scale", 11, "RMAT scale (2^scale vertices)")
	ef := flag.Int("ef", 8, "edge factor")
	damping := flag.Float64("d", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-8, "L1 convergence tolerance")
	seed := flag.Uint64("seed", 123, "generator seed")
	flag.Parse()

	if err := graphblas.Init(graphblas.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer graphblas.Finalize()

	g := generate.RMAT(*scale, *ef, *seed).Dedup(true)
	fmt.Printf("RMAT scale %d: %d vertices, %d edges\n", *scale, g.N, len(g.Edges))

	a, err := graphblas.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols, w := g.Tuples()
	if err := a.Build(rows, cols, w, graphblas.First[float64]()); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rank, iters, err := algorithms.PageRank(a, *damping, *tol, 500)
	if err != nil {
		log.Fatal(err)
	}
	idx, val, _ := rank.ExtractTuples()
	grbTime := time.Since(start)

	start = time.Now()
	want, refIters := refalgo.PageRank(refalgo.NewAdjacency(g), *damping, *tol, 500)
	refTime := time.Since(start)

	got := make([]float64, g.N)
	for k := range idx {
		got[idx[k]] = val[k]
	}
	maxErr := 0.0
	for v := 0; v < g.N; v++ {
		if d := math.Abs(got[v] - want[v]); d > maxErr {
			maxErr = d
		}
	}

	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return got[order[a]] > got[order[b]] })
	fmt.Println("\ntop-5 ranked vertices:")
	for _, v := range order[:5] {
		fmt.Printf("  vertex %5d  rank %.6f\n", v, got[v])
	}
	fmt.Printf("\nGraphBLAS PageRank: %v (%d sweeps)\nbaseline:           %v (%d sweeps)\n",
		grbTime, iters, refTime, refIters)
	fmt.Printf("max |Δrank|: %.2e %s\n", maxErr,
		map[bool]string{true: "(agreement ✓)", false: "(DISAGREEMENT)"}[maxErr < 1e-6])
}

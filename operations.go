package graphblas

import "graphblas/internal/core"

// This file re-exports the Table II operations. Each delegates to the core
// implementation; the signatures follow the C API argument order
// (output, mask, accumulator, operator, inputs..., descriptor).

// MxM computes C ⊙= A ⊕.⊗ B over a semiring (GrB_mxm, Figure 2).
func MxM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], op Semiring[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	return core.MxM(c, mask, accum, op, a, b, desc)
}

// MxV computes w ⊙= A ⊕.⊗ u (GrB_mxv).
func MxV[DC, DA, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op Semiring[DA, DU, DC], a *Matrix[DA], u *Vector[DU], desc *Descriptor) error {
	return core.MxV(w, mask, accum, op, a, u, desc)
}

// VxM computes wᵀ ⊙= uᵀ ⊕.⊗ A (GrB_vxm).
func VxM[DC, DU, DA, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op Semiring[DU, DA, DC], u *Vector[DU], a *Matrix[DA], desc *Descriptor) error {
	return core.VxM(w, mask, accum, op, u, a, desc)
}

// EWiseAddM computes C ⊙= A ⊕ B for matrices (GrB_eWiseAdd): union of
// structures, op applied where both inputs are present.
func EWiseAddM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], add BinaryOp[DC, DC, DC], a, b *Matrix[DC], desc *Descriptor) error {
	return core.EWiseAddM(c, mask, accum, add, a, b, desc)
}

// EWiseAddMonoidM is EWiseAddM taking the operator from a monoid (the
// Figure 3 line 42 form).
func EWiseAddMonoidM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], a, b *Matrix[DC], desc *Descriptor) error {
	return core.EWiseAddMonoidM(c, mask, accum, m, a, b, desc)
}

// EWiseAddV computes w ⊙= u ⊕ v for vectors.
func EWiseAddV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], add BinaryOp[DC, DC, DC], u, v *Vector[DC], desc *Descriptor) error {
	return core.EWiseAddV(w, mask, accum, add, u, v, desc)
}

// EWiseAddMonoidV is EWiseAddV taking the operator from a monoid.
func EWiseAddMonoidV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], u, v *Vector[DC], desc *Descriptor) error {
	return core.EWiseAddMonoidV(w, mask, accum, m, u, v, desc)
}

// EWiseMultM computes C ⊙= A ⊗ B for matrices (GrB_eWiseMult):
// intersection of structures, with the full three-domain operator.
func EWiseMultM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	return core.EWiseMultM(c, mask, accum, mul, a, b, desc)
}

// EWiseMultSemiringM is EWiseMultM taking the multiplicative operator of a
// semiring (the Figure 3 lines 70/74 form).
func EWiseMultSemiringM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], s Semiring[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	return core.EWiseMultSemiringM(c, mask, accum, s, a, b, desc)
}

// EWiseMultV computes w ⊙= u ⊗ v for vectors.
func EWiseMultV[DC, DA, DB, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], u *Vector[DA], v *Vector[DB], desc *Descriptor) error {
	return core.EWiseMultV(w, mask, accum, mul, u, v, desc)
}

// ApplyM computes C ⊙= f(A) (GrB_apply on matrices).
func ApplyM[DC, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f UnaryOp[DA, DC], a *Matrix[DA], desc *Descriptor) error {
	return core.ApplyM(c, mask, accum, f, a, desc)
}

// ApplyV computes w ⊙= f(u) (GrB_apply on vectors).
func ApplyV[DC, DA, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f UnaryOp[DA, DC], u *Vector[DA], desc *Descriptor) error {
	return core.ApplyV(w, mask, accum, f, u, desc)
}

// ApplyBindFirstM computes C ⊙= f(x, A) (apply with bound scalar).
func ApplyBindFirstM[DC, DX, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DX, DA, DC], x DX, a *Matrix[DA], desc *Descriptor) error {
	return core.ApplyBindFirstM(c, mask, accum, f, x, a, desc)
}

// ApplyBindSecondM computes C ⊙= f(A, y).
func ApplyBindSecondM[DC, DA, DY, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DA, DY, DC], a *Matrix[DA], y DY, desc *Descriptor) error {
	return core.ApplyBindSecondM(c, mask, accum, f, a, y, desc)
}

// ApplyBindFirstV computes w ⊙= f(x, u).
func ApplyBindFirstV[DC, DX, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DX, DU, DC], x DX, u *Vector[DU], desc *Descriptor) error {
	return core.ApplyBindFirstV(w, mask, accum, f, x, u, desc)
}

// ApplyBindSecondV computes w ⊙= f(u, y).
func ApplyBindSecondV[DC, DU, DY, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f BinaryOp[DU, DY, DC], u *Vector[DU], y DY, desc *Descriptor) error {
	return core.ApplyBindSecondV(w, mask, accum, f, u, y, desc)
}

// ApplyIndexOpM computes C ⊙= f(A_ij, i, j) (index-aware apply extension).
func ApplyIndexOpM[DC, DA, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], f IndexUnaryOp[DA, DC], a *Matrix[DA], desc *Descriptor) error {
	return core.ApplyIndexOpM(c, mask, accum, f, a, desc)
}

// ApplyIndexOpV computes w ⊙= f(u_i, i, 0).
func ApplyIndexOpV[DC, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], f IndexUnaryOp[DU, DC], u *Vector[DU], desc *Descriptor) error {
	return core.ApplyIndexOpV(w, mask, accum, f, u, desc)
}

// ReduceMatrixToVector computes w ⊙= ⊕_j A(:, j) (GrB_reduce, Figure 3
// line 78). Use the INP0 transpose to reduce columns.
func ReduceMatrixToVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], a *Matrix[DC], desc *Descriptor) error {
	return core.ReduceMatrixToVector(w, mask, accum, m, a, desc)
}

// ReduceMatrixToScalar folds every stored element of A with the monoid;
// forces completion (non-opaque output).
func ReduceMatrixToScalar[D any](val D, accum BinaryOp[D, D, D], m Monoid[D], a *Matrix[D]) (D, error) {
	return core.ReduceMatrixToScalar(val, accum, m, a)
}

// ReduceVectorToScalar folds every stored element of u with the monoid.
func ReduceVectorToScalar[D any](val D, accum BinaryOp[D, D, D], m Monoid[D], u *Vector[D]) (D, error) {
	return core.ReduceVectorToScalar(val, accum, m, u)
}

// Transpose computes C ⊙= Aᵀ (GrB_transpose).
func Transpose[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], desc *Descriptor) error {
	return core.Transpose(c, mask, accum, a, desc)
}

// ExtractSubmatrix computes C ⊙= A(rows, cols) (GrB_extract). nil index
// lists mean GrB_ALL; duplicates replicate.
func ExtractSubmatrix[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows, cols []int, desc *Descriptor) error {
	return core.ExtractSubmatrix(c, mask, accum, a, rows, cols, desc)
}

// ExtractSubvector computes w ⊙= u(indices).
func ExtractSubvector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], indices []int, desc *Descriptor) error {
	return core.ExtractSubvector(w, mask, accum, u, indices, desc)
}

// ExtractColVector computes w ⊙= A(rows, j) (GrB_Col_extract; Figure 3
// line 33 shape). With the INP0 transpose it extracts row j.
func ExtractColVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows []int, j int, desc *Descriptor) error {
	return core.ExtractColVector(w, mask, accum, a, rows, j, desc)
}

// AssignVector computes w(indices) ⊙= u (GrB_assign). Assign index lists
// must be duplicate-free.
func AssignVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], indices []int, desc *Descriptor) error {
	return core.AssignVector(w, mask, accum, u, indices, desc)
}

// AssignVectorScalar computes w(indices) ⊙= x (the Figure 3 line 77 fill).
func AssignVectorScalar[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], x DC, indices []int, desc *Descriptor) error {
	return core.AssignVectorScalar(w, mask, accum, x, indices, desc)
}

// AssignMatrix computes C(rows, cols) ⊙= A (GrB_assign).
func AssignMatrix[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows, cols []int, desc *Descriptor) error {
	return core.AssignMatrix(c, mask, accum, a, rows, cols, desc)
}

// AssignMatrixScalar computes C(rows, cols) ⊙= x (the Figure 3 line 61
// fill).
func AssignMatrixScalar[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], x DC, rows, cols []int, desc *Descriptor) error {
	return core.AssignMatrixScalar(c, mask, accum, x, rows, cols, desc)
}

// AssignRow computes C(i, cols) ⊙= u (GrB_Row_assign).
func AssignRow[DC, DM any](c *Matrix[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], i int, cols []int, desc *Descriptor) error {
	return core.AssignRow(c, mask, accum, u, i, cols, desc)
}

// AssignCol computes C(rows, j) ⊙= u (GrB_Col_assign).
func AssignCol[DC, DM any](c *Matrix[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], rows []int, j int, desc *Descriptor) error {
	return core.AssignCol(c, mask, accum, u, rows, j, desc)
}

// SelectM computes C ⊙= select(pred, A) (extension).
func SelectM[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], pred IndexUnaryOp[DC, bool], a *Matrix[DC], desc *Descriptor) error {
	return core.SelectM(c, mask, accum, pred, a, desc)
}

// SelectV computes w ⊙= select(pred, u) (extension).
func SelectV[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], pred IndexUnaryOp[DC, bool], u *Vector[DC], desc *Descriptor) error {
	return core.SelectV(w, mask, accum, pred, u, desc)
}

// Kronecker computes C ⊙= A ⊗kron B (extension).
func Kronecker[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], mul BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	return core.Kronecker(c, mask, accum, mul, a, b, desc)
}

// Diag builds a matrix holding v on its k-th diagonal (extension).
func Diag[D any](v *Vector[D], k int) (*Matrix[D], error) { return core.Diag(v, k) }

// EWiseUnionM computes C ⊙= union(A, alpha, B, beta, op): op applies at
// every union position with fills for absent operands (GxB_eWiseUnion
// extension; restores three-domain generality for unions).
func EWiseUnionM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], op BinaryOp[DA, DB, DC], a *Matrix[DA], alpha DA, b *Matrix[DB], beta DB, desc *Descriptor) error {
	return core.EWiseUnionM(c, mask, accum, op, a, alpha, b, beta, desc)
}

// EWiseUnionV computes w ⊙= union(u, alpha, v, beta, op) for vectors.
func EWiseUnionV[DC, DA, DB, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op BinaryOp[DA, DB, DC], u *Vector[DA], alpha DA, v *Vector[DB], beta DB, desc *Descriptor) error {
	return core.EWiseUnionV(w, mask, accum, op, u, alpha, v, beta, desc)
}

package refalgo

// Structural decompositions used as oracles for the GraphBLAS-expressed
// k-core, k-truss, and clustering-coefficient algorithms. All expect a
// symmetric, loop-free, deduplicated adjacency.

// CoreNumbers returns the coreness of every vertex (the largest k such that
// the vertex belongs to the k-core) by the classic bucket-peeling
// algorithm of Batagelj–Zaveršnik.
func CoreNumbers(a *Adjacency) []int {
	n := a.N
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = a.Ptr[v+1] - a.Ptr[v]
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for p := a.Ptr[v]; p < a.Ptr[v+1]; p++ {
			u := a.Dst[p]
			if deg[u] > deg[v] {
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}

// TrussEdges returns the edges (as ordered src<dst pairs) of the k-truss:
// the maximal subgraph in which every edge participates in at least k-2
// triangles. Computed by iterative support peeling.
func TrussEdges(a *Adjacency, k int) [][2]int {
	type edge struct{ u, v int }
	// Collect undirected edges u<v.
	present := map[edge]bool{}
	for u := 0; u < a.N; u++ {
		for _, v := range a.Neighbors(u) {
			if u < v {
				present[edge{u, v}] = true
			}
		}
	}
	// Adjacency sets for support counting; rebuilt each round for clarity
	// (oracle code: simplicity over speed).
	for {
		nbr := make([]map[int]bool, a.N)
		for i := range nbr {
			nbr[i] = map[int]bool{}
		}
		for e := range present {
			nbr[e.u][e.v] = true
			nbr[e.v][e.u] = true
		}
		var removed []edge
		for e := range present {
			support := 0
			small, large := nbr[e.u], nbr[e.v]
			if len(small) > len(large) {
				small, large = large, small
			}
			for w := range small {
				if large[w] {
					support++
				}
			}
			if support < k-2 {
				removed = append(removed, e)
			}
		}
		if len(removed) == 0 {
			break
		}
		for _, e := range removed {
			delete(present, e)
		}
	}
	out := make([][2]int, 0, len(present))
	for e := range present {
		out = append(out, [2]int{e.u, e.v})
	}
	return out
}

// ClusteringCoefficients returns the local clustering coefficient of every
// vertex: triangles(v) / (deg(v) choose 2), 0 for degree < 2.
func ClusteringCoefficients(a *Adjacency) []float64 {
	n := a.N
	tri := make([]int, n)
	for v := 0; v < n; v++ {
		nv := a.Neighbors(v)
		for i := 0; i < len(nv); i++ {
			for j := i + 1; j < len(nv); j++ {
				// edge between nv[i] and nv[j]?
				u, w := nv[i], nv[j]
				nu := a.Neighbors(u)
				lo, hi := 0, len(nu)
				for lo < hi {
					mid := (lo + hi) / 2
					if nu[mid] < w {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo < len(nu) && nu[lo] == w {
					tri[v]++
				}
			}
		}
	}
	cc := make([]float64, n)
	for v := 0; v < n; v++ {
		d := a.Ptr[v+1] - a.Ptr[v]
		if d >= 2 {
			cc[v] = 2 * float64(tri[v]) / float64(d*(d-1))
		}
	}
	return cc
}

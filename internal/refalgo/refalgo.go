// Package refalgo provides classic, direct (non-linear-algebra)
// implementations of the graph algorithms in the suite: queue-based BFS,
// Brandes betweenness centrality, Dijkstra and Bellman-Ford shortest paths,
// power-iteration PageRank, adjacency-intersection triangle counting, and
// union-find connected components.
//
// These play the role GBTL played in the paper's Section VIII — an
// independent oracle the GraphBLAS-expressed algorithms are validated
// against — and serve as the baselines in the benchmark harness.
package refalgo

import (
	"container/heap"
	"math"
	"sort"

	"graphblas/internal/generate"
)

// Adjacency is a CSR-like adjacency list built once from an edge list.
type Adjacency struct {
	N      int
	Ptr    []int
	Dst    []int
	Weight []float64
}

// NewAdjacency builds adjacency lists from a graph; duplicate edges are
// kept as parallel edges (callers wanting simple graphs should Dedup the
// graph first).
func NewAdjacency(g *generate.Graph) *Adjacency {
	a := &Adjacency{N: g.N, Ptr: make([]int, g.N+1)}
	for _, e := range g.Edges {
		a.Ptr[e.Src+1]++
	}
	for i := 0; i < g.N; i++ {
		a.Ptr[i+1] += a.Ptr[i]
	}
	a.Dst = make([]int, len(g.Edges))
	a.Weight = make([]float64, len(g.Edges))
	next := append([]int(nil), a.Ptr...)
	for _, e := range g.Edges {
		p := next[e.Src]
		next[e.Src]++
		a.Dst[p] = e.Dst
		a.Weight[p] = e.Weight
	}
	// Sort neighbors for deterministic traversal and fast intersection.
	for i := 0; i < g.N; i++ {
		lo, hi := a.Ptr[i], a.Ptr[i+1]
		idx := a.Dst[lo:hi]
		w := a.Weight[lo:hi]
		sort.Sort(&pairSort{idx, w})
	}
	return a
}

type pairSort struct {
	idx []int
	w   []float64
}

func (p *pairSort) Len() int { return len(p.idx) }
func (p *pairSort) Swap(a, b int) {
	p.idx[a], p.idx[b] = p.idx[b], p.idx[a]
	p.w[a], p.w[b] = p.w[b], p.w[a]
}
func (p *pairSort) Less(a, b int) bool { return p.idx[a] < p.idx[b] }

// Neighbors returns the sorted destination list of vertex v.
func (a *Adjacency) Neighbors(v int) []int { return a.Dst[a.Ptr[v]:a.Ptr[v+1]] }

// BFSLevels returns the hop distance from source for every reached vertex;
// unreached vertices get -1.
func BFSLevels(a *Adjacency, source int) []int {
	level := make([]int, a.N)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range a.Neighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// BFSParents returns a parent for every reached vertex (the smallest-index
// parent on a shortest hop path, matching the GraphBLAS MinFirst
// convention); the source is its own parent; unreached vertices get -1.
func BFSParents(a *Adjacency, source int) []int {
	parent := make([]int, a.N)
	level := make([]int, a.N)
	for i := range parent {
		parent[i] = -1
		level[i] = -1
	}
	parent[source] = source
	level[source] = 0
	frontier := []int{source}
	for len(frontier) > 0 {
		var next []int
		// Gather candidate parents per next-level vertex; smallest parent
		// index wins, mirroring the Min monoid over parent ids.
		for _, v := range frontier {
			for _, u := range a.Neighbors(v) {
				if level[u] < 0 {
					if parent[u] == -1 || v < parent[u] {
						if parent[u] == -1 {
							next = append(next, u)
						}
						parent[u] = v
					}
				}
			}
		}
		for _, u := range next {
			level[u] = level[parent[u]] + 1
		}
		frontier = next
	}
	return parent
}

// BellmanFord returns single-source shortest path distances; unreachable
// vertices get +Inf. Negative cycles are not handled (weights are assumed
// nonnegative in this suite).
func BellmanFord(a *Adjacency, source int) []float64 {
	dist := make([]float64, a.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for iter := 0; iter < a.N; iter++ {
		changed := false
		for v := 0; v < a.N; v++ {
			if math.IsInf(dist[v], 1) {
				continue
			}
			for p := a.Ptr[v]; p < a.Ptr[v+1]; p++ {
				if nd := dist[v] + a.Weight[p]; nd < dist[a.Dst[p]] {
					dist[a.Dst[p]] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(a, b int) bool { return q[a].dist < q[b].dist }
func (q pq) Swap(a, b int)      { q[a], q[b] = q[b], q[a] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Dijkstra returns single-source shortest path distances for nonnegative
// weights; unreachable vertices get +Inf.
func Dijkstra(a *Adjacency, source int) []float64 {
	dist := make([]float64, a.N)
	done := make([]bool, a.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	q := &pq{{source, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for p := a.Ptr[it.v]; p < a.Ptr[it.v+1]; p++ {
			u := a.Dst[p]
			if nd := it.dist + a.Weight[p]; nd < dist[u] {
				dist[u] = nd
				heap.Push(q, pqItem{u, nd})
			}
		}
	}
	return dist
}

// BrandesBC computes exact betweenness centrality for the listed source
// vertices (the batched form matching the paper's BC_update: contributions
// from shortest paths starting at each source), on an unweighted graph.
// Passing all vertices as sources gives the classic full BC score.
func BrandesBC(a *Adjacency, sources []int) []float64 {
	bc := make([]float64, a.N)
	sigma := make([]float64, a.N)
	dist := make([]int, a.N)
	delta := make([]float64, a.N)
	preds := make([][]int, a.N)
	stack := make([]int, 0, a.N)
	for _, s := range sources {
		// init
		for i := 0; i < a.N; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		stack = stack[:0]
		sigma[s] = 1
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, u := range a.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
					preds[u] = append(preds[u], v)
				}
			}
		}
		for k := len(stack) - 1; k >= 0; k-- {
			w := stack[k]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// PageRank runs power iteration with damping d until the L1 change is below
// tol or maxIter sweeps, using the standard dangling-mass redistribution.
// Returns the rank vector (sums to 1).
func PageRank(a *Adjacency, d float64, tol float64, maxIter int) ([]float64, int) {
	n := a.N
	rank := make([]float64, n)
	next := make([]float64, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		outDeg[v] = a.Ptr[v+1] - a.Ptr[v]
		rank[v] = 1 / float64(n)
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				continue
			}
			share := rank[v] / float64(outDeg[v])
			for p := a.Ptr[v]; p < a.Ptr[v+1]; p++ {
				next[a.Dst[p]] += share
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		diff := 0.0
		for v := 0; v < n; v++ {
			nv := base + d*next[v]
			diff += math.Abs(nv - rank[v])
			rank[v] = nv
		}
		if diff < tol {
			iters++
			break
		}
	}
	return rank, iters
}

// TriangleCount counts triangles in an undirected simple graph (adjacency
// must be symmetric, loop-free, deduplicated) via sorted neighbor-list
// intersections over the ordered wedge v < u < w.
func TriangleCount(a *Adjacency) int64 {
	var count int64
	for v := 0; v < a.N; v++ {
		nv := a.Neighbors(v)
		for _, u := range nv {
			if u <= v {
				continue
			}
			// count common neighbors w with w > u
			nu := a.Neighbors(u)
			i := sort.SearchInts(nv, u+1)
			j := sort.SearchInts(nu, u+1)
			for i < len(nv) && j < len(nu) {
				switch {
				case nv[i] < nu[j]:
					i++
				case nv[i] > nu[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}

// ConnectedComponents labels the weakly connected components with
// union-find; the label of each component is its smallest vertex index.
func ConnectedComponents(g *generate.Graph) []int {
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx == ry {
			return
		}
		if rx < ry {
			parent[ry] = rx
		} else {
			parent[rx] = ry
		}
	}
	for _, e := range g.Edges {
		union(e.Src, e.Dst)
	}
	label := make([]int, g.N)
	for i := range label {
		label[i] = find(i)
	}
	return label
}

package refalgo

// TarjanSCC labels the strongly connected components of a directed graph;
// each component's label is its smallest member vertex. Iterative Tarjan to
// keep stack depth independent of graph shape.
func TarjanSCC(a *Adjacency) []int {
	n := a.N
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v    int
		iter int // position within v's neighbor list
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{v: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			nbrs := a.Neighbors(f.v)
			advanced := false
			for f.iter < len(nbrs) {
				u := nbrs[f.iter]
				f.iter++
				if index[u] == unvisited {
					index[u] = next
					lowlink[u] = next
					next++
					stack = append(stack, u)
					onStack[u] = true
					call = append(call, frame{v: u})
					advanced = true
					break
				}
				if onStack[u] && index[u] < lowlink[f.v] {
					lowlink[f.v] = index[u]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// Pop the component; label with the smallest member.
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == v {
						break
					}
				}
				minID := members[0]
				for _, m := range members {
					if m < minID {
						minID = m
					}
				}
				for _, m := range members {
					comp[m] = minID
				}
			}
		}
	}
	return comp
}

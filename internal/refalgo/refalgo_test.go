package refalgo

import (
	"math"
	"testing"
	"testing/quick"

	"graphblas/internal/generate"
)

func TestBFSLevelsKnown(t *testing.T) {
	g := generate.Path(5)
	a := NewAdjacency(g)
	lv := BFSLevels(a, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if lv[i] != want {
			t.Fatalf("level[%d]=%d", i, lv[i])
		}
	}
	lv = BFSLevels(a, 4) // no edges back
	for i := 0; i < 4; i++ {
		if lv[i] != -1 {
			t.Fatalf("unreachable %d has level %d", i, lv[i])
		}
	}
}

func TestBFSParentsKnown(t *testing.T) {
	g := generate.Star(5) // center 0, bidirectional
	a := NewAdjacency(g)
	p := BFSParents(a, 2)
	if p[2] != 2 || p[0] != 2 {
		t.Fatalf("parents %v", p)
	}
	for _, leaf := range []int{1, 3, 4} {
		if p[leaf] != 0 {
			t.Fatalf("leaf %d parent %d", leaf, p[leaf])
		}
	}
}

func TestShortestPathsKnown(t *testing.T) {
	// Weighted diamond where the long way is shorter: 0→1 (5), 0→2 (1),
	// 2→1 (1), 1→3 (1).
	g := &generate.Graph{N: 4, Edges: []generate.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1},
	}}
	a := NewAdjacency(g)
	for _, dist := range [][]float64{Dijkstra(a, 0), BellmanFord(a, 0)} {
		want := []float64{0, 2, 1, 3}
		for i := range want {
			if dist[i] != want[i] {
				t.Fatalf("dist %v", dist)
			}
		}
	}
}

// Property: Dijkstra and Bellman-Ford agree on random nonnegative graphs.
func TestQuickDijkstraBellmanFordAgree(t *testing.T) {
	f := func(seed uint64) bool {
		g := generate.ErdosRenyiGnm(40, 150, seed)
		a := NewAdjacency(g)
		d1 := Dijkstra(a, 0)
		d2 := BellmanFord(a, 0)
		for v := range d1 {
			if math.IsInf(d1[v], 1) != math.IsInf(d2[v], 1) {
				return false
			}
			if !math.IsInf(d1[v], 1) && math.Abs(d1[v]-d2[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBrandesKnown(t *testing.T) {
	// Path 0-1-2-3-4 (undirected): BC of inner vertices from all sources.
	g := generate.Path(5).Symmetrize()
	a := NewAdjacency(g)
	all := []int{0, 1, 2, 3, 4}
	bc := BrandesBC(a, all)
	// Classic undirected-path BC (directed counting, both directions):
	// v1: pairs (0,2),(0,3),(0,4) and reverses = 6; v2: (0,3),(0,4),(1,3),(1,4) ×2 = 8.
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("bc %v want %v", bc, want)
		}
	}
	// Star: center lies on every leaf-to-leaf shortest path.
	s := generate.Star(6)
	sa := NewAdjacency(s)
	sbc := BrandesBC(sa, []int{0, 1, 2, 3, 4, 5})
	if sbc[0] != 20 { // 5 leaves → 5·4 ordered pairs
		t.Fatalf("star center bc %v", sbc[0])
	}
	for leaf := 1; leaf < 6; leaf++ {
		if sbc[leaf] != 0 {
			t.Fatalf("leaf bc %v", sbc[leaf])
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g := generate.RMAT(7, 6, 3).Dedup(true)
	a := NewAdjacency(g)
	rank, iters := PageRank(a, 0.85, 1e-10, 500)
	if iters == 0 {
		t.Fatal("no iterations")
	}
	sum := 0.0
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("ranks sum %v", sum)
	}
	// Cycle: uniform stationary distribution.
	c := generate.Cycle(10)
	crank, _ := PageRank(NewAdjacency(c), 0.85, 1e-12, 1000)
	for _, r := range crank {
		if math.Abs(r-0.1) > 1e-9 {
			t.Fatalf("cycle rank %v", crank)
		}
	}
}

func TestTriangleCountKnown(t *testing.T) {
	k4 := generate.Complete(4).Symmetrize().Dedup(true)
	if got := TriangleCount(NewAdjacency(k4)); got != 4 {
		t.Fatalf("K4 triangles %d", got)
	}
	k5 := generate.Complete(5).Symmetrize().Dedup(true)
	if got := TriangleCount(NewAdjacency(k5)); got != 10 {
		t.Fatalf("K5 triangles %d", got)
	}
	p := generate.Path(10).Symmetrize().Dedup(true)
	if got := TriangleCount(NewAdjacency(p)); got != 0 {
		t.Fatalf("path triangles %d", got)
	}
}

func TestConnectedComponentsKnown(t *testing.T) {
	g := &generate.Graph{N: 6, Edges: []generate.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 4, Dst: 5, Weight: 1},
	}}
	labels := ConnectedComponents(g)
	want := []int{0, 0, 0, 3, 4, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels %v", labels)
		}
	}
}

func TestAdjacencySortsNeighbors(t *testing.T) {
	g := &generate.Graph{N: 3, Edges: []generate.Edge{
		{Src: 0, Dst: 2, Weight: 9}, {Src: 0, Dst: 1, Weight: 3},
	}}
	a := NewAdjacency(g)
	nb := a.Neighbors(0)
	if nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors %v", nb)
	}
	if a.Weight[a.Ptr[0]] != 3 || a.Weight[a.Ptr[0]+1] != 9 {
		t.Fatal("weights not permuted with neighbors")
	}
}

package refalgo

import (
	"testing"

	"graphblas/internal/generate"
)

func TestCoreNumbersKnown(t *testing.T) {
	// K4 plus pendant: coreness 3,3,3,3,1.
	g := generate.Complete(4)
	g.N = 5
	g.Edges = append(g.Edges,
		generate.Edge{Src: 3, Dst: 4, Weight: 1}, generate.Edge{Src: 4, Dst: 3, Weight: 1})
	g = g.Symmetrize().Dedup(true)
	cores := CoreNumbers(NewAdjacency(g))
	want := []int{3, 3, 3, 3, 1}
	for i := range want {
		if cores[i] != want[i] {
			t.Fatalf("cores %v want %v", cores, want)
		}
	}
	// Path: everything coreness 1; isolated vertex coreness 0.
	p := generate.Path(5)
	p.N = 6
	p = p.Symmetrize().Dedup(true)
	cores = CoreNumbers(NewAdjacency(p))
	for i := 0; i < 5; i++ {
		if cores[i] != 1 {
			t.Fatalf("path cores %v", cores)
		}
	}
	if cores[5] != 0 {
		t.Fatalf("isolated coreness %d", cores[5])
	}
}

func TestTrussEdgesKnown(t *testing.T) {
	k4 := generate.Complete(4).Symmetrize().Dedup(true)
	a := NewAdjacency(k4)
	if got := TrussEdges(a, 4); len(got) != 6 {
		t.Fatalf("K4 4-truss edges %d", len(got))
	}
	if got := TrussEdges(a, 5); len(got) != 0 {
		t.Fatalf("K4 5-truss edges %d", len(got))
	}
	p := generate.Path(6).Symmetrize().Dedup(true)
	if got := TrussEdges(NewAdjacency(p), 3); len(got) != 0 {
		t.Fatalf("path 3-truss %d", len(got))
	}
}

func TestClusteringCoefficientsKnown(t *testing.T) {
	k5 := generate.Complete(5).Symmetrize().Dedup(true)
	for _, c := range ClusteringCoefficients(NewAdjacency(k5)) {
		if c != 1 {
			t.Fatalf("K5 cc %v", c)
		}
	}
	p := generate.Path(6).Symmetrize().Dedup(true)
	for _, c := range ClusteringCoefficients(NewAdjacency(p)) {
		if c != 0 {
			t.Fatalf("path cc %v", c)
		}
	}
}

func TestTarjanSCCKnown(t *testing.T) {
	// 0→1→2→0 is one SCC; 3→4 are singletons.
	g := &generate.Graph{N: 5, Edges: []generate.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 0, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 4, Weight: 1},
	}}
	comp := TarjanSCC(NewAdjacency(g))
	want := []int{0, 0, 0, 3, 4}
	for i := range want {
		if comp[i] != want[i] {
			t.Fatalf("scc %v want %v", comp, want)
		}
	}
	c := generate.Cycle(7)
	comp = TarjanSCC(NewAdjacency(c))
	for _, l := range comp {
		if l != 0 {
			t.Fatalf("cycle scc %v", comp)
		}
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
	"graphblas/internal/stream"
)

func TestMain(m *testing.M) {
	core.ResetForTesting()
	if err := core.Init(core.NonBlocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// resetCore gives the test a pristine nonblocking engine context and
// restores one when it finishes.
func resetCore(t *testing.T) {
	t.Helper()
	core.ResetForTesting()
	if err := core.Init(core.NonBlocking); err != nil {
		t.Fatalf("Init: %v", err)
	}
	t.Cleanup(func() {
		faults.Disable()
		core.ResetForTesting()
		if err := core.Init(core.NonBlocking); err != nil {
			t.Fatalf("re-Init: %v", err)
		}
	})
}

// newTestServer builds an engine over the RMAT graph and ingests every edge
// through the streaming path, compacted at the end so queries start from a
// clean epoch.
func newTestServer(t *testing.T, g *generate.Graph, opt Options) (*Server, *Engine) {
	t.Helper()
	eng, err := NewEngine(Config{N: g.N})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	b := stream.NewBatch[float64]()
	for _, e := range g.Edges {
		b.Insert(e.Src, e.Dst, 1)
	}
	if err := eng.Ingest(b); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	opt.Engine = eng
	return NewServer(opt), eng
}

// get performs one in-process request and decodes the JSON body.
func get(t *testing.T, s *Server, url string) (int, http.Header, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil && rec.Code == http.StatusOK {
			t.Fatalf("bad JSON from %s: %v", url, err)
		}
	}
	return rec.Code, rec.Header(), body
}

func post(t *testing.T, s *Server, url, body string) (int, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Header()
}

// --- resilience primitives (no engine) ---

func TestAdmissionShedAndDrain(t *testing.T) {
	a := NewAdmission(1, 1)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second request queues; third is shed immediately.
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		rel2, err := a.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		rel2()
	}()
	<-started
	for a.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-watermark acquire: got %v want ErrShed", err)
	}
	rel1()
	wg.Wait()

	// A queued waiter whose deadline passes gets its context error back.
	relA, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: got %v want DeadlineExceeded", err)
	}
	relA()

	a.Close()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: got %v want ErrDraining", err)
	}
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBreakerAutomaton(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }

	if !b.Allow() || b.State() != "closed" {
		t.Fatal("new breaker must be closed")
	}
	boom := errors.New("boom")
	b.Record(boom)
	if !b.Allow() {
		t.Fatal("one failure under threshold must not trip")
	}
	b.Record(boom)
	if b.Allow() || b.State() != "open" {
		t.Fatal("threshold failures must open the breaker")
	}
	// Cooldown elapses: one probe allowed (half-open); failure re-opens.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() || b.State() != "half-open" {
		t.Fatal("cooldown must allow a probe")
	}
	b.Record(boom)
	if b.Allow() {
		t.Fatal("failed probe must re-open immediately")
	}
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second cooldown must allow another probe")
	}
	b.Record(nil)
	if !b.Allow() || b.State() != "closed" {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestRetrierTransientClassification(t *testing.T) {
	transient := []core.Info{core.Canceled, core.InvalidObject, core.OutOfMemory, core.PanicInfo}
	for _, info := range transient {
		if !IsTransient(&core.Error{Info: info, Op: "x"}) {
			t.Errorf("%v must be transient", info)
		}
	}
	permanent := []core.Info{core.DimensionMismatch, core.InvalidIndex, core.DomainMismatch, core.InvalidValue}
	for _, info := range permanent {
		if IsTransient(&core.Error{Info: info, Op: "x"}) {
			t.Errorf("%v must not be transient", info)
		}
	}
	if IsTransient(nil) {
		t.Error("nil error must not be transient")
	}
}

func TestRetrierDo(t *testing.T) {
	r := NewRetrier(1, 3, time.Microsecond, 10*time.Microsecond)
	calls := 0
	n, err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &core.Error{Info: core.Canceled, Op: "q"}
		}
		return nil
	})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("transient retry: n=%d calls=%d err=%v", n, calls, err)
	}

	calls = 0
	n, err = r.Do(context.Background(), func(context.Context) error {
		calls++
		return &core.Error{Info: core.DimensionMismatch, Op: "q"}
	})
	if calls != 1 || n != 1 || core.InfoOf(err) != core.DimensionMismatch {
		t.Fatalf("permanent error retried: n=%d calls=%d err=%v", n, calls, err)
	}

	// Identical seeds draw identical backoff schedules.
	r1 := NewRetrier(42, 5, time.Millisecond, 8*time.Millisecond)
	r2 := NewRetrier(42, 5, time.Millisecond, 8*time.Millisecond)
	for i := 1; i <= 4; i++ {
		if d1, d2 := r1.backoff(i), r2.backoff(i); d1 != d2 {
			t.Fatalf("backoff draw %d diverged: %v vs %v", i, d1, d2)
		}
	}
}

// --- query endpoints against oracles ---

func TestServerKHopMatchesOracle(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(6, 4, 99).Dedup(true)
	s, _ := newTestServer(t, g, Options{})
	adj := refalgo.NewAdjacency(g)
	for _, src := range []int{0, 3, 17, 40} {
		for _, k := range []int{0, 1, 2, 3} {
			code, hdr, body := get(t, s, "/query/khop?src="+itoa(src)+"&k="+itoa(k))
			if code != http.StatusOK {
				t.Fatalf("khop(%d,%d): status %d", src, k, code)
			}
			if hdr.Get("X-Graphblas-Epoch") == "" {
				t.Fatalf("khop response missing epoch header")
			}
			levels := refalgo.BFSLevels(adj, src)
			var want []int
			for v, l := range levels {
				if l >= 0 && l <= k {
					want = append(want, v)
				}
			}
			got := intsOf(t, body["vertices"])
			sort.Ints(want)
			if !equalInts(got, want) {
				t.Fatalf("khop(%d,%d): got %v want %v", src, k, got, want)
			}
		}
	}
}

func TestServerStatsMatchesOracle(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(6, 4, 123).Dedup(true)
	s, _ := newTestServer(t, g, Options{})
	code, _, body := get(t, s, "/stats?x=1")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d body %v", code, body)
	}
	stats := body["stats"].(map[string]any)
	// Oracle triangles on the symmetrized loop-free pattern.
	sg := &generate.Graph{N: g.N, Edges: append([]generate.Edge(nil), g.Edges...)}
	sg.Symmetrize()
	sg = sg.Dedup(true)
	want := refalgo.TriangleCount(refalgo.NewAdjacency(sg))
	if got := int64(stats["triangles"].(float64)); got != want {
		t.Fatalf("triangles: got %d want %d", got, want)
	}
	if got := int(stats["edges"].(float64)); got != len(g.Edges) {
		t.Fatalf("edges: got %d want %d", got, len(g.Edges))
	}
}

func TestServerPPRRanksRestartVertexFirst(t *testing.T) {
	resetCore(t)
	g := generate.Cycle(8)
	s, _ := newTestServer(t, g, Options{})
	code, _, body := get(t, s, "/query/ppr?src=3&k=8")
	if code != http.StatusOK {
		t.Fatalf("ppr: status %d body %v", code, body)
	}
	ranks := body["ranks"].([]any)
	if len(ranks) == 0 {
		t.Fatal("ppr returned no ranks")
	}
	top := ranks[0].(map[string]any)
	if int(top["vertex"].(float64)) != 3 {
		t.Fatalf("ppr top vertex: got %v want restart vertex 3", top["vertex"])
	}
	if body["iterations"].(float64) <= 0 {
		t.Fatal("ppr reported zero iterations")
	}
}

// TestQueryDeadlineCancelsSweeps: a deadline expiring mid-power-iteration
// surfaces as a Canceled-class engine error — the flush checkpoint inside
// the sweep loop saw the expired context and stopped dispatch.
func TestQueryDeadlineCancelsSweeps(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(7, 8, 5).Dedup(true)
	_, eng := newTestServer(t, g, Options{})
	snap, stale, err := eng.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("snapshot: stale=%v err=%v", stale, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// tol < 0 never converges, so only the deadline can end the loop.
	_, _, err = PPRTopK(ctx, snap, 0, 10, 0.85, -1, 1<<30)
	if core.InfoOf(err) != core.Canceled {
		t.Fatalf("deadline mid-iteration: got %v want Canceled-class error", err)
	}
}

// --- degradation ladder ---

func TestIngestBackpressure(t *testing.T) {
	resetCore(t)
	eng, err := NewEngine(Config{N: 32, CompactAfter: 4, ShedDelta: 8})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Jam the compactor: an open breaker skips every compaction attempt, so
	// the delta overlay can only grow.
	for i := 0; i < 3; i++ {
		eng.breaker.Record(errors.New("jammed"))
	}
	if eng.breaker.State() != "open" {
		t.Fatal("breaker must be open")
	}
	s := NewServer(Options{Engine: eng})
	var saw503 bool
	for i := 0; i < 8 && !saw503; i++ {
		b := `{"inserts":[`
		for e := 0; e < 4; e++ {
			if e > 0 {
				b += ","
			}
			b += "[" + itoa((i*4+e)%32) + "," + itoa((i*7+e+1)%32) + ",1]"
		}
		b += `]}`
		code, hdr := post(t, s, "/ingest", b)
		switch code {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			saw503 = true
			if hdr.Get("Retry-After") == "" {
				t.Fatal("backpressure 503 missing Retry-After")
			}
		default:
			t.Fatalf("ingest: unexpected status %d", code)
		}
	}
	if !saw503 {
		t.Fatal("overlay never hit the shed watermark")
	}
}

// TestStaleFallback: when the writer store is poisoned (injected fault on
// the absorb path), pinning fails — the server degrades to the last good
// snapshot and stamps the staleness header instead of failing reads.
func TestStaleFallback(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(5, 4, 7).Dedup(true)
	s, eng := newTestServer(t, g, Options{})
	// Warm the snapshot cache with a healthy read.
	if code, _, _ := get(t, s, "/query/khop?src=0&k=1"); code != http.StatusOK {
		t.Fatalf("warm query failed: %d", code)
	}
	faults.Configure(3, faults.Rule{Site: "Matrix.ApplyUpdateBatch", Kind: faults.OOM, Times: 1})
	defer faults.Disable()
	b := stream.NewBatch[float64]()
	b.Insert(1, 2, 1)
	// The enqueue succeeds; the fault fires when the flush absorbs it.
	if err := eng.Matrix().ApplyUpdateBatch(b); err != nil {
		t.Fatalf("enqueue batch: %v", err)
	}
	code, hdr, _ := get(t, s, "/query/khop?src=0&k=1")
	if code != http.StatusOK {
		t.Fatalf("degraded read: status %d", code)
	}
	if hdr.Get("X-Graphblas-Stale") != "true" {
		t.Fatal("degraded read missing staleness header")
	}
	// Reads never clear the invalid mark — only the writer may, because only
	// it knows which batch the rollback dropped. Its next ingest revalidates
	// the store, re-applies, and fresh reads resume.
	recovered := StoreRecovered.Value()
	b2 := stream.NewBatch[float64]()
	b2.Insert(1, 2, 1)
	if err := eng.Ingest(b2); err != nil {
		t.Fatalf("recovery ingest: %v", err)
	}
	if StoreRecovered.Value() <= recovered {
		t.Fatal("recovery ingest did not revalidate the store")
	}
	code, hdr, _ = get(t, s, "/query/khop?src=1&k=1")
	if code != http.StatusOK || hdr.Get("X-Graphblas-Stale") == "true" {
		t.Fatalf("post-recovery read: status %d, stale=%q", code, hdr.Get("X-Graphblas-Stale"))
	}
}

func TestGracefulDrain(t *testing.T) {
	resetCore(t)
	g := generate.Cycle(8)
	s, _ := newTestServer(t, g, Options{})
	if code, _, _ := get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatal("server not ready before drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code, _, _ := get(t, s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("readyz must fail after drain")
	}
	if code, hdr, _ := get(t, s, "/query/khop?src=0&k=1"); code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining query: got %d, want 503 with Retry-After", code)
	}
	if code, _ := post(t, s, "/ingest", `{"inserts":[[0,1,1]]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest: got %d want 503", code)
	}
	// Health stays truthful while draining: the process is alive.
	if code, _, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz must stay 200 while draining")
	}
}

func TestMetricsEndpointExposesServeCounters(t *testing.T) {
	resetCore(t)
	g := generate.Cycle(8)
	s, _ := newTestServer(t, g, Options{})
	if code, _, _ := get(t, s, "/query/khop?src=0&k=1"); code != http.StatusOK {
		t.Fatal("query failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{"graphblas_serve_requests_total", "graphblas_serve_latency_seconds", "graphblas_flushes_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestLoadGenDeterministicMix(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(6, 4, 11).Dedup(true)
	s, _ := newTestServer(t, g, Options{MaxConcurrent: 4, MaxQueue: 8})
	spec := LoadSpec{
		Seed: 1, Requests: 60, Workers: 3, N: g.N,
		KHopFrac: 0.6, PPRFrac: 0.3, IngestEvery: 10, BatchSize: 4,
	}
	res := RunLoad(s, spec)
	if res.Requests != spec.Requests {
		t.Fatalf("requests: got %d want %d", res.Requests, spec.Requests)
	}
	if res.OK+res.Shed+res.Timeout+res.Errors != res.Requests {
		t.Fatalf("outcome counts do not partition requests: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("no successful responses: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected hard errors: %+v", res)
	}
	if res.P99Ms < res.P50Ms {
		t.Fatalf("percentiles inverted: %+v", res)
	}
}

// --- small helpers ---

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func intsOf(t *testing.T, v any) []int {
	t.Helper()
	raw, ok := v.([]any)
	if !ok {
		if v == nil {
			return nil
		}
		t.Fatalf("expected array, got %T", v)
	}
	out := make([]int, len(raw))
	for i, x := range raw {
		out[i] = int(x.(float64))
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

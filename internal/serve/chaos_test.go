package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

// The chaos harness: injected kernel faults on the query sites plus tight
// request deadlines, concurrent with a writer churning the graph through
// /ingest. The server may shed, time out, retry, degrade, or serve a stale
// epoch — but every 200 it does return must equal the reference oracle's
// answer on SOME acknowledged prefix of the update stream. Degraded but never
// wrong.
//
// Validation is post-hoc: responses are recorded during the run and checked
// against the full acknowledged-prefix history afterwards, so the check races
// with nothing. A 200 computed from any pinned state necessarily corresponds
// to a prefix that is in the history by the time the run ends.

type chaosEdge struct{ i, j int }

// chaosResponse is one recorded 200, tagged with which endpoint produced it.
type chaosResponse struct {
	kind      string // "khop" | "stats"
	src, k    int
	vertices  []int
	edges     int
	triangles int64
}

// chaosState is the model adjacency: the edge set after a prefix of
// acknowledged batches.
type chaosState map[chaosEdge]bool

func (st chaosState) clone() chaosState {
	c := make(chaosState, len(st))
	for e := range st {
		c[e] = true
	}
	return c
}

// oracleGraph converts a model state to the reference adjacency.
func oracleGraph(n int, st chaosState) *refalgo.Adjacency {
	g := &generate.Graph{N: n}
	for e := range st {
		g.Edges = append(g.Edges, generate.Edge{Src: e.i, Dst: e.j, Weight: 1})
	}
	return refalgo.NewAdjacency(g)
}

// oracleKHop is the reference k-hop answer: vertices with BFS level ≤ k.
func oracleKHop(a *refalgo.Adjacency, src, k int) []int {
	levels := refalgo.BFSLevels(a, src)
	var out []int
	for v, l := range levels {
		if l >= 0 && l <= k {
			out = append(out, v)
		}
	}
	return out
}

// oracleStats is the reference (edges, triangles) pair for a model state:
// directed stored-entry count, triangles on the symmetrized loop-free
// pattern — exactly what Snapshot.Sym feeds the engine's triangle kernel.
func oracleStats(n int, st chaosState) (int, int64) {
	g := &generate.Graph{N: n}
	seen := map[chaosEdge]bool{}
	for e := range st {
		if e.i == e.j {
			continue
		}
		for _, d := range []chaosEdge{{e.i, e.j}, {e.j, e.i}} {
			if !seen[d] {
				seen[d] = true
				g.Edges = append(g.Edges, generate.Edge{Src: d.i, Dst: d.j, Weight: 1})
			}
		}
	}
	return len(st), refalgo.TriangleCount(refalgo.NewAdjacency(g))
}

// TestChaosNeverWrong is the fault-injection load run mandated by the serving
// design: concurrent queries with tight deadlines, a writer mutating the
// graph, and a seeded fault plan firing in the query kernels. Outcome
// accounting is free-form (shed/timeout/stale/degraded all legitimate); the
// hard assertion is zero 200 responses that match no acknowledged prefix.
func TestChaosNeverWrong(t *testing.T) {
	resetCore(t)
	prev := core.SetScheduler(core.SchedDag)
	defer core.SetScheduler(prev)

	const (
		n          = 48
		numBatches = 40
		numWorkers = 6
		perWorker  = 50
	)
	eng, err := NewEngine(Config{N: n, CompactAfter: 120, ShedDelta: 2048})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := NewServer(Options{
		Engine:        eng,
		MaxConcurrent: 3,
		MaxQueue:      4,
		RetrySeed:     0xC4A05,
		RetryBase:     200e3, // 200µs
		RetryMax:      2e6,   // 2ms
	})

	// Seed the graph through the front door so history starts consistent.
	history := []chaosState{{}}
	var histMu sync.Mutex
	seedRng := rand.New(rand.NewSource(4242))
	postBatch := func(rng *rand.Rand, inserts, deletes int) bool {
		st := history[len(history)-1].clone()
		var body strings.Builder
		body.WriteString(`{"inserts":[`)
		for e := 0; e < inserts; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if e > 0 {
				body.WriteByte(',')
			}
			fmt.Fprintf(&body, "[%d,%d,1]", i, j)
			st[chaosEdge{i, j}] = true
		}
		body.WriteString(`],"deletes":[`)
		wrote := 0
		for e := range history[len(history)-1] {
			if wrote >= deletes {
				break
			}
			if rng.Float64() < 0.25 {
				if wrote > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, "[%d,%d]", e.i, e.j)
				delete(st, e)
				wrote++
			}
		}
		body.WriteString(`]}`)
		req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body.String()))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return false
		}
		histMu.Lock()
		history = append(history, st)
		histMu.Unlock()
		return true
	}
	if !postBatch(seedRng, 3*n, 0) {
		t.Fatal("seed ingest failed")
	}

	// The fault plan fires only in query kernels: writer absorbs and
	// compactions keep their own failure modes (deadline abandonment), which
	// the at-least-once ingest path already covers. Seeded, so the injection
	// schedule is reproducible.
	faults.Configure(777,
		faults.Rule{Site: "VxM", Kind: faults.KernelErr, Prob: 0.05},
		faults.Rule{Site: "ApplyV", Kind: faults.OOM, Prob: 0.03},
		faults.Rule{Site: "EWiseAddV", Kind: faults.KernelErr, Prob: 0.02},
		faults.Rule{Site: "MxM", Kind: faults.OOM, Prob: 0.02},
	)
	defer faults.Disable()

	var (
		respMu    sync.Mutex
		responses []chaosResponse
		status    = map[int]int{}
	)
	var wg sync.WaitGroup
	stopWriter := make(chan struct{})
	wg.Add(1)
	go func() { // writer: churn edges while queries fly
		defer wg.Done()
		rng := rand.New(rand.NewSource(9001))
		for b := 0; b < numBatches; b++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			postBatch(rng, 6+rng.Intn(8), 1+rng.Intn(2))
			time.Sleep(500 * time.Microsecond)
		}
	}()

	timeouts := []string{"", "", "", "1ms", "3ms", "500us"}
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(31 + int64(worker)*101))
			for q := 0; q < perWorker; q++ {
				src := rng.Intn(n)
				k := 1 + rng.Intn(3)
				url := fmt.Sprintf("/query/khop?src=%d&k=%d", src, k)
				kind := "khop"
				if rng.Float64() < 0.15 {
					url, kind = "/stats?x=1", "stats"
				}
				if to := timeouts[rng.Intn(len(timeouts))]; to != "" {
					url += "&timeout=" + to
				}
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)

				respMu.Lock()
				status[rec.Code]++
				respMu.Unlock()
				if rec.Code != http.StatusOK {
					continue
				}
				switch kind {
				case "khop":
					var out struct {
						Vertices []int `json:"vertices"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("khop 200 with unparsable body: %v", err)
						continue
					}
					respMu.Lock()
					responses = append(responses, chaosResponse{kind: kind, src: src, k: k, vertices: out.Vertices})
					respMu.Unlock()
				case "stats":
					var out struct {
						Stats GraphStats `json:"stats"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("stats 200 with unparsable body: %v", err)
						continue
					}
					respMu.Lock()
					responses = append(responses, chaosResponse{kind: kind, edges: out.Stats.Edges, triangles: out.Stats.Triangles})
					respMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopWriter)
	faults.Disable()

	// Post-hoc oracle check: every 200 must match SOME acknowledged prefix.
	adjCache := make([]*refalgo.Adjacency, len(history))
	adjOf := func(p int) *refalgo.Adjacency {
		if adjCache[p] == nil {
			adjCache[p] = oracleGraph(n, history[p])
		}
		return adjCache[p]
	}
	violations := 0
	for _, r := range responses {
		ok := false
		for p := range history {
			switch r.kind {
			case "khop":
				if equalInts(r.vertices, oracleKHop(adjOf(p), r.src, r.k)) {
					ok = true
				}
			case "stats":
				edges, tri := oracleStats(n, history[p])
				if r.edges == edges && r.triangles == tri {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			violations++
			t.Errorf("200 response matches no acknowledged prefix: %+v", r)
		}
	}
	if violations > 0 {
		t.Fatalf("chaos run produced %d incorrect 200 responses", violations)
	}

	// The server must come back clean once the chaos stops: a fresh write
	// recovers any poisoned store and the next read is exact and current.
	if !postBatch(seedRng, 4, 0) {
		t.Fatal("post-chaos ingest failed")
	}
	final := history[len(history)-1]
	req := httptest.NewRequest(http.MethodGet, "/query/khop?src=0&k=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-chaos query: status %d", rec.Code)
	}
	if rec.Header().Get("X-Graphblas-Stale") == "true" {
		t.Fatal("post-chaos query still stale")
	}
	var out struct {
		Vertices []int `json:"vertices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("post-chaos body: %v", err)
	}
	if want := oracleKHop(oracleGraph(n, final), 0, 2); !equalInts(out.Vertices, want) {
		t.Fatalf("post-chaos khop diverged from final state: got %v want %v", out.Vertices, want)
	}

	t.Logf("chaos: %d recorded 200s over %d acknowledged prefixes; status counts %v; stale=%d retried=%d shed=%d recovered=%d breakerOpens=%d",
		len(responses), len(history), status,
		int(StaleServed.Value()), int(Retried.Value()), int(Shed.Value()),
		int(StoreRecovered.Value()), int(BreakerOpens.Value()))
}

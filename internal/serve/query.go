package serve

import (
	"context"
	"math"
	"sort"

	"graphblas/internal/algorithms"
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// The query routines run against an immutable Snapshot and thread the
// request context through every flush: each frontier expansion / power-
// iteration sweep ends in WaitContext(ctx), so an expired deadline stops the
// DAG scheduler from dispatching further kernels instead of letting the
// request burn engine time it can no longer use. Cancellation surfaces as a
// Canceled-class error, which the retry layer classifies as transient.

// KHop returns every vertex reachable from src within at most k hops
// (including src), ascending. It is the BFS frontier loop of the paper's
// Figure 3 with a hop budget: frontier ← frontierᵀA per sweep, reached mass
// accumulated across sweeps.
func KHop(ctx context.Context, snap *Snapshot, src, k int) ([]int, error) {
	n := snap.N
	frontier, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := frontier.SetElement(1, src); err != nil {
		return nil, err
	}
	visited, err := core.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	if err := visited.SetElement(1, src); err != nil {
		return nil, err
	}
	one := builtins.One[float64]()
	first := builtins.First[float64]()
	plusTimes := builtins.PlusTimes[float64]()
	for hop := 0; hop < k; hop++ {
		// Non-opaque reads inside the loop force flushes with no context of
		// their own, so the deadline is also checked explicitly per hop.
		if ctx != nil && ctx.Err() != nil {
			return nil, errCanceledBefore(ctx)
		}
		next, err := core.NewVector[float64](n)
		if err != nil {
			return nil, err
		}
		if err := core.VxM(next, core.NoMaskV, core.NoAccum[float64](), plusTimes, frontier, snap.Mat, nil); err != nil {
			return nil, err
		}
		// Clamp accumulated path counts back to presence so weights and path
		// multiplicity never overflow the structural question being asked.
		if err := core.ApplyV(next, core.NoMaskV, core.NoAccum[float64](), one, next, core.Desc().ReplaceOutput()); err != nil {
			return nil, err
		}
		if err := core.EWiseAddV(visited, core.NoMaskV, core.NoAccum[float64](), first, visited, next, nil); err != nil {
			return nil, err
		}
		if err := core.WaitContext(ctx); err != nil {
			return nil, err
		}
		frontier = next
		nv, err := frontier.NVals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			break
		}
	}
	idx, _, err := visited.ExtractTuples()
	if err != nil {
		return nil, err
	}
	sort.Ints(idx)
	return idx, nil
}

// Ranked is one entry of a top-k ranking.
type Ranked struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// PPRTopK runs personalized PageRank with restart vertex src and returns the
// k highest-ranked vertices. maxIter bounds the power iteration; the
// degradation ladder passes a reduced bound under load, trading rank
// precision for latency. The achieved sweep count is returned so responses
// can report how degraded they are.
func PPRTopK(ctx context.Context, snap *Snapshot, src, k int, damping, tol float64, maxIter int) ([]Ranked, int, error) {
	n := snap.N
	// Out-degrees of the snapshot, as ⟨+,0⟩ counts over the pattern.
	ones, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return nil, 0, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[float64](), builtins.One[float64](), snap.Mat, nil); err != nil {
		return nil, 0, err
	}
	outdeg, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	if err := core.ReduceMatrixToVector(outdeg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, 0, err
	}

	rank, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	if err := rank.SetElement(1, src); err != nil {
		return nil, 0, err
	}

	plusTimes := builtins.PlusTimes[float64]()
	plusMonoid := builtins.PlusMonoid[float64]()
	div := builtins.Div[float64]()
	damp := core.UnaryOp[float64, float64]{Name: "damp", F: func(x float64) float64 { return damping * x }}
	absdiff := core.BinaryOp[float64, float64, float64]{Name: "absdiff", F: func(x, y float64) float64 { return math.Abs(x - y) }}

	share, err := core.NewVector[float64](n)
	if err != nil {
		return nil, 0, err
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		// The scalar reductions below force flushes without a context, so
		// the deadline is also checked explicitly at each sweep boundary.
		if ctx != nil && ctx.Err() != nil {
			return nil, iters, errCanceledBefore(ctx)
		}
		// share = rank ./ outdeg; intersection drops dangling vertices.
		if err := core.EWiseMultV(share, core.NoMaskV, core.NoAccum[float64](), div, rank, outdeg, core.Desc().ReplaceOutput()); err != nil {
			return nil, 0, err
		}
		// Dangling and restart mass both return to src in the personalized
		// formulation: next = (1-d)·e_src + d·dangling·e_src + d·shareᵀA.
		total, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, rank)
		if err != nil {
			return nil, 0, err
		}
		withEdges, err := core.NewVector[float64](n)
		if err != nil {
			return nil, 0, err
		}
		if err := core.EWiseMultV(withEdges, core.NoMaskV, core.NoAccum[float64](), builtins.First[float64](), rank, outdeg, nil); err != nil {
			return nil, 0, err
		}
		linked, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, withEdges)
		if err != nil {
			return nil, 0, err
		}
		dangling := total - linked

		next, err := core.NewVector[float64](n)
		if err != nil {
			return nil, 0, err
		}
		if err := core.VxM(next, core.NoMaskV, core.NoAccum[float64](), plusTimes, share, snap.Mat, nil); err != nil {
			return nil, 0, err
		}
		if err := core.ApplyV(next, core.NoMaskV, core.NoAccum[float64](), damp, next, nil); err != nil {
			return nil, 0, err
		}
		restart := (1 - damping) + damping*dangling
		if err := core.AssignVectorScalar(next, core.NoMaskV, builtins.Plus[float64](), restart, []int{src}, nil); err != nil {
			return nil, 0, err
		}

		diffV, err := core.NewVector[float64](n)
		if err != nil {
			return nil, 0, err
		}
		if err := core.EWiseAddV(diffV, core.NoMaskV, core.NoAccum[float64](), absdiff, next, rank, nil); err != nil {
			return nil, 0, err
		}
		diff, err := core.ReduceVectorToScalar(0, core.NoAccum[float64](), plusMonoid, diffV)
		if err != nil {
			return nil, 0, err
		}
		rank = next
		// One flush checkpoint per sweep: the deadline is consulted between
		// sweeps, never mid-kernel.
		if err := core.WaitContext(ctx); err != nil {
			return nil, 0, err
		}
		if diff < tol {
			iters++
			break
		}
	}

	idx, vals, err := rank.ExtractTuples()
	if err != nil {
		return nil, 0, err
	}
	ranked := make([]Ranked, len(idx))
	for i := range idx {
		ranked[i] = Ranked{Vertex: idx[i], Score: vals[i]}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Vertex < ranked[j].Vertex
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, iters, nil
}

// GraphStats summarizes the structure of one snapshot.
type GraphStats struct {
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	Triangles  int64   `json:"triangles"`
	Clustering float64 `json:"clustering"`
}

// Stats computes triangle and clustering statistics on the snapshot's
// symmetrized pattern. The triangle kernel is one masked MxM — cancellation
// is coarse here (checked before and at the closing flush), matching the C
// API's rule that a method already executing runs to completion.
func Stats(ctx context.Context, snap *Snapshot) (GraphStats, error) {
	st := GraphStats{Nodes: snap.N, Edges: snap.NVals}
	if ctx != nil && ctx.Err() != nil {
		return st, errCanceledBefore(ctx)
	}
	sym, err := snap.Sym(ctx)
	if err != nil {
		return st, err
	}
	tri, err := algorithms.TriangleCount(sym)
	if err != nil {
		return st, err
	}
	st.Triangles = tri
	// Wedges from undirected degrees: lift the pattern to ones, reduce rows.
	n := snap.N
	lifted, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return st, err
	}
	if err := core.ApplyM(lifted, core.NoMask, core.NoAccum[float64](), builtins.CastBoolTo[float64](), sym, nil); err != nil {
		return st, err
	}
	deg, err := core.NewVector[float64](n)
	if err != nil {
		return st, err
	}
	if err := core.ReduceMatrixToVector(deg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), lifted, nil); err != nil {
		return st, err
	}
	if err := core.WaitContext(ctx); err != nil {
		return st, err
	}
	_, degs, err := deg.ExtractTuples()
	if err != nil {
		return st, err
	}
	var wedges float64
	for _, d := range degs {
		wedges += d * (d - 1) / 2
	}
	if wedges > 0 {
		st.Clustering = 3 * float64(tri) / wedges
	}
	return st, nil
}

// errCanceledBefore wraps a pre-execution context error in the engine's
// Canceled class so the retry layer treats it uniformly.
func errCanceledBefore(ctx context.Context) error {
	return &core.Error{Info: core.Canceled, Op: "serve.query", Msg: ctx.Err().Error()}
}

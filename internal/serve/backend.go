package serve

import (
	"context"

	"graphblas/internal/core"
	"graphblas/internal/stream"
)

// Backend is the graph store behind the HTTP layer. Two implementations
// exist: the single-engine path (NewEngineBackend, wrapping *Engine) and the
// horizontally sharded path (NewShardedBackend, wrapping a *shard.Store whose
// every shard owns an independent engine instance). The handler spine —
// admission, deadlines, retries, degradation — is backend-agnostic: a sharded
// deployment inherits the whole resilience ladder, with the scatter-gather
// fan-out hidden behind View.
type Backend interface {
	// View pins one consistent read view. The bool reports staleness — the
	// backend degraded to its last good view instead of failing.
	View(ctx context.Context) (View, bool, error)
	// Ingest applies one sealed update batch atomically (all-shards-or-none
	// on the sharded path).
	Ingest(b *stream.Batch[float64]) error
	// N is the vertex-space dimension.
	N() int
	// Shards is the partition width (1 for the single-engine path) — the
	// fan-out stamped on request spans.
	Shards() int
	// Health reports backend-specific liveness fields for /healthz.
	Health() map[string]any
	// Drain flushes pending engine work at shutdown.
	Drain(ctx context.Context) error
}

// View is one pinned, immutable read view: every query a request can ask,
// answered at a single epoch. The single-engine view is *Snapshot; the
// sharded view composes per-shard pinned epochs at one acknowledged version.
type View interface {
	// Epoch is the consistency token responses carry in X-Graphblas-Epoch.
	Epoch() uint64
	KHop(ctx context.Context, src, k int) ([]int, error)
	PPRTopK(ctx context.Context, src, k int, damping, tol float64, maxIter int) ([]Ranked, int, error)
	Stats(ctx context.Context) (GraphStats, error)
	Degree(ctx context.Context, v int) (int, error)
}

// Epoch implements View: the pinned epoch is the single-engine token.
func (s *Snapshot) Epoch() uint64 { return s.EpochID }

// KHop implements View.
func (s *Snapshot) KHop(ctx context.Context, src, k int) ([]int, error) {
	return KHop(ctx, s, src, k)
}

// PPRTopK implements View.
func (s *Snapshot) PPRTopK(ctx context.Context, src, k int, damping, tol float64, maxIter int) ([]Ranked, int, error) {
	return PPRTopK(ctx, s, src, k, damping, tol, maxIter)
}

// Stats implements View.
func (s *Snapshot) Stats(ctx context.Context) (GraphStats, error) {
	return Stats(ctx, s)
}

// Degree implements View: vertex v's out-degree at the pinned epoch,
// gathered once per snapshot from the stored pattern.
func (s *Snapshot) Degree(ctx context.Context, v int) (int, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, errCanceledBefore(ctx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deg == nil {
		rows, _, _, err := s.Mat.ExtractTuples()
		if err != nil {
			return 0, err
		}
		deg := make([]int, s.N)
		for _, r := range rows {
			deg[r]++
		}
		s.deg = deg
	}
	return s.deg[v], nil
}

// engineBackend adapts the single-engine store to the Backend interface.
type engineBackend struct {
	eng *Engine
}

// NewEngineBackend wraps an Engine as a serving backend.
func NewEngineBackend(eng *Engine) Backend { return engineBackend{eng: eng} }

func (b engineBackend) View(ctx context.Context) (View, bool, error) {
	snap, stale, err := b.eng.Snapshot(ctx)
	if snap == nil {
		return nil, false, err
	}
	return snap, stale, err
}

func (b engineBackend) Ingest(batch *stream.Batch[float64]) error { return b.eng.Ingest(batch) }

func (b engineBackend) N() int { return b.eng.cfg.N }

func (b engineBackend) Shards() int { return 1 }

func (b engineBackend) Health() map[string]any {
	//grblint:ignore swallowederr liveness must answer even over a poisoned store; zero values are the honest degraded report
	epoch, _ := b.eng.Matrix().EpochID()
	//grblint:ignore swallowederr liveness must answer even over a poisoned store; zero values are the honest degraded report
	delta, _ := b.eng.Matrix().DeltaNVals()
	return map[string]any{
		"backend": "engine",
		"breaker": b.eng.Breaker().State(),
		"epoch":   epoch,
		"delta":   delta,
	}
}

func (b engineBackend) Drain(ctx context.Context) error { return core.WaitContext(ctx) }

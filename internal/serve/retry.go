package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"graphblas/internal/core"
)

// IsTransient classifies an engine error as worth retrying. The taxonomy
// follows the engine's own recovery model: execution-class failures leave the
// output invalid but the system healthy — a fresh attempt against fresh
// output objects can succeed — while API-class errors (dimension mismatch,
// bad index, …) are deterministic and retrying them only burns the deadline.
//
//   - Canceled: a shared-queue flush was abandoned by some request's
//     deadline; the abandoned work may belong to a different request than
//     the one that timed out, so retrying is the designed recovery.
//   - InvalidObject: an input was poisoned by a concurrent failure; rebuilt
//     inputs on the next attempt are clean.
//   - OutOfMemory / Panic: the engine rolled the output back to its prior
//     committed state (PR 2's fault model); transient by construction.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	switch core.InfoOf(err) {
	case core.Canceled, core.InvalidObject, core.OutOfMemory, core.PanicInfo:
		return true
	}
	return false
}

// Retrier re-runs transient-failing work with jittered exponential backoff.
// The jitter source is seeded, so a load test replays the same backoff
// schedule run to run.
type Retrier struct {
	Attempts int           // total tries, including the first
	Base     time.Duration // first backoff; doubles per retry
	Max      time.Duration // backoff ceiling

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a Retrier drawing jitter from the given seed.
func NewRetrier(seed uint64, attempts int, base, max time.Duration) *Retrier {
	if attempts < 1 {
		attempts = 1
	}
	return &Retrier{
		Attempts: attempts,
		Base:     base,
		Max:      max,
		rng:      rand.New(rand.NewSource(int64(seed))),
	}
}

// backoff draws the sleep before retry number n (1-based): the exponential
// step, halved plus a uniform random half ("equal jitter"), so synchronized
// retriers decorrelate without ever sleeping less than half the step.
func (r *Retrier) backoff(n int) time.Duration {
	d := r.Base << uint(n-1)
	if d > r.Max || d <= 0 {
		d = r.Max
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// Do runs f until it succeeds, fails permanently, or the attempt budget or
// ctx is exhausted. It returns the number of attempts made and the last
// error. Work canceled because the caller's own deadline expired is not
// retried — there is no budget left to retry into.
func (r *Retrier) Do(ctx context.Context, f func(context.Context) error) (int, error) {
	var err error
	for attempt := 1; ; attempt++ {
		err = f(ctx)
		if err == nil || !IsTransient(err) || attempt >= r.Attempts {
			return attempt, err
		}
		if ctx != nil && ctx.Err() != nil {
			return attempt, err
		}
		Retried.Inc()
		select {
		case <-time.After(r.backoff(attempt)):
		case <-ctxDone(ctx):
			return attempt, err
		}
	}
}

// ctxDone tolerates a nil context (background work with no deadline).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Package serve is the fault-tolerant graph query server built over the
// GraphBLAS engine: HTTP endpoints for k-hop neighborhoods, personalized-
// PageRank rankings, and triangle/clustering statistics against a live
// streaming graph, with the resilience machinery production serving needs —
// per-request deadlines threaded into the engine's flush scheduler
// (WaitContext), admission control with load shedding, seeded-jitter retries
// of transient engine failures, a circuit breaker around compaction, and a
// graceful-degradation ladder (full answer → capped iterations → last pinned
// epoch with a staleness header → 503) that keeps responses correct-or-
// refused, never wrong.
//
// The degradation ladder, top to bottom:
//
//  1. admission — over the queue watermark or draining: 503 + Retry-After.
//  2. deadline  — the request deadline rides core.WaitContext into the DAG
//     scheduler; an expired deadline stops kernel dispatch, and undispatched
//     work is abandoned as Canceled.
//  3. retry     — Canceled/InvalidObject/OOM/Panic results are transient
//     (the engine rolls outputs back); jittered exponential backoff.
//  4. degrade   — under queue pressure PPR runs with a capped iteration
//     budget (X-Graphblas-Degraded); when a fresh epoch cannot be pinned the
//     last good snapshot is served (X-Graphblas-Stale).
//
// Every successful response names the epoch it was computed from, so a
// client — and the chaos harness — can hold the server to snapshot
// consistency: each answer reflects one atomic prefix of the update stream.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"graphblas/internal/core"
	"graphblas/internal/obs"
	"graphblas/internal/stream"
)

// Options configures a Server. Zero values get serving-sensible defaults.
type Options struct {
	// Engine is the single-engine store; it is wrapped in NewEngineBackend
	// when Backend is nil.
	Engine *Engine
	// Backend, when set, overrides Engine — the sharded path passes
	// NewShardedBackend here and the whole resilience ladder applies
	// unchanged to scatter-gather execution.
	Backend Backend

	// MaxConcurrent bounds simultaneously executing requests (default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting behind them before shedding
	// (default 2×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the client sends none
	// (default 2s). Clients may lower it with ?timeout=150ms.
	DefaultTimeout time.Duration

	// RetrySeed seeds backoff jitter; RetryAttempts (default 3) bounds tries.
	RetrySeed     uint64
	RetryAttempts int
	RetryBase     time.Duration // default 2ms
	RetryMax      time.Duration // default 50ms

	// PPRMaxIter is the full-quality power-iteration budget (default 50);
	// PPRDegradedIter the capped budget under load (default 8).
	PPRMaxIter      int
	PPRDegradedIter int
	// DegradePressure is the admission-queue fraction above which quality is
	// reduced (default 0.5).
	DegradePressure float64
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxConcurrent
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Second
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 50 * time.Millisecond
	}
	if o.PPRMaxIter <= 0 {
		o.PPRMaxIter = 50
	}
	if o.PPRDegradedIter <= 0 {
		o.PPRDegradedIter = 8
	}
	if o.DegradePressure <= 0 {
		o.DegradePressure = 0.5
	}
	return o
}

// Server is the HTTP query server. Create with NewServer; it implements
// http.Handler.
type Server struct {
	opt     Options
	be      Backend
	adm     *Admission
	retrier *Retrier
	mux     *http.ServeMux
	ready   atomic.Bool
}

// NewServer assembles the server around a Backend (or an Engine, wrapped as
// the single-engine backend).
func NewServer(opt Options) *Server {
	opt = opt.withDefaults()
	be := opt.Backend
	if be == nil {
		be = NewEngineBackend(opt.Engine)
	}
	s := &Server{
		opt:     opt,
		be:      be,
		adm:     NewAdmission(opt.MaxConcurrent, opt.MaxQueue),
		retrier: NewRetrier(opt.RetrySeed, opt.RetryAttempts, opt.RetryBase, opt.RetryMax),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/query/khop", s.handleKHop)
	s.mux.HandleFunc("/query/ppr", s.handlePPR)
	s.mux.HandleFunc("/query/degree", s.handleDegree)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.ready.Store(true)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: readiness flips false (load balancers stop
// routing), no new requests are admitted, and the call blocks until in-
// flight requests finish or ctx expires. The engine's pending work is then
// flushed so nothing accepted is lost.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.adm.Close()
	if err := s.adm.Drain(ctx); err != nil {
		return err
	}
	return s.be.Drain(ctx)
}

// writeJSON emits one JSON response and feeds the status metrics.
func writeJSON(w http.ResponseWriter, route string, code int, v any) {
	Requests.With(route).Inc()
	Statuses.With(fmt.Sprintf("%dxx", code/100)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//grblint:ignore swallowederr the status line is already sent; a failed body write has no channel left to report on
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// unavailable emits 503 with a Retry-After hint — the shed/drain/throttle
// answer that tells a well-behaved client to back off briefly.
func unavailable(w http.ResponseWriter, route string, msg string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, route, http.StatusServiceUnavailable, errorBody{Error: msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":   "ok",
		"inflight": s.adm.InflightCount(),
		"queued":   s.adm.QueueDepth(),
	}
	for k, v := range s.be.Health() {
		body[k] = v
	}
	writeJSON(w, "healthz", http.StatusOK, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		unavailable(w, "readyz", "draining")
		return
	}
	writeJSON(w, "readyz", http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	Requests.With("metrics").Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	//grblint:ignore swallowederr scrape responses are best-effort; a broken client connection is not a server fault
	_ = obs.WriteText(w)
}

// requestContext derives the per-request deadline: the client's ?timeout=
// override if present (capped at the server default), else the default.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.opt.DefaultTimeout
	if t := r.URL.Query().Get("timeout"); t != "" {
		if td, err := time.ParseDuration(t); err == nil && td > 0 && td < d {
			d = td
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// intParam parses one required non-negative integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("parameter %q must be a non-negative integer", name)
	}
	return v, nil
}

// runQuery is the shared admission → deadline → retry → respond spine of the
// query endpoints. fn runs under the request context against a pinned view
// and returns the response payload; degraded reports whether the ladder
// reduced quality before fn ran. Each request gets an obs span — endpoint as
// the op, backend fan-out, and the outcome the ladder settled on — costing
// nothing when no tracer is registered (Begin returns nil, every setter is
// nil-safe).
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, route string,
	fn func(ctx context.Context, v View, degraded bool) (any, error)) {

	start := time.Now()
	defer func() { Latency.With(route).Observe(time.Since(start).Seconds()) }()

	sp := obs.Begin("serve." + route)
	sp.NoteFanout(s.be.Shards())
	defer obs.Emit(sp)

	ctx, cancel := s.requestContext(r)
	defer cancel()

	release, err := s.adm.Acquire(ctx)
	if err != nil {
		sp.Finish(obs.OutcomeShortCircuit, err)
		switch {
		case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
			unavailable(w, route, err.Error())
		default: // deadline expired while queued: the server was too busy
			unavailable(w, route, "deadline expired in admission queue")
		}
		return
	}
	defer release()
	sp.MarkScheduled()

	degraded := s.adm.Pressure() >= s.opt.DegradePressure
	if degraded {
		DegradedServed.Inc()
	}

	var payload any
	var stale bool
	var epoch uint64
	sp.MarkKernel()
	attempts, err := s.retrier.Do(ctx, func(ctx context.Context) error {
		v, st, serr := s.be.View(ctx)
		if serr != nil {
			return serr
		}
		out, qerr := fn(ctx, v, degraded)
		if qerr != nil {
			return qerr
		}
		payload, stale, epoch = out, st, v.Epoch()
		return nil
	})
	if attempts > 1 {
		w.Header().Set("X-Graphblas-Attempts", strconv.Itoa(attempts))
		sp.NoteRetry()
	}
	if err != nil {
		if core.InfoOf(err) == core.Canceled || errors.Is(err, context.DeadlineExceeded) {
			sp.Finish(obs.OutcomeCanceled, err)
			writeJSON(w, route, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
			return
		}
		sp.Finish(obs.OutcomeError, err)
		writeJSON(w, route, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	sp.Finish(obs.OutcomeOK, nil)
	w.Header().Set("X-Graphblas-Epoch", strconv.FormatUint(epoch, 10))
	if stale {
		w.Header().Set("X-Graphblas-Stale", "true")
	}
	if degraded {
		w.Header().Set("X-Graphblas-Degraded", "true")
	}
	writeJSON(w, route, http.StatusOK, payload)
}

func (s *Server) handleKHop(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src", -1)
	if err != nil {
		writeJSON(w, "khop", http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	k, err := intParam(r, "k", 2)
	if err != nil {
		writeJSON(w, "khop", http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if src >= s.be.N() {
		writeJSON(w, "khop", http.StatusBadRequest, errorBody{Error: "src out of range"})
		return
	}
	s.runQuery(w, r, "khop", func(ctx context.Context, v View, _ bool) (any, error) {
		verts, err := v.KHop(ctx, src, k)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"source": src, "k": k, "epoch": v.Epoch(),
			"count": len(verts), "vertices": verts,
		}, nil
	})
}

func (s *Server) handleDegree(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "v", -1)
	if err != nil {
		writeJSON(w, "degree", http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if src >= s.be.N() {
		writeJSON(w, "degree", http.StatusBadRequest, errorBody{Error: "v out of range"})
		return
	}
	s.runQuery(w, r, "degree", func(ctx context.Context, v View, _ bool) (any, error) {
		deg, err := v.Degree(ctx, src)
		if err != nil {
			return nil, err
		}
		return map[string]any{"vertex": src, "epoch": v.Epoch(), "degree": deg}, nil
	})
}

func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src", -1)
	if err != nil {
		writeJSON(w, "ppr", http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeJSON(w, "ppr", http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if src >= s.be.N() {
		writeJSON(w, "ppr", http.StatusBadRequest, errorBody{Error: "src out of range"})
		return
	}
	s.runQuery(w, r, "ppr", func(ctx context.Context, v View, degraded bool) (any, error) {
		maxIter := s.opt.PPRMaxIter
		if degraded {
			maxIter = s.opt.PPRDegradedIter
		}
		ranks, iters, err := v.PPRTopK(ctx, src, k, 0.85, 1e-6, maxIter)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"source": src, "k": k, "epoch": v.Epoch(),
			"iterations": iters, "degraded": degraded, "ranks": ranks,
		}, nil
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.runQuery(w, r, "stats", func(ctx context.Context, v View, _ bool) (any, error) {
		st, err := v.Stats(ctx)
		if err != nil {
			return nil, err
		}
		return map[string]any{"epoch": v.Epoch(), "stats": st}, nil
	})
}

// ingestBody is the wire form of one update batch.
type ingestBody struct {
	// Inserts are [i, j, weight] triples (weight defaults to 1 when the
	// inner array has two elements).
	Inserts [][]float64 `json:"inserts"`
	// Deletes are [i, j] pairs.
	Deletes [][]int `json:"deletes"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, "ingest", http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	if !s.ready.Load() {
		unavailable(w, "ingest", "draining")
		return
	}
	sp := obs.Begin("serve.ingest")
	sp.NoteFanout(s.be.Shards())
	defer obs.Emit(sp)
	var body ingestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		sp.Finish(obs.OutcomeShortCircuit, err)
		writeJSON(w, "ingest", http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return
	}
	n := s.be.N()
	b := stream.NewBatch[float64]()
	for _, ins := range body.Inserts {
		if len(ins) < 2 {
			writeJSON(w, "ingest", http.StatusBadRequest, errorBody{Error: "insert needs [i, j] or [i, j, w]"})
			return
		}
		i, j := int(ins[0]), int(ins[1])
		if i < 0 || j < 0 || i >= n || j >= n {
			writeJSON(w, "ingest", http.StatusBadRequest, errorBody{Error: "insert index out of range"})
			return
		}
		wgt := 1.0
		if len(ins) > 2 {
			wgt = ins[2]
		}
		b.Insert(i, j, wgt)
	}
	for _, del := range body.Deletes {
		if len(del) != 2 || del[0] < 0 || del[1] < 0 || del[0] >= n || del[1] >= n {
			writeJSON(w, "ingest", http.StatusBadRequest, errorBody{Error: "delete needs in-range [i, j]"})
			return
		}
		b.Delete(del[0], del[1])
	}
	sp.MarkKernel()
	if err := s.be.Ingest(b); err != nil {
		if errors.Is(err, ErrBackpressure) {
			sp.Finish(obs.OutcomeShortCircuit, err)
			unavailable(w, "ingest", err.Error())
			return
		}
		sp.Finish(obs.OutcomeError, err)
		if errors.Is(err, ErrIndeterminate) {
			// The batch is partially applied and converging via redo: it may
			// surface in a later epoch despite the failure status, so the
			// client must not model it as never-happened.
			w.Header().Set("X-Graphblas-Indeterminate", "true")
		}
		writeJSON(w, "ingest", http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	sp.Finish(obs.OutcomeOK, nil)
	writeJSON(w, "ingest", http.StatusOK, map[string]int{"applied": b.Len()})
}

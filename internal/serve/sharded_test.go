package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

// newShardedServer builds a server over a row-partitioned store preloaded
// with the graph's edges.
func newShardedServer(t *testing.T, g *generate.Graph, shards int, opt Options) (*Server, *shard.Store) {
	t.Helper()
	st, err := shard.NewStore(shard.Config{N: g.N, Shards: shards})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	b := stream.NewBatch[float64]()
	for _, e := range g.Edges {
		b.Insert(e.Src, e.Dst, 1)
	}
	if err := st.Ingest(b); err != nil {
		t.Fatalf("sharded ingest: %v", err)
	}
	opt.Backend = NewShardedBackend(st)
	return NewServer(opt), st
}

// TestShardedServerMatchesSingleEngine: the same endpoints over the same
// graph answer identically whether the backend is one engine or four — the
// HTTP-level differential for the whole scatter-gather stack.
func TestShardedServerMatchesSingleEngine(t *testing.T) {
	resetCore(t)
	g := generate.RMAT(6, 8, 11).Dedup(true)
	single, _ := newTestServer(t, g, Options{})
	sharded, _ := newShardedServer(t, g, 4, Options{})

	for _, url := range []string{
		"/query/khop?src=0&k=2",
		"/query/khop?src=5&k=3",
		"/query/degree?v=0",
		"/query/degree?v=7",
		"/stats?x=1",
	} {
		c1, _, b1 := get(t, single, url)
		c2, h2, b2 := get(t, sharded, url)
		if c1 != http.StatusOK || c2 != http.StatusOK {
			t.Fatalf("%s: single %d, sharded %d", url, c1, c2)
		}
		// Epoch tokens are backend-specific; everything else must agree.
		delete(b1, "epoch")
		delete(b2, "epoch")
		j1, _ := json.Marshal(b1)
		j2, _ := json.Marshal(b2)
		if string(j1) != string(j2) {
			t.Errorf("%s diverged:\n  single:  %s\n  sharded: %s", url, j1, j2)
		}
		if h2.Get("X-Graphblas-Epoch") == "" {
			t.Errorf("%s: sharded response missing epoch header", url)
		}
	}

	// PPR: same iteration count and scores to 1e-9 (cross-shard float
	// regrouping only).
	c1, _, p1 := get(t, single, "/query/ppr?src=0&k=10")
	c2, _, p2 := get(t, sharded, "/query/ppr?src=0&k=10")
	if c1 != http.StatusOK || c2 != http.StatusOK {
		t.Fatalf("ppr: single %d, sharded %d", c1, c2)
	}
	if p1["iterations"] != p2["iterations"] {
		t.Fatalf("ppr sweeps diverged: single %v, sharded %v", p1["iterations"], p2["iterations"])
	}
	r1 := p1["ranks"].([]any)
	r2 := p2["ranks"].([]any)
	if len(r1) != len(r2) {
		t.Fatalf("ppr rank counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		e1 := r1[i].(map[string]any)
		e2 := r2[i].(map[string]any)
		if e1["vertex"] != e2["vertex"] {
			t.Fatalf("ppr rank %d vertex diverged: %v vs %v", i, e1["vertex"], e2["vertex"])
		}
		d := e1["score"].(float64) - e2["score"].(float64)
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("ppr rank %d score diverged beyond 1e-9: %v vs %v", i, e1["score"], e2["score"])
		}
	}

	// Sharded health reports the partition.
	_, _, hz := get(t, sharded, "/healthz")
	if hz["backend"] != "sharded" {
		t.Fatalf("healthz backend = %v", hz["backend"])
	}
	if shardsAny, ok := hz["shards"].([]any); !ok || len(shardsAny) != 4 {
		t.Fatalf("healthz shards = %v, want 4 entries", hz["shards"])
	}
}

// TestShardedIngestRoundTrip: writes through the sharded /ingest land in
// subsequent reads, and the epoch token advances.
func TestShardedIngestRoundTrip(t *testing.T) {
	resetCore(t)
	g := &generate.Graph{N: 32}
	s, _ := newShardedServer(t, g, 4, Options{})

	code, _ := post(t, s, "/ingest", `{"inserts":[[0,1,1],[1,2,1],[31,3,1]]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	code, h, body := get(t, s, "/query/khop?src=0&k=2")
	if code != http.StatusOK {
		t.Fatalf("khop: %d", code)
	}
	if body["count"].(float64) != 3 {
		t.Fatalf("khop count = %v, want 3 (0→1→2)", body["count"])
	}
	ep1 := h.Get("X-Graphblas-Epoch")

	code, _ = post(t, s, "/ingest", `{"deletes":[[0,1]]}`)
	if code != http.StatusOK {
		t.Fatalf("delete ingest: %d", code)
	}
	code, h, body = get(t, s, "/query/khop?src=0&k=2")
	if code != http.StatusOK {
		t.Fatalf("khop after delete: %d", code)
	}
	if body["count"].(float64) != 1 {
		t.Fatalf("khop count after delete = %v, want 1", body["count"])
	}
	if h.Get("X-Graphblas-Epoch") == ep1 {
		t.Fatal("epoch token did not advance across an acknowledged write")
	}
}

// TestShardedIngestIndeterminateHeader: a commit that fails on shards is not
// acknowledged — 500 with X-Graphblas-Indeterminate — and the store recovers
// by redo on the next clean write, after which the batch IS visible: exactly
// the "may appear in a later epoch" contract the header advertises.
func TestShardedIngestIndeterminateHeader(t *testing.T) {
	resetCore(t)
	g := &generate.Graph{N: 16}
	s, st := newShardedServer(t, g, 4, Options{})

	// Every absorb attempt fails: all owning shards exhaust their at-least-
	// once retries, the batch queues for redo.
	faults.Configure(5, faults.Rule{Site: "stream.kernel.absorb", Kind: faults.KernelErr})
	code, h := post(t, s, "/ingest", `{"inserts":[[0,1,1],[15,2,1]]}`)
	faults.Disable()
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted ingest: %d, want 500", code)
	}
	if h.Get("X-Graphblas-Indeterminate") != "true" {
		t.Fatal("unacknowledged partial ingest missing X-Graphblas-Indeterminate")
	}
	if !st.Frozen() {
		t.Fatal("store not frozen after unacknowledged ingest")
	}

	// Next clean write drains the redo queue; both batches become visible.
	code, _ = post(t, s, "/ingest", `{"inserts":[[1,2,1]]}`)
	if code != http.StatusOK {
		t.Fatalf("recovery ingest: %d", code)
	}
	code, _, body := get(t, s, "/query/khop?src=0&k=3")
	if code != http.StatusOK {
		t.Fatalf("post-recovery khop: %d", code)
	}
	if body["count"].(float64) != 3 {
		t.Fatalf("post-recovery khop count = %v, want 3 (redone 0→1 plus 1→2)", body["count"])
	}
}

// TestShardedChaosNeverWrong is the sharded run of the serving chaos gate:
// injected faults in the per-shard query kernels, the scatter-gather
// coordination kernels, and the per-shard absorb path, concurrent with a
// writer churning edges. Indeterminate batches (500 + header) are modeled as
// entered-but-unacknowledged: the store converges to contain them before the
// next acknowledged write, so they extend the prefix history exactly like a
// 200. The hard assertion is unchanged: zero 200 responses that match no
// prefix.
func TestShardedChaosNeverWrong(t *testing.T) {
	resetCore(t)
	prev := core.SetScheduler(core.SchedDag)
	defer core.SetScheduler(prev)

	const (
		n          = 48
		numBatches = 30
		numWorkers = 5
		perWorker  = 40
	)
	g := &generate.Graph{N: n}
	s, _ := newShardedServer(t, g, 4, Options{
		MaxConcurrent: 3,
		MaxQueue:      4,
		RetrySeed:     0x5A4D,
		RetryBase:     200e3, // 200µs
		RetryMax:      2e6,   // 2ms
	})

	history := []chaosState{{}}
	var histMu sync.Mutex
	seedRng := rand.New(rand.NewSource(777))
	// postBatch mirrors the single-engine chaos writer, with one addition:
	// an indeterminate 500 also appends to history (the batch converges in
	// before the next acknowledged write), while clean rejects do not.
	postBatch := func(rng *rand.Rand, inserts, deletes int) bool {
		histMu.Lock()
		st := history[len(history)-1].clone()
		histMu.Unlock()
		var body strings.Builder
		body.WriteString(`{"inserts":[`)
		for e := 0; e < inserts; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if e > 0 {
				body.WriteByte(',')
			}
			fmt.Fprintf(&body, "[%d,%d,1]", i, j)
			st[chaosEdge{i, j}] = true
		}
		body.WriteString(`],"deletes":[`)
		histMu.Lock()
		last := history[len(history)-1]
		histMu.Unlock()
		wrote := 0
		for e := range last {
			if wrote >= deletes {
				break
			}
			if rng.Float64() < 0.25 {
				if wrote > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, "[%d,%d]", e.i, e.j)
				delete(st, e)
				wrote++
			}
		}
		body.WriteString(`]}`)
		req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body.String()))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		entered := rec.Code == http.StatusOK ||
			rec.Header().Get("X-Graphblas-Indeterminate") == "true"
		if !entered {
			return false
		}
		histMu.Lock()
		history = append(history, st)
		histMu.Unlock()
		return rec.Code == http.StatusOK
	}
	if !postBatch(seedRng, 3*n, 0) {
		t.Fatal("seed ingest failed")
	}

	faults.Configure(1313,
		faults.Rule{Site: "VxM", Kind: faults.KernelErr, Prob: 0.04},
		faults.Rule{Site: "ApplyV", Kind: faults.OOM, Prob: 0.02},
		faults.Rule{Site: "shard.kernel.scatter", Kind: faults.KernelErr, Prob: 0.03},
		faults.Rule{Site: "shard.kernel.gather", Kind: faults.KernelErr, Prob: 0.03},
		faults.Rule{Site: "stream.kernel.absorb", Kind: faults.KernelErr, Prob: 0.10},
	)
	defer faults.Disable()

	var (
		respMu    sync.Mutex
		responses []chaosResponse
		status    = map[int]int{}
	)
	var wg sync.WaitGroup
	stopWriter := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2002))
		for b := 0; b < numBatches; b++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			postBatch(rng, 6+rng.Intn(8), 1+rng.Intn(2))
			time.Sleep(500 * time.Microsecond)
		}
	}()

	timeouts := []string{"", "", "", "1ms", "3ms", "500us"}
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(61 + int64(worker)*131))
			for q := 0; q < perWorker; q++ {
				src := rng.Intn(n)
				k := 1 + rng.Intn(3)
				url := fmt.Sprintf("/query/khop?src=%d&k=%d", src, k)
				kind := "khop"
				if rng.Float64() < 0.15 {
					url, kind = "/stats?x=1", "stats"
				}
				if to := timeouts[rng.Intn(len(timeouts))]; to != "" {
					url += "&timeout=" + to
				}
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)

				respMu.Lock()
				status[rec.Code]++
				respMu.Unlock()
				if rec.Code != http.StatusOK {
					continue
				}
				switch kind {
				case "khop":
					var out struct {
						Vertices []int `json:"vertices"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("khop 200 with unparsable body: %v", err)
						continue
					}
					respMu.Lock()
					responses = append(responses, chaosResponse{kind: kind, src: src, k: k, vertices: out.Vertices})
					respMu.Unlock()
				case "stats":
					var out struct {
						Stats GraphStats `json:"stats"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("stats 200 with unparsable body: %v", err)
						continue
					}
					respMu.Lock()
					responses = append(responses, chaosResponse{kind: kind, edges: out.Stats.Edges, triangles: out.Stats.Triangles})
					respMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopWriter)
	faults.Disable()

	adjCache := make([]*refalgo.Adjacency, len(history))
	adjOf := func(p int) *refalgo.Adjacency {
		if adjCache[p] == nil {
			adjCache[p] = oracleGraph(n, history[p])
		}
		return adjCache[p]
	}
	violations := 0
	for _, r := range responses {
		ok := false
		for p := range history {
			switch r.kind {
			case "khop":
				if equalInts(r.vertices, oracleKHop(adjOf(p), r.src, r.k)) {
					ok = true
				}
			case "stats":
				edges, tri := oracleStats(n, history[p])
				if r.edges == edges && r.triangles == tri {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			violations++
			t.Errorf("sharded 200 matches no entered prefix: %+v", r)
		}
	}
	if violations > 0 {
		t.Fatalf("sharded chaos run produced %d incorrect 200 responses", violations)
	}

	// Converge: clean writes drain any redo debt, then the final read is
	// exact and current against the last entered state.
	var recovered bool
	for attempt := 0; attempt < 5; attempt++ {
		if postBatch(seedRng, 4, 0) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("post-chaos ingest never re-acknowledged")
	}
	histMu.Lock()
	final := history[len(history)-1]
	histMu.Unlock()
	req := httptest.NewRequest(http.MethodGet, "/query/khop?src=0&k=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-chaos query: status %d", rec.Code)
	}
	if rec.Header().Get("X-Graphblas-Stale") == "true" {
		t.Fatal("post-chaos query still stale")
	}
	var out struct {
		Vertices []int `json:"vertices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("post-chaos body: %v", err)
	}
	if want := oracleKHop(oracleGraph(n, final), 0, 2); !equalInts(out.Vertices, want) {
		t.Fatalf("post-chaos khop diverged from final state: got %v want %v", out.Vertices, want)
	}

	t.Logf("sharded chaos: %d recorded 200s over %d entered prefixes; status counts %v",
		len(responses), len(history), status)
}

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors of the admission layer. Handlers map ErrShed and
// ErrDraining to 503 with a Retry-After header.
var (
	// ErrShed: the admission queue is over its watermark; the request was
	// rejected immediately rather than left to time out in line.
	ErrShed = errors.New("serve: load shed, admission queue full")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: draining, no new requests admitted")
)

// Admission is the server's combined concurrency limiter and load shedder: a
// counting semaphore bounding simultaneously executing requests, plus a
// waiting-line watermark that rejects new arrivals outright once the line is
// deep enough that they would only time out waiting. Shedding early keeps
// latency bounded for the requests that are admitted — the classic
// alternative, an unbounded queue, converts overload into uniformly missed
// deadlines.
type Admission struct {
	slots    chan struct{} // buffered; a held token = one executing request
	draining chan struct{} // closed by Close; gates new admissions
	drainOnce sync.Once
	maxQueue int64
	waiting  atomic.Int64
	inflight atomic.Int64
}

// NewAdmission builds an admission gate allowing maxConcurrent simultaneous
// requests and at most maxQueue waiters behind them.
func NewAdmission(maxConcurrent, maxQueue int) *Admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, maxConcurrent),
		draining: make(chan struct{}),
		maxQueue: int64(maxQueue),
	}
}

// Acquire claims an execution slot, waiting in line if all are busy. It
// returns a release closure (idempotent) on success; ErrShed when the line is
// already at its watermark; ErrDraining when the server is shutting down; or
// ctx.Err() when the caller's deadline expires while queued.
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	select {
	case <-a.draining:
		Shed.Inc()
		return nil, ErrDraining
	default:
	}
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	default:
	}
	// All slots busy: stand in line, unless the line is already at its
	// watermark — then shed immediately.
	if w := a.waiting.Add(1); w > a.maxQueue {
		a.waiting.Add(-1)
		Shed.Inc()
		return nil, ErrShed
	}
	AdmissionQueue.Set(a.waiting.Load())
	defer func() {
		a.waiting.Add(-1)
		AdmissionQueue.Set(a.waiting.Load())
	}()
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-a.draining:
		Shed.Inc()
		return nil, ErrDraining
	}
}

// admitted finalizes a successful slot claim and returns its idempotent
// release closure.
func (a *Admission) admitted() func() {
	Inflight.Set(a.inflight.Add(1))
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.slots
			Inflight.Set(a.inflight.Add(-1))
		})
	}
}

// QueueDepth reports how many requests are currently waiting for a slot.
func (a *Admission) QueueDepth() int { return int(a.waiting.Load()) }

// InflightCount reports how many requests currently hold a slot.
func (a *Admission) InflightCount() int { return int(a.inflight.Load()) }

// Pressure reports the waiting line as a fraction of the shed watermark —
// the signal the degradation ladder consults to cap query effort under load.
func (a *Admission) Pressure() float64 {
	if a.maxQueue == 0 {
		return 0
	}
	return float64(a.waiting.Load()) / float64(a.maxQueue)
}

// Close stops admitting new requests; in-flight ones keep their slots.
func (a *Admission) Close() { a.drainOnce.Do(func() { close(a.draining) }) }

// Drain blocks until every admitted request has released its slot or ctx
// expires. Call Close first; otherwise new arrivals can keep the gate busy
// forever.
func (a *Admission) Drain(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if a.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

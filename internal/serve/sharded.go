package serve

import (
	"context"
	"errors"
	"fmt"

	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

// ErrIndeterminate: an ingest batch was partially applied — some shards
// committed their sub-batches, others failed and queued them for redo. The
// batch is NOT acknowledged; the store freezes reads at the last acknowledged
// composed snapshot and converges to containing the whole batch before
// anything newer commits. Handlers map it to 500 with
// X-Graphblas-Indeterminate so a client (and the chaos oracle) models the
// batch as "may appear in a later epoch" rather than "never happened".
var ErrIndeterminate = errors.New("serve: ingest not acknowledged; partial apply converging via redo")

// shardedBackend adapts the row-partitioned multi-engine store to the
// Backend interface, inheriting the full serving resilience ladder —
// admission, deadlines riding each shard engine's flush, retries, stale
// fallback — for scatter-gather execution.
type shardedBackend struct {
	st *shard.Store
}

// NewShardedBackend wraps a shard.Store as a serving backend.
func NewShardedBackend(st *shard.Store) Backend { return shardedBackend{st: st} }

func (b shardedBackend) View(ctx context.Context) (View, bool, error) {
	snap, stale, err := b.st.Snapshot(ctx)
	if snap == nil {
		return nil, false, err
	}
	return shardedView{snap: snap}, stale, err
}

// Ingest routes the batch through the all-shards-or-none commit, translating
// the shard layer's sentinels into the serving taxonomy: backpressure and a
// redo-blocked writer are clean rejects (the batch was never applied
// anywhere, 503), a partial failure is indeterminate (500 + header).
func (b shardedBackend) Ingest(batch *stream.Batch[float64]) error {
	err := b.st.Ingest(batch)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, shard.ErrBackpressure), errors.Is(err, shard.ErrRedoBlocked):
		return fmt.Errorf("%w: %v", ErrBackpressure, err)
	case errors.Is(err, shard.ErrIndeterminate):
		return fmt.Errorf("%w: %v", ErrIndeterminate, err)
	}
	return err
}

func (b shardedBackend) N() int { return b.st.N() }

func (b shardedBackend) Shards() int { return b.st.ShardCount() }

func (b shardedBackend) Health() map[string]any {
	return map[string]any{
		"backend": "sharded",
		"shards":  b.st.Status(),
		"version": b.st.Version(),
		"frozen":  b.st.Frozen(),
		"redo":    b.st.RedoDepth(),
	}
}

func (b shardedBackend) Drain(ctx context.Context) error { return b.st.Drain(ctx) }

// shardedView adapts one composed snapshot to the View interface, converting
// the shard layer's result types to the serving wire types (identical field
// sets; separate types keep the packages dependency-clean).
type shardedView struct {
	snap *shard.Snapshot
}

func (v shardedView) Epoch() uint64 { return v.snap.Epoch() }

func (v shardedView) KHop(ctx context.Context, src, k int) ([]int, error) {
	return shard.KHop(ctx, v.snap, src, k)
}

func (v shardedView) PPRTopK(ctx context.Context, src, k int, damping, tol float64, maxIter int) ([]Ranked, int, error) {
	ranks, iters, err := shard.PPRTopK(ctx, v.snap, src, k, damping, tol, maxIter)
	if err != nil {
		return nil, iters, err
	}
	out := make([]Ranked, len(ranks))
	for i, r := range ranks {
		out[i] = Ranked{Vertex: r.Vertex, Score: r.Score}
	}
	return out, iters, nil
}

func (v shardedView) Stats(ctx context.Context) (GraphStats, error) {
	st, err := shard.Stats(ctx, v.snap)
	return GraphStats{
		Nodes:      st.Nodes,
		Edges:      st.Edges,
		Triangles:  st.Triangles,
		Clustering: st.Clustering,
	}, err
}

func (v shardedView) Degree(ctx context.Context, vertex int) (int, error) {
	return shard.Degree(ctx, v.snap, vertex)
}

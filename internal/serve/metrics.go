package serve

import "graphblas/internal/obs"

// latencyBuckets span 100µs–10s: cache-hit k-hop queries at the bottom,
// degraded PPR sweeps under load at the top.
var latencyBuckets = []float64{1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5, 10}

// Serving-layer metrics, registered into the engine's default registry so
// the /metrics endpoint (obs.WriteText) exposes them alongside the engine
// counters they complement.
var (
	Requests = obs.NewCounterVec("graphblas_serve_requests_total",
		"HTTP requests completed, by route.", "route")
	Statuses = obs.NewCounterVec("graphblas_serve_responses_total",
		"HTTP responses, by status class (2xx/4xx/5xx).", "status")
	Latency = obs.NewHistogramVec("graphblas_serve_latency_seconds",
		"Request latency from admission to response, by route.", "route", latencyBuckets)

	Shed = obs.NewCounter("graphblas_serve_shed_total",
		"Requests rejected by admission control (queue over watermark or draining).")
	Inflight = obs.NewGauge("graphblas_serve_inflight",
		"Requests currently holding an admission slot.")
	AdmissionQueue = obs.NewGauge("graphblas_serve_admission_queue",
		"Requests waiting for an admission slot.")

	Retried = obs.NewCounter("graphblas_serve_retries_total",
		"Query attempts re-run after a transient engine error.")
	DegradedServed = obs.NewCounter("graphblas_serve_degraded_total",
		"Responses served with reduced quality (capped iterations) under load.")
	StaleServed = obs.NewCounter("graphblas_serve_stale_total",
		"Responses served from a previously pinned epoch because a fresh pin was unavailable.")
	BreakerOpens = obs.NewCounter("graphblas_serve_breaker_opens_total",
		"Circuit-breaker transitions into the open state.")
	IngestThrottled = obs.NewCounter("graphblas_serve_ingest_throttled_total",
		"Ingest batches rejected by delta-overlay backpressure.")
	StoreRecovered = obs.NewCounter("graphblas_serve_store_recovered_total",
		"Writer revalidations of the streaming store after an abandoned or failed absorb.")
)

package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadSpec describes one deterministic load run: a fixed request count dealt
// to a fixed worker pool, each worker drawing sources and query kinds from
// its own seeded stream, with one writer goroutine interleaving ingest
// batches. Two runs with the same spec issue the same requests in the same
// per-worker order; only timing differs.
type LoadSpec struct {
	Seed     uint64
	Requests int           // total query requests across all workers
	Workers  int           // concurrent client goroutines
	N        int           // vertex-space bound for drawn sources
	Timeout  time.Duration // per-request ?timeout= hint (0: server default)

	// Query mix: a draw in [0,1) lands in khop / ppr / stats by these
	// cumulative fractions (khop below KHopFrac, ppr below KHopFrac+PPRFrac,
	// stats above).
	KHopFrac, PPRFrac float64

	// IngestEvery issues one write batch per that many queries completed
	// (0 disables the writer); BatchSize edges per batch.
	IngestEvery int
	BatchSize   int
}

// LoadResult aggregates one run. Counts come from the responses themselves
// (status codes and resilience headers), so the result is self-contained
// even when several runs share the process-global metrics registry.
type LoadResult struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`     // 503: admission/backpressure/drain
	Timeout  int     `json:"timeout"`  // 504: deadline crossed mid-query
	Errors   int     `json:"errors"`   // anything else non-2xx
	Stale    int     `json:"stale"`    // 200s served from a prior epoch
	Degraded int     `json:"degraded"` // 200s with reduced quality
	Retried  int     `json:"retried"`  // 200s that needed >1 attempt
	Ingested int     `json:"ingested"` // write batches accepted
	Throttled int    `json:"throttled"` // write batches rejected by backpressure
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	QPS      float64 `json:"qps"`
	Seconds  float64 `json:"seconds"`
}

// RunLoad drives the server in-process (no sockets: requests go straight
// into ServeHTTP) and tallies the outcome. In-process drive keeps the
// harness deterministic and the latency numbers about the engine, not the
// loopback stack.
func RunLoad(s *Server, spec LoadSpec) LoadResult {
	if spec.Workers < 1 {
		spec.Workers = 1
	}
	if spec.KHopFrac <= 0 && spec.PPRFrac <= 0 {
		spec.KHopFrac, spec.PPRFrac = 0.6, 0.3
	}
	var (
		mu        sync.Mutex
		res       LoadResult
		latencies []float64
	)
	start := time.Now()

	var wg sync.WaitGroup
	queriesDone := make(chan struct{}, spec.Requests)
	for w := 0; w < spec.Workers; w++ {
		share := spec.Requests / spec.Workers
		if w < spec.Requests%spec.Workers {
			share++
		}
		wg.Add(1)
		go func(worker, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(spec.Seed) + int64(worker)*7919))
			for q := 0; q < share; q++ {
				src := rng.Intn(spec.N)
				var url string
				switch draw := rng.Float64(); {
				case draw < spec.KHopFrac:
					url = fmt.Sprintf("/query/khop?src=%d&k=%d", src, 1+rng.Intn(3))
				case draw < spec.KHopFrac+spec.PPRFrac:
					url = fmt.Sprintf("/query/ppr?src=%d&k=10", src)
				default:
					url = "/stats?x=1"
				}
				if spec.Timeout > 0 {
					url += "&timeout=" + spec.Timeout.String()
				}
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				t0 := time.Now()
				s.ServeHTTP(rec, req)
				dt := time.Since(t0).Seconds() * 1e3

				mu.Lock()
				res.Requests++
				latencies = append(latencies, dt)
				switch rec.Code {
				case http.StatusOK:
					res.OK++
					if rec.Header().Get("X-Graphblas-Stale") == "true" {
						res.Stale++
					}
					if rec.Header().Get("X-Graphblas-Degraded") == "true" {
						res.Degraded++
					}
					if rec.Header().Get("X-Graphblas-Attempts") != "" {
						res.Retried++
					}
				case http.StatusServiceUnavailable:
					res.Shed++
				case http.StatusGatewayTimeout:
					res.Timeout++
				default:
					res.Errors++
				}
				mu.Unlock()
				select {
				case queriesDone <- struct{}{}:
				default:
				}
			}
		}(w, share)
	}

	writerStop := make(chan struct{})
	var writerWG sync.WaitGroup
	if spec.IngestEvery > 0 {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(spec.Seed) ^ 0x5eed))
			pending := 0
			for {
				select {
				case <-writerStop:
					return
				case <-queriesDone:
					pending++
					if pending < spec.IngestEvery {
						continue
					}
					pending = 0
					body := ingestJSON(rng, spec.N, spec.BatchSize)
					req := httptest.NewRequest(http.MethodPost, "/ingest", body)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					mu.Lock()
					if rec.Code == http.StatusOK {
						res.Ingested++
					} else {
						res.Throttled++
					}
					mu.Unlock()
				}
			}
		}()
	}

	wg.Wait()
	close(writerStop)
	writerWG.Wait()

	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.QPS = float64(res.Requests) / res.Seconds
	}
	sort.Float64s(latencies)
	res.P50Ms = percentile(latencies, 0.50)
	res.P99Ms = percentile(latencies, 0.99)
	return res
}

// ingestJSON builds one random batch body.
func ingestJSON(rng *rand.Rand, n, size int) *strings.Reader {
	if size < 1 {
		size = 8
	}
	var sb strings.Builder
	//grblint:ignore swallowederr strings.Builder writes are documented to always return a nil error
	sb.WriteString(`{"inserts":[`)
	for e := 0; e < size; e++ {
		if e > 0 {
			//grblint:ignore swallowederr strings.Builder writes are documented to always return a nil error
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d,1]", rng.Intn(n), rng.Intn(n))
	}
	//grblint:ignore swallowederr strings.Builder writes are documented to always return a nil error
	sb.WriteString(`]}`)
	return strings.NewReader(sb.String())
}

// percentile returns the p-quantile of sorted xs (nearest-rank), 0 if empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p * float64(len(xs)-1))
	return xs[i]
}

package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a circuit breaker guarding an operation that can fail
// persistently — here, delta-overlay compaction. Consecutive failures up to
// a threshold trip it open; while open, callers skip the operation entirely
// (the serving layer degrades to the last pinned epoch instead of queueing
// doomed work behind a broken writer). After a cooldown one probe is let
// through: success closes the breaker, failure re-opens it for another
// cooldown.
type Breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time // injectable clock for deterministic tests
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures and probing again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the guarded operation may run now. In the open state
// it returns false until the cooldown elapses, then transitions to half-open
// and lets a probe through.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	}
}

// Record feeds the outcome of one guarded run back into the automaton.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	// A half-open probe failing — or the threshold filling — opens the
	// breaker and restarts the cooldown.
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		if b.state != breakerOpen {
			BreakerOpens.Inc()
		}
		b.state = breakerOpen
		b.openedAt = b.now()
		b.failures = 0
	}
}

// State names the current state ("closed", "open", "half-open") for health
// reporting.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

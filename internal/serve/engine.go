package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"graphblas/internal/builtins"
	"graphblas/internal/core"
	"graphblas/internal/stream"
)

// ErrBackpressure: the delta overlay is so far behind that accepting more
// updates would only grow an unmergeable backlog; the writer should back off
// and retry. Handlers map it to 503 with Retry-After.
var ErrBackpressure = errors.New("serve: ingest backpressure, delta overlay over watermark")

// Config sizes the serving engine's resilience machinery.
type Config struct {
	// N is the vertex-space dimension (the adjacency matrix is N×N).
	N int
	// CompactAfter is the delta-overlay entry count that triggers a
	// breaker-guarded compaction on the ingest path. 0 means the
	// DefaultPolicy watermark.
	CompactAfter int
	// ShedDelta is the delta entry count beyond which ingest is rejected
	// with ErrBackpressure. 0 means 4× CompactAfter.
	ShedDelta int
	// BreakerThreshold is the consecutive compaction failures that open the
	// compaction circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// (default 250ms).
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.CompactAfter <= 0 {
		c.CompactAfter = stream.DefaultPolicy().MaxDeltaNNZ
	}
	if c.ShedDelta <= 0 {
		c.ShedDelta = 4 * c.CompactAfter
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	return c
}

// Snapshot is an immutable materialization of one pinned epoch, shared
// read-only by every query running against it. Queries never touch the live
// streaming matrix — they run on the snapshot, so a request observes one
// atomic prefix of the update stream no matter how the writer churns.
type Snapshot struct {
	// Version is the engine write-version the snapshot was built at — the
	// cache key. A monotone counter rather than (epoch, delta-size) because
	// equal-sized overlays can differ in content (insert then delete of the
	// same edge), which a size fingerprint would alias.
	Version uint64
	// EpochID and DeltaNNZ describe the pinned state: the epoch advances on
	// compaction, the delta count covers updates absorbed since.
	EpochID  uint64
	DeltaNNZ int
	N        int
	NVals    int
	// Mat is the adjacency at the pinned epoch, weights preserved.
	Mat *core.Matrix[float64]

	mu  sync.Mutex
	sym *core.Matrix[bool] // lazily built symmetrized pattern for stats
	deg []int              // lazily counted out-degrees for /query/degree
}

// Sym returns the snapshot's symmetrized, loop-free boolean pattern —
// the form the triangle/clustering kernels consume — building it on first
// use. Transient build failures are not cached; the next caller retries.
func (s *Snapshot) Sym(ctx context.Context) (*core.Matrix[bool], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sym != nil {
		return s.sym, nil
	}
	rows, cols, _, err := s.Mat.ExtractTuples()
	if err != nil {
		return nil, err
	}
	var si, sj []int
	var sv []bool
	for k := range rows {
		if rows[k] == cols[k] {
			continue
		}
		si = append(si, rows[k], cols[k])
		sj = append(sj, cols[k], rows[k])
		sv = append(sv, true, true)
	}
	sym, err := core.NewMatrix[bool](s.N, s.N)
	if err != nil {
		return nil, err
	}
	if err := sym.Build(si, sj, sv, builtins.LOr()); err != nil {
		return nil, err
	}
	if err := core.WaitContext(ctx); err != nil {
		return nil, err
	}
	s.sym = sym
	return sym, nil
}

// Engine wraps one streaming GraphBLAS matrix as the server's graph store:
// atomic batched ingest with delta backpressure, breaker-guarded compaction,
// and pinned-epoch snapshots with last-known-good fallback. The merge policy
// is manual — compaction is an explicit, breaker-supervised act of this
// layer, not a side effect buried in the ingest path.
type Engine struct {
	cfg     Config
	m       *core.Matrix[float64]
	breaker *Breaker

	// wmu serializes writers (ingest and compaction). Single-writer
	// discipline is what makes the at-least-once recovery in apply sound:
	// between an absorb attempt and its acknowledgement no other batch can
	// interleave, so re-applying the same last-wins batch is idempotent. It
	// also makes recovery writer-exclusive — only the goroutine that knows
	// which batch may have been dropped may Revalidate the store; a reader
	// clearing the mark could let the writer acknowledge a lost write.
	wmu sync.Mutex
	// version counts successful writes (absorbs and compactions). Snapshots
	// are cached per version, so all mutations must go through the Engine.
	version atomic.Uint64

	mu   sync.Mutex
	cur  *Snapshot // snapshot of the newest write-version
	last *Snapshot // last successfully built snapshot (stale fallback)
}

// ingestAttempts bounds the at-least-once re-apply loop in apply.
const ingestAttempts = 3

// NewEngine builds the serving engine over a fresh N×N streaming matrix.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	m, err := core.NewMatrix[float64](cfg.N, cfg.N)
	if err != nil {
		return nil, err
	}
	if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:     cfg,
		m:       m,
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}, nil
}

// Matrix exposes the live streaming matrix (tests and the load generator
// inspect it; queries must go through Snapshot).
func (e *Engine) Matrix() *core.Matrix[float64] { return e.m }

// Breaker exposes the compaction breaker for health reporting.
func (e *Engine) Breaker() *Breaker { return e.breaker }

// Ingest applies one sealed update batch atomically. When the delta overlay
// is past the compaction watermark it first attempts a breaker-guarded
// compaction; past the shed watermark — the overlay has grown unmergeable
// faster than compaction can drain it — the batch is rejected with
// ErrBackpressure so the writer throttles instead of burying the store.
func (e *Engine) Ingest(b *stream.Batch[float64]) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	delta, err := e.deltaNVals()
	if err != nil {
		return err
	}
	if delta >= e.cfg.ShedDelta {
		// One last compaction attempt before rejecting: the breaker may have
		// cooled down since the overlay crossed the lower watermark.
		e.tryCompact()
		if delta, err = e.deltaNVals(); err != nil {
			return err
		}
		if delta >= e.cfg.ShedDelta {
			IngestThrottled.Inc()
			return ErrBackpressure
		}
	} else if delta >= e.cfg.CompactAfter {
		e.tryCompact()
	}
	return e.apply(b)
}

// deltaNVals reads the overlay size, revalidating the store first when a
// prior abandoned flush or injected fault left it marked invalid. Caller
// holds wmu.
func (e *Engine) deltaNVals() (int, error) {
	delta, err := e.m.DeltaNVals()
	if core.InfoOf(err) == core.InvalidObject {
		if rerr := e.m.Revalidate(); rerr == nil {
			StoreRecovered.Inc()
			delta, err = e.m.DeltaNVals()
		}
	}
	return delta, err
}

// apply absorbs one batch with at-least-once semantics. The engine's flush is
// shared by every goroutine, so some query's expired deadline can abandon the
// absorb (Canceled) or an injected fault can fail it — either way the store
// rolls back to its prior committed content and is marked invalid. Batches
// are last-wins per edge, hence idempotent, so the writer revalidates the
// rolled-back store and re-applies the same batch instead of losing a write
// it is about to acknowledge. Success is judged object-scoped (m.Wait), not
// by the sequence-wide flush error, which may belong to some query's op.
// Caller holds wmu.
func (e *Engine) apply(b *stream.Batch[float64]) error {
	var last error
	for attempt := 0; attempt < ingestAttempts; attempt++ {
		if attempt > 0 {
			if rerr := e.m.Revalidate(); rerr != nil {
				return last
			}
			StoreRecovered.Inc()
		}
		err := e.m.ApplyUpdateBatch(b)
		if err == nil {
			err = e.m.Wait()
		}
		if err == nil {
			e.version.Add(1)
			return nil
		}
		last = err
		if !IsTransient(err) {
			return err
		}
	}
	return last
}

// tryCompact runs one breaker-supervised compaction. Compaction errors
// surface at the flush; a flush abandoned by some request's deadline
// (Canceled) is not evidence the compactor is broken, so only real execution
// failures feed the breaker.
func (e *Engine) tryCompact() {
	if !e.breaker.Allow() {
		return
	}
	err := e.m.Compact()
	if err == nil {
		err = core.Wait()
		if err != nil && e.m.Wait() == nil {
			// The flush is shared: its first error may belong to some query's
			// op. The store's own validity is the verdict on compaction.
			err = nil
		}
	}
	if core.InfoOf(err) == core.Canceled {
		// A flush abandoned by some request's deadline is not evidence the
		// compactor is broken.
		return
	}
	if err == nil {
		e.version.Add(1)
	}
	e.breaker.Record(err)
}

// Compact forces a compaction outside the ingest path (drain, tests).
func (e *Engine) Compact() error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if err := e.m.Compact(); err != nil {
		return err
	}
	if err := e.m.Wait(); err != nil {
		return err
	}
	e.version.Add(1)
	return nil
}

// Snapshot returns a materialized snapshot of the current pinned state. The
// second result reports staleness: when pinning or materializing fails
// transiently (deadline-abandoned flush, injected fault, open breaker
// downstream), the engine degrades to the last good snapshot rather than
// failing the request — the caller stamps the response with the staleness
// header. With no fallback available the error is returned for the retry
// layer to chew on.
func (e *Engine) Snapshot(ctx context.Context) (*Snapshot, bool, error) {
	if ctx != nil && ctx.Err() != nil {
		return e.fallback(ctx.Err())
	}
	// Load the version before probing: a write landing between the two only
	// costs a spurious rebuild on the next call, never a stale-as-fresh.
	v := e.version.Load()
	// Health probe: a store poisoned by an abandoned or failed absorb (only
	// the writer may revalidate it) degrades reads to the last good snapshot.
	if _, err := e.m.DeltaNVals(); err != nil {
		return e.fallback(err)
	}
	e.mu.Lock()
	cur := e.cur
	e.mu.Unlock()
	if cur != nil && cur.Version == v {
		return cur, false, nil
	}
	snap, err := e.materialize(ctx)
	if err != nil {
		return e.fallback(err)
	}
	snap.Version = v
	e.mu.Lock()
	e.cur = snap
	e.last = snap
	e.mu.Unlock()
	return snap, false, nil
}

// materialize pins the current epoch and builds its snapshot matrix.
func (e *Engine) materialize(ctx context.Context) (*Snapshot, error) {
	ep, err := e.m.PinEpoch()
	if err != nil {
		return nil, err
	}
	rows, cols, vals := ep.Tuples()
	mat, err := core.NewMatrix[float64](e.cfg.N, e.cfg.N)
	if err != nil {
		return nil, err
	}
	if err := mat.Build(rows, cols, vals, core.NoAccum[float64]()); err != nil {
		return nil, err
	}
	if err := core.WaitContext(ctx); err != nil {
		return nil, err
	}
	return &Snapshot{
		EpochID:  ep.ID(),
		DeltaNNZ: ep.DeltaNVals(),
		N:        e.cfg.N,
		NVals:    ep.NVals(),
		Mat:      mat,
	}, nil
}

// fallback degrades to the last good snapshot, or surfaces err without one.
func (e *Engine) fallback(err error) (*Snapshot, bool, error) {
	e.mu.Lock()
	last := e.last
	e.mu.Unlock()
	if last != nil {
		StaleServed.Inc()
		return last, true, nil
	}
	return nil, false, err
}

package faults

import (
	"sync"
	"testing"
)

// TestSequencerOrdersDraws runs positions concurrently and checks Wait/
// Release enforce ascending order of the gated sections.
func TestSequencerOrdersDraws(t *testing.T) {
	const n = 32
	s := NewSequencer(n)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Launch in reverse so a FIFO-ish scheduler would tend to run them
	// backwards if the gate did not reorder.
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Wait(i)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release(i)
		}(i)
	}
	wg.Wait()
	for k, got := range order {
		if got != k {
			t.Fatalf("gated sections ran in order %v, want ascending", order)
		}
	}
}

// TestSequencerReleaseIdempotent verifies double release is harmless and
// out-of-order releases unblock a waiter only once every earlier position
// is done.
func TestSequencerReleaseIdempotent(t *testing.T) {
	s := NewSequencer(3)
	s.Release(1) // out of order: position 0 still pending
	s.Release(1) // idempotent
	done := make(chan struct{})
	go func() {
		s.Wait(2)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait(2) returned before position 0 released")
	default:
	}
	s.Release(0)
	<-done // must unblock now: 0 and 1 are both done
	s.Release(2)
	s.Release(2)
}

// TestSequencerNil verifies the nil Sequencer is inert, the contract the
// executor relies on when no fault plan is installed.
func TestSequencerNil(t *testing.T) {
	var s *Sequencer
	s.Wait(5)
	s.Release(5)
}

// TestPlanCoversKernelSites checks the classification that decides whether
// a DAG flush must serialize whole op bodies.
func TestPlanCoversKernelSites(t *testing.T) {
	cleanup(t)
	cases := []struct {
		site string
		want bool
	}{
		{"MxM", false},                     // exact op name: op-level draw only
		{"Transpose", false},               // exact op name
		{"format.kernel.bitmap.mxv", true}, // kernel-internal dotted site
		{"format.*", true},                 // glob can reach kernel sites
		{"MxM*", true},                     // glob, conservatively kernel-capable
		{"", true},                         // matches every site
		{"*", true},                        // matches every site
	}
	for _, tc := range cases {
		Configure(1, Rule{Site: tc.site, Kind: KernelErr})
		if got := PlanCoversKernelSites(); got != tc.want {
			t.Errorf("PlanCoversKernelSites() with site %q = %v, want %v", tc.site, got, tc.want)
		}
	}
	Disable()
	if PlanCoversKernelSites() {
		t.Error("PlanCoversKernelSites() = true with no plan installed")
	}
}

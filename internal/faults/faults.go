// Package faults is the deterministic fault-injection subsystem of the
// execution engine. The paper's Section V specifies a forgiving error model —
// execution errors leave output objects invalid, the sequence continues, and
// the error string explains what happened — and this package exists to
// exercise that model systematically rather than waiting for real allocation
// failures or operator bugs: tests (and the E7b recovery experiment) install
// a seeded plan of injection rules, and the engine's kernels and executor
// consult the plan at named sites.
//
// Three fault kinds are injectable:
//
//   - OOM — an allocation failure (GrB_OUT_OF_MEMORY). Recoverable: the
//     format dispatch retries the generic CSR path once before surfacing it.
//   - KernelErr — an unspecified kernel failure (surfaces as GrB_PANIC,
//     "unknown internal error"). Recoverable like OOM.
//   - PanicFault — a fault in a user-operator path (GrB_PANIC). Not eligible
//     for kernel fallback: it takes the genuine panic-recovery route.
//
// The package also hosts the allocation-budget governor: GovernAlloc makes
// oversized bitmap/CSR/hypersparse allocations fail with OOM *before* they
// are attempted (Go cannot recover a real out-of-memory condition), which is
// how SuiteSparse:GraphBLAS treats allocation failure — a first-class,
// testable outcome rather than an abort.
//
// Everything is deterministic: rules fire on per-site call counts and a
// seeded RNG, so a schedule replays identically across runs and across
// blocking/nonblocking execution modes (the differential sweep depends on
// this). The package depends only on the leaf observability registry
// (internal/obs, where every injection is also counted), so both
// internal/core and internal/format may import it.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"graphblas/internal/obs"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// OOM is an injected allocation failure.
	OOM Kind = iota + 1
	// KernelErr is an injected unspecified kernel failure.
	KernelErr
	// PanicFault is an injected user-operator-path fault.
	PanicFault
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case OOM:
		return "OutOfMemory"
	case KernelErr:
		return "KernelFailure"
	case PanicFault:
		return "Panic"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is the value an injection site raises: as a returned error from
// Check, or as a panic value from Step/GovernAlloc inside kernels that have
// no error return. The executor recognizes it when recovering and maps it to
// the matching GraphBLAS Info code.
type Fault struct {
	Site string
	Kind Kind
	// Bytes is the size of the denied allocation for governor faults, 0 for
	// injected ones.
	Bytes int64
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Bytes > 0 {
		return fmt.Sprintf("allocation of %d bytes denied by governor at %s", f.Bytes, f.Site)
	}
	return fmt.Sprintf("injected %v at %s", f.Kind, f.Site)
}

// Rule describes one injection rule of a fault plan. Zero-valued gates are
// permissive: a Rule{Site: "MxM", Kind: OOM} injects on every MxM execution.
type Rule struct {
	// Site selects the injection sites the rule applies to: exact match, a
	// "prefix*" glob, or ""/"*" for every site.
	Site string
	// Kind is the fault to inject.
	Kind Kind
	// After skips the first After matching calls before injecting.
	After int
	// Every injects on every Every-th eligible call (1 or 0 = each).
	Every int
	// Prob, when in (0, 1), gates each eligible call on a seeded coin flip.
	Prob float64
	// Times caps the number of injections from this rule (0 = unlimited).
	Times int
}

func (r *Rule) matches(site string) bool {
	switch {
	case r.Site == "" || r.Site == "*":
		return true
	case len(r.Site) > 0 && r.Site[len(r.Site)-1] == '*':
		p := r.Site[:len(r.Site)-1]
		return len(site) >= len(p) && site[:len(p)] == p
	default:
		return r.Site == site
	}
}

// registry holds the active plan. A single mutex serializes rule evaluation;
// injection sites sit at kernel entry and executor boundaries (never inside
// parallel loops), so contention is negligible and, more importantly, the
// rule evaluation order — and therefore the schedule — is deterministic.
type registry struct {
	mu    sync.Mutex
	seed  int64
	rules []Rule
	hits  []int          // injections fired per rule
	calls map[string]int // per-site call counts
	rng   *rand.Rand
}

var (
	enabled  atomic.Bool
	injected atomic.Int64
	// allocBudget is the per-allocation byte cap of the governor. It applies
	// even with no fault plan installed, so a genuinely absurd allocation
	// (overflowed size computation, hostile input) fails cleanly.
	allocBudget atomic.Int64
	reg         = registry{calls: map[string]int{}}
)

// DefaultAllocBudget is the governor's default per-allocation cap: 1 TiB,
// far above anything the engine legitimately allocates, so it only trips on
// pathological sizes unless a test lowers it.
const DefaultAllocBudget int64 = 1 << 40

func init() { allocBudget.Store(DefaultAllocBudget) }

// Configure installs a fault plan: the rules, a seed for probabilistic
// gates, and zeroed call/injection counters. It replaces any previous plan.
func Configure(seed int64, rules ...Rule) {
	reg.mu.Lock()
	reg.seed = seed
	reg.rules = append([]Rule(nil), rules...)
	reg.hits = make([]int, len(rules))
	reg.calls = map[string]int{}
	reg.rng = rand.New(rand.NewSource(seed))
	reg.mu.Unlock()
	injected.Store(0)
	enabled.Store(len(rules) > 0)
}

// Disable removes the fault plan. The allocation governor stays active at
// its configured budget.
func Disable() {
	enabled.Store(false)
	reg.mu.Lock()
	reg.rules = nil
	reg.hits = nil
	reg.calls = map[string]int{}
	reg.rng = nil
	reg.mu.Unlock()
}

// Enabled reports whether a fault plan is installed.
func Enabled() bool { return enabled.Load() }

// Reset zeroes the call and injection counters but keeps the installed
// rules and re-seeds the RNG, so the same schedule replays — the property
// the blocking/nonblocking differential sweep relies on.
func Reset() {
	reg.mu.Lock()
	reg.calls = map[string]int{}
	if reg.rng != nil {
		reg.rng = rand.New(rand.NewSource(reg.seed))
	}
	for i := range reg.hits {
		reg.hits[i] = 0
	}
	reg.mu.Unlock()
	injected.Store(0)
}

// InjectedCount reports the number of faults injected since the last
// Configure/Reset.
func InjectedCount() int64 { return injected.Load() }

// SetAllocBudget sets the governor's per-allocation byte cap and returns the
// previous one. n <= 0 restores DefaultAllocBudget.
func SetAllocBudget(n int64) int64 {
	if n <= 0 {
		n = DefaultAllocBudget
	}
	return allocBudget.Swap(n)
}

// AllocBudget reports the governor's current per-allocation byte cap.
func AllocBudget() int64 { return allocBudget.Load() }

// evaluate bumps the site's call count and returns the fault the plan
// injects at this call, if any.
func evaluate(site string) *Fault {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.rules == nil {
		return nil
	}
	reg.calls[site]++
	n := reg.calls[site]
	for i := range reg.rules {
		r := &reg.rules[i]
		if !r.matches(site) {
			continue
		}
		if n <= r.After {
			continue
		}
		if r.Every > 1 && (n-r.After-1)%r.Every != 0 {
			continue
		}
		if r.Times > 0 && reg.hits[i] >= r.Times {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && reg.rng.Float64() >= r.Prob {
			continue
		}
		reg.hits[i]++
		injected.Add(1)
		obs.FaultsInjected.Inc()
		return &Fault{Site: site, Kind: r.Kind}
	}
	return nil
}

// Check consults the plan at an executor-level site (the op name). OOM and
// KernelErr faults come back as a non-nil *Fault for the caller to turn into
// an execution error; a PanicFault panics, taking the same route a faulty
// user operator would.
func Check(site string) *Fault {
	if !enabled.Load() {
		return nil
	}
	f := evaluate(site)
	if f != nil && f.Kind == PanicFault {
		panic(f)
	}
	return f
}

// Step consults the plan at a kernel-internal site. Kernels have value-only
// signatures, so any injected fault is raised as a panic carrying the
// *Fault; the format dispatch recovers OOM/KernelErr and retries the generic
// CSR path, while PanicFault propagates to the executor's panic recovery.
func Step(site string) {
	if !enabled.Load() {
		return
	}
	if f := evaluate(site); f != nil {
		panic(f)
	}
}

// PlanCoversKernelSites reports whether any installed rule could match a
// kernel-internal (dotted) site or the allocation governor, as opposed to
// only exact executor-level op names. Kernel sites draw from the plan in the
// middle of op bodies, so a DAG-parallel flush must serialize entire op
// bodies to keep such a plan's schedule deterministic; plans made of exact
// op-name rules only need the op-level draw ordered (see Sequencer), letting
// kernel work overlap.
func PlanCoversKernelSites() bool {
	if !enabled.Load() {
		return false
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for i := range reg.rules {
		s := reg.rules[i].Site
		if s == "" || s == "*" ||
			strings.Contains(s, ".") ||
			strings.HasSuffix(s, "*") {
			return true
		}
	}
	return false
}

// PlanCoversSitesOutside reports whether any installed rule could match a
// site outside the given dotted-prefix namespace. The fusion pass uses it
// with prefix "fuse.": a plan confined to fused-kernel sites cannot observe
// whether the constituent ops ran separately (their op-name and kernel-site
// draws never match), so fusing under such a plan preserves the schedule —
// while any broader rule (an op name, "*", another kernel namespace) could
// fire differently once an op's kernel is replaced or its intermediate
// elided, so fusion must stand down. Rules with Site ""/"*" match
// everything and always count as outside.
func PlanCoversSitesOutside(prefix string) bool {
	if !enabled.Load() {
		return false
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for i := range reg.rules {
		s := reg.rules[i].Site
		if s == "" || s == "*" {
			return true
		}
		if !strings.HasPrefix(s, prefix) {
			return true
		}
	}
	return false
}

// Sequencer orders fault-plan draws from concurrently executing operations
// by program position: position i's Wait returns only once every position
// j < i has released. Combined with the DAG scheduler's min-position
// dispatch (which guarantees the smallest unfinished position is always
// running or about to run, never parked behind blocked workers), this makes
// the per-site call counts and the seeded RNG advance in exactly the
// sequential-flush order, so a fault schedule replays identically under a
// parallel flush.
//
// Release is idempotent and must eventually be called for every position —
// including operations that short-circuit before reaching their injection
// site. A nil *Sequencer is inert: Wait and Release are no-ops, so callers
// can pass nil when no fault plan is installed.
type Sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	done []bool
	next int // smallest position not yet released
}

// NewSequencer returns a Sequencer for positions [0, n).
func NewSequencer(n int) *Sequencer {
	s := &Sequencer{done: make([]bool, n)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Wait blocks until every position before pos has been released.
func (s *Sequencer) Wait(pos int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for s.next < pos {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Release marks pos as done, unblocking later positions once every earlier
// one is also done. Calling it more than once for the same pos is harmless.
func (s *Sequencer) Release(pos int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done[pos] {
		s.done[pos] = true
		for s.next < len(s.done) && s.done[s.next] {
			s.next++
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// GovernAlloc is the allocation-budget governor: called with the byte size
// of an allocation a kernel or conversion is about to attempt, it panics
// with an OOM *Fault if the size exceeds the budget — the allocation fails
// *before* it is attempted — or if the plan injects an OOM at the site.
func GovernAlloc(site string, bytes int64) {
	if bytes > allocBudget.Load() {
		injected.Add(1)
		obs.FaultsInjected.Inc()
		panic(&Fault{Site: site, Kind: OOM, Bytes: bytes})
	}
	if !enabled.Load() {
		return
	}
	if f := evaluate(site); f != nil {
		if f.Kind != PanicFault {
			f.Kind = OOM
		}
		panic(f)
	}
}

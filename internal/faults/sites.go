package faults

// KernelSites is the canonical registry of every kernel-internal injection
// site in the tree: the dotted literals drawn by faults.Step and
// faults.GovernAlloc inside internal/sparse and internal/format. Executor
// level faults.Check sites are operation names, dynamic by design, and are
// not listed.
//
// The grblint faultsite analyzer cross-checks this list against the code in
// both directions — a drawn-but-unlisted site (typo or unregistered kernel)
// and a listed-but-undrawn one (dead registry entry) are both findings — so
// a fault plan or a differential sweep can be written against this list with
// the guarantee that every name on it is reachable.
var KernelSites = []string{
	// internal/sparse CSR/vector kernels.
	"sparse.kernel.reduce.rows",
	"sparse.kernel.reduce.all",
	"sparse.kernel.reduce.vec",

	// internal/format layout kernels.
	"format.kernel.bitmap.mxv",
	"format.kernel.bitmap.mxv.fast",
	"format.kernel.bitmap.mxm",
	"format.kernel.bitmap.mxm.fast",
	"format.kernel.hyper.mxv",
	"format.kernel.hyper.mxv.push",

	// internal/format allocation-governor gates.
	"format.alloc.hyper",
	"format.alloc.bitmap",
	"format.alloc.csr",

	// internal/stream ingestion kernels and governor gate.
	"stream.kernel.absorb",
	"stream.kernel.merge",
	"stream.alloc.delta",

	// internal/sparse fused kernels (flush-time fusion pass): each fused
	// pair executes one of these instead of its two constituent kernels, so
	// plans targeting them exercise the fused rollback path specifically.
	"fuse.kernel.map",
	"fuse.kernel.mxv.dot",
	"fuse.kernel.mxv.push",
	"fuse.kernel.assign.accum",

	// internal/shard scatter-gather coordination kernels and governor gate.
	// These run on the sharding coordinator, outside the per-instance
	// executors, so the shard layer contains their fault panics itself
	// (shard.runKernel) with the same rollback-to-error discipline.
	"shard.kernel.route",
	"shard.kernel.scatter",
	"shard.kernel.gather",
	"shard.alloc.partial",
}

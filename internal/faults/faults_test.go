package faults

import "testing"

func cleanup(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		Disable()
		SetAllocBudget(0)
	})
}

// collect records which of n calls to Check(site) inject.
func collect(site string, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = Check(site) != nil
	}
	return out
}

func TestRuleGates(t *testing.T) {
	cleanup(t)
	Configure(1, Rule{Site: "MxM", Kind: OOM, After: 2, Every: 2, Times: 2})
	got := collect("MxM", 8)
	// Calls 1..2 skipped by After; eligible calls are 3,5,7,... with Every=2;
	// Times=2 stops after two injections.
	want := []bool{false, false, true, false, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: injected=%v want %v (%v)", i+1, got[i], want[i], got)
		}
	}
	if InjectedCount() != 2 {
		t.Fatalf("InjectedCount %d want 2", InjectedCount())
	}
}

func TestSiteMatching(t *testing.T) {
	cleanup(t)
	Configure(1, Rule{Site: "format.*", Kind: KernelErr})
	if Check("MxM") != nil {
		t.Fatal("glob matched unrelated site")
	}
	if f := Check("format.kernel.bitmap.mxv"); f == nil || f.Kind != KernelErr {
		t.Fatalf("glob missed prefixed site: %v", f)
	}
	Configure(1, Rule{Site: "", Kind: OOM})
	if Check("anything") == nil {
		t.Fatal("empty site should match every site")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cleanup(t)
	sites := []string{"a", "b", "a", "c", "b", "a", "a", "c"}
	run := func() []bool {
		Reset()
		out := make([]bool, len(sites))
		for i, s := range sites {
			out[i] = Check(s) != nil
		}
		return out
	}
	Configure(42, Rule{Site: "a", Kind: OOM, Prob: 0.5}, Rule{Site: "c", Kind: KernelErr, Every: 2})
	first := run()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at call %d: %v vs %v", i, first, second)
		}
	}
	any := false
	for _, b := range first {
		any = any || b
	}
	if !any {
		t.Fatalf("schedule injected nothing: %v", first)
	}
}

func TestPanicKindPanics(t *testing.T) {
	cleanup(t)
	Configure(1, Rule{Site: "op", Kind: PanicFault})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Kind != PanicFault {
			t.Fatalf("recovered %v, want *Fault{PanicFault}", r)
		}
	}()
	Check("op")
	t.Fatal("Check did not panic for PanicFault kind")
}

func TestStepPanicsWithFault(t *testing.T) {
	cleanup(t)
	Configure(1, Rule{Site: "k", Kind: OOM})
	defer func() {
		f, ok := recover().(*Fault)
		if !ok || f.Kind != OOM || f.Site != "k" {
			t.Fatalf("recovered %v", f)
		}
	}()
	Step("k")
	t.Fatal("Step did not panic")
}

func TestGovernAllocBudget(t *testing.T) {
	cleanup(t)
	Configure(1) // no rules: clears plan and counters
	SetAllocBudget(1024)
	GovernAlloc("small", 1024) // at the cap: allowed
	func() {
		defer func() {
			f, ok := recover().(*Fault)
			if !ok || f.Kind != OOM || f.Bytes != 1025 {
				t.Fatalf("recovered %v", f)
			}
		}()
		GovernAlloc("big", 1025)
		t.Fatal("oversized allocation not denied")
	}()
	if InjectedCount() != 1 {
		t.Fatalf("governor denial not counted: %d", InjectedCount())
	}
	SetAllocBudget(0)
	GovernAlloc("big", 1025) // default budget restored: allowed
}

func TestDisabledIsFree(t *testing.T) {
	cleanup(t)
	Disable()
	if Enabled() {
		t.Fatal("Enabled after Disable")
	}
	if Check("MxM") != nil {
		t.Fatal("Check injected while disabled")
	}
	Step("site") // must not panic
}

// TestPlanCoversSitesOutside pins the fusion pass's stand-down gate: a plan
// is "confined" to a namespace only when every rule's site carries that
// prefix; universal matchers and op-name rules always count as outside.
func TestPlanCoversSitesOutside(t *testing.T) {
	cleanup(t)
	cases := []struct {
		name  string
		rules []Rule
		want  bool
	}{
		{"empty site is universal", []Rule{{Site: "", Kind: OOM}}, true},
		{"star is universal", []Rule{{Site: "*", Kind: OOM}}, true},
		{"op-name rule", []Rule{{Site: "MxV", Kind: OOM}}, true},
		{"other kernel namespace", []Rule{{Site: "sparse.kernel.mxm", Kind: OOM}}, true},
		{"exact fuse site", []Rule{{Site: "fuse.kernel.map", Kind: OOM}}, false},
		{"fuse glob", []Rule{{Site: "fuse.kernel.*", Kind: KernelErr}}, false},
		{"fuse prefix glob", []Rule{{Site: "fuse.*", Kind: KernelErr}}, false},
		{"mixed plan", []Rule{{Site: "fuse.kernel.map", Kind: OOM}, {Site: "ApplyV", Kind: OOM}}, true},
	}
	for _, tc := range cases {
		Configure(1, tc.rules...)
		if got := PlanCoversSitesOutside("fuse."); got != tc.want {
			t.Errorf("%s: PlanCoversSitesOutside(fuse.) = %v, want %v", tc.name, got, tc.want)
		}
	}
	Disable()
	if PlanCoversSitesOutside("fuse.") {
		t.Error("no plan installed: PlanCoversSitesOutside must be false")
	}
}

package generate

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket: arbitrary text must parse cleanly or error cleanly —
// no panics, and anything parsed must be in-bounds.
func FuzzReadMatrixMarket(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMatrixMarket(&buf, ErdosRenyiGnm(6, 10, 1))
	f.Add(buf.String())
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n3 3 1\n1 1 2.5\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 -7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999999999999999 2 1\n1 1 1\n")

	f.Fuzz(func(t *testing.T, input string) {
		g, hdr, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N < 0 || hdr.Rows < 0 || hdr.Cols < 0 {
			t.Fatalf("negative dimensions parsed: %+v", hdr)
		}
		for _, e := range g.Edges {
			if e.Src < 0 || e.Src >= g.N || e.Dst < 0 || e.Dst >= g.N {
				t.Fatalf("edge out of range: %+v (n=%d)", e, g.N)
			}
		}
		// Round-trip what we parsed.
		var out bytes.Buffer
		if err := WriteMatrixMarket(&out, g); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
	})
}

package generate

import "sort"

// Edge is one directed edge with weight.
type Edge struct {
	Src, Dst int
	Weight   float64
}

// Graph is an edge list with a vertex count — the neutral interchange form
// the generators produce and the GraphBLAS/baseline layers both consume.
type Graph struct {
	N     int
	Edges []Edge
}

// Tuples returns parallel coordinate arrays for GraphBLAS Build calls.
func (g *Graph) Tuples() (rows, cols []int, weights []float64) {
	rows = make([]int, len(g.Edges))
	cols = make([]int, len(g.Edges))
	weights = make([]float64, len(g.Edges))
	for k, e := range g.Edges {
		rows[k], cols[k], weights[k] = e.Src, e.Dst, e.Weight
	}
	return rows, cols, weights
}

// Dedup removes duplicate (src, dst) pairs, keeping the first weight, and
// drops self-loops if dropLoops is set. Returns g for chaining.
func (g *Graph) Dedup(dropLoops bool) *Graph {
	sort.Slice(g.Edges, func(a, b int) bool {
		ea, eb := g.Edges[a], g.Edges[b]
		if ea.Src != eb.Src {
			return ea.Src < eb.Src
		}
		return ea.Dst < eb.Dst
	})
	out := g.Edges[:0]
	for _, e := range g.Edges {
		if dropLoops && e.Src == e.Dst {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Src == e.Src && out[n-1].Dst == e.Dst {
			continue
		}
		out = append(out, e)
	}
	g.Edges = out
	return g
}

// Symmetrize adds the reverse of every edge (making the graph undirected as
// a symmetric matrix) and dedups. Returns g for chaining.
func (g *Graph) Symmetrize() *Graph {
	rev := make([]Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		rev = append(rev, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	g.Edges = append(g.Edges, rev...)
	return g.Dedup(false)
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	deg := make([]int, g.N)
	best := 0
	for _, e := range g.Edges {
		deg[e.Src]++
		if deg[e.Src] > best {
			best = deg[e.Src]
		}
	}
	return best
}

// RMAT generates a Graph500-style recursive-matrix (Kronecker) graph with
// 2^scale vertices and edgeFactor × 2^scale edges using the standard
// partition probabilities a=0.57, b=0.19, c=0.19, d=0.05. Weights are
// uniform in [1, 2). Duplicates and self-loops are retained, matching the
// benchmark's raw stream; call Dedup to clean.
func RMAT(scale, edgeFactor int, seed uint64) *Graph {
	return RMATParams(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// RMATParams is RMAT with explicit a, b, c partition probabilities
// (d = 1-a-b-c).
func RMATParams(scale, edgeFactor int, a, b, c float64, seed uint64) *Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := NewRNG(seed)
	g := &Graph{N: n, Edges: make([]Edge, 0, m)}
	ab := a + b
	abc := a + b + c
	for k := 0; k < m; k++ {
		src, dst := 0, 0
		for bit := 1 << uint(scale-1); bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left quadrant
			case r < ab:
				dst |= bit
			case r < abc:
				src |= bit
			default:
				src |= bit
				dst |= bit
			}
		}
		g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Weight: 1 + rng.Float64()})
	}
	return g
}

// ErdosRenyiGnm generates a uniform random directed graph with exactly m
// distinct edges (no self-loops), weights uniform in [1, 2).
func ErdosRenyiGnm(n, m int, seed uint64) *Graph {
	rng := NewRNG(seed)
	g := &Graph{N: n}
	if max := n * (n - 1); m > max {
		m = max
	}
	seen := make(map[int64]bool, m)
	for len(g.Edges) < m {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		k := int64(s)*int64(n) + int64(d)
		if seen[k] {
			continue
		}
		seen[k] = true
		g.Edges = append(g.Edges, Edge{Src: s, Dst: d, Weight: 1 + rng.Float64()})
	}
	return g
}

// ErdosRenyiGnp generates G(n, p): each ordered pair (no self-loops)
// independently with probability p.
func ErdosRenyiGnp(n int, p float64, seed uint64) *Graph {
	rng := NewRNG(seed)
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.Edges = append(g.Edges, Edge{Src: i, Dst: j, Weight: 1 + rng.Float64()})
			}
		}
	}
	return g
}

// Path generates the directed path 0→1→…→n-1 with unit weights.
func Path(n int) *Graph {
	g := &Graph{N: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, Weight: 1})
	}
	return g
}

// Cycle generates the directed cycle on n vertices with unit weights.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 1 {
		g.Edges = append(g.Edges, Edge{Src: n - 1, Dst: 0, Weight: 1})
	}
	return g
}

// Complete generates the complete directed graph (no self-loops).
func Complete(n int) *Graph {
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Edges = append(g.Edges, Edge{Src: i, Dst: j, Weight: 1})
			}
		}
	}
	return g
}

// Star generates the star with center 0 and edges in both directions.
func Star(n int) *Graph {
	g := &Graph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, Edge{Src: 0, Dst: i, Weight: 1}, Edge{Src: i, Dst: 0, Weight: 1})
	}
	return g
}

// Grid2D generates the rows×cols grid with 4-neighbor connectivity, edges
// in both directions, unit weights. Vertex (r, c) has index r*cols + c.
func Grid2D(rows, cols int) *Graph {
	g := &Graph{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges,
					Edge{Src: id(r, c), Dst: id(r, c+1), Weight: 1},
					Edge{Src: id(r, c+1), Dst: id(r, c), Weight: 1})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges,
					Edge{Src: id(r, c), Dst: id(r+1, c), Weight: 1},
					Edge{Src: id(r+1, c), Dst: id(r, c), Weight: 1})
			}
		}
	}
	return g
}

// BinaryTree generates a complete binary tree of the given depth with edges
// in both directions (so traversals from the root reach everything and
// back). Depth 0 is a single vertex.
func BinaryTree(depth int) *Graph {
	n := (1 << uint(depth+1)) - 1
	g := &Graph{N: n}
	for i := 1; i < n; i++ {
		p := (i - 1) / 2
		g.Edges = append(g.Edges, Edge{Src: p, Dst: i, Weight: 1}, Edge{Src: i, Dst: p, Weight: 1})
	}
	return g
}

// Bipartite generates a random bipartite graph: left vertices [0, l),
// right vertices [l, l+r), each left-right pair with probability p, edges
// directed left→right.
func Bipartite(l, r int, p float64, seed uint64) *Graph {
	rng := NewRNG(seed)
	g := &Graph{N: l + r}
	for i := 0; i < l; i++ {
		for j := 0; j < r; j++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, Edge{Src: i, Dst: l + j, Weight: 1 + rng.Float64()})
			}
		}
	}
	return g
}

package generate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market coordinate-format I/O, the interchange format of the sparse
// matrix community (and of SuiteSparse collection graphs). Supported:
// matrix coordinate {real | integer | pattern} {general | symmetric}.

// MMHeader describes a parsed Matrix Market banner plus size line.
type MMHeader struct {
	Field     string // "real", "integer", or "pattern"
	Symmetric bool
	Rows      int
	Cols      int
	NNZ       int
}

// ReadMatrixMarket parses a coordinate-format Matrix Market stream into a
// Graph (1-based indices converted to 0-based). Pattern matrices get unit
// weights; symmetric matrices are expanded to both triangles.
func ReadMatrixMarket(r io.Reader) (*Graph, *MMHeader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("mmio: empty input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return nil, nil, fmt.Errorf("mmio: unsupported banner %q", sc.Text())
	}
	h := &MMHeader{Field: banner[3]}
	switch banner[3] {
	case "real", "integer", "pattern":
	default:
		return nil, nil, fmt.Errorf("mmio: unsupported field %q", banner[3])
	}
	switch banner[4] {
	case "general":
	case "symmetric":
		h.Symmetric = true
	default:
		return nil, nil, fmt.Errorf("mmio: unsupported symmetry %q", banner[4])
	}
	// Skip comments, read the size line.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("mmio: bad size line %q", line)
		}
		var err error
		if h.Rows, err = strconv.Atoi(parts[0]); err != nil {
			return nil, nil, fmt.Errorf("mmio: bad row count: %w", err)
		}
		if h.Cols, err = strconv.Atoi(parts[1]); err != nil {
			return nil, nil, fmt.Errorf("mmio: bad col count: %w", err)
		}
		if h.NNZ, err = strconv.Atoi(parts[2]); err != nil {
			return nil, nil, fmt.Errorf("mmio: bad nnz count: %w", err)
		}
		break
	}
	if h.Rows < 0 || h.Cols < 0 || h.NNZ < 0 {
		return nil, nil, fmt.Errorf("mmio: negative size line %dx%d nnz %d", h.Rows, h.Cols, h.NNZ)
	}
	n := h.Rows
	if h.Cols > n {
		n = h.Cols
	}
	// Preallocate against the declared count but bounded, so a hostile
	// header cannot demand memory the stream does not back.
	prealloc := h.NNZ
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	g := &Graph{N: n, Edges: make([]Edge, 0, prealloc)}
	read := 0
	// Condition order matters: testing read first means the scanner stops
	// exactly at the declared count instead of consuming (and discarding)
	// the line after it.
	for read < h.NNZ && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) < 2 {
			return nil, nil, fmt.Errorf("mmio: bad entry %q", line)
		}
		i, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, nil, fmt.Errorf("mmio: bad row index %q", parts[0])
		}
		j, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, nil, fmt.Errorf("mmio: bad col index %q", parts[1])
		}
		if i < 1 || i > h.Rows || j < 1 || j > h.Cols {
			return nil, nil, fmt.Errorf("mmio: index (%d,%d) outside %dx%d", i, j, h.Rows, h.Cols)
		}
		w := 1.0
		if h.Field != "pattern" {
			if len(parts) < 3 {
				return nil, nil, fmt.Errorf("mmio: missing value in %q", line)
			}
			if w, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, nil, fmt.Errorf("mmio: bad value %q", parts[2])
			}
		}
		g.Edges = append(g.Edges, Edge{Src: i - 1, Dst: j - 1, Weight: w})
		if h.Symmetric && i != j {
			g.Edges = append(g.Edges, Edge{Src: j - 1, Dst: i - 1, Weight: w})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("mmio: %w", err)
	}
	if read != h.NNZ {
		return nil, nil, fmt.Errorf("mmio: expected %d entries, found %d", h.NNZ, read)
	}
	// Data lines beyond the declared count mean the header undercounts;
	// silently dropping them would truncate the graph.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return nil, nil, fmt.Errorf("mmio: trailing entry %q after the declared %d", line, h.NNZ)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("mmio: %w", err)
	}
	return g, h, nil
}

// WriteMatrixMarket writes a graph as a general real coordinate matrix with
// n rows and columns.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		g.N, g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src+1, e.Dst+1, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMatrixMarketPattern writes the structure only (pattern field).
func WriteMatrixMarketPattern(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%d %d %d\n",
		g.N, g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Src+1, e.Dst+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

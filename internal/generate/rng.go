// Package generate provides deterministic graph workload generators — the
// Graph500-style RMAT/Kronecker generator the SSCA benchmarks use, Erdős–
// Rényi models, and regular families — plus Matrix Market I/O. All
// generators are seeded and reproducible, standing in for the proprietary
// social-network inputs the GraphBLAS literature evaluates on (see
// DESIGN.md, substitutions).
package generate

// RNG is a small, fast, deterministic xoshiro256** generator so results do
// not depend on Go's math/rand version.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator with splitmix64 expansion of the given seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("generate: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package generate

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too similar: %d matches", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("perm repeats")
		}
		seen[v] = true
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(8, 8, 1)
	if g.N != 256 {
		t.Fatalf("n %d", g.N)
	}
	if len(g.Edges) != 8*256 {
		t.Fatalf("edges %d", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= g.N || e.Dst < 0 || e.Dst >= g.N {
			t.Fatalf("edge out of range: %+v", e)
		}
		if e.Weight < 1 || e.Weight >= 2 {
			t.Fatalf("weight out of range: %v", e.Weight)
		}
	}
	// Determinism.
	h := RMAT(8, 8, 1)
	for k := range g.Edges {
		if g.Edges[k] != h.Edges[k] {
			t.Fatal("RMAT not deterministic")
		}
	}
	// Skew: RMAT should concentrate degree far above the uniform model.
	if g.Dedup(true); g.MaxDegree() < 16 {
		t.Fatalf("suspiciously uniform RMAT: max degree %d", g.MaxDegree())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyiGnm(100, 500, 9)
	if len(g.Edges) != 500 {
		t.Fatalf("Gnm edges %d", len(g.Edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop")
		}
		k := [2]int{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate edge in Gnm")
		}
		seen[k] = true
	}
	// Saturation clamp.
	small := ErdosRenyiGnm(3, 100, 1)
	if len(small.Edges) != 6 {
		t.Fatalf("clamped Gnm edges %d", len(small.Edges))
	}
	gp := ErdosRenyiGnp(60, 0.1, 5)
	want := 0.1 * 60 * 59
	if f := float64(len(gp.Edges)); f < want*0.6 || f > want*1.4 {
		t.Fatalf("Gnp edges %v, expect near %v", f, want)
	}
}

func TestRegularFamilies(t *testing.T) {
	if g := Path(5); len(g.Edges) != 4 || g.N != 5 {
		t.Fatal("path")
	}
	if g := Cycle(5); len(g.Edges) != 5 {
		t.Fatal("cycle")
	}
	if g := Complete(5); len(g.Edges) != 20 {
		t.Fatal("complete")
	}
	if g := Star(5); len(g.Edges) != 8 {
		t.Fatal("star")
	}
	if g := Grid2D(3, 4); g.N != 12 || len(g.Edges) != 2*(3*3+2*4) {
		t.Fatalf("grid edges %d", len(g.Edges))
	}
	if g := BinaryTree(3); g.N != 15 || len(g.Edges) != 28 {
		t.Fatalf("tree n=%d edges=%d", g.N, len(g.Edges))
	}
	if g := Bipartite(4, 6, 1.0, 1); g.N != 10 || len(g.Edges) != 24 {
		t.Fatalf("bipartite edges %d", len(g.Edges))
	}
	for _, e := range Bipartite(4, 6, 1.0, 1).Edges {
		if e.Src >= 4 || e.Dst < 4 {
			t.Fatalf("bipartite direction: %+v", e)
		}
	}
}

func TestDedupSymmetrize(t *testing.T) {
	g := &Graph{N: 4, Edges: []Edge{
		{0, 1, 1}, {0, 1, 2}, {1, 0, 3}, {2, 2, 1}, {3, 1, 1},
	}}
	d := g.Dedup(true)
	if len(d.Edges) != 3 { // (0,1), (1,0), (3,1); loop dropped, dup dropped
		t.Fatalf("dedup edges %v", d.Edges)
	}
	s := (&Graph{N: 3, Edges: []Edge{{0, 1, 1}, {1, 2, 1}}}).Symmetrize()
	if len(s.Edges) != 4 {
		t.Fatalf("symmetrize edges %v", s.Edges)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := ErdosRenyiGnm(30, 100, seed)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			return false
		}
		h, hdr, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		if hdr.Rows != 30 || hdr.NNZ != 100 || hdr.Field != "real" || hdr.Symmetric {
			return false
		}
		if h.N != g.N || len(h.Edges) != len(g.Edges) {
			return false
		}
		for k := range g.Edges {
			if g.Edges[k] != h.Edges[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketPatternAndSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`
	g, hdr, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !hdr.Symmetric || hdr.Field != "pattern" {
		t.Fatalf("header %+v", hdr)
	}
	if len(g.Edges) != 4 { // symmetric expansion
		t.Fatalf("edges %v", g.Edges)
	}
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Fatalf("pattern weight %v", e.Weight)
		}
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarketPattern(&buf, g); err != nil {
		t.Fatalf("write pattern: %v", err)
	}
	if !strings.Contains(buf.String(), "pattern general") {
		t.Fatalf("pattern banner missing: %s", buf.String())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1.5\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
	}
	for i, in := range cases {
		if _, _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: error expected", i)
		}
	}
}

func TestMatrixMarketTrailingEntries(t *testing.T) {
	// Entries beyond the declared nnz were silently dropped (the read loop
	// stopped consuming at the count); they must be an error.
	for i, in := range []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n2 2 2.5\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n\n% note\n2 2 2.5\n",
	} {
		if _, _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil ||
			!strings.Contains(err.Error(), "trailing entry") {
			t.Fatalf("case %d: trailing-entry error expected, got %v", i, err)
		}
	}
	// Trailing blanks and comments alone stay legal.
	in := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n\n% trailing comment\n"
	g, h, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("trailing comment rejected: %v", err)
	}
	if h.NNZ != 1 || len(g.Edges) != 1 {
		t.Fatalf("got nnz %d edges %d", h.NNZ, len(g.Edges))
	}
}

package shard_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"graphblas/internal/core"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

// TestShardedIngestDuringQueryRace hammers one sharded store from a writer
// goroutine (streamed batches through the all-shards-or-none commit) while
// reader goroutines compose snapshots and run scatter-gather queries — the
// coordinator-level interleavings (wseq seqlock, snapshot cache, per-shard
// engine queues) the race detector must find clean. Runs at GOMAXPROCS 1
// and 4 under both flush schedulers; shard engines inherit the scheduler
// active at store creation.
func TestShardedIngestDuringQueryRace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		procs int
		sched core.Scheduler
	}{
		{"Sequential1", 1, core.SchedSequential},
		{"Sequential4", 4, core.SchedSequential},
		{"Dag1", 1, core.SchedDag},
		{"Dag4", 4, core.SchedDag},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(tc.procs))
			prevSched := core.SetScheduler(tc.sched)
			defer core.SetScheduler(prevSched)

			const n = 64
			store := newSharded(t, n, 4, shard.Block)
			seed := stream.NewBatch[float64]()
			for i := 0; i < n-1; i++ {
				seed.Insert(i, i+1, 1)
			}
			if err := store.Ingest(seed); err != nil {
				t.Fatal(err)
			}
			// Prime the composed-snapshot cache: with a last-good snapshot in
			// place, a composition torn by the concurrent writer degrades to
			// the stale fallback instead of erroring out.
			if _, _, err := store.Snapshot(context.Background()); err != nil {
				t.Fatal(err)
			}

			const (
				writes  = 30
				readers = 3
			)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errCh := make(chan error, readers+1)

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(stop)
				for w := 0; w < writes; w++ {
					b := stream.NewBatch[float64]()
					for k := 0; k < 8; k++ {
						i := (w*13 + k*7) % n
						j := (w*5 + k*11) % n
						if (w+k)%5 == 0 {
							b.Delete(i, j)
						} else {
							b.Insert(i, j, float64(k+1))
						}
					}
					if err := store.Ingest(b); err != nil && !errors.Is(err, shard.ErrBackpressure) {
						errCh <- err
						return
					}
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					src := (r * 17) % n
					for {
						select {
						case <-stop:
							return
						default:
						}
						snap, _, err := store.Snapshot(context.Background())
						if err != nil {
							errCh <- err
							return
						}
						if _, err := shard.KHop(context.Background(), snap, src, 2); err != nil {
							errCh <- err
							return
						}
						if _, err := shard.Degree(context.Background(), snap, src); err != nil {
							errCh <- err
							return
						}
						if _, _, _, err := snap.Tuples(); err != nil {
							errCh <- err
							return
						}
					}
				}(r)
			}

			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Errorf("concurrent op: %v", err)
			}
			if err := store.Drain(context.Background()); err != nil {
				t.Fatalf("drain: %v", err)
			}
		})
	}
}

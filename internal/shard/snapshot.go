package shard

import (
	"context"
	"sort"
	"sync"

	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// Snapshot is one consistent composed read view: every shard's epoch pinned
// at a single acknowledged version. Queries run against the snapshot's
// per-shard matrices (each immutable, each bound to its shard's engine), so
// a request observes one atomic prefix of the acknowledged update stream no
// matter how the writer churns.
type Snapshot struct {
	// Version is the acknowledged store version the composition is keyed by —
	// also the epoch token served to clients (Epoch), since per-shard epoch
	// counters advance independently and no single one names the composed
	// state.
	Version uint64
	// Epochs records each shard's streaming epoch at pin time.
	Epochs []uint64
	// N is the global vertex-space dimension; NVals the global stored-edge
	// count (sum of per-shard pinned counts — rows partition, so exact).
	N     int
	NVals int

	plan  Plan
	mats  []*core.Matrix[float64] // per-shard pinned LocalRows(s)×N adjacency
	insts []*core.Instance        // the owning engines, for query-side objects

	mu     sync.Mutex
	sym    *core.Matrix[bool] // lazily gathered global symmetrized pattern
	outdeg []float64          // lazily gathered global out-degrees
}

// Epoch returns the token a response names its consistent state by.
func (snap *Snapshot) Epoch() uint64 { return snap.Version }

// ShardCount reports the composition width.
func (snap *Snapshot) ShardCount() int { return len(snap.mats) }

// Snapshot returns a composed snapshot of the current acknowledged state.
// The second result reports staleness: when the store is frozen by a partial
// ingest failure, a writer keeps tearing the composition, or a shard cannot
// be pinned, the coordinator degrades to the last good composed snapshot
// rather than failing the request. With no fallback the error surfaces for
// the retry layer.
func (st *Store) Snapshot(ctx context.Context) (*Snapshot, bool, error) {
	if ctx != nil && ctx.Err() != nil {
		return st.fallback(ctx.Err())
	}
	var lastErr error
	for attempt := 0; attempt < snapshotAttempts; attempt++ {
		s1 := st.wseq.Load()
		if s1&1 == 1 {
			// A shard-mutating write is in flight; composing now could pin
			// shards on both sides of it.
			lastErr = errTorn("writer in flight")
			continue
		}
		v := st.version.Load()
		st.mu.Lock()
		frozen, cur := st.frozen, st.cur
		st.mu.Unlock()
		if frozen {
			return st.fallback(errTorn("store frozen by partial ingest failure"))
		}
		if cur != nil && cur.Version == v {
			return cur, false, nil
		}
		snap, err := st.materialize(ctx)
		if err != nil {
			return st.fallback(err)
		}
		if st.wseq.Load() != s1 {
			lastErr = errTorn("write landed mid-composition")
			continue
		}
		snap.Version = v
		st.mu.Lock()
		st.cur, st.last = snap, snap
		st.mu.Unlock()
		return snap, false, nil
	}
	return st.fallback(lastErr)
}

// errTorn classifies a torn or blocked composition as InvalidObject — the
// transient "poisoned by concurrent activity" class the retry ladder already
// re-attempts.
func errTorn(msg string) error {
	return &core.Error{Info: core.InvalidObject, Op: "shard.Snapshot", Msg: msg}
}

// materialize pins every shard's epoch concurrently and builds the per-shard
// snapshot matrices, each inside its own engine.
func (st *Store) materialize(ctx context.Context) (*Snapshot, error) {
	k := len(st.shards)
	snap := &Snapshot{
		N:      st.cfg.N,
		plan:   st.plan,
		Epochs: make([]uint64, k),
		mats:   make([]*core.Matrix[float64], k),
		insts:  make([]*core.Instance, k),
	}
	errs := make([]error, k)
	nvals := make([]int, k)
	var wg sync.WaitGroup
	for i, sh := range st.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			ep, err := sh.m.PinEpoch()
			if err != nil {
				errs[i] = err
				return
			}
			rows, cols, vals := ep.Tuples()
			mat, err := core.NewMatrixIn[float64](sh.inst, st.plan.LocalRows(sh.id), st.cfg.N)
			if err != nil {
				errs[i] = err
				return
			}
			if err := mat.Build(rows, cols, vals, core.NoAccum[float64]()); err != nil {
				errs[i] = err
				return
			}
			if err := sh.inst.WaitContext(ctx); err != nil {
				errs[i] = err
				return
			}
			snap.Epochs[i] = ep.ID()
			nvals[i] = ep.NVals()
			snap.mats[i] = mat
			snap.insts[i] = sh.inst
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, nv := range nvals {
		snap.NVals += nv
	}
	return snap, nil
}

// fallback degrades to the last good composed snapshot, or surfaces err.
func (st *Store) fallback(err error) (*Snapshot, bool, error) {
	st.mu.Lock()
	last := st.last
	st.mu.Unlock()
	if last != nil {
		return last, true, nil
	}
	return nil, false, err
}

// Tuples gathers the composed snapshot's global (row, col, value) triples in
// row-major order — the sharded analogue of Matrix.ExtractTuples. The
// differential suite uses it to hold the sharded store to tuple-level
// equivalence with a single engine.
func (snap *Snapshot) Tuples() ([]int, []int, []float64, error) {
	var ri, ci []int
	var vv []float64
	for s, mat := range snap.mats {
		rows, cols, vals, err := mat.ExtractTuples()
		if err != nil {
			return nil, nil, nil, err
		}
		for t := range rows {
			ri = append(ri, snap.plan.Global(s, rows[t]))
			ci = append(ci, cols[t])
			vv = append(vv, vals[t])
		}
	}
	ord := make([]int, len(ri))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if ri[ord[a]] != ri[ord[b]] {
			return ri[ord[a]] < ri[ord[b]]
		}
		return ci[ord[a]] < ci[ord[b]]
	})
	sr := make([]int, len(ord))
	sc := make([]int, len(ord))
	sv := make([]float64, len(ord))
	for i, o := range ord {
		sr[i], sc[i], sv[i] = ri[o], ci[o], vv[o]
	}
	return sr, sc, sv, nil
}

// Sym returns the snapshot's global symmetrized, loop-free boolean pattern,
// gathering every shard's pinned tuples (rows translated to global indices)
// and building the pattern in the coordinator's context — the reduction
// pattern sharded stats uses so the triangle kernel consumes exactly the
// matrix a single engine would. Built once per snapshot.
func (snap *Snapshot) Sym(ctx context.Context) (*core.Matrix[bool], error) {
	snap.mu.Lock()
	defer snap.mu.Unlock()
	if snap.sym != nil {
		return snap.sym, nil
	}
	var si, sj []int
	var sv []bool
	for s, mat := range snap.mats {
		rows, cols, _, err := mat.ExtractTuples()
		if err != nil {
			return nil, err
		}
		for t := range rows {
			g := snap.plan.Global(s, rows[t])
			if g == cols[t] {
				continue
			}
			si = append(si, g, cols[t])
			sj = append(sj, cols[t], g)
			sv = append(sv, true, true)
		}
	}
	sym, err := core.NewMatrix[bool](snap.N, snap.N)
	if err != nil {
		return nil, err
	}
	if err := sym.Build(si, sj, sv, builtins.LOr()); err != nil {
		return nil, err
	}
	if err := core.WaitContext(ctx); err != nil {
		return nil, err
	}
	snap.sym = sym
	return sym, nil
}

// outdegrees returns the global out-degree vector, computed shard-parallel
// (each shard reduces its own row block inside its engine) and gathered once
// per snapshot. Out-degrees are whole counts, so the float64 values are
// exact at any shard count.
func (snap *Snapshot) outdegrees(ctx context.Context) ([]float64, error) {
	snap.mu.Lock()
	defer snap.mu.Unlock()
	if snap.outdeg != nil {
		return snap.outdeg, nil
	}
	deg := make([]float64, snap.N)
	errs := make([]error, len(snap.mats))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := range snap.mats {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			idx, vals, err := snap.shardOutdeg(ctx, s)
			if err != nil {
				errs[s] = err
				return
			}
			mu.Lock()
			for t := range idx {
				deg[snap.plan.Global(s, idx[t])] = vals[t]
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	snap.outdeg = deg
	return deg, nil
}

// shardOutdeg reduces one shard's row block to its local out-degree vector,
// inside that shard's engine.
func (snap *Snapshot) shardOutdeg(ctx context.Context, s int) ([]int, []float64, error) {
	inst := snap.insts[s]
	rows := snap.plan.LocalRows(s)
	ones, err := core.NewMatrixIn[float64](inst, rows, snap.N)
	if err != nil {
		return nil, nil, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[float64](), builtins.One[float64](), snap.mats[s], nil); err != nil {
		return nil, nil, err
	}
	od, err := core.NewVectorIn[float64](inst, rows)
	if err != nil {
		return nil, nil, err
	}
	if err := core.ReduceMatrixToVector(od, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, nil, err
	}
	if err := inst.WaitContext(ctx); err != nil {
		return nil, nil, err
	}
	idx, vals, err := od.ExtractTuples()
	if err != nil {
		return nil, nil, err
	}
	return idx, vals, nil
}

// Fault-injection tests for the shard coordinator: the shard.kernel.* sites
// must fail cleanly (reject-without-applying on the write path, transient
// error on the read path), and a partial per-shard commit failure must leave
// the store frozen-but-convergent — the redo queue replays the missing
// sub-batches before anything newer is acknowledged, and the final state is
// what a single engine would hold after the same acknowledged sequence.
package shard_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

// TestShardRouteFaultCleanReject: a fault at shard.kernel.route rejects the
// batch before any shard sees it — version unchanged, nothing frozen, no
// redo debt — and the same batch applies cleanly once the fault passes.
func TestShardRouteFaultCleanReject(t *testing.T) {
	store := newSharded(t, 32, 4, shard.Block)
	v0 := store.Version()

	faults.Configure(1, faults.Rule{Site: "shard.kernel.route", Kind: faults.KernelErr, Times: 1})
	defer faults.Disable()

	b := stream.NewBatch[float64]()
	b.Insert(1, 2, 1)
	b.Insert(30, 3, 1)
	err := store.Ingest(b)
	if err == nil {
		t.Fatal("faulted route did not error")
	}
	if core.InfoOf(err) != core.PanicInfo {
		t.Fatalf("route fault class = %v, want PanicInfo", core.InfoOf(err))
	}
	if errors.Is(err, shard.ErrIndeterminate) {
		t.Fatal("route fault misclassified as indeterminate — the batch never reached a shard")
	}
	if store.Version() != v0 || store.Frozen() || store.RedoDepth() != 0 {
		t.Fatalf("clean reject left state: version %d→%d frozen=%v redo=%d",
			v0, store.Version(), store.Frozen(), store.RedoDepth())
	}

	if err := store.Ingest(b); err != nil {
		t.Fatalf("retry after fault window: %v", err)
	}
	snap, _, err := store.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.NVals != 2 {
		t.Fatalf("NVals = %d after clean retry, want 2", snap.NVals)
	}
}

// TestShardGatherFaultTransient: a fault at shard.kernel.gather surfaces as
// a transient kernel error on the query path and the same query succeeds
// once the fault passes — the contract the serving retry ladder relies on.
func TestShardGatherFaultTransient(t *testing.T) {
	b := stream.NewBatch[float64]()
	b.Insert(0, 1, 1)
	b.Insert(1, 2, 1)
	b.Insert(2, 3, 1)
	store := newSharded(t, 16, 4, shard.Block, b)
	snap, _, err := store.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faults.Configure(2, faults.Rule{Site: "shard.kernel.gather", Kind: faults.KernelErr, Times: 1})
	defer faults.Disable()

	if _, err := shard.KHop(context.Background(), snap, 0, 3); err == nil {
		t.Fatal("faulted gather did not error")
	} else if core.InfoOf(err) != core.PanicInfo {
		t.Fatalf("gather fault class = %v, want PanicInfo", core.InfoOf(err))
	}
	got, err := shard.KHop(context.Background(), snap, 0, 3)
	if err != nil {
		t.Fatalf("KHop after fault window: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("KHop = %v, want the 4-vertex chain", got)
	}
}

// TestShardGatherGovernorOOM: the allocation governor denies an oversized
// partial-result gather with an OutOfMemory-class error before the
// accumulation runs.
func TestShardGatherGovernorOOM(t *testing.T) {
	b := stream.NewBatch[float64]()
	for i := 0; i < 15; i++ {
		b.Insert(i, i+1, 1)
	}
	store := newSharded(t, 16, 2, shard.Block, b)
	snap, _, err := store.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	prev := faults.SetAllocBudget(8)
	defer faults.SetAllocBudget(prev)

	_, err = shard.KHop(context.Background(), snap, 0, 15)
	if err == nil {
		t.Fatal("governed gather did not error")
	}
	if core.InfoOf(err) != core.OutOfMemory {
		t.Fatalf("governor fault class = %v, want OutOfMemory", core.InfoOf(err))
	}
}

// TestShardPartialFailureRedoConvergence drives randomized absorb faults
// through the all-shards-or-none commit: unacknowledged batches freeze the
// store (reads stay pinned to the last acknowledged composed snapshot) and
// queue their failed sub-batches for redo; once faults stop, the next write
// drains the redo queue first, and the final state is tuple-identical to a
// single engine that applied every batch that entered the store, in order.
func TestShardPartialFailureRedoConvergence(t *testing.T) {
	const n = 48
	store := newSharded(t, n, 4, shard.Block)

	// Seed state + a baseline snapshot for the frozen-reads check.
	seed := stream.NewBatch[float64]()
	for i := 0; i < n-1; i++ {
		seed.Insert(i, i+1, 1)
	}
	if err := store.Ingest(seed); err != nil {
		t.Fatal(err)
	}
	base, stale, err := store.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("baseline snapshot: stale=%v err=%v", stale, err)
	}

	// Batches the store actually accepted (acknowledged or indeterminate) —
	// the sequence the oracle must replay. Clean rejects are excluded: the
	// store guarantees they touched nothing.
	entered := []*stream.Batch[float64]{seed}

	faults.Configure(99, faults.Rule{Site: "stream.kernel.absorb", Kind: faults.KernelErr, Prob: 0.5})
	rng := rand.New(rand.NewSource(4))
	sawIndeterminate := false
	for bi := 0; bi < 12; bi++ {
		b := stream.NewBatch[float64]()
		for k := 0; k < 40; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if rng.Intn(5) == 0 {
				b.Delete(i, j)
			} else {
				b.Insert(i, j, float64(rng.Intn(7)+1))
			}
		}
		err := store.Ingest(b)
		switch {
		case err == nil:
			entered = append(entered, b)
		case errors.Is(err, shard.ErrIndeterminate):
			sawIndeterminate = true
			entered = append(entered, b)
			if !store.Frozen() {
				t.Fatal("indeterminate ingest left the store unfrozen")
			}
			// Frozen reads degrade to the last acknowledged composition.
			snap, stale, serr := store.Snapshot(context.Background())
			if serr != nil {
				t.Fatalf("frozen snapshot: %v", serr)
			}
			if !stale {
				t.Fatal("frozen store served a fresh snapshot")
			}
			if snap.Epoch() < base.Epoch() {
				t.Fatalf("stale fallback went backwards: %d < %d", snap.Epoch(), base.Epoch())
			}
		case errors.Is(err, shard.ErrRedoBlocked):
			// Clean reject: the redo drain itself faulted before this batch
			// was routed anywhere. Not part of the oracle sequence.
		default:
			t.Fatalf("unexpected ingest error: %v", err)
		}
	}
	faults.Disable()
	if !sawIndeterminate {
		t.Fatal("fault plan never produced a partial failure; raise Prob or batches")
	}

	// First clean write drains the redo queue and unfreezes.
	final := stream.NewBatch[float64]()
	final.Insert(0, n-1, 5)
	if err := store.Ingest(final); err != nil {
		t.Fatalf("post-fault ingest: %v", err)
	}
	entered = append(entered, final)
	if store.Frozen() || store.RedoDepth() != 0 {
		t.Fatalf("store did not converge: frozen=%v redo=%d", store.Frozen(), store.RedoDepth())
	}

	oracle := newOracle(t, n, entered...)
	osnap, stale, err := oracle.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("oracle snapshot: stale=%v err=%v", stale, err)
	}
	or, oc, ov, err := osnap.Mat.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	snap, stale, err := store.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("converged snapshot: stale=%v err=%v", stale, err)
	}
	sr, sc, sv, err := snap.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != len(or) {
		t.Fatalf("converged store holds %d tuples, oracle %d", len(sr), len(or))
	}
	for k := range sr {
		if sr[k] != or[k] || sc[k] != oc[k] || sv[k] != ov[k] {
			t.Fatalf("tuple %d = (%d,%d,%g), oracle (%d,%d,%g)",
				k, sr[k], sc[k], sv[k], or[k], oc[k], ov[k])
		}
	}
}

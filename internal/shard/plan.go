// Package shard is the horizontal-sharding layer: a row-partitioned
// multi-engine graph store in which every shard owns a fully independent
// execution engine (core.Instance — its own nonblocking queue, hazard-DAG
// scheduler, flush lock, and error log) holding one localRows×N slice of the
// adjacency. The coordinator routes streamed update batches to shards by
// source row and answers serving queries by scatter-gather: a global frontier
// or rank vector is dealt to the owning shards, each shard runs its slice of
// the GraphBLAS kernel (VxM, reductions) inside its own engine, and the
// coordinator combines the partial results in fixed shard order.
//
// Consistency model. Ingest is all-shards-or-none at the acknowledgement
// boundary: a batch is acknowledged only after every owning shard has
// committed its sub-batch. A partial failure leaves the store frozen — reads
// keep serving the last fully-committed composed snapshot — and the failed
// sub-batches queue for redo; the next write first drains the redo queue, so
// the store converges to containing whole batches before anything newer is
// acknowledged. Sub-batches inherit the streaming layer's last-wins
// semantics, which makes redo idempotent.
//
// Exactness. Row partitioning splits no GraphBLAS reduction within a row, so
// k-hop frontiers, triangle/stats reductions, degrees, and streamed ingest
// are tuple-identical to a single-engine execution at any shard count. PPR
// regroups cross-shard float additions in the coordinator's fixed-order
// gather, so its scores agree with a single engine to summation tolerance
// (CONFORMANCE.md documents the bound); iteration counts agree on the same
// convergence path.
package shard

import "fmt"

// Strategy selects how global rows map to shards.
type Strategy uint8

const (
	// Block assigns contiguous row ranges: shard s owns rows
	// [bounds[s], bounds[s+1]). Preserves row locality, the right default
	// for RMAT-like graphs ingested in row order.
	Block Strategy = iota
	// Hash stripes rows across shards: shard s owns rows ≡ s (mod Shards).
	// Spreads skewed row distributions at the cost of locality.
	Hash
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Block:
		return "block"
	case Hash:
		return "hash"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Plan is the vertex→shard routing table of one partitioned deployment: the
// pure arithmetic every layer (ingest routing, query scatter, result gather)
// shares, fixed at store creation. Plans are value types and safe to copy.
type Plan struct {
	// N is the global vertex-space dimension; Shards the partition width.
	N, Shards int
	// Strategy is the row→shard assignment rule.
	Strategy Strategy

	// bounds, for Block plans, holds the first global row of each shard,
	// with bounds[Shards] == N. Nil for Hash plans.
	bounds []int
}

// NewPlan builds the routing table for an n-row graph over the given number
// of shards. Block plans spread the remainder over the leading shards, so
// shard sizes differ by at most one row.
func NewPlan(n, shards int, st Strategy) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("shard: vertex space must be positive, got %d", n)
	}
	if shards < 1 || shards > n {
		return Plan{}, fmt.Errorf("shard: shard count %d outside [1, %d]", shards, n)
	}
	if st != Block && st != Hash {
		return Plan{}, fmt.Errorf("shard: unknown strategy %d", uint8(st))
	}
	p := Plan{N: n, Shards: shards, Strategy: st}
	if st == Block {
		p.bounds = make([]int, shards+1)
		base, rem := n/shards, n%shards
		for s := 0; s < shards; s++ {
			size := base
			if s < rem {
				size++
			}
			p.bounds[s+1] = p.bounds[s] + size
		}
	}
	return p, nil
}

// Owner returns the shard owning global row v.
func (p Plan) Owner(v int) int {
	if p.Strategy == Hash {
		return v % p.Shards
	}
	base, rem := p.N/p.Shards, p.N%p.Shards
	if v < (base+1)*rem {
		return v / (base + 1)
	}
	return rem + (v-(base+1)*rem)/base
}

// Local translates global row v to its index within Owner(v)'s row block.
func (p Plan) Local(v int) int {
	if p.Strategy == Hash {
		return v / p.Shards
	}
	return v - p.bounds[p.Owner(v)]
}

// Global translates shard s's local row index back to the global row.
func (p Plan) Global(s, local int) int {
	if p.Strategy == Hash {
		return local*p.Shards + s
	}
	return p.bounds[s] + local
}

// LocalRows returns the number of global rows shard s owns.
func (p Plan) LocalRows(s int) int {
	if p.Strategy == Hash {
		// Rows s, s+Shards, s+2·Shards, … below N.
		return (p.N - s + p.Shards - 1) / p.Shards
	}
	return p.bounds[s+1] - p.bounds[s]
}

package shard

import "testing"

// TestPlanPartitionInvariants checks, for both strategies over a grid of
// (n, shards) shapes, that the routing arithmetic is a true partition:
// every global row has exactly one owner, local/global translation round-
// trips, and the per-shard row counts tile the vertex space.
func TestPlanPartitionInvariants(t *testing.T) {
	shapes := []struct{ n, shards int }{
		{1, 1}, {7, 1}, {7, 2}, {7, 3}, {7, 7},
		{64, 4}, {100, 8}, {1024, 16}, {1023, 16},
	}
	for _, st := range []Strategy{Block, Hash} {
		for _, sh := range shapes {
			p, err := NewPlan(sh.n, sh.shards, st)
			if err != nil {
				t.Fatalf("NewPlan(%d, %d, %v): %v", sh.n, sh.shards, st, err)
			}
			total := 0
			for s := 0; s < p.Shards; s++ {
				total += p.LocalRows(s)
			}
			if total != sh.n {
				t.Errorf("%v %d/%d: LocalRows sums to %d, want %d", st, sh.n, sh.shards, total, sh.n)
			}
			counts := make([]int, p.Shards)
			for v := 0; v < sh.n; v++ {
				s := p.Owner(v)
				if s < 0 || s >= p.Shards {
					t.Fatalf("%v %d/%d: Owner(%d) = %d out of range", st, sh.n, sh.shards, v, s)
				}
				counts[s]++
				lr := p.Local(v)
				if lr < 0 || lr >= p.LocalRows(s) {
					t.Fatalf("%v %d/%d: Local(%d) = %d outside shard %d's %d rows",
						st, sh.n, sh.shards, v, lr, s, p.LocalRows(s))
				}
				if g := p.Global(s, lr); g != v {
					t.Fatalf("%v %d/%d: Global(%d, Local(%d)) = %d, want %d", st, sh.n, sh.shards, s, v, g, v)
				}
			}
			for s, c := range counts {
				if c != p.LocalRows(s) {
					t.Errorf("%v %d/%d: shard %d owns %d rows, LocalRows says %d",
						st, sh.n, sh.shards, s, c, p.LocalRows(s))
				}
			}
		}
	}
}

// TestPlanBlockBalance: block shard sizes differ by at most one row and are
// contiguous ascending ranges.
func TestPlanBlockBalance(t *testing.T) {
	p, err := NewPlan(10, 3, Block)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{p.LocalRows(0), p.LocalRows(1), p.LocalRows(2)}
	want := []int{4, 3, 3}
	for i := range sizes {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes %v, want %v", sizes, want)
		}
	}
	prev := -1
	for v := 0; v < 10; v++ {
		s := p.Owner(v)
		if s < prev {
			t.Fatalf("block ownership not monotone at row %d", v)
		}
		prev = s
	}
}

// TestPlanHashStriding: hash ownership is the residue class.
func TestPlanHashStriding(t *testing.T) {
	p, err := NewPlan(100, 7, Hash)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 100; v++ {
		if p.Owner(v) != v%7 {
			t.Fatalf("Owner(%d) = %d, want %d", v, p.Owner(v), v%7)
		}
	}
}

// TestPlanValidation: degenerate shapes are rejected.
func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 1, Block); err == nil {
		t.Error("NewPlan(0, 1) accepted")
	}
	if _, err := NewPlan(4, 0, Block); err == nil {
		t.Error("NewPlan(4, 0) accepted")
	}
	if _, err := NewPlan(4, 5, Block); err == nil {
		t.Error("NewPlan(4, 5) accepted — more shards than rows")
	}
	if _, err := NewPlan(4, 2, Strategy(9)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

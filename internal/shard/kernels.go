package shard

import (
	"graphblas/internal/core"
	"graphblas/internal/faults"
	"graphblas/internal/stream"
)

// The coordination kernels — batch routing, frontier scatter, partial-result
// gather — run on the sharding coordinator, outside any instance's executor,
// so they contain their own injected faults: runKernel recovers the *Fault
// panic raised by faults.Step / faults.GovernAlloc and surfaces it as the
// matching execution error, exactly the mapping the engine's executor applies
// (OOM → GrB_OUT_OF_MEMORY, everything else → GrB_PANIC). The error class is
// transient, so the serving retry ladder treats a faulted scatter or gather
// like any other recoverable kernel failure.

// runKernel executes one coordination kernel under fault containment.
func runKernel(op string, f func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		fl, ok := r.(*faults.Fault)
		if !ok {
			panic(r)
		}
		if fl.Kind == faults.OOM {
			err = &core.Error{Info: core.OutOfMemory, Op: op, Msg: fl.Error()}
			return
		}
		err = &core.Error{Info: core.PanicInfo, Op: op, Msg: "unknown internal error: " + fl.Error()}
	}()
	f()
	return nil
}

// routeBatch deals one logical update batch into per-shard sub-batches by
// source row. Visiting preserves program order, so each sub-batch keeps the
// last-wins semantics of the whole; entries land only in owning shards, so
// the union of sub-batches is exactly the original batch.
func routeBatch(p Plan, b *stream.Batch[float64]) []*stream.Batch[float64] {
	faults.Step("shard.kernel.route")
	subs := make([]*stream.Batch[float64], p.Shards)
	b.Each(func(i, j int, v float64, del bool) {
		s := p.Owner(i)
		if subs[s] == nil {
			subs[s] = stream.NewBatch[float64]()
		}
		if del {
			subs[s].Delete(p.Local(i), j)
		} else {
			subs[s].Insert(p.Local(i), j, v)
		}
	})
	return subs
}

// scatterRows deals a global row-index set to its owning shards as local row
// indices — the scatter half of every sharded query (k-hop frontiers, PPR
// rank support).
func scatterRows(p Plan, rows []int) [][]int {
	faults.Step("shard.kernel.scatter")
	parts := make([][]int, p.Shards)
	for _, v := range rows {
		s := p.Owner(v)
		parts[s] = append(parts[s], p.Local(v))
	}
	return parts
}

// gatherMerge accumulates per-shard partial result vectors into the dense
// global accumulator, in ascending shard order — the fixed combine order that
// makes cross-shard float summation deterministic run to run. The governor is
// charged for the partials being folded, so an oversized gather fails with
// OOM before the accumulation, like any engine allocation.
func gatherMerge(dst []float64, idx [][]int, vals [][]float64) {
	faults.Step("shard.kernel.gather")
	var bytes int64
	for s := range idx {
		bytes += int64(len(idx[s])) * 16
	}
	faults.GovernAlloc("shard.alloc.partial", bytes)
	for s := 0; s < len(idx); s++ {
		for t, v := range idx[s] {
			dst[v] += vals[s][t]
		}
	}
}

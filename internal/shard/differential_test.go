// Differential tests: the sharded store must be indistinguishable from a
// single engine. Tuple-level state, k-hop sets, stats, degrees, and NVals
// are required to be exactly equal at every shard count; PPR scores may
// differ only by cross-shard float regrouping (1e-9) with equal sweep
// counts. The external test package lets the single-engine serving layer be
// the oracle without an import cycle.
package shard_test

import (
	"context"
	"math"
	"math/rand"
	"os"
	"testing"

	"graphblas/internal/core"
	"graphblas/internal/generate"
	"graphblas/internal/serve"
	"graphblas/internal/shard"
	"graphblas/internal/stream"
)

func TestMain(m *testing.M) {
	core.ResetForTesting()
	if err := core.Init(core.NonBlocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// shardCounts is the equivalence matrix every differential test sweeps.
var shardCounts = []int{1, 2, 4}

// strategies under test; Block is the deployment default.
var strategies = []shard.Strategy{shard.Block, shard.Hash}

// testGraph is the shared RMAT workload.
func testGraph() *generate.Graph {
	return generate.RMAT(7, 8, 42).Dedup(true)
}

// edgeBatch converts a graph to one insert batch.
func edgeBatch(g *generate.Graph) *stream.Batch[float64] {
	b := stream.NewBatch[float64]()
	for _, e := range g.Edges {
		b.Insert(e.Src, e.Dst, 1)
	}
	return b
}

// newOracle builds the single-engine reference store.
func newOracle(t *testing.T, n int, batches ...*stream.Batch[float64]) *serve.Engine {
	t.Helper()
	eng, err := serve.NewEngine(serve.Config{N: n})
	if err != nil {
		t.Fatalf("oracle engine: %v", err)
	}
	for _, b := range batches {
		if err := eng.Ingest(b); err != nil {
			t.Fatalf("oracle ingest: %v", err)
		}
	}
	return eng
}

// newSharded builds the sharded store with the same batches.
func newSharded(t *testing.T, n, shards int, st shard.Strategy, batches ...*stream.Batch[float64]) *shard.Store {
	t.Helper()
	store, err := shard.NewStore(shard.Config{N: n, Shards: shards, Strategy: st})
	if err != nil {
		t.Fatalf("NewStore(%d shards): %v", shards, err)
	}
	for _, b := range batches {
		if err := store.Ingest(b); err != nil {
			t.Fatalf("sharded ingest (%d shards): %v", shards, err)
		}
	}
	return store
}

// TestShardedIngestTupleEquivalence: after the same streamed batch sequence —
// inserts, overwrites, deletes, never compacted — the composed sharded state
// is tuple-identical to the single engine at shard counts 1, 2, 4 under both
// partition strategies.
func TestShardedIngestTupleEquivalence(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(7))
	var batches []*stream.Batch[float64]
	for bi := 0; bi < 6; bi++ {
		b := stream.NewBatch[float64]()
		for k := 0; k < 200; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				b.Delete(i, j)
			default:
				b.Insert(i, j, float64(rng.Intn(9)+1))
			}
		}
		batches = append(batches, b)
	}

	oracle := newOracle(t, n, batches...)
	osnap, stale, err := oracle.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("oracle snapshot: stale=%v err=%v", stale, err)
	}
	or, oc, ov, err := osnap.Mat.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}

	for _, strat := range strategies {
		for _, sc := range shardCounts {
			store := newSharded(t, n, sc, strat, batches...)
			snap, stale, err := store.Snapshot(context.Background())
			if err != nil || stale {
				t.Fatalf("%v/%d: snapshot stale=%v err=%v", strat, sc, stale, err)
			}
			sr, scc, sv, err := snap.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			if len(sr) != len(or) {
				t.Fatalf("%v/%d shards: %d tuples, oracle has %d", strat, sc, len(sr), len(or))
			}
			if snap.NVals != len(or) {
				t.Fatalf("%v/%d shards: NVals %d, want %d", strat, sc, snap.NVals, len(or))
			}
			for k := range sr {
				if sr[k] != or[k] || scc[k] != oc[k] || sv[k] != ov[k] {
					t.Fatalf("%v/%d shards: tuple %d = (%d,%d,%g), oracle (%d,%d,%g)",
						strat, sc, k, sr[k], scc[k], sv[k], or[k], oc[k], ov[k])
				}
			}
		}
	}
}

// TestShardedKHopEquivalence: k-hop vertex sets are tuple-exact against the
// single-engine BFS for a sweep of sources and hop budgets.
func TestShardedKHopEquivalence(t *testing.T) {
	g := testGraph()
	b := edgeBatch(g)
	oracle := newOracle(t, g.N, b)
	osnap, _, err := oracle.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	srcs := []int{0, 1, 17, g.N / 2, g.N - 1}
	hops := []int{0, 1, 2, 3}
	for _, sc := range shardCounts {
		store := newSharded(t, g.N, sc, shard.Block, edgeBatch(g))
		snap, _, err := store.Snapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range srcs {
			for _, k := range hops {
				want, err := serve.KHop(context.Background(), osnap, src, k)
				if err != nil {
					t.Fatalf("oracle KHop(%d,%d): %v", src, k, err)
				}
				got, err := shard.KHop(context.Background(), snap, src, k)
				if err != nil {
					t.Fatalf("%d shards KHop(%d,%d): %v", sc, src, k, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%d shards KHop(%d,%d): %d vertices, want %d", sc, src, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%d shards KHop(%d,%d)[%d] = %d, want %d", sc, src, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedStatsAndDegreeEquivalence: triangle/wedge statistics and
// per-vertex degrees are exact at every shard count.
func TestShardedStatsAndDegreeEquivalence(t *testing.T) {
	g := testGraph()
	oracle := newOracle(t, g.N, edgeBatch(g))
	osnap, _, err := oracle.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.Stats(context.Background(), osnap)
	if err != nil {
		t.Fatal(err)
	}

	for _, sc := range shardCounts {
		store := newSharded(t, g.N, sc, shard.Block, edgeBatch(g))
		snap, _, err := store.Snapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got, err := shard.Stats(context.Background(), snap)
		if err != nil {
			t.Fatalf("%d shards Stats: %v", sc, err)
		}
		if got.Nodes != want.Nodes || got.Edges != want.Edges || got.Triangles != want.Triangles {
			t.Fatalf("%d shards: stats %+v, want %+v", sc, got, want)
		}
		if math.Abs(got.Clustering-want.Clustering) > 1e-12 {
			t.Fatalf("%d shards: clustering %g, want %g", sc, got.Clustering, want.Clustering)
		}
		for _, v := range []int{0, 5, g.N / 3, g.N - 1} {
			wd, err := osnap.Degree(context.Background(), v)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := shard.Degree(context.Background(), snap, v)
			if err != nil {
				t.Fatalf("%d shards Degree(%d): %v", sc, v, err)
			}
			if gd != wd {
				t.Fatalf("%d shards Degree(%d) = %d, want %d", sc, v, gd, wd)
			}
		}
	}
}

// TestShardedPPREquivalence: personalized PageRank agrees with the single
// engine to summation tolerance (1e-9 per score) with identical sweep
// counts — the only sharded query where exactness is relaxed, and only
// because the coordinator's gather regroups cross-shard float additions.
func TestShardedPPREquivalence(t *testing.T) {
	g := testGraph()
	oracle := newOracle(t, g.N, edgeBatch(g))
	osnap, _, err := oracle.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for _, src := range []int{0, 3, g.N / 2} {
		want, wantIters, err := serve.PPRTopK(context.Background(), osnap, src, 0, 0.85, 1e-6, 50)
		if err != nil {
			t.Fatalf("oracle PPR(%d): %v", src, err)
		}
		wantScores := make(map[int]float64, len(want))
		for _, r := range want {
			wantScores[r.Vertex] = r.Score
		}
		for _, sc := range shardCounts {
			store := newSharded(t, g.N, sc, shard.Block, edgeBatch(g))
			snap, _, err := store.Snapshot(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, iters, err := shard.PPRTopK(context.Background(), snap, src, 0, 0.85, 1e-6, 50)
			if err != nil {
				t.Fatalf("%d shards PPR(%d): %v", sc, src, err)
			}
			if iters != wantIters {
				t.Fatalf("%d shards PPR(%d): %d sweeps, oracle %d", sc, src, iters, wantIters)
			}
			if len(got) != len(want) {
				t.Fatalf("%d shards PPR(%d): %d ranked, oracle %d", sc, src, len(got), len(want))
			}
			for _, r := range got {
				w, ok := wantScores[r.Vertex]
				if !ok {
					t.Fatalf("%d shards PPR(%d): vertex %d not in oracle support", sc, src, r.Vertex)
				}
				if math.Abs(r.Score-w) > 1e-9 {
					t.Fatalf("%d shards PPR(%d): score[%d] = %.15g, oracle %.15g (|Δ| > 1e-9)",
						sc, src, r.Vertex, r.Score, w)
				}
			}
		}
	}
}

// TestShardedSnapshotConsistency: a snapshot pinned before later writes keeps
// answering from its version; a fresh snapshot sees the writes; Version
// advances per acknowledged commit and epochs compose per shard.
func TestShardedSnapshotConsistency(t *testing.T) {
	const n = 32
	store := newSharded(t, n, 4, shard.Block)
	b1 := stream.NewBatch[float64]()
	b1.Insert(0, 1, 1)
	b1.Insert(31, 2, 1)
	if err := store.Ingest(b1); err != nil {
		t.Fatal(err)
	}
	s1, stale, err := store.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("snapshot 1: stale=%v err=%v", stale, err)
	}
	if s1.NVals != 2 {
		t.Fatalf("snapshot 1 NVals = %d, want 2", s1.NVals)
	}

	b2 := stream.NewBatch[float64]()
	b2.Insert(5, 6, 1)
	if err := store.Ingest(b2); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot must not see the later write.
	if s1.NVals != 2 {
		t.Fatalf("pinned snapshot mutated: NVals = %d", s1.NVals)
	}
	s2, stale, err := store.Snapshot(context.Background())
	if err != nil || stale {
		t.Fatalf("snapshot 2: stale=%v err=%v", stale, err)
	}
	if s2.NVals != 3 {
		t.Fatalf("snapshot 2 NVals = %d, want 3", s2.NVals)
	}
	if s2.Epoch() <= s1.Epoch() {
		t.Fatalf("epoch did not advance: %d then %d", s1.Epoch(), s2.Epoch())
	}
	if len(s2.Epochs) != 4 {
		t.Fatalf("composed snapshot has %d shard epochs, want 4", len(s2.Epochs))
	}
	// Same version → cached identity.
	s2b, _, err := store.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2b != s2 {
		t.Fatal("same-version snapshot was rebuilt, not cached")
	}
}

package shard

import (
	"context"
	"sort"
	"sync"

	"graphblas/internal/algorithms"
	"graphblas/internal/builtins"
	"graphblas/internal/core"
)

// Sharded serving queries: scatter-gather over the composed snapshot. The
// shape is always the same — a global vector is dealt to its owning shards
// (scatterRows), each shard runs its slice of the GraphBLAS kernel inside
// its own engine with the request deadline threaded into that engine's
// flush (inst.WaitContext), and the coordinator folds the partial results
// in fixed shard order (gatherMerge). Row partitioning never splits a
// per-row reduction, so k-hop, stats, degrees, and NVals are tuple-exact
// against a single engine; PPR's cross-shard gather regroups float
// additions and agrees to summation tolerance.

// errCanceled wraps a pre-execution context error in the engine's Canceled
// class so the serving retry layer treats it uniformly.
func errCanceled(ctx context.Context) error {
	return &core.Error{Info: core.Canceled, Op: "shard.query", Msg: ctx.Err().Error()}
}

// KHop returns every vertex reachable from src within at most k hops
// (including src), ascending — tuple-identical to the single-engine BFS
// frontier loop. Each hop scatters the frontier to its owning shards, runs
// one per-shard VxM with a presence clamp, and gathers the union.
func KHop(ctx context.Context, snap *Snapshot, src, k int) ([]int, error) {
	visited := make([]bool, snap.N)
	visited[src] = true
	out := []int{src}
	frontier := []int{src}
	dense := make([]float64, snap.N)

	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, errCanceled(ctx)
		}
		var parts [][]int
		if err := runKernel("shard.KHop", func() { parts = scatterRows(snap.plan, frontier) }); err != nil {
			return nil, err
		}
		idxs := make([][]int, len(snap.mats))
		valss := make([][]float64, len(snap.mats))
		errs := make([]error, len(snap.mats))
		var wg sync.WaitGroup
		for s := range snap.mats {
			if len(parts[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				idxs[s], valss[s], errs[s] = snap.expandFrontier(ctx, s, parts[s])
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if err := runKernel("shard.KHop", func() { gatherMerge(dense, idxs, valss) }); err != nil {
			return nil, err
		}
		// Read the union off the accumulator (clearing it for the next hop);
		// only first-visits extend the frontier — the filtered frontier
		// reaches exactly the vertices the unfiltered one does.
		frontier = frontier[:0]
		for s := range idxs {
			for _, v := range idxs[s] {
				if dense[v] != 0 && !visited[v] {
					visited[v] = true
					out = append(out, v)
					frontier = append(frontier, v)
				}
				dense[v] = 0
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// expandFrontier runs one shard's hop: a local frontier vector through the
// shard's VxM, clamped back to presence.
func (snap *Snapshot) expandFrontier(ctx context.Context, s int, local []int) ([]int, []float64, error) {
	inst := snap.insts[s]
	f, err := core.NewVectorIn[float64](inst, snap.plan.LocalRows(s))
	if err != nil {
		return nil, nil, err
	}
	for _, lr := range local {
		if err := f.SetElement(1, lr); err != nil {
			return nil, nil, err
		}
	}
	next, err := core.NewVectorIn[float64](inst, snap.N)
	if err != nil {
		return nil, nil, err
	}
	if err := core.VxM(next, core.NoMaskV, core.NoAccum[float64](), builtins.PlusTimes[float64](), f, snap.mats[s], nil); err != nil {
		return nil, nil, err
	}
	if err := core.ApplyV(next, core.NoMaskV, core.NoAccum[float64](), builtins.One[float64](), next, core.Desc().ReplaceOutput()); err != nil {
		return nil, nil, err
	}
	if err := inst.WaitContext(ctx); err != nil {
		return nil, nil, err
	}
	idx, vals, err := next.ExtractTuples()
	if err != nil {
		return nil, nil, err
	}
	return idx, vals, err
}

// Ranked is one entry of a top-k ranking.
type Ranked struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// PPRTopK runs personalized PageRank with restart vertex src over the
// composed snapshot and returns the k highest-ranked vertices plus the sweep
// count. Per sweep, the rank's share vector scatters to the owning shards,
// each shard runs its slice of shareᵀA, and the coordinator folds the
// partials in fixed shard order before damping and restart — so the sweep
// structure (dangling mass to src, L1 convergence on tol) matches the
// single-engine formulation, with cross-shard additions regrouped.
func PPRTopK(ctx context.Context, snap *Snapshot, src, k int, damping, tol float64, maxIter int) ([]Ranked, int, error) {
	n := snap.N
	outdeg, err := snap.outdegrees(ctx)
	if err != nil {
		return nil, 0, err
	}

	rank := make([]float64, n)
	live := make([]bool, n)
	rank[src] = 1
	live[src] = true
	next := make([]float64, n)
	liveNext := make([]bool, n)
	var supp []int

	iters := 0
	for ; iters < maxIter; iters++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, iters, errCanceled(ctx)
		}
		// Dangling and restart mass both return to src in the personalized
		// formulation; the share's support is rank ∩ outdeg, as in the
		// single-engine EWiseMult intersection.
		var total, linked float64
		supp = supp[:0]
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			total += rank[v]
			if outdeg[v] > 0 {
				linked += rank[v]
				supp = append(supp, v)
			}
		}
		dangling := total - linked

		var parts [][]int
		if err := runKernel("shard.PPRTopK", func() { parts = scatterRows(snap.plan, supp) }); err != nil {
			return nil, iters, err
		}
		idxs := make([][]int, len(snap.mats))
		valss := make([][]float64, len(snap.mats))
		errs := make([]error, len(snap.mats))
		var wg sync.WaitGroup
		for s := range snap.mats {
			if len(parts[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				idxs[s], valss[s], errs[s] = snap.spreadShare(ctx, s, parts[s], rank, outdeg)
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, iters, err
			}
		}
		for v := range liveNext {
			next[v], liveNext[v] = 0, false
		}
		if err := runKernel("shard.PPRTopK", func() { gatherMerge(next, idxs, valss) }); err != nil {
			return nil, iters, err
		}
		for s := range idxs {
			for _, v := range idxs[s] {
				liveNext[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if liveNext[v] {
				next[v] *= damping
			}
		}
		next[src] += (1 - damping) + damping*dangling
		liveNext[src] = true

		var diff float64
		for v := 0; v < n; v++ {
			if !live[v] && !liveNext[v] {
				continue
			}
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		rank, next = next, rank
		live, liveNext = liveNext, live
		if diff < tol {
			iters++
			break
		}
	}

	var ranked []Ranked
	for v := 0; v < n; v++ {
		if live[v] {
			ranked = append(ranked, Ranked{Vertex: v, Score: rank[v]})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Vertex < ranked[j].Vertex
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, iters, nil
}

// spreadShare runs one shard's PPR sweep slice: the local share vector
// (rank/outdeg at the scattered rows) through the shard's VxM, undamped —
// damping applies after the coordinator's gather, where the full row sums
// exist.
func (snap *Snapshot) spreadShare(ctx context.Context, s int, local []int, rank, outdeg []float64) ([]int, []float64, error) {
	inst := snap.insts[s]
	share, err := core.NewVectorIn[float64](inst, snap.plan.LocalRows(s))
	if err != nil {
		return nil, nil, err
	}
	for _, lr := range local {
		g := snap.plan.Global(s, lr)
		if err := share.SetElement(rank[g]/outdeg[g], lr); err != nil {
			return nil, nil, err
		}
	}
	part, err := core.NewVectorIn[float64](inst, snap.N)
	if err != nil {
		return nil, nil, err
	}
	if err := core.VxM(part, core.NoMaskV, core.NoAccum[float64](), builtins.PlusTimes[float64](), share, snap.mats[s], nil); err != nil {
		return nil, nil, err
	}
	if err := inst.WaitContext(ctx); err != nil {
		return nil, nil, err
	}
	idx, vals, err := part.ExtractTuples()
	if err != nil {
		return nil, nil, err
	}
	return idx, vals, nil
}

// GraphStats summarizes the structure of one composed snapshot.
type GraphStats struct {
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	Triangles  int64   `json:"triangles"`
	Clustering float64 `json:"clustering"`
}

// Stats computes triangle and clustering statistics: per-shard pinned tuples
// gather into the global symmetrized pattern (Snapshot.Sym) and the triangle
// and wedge reductions run on it exactly as the single-engine path does —
// integer counts, so the result is exact at any shard count.
func Stats(ctx context.Context, snap *Snapshot) (GraphStats, error) {
	st := GraphStats{Nodes: snap.N, Edges: snap.NVals}
	if ctx != nil && ctx.Err() != nil {
		return st, errCanceled(ctx)
	}
	sym, err := snap.Sym(ctx)
	if err != nil {
		return st, err
	}
	tri, err := algorithms.TriangleCount(sym)
	if err != nil {
		return st, err
	}
	st.Triangles = tri
	n := snap.N
	lifted, err := core.NewMatrix[float64](n, n)
	if err != nil {
		return st, err
	}
	if err := core.ApplyM(lifted, core.NoMask, core.NoAccum[float64](), builtins.CastBoolTo[float64](), sym, nil); err != nil {
		return st, err
	}
	deg, err := core.NewVector[float64](n)
	if err != nil {
		return st, err
	}
	if err := core.ReduceMatrixToVector(deg, core.NoMaskV, core.NoAccum[float64](), builtins.PlusMonoid[float64](), lifted, nil); err != nil {
		return st, err
	}
	if err := core.WaitContext(ctx); err != nil {
		return st, err
	}
	_, degs, err := deg.ExtractTuples()
	if err != nil {
		return st, err
	}
	var wedges float64
	for _, d := range degs {
		wedges += d * (d - 1) / 2
	}
	if wedges > 0 {
		st.Clustering = 3 * float64(tri) / wedges
	}
	return st, nil
}

// Degree reports vertex v's out-degree at the snapshot — answered entirely
// by the owning shard's row block, gathered once per snapshot.
func Degree(ctx context.Context, snap *Snapshot, v int) (int, error) {
	outdeg, err := snap.outdegrees(ctx)
	if err != nil {
		return 0, err
	}
	return int(outdeg[v]), nil
}

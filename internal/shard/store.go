package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"graphblas/internal/core"
	"graphblas/internal/stream"
)

// ErrBackpressure: some shard's delta overlay is over the shed watermark and
// could not be compacted; the batch was rejected untouched (clean reject —
// no shard absorbed anything). The serving layer maps it to 503.
var ErrBackpressure = errors.New("shard: ingest backpressure, shard delta overlay over watermark")

// ErrIndeterminate marks a batch that failed acknowledgement AFTER some
// shards committed their sub-batches: the failed sub-batches are queued for
// redo and the whole batch WILL be included in the store before any later
// batch is acknowledged. This is the honest at-least-once answer a
// distributed store owes its writer — "not acknowledged" is not "not
// applied" — and the serving layer surfaces it as a response header so a
// consistency checker can model the batch as indeterminate rather than
// absent.
var ErrIndeterminate = errors.New("shard: batch not acknowledged; failed sub-batches queued for redo")

// ErrRedoBlocked: an earlier partial failure is still draining and this
// batch was rejected before touching any shard (clean reject). Retry later.
var ErrRedoBlocked = errors.New("shard: redo backlog not drained; batch rejected untouched")

// Config sizes one sharded store.
type Config struct {
	// N is the global vertex-space dimension; Shards the partition width.
	N, Shards int
	// Strategy is the row→shard assignment (default Block).
	Strategy Strategy
	// CompactAfter is the per-shard delta watermark that triggers compaction
	// on the ingest path (0: the streaming DefaultPolicy watermark).
	CompactAfter int
	// ShedDelta is the per-shard delta count beyond which ingest is rejected
	// with ErrBackpressure (0: 4× CompactAfter).
	ShedDelta int
}

func (c Config) withDefaults() Config {
	if c.CompactAfter <= 0 {
		c.CompactAfter = stream.DefaultPolicy().MaxDeltaNNZ
	}
	if c.ShedDelta <= 0 {
		c.ShedDelta = 4 * c.CompactAfter
	}
	return c
}

// ingestAttempts bounds the per-shard at-least-once re-apply loop.
const ingestAttempts = 3

// snapshotAttempts bounds the optimistic torn-composition retry loop.
const snapshotAttempts = 3

// engineShard is one shard: an isolated execution engine owning the
// localRows×N slice of the adjacency whose global rows the plan assigns it.
type engineShard struct {
	id   int
	inst *core.Instance
	m    *core.Matrix[float64]
}

// Store is the row-partitioned multi-engine graph store. One coordinator
// (this type) routes writes and composes snapshots; each shard's engine
// schedules and flushes independently, so shard-level work is genuinely
// parallel and a deadline expiring inside one shard's flush cancels only
// that shard's pending operations.
type Store struct {
	plan Plan
	cfg  Config

	shards []*engineShard

	// wmu serializes writers (ingest, redo drain, compaction), exactly the
	// single-writer discipline that makes per-shard at-least-once re-apply
	// idempotent (see serve.Engine.wmu).
	wmu sync.Mutex
	// version counts acknowledged commits: a version advances only when every
	// owning shard has committed, so a composed snapshot keyed by version is
	// an all-shards-consistent state by construction.
	version atomic.Uint64
	// wseq is the writers' seqlock: odd while a shard-mutating write is in
	// flight. Snapshot composition pins each shard separately, so without
	// this a write landing mid-composition could produce a torn snapshot
	// (shard 0 pinned before the batch, shard 1 after).
	wseq atomic.Uint64

	mu     sync.Mutex
	cur    *Snapshot // composed snapshot of the newest acknowledged version
	last   *Snapshot // last good composed snapshot (stale fallback)
	frozen bool      // a partial failure is outstanding; compose nothing new
	redo   []*stream.Batch[float64] // per-shard failed sub-batches awaiting redo
}

// NewStore builds a sharded store: cfg.Shards independent engine instances,
// each holding a LocalRows(s)×N streaming matrix with a manual merge policy
// (compaction is an explicit act of the coordinator, as in serve.Engine).
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	plan, err := NewPlan(cfg.N, cfg.Shards, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	st := &Store{plan: plan, cfg: cfg, redo: make([]*stream.Batch[float64], cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		inst, err := core.NewInstance(core.NonBlocking)
		if err != nil {
			return nil, err
		}
		m, err := core.NewMatrixIn[float64](inst, plan.LocalRows(s), cfg.N)
		if err != nil {
			return nil, err
		}
		if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
			return nil, err
		}
		st.shards = append(st.shards, &engineShard{id: s, inst: inst, m: m})
	}
	return st, nil
}

// Plan exposes the routing table.
func (st *Store) Plan() Plan { return st.plan }

// N reports the global vertex-space dimension.
func (st *Store) N() int { return st.cfg.N }

// ShardCount reports the partition width.
func (st *Store) ShardCount() int { return len(st.shards) }

// Version reports the newest acknowledged commit version.
func (st *Store) Version() uint64 { return st.version.Load() }

// Frozen reports whether a partial failure is outstanding (reads are pinned
// to the last acknowledged snapshot until the redo backlog drains).
func (st *Store) Frozen() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.frozen
}

// RedoDepth reports the number of shards with failed sub-batches queued.
func (st *Store) RedoDepth() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, b := range st.redo {
		if b != nil {
			n++
		}
	}
	return n
}

// ShardStatus is one shard's health line.
type ShardStatus struct {
	Shard int    `json:"shard"`
	Rows  int    `json:"rows"`
	Epoch uint64 `json:"epoch"`
	Delta int    `json:"delta"`
}

// Status reports per-shard health. Best-effort: a shard whose store is
// poisoned mid-recovery reports zero epoch/delta rather than failing the
// health probe.
func (st *Store) Status() []ShardStatus {
	out := make([]ShardStatus, len(st.shards))
	for i, sh := range st.shards {
		out[i] = ShardStatus{Shard: sh.id, Rows: st.plan.LocalRows(sh.id)}
		if ep, err := sh.m.EpochID(); err == nil {
			out[i].Epoch = ep
		}
		if d, err := sh.m.DeltaNVals(); err == nil {
			out[i].Delta = d
		}
	}
	return out
}

// transient mirrors the serving layer's retry taxonomy: execution-class
// failures (abandoned flush, poisoned input, OOM, kernel panic) are worth a
// fresh attempt; API-class errors are deterministic.
func transient(err error) bool {
	if err == nil {
		return false
	}
	switch core.InfoOf(err) {
	case core.Canceled, core.InvalidObject, core.OutOfMemory, core.PanicInfo:
		return true
	}
	return false
}

// Ingest applies one logical update batch across the owning shards with
// all-or-none acknowledgement: nil means every shard committed; a non-nil
// error means the batch was NOT acknowledged — wrapped in ErrIndeterminate
// when some shards committed (the rest queue for redo and the batch will
// converge in), or a clean-reject error (ErrBackpressure, ErrRedoBlocked,
// routing failure) when no shard was touched.
func (st *Store) Ingest(b *stream.Batch[float64]) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()

	// An outstanding redo backlog drains before any new batch: later batches
	// must not be acknowledged ahead of an earlier batch's convergence, or
	// last-wins ordering across batches would invert.
	if err := st.drainRedoLocked(); err != nil {
		return fmt.Errorf("%w (drain: %v)", ErrRedoBlocked, err)
	}

	// Backpressure and watermark compaction, per shard.
	for _, sh := range st.shards {
		delta, err := sh.deltaNVals()
		if err != nil {
			return err
		}
		if delta >= st.cfg.ShedDelta {
			st.compactShardLocked(sh)
			if delta, err = sh.deltaNVals(); err != nil {
				return err
			}
			if delta >= st.cfg.ShedDelta {
				return ErrBackpressure
			}
		} else if delta >= st.cfg.CompactAfter {
			st.compactShardLocked(sh)
		}
	}

	// Route. A routing fault rejects the batch before any shard sees it.
	var subs []*stream.Batch[float64]
	if err := runKernel("shard.route", func() { subs = routeBatch(st.plan, b) }); err != nil {
		return err
	}

	return st.commitLocked(subs)
}

// commitLocked applies per-shard sub-batches concurrently — one goroutine
// per owning shard, each against its own engine — and acknowledges only if
// all commit. Caller holds wmu.
func (st *Store) commitLocked(subs []*stream.Batch[float64]) error {
	st.wseq.Add(1)
	defer st.wseq.Add(1)

	errs := make([]error, len(st.shards))
	var wg sync.WaitGroup
	for s, sub := range subs {
		if sub == nil || sub.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *engineShard, sub *stream.Batch[float64]) {
			defer wg.Done()
			errs[sh.id] = sh.apply(sub)
		}(st.shards[s], sub)
	}
	wg.Wait()

	var failed []int
	for s, err := range errs {
		if err != nil {
			failed = append(failed, s)
		}
	}
	if len(failed) == 0 {
		st.mu.Lock()
		st.frozen = false
		st.mu.Unlock()
		st.version.Add(1)
		return nil
	}

	// Partial failure: freeze reads at the last acknowledged snapshot and
	// queue the failed sub-batches, preserving program order within each
	// shard so redo keeps last-wins semantics.
	st.mu.Lock()
	st.frozen = true
	for _, s := range failed {
		st.redo[s] = appendBatch(st.redo[s], subs[s])
	}
	st.mu.Unlock()
	return fmt.Errorf("%w: %d/%d shards failed (first: shard %d: %v)",
		ErrIndeterminate, len(failed), len(st.shards), failed[0], errs[failed[0]])
}

// drainRedoLocked re-applies queued failed sub-batches. On full drain the
// store is shard-consistent again but stays frozen: the redone batches were
// never acknowledged, so they become visible only at the next acknowledged
// version (commit or compaction). Caller holds wmu.
func (st *Store) drainRedoLocked() error {
	st.mu.Lock()
	pending := append([]*stream.Batch[float64](nil), st.redo...)
	st.mu.Unlock()

	var anyPending bool
	for _, b := range pending {
		if b != nil {
			anyPending = true
		}
	}
	if !anyPending {
		return nil
	}

	st.wseq.Add(1)
	defer st.wseq.Add(1)
	var firstErr error
	for s, b := range pending {
		if b == nil {
			continue
		}
		if err := st.shards[s].apply(b); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", s, err)
			}
			continue
		}
		st.mu.Lock()
		st.redo[s] = nil
		st.mu.Unlock()
	}
	return firstErr
}

// apply commits one sub-batch to the shard with at-least-once semantics:
// a rolled-back absorb (abandoned flush, injected fault) is revalidated and
// the same last-wins batch re-applied. Mirrors serve.Engine.apply, scoped to
// this shard's engine.
func (sh *engineShard) apply(b *stream.Batch[float64]) error {
	var last error
	for attempt := 0; attempt < ingestAttempts; attempt++ {
		if attempt > 0 {
			if rerr := sh.m.Revalidate(); rerr != nil {
				return last
			}
		}
		err := sh.m.ApplyUpdateBatch(b)
		if err == nil {
			err = sh.m.Wait()
		}
		if err == nil {
			return nil
		}
		last = err
		if !transient(err) {
			return err
		}
	}
	return last
}

// deltaNVals reads the shard's overlay size, revalidating first when a prior
// failure left the store marked invalid (writer-exclusive recovery; caller
// holds wmu).
func (sh *engineShard) deltaNVals() (int, error) {
	delta, err := sh.m.DeltaNVals()
	if core.InfoOf(err) == core.InvalidObject {
		if rerr := sh.m.Revalidate(); rerr == nil {
			delta, err = sh.m.DeltaNVals()
		}
	}
	return delta, err
}

// compactShardLocked merges one shard's overlay into its main store,
// best-effort: a failed compaction leaves the overlay in place and the next
// watermark crossing retries. Caller holds wmu.
func (st *Store) compactShardLocked(sh *engineShard) {
	st.wseq.Add(1)
	defer st.wseq.Add(1)
	if err := sh.m.Compact(); err != nil {
		return
	}
	if err := sh.m.Wait(); err != nil {
		if core.InfoOf(err) != core.Canceled {
			//grblint:ignore swallowederr best-effort watermark compaction: the store is still valid with the overlay live, and the next crossing retries
			_ = sh.m.Revalidate()
		}
		return
	}
	st.version.Add(1)
}

// Compact forces every shard's overlay into its main store and publishes a
// new acknowledged version. Fails if a redo backlog cannot drain first.
func (st *Store) Compact() error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if err := st.drainRedoLocked(); err != nil {
		return fmt.Errorf("%w (drain: %v)", ErrRedoBlocked, err)
	}
	st.wseq.Add(1)
	defer st.wseq.Add(1)
	for _, sh := range st.shards {
		if err := sh.m.Compact(); err != nil {
			return err
		}
		if err := sh.m.Wait(); err != nil {
			return err
		}
	}
	st.mu.Lock()
	st.frozen = false
	st.mu.Unlock()
	st.version.Add(1)
	return nil
}

// appendBatch folds src's updates onto dst in program order (dst may be
// nil), preserving last-wins across the concatenation.
func appendBatch(dst, src *stream.Batch[float64]) *stream.Batch[float64] {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = stream.NewBatch[float64]()
	}
	src.Each(func(i, j int, v float64, del bool) {
		if del {
			dst.Delete(i, j)
		} else {
			dst.Insert(i, j, v)
		}
	})
	return dst
}

// Drain flushes every shard's pending work, bounded by ctx — the sharded
// half of graceful shutdown.
func (st *Store) Drain(ctx context.Context) error {
	var firstErr error
	for _, sh := range st.shards {
		if err := sh.inst.WaitContext(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

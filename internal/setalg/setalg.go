// Package setalg implements the power-set algebra of Table I, row 5: the
// semiring ⟨P(Z), ∪, ∩, ∅, U⟩ over subsets of a bounded integer universe.
// Matrix elements whose domain is Set carry *sets of labels*; multiplying
// over ∪.∩ propagates, for example, the set of source vertices that can
// reach each target (see the reachability example).
//
// Sets are immutable bitsets: operations return fresh values, which is what
// GraphBLAS element values require (operators must be pure functions).
package setalg

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"graphblas/internal/core"
)

// Set is an immutable subset of the integer universe [0, Universe). The
// universe bound travels with the value so ∩'s identity (the full universe)
// is well-defined.
type Set struct {
	universe int
	words    []uint64
}

// NewSet returns the empty set over [0, universe).
func NewSet(universe int) Set {
	if universe < 0 {
		universe = 0
	}
	return Set{universe: universe, words: make([]uint64, (universe+63)/64)}
}

// SetOf returns the set over [0, universe) holding the given members.
// Out-of-range members are ignored.
func SetOf(universe int, members ...int) Set {
	s := NewSet(universe)
	for _, m := range members {
		if m >= 0 && m < universe {
			s.words[m/64] |= 1 << (uint(m) % 64)
		}
	}
	return s
}

// FullSet returns the whole universe U — the multiplicative identity of the
// power-set semiring.
func FullSet(universe int) Set {
	s := NewSet(universe)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := universe % 64; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << uint(r)) - 1
	}
	return s
}

// Universe reports the universe bound.
func (s Set) Universe() int { return s.universe }

// Contains reports membership of m.
func (s Set) Contains(m int) bool {
	if m < 0 || m >= s.universe {
		return false
	}
	return s.words[m/64]&(1<<(uint(m)%64)) != 0
}

// Len reports the cardinality.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set is ∅.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Members returns the elements in increasing order.
func (s Set) Members() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Equal reports set equality (universes must match too).
func (s Set) Equal(t Set) bool {
	if s.universe != t.universe {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t. Universes must match; mismatches panic, as operator
// domain violations are programming errors under the GraphBLAS model.
func (s Set) Union(t Set) Set {
	s.checkSameUniverse(t)
	out := NewSet(s.universe)
	for i := range out.words {
		out.words[i] = s.words[i] | t.words[i]
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.checkSameUniverse(t)
	out := NewSet(s.universe)
	for i := range out.words {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

func (s Set) checkSameUniverse(t Set) {
	if s.universe != t.universe {
		panic(fmt.Sprintf("setalg: universe mismatch %d != %d", s.universe, t.universe))
	}
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	ms := s.Members()
	sort.Ints(ms)
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprint(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// UnionOp returns the ∪ binary operator over a fixed universe.
func UnionOp(universe int) core.BinaryOp[Set, Set, Set] {
	_ = universe // the universe travels with values; parameter documents intent
	return core.BinaryOp[Set, Set, Set]{Name: "union", F: Set.Union}
}

// IntersectOp returns the ∩ binary operator.
func IntersectOp(universe int) core.BinaryOp[Set, Set, Set] {
	_ = universe
	return core.BinaryOp[Set, Set, Set]{Name: "intersect", F: Set.Intersect}
}

// UnionMonoid returns ⟨P(Z), ∪, ∅⟩.
func UnionMonoid(universe int) core.Monoid[Set] {
	m, err := core.NewMonoid(UnionOp(universe), NewSet(universe))
	if err != nil {
		panic(err)
	}
	return m
}

// IntersectMonoid returns ⟨P(Z), ∩, U⟩.
func IntersectMonoid(universe int) core.Monoid[Set] {
	m, err := core.NewMonoid(IntersectOp(universe), FullSet(universe))
	if err != nil {
		panic(err)
	}
	return m
}

// UnionIntersect returns the Table I power-set semiring ⟨∪, ∩, ∅⟩: addition
// is union (identity ∅), multiplication is intersection (identity U, with ∅
// as its annihilator).
func UnionIntersect(universe int) core.Semiring[Set, Set, Set] {
	s, err := core.NewSemiring(UnionMonoid(universe), IntersectOp(universe))
	if err != nil {
		panic(err)
	}
	return s
}

package setalg

import (
	"testing"
	"testing/quick"
)

// randomSet derives a deterministic set over [0, 96) from raw bits.
func randomSet(bits []byte) Set {
	s := NewSet(96)
	for _, b := range bits {
		m := int(b) % 96
		s.words[m/64] |= 1 << (uint(m) % 64)
	}
	return s
}

func TestSetBasics(t *testing.T) {
	s := SetOf(10, 1, 3, 7, 3, -1, 12)
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.Contains(1) || !s.Contains(3) || !s.Contains(7) || s.Contains(2) || s.Contains(12) {
		t.Fatal("membership")
	}
	if got := s.String(); got != "{1,3,7}" {
		t.Fatalf("string %q", got)
	}
	if s.Universe() != 10 {
		t.Fatalf("universe %d", s.Universe())
	}
	e := NewSet(10)
	if !e.IsEmpty() || s.IsEmpty() {
		t.Fatal("emptiness")
	}
	f := FullSet(10)
	if f.Len() != 10 {
		t.Fatalf("full len %d", f.Len())
	}
	if f.Contains(10) {
		t.Fatal("full set contains out-of-universe member")
	}
	m := s.Members()
	want := []int{1, 3, 7}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("members %v", m)
		}
	}
}

func TestFullSetBoundary(t *testing.T) {
	for _, u := range []int{0, 1, 63, 64, 65, 128} {
		f := FullSet(u)
		if f.Len() != u {
			t.Fatalf("universe %d: len %d", u, f.Len())
		}
	}
}

// Property: the power-set semiring laws of Table I row 5 hold:
// ∪ is commutative/associative with identity ∅; ∩ distributes over ∪;
// ∅ annihilates ∩; U is the ∩ identity.
func TestQuickPowerSetSemiringLaws(t *testing.T) {
	f := func(ab, bb, cb []byte) bool {
		a, b, c := randomSet(ab), randomSet(bb), randomSet(cb)
		empty := NewSet(96)
		full := FullSet(96)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Union(empty).Equal(a) {
			return false
		}
		if !a.Intersect(full).Equal(a) {
			return false
		}
		if !a.Intersect(empty).Equal(empty) {
			return false
		}
		// distributivity: a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
		return a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMonoidAndSemiringConstructors(t *testing.T) {
	um := UnionMonoid(32)
	if !um.Identity.IsEmpty() {
		t.Fatal("union identity not empty")
	}
	im := IntersectMonoid(32)
	if im.Identity.Len() != 32 {
		t.Fatal("intersect identity not full")
	}
	s := UnionIntersect(32)
	a := SetOf(32, 1, 2)
	b := SetOf(32, 2, 3)
	if got := s.Mul.F(a, b); got.Len() != 1 || !got.Contains(2) {
		t.Fatalf("mul %v", got)
	}
	if got := s.Add.Op.F(a, b); got.Len() != 3 {
		t.Fatalf("add %v", got)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on universe mismatch")
		}
	}()
	SetOf(8, 1).Union(SetOf(16, 1))
}

func TestImmutability(t *testing.T) {
	a := SetOf(16, 1, 2)
	b := SetOf(16, 3)
	_ = a.Union(b)
	_ = a.Intersect(b)
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatal("operands mutated")
	}
}

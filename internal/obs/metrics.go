package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is the registry-facing contract shared by counters, gauges, and
// histograms (and their labeled vec variants): Prometheus text exposition,
// a JSON-able snapshot, and a reset for test isolation.
type metric interface {
	name() string
	help() string
	promText(w io.Writer)
	snapshotInto(m map[string]any)
	reset()
}

// Registry owns a set of metrics. Registration happens at package init;
// after that the hot paths (Add/Observe on the contained metrics) never
// touch the registry lock.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// Default is the engine-wide registry every predeclared metric registers
// into.
var Default = &Registry{}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// sorted returns the registered metrics ordered by name for stable output.
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name() < ms[j].name() })
	return ms
}

// WriteText writes every registered metric in the Prometheus text exposition
// format.
func (r *Registry) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, m := range r.sorted() {
		m.promText(bw)
	}
	return bw.err
}

// Snapshot returns a JSON-able view of every registered metric: plain
// numbers for counters and gauges, label→number maps for vecs, and
// {count,sum,buckets} objects for histograms.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		m.snapshotInto(out)
	}
	return out
}

// Reset zeroes every registered metric (labeled children are dropped). Test
// and benchmark isolation only; production consumers should read cumulative
// values.
func (r *Registry) Reset() {
	for _, m := range r.sorted() {
		m.reset()
	}
}

// errWriter latches the first write error so exposition code can skip
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fmtFloat renders a sample value the way Prometheus expects: integers
// without exponents, +Inf for the overflow bucket bound.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing count with an atomic hot path.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	Default.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; this is unchecked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) reset()       { c.v.Store(0) }

func (c *Counter) promText(w io.Writer) {
	promHeader(w, c.nm, c.hp, "counter")
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

func (c *Counter) snapshotInto(m map[string]any) { m[c.nm] = c.v.Load() }

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an instantaneous value; Set/Add/SetMax are all atomic.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	Default.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — a running
// high-water mark (used for schedule width).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) reset()       { g.v.Store(0) }

func (g *Gauge) promText(w io.Writer) {
	promHeader(w, g.nm, g.hp, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

func (g *Gauge) snapshotInto(m map[string]any) { m[g.nm] = g.v.Load() }

// ---------------------------------------------------------------------------
// Histogram

// Histogram is a fixed-bucket distribution. Observe is lock-free: a bucket
// increment plus a CAS loop folding the sample into the float-bits sum.
type Histogram struct {
	nm, hp  string
	bounds  []float64      // upper bounds, strictly increasing
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram registers a histogram with the given upper bucket bounds in
// the Default registry. An implicit +Inf bucket is appended.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds)
	Default.register(h)
	return h
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{nm: name, hp: help, bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s finds the first bound >= v when bounds are treated as
	// upper limits: index i means v <= bounds[i], matching Prometheus "le".
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// promLines writes the histogram sample lines with extra pre-rendered labels
// (e.g. `op="MxM",`) spliced into each line; labels may be empty.
func (h *Histogram) promLines(w io.Writer, labels string) {
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.nm, labels, fmtFloat(bound), cum)
	}
	if base := strings.TrimSuffix(labels, ","); base != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", h.nm, base, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.nm, base, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", h.nm, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
	}
}

func (h *Histogram) promText(w io.Writer) {
	promHeader(w, h.nm, h.hp, "histogram")
	h.promLines(w, "")
}

// snapshotValue returns the JSON-able view of one histogram.
func (h *Histogram) snapshotValue() map[string]any {
	buckets := make(map[string]int64, len(h.buckets))
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		buckets[fmtFloat(bound)] = cum
	}
	return map[string]any{"count": h.count.Load(), "sum": h.Sum(), "buckets": buckets}
}

func (h *Histogram) snapshotInto(m map[string]any) { m[h.nm] = h.snapshotValue() }

// ---------------------------------------------------------------------------
// Labeled vecs
//
// Both vecs share the same shape: a sync.Map from label value to child
// metric, so the steady-state read path (label already seen) is a lock-free
// map load; child creation is serialized by a mutex with a double-check.

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	nm, hp, label string
	mu            sync.Mutex
	children      sync.Map // string -> *Counter
}

// NewCounterVec registers a one-label counter family in the Default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, hp: help, label: label}
	Default.register(v)
	return v
}

// With returns the child counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.children.Load(value); ok {
		return c.(*Counter)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children.Load(value); ok {
		return c.(*Counter)
	}
	c := &Counter{nm: v.nm, hp: v.hp} // unregistered: exposed through the vec
	v.children.Store(value, c)
	return c
}

// Value returns the child's count, 0 if the label was never used.
func (v *CounterVec) Value(value string) int64 {
	if c, ok := v.children.Load(value); ok {
		return c.(*Counter).Value()
	}
	return 0
}

// Total sums all children.
func (v *CounterVec) Total() int64 {
	var t int64
	v.children.Range(func(_, c any) bool { t += c.(*Counter).Value(); return true })
	return t
}

func (v *CounterVec) name() string { return v.nm }
func (v *CounterVec) help() string { return v.hp }

// reset zeroes children in place rather than dropping them: callers cache
// With() handles at init, and those must stay live across resets.
func (v *CounterVec) reset() {
	v.children.Range(func(_, c any) bool { c.(*Counter).reset(); return true })
}

// sortedKeys returns the label values seen so far in sorted order.
func (v *CounterVec) sortedKeys() []string {
	var ks []string
	v.children.Range(func(k, _ any) bool { ks = append(ks, k.(string)); return true })
	sort.Strings(ks)
	return ks
}

func (v *CounterVec) promText(w io.Writer) {
	promHeader(w, v.nm, v.hp, "counter")
	for _, k := range v.sortedKeys() {
		c, ok := v.children.Load(k)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.nm, v.label, k, c.(*Counter).Value())
	}
}

func (v *CounterVec) snapshotInto(m map[string]any) {
	vals := make(map[string]int64)
	v.children.Range(func(k, c any) bool { vals[k.(string)] = c.(*Counter).Value(); return true })
	m[v.nm] = vals
}

// HistogramVec is a histogram family keyed by one label; all children share
// the family's bucket bounds.
type HistogramVec struct {
	nm, hp, label string
	bounds        []float64
	mu            sync.Mutex
	children      sync.Map // string -> *Histogram
}

// NewHistogramVec registers a one-label histogram family in the Default
// registry.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{nm: name, hp: help, label: label, bounds: bounds}
	Default.register(v)
	return v
}

// With returns the child histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.children.Load(value); ok {
		return h.(*Histogram)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children.Load(value); ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.nm, v.hp, v.bounds)
	v.children.Store(value, h)
	return h
}

func (v *HistogramVec) name() string { return v.nm }
func (v *HistogramVec) help() string { return v.hp }

// reset zeroes children in place; see CounterVec.reset.
func (v *HistogramVec) reset() {
	v.children.Range(func(_, h any) bool { h.(*Histogram).reset(); return true })
}

func (v *HistogramVec) sortedKeys() []string {
	var ks []string
	v.children.Range(func(k, _ any) bool { ks = append(ks, k.(string)); return true })
	sort.Strings(ks)
	return ks
}

func (v *HistogramVec) promText(w io.Writer) {
	promHeader(w, v.nm, v.hp, "histogram")
	for _, k := range v.sortedKeys() {
		h, ok := v.children.Load(k)
		if !ok {
			continue
		}
		h.(*Histogram).promLines(w, fmt.Sprintf("%s=%q,", v.label, k))
	}
}

func (v *HistogramVec) snapshotInto(m map[string]any) {
	vals := make(map[string]any)
	v.children.Range(func(k, h any) bool {
		vals[k.(string)] = h.(*Histogram).snapshotValue()
		return true
	})
	m[v.nm] = vals
}

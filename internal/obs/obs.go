// Package obs is the execution engine's observability layer. The paper's
// execution model (Section IV) deliberately makes the engine opaque — methods
// may defer, reorder, fuse, or elide work — which means the only way to
// understand what a deployment is actually doing is instrumentation the
// binding itself provides (SuiteSparse:GraphBLAS ships a "burble" diagnostic
// facility for the same reason). This package supplies three cooperating
// facilities:
//
//   - Per-operation spans. A Span follows one operation through the engine's
//     lifecycle — enqueue → schedule → kernel → commit/rollback — recording
//     the method name, program position, storage layout the kernel consumed,
//     an estimate of bytes touched, stage timestamps, and the outcome
//     (success, failure with rollback, short-circuit cancellation, retry on
//     the generic path, or elision). Spans exist only while a Tracer is
//     registered; with none, Begin returns nil and every Span method is a
//     nil-safe no-op, so the disabled hot path costs one atomic load and
//     zero allocations (guarded by TestDisabledPathAllocFree).
//
//   - An engine-wide metrics registry (metrics.go, engine.go): counters,
//     gauges, and histograms with lock-free atomic hot paths, registered once
//     at package init. The always-on counters absorb the execution engine's
//     previous ad-hoc Stats atomics; the timing histograms are fed only by
//     the built-in MetricsTracer or the kernel instrumentation, both inert
//     until tracing is enabled.
//
//   - Exporters (export.go): Prometheus text exposition, a JSON-able
//     snapshot, and an expvar publication of that snapshot.
//
// The package sits at the bottom of the dependency graph (standard library
// only), so internal/core, internal/dataflow, and internal/sparse may all
// emit into it without cycles.
package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Outcome classifies how an operation's passage through the engine ended.
type Outcome uint8

const (
	// OutcomeOK: the kernel ran and the result committed.
	OutcomeOK Outcome = iota
	// OutcomeError: the kernel failed (or a fault was injected); the output
	// was rolled back to its prior committed content and marked invalid.
	OutcomeError
	// OutcomeShortCircuit: the operation never ran its kernel because an
	// input (or its merge-mode output) was invalid from a prior execution
	// error — the DAG scheduler's cancellation mechanism.
	OutcomeShortCircuit
	// OutcomeElided: dead-store elimination pruned the operation before it
	// reached the scheduler.
	OutcomeElided
	// OutcomeCanceled: the flush's context was canceled before the operation
	// was dispatched; it was abandoned unexecuted and its output marked
	// invalid (restorable by a full overwrite).
	OutcomeCanceled
	// OutcomeFused: the flush-time fusion pass folded this producer's
	// computation into its consumer's fused kernel; the operation completed
	// logically (its value flowed downstream) without materializing its
	// output.
	OutcomeFused
)

// String returns the outcome label used in metrics.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeShortCircuit:
		return "short_circuit"
	case OutcomeElided:
		return "elided"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeFused:
		return "fused"
	}
	return "unknown"
}

// Span is the record of one operation's passage through the execution
// engine. Producers obtain one from Begin (nil when tracing is off — every
// method tolerates a nil receiver), fill it through the nil-safe setters as
// the operation advances, and hand it to Emit exactly once.
type Span struct {
	// Op is the GraphBLAS method name ("MxM", "Matrix.Resize", …).
	Op string
	// Pos is the operation's zero-based program-order position in its
	// sequence, or -1 if it was never assigned one.
	Pos int
	// Layout names the storage layout the kernel consumed ("csr", "bitmap",
	// "bitmap-fast", "hyper"); empty when the operation has no format-engine
	// dispatch.
	Layout string
	// Bytes is an estimate of the bytes the kernel touched (derived from the
	// result's stored-element count), 0 when unknown.
	Bytes int64
	// Retried reports that a fast-path kernel failed recoverably and the
	// operation re-ran on the generic CSR path.
	Retried bool
	// Fanout is the number of shard sub-engines a serving-layer request span
	// covered; 0 for engine-operation spans and unsharded request spans.
	Fanout int
	// RolledBack reports that the output's committed store was restored
	// after a kernel failure.
	RolledBack bool
	// Outcome classifies how execution concluded; Err is the execution error
	// for non-OK outcomes.
	Outcome Outcome
	Err     error
	// Stage timestamps: Enqueued is stamped by Begin, Scheduled when a
	// worker (or the blocking path) picks the operation up, Kernel
	// immediately before the kernel body runs, Done by Emit.
	Enqueued  time.Time
	Scheduled time.Time
	Kernel    time.Time
	Done      time.Time
}

// SetPos records the operation's program-order position.
func (s *Span) SetPos(pos int) {
	if s != nil {
		s.Pos = pos
	}
}

// MarkScheduled stamps the moment the scheduler handed the operation to an
// executor.
func (s *Span) MarkScheduled() {
	if s != nil {
		s.Scheduled = time.Now()
	}
}

// MarkKernel stamps the moment the kernel body starts.
func (s *Span) MarkKernel() {
	if s != nil {
		s.Kernel = time.Now()
	}
}

// NoteLayout records the storage layout the kernel consumed. The last call
// wins, so a retried operation reports the layout that actually produced the
// committed result.
func (s *Span) NoteLayout(layout string) {
	if s != nil {
		s.Layout = layout
	}
}

// AddBytes accumulates an estimate of bytes touched by the kernel.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.Bytes += n
	}
}

// NoteFanout records how many shard sub-engines a serving-layer request
// touched (the scatter width of a sharded scatter-gather query).
func (s *Span) NoteFanout(n int) {
	if s != nil {
		s.Fanout = n
	}
}

// NoteRetry records that a fast-path kernel failed recoverably and the
// operation fell back to the generic path.
func (s *Span) NoteRetry() {
	if s != nil {
		s.Retried = true
	}
}

// NoteRollback records that the output's committed store was restored after
// a failure.
func (s *Span) NoteRollback() {
	if s != nil {
		s.RolledBack = true
	}
}

// Finish records the outcome and error. Emit must still be called to deliver
// the span.
func (s *Span) Finish(o Outcome, err error) {
	if s != nil {
		s.Outcome = o
		s.Err = err
	}
}

// QueueLatency is the enqueue→schedule interval, 0 if either stamp is
// missing.
func (s *Span) QueueLatency() time.Duration {
	if s == nil || s.Enqueued.IsZero() || s.Scheduled.IsZero() {
		return 0
	}
	return s.Scheduled.Sub(s.Enqueued)
}

// Duration is the enqueue→done interval, 0 if the span never completed.
func (s *Span) Duration() time.Duration {
	if s == nil || s.Enqueued.IsZero() || s.Done.IsZero() {
		return 0
	}
	return s.Done.Sub(s.Enqueued)
}

// Tracer receives completed operation spans. OnSpan may be called from
// concurrent flush workers; implementations must be safe for concurrent use.
// The span is owned by the callee after delivery.
type Tracer interface {
	OnSpan(*Span)
}

// tracerBox wraps the registered Tracer so an interface value can live in an
// atomic.Pointer.
type tracerBox struct{ t Tracer }

var activeTracer atomic.Pointer[tracerBox]

// SetTracer registers t as the engine's span consumer and returns the
// previous one (nil for none). Passing nil disables span collection; the
// per-operation hot path then costs a single atomic load.
func SetTracer(t Tracer) Tracer {
	var prev *tracerBox
	if t == nil {
		prev = activeTracer.Swap(nil)
	} else {
		prev = activeTracer.Swap(&tracerBox{t: t})
	}
	if prev == nil {
		return nil
	}
	return prev.t
}

// Enabled reports whether a tracer is registered — the master switch for
// span allocation and kernel-level timing.
func Enabled() bool { return activeTracer.Load() != nil }

// Begin opens a span for one operation, stamping the enqueue time. Returns
// nil — and allocates nothing — when no tracer is registered.
//
//grblint:hotpath
func Begin(op string) *Span {
	if activeTracer.Load() == nil {
		return nil
	}
	return &Span{Op: op, Pos: -1, Enqueued: time.Now()}
}

// Emit stamps the completion time and delivers the span to the registered
// tracer. A nil span (tracing was off at Begin) is a no-op; if the tracer
// was unregistered mid-flight the span is dropped.
func Emit(s *Span) {
	if s == nil {
		return
	}
	s.Done = time.Now()
	if b := activeTracer.Load(); b != nil {
		b.t.OnSpan(s)
	}
}

// kernelNoop is the pre-allocated completion callback for the disabled path.
var kernelNoop = func(int) {}

// KernelStart begins timing one storage-kernel invocation and returns the
// completion callback, to be called with the result's stored-element count.
// With tracing disabled it returns a shared no-op, so instrumented kernels
// pay one atomic load and no allocation. Callers invoke the callback
// directly rather than deferring a closure, keeping the disabled path
// allocation-free.
//
//grblint:hotpath
func KernelStart(kernel string) func(nnz int) {
	if activeTracer.Load() == nil {
		return kernelNoop
	}
	start := time.Now()
	return func(nnz int) {
		KernelSeconds.With(kernel).Observe(time.Since(start).Seconds())
		KernelNNZ.With(kernel).Observe(float64(nnz))
	}
}

// profLabels gates pprof label application on executor goroutines.
var profLabels atomic.Bool

// SetProfilingLabels toggles pprof labeling of operation execution and
// returns the previous setting. With it on, CPU profile samples taken inside
// DAG workers carry a "graphblas_op" label naming the operation kind, so a
// profile attributes time to MxM vs EWiseAdd vs Reduce rather than to an
// anonymous worker goroutine.
func SetProfilingLabels(on bool) bool { return profLabels.Swap(on) }

// ProfilingLabels reports whether executor goroutines apply pprof labels.
func ProfilingLabels() bool { return profLabels.Load() }

// Do runs f, under a pprof label naming the operation kind when profiling
// labels are enabled. The disabled path is a single atomic load.
func Do(op string, f func()) {
	if !profLabels.Load() {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("graphblas_op", op), func(context.Context) { f() })
}

// MetricsTracer is the built-in Tracer that folds spans into the engine
// metrics registry: per-op duration and queue-latency histograms plus
// per-outcome span counters. Registering it (and nothing else) turns the
// span stream into Prometheus-exportable aggregates with no external
// dependencies.
type MetricsTracer struct{}

// NewMetricsTracer returns the registry-feeding tracer.
func NewMetricsTracer() Tracer { return MetricsTracer{} }

// OnSpan implements Tracer.
func (MetricsTracer) OnSpan(s *Span) {
	SpanOutcomes.With(s.Outcome.String()).Inc()
	if d := s.Duration(); d > 0 {
		OpSeconds.With(s.Op).Observe(d.Seconds())
	}
	if q := s.QueueLatency(); q > 0 {
		OpQueueSeconds.With(s.Op).Observe(q.Seconds())
	}
	if s.Bytes > 0 {
		OpBytes.With(s.Op).Observe(float64(s.Bytes))
	}
}

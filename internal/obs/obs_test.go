package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// collector is a test tracer that records every span it receives.
type collector struct {
	mu    sync.Mutex
	spans []*Span
}

func (c *collector) OnSpan(s *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func TestSpanLifecycle(t *testing.T) {
	c := &collector{}
	prev := SetTracer(c)
	defer SetTracer(prev)

	s := Begin("MxM")
	if s == nil {
		t.Fatal("Begin returned nil with a tracer registered")
	}
	s.SetPos(3)
	s.MarkScheduled()
	s.MarkKernel()
	s.NoteLayout("bitmap")
	s.AddBytes(1024)
	s.NoteRetry()
	s.NoteFanout(4)
	s.Finish(OutcomeOK, nil)
	Emit(s)

	if len(c.spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(c.spans))
	}
	got := c.spans[0]
	if got.Op != "MxM" || got.Pos != 3 || got.Layout != "bitmap" || got.Bytes != 1024 || !got.Retried || got.Fanout != 4 {
		t.Errorf("span fields = %+v", got)
	}
	if got.Outcome != OutcomeOK {
		t.Errorf("outcome = %v, want ok", got.Outcome)
	}
	if got.Done.Before(got.Enqueued) || got.Duration() <= 0 {
		t.Errorf("timestamps not monotone: %+v", got)
	}
	if got.QueueLatency() < 0 {
		t.Errorf("negative queue latency")
	}
}

func TestDisabledSpanIsNilSafe(t *testing.T) {
	prev := SetTracer(nil)
	defer SetTracer(prev)

	s := Begin("MxV")
	if s != nil {
		t.Fatal("Begin returned non-nil with no tracer")
	}
	// Every method must tolerate the nil receiver.
	s.SetPos(1)
	s.MarkScheduled()
	s.MarkKernel()
	s.NoteLayout("csr")
	s.AddBytes(8)
	s.NoteRetry()
	s.NoteRollback()
	s.NoteFanout(8)
	s.Finish(OutcomeError, nil)
	if s.Duration() != 0 || s.QueueLatency() != 0 {
		t.Error("nil span reported nonzero durations")
	}
	Emit(s)
}

// TestDisabledPathAllocFree is the zero-overhead contract: with no tracer
// registered, the full per-op instrumentation sequence must not allocate.
// This is the non-flaky stand-in for a timing gate — if the disabled path
// allocates, it shows up here deterministically rather than as benchmark
// noise.
func TestDisabledPathAllocFree(t *testing.T) {
	prev := SetTracer(nil)
	defer SetTracer(prev)

	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin("MxM")
		s.SetPos(0)
		s.MarkScheduled()
		s.MarkKernel()
		s.NoteLayout("csr")
		s.NoteFanout(4)
		s.Finish(OutcomeOK, nil)
		Emit(s)
		done := KernelStart("spgemm")
		done(42)
		Do("MxM", func() {})
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f per op, want 0", allocs)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeOK: "ok", OutcomeError: "error",
		OutcomeShortCircuit: "short_circuit", OutcomeElided: "elided",
		Outcome(99): "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := &Registry{}
	c := &Counter{nm: "c_total", hp: "test counter"}
	g := &Gauge{nm: "g", hp: "test gauge"}
	r.register(c)
	r.register(g)

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	g.SetMax(3) // below current: no-op
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("gauge after SetMax = %d, want 11", g.Value())
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE c_total counter", "c_total 5",
		"# TYPE g gauge", "g 11",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("Reset did not zero metrics")
	}
}

func TestHistogramBucketsAndProm(t *testing.T) {
	h := newHistogram("lat_seconds", "test latencies", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}

	var sb strings.Builder
	h.promText(&sb)
	text := sb.String()
	// Cumulative le buckets: 0.5 and 1 fall in le=1; 5 in le=10; 50 in
	// le=100; 500 only in +Inf.
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="100"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 556.5",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecsCreateAndExpose(t *testing.T) {
	r := &Registry{}
	cv := &CounterVec{nm: "ops_total", hp: "per-op", label: "op"}
	hv := &HistogramVec{nm: "ops_seconds", hp: "per-op time", label: "op", bounds: []float64{1}}
	r.register(cv)
	r.register(hv)

	cv.With("MxM").Add(2)
	cv.With("MxV").Inc()
	if cv.Value("MxM") != 2 || cv.Value("MxV") != 1 || cv.Value("unused") != 0 {
		t.Errorf("counter vec values wrong: MxM=%d MxV=%d", cv.Value("MxM"), cv.Value("MxV"))
	}
	if cv.Total() != 3 {
		t.Errorf("total = %d, want 3", cv.Total())
	}
	hv.With("MxM").Observe(0.5)
	hv.With("MxM").Observe(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`ops_total{op="MxM"} 2`,
		`ops_total{op="MxV"} 1`,
		`ops_seconds_bucket{op="MxM",le="1"} 1`,
		`ops_seconds_bucket{op="MxM",le="+Inf"} 2`,
		`ops_seconds_count{op="MxM"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	r.Reset()
	if cv.Total() != 0 {
		t.Error("Reset left counter-vec children")
	}
}

func TestSnapshotIsJSONable(t *testing.T) {
	r := &Registry{}
	c := &Counter{nm: "a_total", hp: "h"}
	cv := &CounterVec{nm: "b_total", hp: "h", label: "op"}
	h := newHistogram("c_seconds", "h", []float64{1})
	r.register(c)
	r.register(cv)
	r.register(h)
	c.Add(3)
	cv.With("x").Inc()
	h.Observe(0.25)

	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-able: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["a_total"].(float64) != 3 {
		t.Errorf("a_total = %v, want 3", back["a_total"])
	}
	hv := back["c_seconds"].(map[string]any)
	if hv["count"].(float64) != 1 || hv["sum"].(float64) != 0.25 {
		t.Errorf("histogram snapshot = %v", hv)
	}
}

func TestMetricsTracerFeedsRegistry(t *testing.T) {
	ResetEngine()
	prev := SetTracer(NewMetricsTracer())
	defer func() { SetTracer(prev); ResetEngine() }()

	s := Begin("EWiseAdd")
	s.MarkScheduled()
	s.AddBytes(2048)
	s.Finish(OutcomeOK, nil)
	time.Sleep(time.Microsecond)
	Emit(s)

	f := Begin("MxM")
	f.Finish(OutcomeError, nil)
	Emit(f)

	if SpanOutcomes.Value("ok") != 1 || SpanOutcomes.Value("error") != 1 {
		t.Errorf("span outcomes: ok=%d error=%d, want 1/1",
			SpanOutcomes.Value("ok"), SpanOutcomes.Value("error"))
	}
	if OpSeconds.With("EWiseAdd").Count() != 1 {
		t.Errorf("OpSeconds[EWiseAdd] count = %d, want 1", OpSeconds.With("EWiseAdd").Count())
	}
	if OpBytes.With("EWiseAdd").Count() != 1 {
		t.Errorf("OpBytes[EWiseAdd] count = %d, want 1", OpBytes.With("EWiseAdd").Count())
	}
}

func TestKernelStartRecordsWhenEnabled(t *testing.T) {
	ResetEngine()
	prev := SetTracer(NewMetricsTracer())
	defer func() { SetTracer(prev); ResetEngine() }()

	done := KernelStart("spgemm")
	done(1234)
	if KernelSeconds.With("spgemm").Count() != 1 {
		t.Errorf("kernel seconds count = %d, want 1", KernelSeconds.With("spgemm").Count())
	}
	if KernelNNZ.With("spgemm").Count() != 1 {
		t.Errorf("kernel nnz count = %d, want 1", KernelNNZ.With("spgemm").Count())
	}
}

func TestSetTracerReturnsPrevious(t *testing.T) {
	c1, c2 := &collector{}, &collector{}
	orig := SetTracer(c1)
	if got := SetTracer(c2); got != c1 {
		t.Errorf("SetTracer returned %v, want first collector", got)
	}
	if got := SetTracer(orig); got != c2 {
		t.Errorf("SetTracer returned %v, want second collector", got)
	}
}

func TestProfilingLabelsToggle(t *testing.T) {
	prev := SetProfilingLabels(true)
	defer SetProfilingLabels(prev)
	if !ProfilingLabels() {
		t.Fatal("labels not enabled")
	}
	ran := false
	Do("MxM", func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f under labels")
	}
	SetProfilingLabels(false)
	ran = false
	Do("MxM", func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f with labels off")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := &Registry{}
	c := &Counter{nm: "n_total", hp: "h"}
	h := newHistogram("n_seconds", "h", []float64{1, 2})
	cv := &CounterVec{nm: "nv_total", hp: "h", label: "op"}
	r.register(c)
	r.register(h)
	r.register(cv)

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 3))
				cv.With([]string{"a", "b"}[w%2]).Inc()
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if cv.Total() != workers*perWorker {
		t.Errorf("vec total = %d, want %d", cv.Total(), workers*perWorker)
	}
}

// TestVecExposeDuringConcurrentWith: the vec families' exposition walks
// sortedKeys then re-Loads each child; children are created concurrently by
// With. The Load result is rechecked (not blank-asserted), so exposition
// running against a family mid-growth never panics.
func TestVecExposeDuringConcurrentWith(t *testing.T) {
	r := &Registry{}
	cv := &CounterVec{nm: "grow_total", hp: "h", label: "op"}
	hv := &HistogramVec{nm: "grow_seconds", hp: "h", label: "op", bounds: []float64{1}}
	r.register(cv)
	r.register(hv)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			k := fmt.Sprintf("op%d", i%64)
			cv.With(k).Inc()
			hv.With(k).Observe(float64(i % 3))
		}
	}()
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
	}
	close(done)
	wg.Wait()
}

package obs

import (
	"expvar"
	"io"
	"sync"
)

// WriteText writes the Default registry in the Prometheus text exposition
// format — suitable for serving at a /metrics endpoint or dumping after a
// benchmark run.
func WriteText(w io.Writer) error { return Default.WriteText(w) }

// Snapshot returns a JSON-able view of the Default registry.
func Snapshot() map[string]any { return Default.Snapshot() }

var expvarOnce sync.Once

// PublishExpvar publishes the Default registry's snapshot under the expvar
// name "graphblas_metrics", so a process already serving /debug/vars exposes
// the engine metrics with no extra wiring. Safe to call more than once;
// only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("graphblas_metrics", expvar.Func(func() any { return Snapshot() }))
	})
}

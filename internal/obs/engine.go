package obs

// Predeclared engine metrics. The always-on counters and gauges absorb what
// used to be ad-hoc atomics in internal/core's Stats plumbing; the
// histograms are fed only by kernel instrumentation and the MetricsTracer,
// both inert while no tracer is registered.

// timeBuckets span 1µs–10s: enqueue latencies sit at the bottom, scale-14
// SpGEMM flushes at the top.
var timeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// nnzBuckets span single-element results through ~10M-edge frontiers.
var nnzBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// bytesBuckets span a scalar write through multi-GB operands.
var bytesBuckets = []float64{64, 1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30}

// depthBuckets cover flush batch sizes (powers of two up to 256 deferred ops).
var depthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

var (
	// Sequence / queue lifecycle.
	OpsEnqueued = NewCounterVec("graphblas_ops_enqueued_total",
		"Operations entering the execution engine, by method name.", "op")
	OpsExecuted = NewCounterVec("graphblas_ops_executed_total",
		"Operations whose kernel ran to a committed result, by method name.", "op")
	OpsFailed = NewCounterVec("graphblas_ops_failed_total",
		"Operations that ended in execution error or short-circuit cancellation, by method name.", "op")
	OpsElided = NewCounter("graphblas_ops_elided_total",
		"Deferred operations pruned by dead-store elimination before scheduling.")
	OpsCanceled = NewCounter("graphblas_ops_canceled_total",
		"Deferred operations abandoned unexecuted because the flush context was canceled.")
	OpsFused = NewCounter("graphblas_ops_fused_total",
		"Deferred producers whose computation ran inside a consumer's fused kernel instead of materializing.")
	FusedPairs = NewCounter("graphblas_fused_pairs_total",
		"Producer-consumer pairs collapsed into one fused kernel by the flush-time fusion pass.")
	Flushes = NewCounter("graphblas_flushes_total",
		"Queue flushes (Wait, blocking-mode barriers, and forced materializations).")
	ParallelFlushes = NewCounter("graphblas_parallel_flushes_total",
		"Flushes executed by the DAG dataflow scheduler rather than sequentially.")
	FlushDepth = NewHistogram("graphblas_flush_depth",
		"Deferred operations retired per flush.", depthBuckets)
	QueueDepth = NewGauge("graphblas_queue_depth",
		"Deferred operations currently waiting in the nonblocking queue.")

	// DAG scheduler.
	DagDispatches = NewCounter("graphblas_dag_dispatches_total",
		"Nodes handed to DAG flush workers.")
	DagPoisoned = NewCounter("graphblas_dag_poisoned_total",
		"DAG nodes whose execution captured a panic (poisoned the schedule).")
	DagWidth = NewGauge("graphblas_dag_width_max",
		"High-water mark of simultaneously running DAG nodes.")
	DagNodes = NewCounter("graphblas_dag_nodes_total",
		"Nodes across all DAG-scheduled flushes.")
	DagEdges = NewCounter("graphblas_dag_edges_total",
		"Hazard edges (RAW/WAW/WAR) across all DAG-scheduled flushes.")

	// Format engine.
	FormatKernels = NewCounterVec("graphblas_format_kernels_total",
		"Kernel dispatches that consumed a non-CSR layout, by layout.", "layout")
	FormatConversions = NewCounter("graphblas_format_conversions_total",
		"Materializations of an alternate layout from the committed CSR store.")

	// Streaming engine (internal/stream ingestion through core's queue).
	StreamBatches = NewCounter("graphblas_stream_batches_total",
		"Sealed update batches absorbed into a matrix's hypersparse delta overlay.")
	StreamEdges = NewCounter("graphblas_stream_edge_updates_total",
		"Edge inserts and deletes absorbed, counted after last-wins batch dedup.")
	StreamDeltaNNZ = NewGauge("graphblas_stream_delta_entries",
		"Updates resident in the most recently mutated matrix's delta overlay.")
	StreamMerges = NewCounter("graphblas_stream_merges_total",
		"Delta-to-main compactions published, policy-triggered or explicit.")
	StreamMergeBytes = NewCounter("graphblas_stream_merge_bytes_total",
		"Bytes of fresh main-store CSR written by delta-to-main compactions.")
	StreamEpochs = NewCounter("graphblas_stream_epochs_total",
		"Epoch publications across all matrices, one per compaction.")

	// Fault recovery.
	KernelRetries = NewCounter("graphblas_kernel_retries_total",
		"Fast-path kernel failures recovered by re-running on the generic CSR path.")
	Rollbacks = NewCounter("graphblas_rollbacks_total",
		"Transactional restores of an output's committed store after kernel failure.")
	FaultsInjected = NewCounter("graphblas_faults_injected_total",
		"Deterministic faults drawn by the injection harness.")

	// Span-derived (fed by MetricsTracer; empty until a tracer is set).
	SpanOutcomes = NewCounterVec("graphblas_span_outcomes_total",
		"Completed operation spans, by outcome.", "outcome")
	OpSeconds = NewHistogramVec("graphblas_op_seconds",
		"Enqueue-to-completion latency per operation, by method name.", "op", timeBuckets)
	OpQueueSeconds = NewHistogramVec("graphblas_op_queue_seconds",
		"Enqueue-to-schedule latency per operation, by method name.", "op", timeBuckets)
	OpBytes = NewHistogramVec("graphblas_op_bytes",
		"Estimated bytes touched per operation, by method name.", "op", bytesBuckets)

	// Kernel-level (fed by KernelStart; empty until a tracer is set).
	KernelSeconds = NewHistogramVec("graphblas_kernel_seconds",
		"Storage-kernel execution time, by kernel.", "kernel", timeBuckets)
	KernelNNZ = NewHistogramVec("graphblas_kernel_result_nnz",
		"Stored elements in each kernel's result, by kernel.", "kernel", nnzBuckets)
)

// ResetEngine zeroes every engine metric. Used by the core package's stats
// reset (test isolation) so counter assertions see only their own run.
func ResetEngine() { Default.Reset() }

// Package builtins provides the predefined GraphBLAS operators, monoids,
// and semirings: the Table IV operators of the paper, the full operator
// families of the 1.0 specification across the built-in domains, and the
// five Table I semirings (standard arithmetic, max-plus, min-max, GF(2),
// and — in package setalg — the power-set algebra).
//
// Where the C API enumerates suffixed names (GrB_PLUS_INT32, GrB_PLUS_FP32,
// …), this binding provides generic constructors (Plus[int32](),
// Plus[float32]()); the exact Table IV names are also exported as variables
// for parity with the paper's example code.
package builtins

import (
	"math"

	"graphblas/internal/core"
)

// Number is the constraint covering the built-in numeric GraphBLAS domains.
type Number interface {
	int | int8 | int16 | int32 | int64 |
		uint | uint8 | uint16 | uint32 | uint64 |
		float32 | float64
}

// Integer is the constraint covering the integer domains.
type Integer interface {
	int | int8 | int16 | int32 | int64 |
		uint | uint8 | uint16 | uint32 | uint64
}

// Float is the constraint covering the floating-point domains.
type Float interface{ float32 | float64 }

// Ordered is the constraint for domains with a total order.
type Ordered = Number

// --- binary operators -------------------------------------------------

// Plus returns the addition operator x + y (GrB_PLUS_T).
func Plus[T Number]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "plus", F: func(x, y T) T { return x + y }}
}

// Times returns the multiplication operator x * y (GrB_TIMES_T).
func Times[T Number]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "times", F: func(x, y T) T { return x * y }}
}

// Minus returns the subtraction operator x - y (GrB_MINUS_T).
func Minus[T Number]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "minus", F: func(x, y T) T { return x - y }}
}

// Div returns the division operator x / y (GrB_DIV_T). Integer division by
// zero follows Go semantics (panic); floating division follows IEEE-754.
func Div[T Number]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "div", F: func(x, y T) T { return x / y }}
}

// Min returns the minimum operator (GrB_MIN_T).
func Min[T Ordered]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "min", F: func(x, y T) T {
		if y < x {
			return y
		}
		return x
	}}
}

// Max returns the maximum operator (GrB_MAX_T).
func Max[T Ordered]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "max", F: func(x, y T) T {
		if y > x {
			return y
		}
		return x
	}}
}

// First returns the operator selecting its first argument (GrB_FIRST_T).
func First[T any]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "first", F: func(x, _ T) T { return x }}
}

// Second returns the operator selecting its second argument (GrB_SECOND_T).
func Second[T any]() core.BinaryOp[T, T, T] {
	return core.BinaryOp[T, T, T]{Name: "second", F: func(_, y T) T { return y }}
}

// --- comparison operators (result domain bool) ------------------------

// Eq returns x == y (GrB_EQ_T).
func Eq[T Number]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "eq", F: func(x, y T) bool { return x == y }}
}

// Ne returns x != y (GrB_NE_T).
func Ne[T Number]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "ne", F: func(x, y T) bool { return x != y }}
}

// Lt returns x < y (GrB_LT_T).
func Lt[T Ordered]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "lt", F: func(x, y T) bool { return x < y }}
}

// Gt returns x > y (GrB_GT_T).
func Gt[T Ordered]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "gt", F: func(x, y T) bool { return x > y }}
}

// Le returns x <= y (GrB_LE_T).
func Le[T Ordered]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "le", F: func(x, y T) bool { return x <= y }}
}

// Ge returns x >= y (GrB_GE_T).
func Ge[T Ordered]() core.BinaryOp[T, T, bool] {
	return core.BinaryOp[T, T, bool]{Name: "ge", F: func(x, y T) bool { return x >= y }}
}

// --- logical operators -------------------------------------------------

// LOr returns logical or (GrB_LOR).
func LOr() core.BinaryOp[bool, bool, bool] {
	return core.BinaryOp[bool, bool, bool]{Name: "lor", F: func(x, y bool) bool { return x || y }}
}

// LAnd returns logical and (GrB_LAND).
func LAnd() core.BinaryOp[bool, bool, bool] {
	return core.BinaryOp[bool, bool, bool]{Name: "land", F: func(x, y bool) bool { return x && y }}
}

// LXor returns logical exclusive or (GrB_LXOR) — the GF(2) addition of
// Table I.
func LXor() core.BinaryOp[bool, bool, bool] {
	return core.BinaryOp[bool, bool, bool]{Name: "lxor", F: func(x, y bool) bool { return x != y }}
}

// --- unary operators ----------------------------------------------------

// Identity returns the identity unary operator (GrB_IDENTITY_T).
func Identity[T any]() core.UnaryOp[T, T] {
	return core.UnaryOp[T, T]{Name: "identity", F: func(x T) T { return x }}
}

// AInv returns the additive inverse -x (GrB_AINV_T).
func AInv[T Number]() core.UnaryOp[T, T] {
	return core.UnaryOp[T, T]{Name: "ainv", F: func(x T) T { return -x }}
}

// MInv returns the multiplicative inverse 1/x (GrB_MINV_T; Figure 3 line
// 57 uses the FP32 instance).
func MInv[T Float]() core.UnaryOp[T, T] {
	return core.UnaryOp[T, T]{Name: "minv", F: func(x T) T { return 1 / x }}
}

// LNot returns logical negation (GrB_LNOT).
func LNot() core.UnaryOp[bool, bool] {
	return core.UnaryOp[bool, bool]{Name: "lnot", F: func(x bool) bool { return !x }}
}

// Abs returns the absolute value (GxB_ABS_T extension).
func Abs[T Number]() core.UnaryOp[T, T] {
	return core.UnaryOp[T, T]{Name: "abs", F: func(x T) T {
		if x < 0 {
			return -x
		}
		return x
	}}
}

// One returns the constant-one unary operator (GxB_ONE_T extension), useful
// for converting any structure into a uniform pattern.
func One[T Number]() core.UnaryOp[T, T] {
	return core.UnaryOp[T, T]{Name: "one", F: func(T) T { return 1 }}
}

// Cast returns the unary operator converting between numeric domains — the
// explicit form of the C API's implicit typecasts (e.g. the
// GrB_IDENTITY_BOOL cast of Figure 3 line 41 becomes CastToBool).
func Cast[From, To Number]() core.UnaryOp[From, To] {
	return core.UnaryOp[From, To]{Name: "cast", F: func(x From) To { return To(x) }}
}

// CastToBool converts a numeric domain to bool with the C rule v != 0.
func CastToBool[From Number]() core.UnaryOp[From, bool] {
	return core.UnaryOp[From, bool]{Name: "cast_bool", F: func(x From) bool { return x != 0 }}
}

// CastBoolTo converts bool to a numeric domain (false→0, true→1).
func CastBoolTo[To Number]() core.UnaryOp[bool, To] {
	return core.UnaryOp[bool, To]{Name: "cast_from_bool", F: func(x bool) To {
		if x {
			return 1
		}
		return 0
	}}
}

// --- extreme values (monoid identities) ---------------------------------

// MaxValue returns the largest representable value of the domain (+Inf for
// floats): the identity of the Min monoid and the "∞" of Table I's min-max
// algebra.
func MaxValue[T Number]() T {
	var z T
	switch any(z).(type) {
	case int:
		v := int(math.MaxInt)
		return T(v)
	case int8:
		v := int8(math.MaxInt8)
		return T(v)
	case int16:
		v := int16(math.MaxInt16)
		return T(v)
	case int32:
		v := int32(math.MaxInt32)
		return T(v)
	case int64:
		v := int64(math.MaxInt64)
		return T(v)
	case uint:
		v := uint(math.MaxUint)
		return T(v)
	case uint8:
		v := uint8(math.MaxUint8)
		return T(v)
	case uint16:
		v := uint16(math.MaxUint16)
		return T(v)
	case uint32:
		v := uint32(math.MaxUint32)
		return T(v)
	case uint64:
		v := uint64(math.MaxUint64)
		return T(v)
	case float32:
		v := float32(math.Inf(1))
		return T(v)
	case float64:
		return T(math.Inf(1))
	}
	return z
}

// MinValue returns the smallest representable value of the domain (-Inf for
// floats): the identity of the Max monoid and the "-∞" of Table I's
// max-plus algebra.
func MinValue[T Number]() T {
	var z T
	switch any(z).(type) {
	case int:
		v := int(math.MinInt)
		return T(v)
	case int8:
		v := int8(math.MinInt8)
		return T(v)
	case int16:
		v := int16(math.MinInt16)
		return T(v)
	case int32:
		v := int32(math.MinInt32)
		return T(v)
	case int64:
		v := int64(math.MinInt64)
		return T(v)
	case uint, uint8, uint16, uint32, uint64:
		return 0
	case float32:
		v := float32(math.Inf(-1))
		return T(v)
	case float64:
		return T(math.Inf(-1))
	}
	return z
}

// --- monoids -------------------------------------------------------------

// mustMonoid wraps NewMonoid for statically correct constructions.
func mustMonoid[T any](op core.BinaryOp[T, T, T], id T) core.Monoid[T] {
	m, err := core.NewMonoid(op, id)
	if err != nil {
		panic(err)
	}
	return m
}

// PlusMonoid returns ⟨T, +, 0⟩ (Figure 3 line 10 builds the int32
// instance).
func PlusMonoid[T Number]() core.Monoid[T] { return mustMonoid(Plus[T](), 0) }

// TimesMonoid returns ⟨T, *, 1⟩ (Figure 3 line 51).
func TimesMonoid[T Number]() core.Monoid[T] { return mustMonoid(Times[T](), 1) }

// MinMonoid returns ⟨T, min, +∞⟩; the domain minimum is its terminal
// (annihilator) value, enabling early-exit reductions.
func MinMonoid[T Number]() core.Monoid[T] {
	m := mustMonoid(Min[T](), MaxValue[T]())
	term := MinValue[T]()
	m.Terminal = func(v T) bool { return v == term }
	return m
}

// MaxMonoid returns ⟨T, max, -∞⟩; the domain maximum is its terminal value.
func MaxMonoid[T Number]() core.Monoid[T] {
	m := mustMonoid(Max[T](), MinValue[T]())
	term := MaxValue[T]()
	m.Terminal = func(v T) bool { return v == term }
	return m
}

// LOrMonoid returns ⟨bool, ∨, false⟩; true is its terminal value.
func LOrMonoid() core.Monoid[bool] {
	m := mustMonoid(LOr(), false)
	m.Terminal = func(v bool) bool { return v }
	return m
}

// LAndMonoid returns ⟨bool, ∧, true⟩; false is its terminal value.
func LAndMonoid() core.Monoid[bool] {
	m := mustMonoid(LAnd(), true)
	m.Terminal = func(v bool) bool { return !v }
	return m
}

// LXorMonoid returns ⟨bool, ⊻, false⟩ — GF(2) addition.
func LXorMonoid() core.Monoid[bool] { return mustMonoid(LXor(), false) }

// --- semirings (Table I and friends) -------------------------------------

// mustSemiring wraps NewSemiring for statically correct constructions.
func mustSemiring[D1, D2, D3 any](add core.Monoid[D3], mul core.BinaryOp[D1, D2, D3]) core.Semiring[D1, D2, D3] {
	s, err := core.NewSemiring(add, mul)
	if err != nil {
		panic(err)
	}
	return s
}

// PlusTimes returns the standard arithmetic semiring ⟨+, ×, 0⟩ — Table I
// row 1 and the Int32AddMul / FP32AddMul semirings of Figure 3.
func PlusTimes[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(PlusMonoid[T](), Times[T]())
}

// MaxPlus returns the max-plus algebra ⟨max, +, -∞⟩ — Table I row 2
// (longest/critical paths).
func MaxPlus[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MaxMonoid[T](), Plus[T]())
}

// MinPlus returns the tropical semiring ⟨min, +, +∞⟩ (shortest paths); the
// dual of Table I row 2 and the workhorse of the SSSP example.
func MinPlus[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MinMonoid[T](), Plus[T]())
}

// MinMax returns the min-max algebra ⟨min, max, +∞⟩ — Table I row 3
// (minimax/bottleneck paths).
func MinMax[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MinMonoid[T](), Max[T]())
}

// MaxMin returns the max-min (bottleneck capacity) semiring ⟨max, min, -∞⟩.
func MaxMin[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MaxMonoid[T](), Min[T]())
}

// MinTimes returns ⟨min, ×, +∞⟩.
func MinTimes[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MinMonoid[T](), Times[T]())
}

// MinFirst returns ⟨min, first, +∞⟩, used by BFS-parent computations.
func MinFirst[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(MinMonoid[T](), First[T]())
}

// XorAnd returns the GF(2) Galois-field semiring ⟨xor, and, false⟩ —
// Table I row 4.
func XorAnd() core.Semiring[bool, bool, bool] {
	return mustSemiring(LXorMonoid(), LAnd())
}

// LorLand returns the boolean semiring ⟨∨, ∧, false⟩ used for structural
// reachability (unweighted BFS).
func LorLand() core.Semiring[bool, bool, bool] {
	return mustSemiring(LOrMonoid(), LAnd())
}

// PlusFirst returns ⟨+, first, 0⟩: counts paths by propagating the
// left operand, used when the right structure is only a pattern.
func PlusFirst[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(PlusMonoid[T](), First[T]())
}

// PlusSecond returns ⟨+, second, 0⟩.
func PlusSecond[T Number]() core.Semiring[T, T, T] {
	return mustSemiring(PlusMonoid[T](), Second[T]())
}

// --- Table IV named instances --------------------------------------------

// The paper's example uses these exact predefined operators (Table IV).
var (
	// TimesINT32 is GrB_TIMES_INT32.
	TimesINT32 = Times[int32]()
	// PlusINT32 is GrB_PLUS_INT32.
	PlusINT32 = Plus[int32]()
	// PlusFP32 is GrB_PLUS_FP32.
	PlusFP32 = Plus[float32]()
	// TimesFP32 is GrB_TIMES_FP32.
	TimesFP32 = Times[float32]()
	// MInvFP32 is GrB_MINV_FP32.
	MInvFP32 = MInv[float32]()
	// IdentityBOOL is GrB_IDENTITY_BOOL.
	IdentityBOOL = Identity[bool]()
)

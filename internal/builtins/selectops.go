package builtins

import "graphblas/internal/core"

// Predefined index-unary (select) operators, mirroring the GrB_IndexUnaryOp
// catalog of later spec revisions: structural predicates over positions and
// value predicates over thresholds, for use with SelectM/SelectV and
// ApplyIndexOp*.

// Tril keeps entries on or below the k-th diagonal (j - i <= k).
func Tril[D any](k int) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "tril", F: func(_ D, i, j int) bool { return j-i <= k }}
}

// Triu keeps entries on or above the k-th diagonal (j - i >= k).
func Triu[D any](k int) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "triu", F: func(_ D, i, j int) bool { return j-i >= k }}
}

// DiagSel keeps entries on the k-th diagonal.
func DiagSel[D any](k int) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "diag", F: func(_ D, i, j int) bool { return j-i == k }}
}

// OffDiag keeps entries off the k-th diagonal.
func OffDiag[D any](k int) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "offdiag", F: func(_ D, i, j int) bool { return j-i != k }}
}

// ValueEQ keeps entries equal to x.
func ValueEQ[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valueeq", F: func(v D, _, _ int) bool { return v == x }}
}

// ValueNE keeps entries not equal to x.
func ValueNE[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valuene", F: func(v D, _, _ int) bool { return v != x }}
}

// ValueLT keeps entries less than x.
func ValueLT[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valuelt", F: func(v D, _, _ int) bool { return v < x }}
}

// ValueLE keeps entries at most x.
func ValueLE[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valuele", F: func(v D, _, _ int) bool { return v <= x }}
}

// ValueGT keeps entries greater than x.
func ValueGT[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valuegt", F: func(v D, _, _ int) bool { return v > x }}
}

// ValueGE keeps entries at least x.
func ValueGE[D Number](x D) core.IndexUnaryOp[D, bool] {
	return core.IndexUnaryOp[D, bool]{Name: "valuege", F: func(v D, _, _ int) bool { return v >= x }}
}

// RowIndex returns each entry's row index (for ApplyIndexOp).
func RowIndex[D any]() core.IndexUnaryOp[D, int64] {
	return core.IndexUnaryOp[D, int64]{Name: "rowindex", F: func(_ D, i, _ int) int64 { return int64(i) }}
}

// ColIndex returns each entry's column index.
func ColIndex[D any]() core.IndexUnaryOp[D, int64] {
	return core.IndexUnaryOp[D, int64]{Name: "colindex", F: func(_ D, _, j int) int64 { return int64(j) }}
}

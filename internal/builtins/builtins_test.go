package builtins

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinaryOps(t *testing.T) {
	if Plus[int32]().F(3, 4) != 7 {
		t.Fatal("plus")
	}
	if Times[float64]().F(3, 4) != 12 {
		t.Fatal("times")
	}
	if Minus[int]().F(3, 4) != -1 {
		t.Fatal("minus")
	}
	if Div[float64]().F(3, 4) != 0.75 {
		t.Fatal("div")
	}
	if Min[int8]().F(3, -4) != -4 || Min[int8]().F(-4, 3) != -4 {
		t.Fatal("min")
	}
	if Max[uint16]().F(3, 4) != 4 {
		t.Fatal("max")
	}
	if First[string]().F("a", "b") != "a" || Second[string]().F("a", "b") != "b" {
		t.Fatal("first/second")
	}
	if !Eq[int]().F(2, 2) || Eq[int]().F(2, 3) {
		t.Fatal("eq")
	}
	if !Ne[int]().F(2, 3) || Ne[int]().F(2, 2) {
		t.Fatal("ne")
	}
	if !Lt[float32]().F(1, 2) || !Gt[float32]().F(2, 1) || !Le[int]().F(2, 2) || !Ge[int]().F(2, 2) {
		t.Fatal("comparisons")
	}
	if !LOr().F(true, false) || LAnd().F(true, false) || !LXor().F(true, false) || LXor().F(true, true) {
		t.Fatal("logical")
	}
}

func TestUnaryOps(t *testing.T) {
	if Identity[int]().F(5) != 5 {
		t.Fatal("identity")
	}
	if AInv[int]().F(5) != -5 {
		t.Fatal("ainv")
	}
	if MInv[float64]().F(4) != 0.25 {
		t.Fatal("minv")
	}
	if !LNot().F(false) || LNot().F(true) {
		t.Fatal("lnot")
	}
	if Abs[int]().F(-7) != 7 || Abs[int]().F(7) != 7 {
		t.Fatal("abs")
	}
	if One[float32]().F(99) != 1 {
		t.Fatal("one")
	}
	if Cast[float64, int32]().F(3.7) != 3 {
		t.Fatal("cast truncation")
	}
	if Cast[int32, float64]().F(3) != 3.0 {
		t.Fatal("cast widen")
	}
	if !CastToBool[int32]().F(-2) || CastToBool[int32]().F(0) {
		t.Fatal("cast to bool")
	}
	if CastBoolTo[int32]().F(true) != 1 || CastBoolTo[int32]().F(false) != 0 {
		t.Fatal("cast from bool")
	}
}

func TestExtremeValues(t *testing.T) {
	if MaxValue[int8]() != math.MaxInt8 || MinValue[int8]() != math.MinInt8 {
		t.Fatal("int8 extremes")
	}
	if MaxValue[int32]() != math.MaxInt32 || MinValue[int32]() != math.MinInt32 {
		t.Fatal("int32 extremes")
	}
	if MaxValue[uint16]() != math.MaxUint16 || MinValue[uint16]() != 0 {
		t.Fatal("uint16 extremes")
	}
	if MaxValue[uint64]() != math.MaxUint64 {
		t.Fatal("uint64 max")
	}
	if !math.IsInf(MaxValue[float64](), 1) || !math.IsInf(MinValue[float64](), -1) {
		t.Fatal("float64 extremes")
	}
	if !math.IsInf(float64(MaxValue[float32]()), 1) {
		t.Fatal("float32 max")
	}
	if MaxValue[int]() != math.MaxInt || MinValue[int]() != math.MinInt {
		t.Fatal("int extremes")
	}
}

func TestMonoidIdentities(t *testing.T) {
	f := func(x int32) bool {
		p := PlusMonoid[int32]()
		tm := TimesMonoid[int32]()
		mn := MinMonoid[int32]()
		mx := MaxMonoid[int32]()
		return p.Op.F(p.Identity, x) == x &&
			p.Op.F(x, p.Identity) == x &&
			tm.Op.F(tm.Identity, x) == x &&
			mn.Op.F(mn.Identity, x) == x &&
			mx.Op.F(mx.Identity, x) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	l := LOrMonoid()
	a := LAndMonoid()
	x := LXorMonoid()
	for _, b := range []bool{false, true} {
		if l.Op.F(l.Identity, b) != b || a.Op.F(a.Identity, b) != b || x.Op.F(x.Identity, b) != b {
			t.Fatal("bool monoid identity")
		}
	}
}

func TestSemiringStructure(t *testing.T) {
	// Annihilator: for each Table I semiring, 0 ⊗ x accumulated via ⊕
	// behaves as the absorbing element under the implicit-zero rules; we
	// check the defining identities directly on the operator level.
	// The paper (footnote 1) notes IEEE-754 arithmetic is not strictly
	// associative/distributive at the extremes; bound the sampled values so
	// the algebraic laws are exact (integers below 2^26 keep +,× exact).
	bound := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return float64(int64(v) % (1 << 26))
	}
	f := func(x0, y0, z0 float64) bool {
		x, y, z := bound(x0), bound(y0), bound(z0)
		pt := PlusTimes[float64]()
		mp := MinPlus[float64]()
		mm := MinMax[float64]()
		mxp := MaxPlus[float64]()
		// distributivity: x⊗(y⊕z) == (x⊗y)⊕(x⊗z)
		okPT := pt.Mul.F(x, pt.Add.Op.F(y, z)) == pt.Add.Op.F(pt.Mul.F(x, y), pt.Mul.F(x, z))
		okMP := mp.Mul.F(x, mp.Add.Op.F(y, z)) == mp.Add.Op.F(mp.Mul.F(x, y), mp.Mul.F(x, z))
		okMM := mm.Mul.F(x, mm.Add.Op.F(y, z)) == mm.Add.Op.F(mm.Mul.F(x, y), mm.Mul.F(x, z))
		okMXP := mxp.Mul.F(x, mxp.Add.Op.F(y, z)) == mxp.Add.Op.F(mxp.Mul.F(x, y), mxp.Mul.F(x, z))
		// additive identity annihilates ⊗ for min-plus: +∞ + x = +∞.
		okAnn := math.IsInf(mp.Mul.F(mp.Add.Identity, x), 1)
		return okPT && okMP && okMM && okMXP && okAnn
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// GF(2): xor/and over {0,1} is the field.
	g := XorAnd()
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			for _, c := range []bool{false, true} {
				if g.Mul.F(a, g.Add.Op.F(b, c)) != g.Add.Op.F(g.Mul.F(a, b), g.Mul.F(a, c)) {
					t.Fatal("GF(2) distributivity")
				}
			}
		}
	}
	if g.Add.Identity != false {
		t.Fatal("GF(2) zero")
	}
}

func TestTableIVNamedInstances(t *testing.T) {
	if TimesINT32.F(6, 7) != 42 {
		t.Fatal("GrB_TIMES_INT32")
	}
	if PlusINT32.F(6, 7) != 13 {
		t.Fatal("GrB_PLUS_INT32")
	}
	if PlusFP32.F(1.5, 2.5) != 4 {
		t.Fatal("GrB_PLUS_FP32")
	}
	if TimesFP32.F(1.5, 2) != 3 {
		t.Fatal("GrB_TIMES_FP32")
	}
	if MInvFP32.F(4) != 0.25 {
		t.Fatal("GrB_MINV_FP32")
	}
	if IdentityBOOL.F(true) != true || IdentityBOOL.F(false) != false {
		t.Fatal("GrB_IDENTITY_BOOL")
	}
}

func TestSpecialSemirings(t *testing.T) {
	mf := MinFirst[int64]()
	if mf.Mul.F(3, 99) != 3 {
		t.Fatal("min-first mul")
	}
	pf := PlusFirst[int32]()
	if pf.Mul.F(3, 99) != 3 {
		t.Fatal("plus-first mul")
	}
	ps := PlusSecond[int32]()
	if ps.Mul.F(3, 99) != 99 {
		t.Fatal("plus-second mul")
	}
	mt := MinTimes[float64]()
	if mt.Mul.F(2, 3) != 6 || !math.IsInf(mt.Add.Identity, 1) {
		t.Fatal("min-times")
	}
	mxm := MaxMin[float64]()
	if mxm.Mul.F(2, 3) != 2 || !math.IsInf(mxm.Add.Identity, -1) {
		t.Fatal("max-min")
	}
	ll := LorLand()
	if !ll.Mul.F(true, true) || ll.Add.Identity {
		t.Fatal("lor-land")
	}
}

package stream

import (
	"testing"

	"graphblas/internal/format"
	"graphblas/internal/sparse"
)

// FuzzStreamIngest drives a random insert/delete schedule — split into
// batches at fuzzer-chosen points, with compactions interleaved — through
// the streaming kernels and demands the final content equal a from-scratch
// rebuild of the same schedule in a map model. This is the streamed-equals-
// rebuilt oracle at the kernel layer, where the fuzzer reaches overlay-over-
// overlay and tombstone-resurrection shapes unit tests enumerate poorly.
func FuzzStreamIngest(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x91, 0x23, 0xFF, 0x44, 0x02})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0xC0, 0x11, 0x21, 0x31})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		main := sparse.NewCSR[float64](n, n)
		model := map[[2]int]float64{}
		// Seed the main store deterministically so tombstones have targets.
		for i := 0; i < n; i += 3 {
			main.Set(i, (i*5)%n, float64(i+1))
			model[[2]int{i, (i * 5) % n}] = float64(i + 1)
		}

		var overlay *format.HyperDelta[float64]
		b := NewBatch[float64]()
		flush := func() {
			d, err := b.Seal(n, n)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			b.Reset()
			if d.NNZ() > 0 {
				overlay = Absorb(overlay, d)
			}
		}
		// The model applies every op immediately; the engine defers through
		// batches and overlays. Equality at the end proves the deferral
		// invisible.
		for k, c := range data {
			i, j := int(c>>4), int(c&0x0F)
			switch k % 7 {
			case 3:
				b.Delete(i, j)
				delete(model, [2]int{i, j})
			case 5: // batch boundary
				flush()
			case 6: // compaction
				flush()
				main = Compact(main, overlay)
				overlay = nil
			default:
				b.Insert(i, j, float64(k%9)+1)
				model[[2]int{i, j}] = float64(k%9) + 1
			}
		}
		flush()
		final := Compact(main, overlay)
		if final.NNZ() != len(model) {
			t.Fatalf("NNZ %d, want %d", final.NNZ(), len(model))
		}
		is, js, vs := final.Tuples()
		for k := range is {
			if model[[2]int{is[k], js[k]}] != vs[k] {
				t.Fatalf("(%d,%d)=%v, want %v", is[k], js[k], vs[k], model[[2]int{is[k], js[k]}])
			}
		}
	})
}

// Package stream is the streaming-graph ingestion layer: continuous edge
// insert/delete batches absorbed as hypersparse delta matrices layered over
// a matrix's main store, compacted on a size/age policy — the design of the
// "Parallel Hypersparse, Matrix Based Graph Streaming" line of work, carried
// out inside this engine's nonblocking machinery rather than beside it. The
// package owns the passive pieces (batch builder, DCSR absorb and merge
// kernels, policy, pinned epochs); internal/core enqueues them as hazard-
// ordered writer nodes and snapshots around them, so a batch is atomic and
// ordered exactly like any other GraphBLAS operation.
package stream

import (
	"fmt"

	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/sparse"
)

// Batch is an UpdateBatch builder: a program-ordered log of edge inserts and
// deletes destined for one atomic application. The builder is plain mutable
// state for a single producer goroutine; Seal copies it into an immutable
// overlay, so the producer may keep appending (or Reset and reuse the
// backing array) after handing a sealed batch to the engine.
type Batch[D any] struct {
	ops []sparse.Tuple[D]
}

// NewBatch creates an empty update batch.
func NewBatch[D any]() *Batch[D] { return &Batch[D]{} }

// Insert records an edge insert (or overwrite) at (i, j).
func (b *Batch[D]) Insert(i, j int, v D) {
	b.ops = append(b.ops, sparse.Tuple[D]{I: i, J: j, V: v})
}

// Delete records an edge deletion at (i, j). Deleting an absent edge is a
// no-op when the batch is applied.
func (b *Batch[D]) Delete(i, j int) {
	b.ops = append(b.ops, sparse.Tuple[D]{I: i, J: j, Del: true})
}

// Len reports the number of recorded updates (before dedup).
func (b *Batch[D]) Len() int { return len(b.ops) }

// Reset empties the builder, keeping the backing array for reuse.
func (b *Batch[D]) Reset() { b.ops = b.ops[:0] }

// Each visits every recorded update in program order — the routing hook the
// sharding layer uses to deal one logical batch into per-shard sub-batches.
// del reports a deletion; v is meaningful only for inserts. Visiting preserves
// order, so per-shard sub-batches keep the last-wins semantics of the whole.
func (b *Batch[D]) Each(f func(i, j int, v D, del bool)) {
	for _, t := range b.ops {
		f(t.I, t.J, t.V, t.Del)
	}
}

// Seal validates the batch against the target dimensions and freezes it into
// a hypersparse overlay with last-wins dedup (the final update to each
// position survives, exactly like a pending-tuple flush). The builder is
// left untouched.
func (b *Batch[D]) Seal(nrows, ncols int) (*format.HyperDelta[D], error) {
	for _, t := range b.ops {
		if t.I < 0 || t.I >= nrows || t.J < 0 || t.J >= ncols {
			return nil, fmt.Errorf("stream: update (%d,%d) out of range %dx%d", t.I, t.J, nrows, ncols)
		}
	}
	return format.DeltaFromTuples(nrows, ncols, b.ops), nil
}

// Absorb layers a sealed batch over the current overlay (add wins where both
// touch a position) and returns the combined overlay. This is the streaming
// engine's ingestion kernel: it draws a fault site and charges the governor
// for the retained overlay, so the executor's snapshot/rollback machinery
// covers a mid-absorption failure like any other kernel fault.
//
//grblint:hotpath
func Absorb[D any](old, add *format.HyperDelta[D]) *format.HyperDelta[D] {
	faults.Step("stream.kernel.absorb")
	faults.GovernAlloc("stream.alloc.delta", old.ApproxBytes()+add.ApproxBytes())
	done := obs.KernelStart("stream.absorb")
	merged := format.MergeDeltas(old, add)
	done(merged.NNZ())
	return merged
}

// Compact merges the overlay into the main store (inserts land, tombstones
// drop their targets) and returns the fresh CSR. Like Absorb it is a fault-
// site-drawing kernel, run under the executor's transactional snapshot.
//
//grblint:hotpath
func Compact[D any](main *sparse.CSR[D], delta *format.HyperDelta[D]) *sparse.CSR[D] {
	faults.Step("stream.kernel.merge")
	done := obs.KernelStart("stream.merge")
	out := format.MergeDeltaCSR(main, delta)
	done(out.NNZ())
	return out
}

// Policy is the size/age merge policy deciding when an absorbed overlay is
// compacted into the main store. Zero values disable the corresponding
// trigger; the zero Policy never compacts automatically (manual mode).
type Policy struct {
	// MaxDeltaNNZ compacts once the overlay holds this many updates —
	// bounding the per-read merge cost that every consumer of the matrix's
	// view pays while the overlay is live.
	MaxDeltaNNZ int
	// MaxBatches compacts after this many absorbed batches — bounding
	// staleness of the compacted store independently of update volume.
	MaxBatches int
}

// DefaultPolicy bounds the overlay at 32Ki updates or 64 batches, whichever
// comes first.
func DefaultPolicy() Policy { return Policy{MaxDeltaNNZ: 1 << 15, MaxBatches: 64} }

// Manual never compacts automatically; only an explicit Compact merges.
func Manual() Policy { return Policy{} }

// Eager compacts after every absorbed batch — the delta store degenerates to
// a staging buffer, trading ingest throughput for zero read-side merge cost.
func Eager() Policy { return Policy{MaxBatches: 1} }

// Due reports whether the policy calls for compaction given the overlay's
// current update count and the number of batches absorbed since the last
// compaction.
func (p Policy) Due(deltaNNZ, batches int) bool {
	return (p.MaxDeltaNNZ > 0 && deltaNNZ >= p.MaxDeltaNNZ) ||
		(p.MaxBatches > 0 && batches >= p.MaxBatches)
}

package stream

import (
	"strings"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/sparse"
)

func TestBatchBuilder(t *testing.T) {
	b := NewBatch[float64]()
	b.Insert(1, 2, 5)
	b.Insert(1, 2, 7) // last wins at seal
	b.Delete(0, 0)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup happens at Seal)", b.Len())
	}
	d, err := b.Seal(3, 3)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if d.NNZ() != 2 {
		t.Fatalf("sealed NNZ = %d, want 2", d.NNZ())
	}
	if v, del, ok := d.Lookup(1, 2); !ok || del || v != 7 {
		t.Fatalf("Lookup(1,2) = %v,%v,%v; want last write 7", v, del, ok)
	}
	if _, del, ok := d.Lookup(0, 0); !ok || !del {
		t.Fatalf("Lookup(0,0): tombstone expected")
	}
	// The builder stays usable after Seal; Reset empties it.
	b.Insert(2, 2, 1)
	if b.Len() != 4 {
		t.Fatalf("builder frozen after Seal")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Reset left %d ops", b.Len())
	}
	d2, err := b.Seal(3, 3)
	if err != nil || d2.NNZ() != 0 {
		t.Fatalf("empty seal: %v nnz %d", err, d2.NNZ())
	}
}

func TestBatchSealBounds(t *testing.T) {
	b := NewBatch[int]()
	b.Insert(2, 5, 1)
	if _, err := b.Seal(3, 5); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Seal must reject (2,5) in 3x5, got %v", err)
	}
	if _, err := b.Seal(3, 6); err != nil {
		t.Fatalf("Seal in 3x6: %v", err)
	}
}

func TestPolicyDue(t *testing.T) {
	if (Policy{}).Due(1<<30, 1<<30) {
		t.Fatalf("manual policy must never be due")
	}
	p := DefaultPolicy()
	if p.Due(100, 3) {
		t.Fatalf("default policy due too early")
	}
	if !p.Due(p.MaxDeltaNNZ, 0) || !p.Due(0, p.MaxBatches) {
		t.Fatalf("default policy must trigger on either bound")
	}
	if !Eager().Due(0, 1) {
		t.Fatalf("eager policy must trigger on the first batch")
	}
}

func TestAbsorbAndCompact(t *testing.T) {
	main := sparse.NewCSR[float64](4, 4)
	main.Set(0, 0, 1)
	main.Set(1, 1, 2)

	b1 := NewBatch[float64]()
	b1.Insert(0, 3, 9)
	b1.Delete(1, 1)
	d1, err := b1.Seal(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBatch[float64]()
	b2.Insert(1, 1, 7) // resurrect the deleted edge
	d2, err := b2.Seal(4, 4)
	if err != nil {
		t.Fatal(err)
	}

	overlay := Absorb(nil, d1)
	overlay = Absorb(overlay, d2)
	out := Compact(main, overlay)
	want := map[[2]int]float64{{0, 0}: 1, {0, 3}: 9, {1, 1}: 7}
	if out.NNZ() != len(want) {
		t.Fatalf("NNZ = %d, want %d", out.NNZ(), len(want))
	}
	for k, v := range want {
		if got, ok := out.Get(k[0], k[1]); !ok || got != v {
			t.Fatalf("(%d,%d) = %v,%v; want %v", k[0], k[1], got, ok, v)
		}
	}
	if got, ok := main.Get(1, 1); !ok || got != 2 {
		t.Fatalf("Compact mutated its input: (1,1) = %v,%v", got, ok)
	}
}

// TestKernelFaultSites proves the registered stream.* sites are the ones the
// kernels actually draw, in the order a fault plan would see them.
func TestKernelFaultSites(t *testing.T) {
	for _, site := range []string{"stream.kernel.absorb", "stream.kernel.merge"} {
		func() {
			faults.Configure(1, faults.Rule{Site: site, Kind: faults.KernelErr, Times: 1})
			defer faults.Disable()
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("site %s: fault expected", site)
				}
			}()
			b := NewBatch[float64]()
			b.Insert(0, 0, 1)
			d, _ := b.Seal(2, 2)
			Compact(sparse.NewCSR[float64](2, 2), Absorb(nil, d))
		}()
	}
	// The governor gate: an overlay larger than the budget fails absorption.
	faults.Configure(1)
	defer faults.Disable()
	prev := faults.SetAllocBudget(1)
	defer faults.SetAllocBudget(prev)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("stream.alloc.delta: governor fault expected")
			}
		}()
		b := NewBatch[float64]()
		for i := 0; i < 64; i++ {
			b.Insert(i, i, 1)
		}
		d, _ := b.Seal(64, 64)
		Absorb(nil, d)
	}()
}

func TestEpochSnapshot(t *testing.T) {
	main := sparse.NewCSR[float64](3, 3)
	main.Set(0, 0, 1)
	main.Set(2, 2, 4)
	d := format.DeltaFromTuples(3, 3, []sparse.Tuple[float64]{
		{I: 0, J: 0, Del: true},
		{I: 1, J: 1, V: 5},
		{I: 2, J: 0, Del: true}, // delete of an absent element: no effect on NVals
	})
	e := NewEpoch(3, main, d)
	if e.ID() != 3 {
		t.Fatalf("ID = %d", e.ID())
	}
	if nr, nc := e.Dims(); nr != 3 || nc != 3 {
		t.Fatalf("Dims = %dx%d", nr, nc)
	}
	if e.NVals() != 2 {
		t.Fatalf("NVals = %d, want 2 (one delete, one insert)", e.NVals())
	}
	if e.DeltaNVals() != 3 {
		t.Fatalf("DeltaNVals = %d", e.DeltaNVals())
	}
	if _, ok := e.Get(0, 0); ok {
		t.Fatalf("(0,0) must be hidden by the tombstone")
	}
	if v, ok := e.Get(1, 1); !ok || v != 5 {
		t.Fatalf("(1,1) = %v,%v", v, ok)
	}
	if v, ok := e.Get(2, 2); !ok || v != 4 {
		t.Fatalf("(2,2) must read through to main, got %v,%v", v, ok)
	}
	is, js, vs := e.Tuples()
	if len(is) != 2 || len(js) != 2 || len(vs) != 2 {
		t.Fatalf("Tuples len %d/%d/%d", len(is), len(js), len(vs))
	}
	// A nil-delta epoch serves the main store directly.
	e0 := NewEpoch[float64](0, main, nil)
	if e0.NVals() != 2 || e0.DeltaNVals() != 0 {
		t.Fatalf("nil-delta epoch: NVals %d DeltaNVals %d", e0.NVals(), e0.DeltaNVals())
	}
}

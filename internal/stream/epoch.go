package stream

import (
	"graphblas/internal/format"
	"graphblas/internal/sparse"
)

// Epoch is a snapshot-isolated read view: an immutable (main, delta) pair
// pinned at a point in the matrix's update sequence. The engine's stores are
// immutable once installed — absorption and compaction always publish fresh
// structures — so a pinned epoch keeps reading the exact content it was
// taken against, unaffected by later batches or merges, without copying
// anything. This is the read-side primitive a serving layer needs: queries
// run against a pinned epoch while ingestion publishes new ones.
type Epoch[D any] struct {
	id    uint64
	main  *sparse.CSR[D]
	delta *format.HyperDelta[D]
	nvals int
}

// NewEpoch pins an epoch over the given stores. Both pointers must be
// treated as immutable by the caller (the engine guarantees this for its
// committed stores).
func NewEpoch[D any](id uint64, main *sparse.CSR[D], delta *format.HyperDelta[D]) *Epoch[D] {
	e := &Epoch[D]{id: id, main: main, delta: delta, nvals: main.NNZ()}
	// Count the overlay's net effect once, up front, so the Epoch itself is
	// immutable and safe for concurrent readers.
	for k := range e.deltaRows() {
		idx, _, del := delta.RowAt(k)
		for p, j := range idx {
			_, inMain := main.Get(delta.Rows[k], j)
			switch {
			case del[p] && inMain:
				e.nvals--
			case !del[p] && !inMain && delta.Rows[k] < main.NRows && j < main.NCols:
				e.nvals++
			}
		}
	}
	return e
}

// deltaRows returns a range-able slice of overlay row ordinals.
func (e *Epoch[D]) deltaRows() []int {
	if e.delta == nil {
		return nil
	}
	return e.delta.Rows
}

// ID is the compaction epoch the snapshot was pinned in: it advances each
// time a merge publishes a new main store.
func (e *Epoch[D]) ID() uint64 { return e.id }

// Dims reports the snapshot's logical dimensions.
func (e *Epoch[D]) Dims() (int, int) { return e.main.NRows, e.main.NCols }

// NVals reports the stored-element count of the snapshot view.
func (e *Epoch[D]) NVals() int { return e.nvals }

// DeltaNVals reports how many updates the pinned overlay holds — zero means
// the snapshot is fully compacted.
func (e *Epoch[D]) DeltaNVals() int { return e.delta.NNZ() }

// Get reads (i, j) through the overlay: a delta insert shadows the main
// store, a tombstone hides it.
func (e *Epoch[D]) Get(i, j int) (D, bool) {
	var zero D
	if i < 0 || i >= e.main.NRows || j < 0 || j >= e.main.NCols {
		return zero, false
	}
	if v, del, ok := e.delta.Lookup(i, j); ok {
		if del {
			return zero, false
		}
		return v, true
	}
	return e.main.Get(i, j)
}

// Tuples returns the merged (row, col, value) triples of the snapshot in
// row-major order.
func (e *Epoch[D]) Tuples() ([]int, []int, []D) {
	return format.MergeDeltaCSR(e.main, e.delta).Tuples()
}

package analysis

import (
	"go/token"
	"testing"
)

// TestLoadPackages_EnginePackages proves the x/tools-free loading pipeline:
// go list -export supplies build-cache export data, the stdlib gc importer
// reads it back, and engine packages type-check from source against it —
// including generic code (core's Matrix[D]) and intra-module imports.
func TestLoadPackages_EnginePackages(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := LoadPackages(fset, "../..", "./internal/obs", "./internal/core")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		if len(p.Files) == 0 {
			t.Errorf("%s: no files", p.PkgPath)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Fatalf("%s: missing type information", p.PkgPath)
		}
	}
	core, ok := byPath["graphblas/internal/core"]
	if !ok {
		t.Fatalf("core not loaded; got %v", byPath)
	}
	if core.Types.Scope().Lookup("Matrix") == nil {
		t.Errorf("core scope is missing Matrix")
	}
	// Test files must be excluded: the suite lints engine code only.
	for _, f := range core.Files {
		name := fset.Position(f.Pos()).Filename
		if len(name) > 8 && name[len(name)-8:] == "_test.go" {
			t.Errorf("test file loaded: %s", name)
		}
	}
}

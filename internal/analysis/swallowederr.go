package analysis

// swallowederr codifies the paper's Section V contract — every method
// reports a defined GrB_Info outcome — at the call-site level: engine code
// must not discard an error result or a trailing failure-flag result. This
// is the exact bug class PR 4 dug out by hand twice over: the scalar
// reductions ran their kernel bare so an injected fault was swallowed into a
// silently wrong scalar, and Diag dropped BuildCSR's ok flag, committing an
// empty matrix on a failed build. Both shapes are mechanically detectable:
//
//   - a call used as a bare statement (or deferred) whose signature returns
//     an error anywhere in its results;
//   - an assignment that blanks (`_`) a result position holding an error, or
//     the final bool of a multi-result call — Go's failure-flag convention.
//
// Scope: the engine's internal packages only (engineScope). Test files are
// never loaded. The fmt print family is exempt — its error returns are
// conventionally ignored and carry no engine state.

import (
	"go/ast"
)

// NewSwallowedErr returns a fresh swallowederr analyzer.
func NewSwallowedErr() *Analyzer {
	a := &Analyzer{
		Name: "swallowederr",
		Doc:  "flags engine calls whose error or trailing failure-flag result is discarded",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						checkDiscardedCall(pass, call)
					}
				case *ast.DeferStmt:
					checkDiscardedCall(pass, st.Call)
				case *ast.GoStmt:
					checkDiscardedCall(pass, st.Call)
				case *ast.AssignStmt:
					checkBlankedResults(pass, st)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// exemptCallee lists callees whose discarded returns are conventional, not
// swallowed engine outcomes.
func exemptCallee(pkg, name string) bool {
	if pkg == "fmt" {
		return true // Print family: error returns are ignored by convention
	}
	return false
}

// checkDiscardedCall flags a statement-position call that returns an error
// (any position) or ends in a failure flag.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	results := callResults(pass.TypesInfo, call)
	if results == nil || results.Len() == 0 {
		return
	}
	if pkg, name, ok := calleePkgFunc(pass.TypesInfo, call); ok && exemptCallee(pkg, name) {
		return
	}
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(call.Pos(), "error result of %s is discarded; the engine must surface every failure as a GrB_Info outcome", calleeLabel(call))
			return
		}
	}
	if results.Len() >= 2 && isBoolType(results.At(results.Len()-1).Type()) {
		pass.Reportf(call.Pos(), "failure flag of %s is discarded; check the trailing bool or suppress with a justification", calleeLabel(call))
	}
}

// checkBlankedResults flags `_`-discarded error results and `_`-discarded
// trailing failure flags in assignments.
func checkBlankedResults(pass *Pass, st *ast.AssignStmt) {
	// Only the multi-value form `a, _ := f()` maps lhs positions to one
	// call's results.
	if len(st.Rhs) != 1 || len(st.Lhs) < 2 {
		// `_ = f()` single form:
		if len(st.Rhs) == 1 && len(st.Lhs) == 1 && isBlank(st.Lhs[0]) {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				checkDiscardedCall(pass, call)
			}
		}
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	results := callResults(pass.TypesInfo, call)
	if results == nil || results.Len() != len(st.Lhs) {
		return
	}
	if pkg, name, okc := calleePkgFunc(pass.TypesInfo, call); okc && exemptCallee(pkg, name) {
		return
	}
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rt := results.At(i).Type()
		switch {
		case isErrorType(rt):
			pass.Reportf(lhs.Pos(), "error result of %s is blanked; the engine must surface every failure as a GrB_Info outcome", calleeLabel(call))
		case i == len(st.Lhs)-1 && isBoolType(rt):
			pass.Reportf(lhs.Pos(), "failure flag of %s is blanked; check the trailing bool or suppress with a justification", calleeLabel(call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeLabel renders a short human label for a call's function expression.
func calleeLabel(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if base := baseIdent(fn.X); base != nil {
			return base.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	case *ast.IndexExpr:
		inner := &ast.CallExpr{Fun: fn.X}
		return calleeLabel(inner)
	}
	return "call"
}

package analysis

// Shared AST utilities for the analyzers: enclosing-function discovery,
// selector rendering, and the lexical lock-held approximation lockedmeta
// builds on.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// enclosingFuncs returns the stack of function nodes (FuncDecl or FuncLit)
// enclosing pos in f, outermost first. Empty when pos sits outside any
// function body (package-level declarations).
func enclosingFuncs(f *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == nil
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		}
		return true
	})
	return stack
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// funcName returns the name of a FuncDecl, "" for literals.
func funcName(n ast.Node) string {
	if fd, ok := n.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return ""
}

// baseIdent returns the root identifier of a selector chain (`m` for
// `m.nr`, `op.out` → `op`), or nil for non-identifier bases.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mutexCall matches `<base>.<field>.Lock()` / `Unlock()` / `RLock()` /
// `RUnlock()` shapes and returns the base identifier name and whether the
// call acquires (true) or releases (false). ok is false for anything else.
func mutexCall(call *ast.CallExpr) (base string, acquire, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	id := baseIdent(sel.X)
	if id == nil {
		return "", false, false
	}
	return id.Name, acquire, true
}

// lockHeldAt reports whether, on a straight lexical reading of fn's body, a
// mutex rooted at base identifier `base` is held at pos: a Lock/RLock call
// on `base.*` precedes pos with no intervening Unlock/RUnlock, or a
// `defer base.*.Unlock()` pins it held. This is a deliberate linear
// approximation — branches that unlock early and return read as "released"
// for the code after them — which in practice matches how the engine writes
// its short critical sections; code the approximation misjudges either
// restructures or carries a justified suppression.
func lockHeldAt(fn ast.Node, base string, pos token.Pos) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	held := false
	pinned := false // defer'd Unlock: held through the rest of the function
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() >= pos {
			return false
		}
		// Do not descend into nested function literals: their lock activity
		// happens at call time, not where the literal is written.
		if _, isLit := n.(*ast.FuncLit); isLit && n != fn {
			return false
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if b, acquire, ok := mutexCall(st.Call); ok && !acquire && b == base {
				pinned = true
			}
			return false
		case *ast.CallExpr:
			if b, acquire, ok := mutexCall(st); ok && b == base {
				held = acquire
			}
		}
		return true
	})
	return held || pinned
}

// errorType is the predeclared error interface type.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is the predeclared error type.
func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// isBoolType reports whether t's underlying type is bool.
func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// calleePkgFunc resolves a call to (package name, function name) when the
// callee is a package-level function accessed through a package selector
// (`faults.Step`, `obs.Begin`). ok is false for methods, locals, builtins.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return fn.Pkg().Name(), fn.Name(), true
}

// callResults returns the result tuple of a call expression's function
// type, nil when unresolvable.
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

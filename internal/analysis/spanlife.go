package analysis

// spanlife enforces the observability layer's ownership contract: a span
// obtained from obs.Begin must, on every path out of the function that
// opened it, either be delivered (obs.Emit) or handed off (passed to another
// call, stored into a struct, or returned) — otherwise the span leaks,
// SpanOutcomes undercounts, and latency histograms skew toward the
// operations that happened to complete.
//
// The analysis tracks each `sp := obs.Begin(...)` variable through the
// enclosing function body with a small abstract interpreter over the
// statement tree:
//
//   - a method call with sp as the receiver (sp.MarkKernel(), sp.Finish(...))
//     is staging, not retirement — Finish explicitly documents "Emit must
//     still be called";
//   - any other use — sp as a call argument (obs.Emit(sp), or the
//     enqueueSpanned handoff), sp inside a composite literal or assignment
//     RHS, sp returned — retires it;
//   - a defer whose body (or arguments) retires sp pins it retired for every
//     later return, the runScalarReduce shape;
//   - a return reached while sp is live is flagged.
//
// Branch merging is conservative: an if/else retires the span past the
// branch only when both arms retire it on their fall-through paths; loop and
// switch bodies are checked internally but never credit the code after them.
// A Begin result that is never bound (`obs.Begin(name)` as a statement) is
// flagged outright unless it is itself an argument (the enqueueHinted
// shape).

import (
	"go/ast"
	"go/types"
)

// NewSpanLife returns a fresh spanlife analyzer.
func NewSpanLife() *Analyzer {
	a := &Analyzer{
		Name: "spanlife",
		Doc:  "flags obs.Begin spans that can reach a return without Emit or an ownership handoff",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkSpans(pass, f, fn.Body)
					}
				case *ast.FuncLit:
					checkSpans(pass, f, fn.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isBeginCall reports whether call is obs.Begin(...).
func isBeginCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, name, ok := calleePkgFunc(info, call)
	return ok && pkg == "obs" && name == "Begin"
}

// checkSpans finds Begin bindings directly in body (not nested literals —
// those are visited as their own functions) and runs the liveness walk for
// each.
func checkSpans(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			// A bare `obs.Begin(op)` statement discards the span entirely.
			if es, isExpr := n.(*ast.ExprStmt); isExpr {
				if call, isCall := es.X.(*ast.CallExpr); isCall && isBeginCall(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "span from obs.Begin is discarded; bind it and Emit it (or hand it off) on every path")
				}
			}
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || !isBeginCall(pass.TypesInfo, call) || len(st.Lhs) != 1 {
			return true
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		w := &spanWalker{pass: pass, span: obj, begin: st}
		w.retires = w.retiresIn
		w.leak = func(ret ast.Stmt) {
			pass.Reportf(ret.Pos(), "span from obs.Begin at line %d may leak: this return is reached without obs.Emit or a handoff", pass.Fset.Position(st.Pos()).Line)
		}
		w.block(body.List, false)
		if !w.started {
			// The Begin statement was nested somewhere the walker did not
			// reach linearly (e.g. inside a branch); fall back to flagging
			// nothing rather than guessing.
			return true
		}
		return true
	})
}

// spanWalker is the abstract interpreter for one tracked resource variable.
// spanlife instantiates it for obs.Begin spans; hotalloc reuses the same
// walk for pooled buffers by supplying its own retire predicate and leak
// reporter. The walk itself is resource-agnostic: it only knows "a binding
// statement starts tracking", "retires says a statement discharges the
// obligation", and "a return reached live leaks".
type spanWalker struct {
	pass    *Pass
	span    types.Object
	begin   ast.Stmt
	started bool // the binding statement has been passed
	pinned  bool // a defer retires the resource on every later exit
	// retires reports whether a statement discharges the obligation.
	retires func(ast.Node) bool
	// leak is invoked for each return reached with the resource live.
	leak func(ret ast.Stmt)
}

// block walks stmts with the given entry state and returns the retired
// state at fall-through.
func (w *spanWalker) block(stmts []ast.Stmt, retired bool) bool {
	for _, st := range stmts {
		retired = w.stmt(st, retired)
	}
	return retired
}

func (w *spanWalker) stmt(st ast.Stmt, retired bool) bool {
	if !w.started {
		// Skip everything before the Begin binding; containers are searched
		// for it.
		if st == w.begin {
			w.started = true
			return false
		}
		switch s := st.(type) {
		case *ast.BlockStmt:
			return w.block(s.List, retired)
		case *ast.IfStmt:
			bodyOut := w.stmt(s.Body, retired)
			if w.started {
				// The span was bound inside this arm; its scope ends with the
				// arm, so the arm's fall-through state is the honest merge.
				return bodyOut
			}
			if s.Else != nil {
				elseOut := w.stmt(s.Else, retired)
				if w.started {
					return elseOut
				}
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(st, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok && !w.started {
					w.block(b.List, retired)
				}
				return !w.started
			})
			if w.started {
				// A span bound inside a loop or switch is scoped to it; the
				// returns inside were checked, and nothing after can touch
				// the variable. Stop judging this walker's merges.
				w.pinned = true
			}
			return false
		}
		return false
	}
	switch s := st.(type) {
	case *ast.DeferStmt:
		if w.retires(s) {
			w.pinned = true
			return true
		}
		return retired
	case *ast.ReturnStmt:
		if w.retires(s) {
			return true
		}
		if !retired && !w.pinned {
			w.leak(s)
		}
		return true
	case *ast.BlockStmt:
		return w.block(s.List, retired)
	case *ast.IfStmt:
		bodyOut := w.stmt(s.Body, retired)
		elseOut := retired
		if s.Else != nil {
			elseOut = w.stmt(s.Else, retired)
		}
		// Credit the merge only when both arms retire; an arm that always
		// returns reports its own leaks and its fall-through never happens,
		// but distinguishing that shape is not worth the complexity —
		// terminated arms return true above, which is also correct here.
		if s.Else != nil {
			return retired || (bodyOut && elseOut)
		}
		return retired
	case *ast.ForStmt:
		w.stmt(s.Body, retired)
		return retired
	case *ast.RangeStmt:
		w.stmt(s.Body, retired)
		return retired
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				w.block(cc.Body, retired)
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				w.block(cc.Body, retired)
				return false
			}
			return true
		})
		return retired
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, retired)
	default:
		if w.retires(st) {
			return true
		}
		return retired
	}
}

// retiresIn reports whether n contains a retiring use of the span variable:
// any mention that is not the receiver of a method call.
func (w *spanWalker) retiresIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		// A selector whose base is the span var is a receiver/field use —
		// staging, not retirement. Skip the base identifier so the generic
		// ident check below does not see it.
		if sel, ok := m.(*ast.SelectorExpr); ok {
			if id, isID := unparen(sel.X).(*ast.Ident); isID && w.isSpan(id) {
				return false
			}
			return true
		}
		if id, ok := m.(*ast.Ident); ok && w.isSpan(id) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (w *spanWalker) isSpan(id *ast.Ident) bool {
	return w.pass.TypesInfo.Uses[id] == w.span
}

package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// TestSuppressionInventory pins the -report/-json contract: Run returns
// every //grblint:ignore directive it saw, with the file and line of the
// justification comment itself, the justification text, and a used flag
// that is true exactly when a finding was silenced by it.
func TestSuppressionInventory(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := loadTestdataPackage(fset, "footprint")
	if err != nil {
		t.Fatal(err)
	}
	_, sup, err := Run(fset, []*Package{pkg}, []*Analyzer{NewFootprint()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 1 {
		t.Fatalf("want 1 suppression, got %d: %v", len(sup), sup)
	}
	s := sup[0]
	if !strings.HasSuffix(s.File, "a.go") || s.Line == 0 {
		t.Errorf("directive location not resolved: %s:%d", s.File, s.Line)
	}
	if s.Analyzer != "footprint" {
		t.Errorf("analyzer = %q, want footprint", s.Analyzer)
	}
	if !strings.Contains(s.Justification, "engine-private") {
		t.Errorf("justification text lost: %q", s.Justification)
	}
	if !s.Used {
		t.Errorf("directive silenced a finding but Used=false")
	}
}

// TestSuppressionStale verifies that a directive whose analyzer did not run
// (or whose finding no longer fires) is reported with Used=false — the
// signal the -report audit uses to flag rotten suppressions.
func TestSuppressionStale(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := loadTestdataPackage(fset, "footprint")
	if err != nil {
		t.Fatal(err)
	}
	// Run only fusecap: the footprint directive in the package cannot be
	// honored, so it must surface as stale.
	_, sup, err := Run(fset, []*Package{pkg}, []*Analyzer{NewFuseCap()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 1 {
		t.Fatalf("want 1 suppression, got %d", len(sup))
	}
	if sup[0].Used {
		t.Errorf("directive could not have been honored but Used=true")
	}
}

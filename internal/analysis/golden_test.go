package analysis

import "testing"

// The golden suites: each analyzer runs over its testdata/src package and
// must produce exactly the findings annotated with // want — including the
// testdata reproductions of the PR 4 bugs (the swallowed reduce flag, the
// Diag ok-flag discard, the unlocked Resize metadata write).

func TestSwallowedErrGolden(t *testing.T) {
	RunGolden(t, "swallowederr", NewSwallowedErr())
}

func TestLockedMetaGolden(t *testing.T) {
	RunGolden(t, "lockedmeta", NewLockedMeta())
}

func TestFaultSiteGolden(t *testing.T) {
	RunGolden(t, "faultsite", NewFaultSite())
}

func TestSpanLifeGolden(t *testing.T) {
	RunGolden(t, "spanlife", NewSpanLife())
}

func TestAtomicMixGolden(t *testing.T) {
	RunGolden(t, "atomicmix", NewAtomicMix())
}

func TestCtxFlowGolden(t *testing.T) {
	RunGolden(t, "ctxflow", NewCtxFlow())
}

func TestFootprintGolden(t *testing.T) {
	RunGolden(t, "footprint", NewFootprint())
}

func TestFuseCapGolden(t *testing.T) {
	RunGolden(t, "fusecap", NewFuseCap())
}

func TestHotAllocGolden(t *testing.T) {
	RunGolden(t, "hotalloc", NewHotAlloc())
}

package analysis

// hotalloc is the allocation-discipline pass over the engine's hot paths —
// the ROADMAP item 5 companion to the pool package. A function marked
//
//	//grblint:hotpath
//
// in its doc comment promises steady-state allocation discipline: the
// kernels run once per queued op (or once per parallel chunk) over inputs
// that can be millions of entries, so a per-iteration allocation turns into
// GC pressure proportional to nnz rather than to op count. The pass reports
// three shapes inside marked functions:
//
//   - allocation expressions (make, new, &T{...}, slice/map literals)
//     inside a loop: one heap object per iteration; hoist the buffer out of
//     the loop or draw it from internal/pool;
//   - function literals inside a loop: the closure header itself allocates
//     per iteration, and capturing loop-scoped variables forces their
//     escape (the SpGEMM per-row mask-closure shape);
//   - pooled buffers (pool.Get*) that can reach a return without the
//     matching pool.Put* or an ownership handoff — the spanlife walk
//     applied to buffers, so an early-exit path that strands a buffer is a
//     finding, not a slow leak found in a heap profile.
//
// A function literal boundary resets the loop context: a closure body runs
// per call, not per iteration of the loop that created it, so allocations
// there are judged against the loops inside the closure itself. Intrinsic
// output allocations (the result slice a kernel returns) sit at function
// scope outside any loop and pass untouched.

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathMarker is the doc-comment annotation that opts a function into the
// allocation discipline.
const hotpathMarker = "grblint:hotpath"

// NewHotAlloc returns a fresh hotalloc analyzer.
func NewHotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags per-iteration allocations, loop closures, and leaked pool buffers in //grblint:hotpath functions",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hotpathMarked(fd) {
					continue
				}
				checkLoopAllocs(pass, fd.Body, false)
				checkPoolDiscipline(pass, fd.Body)
			}
		}
		return nil
	}
	return a
}

// hotpathMarked reports whether fd's doc comment carries the hotpath marker.
func hotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// checkLoopAllocs walks stmts flagging allocation expressions that execute
// once per loop iteration. inLoop tracks whether the current position is
// inside a for/range statement of the *current* function: entering a
// function literal resets it (the literal's body allocates per call), while
// the literal itself is an allocation at its creation site.
func checkLoopAllocs(pass *Pass, root ast.Node, inLoop bool) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init, inLoop)
			}
			if x.Cond != nil {
				walk(x.Cond, inLoop)
			}
			if x.Post != nil {
				walk(x.Post, inLoop)
			}
			walk(x.Body, true)
			return
		case *ast.RangeStmt:
			if x.X != nil {
				walk(x.X, inLoop)
			}
			walk(x.Body, true)
			return
		case *ast.FuncLit:
			if inLoop {
				pass.Reportf(x.Pos(), "closure created inside a hot loop: the literal allocates per iteration and its captures escape; hoist it above the loop")
			}
			walk(x.Body, false)
			return
		case *ast.CallExpr:
			if inLoop {
				if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(x.Pos(), "%s inside a hot loop allocates per iteration; hoist the buffer or draw it from internal/pool", id.Name)
					}
				}
			}
		case *ast.CompositeLit:
			if inLoop && allocatingLiteral(pass, x) {
				pass.Reportf(x.Pos(), "composite literal inside a hot loop allocates per iteration; hoist the buffer or draw it from internal/pool")
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if m == nil {
				return false
			}
			walk(m, inLoop)
			return false
		})
	}
	walk(root, inLoop)
}

// allocatingLiteral reports whether a composite literal heap-allocates per
// evaluation: slice and map literals always do; struct literals only when
// their address is taken.
func allocatingLiteral(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// checkPoolDiscipline runs the spanlife walk for every pool.Get* binding in
// body: the buffer must reach the matching pool.Put* (or an ownership
// handoff — returned or stored) on every path out of the function.
func checkPoolDiscipline(pass *Pass, body *ast.BlockStmt) {
	checkPoolInBlock(pass, body)
	// Function literals get their own walk: a buffer drawn inside a chunk
	// closure must be returned to the pool inside that closure.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkPoolInBlock(pass, lit.Body)
		}
		return true
	})
}

func checkPoolInBlock(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 || len(st.Lhs) != 1 {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		getName, ok := poolCall(pass.TypesInfo, call, "Get")
		if !ok {
			return true
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(call.Pos(), "pooled buffer from pool.%s is discarded; bind it and return it with pool.Put%s", getName, strings.TrimPrefix(getName, "Get"))
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		putName := "Put" + strings.TrimPrefix(getName, "Get")
		w := &spanWalker{pass: pass, span: obj, begin: st}
		w.retires = func(n ast.Node) bool { return poolRetires(pass, n, obj, putName) }
		w.leak = func(ret ast.Stmt) {
			pass.Reportf(ret.Pos(), "pooled buffer from pool.%s at line %d may leak: this return is reached without pool.%s or a handoff", getName, pass.Fset.Position(st.Pos()).Line, putName)
		}
		w.block(body.List, false)
		return true
	})
}

// poolCall matches a call to the internal pool package whose function name
// starts with prefix, returning the function name.
func poolCall(info *types.Info, call *ast.CallExpr, prefix string) (string, bool) {
	pkg, name, ok := calleePkgFunc(info, call)
	if !ok || pkg != "pool" || !strings.HasPrefix(name, prefix) {
		return "", false
	}
	return name, true
}

// poolRetires reports whether n discharges the buffer obligation: the
// matching pool.Put* call with the buffer as an argument, a return statement
// carrying the buffer value out, or an assignment parking the buffer value
// in a structure. Only *value* uses count — an element read like
// out[i] = buf[j] hands out a copied element, not the slice header, and a
// plain use as a call argument (handing the buffer to a kernel helper) is
// staging, not retirement — unlike spans, pooled buffers come back.
func poolRetires(pass *Pass, n ast.Node, buf types.Object, putName string) bool {
	// valueUses reports whether e mentions the buffer as a slice value (the
	// header escaping), skipping buf[i] element accesses.
	valueUses := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if found {
				return false
			}
			if ix, ok := m.(*ast.IndexExpr); ok {
				if id, isID := unparen(ix.X).(*ast.Ident); isID && pass.TypesInfo.Uses[id] == buf {
					return false // element access: the header stays put
				}
			}
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == buf {
				found = true
				return false
			}
			return true
		})
		return found
	}
	retired := false
	ast.Inspect(n, func(m ast.Node) bool {
		if retired {
			return false
		}
		switch x := m.(type) {
		case *ast.CallExpr:
			if name, ok := poolCall(pass.TypesInfo, x, "Put"); ok && name == putName {
				for _, arg := range x.Args {
					if valueUses(arg) {
						retired = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if valueUses(res) {
					retired = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Parking the buffer: the buffer value flows to an LHS that is
			// neither the buffer itself nor the blank identifier
			// (out.idx = buf, s.scratch = buf).
			for i, rhs := range x.Rhs {
				if !valueUses(rhs) {
					continue
				}
				if i < len(x.Lhs) {
					if id, ok := unparen(x.Lhs[i]).(*ast.Ident); ok {
						if id.Name == "_" || pass.TypesInfo.Uses[id] == buf {
							continue // discard or reslice: staging, not a handoff
						}
					}
				}
				retired = true
				return false
			}
		}
		return true
	})
	return retired
}

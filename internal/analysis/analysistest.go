package analysis

// An analysistest-style golden runner. A test package lives under
// testdata/src/<name>/ and annotates the lines it expects findings on with
//
//	// want "regexp" ["regexp" ...]
//
// The runner type-checks the package (standard-library imports resolve
// through export data; single-segment imports like "faults" or "obs"
// resolve from sibling testdata/src directories, so golden cases can model
// the engine's package shapes without importing engine internals), runs the
// analyzers, and fails on any unmatched expectation or unexpected finding.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdExports caches the export-data map for the whole standard library.
var stdExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

func stdExportMap() (map[string]string, error) {
	stdExports.once.Do(func() {
		listed, err := goList(".", "std")
		if err != nil {
			stdExports.err = err
			return
		}
		stdExports.m = make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				stdExports.m[p.ImportPath] = p.Export
			}
		}
	})
	return stdExports.m, stdExports.err
}

// testdataImporter resolves standard-library imports through export data
// and anything else from testdata/src/<path> source, recursively.
type testdataImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	loaded  map[string]*types.Package
}

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ti.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return ti.std.Import(path)
	}
	p, err := parseTestdataDir(ti.fset, dir)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: ti}
	tpkg, err := conf.Check(path, ti.fset, p, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata dep %s: %v", path, err)
	}
	ti.loaded[path] = tpkg
	return tpkg, nil
}

func parseTestdataDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// loadTestdataPackage loads testdata/src/<name> as a type-checked Package.
func loadTestdataPackage(fset *token.FileSet, name string) (*Package, error) {
	std, err := stdExportMap()
	if err != nil {
		return nil, err
	}
	srcRoot := filepath.Join("testdata", "src")
	ti := &testdataImporter{
		fset:    fset,
		srcRoot: srcRoot,
		std:     newExportImporter(fset, std),
		loaded:  map[string]*types.Package{},
	}
	dir := filepath.Join(srcRoot, name)
	files, err := parseTestdataDir(fset, dir)
	if err != nil {
		return nil, err
	}
	info := newTypesInfo()
	conf := types.Config{Importer: ti}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata package %s: %v", name, err)
	}
	return &Package{PkgPath: name, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants parses // want comments from the package's files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want: %q", pos.Filename, pos.Line, rest)
					}
					lit, remainder, err := cutQuoted(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return wants, nil
}

// cutQuoted splits one leading Go string literal off s.
func cutQuoted(s string) (string, string, error) {
	q := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && q == '"' {
			i++
			continue
		}
		if s[i] == q {
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("unquoting %q: %v", s[:i+1], err)
			}
			return lit, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want literal in %q", s)
}

// RunGolden runs the analyzers over testdata/src/<name> and verifies the
// findings against the package's // want annotations.
func RunGolden(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := loadTestdataPackage(fset, name)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	findings, _, err := Run(fset, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == fd.File && w.line == fd.Line && w.pattern.MatchString(fd.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

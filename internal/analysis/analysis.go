// Package analysis is the engine's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic, an analysistest-style golden runner)
// plus five project-specific analyzers that codify invariants the execution
// engine relies on but the compiler cannot check:
//
//   - swallowederr — no discarded error or trailing failure-flag returns in
//     engine packages (the PR 4 runScalarReduce/Diag bug class).
//   - lockedmeta — dimension metadata marked grblint:guarded is written only
//     under the object lock and never read bare from deferred closures (the
//     PR 4 Resize race class).
//   - faultsite — kernel fault-injection sites are constant, dotted,
//     namespaced literals that stay in sync with the canonical
//     faults.KernelSites list.
//   - spanlife — every obs.Begin span reaches obs.Emit or an ownership
//     handoff on every return path.
//   - atomicmix — no field is accessed both through sync/atomic calls and
//     plain loads/stores.
//
// The paper's Section V demands every method report a defined GrB_Info
// outcome; Section VIII validates the design against a reference
// implementation. This package is the same idea applied to the engine's own
// implicit contracts: checkable, not just tested. The x/tools module is
// deliberately not a dependency — the loader (load.go) drives `go list
// -export` and the standard library's gc importer instead, so the suite
// builds offline with the toolchain alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Mirrors the x/tools type of the
// same name: Run is invoked once per loaded package with a fresh Pass.
// Analyzers that need cross-package state (faultsite) allocate it in their
// constructor closure and surface whole-run conclusions from Finish, which
// the driver calls after every package has been visited.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish, if non-nil, runs after all packages and returns diagnostics
	// derived from cross-package state (e.g. declared-but-unused fault sites).
	Finish func() []Diagnostic
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that raised it, and a
// one-line message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a resolved diagnostic, positioned against the file set — the
// driver's output unit and the -json schema.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Suppression is one //grblint:ignore directive found in the analyzed tree:
// where it sits, the analyzer it silences, the justification text, and
// whether this run actually honored it (an unused directive is stale — the
// finding it once silenced no longer fires, so it should be deleted or the
// code it annotates has drifted out from under it). The -report and -json
// modes of cmd/grblint expose the full inventory so suppressions are audited
// in review rather than accreting silently.
type Suppression struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Analyzer      string `json:"analyzer"`
	Justification string `json:"justification"`
	Used          bool   `json:"used"`
}

func (s Suppression) String() string {
	state := "honored"
	if !s.Used {
		state = "STALE"
	}
	return fmt.Sprintf("%s:%d: %s [%s] %s", s.File, s.Line, s.Analyzer, state, s.Justification)
}

// NewSuite returns fresh instances of the engine analyzers. A new suite
// must be built per run: faultsite accumulates cross-package state inside
// its constructor closure.
func NewSuite() []*Analyzer {
	return []*Analyzer{
		NewSwallowedErr(),
		NewLockedMeta(),
		NewFaultSite(),
		NewSpanLife(),
		NewAtomicMix(),
		NewCtxFlow(),
		NewFootprint(),
		NewFuseCap(),
		NewHotAlloc(),
	}
}

// Run executes the analyzers over the loaded packages, applies the
// //grblint:ignore suppressions, and returns the surviving findings sorted
// by file position, plus the suppression inventory (every directive seen,
// with its honored/stale flag). Malformed suppression comments are
// themselves findings.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Suppression, error) {
	var diags []Diagnostic
	ig := newIgnoreIndex()
	for _, pkg := range pkgs {
		ig.collect(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish()...)
		}
	}
	diags = append(diags, ig.malformed...)
	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ig.suppressed(pos, d.Analyzer) {
			continue
		}
		out = append(out, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	sup := ig.inventory()
	sort.Slice(sup, func(i, j int) bool {
		if sup[i].File != sup[j].File {
			return sup[i].File < sup[j].File
		}
		return sup[i].Line < sup[j].Line
	})
	return out, sup, nil
}

// engineScope reports whether an engine-convention analyzer applies to this
// package: the engine's internal packages, or a bare single-segment path,
// which is how analysistest golden packages are loaded. The public facade
// and the cmd/ tools are out of scope — their conventions (CLI printing,
// example code) are not the executor's.
func engineScope(pkg *types.Package) bool {
	path := pkg.Path()
	if path == "" {
		return true
	}
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return hasPrefix(path, "graphblas/internal/")
		}
	}
	return true // single-segment path: a testdata golden package
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

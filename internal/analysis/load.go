package analysis

// Package loading without golang.org/x/tools: `go list -deps -export` makes
// the toolchain compile every dependency and report the export-data file it
// wrote to the build cache, and the standard library's gc importer
// (go/importer.ForCompiler with a lookup function) reads those files back.
// Target packages are then parsed from source and type-checked against the
// imported dependency signatures — the same shape golang.org/x/tools/
// go/packages produces in LoadSyntax mode, minus the dependency.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given patterns
// and decodes the JSON stream.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newExportImporter builds a types.Importer that resolves import paths
// through the export-data files go list reported.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newTypesInfo allocates the full set of type-information maps the
// analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPackages loads, parses, and type-checks every package matched by the
// patterns (relative to dir), ignoring test files — the suite checks engine
// code, and `go list`'s GoFiles field already excludes _test.go. Returned
// packages share fset.
func LoadPackages(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheckDir(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheckDir parses the named files of one package and type-checks them
// against imp.
func typeCheckDir(fset *token.FileSet, pkgPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// Package obs is a shape-stub of graphblas/internal/obs for the analyzer
// golden tests: spanlife matches obs.Begin / obs.Emit by package and
// function name.
package obs

// Span mirrors the engine span's lifecycle surface.
type Span struct {
	Op string
}

// MarkScheduled is a staging setter: using the span as a method receiver
// does not retire it.
func (s *Span) MarkScheduled() {}

// MarkKernel is a staging setter.
func (s *Span) MarkKernel() {}

// Finish records the outcome; Emit must still be called.
func (s *Span) Finish(outcome int, err error) { _, _ = outcome, err }

// Begin opens a span.
func Begin(op string) *Span { return &Span{Op: op} }

// Emit delivers the span.
func Emit(s *Span) { _ = s }

// Package atomicmix holds the golden cases for the atomicmix analyzer: a
// field accessed through sync/atomic anywhere must be accessed through
// sync/atomic everywhere.
package atomicmix

import "sync/atomic"

// counters mirrors the engine's metrics shape: ops is updated with atomic
// adds from flush workers, pending only ever under the queue lock.
type counters struct {
	ops     int64
	pending int64
	hits    atomic.Int64 // typed atomics make mixing impossible — always clean
}

// record is the hot path: atomic increment from concurrent workers.
func (c *counters) record() {
	atomic.AddInt64(&c.ops, 1)
}

// snapshot reads the same field with a plain load — a torn read on 32-bit
// targets and a data race everywhere.
func (c *counters) snapshot() int64 {
	return c.ops // want `field ops is updated with sync/atomic elsewhere but accessed plainly here`
}

// reset writes the field plainly, losing increments racing with record.
func (c *counters) reset() {
	c.ops = 0 // want `field ops is updated with sync/atomic elsewhere but accessed plainly here`
}

// loadGood keeps every access to ops atomic.
func (c *counters) loadGood() int64 {
	return atomic.LoadInt64(&c.ops)
}

// plainOnly never touches pending atomically, so plain access is fine.
func (c *counters) plainOnly() int64 {
	c.pending++
	return c.pending
}

// typedGood uses the typed atomic wrapper.
func (c *counters) typedGood() int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

// suppressedRead shows the reviewed escape hatch.
func (c *counters) suppressedRead() int64 {
	//grblint:ignore atomicmix read happens after the worker pool is joined
	return c.ops
}

// Package hotalloc holds the golden cases for the hotalloc analyzer:
// functions marked //grblint:hotpath must not allocate per loop iteration,
// must not build closures inside their loops, and must return every pooled
// buffer on every path.
package hotalloc

import (
	"errors"

	"pool"
)

// kernelGood allocates its output once at function scope, draws scratch from
// the pool, and returns it on the single exit.
//
//grblint:hotpath
func kernelGood(n int) []int {
	out := make([]int, 0, n)
	buf := pool.GetInts(n)
	for i := 0; i < n; i++ {
		out = append(out, buf[i]+i)
	}
	pool.PutInts(buf)
	return out
}

// makeInLoop is the per-iteration allocation shape: one heap object per row.
//
//grblint:hotpath
func makeInLoop(rows [][]int) int {
	total := 0
	for _, r := range rows {
		tmp := make([]int, len(r)) // want `make inside a hot loop allocates per iteration`
		copy(tmp, r)
		total += len(tmp)
	}
	return total
}

// sliceLitInLoop allocates a slice literal per iteration.
//
//grblint:hotpath
func sliceLitInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		w := []int{i, i + 1} // want `composite literal inside a hot loop allocates per iteration`
		total += w[0]
	}
	return total
}

// closureInLoop is the SpGEMM per-row mask-closure shape: the literal
// allocates per iteration and pins its captures on the heap.
//
//grblint:hotpath
func closureInLoop(rows [][]int, mask []bool) int {
	total := 0
	for i := range rows {
		allowed := func(j int) bool { return mask[j] } // want `closure created inside a hot loop`
		for _, j := range rows[i] {
			if allowed(j) {
				total++
			}
		}
	}
	return total
}

// chunkClosureGood shows the reset at the function-literal boundary: the
// worker body allocates per call, not per iteration of any enclosing loop,
// so its scratch make is fine — while the loop inside it is judged again.
//
//grblint:hotpath
func chunkClosureGood(chunks int, apply func(func(lo, hi int))) {
	apply(func(lo, hi int) {
		scratch := make([]int, 8)
		for i := lo; i < hi; i++ {
			scratch[i%8] = i
		}
		_ = scratch
	})
	_ = chunks
}

// coldMakeInLoop is not marked: the discipline is opt-in, so no findings.
func coldMakeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		tmp := make([]int, 4)
		total += len(tmp)
	}
	return total
}

// leakyPool strands the buffer on the early error return.
//
//grblint:hotpath
func leakyPool(n int, fail bool) error {
	buf := pool.GetInts(n)
	if fail {
		return errors.New("validation failed") // want `pooled buffer from pool.GetInts at line \d+ may leak`
	}
	pool.PutInts(buf)
	return nil
}

// deferPutGood pins the return for every exit, the kernel idiom around
// multi-return bodies.
//
//grblint:hotpath
func deferPutGood(n int, fail bool) error {
	buf := pool.GetInts(n)
	defer pool.PutInts(buf)
	if fail {
		return errors.New("validation failed")
	}
	buf[0] = n
	return nil
}

// handoffGood transfers ownership out: the caller owes the Put.
//
//grblint:hotpath
func handoffGood(n int) []int {
	buf := pool.GetInts(n)
	return buf
}

// parkGood stores the buffer into a structure that owns it from then on.
//
//grblint:hotpath
func parkGood(n int, sink *struct{ scratch []int }) {
	buf := pool.GetBools(n)
	_ = buf
	ints := pool.GetInts(n)
	sink.scratch = ints
	pool.PutBools(buf)
}

// discardedGet never binds the buffer at all.
//
//grblint:hotpath
func discardedGet(n int) {
	_ = pool.GetInts(n) // want `pooled buffer from pool.GetInts is discarded`
}

// wrongPut returns the bools buffer through the ints freelist — the walker
// keys retirement on the matching Put name, so this still leaks.
//
//grblint:hotpath
func wrongPut(n int) error {
	buf := pool.GetBools(n)
	pool.PutInts(nil)
	_ = buf
	return nil // want `pooled buffer from pool.GetBools at line \d+ may leak`
}

// suppressedAlloc shows the reviewed escape hatch for a measured-cold case.
//
//grblint:hotpath
func suppressedAlloc(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		//grblint:ignore hotalloc bounded by the descriptor count, measured never above 4
		tmp := make([]int, 4)
		total += len(tmp)
	}
	return total
}

// Package faults is a shape-stub of graphblas/internal/faults for the
// analyzer golden tests: the analyzers match call sites by package name and
// function name, so golden packages import this instead of engine internals.
package faults

// Step consults the plan at a kernel-internal site.
func Step(site string) { _ = site }

// GovernAlloc is the allocation-budget governor gate.
func GovernAlloc(site string, bytes int64) { _, _ = site, bytes }

// Check consults the plan at an executor-level site.
func Check(site string) error { _ = site; return nil }

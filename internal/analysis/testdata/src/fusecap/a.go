// Package fusecap holds the golden cases for the fusecap analyzer: every
// enqueueFusable capability declaration must name a fusion source drawn from
// the op's declared reads, must withhold its consume callback whenever the
// mask aliases that source (the PR 9 bug class), and must never read the
// source's committed store from inside the consume path.
package fusecap

type obj struct{ id uint64 }

type store struct{ vals []float64 }

// Vector mirrors core.Vector.
type Vector struct {
	obj  obj
	data *store
}

func (v *Vector) vdat() *store { return v.data }

// Matrix mirrors core.Matrix.
type Matrix struct {
	obj  obj
	data *store
}

func (m *Matrix) mdat() *store { return m.data }

// fuseInfo mirrors core.fuseInfo.
type fuseInfo struct {
	producer any
	srcID    uint64
	consume  func(src any) (func() error, any, bool)
}

func enqueueFusable(name string, out *obj, reads []*obj, overwrites bool, fi *fuseInfo, run func() error) error {
	_ = name
	_ = out
	_ = reads
	_ = overwrites
	_ = fi
	return run()
}

func maskReadsV(reads []*obj, mask *Vector) []*obj {
	if mask != nil {
		reads = append(reads, &mask.obj)
	}
	return reads
}

// applySource is the producer payload shape.
type applySource struct{ u *Vector }

// guardedGood is the post-PR 9 ApplyV shape: consume withheld when the mask
// aliases the source, source declared in reads, consume streams the payload.
func guardedGood(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil {
		fi.producer = applySource{u: u}
	}
	if mask == nil || mask.obj.id != u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) {
			s, ok := src.(applySource)
			if !ok {
				return nil, nil, false
			}
			return func() error {
				_ = s
				w.data = nil
				return nil
			}, nil, true
		}
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// assignShapeGood folds the veto into the fi construction guard itself, the
// AssignVector idiom: fi only exists when the mask cannot alias the source.
func assignShapeGood(w, u, mask *Vector, indices []int) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	var fi *fuseInfo
	if indices == nil && (mask == nil || mask.obj.id != u.obj.id) {
		fi = &fuseInfo{srcID: u.obj.id}
		fi.consume = func(src any) (func() error, any, bool) {
			s, ok := src.(applySource)
			if !ok {
				return nil, nil, false
			}
			_ = s
			return func() error { return nil }, nil, true
		}
	}
	return enqueueFusable("assign", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// nilMaskOnlyGood attaches consume only on the maskless path; no alias is
// possible there.
func nilMaskOnlyGood(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil {
		fi.consume = func(src any) (func() error, any, bool) {
			return func() error { return nil }, nil, true
		}
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// unguardedConsume is the PR 9 must-flag case: the capability is attached
// unconditionally, so MxV(w, u, A, u) can fuse and resolve the mask from u's
// stale committed store.
func unguardedConsume(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	fi.consume = func(src any) (func() error, any, bool) { // want `consume capability is not vetoed when mask aliases the fusion source u`
		return func() error { return nil }, nil, true
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		if mask != nil {
			_ = mask.vdat()
		}
		return nil
	})
}

// invertedGuard fuses exactly when the mask aliases the source — the
// comparison direction is wrong, so the guard is not protective.
func invertedGuard(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil || mask.obj.id == u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) { // want `consume capability is not vetoed when mask aliases the fusion source u`
			return func() error { return nil }, nil, true
		}
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// srcNotInReads declares a fusion source the footprint never mentions:
// FuseLegal would elide a store the hazard DAG never proved dead.
func srcNotInReads(w, u, v *Vector) error {
	fi := &fuseInfo{srcID: v.obj.id} // want `fusion source v is not in the op's declared reads`
	fi.consume = func(src any) (func() error, any, bool) {
		return func() error { return nil }, nil, true
	}
	return enqueueFusable("ewise", &w.obj, []*obj{&u.obj}, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// staleSourceRead streams the payload but still dereferences the source
// inside the fused run: when fused, u's committed store is stale.
func staleSourceRead(w, u *Vector) error {
	fi := &fuseInfo{srcID: u.obj.id}
	fi.consume = func(src any) (func() error, any, bool) {
		s, ok := src.(applySource)
		if !ok {
			return nil, nil, false
		}
		_ = s
		return func() error {
			_ = u.vdat() // want `fused consumer reads fusion source u directly`
			return nil
		}, nil, true
	}
	return enqueueFusable("apply", &w.obj, []*obj{&u.obj}, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// suppressedVeto shows the reviewed escape hatch.
func suppressedVeto(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	//grblint:ignore fusecap this op rejects aliased masks in validation before enqueue
	fi.consume = func(src any) (func() error, any, bool) {
		return func() error { return nil }, nil, true
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

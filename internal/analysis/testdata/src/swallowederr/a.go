// Package swallowederr holds the golden cases for the swallowederr
// analyzer: engine code must not discard error results or trailing
// failure-flag results.
package swallowederr

import (
	"errors"
	"fmt"
)

func doWork() error { return errors.New("boom") }

func parse() (int, error) { return 0, nil }

// reduceAllCSR mirrors sparse.ReduceAllCSR's (value, flag) signature.
func reduceAllCSR() (int, bool) { return 0, false }

// buildCSR mirrors sparse.BuildCSR's (result, ok) signature — the PR 4 Diag
// bug discarded exactly this ok flag and committed an empty matrix on a
// failed build.
func buildCSR() (*int, bool) { return nil, true }

func flagged() {
	doWork()        // want `error result of doWork is discarded`
	_ = doWork()    // want `error result of doWork is discarded`
	defer doWork()  // want `error result of doWork is discarded`
	go doWork()     // want `error result of doWork is discarded`
	v, _ := parse() // want `error result of parse is blanked`
	_ = v
}

// historicReduceSwallow is the PR 4 swallowed-reduce pattern: the scalar
// reduction called its kernel bare and blanked the failure flag, so a fault
// raised inside it handed the caller a silently wrong scalar.
func historicReduceSwallow() int {
	acc, _ := reduceAllCSR() // want `failure flag of reduceAllCSR is blanked`
	return acc
}

// historicDiagSwallow is the PR 4 Diag pattern: an enqueued closure
// discarding the kernel's ok flag, committing a wrong result instead of
// surfacing the failure through the executor.
func historicDiagSwallow(enqueue func(run func() error) error) error {
	return enqueue(func() error {
		built, _ := buildCSR() // want `failure flag of buildCSR is blanked`
		_ = built
		return nil
	})
}

func clean() error {
	if err := doWork(); err != nil {
		return err
	}
	v, err := parse()
	if err != nil {
		return err
	}
	acc, stored := reduceAllCSR()
	if !stored {
		return errors.New("empty")
	}
	fmt.Println(v, acc) // fmt print family is exempt by convention
	return nil
}

// suppressed shows the reviewed escape hatch: the justification is
// mandatory and the directive covers only this analyzer on this line.
func suppressed() int {
	//grblint:ignore swallowederr the stored flag is intentionally unused: identity seeds empty folds
	acc, _ := reduceAllCSR()
	return acc
}

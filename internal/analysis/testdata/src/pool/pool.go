// Package pool is a shape stub of the engine's internal/pool freelists for
// the hotalloc golden tests: only the Get*/Put* signatures matter to the
// analyzer.
package pool

func GetInts(n int) []int { return make([]int, n) }

func PutInts(s []int) { _ = s }

func GetBools(n int) []bool { return make([]bool, n) }

func PutBools(s []bool) { _ = s }

// Package footprint holds the golden cases for the footprint analyzer:
// every *Matrix/*Vector a deferred kernel closure captures must be covered
// by the enqueue site's declared footprint (out, reads, or the maskReadsV/M
// mask), masks must stay distinguishable from data operands, and no store
// dereference may happen on the enqueue path outside the closures.
//
// The package mirrors the engine's enqueue-family shapes: an obj identity
// struct, Vector/Matrix wrappers with vdat/mdat store accessors, the
// enqueue/enqueueFusable entry points, and the maskReadsV helper.
package footprint

type obj struct{ id uint64 }

type store struct{ vals []float64 }

// Vector mirrors core.Vector: an obj header plus a store.
type Vector struct {
	obj  obj
	data *store
}

func (v *Vector) vdat() *store { return v.data }

// Matrix mirrors core.Matrix.
type Matrix struct {
	obj  obj
	data *store
}

func (m *Matrix) mdat() *store { return m.data }

// fuseInfo mirrors core.fuseInfo: a producer payload, the source identity,
// and the consume capability.
type fuseInfo struct {
	producer any
	srcID    uint64
	consume  func(src any) (func() error, any, bool)
}

func enqueue(name string, out *obj, reads []*obj, overwrites bool, run func() error) error {
	_ = name
	_ = out
	_ = reads
	_ = overwrites
	return run()
}

func enqueueFusable(name string, out *obj, reads []*obj, overwrites bool, fi *fuseInfo, run func() error) error {
	_ = fi
	return enqueue(name, out, reads, overwrites, run)
}

func maskReadsV(reads []*obj, mask *Vector) []*obj {
	if mask != nil {
		reads = append(reads, &mask.obj)
	}
	return reads
}

// applySource is the producer payload shape ops hand to fusion.
type applySource struct{ u *Vector }

// applyGood is the canonical well-declared op: the run closure touches only
// the out object, the declared read, and the maskReadsV-declared mask.
func applyGood(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	return enqueue("apply", &w.obj, reads, true, func() error {
		d := u.vdat()
		if mask != nil {
			_ = mask.vdat()
		}
		w.data = d
		return nil
	})
}

// droppedRead is the must-flag acceptance case: v is consumed by the kernel
// but missing from the declared reads, so the hazard DAG would never order
// this op against v's writers.
func droppedRead(w, u, v *Vector) error {
	reads := []*obj{&u.obj}
	return enqueue("ewise", &w.obj, reads, true, func() error {
		_ = u.vdat()
		_ = v.vdat() // want `kernel closure captures v outside the op's declared footprint`
		return nil
	})
}

// maskFolded declares the mask as an ordinary data read; fusion legality
// cannot tell it apart from u, which is the PR 9 alias class.
func maskFolded(w, u, mask *Vector) error {
	return enqueue("apply", &w.obj, []*obj{&u.obj, &mask.obj}, true, func() error {
		_ = u.vdat()
		_ = mask.vdat() // want `reads list is not built with maskReadsV/maskReadsM`
		return nil
	})
}

// maskUndeclared filters through a mask the footprint never mentions at all.
func maskUndeclared(w, u, mask *Vector) error {
	return enqueue("select", &w.obj, []*obj{&u.obj}, true, func() error {
		_ = u.vdat()
		_ = mask.vdat() // want `reads list is not built with maskReadsV/maskReadsM`
		return nil
	})
}

// eagerStoreRead dereferences the operand's store on the enqueue path: the
// closure would run against a snapshot taken before the DAG ordered this op.
func eagerStoreRead(w, u *Vector) error {
	d := u.vdat() // want `store read u.vdat\(\) at enqueue time`
	return enqueue("apply", &w.obj, []*obj{&u.obj}, true, func() error {
		w.data = d
		return nil
	})
}

// fusableGood mirrors the post-PR 9 ApplyV shape: producer payload and
// consume capability both stay inside the declared footprint, and consume is
// withheld when the mask aliases the source.
func fusableGood(w, u, mask *Vector) error {
	reads := maskReadsV([]*obj{&u.obj}, mask)
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil {
		fi.producer = applySource{u: u}
	}
	if mask == nil || mask.obj.id != u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) {
			s, ok := src.(applySource)
			if !ok {
				return nil, nil, false
			}
			return func() error {
				_ = s.u
				if mask != nil {
					_ = mask.vdat()
				}
				w.data = nil
				return nil
			}, nil, true
		}
	}
	return enqueueFusable("apply", &w.obj, reads, true, fi, func() error {
		_ = u.vdat()
		if mask != nil {
			_ = mask.vdat()
		}
		return nil
	})
}

// fusablePayloadLeak smuggles an undeclared object into the producer
// payload: a fused consumer would read aux with no hazard edge ordering it.
func fusablePayloadLeak(w, u, aux *Vector) error {
	fi := &fuseInfo{srcID: u.obj.id}
	fi.producer = applySource{u: aux} // want `kernel closure captures aux outside the op's declared footprint`
	return enqueueFusable("apply", &w.obj, []*obj{&u.obj}, true, fi, func() error {
		_ = u.vdat()
		return nil
	})
}

// suppressedCapture shows the reviewed escape hatch for a provable false
// positive.
func suppressedCapture(w, u, stats *Vector) error {
	return enqueue("probe", &w.obj, []*obj{&u.obj}, true, func() error {
		_ = u.vdat()
		//grblint:ignore footprint stats is engine-private and frozen before any op is enqueued
		_ = stats.vdat()
		return nil
	})
}

// Package spanlife holds the golden cases for the spanlife analyzer: every
// span opened with obs.Begin must reach obs.Emit or an ownership handoff on
// every return path out of the opening function.
package spanlife

import (
	"errors"
	"obs"
)

// queued stands in for the engine's pending-op record that carries the span
// to the flush worker.
type queued struct {
	sp *obs.Span
}

// enqueueSpanned is the engine's handoff shape: ownership of the span moves
// to the queue.
func enqueueSpanned(sp *obs.Span, run func() error) error {
	defer obs.Emit(sp)
	return run()
}

func validate(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// deferEmitGood is the runScalarReduce shape after PR 4: the deferred Emit
// pins delivery for every return, including the early error return.
func deferEmitGood(n int) error {
	sp := obs.Begin("reduce")
	defer obs.Emit(sp)
	if err := validate(n); err != nil {
		sp.Finish(1, err)
		return err
	}
	sp.Finish(0, nil)
	return nil
}

// handoffGood transfers ownership to the queue; the opening function owes
// nothing further.
func handoffGood(n int) error {
	sp := obs.Begin("mxm")
	return enqueueSpanned(sp, func() error { return validate(n) })
}

// storeGood parks the span in a record — ownership moved to the record.
func storeGood() *queued {
	sp := obs.Begin("store")
	return &queued{sp: sp}
}

// leakyEarlyReturn is the bug class: the error path returns before the span
// is emitted, so SpanOutcomes undercounts failed reduces and the latency
// histogram only ever sees successes.
func leakyEarlyReturn(n int) error {
	sp := obs.Begin("reduce")
	if err := validate(n); err != nil {
		return err // want `span from obs.Begin at line \d+ may leak`
	}
	sp.Finish(0, nil)
	obs.Emit(sp)
	return nil
}

// leakyFallthrough stages the span but never delivers it at all.
func leakyFallthrough() error {
	sp := obs.Begin("diag")
	sp.MarkScheduled()
	return nil // want `span from obs.Begin at line \d+ may leak`
}

// discarded never even binds the span.
func discarded() {
	obs.Begin("lost") // want `span from obs.Begin is discarded`
}

// bothBranchesGood retires the span in each arm, so the merge after the if
// is retired too.
func bothBranchesGood(fast bool) error {
	sp := obs.Begin("mxv")
	if fast {
		obs.Emit(sp)
	} else {
		obs.Emit(sp)
	}
	return nil
}

// oneBranchBad retires the span only on the fast path.
func oneBranchBad(fast bool) error {
	sp := obs.Begin("mxv")
	if fast {
		obs.Emit(sp)
	}
	return nil // want `span from obs.Begin at line \d+ may leak`
}

// suppressedLeak shows the reviewed escape hatch.
func suppressedLeak() error {
	sp := obs.Begin("probe")
	sp.MarkKernel()
	//grblint:ignore spanlife probe spans are sampled; the tracer reclaims unemitted probes
	return nil
}

// Package faultsite holds the golden cases for the faultsite analyzer:
// kernel fault-injection sites must be constant, dotted, namespaced string
// literals, unique per kernel, and in sync with the canonical
// faults.KernelSites list.
package faultsite

import "faults"

// KernelSites is the canonical registry the analyzer cross-checks; in the
// engine it lives in internal/faults.
var KernelSites = []string{
	"sparse.kernel.good",
	"sparse.kernel.goof",
	"sparse.kernel.dup",
	"fuse.kernel.good",
	"format.kernel.unused", // want `drawn by no kernel`
}

func goodKernel() {
	faults.Step("sparse.kernel.good")
}

func goofKernel() {
	faults.Step("sparse.kernel.goof")
}

// typoKernel misspells a registered site; the analyzer suggests the
// nearest declared name.
func typoKernel() {
	faults.Step("sparse.kernel.gooff") // want `not in faults.KernelSites \(did you mean "sparse.kernel.goof"\?\)`
}

// undottedKernel would break PlanCoversKernelSites' dotted-site
// classification and the DAG flush's determinism gate.
func undottedKernel() {
	faults.Step("nodots") // want `has no dot` `not in faults.KernelSites`
}

// wrongNamespace is dotted but outside every registered namespace.
func wrongNamespace() {
	faults.Step("wrong.namespace.site") // want `outside the registered namespaces` `not in faults.KernelSites`
}

// fusedKernel draws from the fuse.kernel. namespace the flush-time fusion
// pass registered.
func fusedKernel() {
	faults.Step("fuse.kernel.good")
}

// unregisteredFusedKernel is inside the fuse.kernel. namespace but missing
// from KernelSites — the exact hole that would make a fusion fault plan
// silently unreachable.
func unregisteredFusedKernel() {
	faults.Step("fuse.kernel.rogue") // want `fault site "fuse.kernel.rogue" is not in faults.KernelSites`
}

// dynamicSite cannot be targeted by a plan.
func dynamicSite(site string) {
	faults.Step(site) // want `must be a constant string`
}

// dupKernelA and dupKernelB share one site — the PR 5 hyper.mxv copy-paste:
// a plan cannot tell the two kernels apart.
func dupKernelA() {
	faults.Step("sparse.kernel.dup") // want `drawn from 2 different functions`
}

func dupKernelB() {
	faults.Step("sparse.kernel.dup") // want `drawn from 2 different functions`
}

// checkIsExempt: executor-level Check sites are op names, intentionally
// dynamic.
func checkIsExempt(op string) {
	if err := faults.Check(op); err != nil {
		panic(err)
	}
}

// governAllocChecked: GovernAlloc draws follow the same site rules.
func governAllocChecked() {
	faults.GovernAlloc("alloc", 1) // want `has no dot` `not in faults.KernelSites`
}

// Package core is a shape-stub of graphblas/internal/core for the ctxflow
// golden tests: the analyzer matches the blocking entry points by package and
// function/method name.
package core

import "context"

// Matrix mirrors the engine matrix's blocking surface.
type Matrix struct{}

// Wait forces a context-blind flush.
func (m *Matrix) Wait() error { return nil }

// Compact forces a context-blind flush.
func (m *Matrix) Compact() error { return nil }

// PinEpoch forces a context-blind flush.
func (m *Matrix) PinEpoch() (int, error) { return 0, nil }

// NVals is a non-blocking read (not in the analyzer's method set).
func (m *Matrix) NVals() (int, error) { return 0, nil }

// Wait is the global context-blind flush.
func Wait() error { return nil }

// WaitContext is the context-threading flush.
func WaitContext(ctx context.Context) error { _ = ctx; return nil }

// Package lockedmeta holds the golden cases for the lockedmeta analyzer:
// fields marked grblint:guarded are written only under the object lock and
// never read bare from closures (which model deferred flush-worker code).
package lockedmeta

import "sync"

// matrix mirrors the engine's Matrix metadata shape.
type matrix struct {
	mu sync.Mutex
	// nr, nc are the logical dimensions; Resize updates them eagerly while
	// flush workers may still be reading. grblint:guarded
	nr, nc int
	data   []int
}

// dims is the lock-held accessor.
func (m *matrix) dims() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nr, m.nc
}

// resizeGood writes the metadata under the lock — the PR 4 fix.
func (m *matrix) resizeGood(nr, nc int) {
	m.mu.Lock()
	m.nr, m.nc = nr, nc
	m.mu.Unlock()
}

// resizeBad is the pre-PR 4 Resize race: the eager metadata write happens
// with no lock while previously enqueued closures read the fields on flush
// workers.
func (m *matrix) resizeBad(nr, nc int) {
	m.nr = nr // want `write to guarded field m.nr without holding m's lock`
	m.nc = nc // want `write to guarded field m.nc without holding m's lock`
}

// nnzLocked follows the caller-holds-the-lock suffix convention.
func (m *matrix) nnzLocked() int {
	return m.nr * m.nc
}

// setDimsLocked writes under the caller-holds-the-lock convention.
func (m *matrix) setDimsLocked(nr, nc int) {
	m.nr, m.nc = nr, nc
}

// enqueue stands in for the engine's deferred-closure queue.
func enqueue(run func() error) error { return run() }

// clearBad reads the dimensions bare inside a deferred closure — the read
// half of the Resize race.
func (m *matrix) clearBad() error {
	return enqueue(func() error {
		n := m.nr // want `guarded field m.nr read bare inside a closure`
		m.data = make([]int, n)
		return nil
	})
}

// clearGood reads through the accessor inside the closure.
func (m *matrix) clearGood() error {
	return enqueue(func() error {
		nr, nc := m.dims()
		m.data = make([]int, nr*nc)
		return nil
	})
}

// clearLockedInline takes the lock inside the closure itself.
func (m *matrix) clearLockedInline() error {
	return enqueue(func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.data = make([]int, m.nr)
		return nil
	})
}

// validate reads the fields bare in a plain method body: user-goroutine
// validation ordered before the operation enters the queue — unflagged.
func (m *matrix) validate(nr int) bool {
	return m.nr == nr
}

// suppressedWrite shows the reviewed escape hatch.
func (m *matrix) suppressedWrite(nr int) {
	//grblint:ignore lockedmeta constructor-time write before the object is shared
	m.nr = nr
}

// Package ctxflow holds the golden cases for the ctxflow analyzer: a
// function that accepts a context.Context must thread it into the blocking
// engine entry points it calls.
package ctxflow

import (
	"context"
	"core"
)

// pkgWaitBad promises cancellability and then flushes context-blind: the
// caller's deadline can never reach the scheduler.
func pkgWaitBad(ctx context.Context, m *core.Matrix) error {
	_ = ctx
	return core.Wait() // want `blocking core\.Wait inside a context-bearing function`
}

// freshCtxBad has the plumbing but severs it with a fresh context.
func freshCtxBad(ctx context.Context) error {
	return core.WaitContext(context.Background()) // want `WaitContext called with a fresh context`
}

// todoCtxBad is the same severing via TODO.
func todoCtxBad(ctx context.Context) error {
	if err := core.WaitContext(context.TODO()); err != nil { // want `WaitContext called with a fresh context`
		return err
	}
	return core.WaitContext(ctx)
}

// methodBad accepts a context it never consults while calling blocking
// methods — the signature's promise is ignored wholesale.
func methodBad(ctx context.Context, m *core.Matrix) error {
	if err := m.Compact(); err != nil { // want `blocking Compact forces a context-blind flush`
		return err
	}
	return m.Wait() // want `blocking Wait forces a context-blind flush`
}

// checkpointGood brackets the blocking method with a context-aware flush:
// Compact has no context-taking variant, so this is the accepted pattern.
func checkpointGood(ctx context.Context, m *core.Matrix) error {
	if err := m.Compact(); err != nil {
		return err
	}
	return core.WaitContext(ctx)
}

// pollGood consults the deadline explicitly before pinning.
func pollGood(ctx context.Context, m *core.Matrix) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	_, err := m.PinEpoch()
	return err
}

// passOnGood hands the context to a helper; the promise is delegated.
func passOnGood(ctx context.Context, m *core.Matrix) error {
	if err := checkpointGood(ctx, m); err != nil {
		return err
	}
	return m.Wait()
}

// noCtx made no promise: context-blind blocking is its contract.
func noCtx(m *core.Matrix) error {
	if err := m.Compact(); err != nil {
		return err
	}
	return core.Wait()
}

// blankCtx documents that cancellation is deliberately not honored.
func blankCtx(_ context.Context, m *core.Matrix) error {
	return m.Wait()
}

// nonBlockingGood reads without flushing; nothing to thread.
func nonBlockingGood(ctx context.Context, m *core.Matrix) (int, error) {
	_ = ctx
	return m.NVals()
}

// litScoped: the literal has no context parameter of its own, so it is
// judged separately from the enclosing context-bearing function.
func litScoped(ctx context.Context, m *core.Matrix) error {
	run := func() error { return core.Wait() }
	if err := run(); err != nil {
		return err
	}
	return core.WaitContext(ctx)
}

// litBad: a context-bearing literal is held to the same contract.
func litBad(m *core.Matrix) func(context.Context) error {
	return func(ctx context.Context) error {
		_ = ctx
		return core.Wait() // want `blocking core\.Wait inside a context-bearing function`
	}
}

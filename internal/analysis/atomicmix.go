package analysis

// atomicmix flags fields that are accessed both through sync/atomic calls
// (atomic.AddInt64(&s.f, 1), atomic.LoadUint32(&s.f), ...) and through plain
// loads or stores elsewhere in the package. Mixing the two is a data race
// the race detector only catches when both sides happen to execute in one
// test run; statically the mix is visible in every run. The engine's own
// counters migrated to typed atomics (atomic.Int64 and friends, immune by
// construction because plain access does not compile), so any function-style
// atomic on a struct field that also sees bare access is drift back into the
// pre-obs ad-hoc pattern.
//
// Detection is per package: pass 1 records every field (types.Var) whose
// address is taken as the first argument of a sync/atomic function; pass 2
// reports every access to those fields outside sync/atomic argument
// position.

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewAtomicMix returns a fresh atomicmix analyzer.
func NewAtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "flags fields accessed both via sync/atomic calls and plain loads/stores",
	}
	a.Run = func(pass *Pass) error {
		atomicFields := map[*types.Var][]ast.Node{} // field -> atomic call sites
		atomicArgs := map[ast.Node]bool{}           // &x.f nodes inside atomic calls
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := calleePkgFunc(pass.TypesInfo, call)
				if !ok || pkg != "atomic" || !isAtomicOp(name) || len(call.Args) == 0 {
					return true
				}
				un, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if v := fieldOf(pass.TypesInfo, sel); v != nil {
					atomicFields[v] = append(atomicFields[v], call)
					atomicArgs[sel] = true
				}
				return true
			})
		}
		if len(atomicFields) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArgs[sel] {
					return true
				}
				v := fieldOf(pass.TypesInfo, sel)
				if v == nil {
					return true
				}
				if _, mixed := atomicFields[v]; !mixed {
					return true
				}
				pass.Reportf(sel.Pos(), "field %s is updated with sync/atomic elsewhere but accessed plainly here; every access must go through sync/atomic (or migrate the field to a typed atomic)", sel.Sel.Name)
				return true
			})
		}
		return nil
	}
	return a
}

// isAtomicOp matches the function-style sync/atomic API.
func isAtomicOp(name string) bool {
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it names, nil otherwise.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return originVar(v)
}

package analysis

// lockedmeta codifies the Resize-race invariant PR 4 fixed by hand: an
// object's dimension metadata is updated eagerly by user-side Resize while
// previously enqueued operations may still be executing on flush workers, so
// the fields are meaningful only under the object lock. The fields carry a
// `grblint:guarded` marker on their declaration; the analyzer then enforces:
//
//   - every write to a guarded field happens with the declaring object's
//     lock lexically held (a `<recv>.mu.Lock()` precedes it in the same
//     function with no intervening Unlock, or a deferred Unlock pins it),
//     or inside a method whose name ends in "Locked" — the engine's
//     caller-holds-the-lock convention;
//   - every read of a guarded field from inside a function literal — the
//     shape of deferred closures, which execute on flush workers
//     concurrently with user-side Resize — meets the same bar. Reads in
//     plain method bodies are user-goroutine validation, ordered before the
//     operation enters the queue, and stay unflagged.
//
// The lock-held judgment is the deliberate lexical approximation of
// lockHeldAt; see its comment.

import (
	"go/ast"
	"go/types"
	"strings"
)

const guardMarker = "grblint:guarded"

// NewLockedMeta returns a fresh lockedmeta analyzer.
func NewLockedMeta() *Analyzer {
	a := &Analyzer{
		Name: "lockedmeta",
		Doc:  "flags guarded metadata fields written without the object lock or read bare from closures",
	}
	a.Run = func(pass *Pass) error {
		guarded := collectGuardedFields(pass)
		if len(guarded) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			checkGuardedAccesses(pass, f, guarded)
		}
		return nil
	}
	return a
}

// collectGuardedFields finds struct fields whose declaration carries the
// grblint:guarded marker in a doc or line comment, keyed by their
// types.Var object.
func collectGuardedFields(pass *Pass) map[*types.Var]bool {
	guarded := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarked(field) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = true
					}
				}
			}
			return true
		})
	}
	return guarded
}

func fieldMarked(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, guardMarker) {
				return true
			}
		}
	}
	return false
}

// checkGuardedAccesses walks one file and reports guarded-field accesses
// that violate the locking contract.
func checkGuardedAccesses(pass *Pass, f *ast.File, guarded map[*types.Var]bool) {
	// writes maps the Sel idents appearing on the left of assignments.
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparen(st.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selection.Obj().(*types.Var)
		if !ok || !guarded[originVar(fieldVar)] {
			return true
		}
		base := baseIdent(sel.X)
		if base == nil {
			return true
		}
		funcs := enclosingFuncs(f, sel.Pos())
		if len(funcs) == 0 {
			return true // package-level declaration
		}
		// The engine convention: a *Locked-suffixed method runs with the
		// caller holding the object lock.
		for _, fn := range funcs {
			if strings.HasSuffix(funcName(fn), "Locked") {
				return true
			}
		}
		innermost := funcs[len(funcs)-1]
		held := lockHeldAt(innermost, base.Name, sel.Pos())
		if writes[sel] {
			if !held {
				pass.Reportf(sel.Pos(), "write to guarded field %s.%s without holding %s's lock; Resize-class metadata must be written under the object lock", base.Name, sel.Sel.Name, base.Name)
			}
			return true
		}
		if _, isLit := innermost.(*ast.FuncLit); isLit && !held {
			pass.Reportf(sel.Pos(), "guarded field %s.%s read bare inside a closure; deferred closures run on flush workers concurrently with Resize — use the lock-held accessor (dims/size) instead", base.Name, sel.Sel.Name)
		}
		return true
	})
}

// originVar maps a field var of an instantiated generic type back to the
// origin struct's field var, so guarded markers collected on the generic
// declaration match accesses through instantiations.
func originVar(v *types.Var) *types.Var {
	if o := v.Origin(); o != nil {
		return o
	}
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

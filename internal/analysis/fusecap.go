package analysis

// fusecap verifies the fusion-capability declarations at enqueueFusable
// sites against the op's declared footprint. Fusion stubs the producer and
// lets the consumer evaluate the producer's computation inline, so three
// structural invariants must hold at every site that attaches a fuseInfo:
//
//   - The fusion source (the operand named by srcID) must be one of the
//     op's declared reads — dataflow.FuseLegal reasons entirely from the
//     declared footprints, so a srcID outside them would let fusion elide a
//     store the hazard DAG never proved dead.
//   - When the op takes a mask, the consume capability must be withheld
//     whenever the mask aliases the fusion source: a fused kernel resolves
//     the mask from the source's committed store while streaming the
//     source's fresh values (the PR 9 bug). Structurally: every assignment
//     to the consume field must sit under a guard condition that implies
//     either mask == nil or mask.obj.id != src.obj.id.
//   - The consume callback (and the run/chained closures it builds) must
//     never touch the fusion source itself: when the pair actually fuses,
//     the producer is a stub and the source's committed store is stale —
//     the payload is the only valid view of its content.
//
// The guard check evaluates the engine's boolean idioms precisely:
// `mask == nil || mask.obj.id != u.obj.id` is protective because each
// disjunct independently rules out the alias; `mask == nil || accumDefined`
// is not. Conditions are judged only when the consume assignment sits in the
// if's then-branch (an else-branch sees the condition false).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewFuseCap returns a fresh fusecap analyzer.
func NewFuseCap() *Analyzer {
	a := &Analyzer{
		Name: "fusecap",
		Doc:  "verifies enqueueFusable capability declarations: source in reads, mask-alias veto, no stale source reads in consume",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		if pass.Pkg.Scope().Lookup("enqueueFusable") == nil {
			return nil
		}
		for _, f := range pass.Files {
			checkFusableSites(pass, f)
		}
		return nil
	}
	return a
}

func checkFusableSites(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || callee.Name != "enqueueFusable" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return true
		}
		site := resolveEnqueueSite(pass, f, call, fn)
		if site == nil {
			return true
		}
		checkFuseCapability(pass, f, site, call, fn)
		return true
	})
}

// consumeAssign is one attachment of the consume capability: the syntactic
// position the guard analysis judges, and the callback expression whose
// closures must avoid the fusion source.
type consumeAssign struct {
	pos  token.Pos
	expr ast.Expr
}

// checkFuseCapability decodes the fuseInfo argument of one enqueueFusable
// call and applies the three capability rules.
func checkFuseCapability(pass *Pass, f *ast.File, site *enqueueSite, call *ast.CallExpr, fn *types.Func) {
	sig := fn.Type().(*types.Signature)
	var fiExpr ast.Expr
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if isPtrToNamed(sig.Params().At(i).Type(), "fuseInfo") {
			fiExpr = unparen(call.Args[i])
		}
	}
	if fiExpr == nil {
		return
	}
	if id, ok := fiExpr.(*ast.Ident); ok && id.Name == "nil" {
		return
	}

	var srcExpr ast.Expr
	var consumes []consumeAssign
	collectField := func(lit *ast.CompositeLit, at token.Pos) {
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "srcID":
				srcExpr = kv.Value
			case "consume":
				consumes = append(consumes, consumeAssign{pos: at, expr: kv.Value})
			}
		}
	}
	stripLit := func(e ast.Expr) *ast.CompositeLit {
		if un, ok := unparen(e).(*ast.UnaryExpr); ok && un.Op == token.AND {
			e = un.X
		}
		lit, _ := unparen(e).(*ast.CompositeLit)
		return lit
	}

	if id, ok := fiExpr.(*ast.Ident); ok {
		fiObj := pass.TypesInfo.Uses[id]
		if fiObj == nil {
			return
		}
		ast.Inspect(funcBody(site.enclosing), func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			switch lhs := as.Lhs[0].(type) {
			case *ast.Ident:
				if pass.TypesInfo.Defs[lhs] == fiObj || pass.TypesInfo.Uses[lhs] == fiObj {
					if lit := stripLit(as.Rhs[0]); lit != nil {
						collectField(lit, as.Pos())
					}
				}
			case *ast.SelectorExpr:
				base := baseIdent(lhs.X)
				if base == nil || (pass.TypesInfo.Uses[base] != fiObj && pass.TypesInfo.Defs[base] != fiObj) {
					return true
				}
				switch lhs.Sel.Name {
				case "srcID":
					srcExpr = as.Rhs[0]
				case "consume":
					consumes = append(consumes, consumeAssign{pos: as.Pos(), expr: as.Rhs[0]})
				}
			}
			return true
		})
	} else if lit := stripLit(fiExpr); lit != nil {
		collectField(lit, call.Pos())
	}

	if srcExpr == nil {
		if len(consumes) > 0 {
			pass.Reportf(consumes[0].pos, "consume capability attached without a resolvable srcID (expected srcID: <operand>.obj.id); fusion legality cannot identify the fused-away operand")
		}
		return
	}
	srcVar := objIDBaseVar(pass, srcExpr)
	if srcVar == nil {
		pass.Reportf(srcExpr.Pos(), "fuseInfo srcID is not of the form <operand>.obj.id; fusion legality cannot tie the capability to a declared read")
		return
	}
	if srcVar != site.outVar && !site.readVars[srcVar] && srcVar != site.maskVar {
		pass.Reportf(srcExpr.Pos(), "fusion source %s is not in the op's declared reads: dataflow.FuseLegal proves elision from declared footprints only", srcVar.Name())
	}

	maskVar := site.maskVar
	if maskVar == nil {
		maskVar = maskParam(pass, site.enclosing)
	}
	for _, c := range consumes {
		if maskVar != nil && !aliasGuarded(pass, site.enclosing, c.pos, maskVar, srcVar) {
			pass.Reportf(c.pos, "consume capability is not vetoed when mask aliases the fusion source %s: guard it with mask == nil || mask.obj.id != %s.obj.id, or the fused kernel resolves the mask from %s's stale committed store", srcVar.Name(), srcVar.Name(), srcVar.Name())
		}
		ast.Inspect(c.expr, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != srcVar {
				return true
			}
			pass.Reportf(id.Pos(), "fused consumer reads fusion source %s directly: when fused the producer is a stub and %s's committed store is stale — stream the payload instead", srcVar.Name(), srcVar.Name())
			return true
		})
	}
}

// objIDBaseVar resolves an `x.obj.id` expression to x's variable.
func objIDBaseVar(pass *Pass, e ast.Expr) types.Object {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "id" {
		return nil
	}
	inner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "obj" {
		return nil
	}
	base := baseIdent(inner.X)
	if base == nil {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[base].(*types.Var)
	if !ok || !isObjectVar(pass, v) {
		return nil
	}
	return v
}

// maskParam finds an object-typed parameter named mask on the enclosing op
// function, for sites whose reads list was not built through maskReadsV/M.
func maskParam(pass *Pass, fn ast.Node) types.Object {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok || fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name != "mask" {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isObjectVar(pass, v) {
				return v
			}
		}
	}
	return nil
}

// aliasGuarded reports whether the statement at pos sits in the then-branch
// of an if whose condition is protective against mask==src aliasing.
func aliasGuarded(pass *Pass, fn ast.Node, pos token.Pos, maskVar, srcVar types.Object) bool {
	guarded := false
	ast.Inspect(funcBody(fn), func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if ifs.Body.Pos() <= pos && pos < ifs.Body.End() && protectiveCond(pass, ifs.Cond, maskVar, srcVar) {
			guarded = true
		}
		return true
	})
	return guarded
}

// protectiveCond evaluates whether cond being true rules out mask aliasing
// the source: for &&, either conjunct suffices (both are true); for ||, both
// disjuncts must independently suffice. The protective atoms are
// `mask == nil` and `mask.obj.id != src.obj.id` (either operand order).
func protectiveCond(pass *Pass, cond ast.Expr, maskVar, srcVar types.Object) bool {
	switch x := unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			return protectiveCond(pass, x.X, maskVar, srcVar) || protectiveCond(pass, x.Y, maskVar, srcVar)
		case token.LOR:
			return protectiveCond(pass, x.X, maskVar, srcVar) && protectiveCond(pass, x.Y, maskVar, srcVar)
		case token.EQL:
			return maskNilCompare(pass, x, maskVar)
		case token.NEQ:
			return idCompare(pass, x, maskVar, srcVar)
		}
	}
	return false
}

// maskNilCompare matches `mask == nil` in either operand order.
func maskNilCompare(pass *Pass, be *ast.BinaryExpr, maskVar types.Object) bool {
	isMask := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == maskVar
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isMask(be.X) && isNil(be.Y)) || (isNil(be.X) && isMask(be.Y))
}

// idCompare matches `mask.obj.id != src.obj.id` in either operand order.
func idCompare(pass *Pass, be *ast.BinaryExpr, maskVar, srcVar types.Object) bool {
	baseOf := func(e ast.Expr) types.Object {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "id" {
			return nil
		}
		inner, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "obj" {
			return nil
		}
		base := baseIdent(inner.X)
		if base == nil {
			return nil
		}
		return pass.TypesInfo.Uses[base]
	}
	bx, by := baseOf(be.X), baseOf(be.Y)
	return (bx == maskVar && by == srcVar) || (bx == srcVar && by == maskVar)
}

package analysis

// faultsite keeps the fault-injection sites honest. Kernel-internal draws —
// faults.Step and faults.GovernAlloc — are meaningful only if their site
// names are stable, unique, and classifiable:
//
//   - the site must be a constant string literal: a computed name cannot be
//     targeted by a fault plan and silently weakens the differential sweep;
//   - it must be dotted and live in a registered namespace
//     ("sparse.kernel.", "format.kernel.", "shard.kernel.", …):
//     PlanCoversKernelSites classifies kernel-internal sites by their dots,
//     and an undotted Step site would let a DAG-parallel flush run a plan
//     that reaches inside kernel bodies without serializing them —
//     nondeterministic injection schedules;
//   - the same site literal must not be drawn from two different functions:
//     PR 5 found "format.kernel.hyper.mxv" copy-pasted into both the dot and
//     push hypersparse kernels, making the two indistinguishable to plans;
//   - the literals must match the canonical faults.KernelSites list exactly,
//     in both directions — a drawn-but-undeclared site (typo'd or never
//     registered, with a did-you-mean suggestion) and a declared-but-unused
//     one (dead registry entry) are both drift.
//
// faults.Check sites are executor-level op names, intentionally dynamic, and
// exempt. The canonical list is read from the AST of whichever visited
// package declares `var KernelSites = []string{...}` (internal/faults in the
// real tree), so the cross-check needs no execution of repo code.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// kernelSiteNamespaces are the registered dotted prefixes for
// kernel-internal injection sites.
var kernelSiteNamespaces = []string{"sparse.kernel.", "format.kernel.", "format.alloc.", "stream.kernel.", "stream.alloc.", "fuse.kernel.", "shard.kernel.", "shard.alloc."}

type siteUse struct {
	pos  token.Pos
	fn   string // enclosing function name
	call string // Step or GovernAlloc
}

// NewFaultSite returns a fresh faultsite analyzer.
func NewFaultSite() *Analyzer {
	uses := map[string][]siteUse{}     // site literal -> draw sites
	declared := map[string]token.Pos{} // canonical list entries
	haveList := false
	a := &Analyzer{
		Name: "faultsite",
		Doc:  "checks kernel fault-injection site literals: constant, namespaced, unique, and in sync with faults.KernelSites",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		for _, f := range pass.Files {
			collectKernelSiteList(pass, f, declared, &haveList)
			collectSiteDraws(pass, f, uses)
		}
		return nil
	}
	a.Finish = func() []Diagnostic {
		var out []Diagnostic
		report := func(pos token.Pos, msg string) {
			out = append(out, Diagnostic{Pos: pos, Analyzer: a.Name, Message: msg})
		}
		for site, us := range uses {
			// One site drawn from two different functions cannot be told
			// apart by a fault plan.
			fns := map[string]bool{}
			for _, u := range us {
				fns[u.fn] = true
			}
			if len(fns) > 1 {
				for _, u := range us {
					report(u.pos, "fault site "+strconv.Quote(site)+" is drawn from "+strconv.Itoa(len(fns))+" different functions; give each kernel its own site so plans can target them separately")
				}
			}
			if haveList {
				if _, ok := declared[site]; !ok {
					msg := "fault site " + strconv.Quote(site) + " is not in faults.KernelSites"
					if s := nearestSite(site, declared); s != "" {
						msg += " (did you mean " + strconv.Quote(s) + "?)"
					}
					msg += "; register it so plans and the differential sweep can see it"
					for _, u := range us {
						report(u.pos, msg)
					}
				}
			}
		}
		if haveList {
			for site, pos := range declared {
				if _, ok := uses[site]; !ok {
					report(pos, "faults.KernelSites entry "+strconv.Quote(site)+" is drawn by no kernel; the list has drifted from the code")
				}
			}
		}
		return out
	}
	return a
}

// collectKernelSiteList records the entries of a package-level
// `var KernelSites = []string{...}` declaration.
func collectKernelSiteList(pass *Pass, f *ast.File, declared map[string]token.Pos, haveList *bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "KernelSites" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				*haveList = true
				for _, elt := range cl.Elts {
					if s, ok := stringLiteral(pass.TypesInfo, elt); ok {
						if prev, dup := declared[s]; dup && prev != elt.Pos() {
							pass.Reportf(elt.Pos(), "duplicate faults.KernelSites entry %q", s)
						}
						declared[s] = elt.Pos()
					}
				}
			}
		}
	}
}

// collectSiteDraws records faults.Step / faults.GovernAlloc call sites and
// checks the literal-and-namespace rules in place.
func collectSiteDraws(pass *Pass, f *ast.File, uses map[string][]siteUse) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleePkgFunc(pass.TypesInfo, call)
		if !ok || pkg != "faults" || (name != "Step" && name != "GovernAlloc") {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		site, isConst := stringLiteral(pass.TypesInfo, call.Args[0])
		if !isConst {
			pass.Reportf(call.Args[0].Pos(), "faults.%s site must be a constant string: a computed site cannot be targeted by a fault plan", name)
			return true
		}
		if !strings.Contains(site, ".") {
			pass.Reportf(call.Args[0].Pos(), "kernel fault site %q has no dot: PlanCoversKernelSites would misclassify it and a DAG flush could draw it nondeterministically", site)
		} else if !inNamespace(site) {
			pass.Reportf(call.Args[0].Pos(), "kernel fault site %q is outside the registered namespaces %v", site, kernelSiteNamespaces)
		}
		fn := "(package scope)"
		if funcs := enclosingFuncs(f, call.Pos()); len(funcs) > 0 {
			for i := len(funcs) - 1; i >= 0; i-- {
				if name := funcName(funcs[i]); name != "" {
					fn = name
					break
				}
			}
		}
		uses[site] = append(uses[site], siteUse{pos: call.Args[0].Pos(), fn: fn, call: name})
		return true
	})
}

func inNamespace(site string) bool {
	for _, ns := range kernelSiteNamespaces {
		if strings.HasPrefix(site, ns) {
			return true
		}
	}
	return false
}

// stringLiteral resolves e to a compile-time string constant.
func stringLiteral(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// nearestSite returns the declared site with the smallest edit distance to
// site, when that distance is small enough to look like a typo.
func nearestSite(site string, declared map[string]token.Pos) string {
	best, bestDist := "", 4 // accept distance <= 3
	for d := range declared {
		if dist := editDistance(site, d); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

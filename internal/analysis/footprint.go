package analysis

// footprint codifies the invariant the nonblocking scheduler's correctness
// rests on: the hazard DAG sees exactly the objects an operation's deferred
// closures will actually touch. PR 9's mask-aliasing fusion bug was this
// class — a kernel consulted an object's store in a way the declared
// Reads/Writes footprint could not express, and the scheduler fused a pair it
// should not have. The analyzer makes the contract checkable at the enqueue
// sites themselves:
//
//   - Every *Matrix/*Vector variable captured by an op's run closure (or by
//     its fuseInfo producer/consume payloads) must be covered by the op's
//     declared footprint: the out argument, an element of the reads list, or
//     the mask operand passed through maskReadsV/maskReadsM. A captured
//     object outside that set is a read or write the DAG builder never hears
//     about — exactly the shape that turns into a flush-worker race or an
//     illegal fusion.
//   - The mask operand must enter the footprint through maskReadsV/M, never
//     folded into the data-operand literal: downstream passes (fusion's
//     alias veto) need mask and data operands distinguishable, which the
//     flat []uint64 read set cannot express on its own.
//   - No store dereference (vdat()/mdat() calls) may happen in the enqueue
//     path outside the deferred closures: a store read at enqueue time sees
//     pre-hazard content and silently bypasses the DAG's ordering.
//
// The analysis is structural over the engine's own idioms: enqueue-family
// calls are recognized by callee name and signature (a *obj out, a []*obj
// reads, a trailing func() error run), the reads argument is resolved back
// through the local `reads := maskReadsV([]*obj{...}, mask)` assignment, and
// the closures are walked for free-variable uses of object-typed vars.

import (
	"go/ast"
	"go/types"
)

// enqueueFuncs are the enqueue-family entry points, by name. The analyzer
// additionally verifies the signature shape before treating a call as an
// enqueue site, so a same-named helper elsewhere cannot confuse it.
var enqueueFuncs = map[string]bool{
	"enqueue":        true,
	"enqueueHinted":  true,
	"enqueueSpanned": true,
	"enqueueFusable": true,
}

// maskReadsFuncs are the helpers that fold the mask operand into the reads
// list while keeping it distinguishable for later passes.
var maskReadsFuncs = map[string]bool{
	"maskReadsV": true,
	"maskReadsM": true,
}

// NewFootprint returns a fresh footprint analyzer.
func NewFootprint() *Analyzer {
	a := &Analyzer{
		Name: "footprint",
		Doc:  "flags enqueued kernel closures touching objects outside the op's declared Reads/Writes footprint",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		// The analyzer engages only in packages that define the enqueue
		// family (internal/core and the golden mock).
		if pass.Pkg.Scope().Lookup("enqueue") == nil && pass.Pkg.Scope().Lookup("enqueueFusable") == nil {
			return nil
		}
		for _, f := range pass.Files {
			checkEnqueueSites(pass, f)
		}
		return nil
	}
	return a
}

// checkEnqueueSites finds every enqueue-family call in f and verifies each
// site's closures against its declared footprint.
func checkEnqueueSites(pass *Pass, f *ast.File) {
	eagerChecked := map[ast.Node]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || !enqueueFuncs[callee.Name] {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return true
		}
		site := resolveEnqueueSite(pass, f, call, fn)
		if site == nil {
			return true
		}
		site.check(pass)
		if !eagerChecked[site.enclosing] {
			eagerChecked[site.enclosing] = true
			site.checkEagerStoreReads(pass)
		}
		return true
	})
}

// enqueueSite is one resolved enqueue-family call: the declared footprint and
// the closures that will execute against it at flush time.
type enqueueSite struct {
	call *ast.CallExpr
	// outVar is the object written (the base variable of the &x.obj out
	// argument); nil when the out argument is not that shape.
	outVar types.Object
	// readVars are the base variables of the declared read operands.
	readVars map[types.Object]bool
	// maskVar is the mask operand threaded through maskReadsV/M, nil when
	// the site declares no mask.
	maskVar types.Object
	// maskDeclared reports whether the reads list was built by maskReadsV/M
	// at all (even with a nil mask argument).
	maskDeclared bool
	// closures are the deferred regions to scan: the run closure plus any
	// fuseInfo payload expressions assigned in the enclosing function.
	closures []ast.Node
	// enclosing is the op function containing the call.
	enclosing ast.Node
}

// resolveEnqueueSite decodes one call's footprint declaration. Returns nil
// when the call is a forwarding shape (run argument is not a function
// literal), which the enqueue family uses internally.
func resolveEnqueueSite(pass *Pass, f *ast.File, call *ast.CallExpr, fn *types.Func) *enqueueSite {
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != len(call.Args) {
		return nil // variadic or mismatched shapes are not enqueue sites
	}
	site := &enqueueSite{call: call, readVars: map[types.Object]bool{}}
	var readsArg, fiArg ast.Expr
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		switch {
		case isPtrToNamed(p.Type(), "obj"):
			site.outVar = objBaseVar(pass, call.Args[i])
		case isSliceOfPtrNamed(p.Type(), "obj"):
			readsArg = call.Args[i]
		case isPtrToNamed(p.Type(), "fuseInfo"):
			fiArg = call.Args[i]
		case i == sig.Params().Len()-1:
			if lit, ok := unparen(call.Args[i]).(*ast.FuncLit); ok {
				site.closures = append(site.closures, lit)
			}
		}
	}
	if len(site.closures) == 0 {
		return nil // forwarding call: the run closure lives at the outer site
	}
	funcs := enclosingFuncs(f, call.Pos())
	if len(funcs) == 0 {
		return nil
	}
	site.enclosing = funcs[0]
	if readsArg != nil {
		site.resolveReads(pass, readsArg, 0)
	}
	if fiArg != nil {
		site.collectFuseClosures(pass, fiArg)
	}
	return site
}

// resolveReads decodes the reads argument: nil, a []*obj literal, a
// maskReadsV/M call, or a local variable traced to its assignment(s) in the
// enclosing function. depth bounds indirection so aliasing chains terminate.
func (s *enqueueSite) resolveReads(pass *Pass, e ast.Expr, depth int) {
	if depth > 4 {
		return
	}
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return
		}
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return
		}
		// Trace the local back through every assignment in the enclosing
		// function; multiple assignments union conservatively.
		ast.Inspect(funcBody(s.enclosing), func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if pass.TypesInfo.Defs[lhs] == obj || pass.TypesInfo.Uses[lhs] == obj {
				s.resolveReads(pass, as.Rhs[0], depth+1)
			}
			return true
		})
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if v := objBaseVar(pass, el); v != nil {
				s.readVars[v] = true
			}
		}
	case *ast.CallExpr:
		callee, ok := unparen(x.Fun).(*ast.Ident)
		if !ok || !maskReadsFuncs[callee.Name] || len(x.Args) != 2 {
			return
		}
		s.maskDeclared = true
		s.resolveReads(pass, x.Args[0], depth+1)
		if id, ok := unparen(x.Args[1]).(*ast.Ident); ok && id.Name != "nil" {
			s.maskVar = pass.TypesInfo.Uses[id]
		}
	}
}

// collectFuseClosures gathers the fusion-payload expressions attached to the
// fuseInfo argument: the composite literal it was built from and every
// assignment to it or its fields in the enclosing function. Their closures
// run at flush time exactly like the run closure and meet the same footprint
// bar.
func (s *enqueueSite) collectFuseClosures(pass *Pass, fiArg ast.Expr) {
	fiExpr := unparen(fiArg)
	if id, ok := fiExpr.(*ast.Ident); ok {
		if id.Name == "nil" {
			return
		}
		fiObj := pass.TypesInfo.Uses[id]
		if fiObj == nil {
			return
		}
		ast.Inspect(funcBody(s.enclosing), func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			base := baseIdent(as.Lhs[0])
			if base == nil {
				return true
			}
			if pass.TypesInfo.Defs[base] == fiObj || pass.TypesInfo.Uses[base] == fiObj {
				s.closures = append(s.closures, as.Rhs[0])
			}
			return true
		})
		return
	}
	// Inline &fuseInfo{...} argument.
	s.closures = append(s.closures, fiExpr)
}

// check walks the site's closures and reports captured object variables
// outside the declared footprint.
func (s *enqueueSite) check(pass *Pass) {
	reported := map[types.Object]bool{}
	for _, region := range s.closures {
		ast.Inspect(region, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || reported[v] {
				return true
			}
			if !isObjectVar(pass, v) || !s.freeIn(v, region) {
				return true
			}
			if v.Name() == "mask" && v != s.maskVar {
				// The mask operand must enter the footprint through
				// maskReadsV/M specifically; folding &mask.obj into the data
				// literal hides the mask/data distinction from fusion
				// legality (the PR 9 alias class).
				reported[v] = true
				if s.maskDeclared {
					pass.Reportf(id.Pos(), "kernel closure captures mask operand %s that is not the mask declared via maskReadsV/maskReadsM; the scheduler cannot distinguish it from data operands", v.Name())
				} else {
					pass.Reportf(id.Pos(), "mask operand %s is captured by the kernel closure but the reads list is not built with maskReadsV/maskReadsM; mask and data operands must stay distinguishable for fusion legality", v.Name())
				}
				return true
			}
			if v == s.outVar || s.readVars[v] || v == s.maskVar {
				return true
			}
			reported[v] = true
			pass.Reportf(id.Pos(), "kernel closure captures %s outside the op's declared footprint: add &%s.obj to the reads list (or make it the out argument) so the hazard DAG orders this access", v.Name(), v.Name())
			return true
		})
	}
}

// checkEagerStoreReads flags vdat()/mdat() store dereferences in the op
// function outside any function literal: the enqueue path runs at program
// order, before the hazard DAG has ordered this op against the operands'
// writers, so a store read there observes pre-hazard content.
func (s *enqueueSite) checkEagerStoreReads(pass *Pass) {
	body := funcBody(s.enclosing)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "vdat" && sel.Sel.Name != "mdat") {
			return true
		}
		if base := baseIdent(sel.X); base != nil {
			if v, ok := pass.TypesInfo.Uses[base].(*types.Var); ok && isObjectVar(pass, v) {
				pass.Reportf(call.Pos(), "store read %s.%s() at enqueue time, outside the deferred closure: the hazard DAG has not ordered this op against %s's writers yet", base.Name, sel.Sel.Name, base.Name)
			}
		}
		return true
	})
}

// freeIn reports whether v is declared outside region (a capture) but inside
// the enclosing op function (an operand or local, not a package global).
func (s *enqueueSite) freeIn(v *types.Var, region ast.Node) bool {
	if v.Pos() >= region.Pos() && v.Pos() < region.End() {
		return false // bound inside the closure
	}
	encl := s.enclosing
	return v.Pos() >= encl.Pos() && v.Pos() < encl.End()
}

// isObjectVar reports whether v is a pointer to the engine's Matrix or
// Vector type declared in the package under analysis.
func isObjectVar(pass *Pass, v *types.Var) bool {
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if name != "Matrix" && name != "Vector" {
		return false
	}
	return named.Obj().Pkg() == pass.Pkg
}

// objBaseVar extracts the base variable of an `&x.obj` (or `&x.obj`-shaped)
// operand expression, nil for other shapes.
func objBaseVar(pass *Pass, e ast.Expr) types.Object {
	un, ok := unparen(e).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, ok := unparen(un.X).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "obj" {
		return nil
	}
	base := baseIdent(sel.X)
	if base == nil {
		return nil
	}
	return pass.TypesInfo.Uses[base]
}

// isPtrToNamed reports whether t is *T for a named type T called name.
func isPtrToNamed(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == name
}

// isSliceOfPtrNamed reports whether t is []*T for a named type T called name.
func isSliceOfPtrNamed(t types.Type, name string) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	return isPtrToNamed(sl.Elem(), name)
}

package analysis

// ctxflow enforces the serving layer's deadline-plumbing contract: a function
// that accepts a context.Context has promised its caller cancellability, so
// the blocking engine entry points it calls must thread that context.
//
// Three shapes are flagged inside context-bearing functions:
//
//   - a package-level Wait() call — the context-blind flush; WaitContext(ctx)
//     is the drop-in replacement;
//   - WaitContext(context.Background()) or WaitContext(context.TODO()) — the
//     plumbing exists but a fresh context severs it from the caller's
//     deadline;
//   - a blocking method call (Wait, Compact, PinEpoch — each forces a flush
//     with no context of its own) in a function whose ctx parameter is never
//     otherwise consulted: the signature promises cancellability the body
//     ignores entirely. When ctx is consulted somewhere (a WaitContext(ctx)
//     checkpoint, a ctx.Err() poll, passing it onward), the method calls are
//     accepted — Compact and PinEpoch have no context-taking variants, and
//     checkpointing around them is exactly the pattern the serve layer uses.
//
// A function whose context parameter is the blank identifier is skipped: the
// signature documents that cancellation is deliberately not honored there.

import (
	"go/ast"
	"go/types"
)

// ctxflowBlockingMethods are methods that force a context-blind flush.
var ctxflowBlockingMethods = map[string]bool{"Wait": true, "Compact": true, "PinEpoch": true}

// ctxflowEnginePkgs are the packages whose entry points block on the global
// flush. "graphblas" is the facade re-export of core's Wait/WaitContext.
var ctxflowEnginePkgs = map[string]bool{"core": true, "graphblas": true}

// NewCtxFlow returns a fresh ctxflow analyzer.
func NewCtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "flags context-bearing functions that call blocking engine entry points without threading the context",
	}
	a.Run = func(pass *Pass) error {
		if !engineScope(pass.Pkg) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkCtxFlow(pass, fn.Type, fn.Body)
					}
				case *ast.FuncLit:
					checkCtxFlow(pass, fn.Type, fn.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// ctxParam returns the declared context.Context parameter object, reporting
// blank=true when the parameter exists but is the blank identifier.
func ctxParam(info *types.Info, ft *ast.FuncType) (obj types.Object, blank bool) {
	if ft.Params == nil {
		return nil, false
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		if len(field.Names) == 0 {
			return nil, true // unnamed: unusable, same intent as blank
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				blank = true
				continue
			}
			if def := info.Defs[name]; def != nil {
				return def, false
			}
		}
		return nil, blank
	}
	return nil, false
}

// isFreshContext reports whether e is context.Background() or context.TODO().
func isFreshContext(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := calleePkgFunc(info, call)
	return ok && pkg == "context" && (name == "Background" || name == "TODO")
}

// checkCtxFlow analyzes one context-bearing function body. Nested function
// literals are skipped — they are visited as their own functions with their
// own (possibly absent) context parameters.
func checkCtxFlow(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctx, blank := ctxParam(pass.TypesInfo, ft)
	if ctx == nil || blank {
		return
	}

	// First pass: is ctx consulted anywhere in this body?
	ctxUsed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctx {
			ctxUsed = true
		}
		return !ctxUsed
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := calleePkgFunc(pass.TypesInfo, call); ok && ctxflowEnginePkgs[pkg] {
			switch name {
			case "Wait":
				pass.Reportf(call.Pos(), "blocking %s.Wait inside a context-bearing function; thread the deadline with %s.WaitContext(%s)", pkg, pkg, ctx.Name())
			case "WaitContext":
				if len(call.Args) == 1 && isFreshContext(pass.TypesInfo, call.Args[0]) {
					pass.Reportf(call.Pos(), "%s.WaitContext called with a fresh context; pass the caller's %s so its deadline reaches the flush", pkg, ctx.Name())
				}
			}
			return true
		}
		// Method form: m.Wait() / m.Compact() / m.PinEpoch() force a flush
		// with no context of their own.
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !ctxflowBlockingMethods[sel.Sel.Name] {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !ctxflowEnginePkgs[fn.Pkg().Name()] {
			return true
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
			return true
		}
		if !ctxUsed {
			pass.Reportf(call.Pos(), "blocking %s forces a context-blind flush and %s is never consulted in this function; checkpoint with WaitContext(%s) or poll %s.Err()", sel.Sel.Name, ctx.Name(), ctx.Name(), ctx.Name())
		}
		return true
	})
}

package analysis

// Suppression comments. A finding is silenced with
//
//	//grblint:ignore <analyzer> <justification>
//
// placed either on the flagged line or alone on the line directly above it.
// The justification is mandatory: a suppression is a reviewed claim that the
// invariant holds for reasons the analyzer cannot see, and the claim must be
// stated. A malformed directive (unknown shape, missing justification) is
// itself a finding, so suppressions cannot rot silently.

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//grblint:ignore"

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one well-formed //grblint:ignore comment: where it sits, which
// analyzer it silences, the reviewed justification, and whether this run
// actually honored it — the raw material of the suppression inventory.
type directive struct {
	file          string
	line          int
	analyzer      string
	justification string
	used          bool
}

type ignoreIndex struct {
	keys       map[ignoreKey]*directive
	directives []*directive
	malformed  []Diagnostic
}

func newIgnoreIndex() *ignoreIndex {
	return &ignoreIndex{keys: map[ignoreKey]*directive{}}
}

// collect indexes every //grblint:ignore directive in the files.
func (ig *ignoreIndex) collect(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "grblint",
						Message:  "malformed suppression: want //grblint:ignore <analyzer> <justification>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					file:          pos.Filename,
					line:          pos.Line,
					analyzer:      fields[0],
					justification: strings.Join(fields[1:], " "),
				}
				ig.directives = append(ig.directives, d)
				// The directive covers its own line; when the comment stands
				// alone it covers the next line instead.
				ig.keys[ignoreKey{pos.Filename, pos.Line, fields[0]}] = d
				ig.keys[ignoreKey{pos.Filename, pos.Line + 1, fields[0]}] = d
			}
		}
	}
}

// suppressed reports whether a finding by the named analyzer at pos is
// covered by a directive, marking the directive as honored when it is.
func (ig *ignoreIndex) suppressed(pos token.Position, analyzer string) bool {
	d := ig.keys[ignoreKey{pos.Filename, pos.Line, analyzer}]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// inventory resolves the collected directives into the public Suppression
// records. Used flags are meaningful only after every diagnostic has been
// filtered through suppressed.
func (ig *ignoreIndex) inventory() []Suppression {
	out := make([]Suppression, 0, len(ig.directives))
	for _, d := range ig.directives {
		out = append(out, Suppression{
			File:          d.file,
			Line:          d.line,
			Analyzer:      d.analyzer,
			Justification: d.justification,
			Used:          d.used,
		})
	}
	return out
}

package format

import (
	"math/bits"

	"graphblas/internal/faults"
	"graphblas/internal/parallel"
	"graphblas/internal/sparse"
)

// Each kernel consults the fault-injection plan once at entry, before its
// parallel region, so an injected failure is raised deterministically on the
// dispatching goroutine and the core's retry-with-fallback can re-run the
// operation on the generic CSR path.

// This file holds the format-specialized multiply kernels the core package
// dispatches to when an operand is stored as bitmap or hypersparse. They
// mirror the contracts of sparse.DotMxV / sparse.SpGEMM: pre-resolved masks,
// plain function operators, fresh output storage.

// maskCursor tests row membership against a pre-resolved vector mask while
// rows are visited in increasing order; amortized O(1) per query. It is the
// counterpart of the sparse package's internal cursor.
type maskCursor struct {
	m *sparse.VecMask
	p int
}

func (c *maskCursor) allows(i int) bool {
	if c.m == nil {
		return true
	}
	set := c.m.Idx
	if c.m.Comp {
		set = c.m.Structure
	}
	for c.p < len(set) && set[c.p] < i {
		c.p++
	}
	member := c.p < len(set) && set[c.p] == i
	if c.m.Comp {
		return !member
	}
	return member
}

// denseWithBits scatters u into a dense value array plus a presence bitset
// of the given word count (ceil(u.N/64), matching Bitmap row words).
func denseWithBits[T any](u *sparse.Vec[T], words int) ([]T, []uint64) {
	d := make([]T, u.N)
	bs := make([]uint64, words)
	for k, i := range u.Idx {
		d[i] = u.Val[k]
		bs[i>>6] |= 1 << (uint(i) & 63)
	}
	return d, bs
}

// DotMxVBitmap computes w(i) = ⊕_k mul(a(i,k), u(k)) with a stored as
// bitmap. Presence of both operands over 64 consecutive columns is resolved
// by a single word AND (the matrix row's bitset against the vector's), so
// the per-entry index load and presence branch of the CSR kernel disappear;
// remaining per-entry cost is the two operator calls.
func DotMxVBitmap[DA, DU, DC any](a *Bitmap[DA], u *sparse.Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *sparse.VecMask) *sparse.Vec[DC] {
	faults.Step("format.kernel.bitmap.mxv")
	dense, ubits := denseWithBits(u, a.Words)
	rowOut := make([]DC, a.NRows)
	rowHas := make([]bool, a.NRows)
	parallel.For(a.NRows, 8, func(lo, hi int) {
		cur := maskCursor{m: mask}
		for i := lo; i < hi; i++ {
			if !cur.allows(i) {
				continue
			}
			rb := a.RowBits(i)
			rv := a.RowVals(i)
			var acc DC
			has := false
			for wi, w := range rb {
				w &= ubits[wi]
				if w == 0 {
					continue
				}
				base := wi << 6
				for w != 0 {
					j := base + bits.TrailingZeros64(w)
					w &= w - 1
					x := mul(rv[j], dense[j])
					if has {
						acc = add(acc, x)
					} else {
						acc = x
						has = true
					}
				}
			}
			if has {
				rowOut[i] = acc
				rowHas[i] = true
			}
		}
	})
	return sparse.FromDense(rowOut, rowHas)
}

// Arith constrains the domains eligible for the specialized plus-times
// kernels: built-in numeric types whose ⊕ and ⊗ compile to machine add and
// multiply, with 0 as the additive identity.
type Arith interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// dotMxVBitmapPlusTimes is DotMxVBitmap for the arithmetic semiring with the
// operator calls inlined: acc += a(i,j)·u(j). This is the kernel the
// "dense-ish mxv" benchmark point exercises; eliminating the two indirect
// calls per entry is where the bitmap layout's speedup comes from.
func dotMxVBitmapPlusTimes[T Arith](a *Bitmap[T], u *sparse.Vec[T], mask *sparse.VecMask) *sparse.Vec[T] {
	faults.Step("format.kernel.bitmap.mxv.fast")
	dense, ubits := denseWithBits(u, a.Words)
	rowOut := make([]T, a.NRows)
	rowHas := make([]bool, a.NRows)
	parallel.For(a.NRows, 8, func(lo, hi int) {
		cur := maskCursor{m: mask}
		for i := lo; i < hi; i++ {
			if !cur.allows(i) {
				continue
			}
			rb := a.RowBits(i)
			rv := a.RowVals(i)
			var acc T
			has := false
			for wi, w := range rb {
				w &= ubits[wi]
				if w == 0 {
					continue
				}
				has = true
				base := wi << 6
				if w == ^uint64(0) {
					// Saturated word: straight-line multiply-accumulate
					// over 64 contiguous cells, no per-bit scanning.
					for j := base; j < base+64; j++ {
						acc += rv[j] * dense[j]
					}
					continue
				}
				for w != 0 {
					j := base + bits.TrailingZeros64(w)
					w &= w - 1
					acc += rv[j] * dense[j]
				}
			}
			if has {
				rowOut[i] = acc
				rowHas[i] = true
			}
		}
	})
	return sparse.FromDense(rowOut, rowHas)
}

// TryDotMxVPlusTimes dispatches the specialized arithmetic dot kernel when
// the any-wrapped operands are a bitmap matrix and sparse vector over a
// supported built-in numeric domain. The caller is responsible for having
// verified that the semiring is ⟨+,×⟩ (core checks the builtin operator
// names and sample-evaluates the functions before calling).
func TryDotMxVPlusTimes(a, u any, mask *sparse.VecMask) (any, bool) {
	switch am := a.(type) {
	case *Bitmap[float64]:
		if uv, ok := u.(*sparse.Vec[float64]); ok {
			return dotMxVBitmapPlusTimes(am, uv, mask), true
		}
	case *Bitmap[float32]:
		if uv, ok := u.(*sparse.Vec[float32]); ok {
			return dotMxVBitmapPlusTimes(am, uv, mask), true
		}
	case *Bitmap[int]:
		if uv, ok := u.(*sparse.Vec[int]); ok {
			return dotMxVBitmapPlusTimes(am, uv, mask), true
		}
	case *Bitmap[int32]:
		if uv, ok := u.(*sparse.Vec[int32]); ok {
			return dotMxVBitmapPlusTimes(am, uv, mask), true
		}
	case *Bitmap[int64]:
		if uv, ok := u.(*sparse.Vec[int64]); ok {
			return dotMxVBitmapPlusTimes(am, uv, mask), true
		}
	}
	return nil, false
}

// DotMxVHyper computes w(i) = ⊕_k mul(a(i,k), u(k)) with a stored
// hypersparse: only the non-empty rows are visited, so cost scales with the
// stored structure instead of nrows. Empty rows produce no output entry,
// exactly as in the CSR kernel.
func DotMxVHyper[DA, DU, DC any](a *Hyper[DA], u *sparse.Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *sparse.VecMask) *sparse.Vec[DC] {
	faults.Step("format.kernel.hyper.mxv")
	dense, present := u.Dense()
	out := &sparse.Vec[DC]{N: a.NRows}
	cur := maskCursor{m: mask}
	for k, i := range a.Rows {
		if !cur.allows(i) {
			continue
		}
		idx, val := a.RowAt(k)
		var acc DC
		has := false
		for p, j := range idx {
			if !present[j] {
				continue
			}
			x := mul(val[p], dense[j])
			if has {
				acc = add(acc, x)
			} else {
				acc = x
				has = true
			}
		}
		if has {
			out.Idx = append(out.Idx, i)
			out.Val = append(out.Val, acc)
		}
	}
	return out
}

// PushMxVHyper computes w(i) = ⊕_k mul(a(k,i), u(k)) — w = Aᵀ ⊕.⊗ u — with
// a stored hypersparse. u's stored indices and a's non-empty rows are both
// increasing, so one merge walk finds the rows to expand in O(e + nnz(u))
// instead of per-entry lookups.
func PushMxVHyper[DA, DU, DC any](a *Hyper[DA], u *sparse.Vec[DU], mul func(DA, DU) DC, add func(DC, DC) DC, mask *sparse.VecMask) *sparse.Vec[DC] {
	faults.Step("format.kernel.hyper.mxv.push")
	spa := sparse.NewSPA[DC](a.NCols)
	spa.Reset()
	var allowed *sparse.BitSPA
	comp := false
	if mask != nil {
		allowed = sparse.NewBitSPA(a.NCols)
		allowed.Reset()
		comp = mask.Comp
		if comp {
			allowed.MarkAll(mask.Structure)
		} else {
			allowed.MarkAll(mask.Idx)
		}
	}
	r := 0
	for pu, k := range u.Idx {
		for r < len(a.Rows) && a.Rows[r] < k {
			r++
		}
		if r >= len(a.Rows) {
			break
		}
		if a.Rows[r] != k {
			continue
		}
		uv := u.Val[pu]
		idx, val := a.RowAt(r)
		for p, i := range idx {
			if allowed != nil && allowed.Has(i) == comp {
				continue
			}
			spa.Accumulate(i, mul(val[p], uv), add)
		}
	}
	idx, val := spa.Gather(nil, nil)
	return &sparse.Vec[DC]{N: a.NCols, Idx: idx, Val: val}
}

// SpGEMMBitmap computes C = A ⊕.⊗ B with B stored as bitmap: Gustavson's
// row algorithm where each selected B row is scanned by bitset words rather
// than through an index array, with the same in-kernel mask pruning as
// sparse.SpGEMM. Output is CSR (the product of sparse A and anything has
// sparse rows wherever A does).
func SpGEMMBitmap[DA, DB, DC any](a *sparse.CSR[DA], b *Bitmap[DB], mul func(DA, DB) DC, add func(DC, DC) DC, mask *sparse.MatMask) *sparse.CSR[DC] {
	faults.Step("format.kernel.bitmap.mxm")
	ri := make([][]int, a.NRows)
	rv := make([][]DC, a.NRows)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		spa := sparse.NewSPA[DC](b.NCols)
		var allowed *sparse.BitSPA
		if mask != nil {
			allowed = sparse.NewBitSPA(b.NCols)
		}
		var idxArena []int
		var valArena []DC
		offs := make([]int, 0, hi-lo+1)
		offs = append(offs, 0)
		for i := lo; i < hi; i++ {
			spa.Reset()
			maskCol := func(int) bool { return true }
			if mask != nil {
				allowed.Reset()
				if mask.Comp {
					allowed.MarkAll(mask.StrRow(i))
					maskCol = func(j int) bool { return !allowed.Has(j) }
				} else {
					allowed.MarkAll(mask.EffRow(i))
					maskCol = allowed.Has
				}
			}
			for pa := a.Ptr[i]; pa < a.Ptr[i+1]; pa++ {
				k := a.ColIdx[pa]
				av := a.Val[pa]
				bv := b.RowVals(k)
				for wi, w := range b.RowBits(k) {
					base := wi << 6
					for w != 0 {
						j := base + bits.TrailingZeros64(w)
						w &= w - 1
						if !maskCol(j) {
							continue
						}
						spa.Accumulate(j, mul(av, bv[j]), add)
					}
				}
			}
			idxArena, valArena = spa.Gather(idxArena, valArena)
			offs = append(offs, len(idxArena))
		}
		for i := lo; i < hi; i++ {
			k := i - lo
			ri[i] = idxArena[offs[k]:offs[k+1]]
			rv[i] = valArena[offs[k]:offs[k+1]]
		}
	})
	return assembleCSR(a.NRows, b.NCols, ri, rv)
}

// spGEMMBitmapPlusTimes multiplies A (CSR) by B (bitmap) over ⟨+,×⟩,
// materializing the result directly as a bitmap: output structure is the
// word-level OR of the selected B rows and values accumulate in place in the
// dense row, with no sparse accumulator, no per-row sort, and no final
// assembly. This is the "materialize in the cheapest format" path for
// near-dense products.
func spGEMMBitmapPlusTimes[T Arith](a *sparse.CSR[T], b *Bitmap[T]) *Bitmap[T] {
	faults.Step("format.kernel.bitmap.mxm.fast")
	out := NewBitmap[T](a.NRows, b.NCols)
	parallel.ForWeighted(a.NRows, a.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ob := out.RowBits(i)
			ov := out.RowVals(i)
			for pa := a.Ptr[i]; pa < a.Ptr[i+1]; pa++ {
				k := a.ColIdx[pa]
				av := a.Val[pa]
				bv := b.RowVals(k)
				for wi, w := range b.RowBits(k) {
					if w == 0 {
						continue
					}
					ob[wi] |= w
					base := wi << 6
					if w == ^uint64(0) {
						for j := base; j < base+64; j++ {
							ov[j] += av * bv[j]
						}
						continue
					}
					for w != 0 {
						j := base + bits.TrailingZeros64(w)
						w &= w - 1
						ov[j] += av * bv[j]
					}
				}
			}
		}
	})
	out.recount()
	return out
}

// TryMxMPlusTimes dispatches the specialized arithmetic SpGEMM when the
// any-wrapped operands are a CSR A and bitmap B over a supported numeric
// domain. Returns the product as a *Bitmap of the same domain. As with
// TryDotMxVPlusTimes, the caller must have verified the semiring is ⟨+,×⟩.
func TryMxMPlusTimes(a, b any) (any, bool) {
	switch am := a.(type) {
	case *sparse.CSR[float64]:
		if bm, ok := b.(*Bitmap[float64]); ok {
			return spGEMMBitmapPlusTimes(am, bm), true
		}
	case *sparse.CSR[float32]:
		if bm, ok := b.(*Bitmap[float32]); ok {
			return spGEMMBitmapPlusTimes(am, bm), true
		}
	case *sparse.CSR[int]:
		if bm, ok := b.(*Bitmap[int]); ok {
			return spGEMMBitmapPlusTimes(am, bm), true
		}
	case *sparse.CSR[int32]:
		if bm, ok := b.(*Bitmap[int32]); ok {
			return spGEMMBitmapPlusTimes(am, bm), true
		}
	case *sparse.CSR[int64]:
		if bm, ok := b.(*Bitmap[int64]); ok {
			return spGEMMBitmapPlusTimes(am, bm), true
		}
	}
	return nil, false
}

// assembleCSR builds a CSR matrix from per-row slices, the local counterpart
// of the sparse package's internal assembler.
func assembleCSR[T any](nrows, ncols int, rowIdx [][]int, rowVal [][]T) *sparse.CSR[T] {
	c := sparse.NewCSR[T](nrows, ncols)
	for i := 0; i < nrows; i++ {
		c.Ptr[i+1] = c.Ptr[i] + len(rowIdx[i])
	}
	nnz := c.Ptr[nrows]
	faults.GovernAlloc("format.alloc.csr", int64(nnz)*(8+elemBytes))
	c.ColIdx = make([]int, nnz)
	c.Val = make([]T, nnz)
	parallel.For(nrows, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(c.ColIdx[c.Ptr[i]:], rowIdx[i])
			copy(c.Val[c.Ptr[i]:], rowVal[i])
		}
	})
	return c
}

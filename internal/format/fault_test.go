package format

import (
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/sparse"
)

// TestGovernedBitmapAlloc: the dense-layout constructor routes through the
// allocation governor; with a tiny budget the conversion is denied as an
// OutOfMemory fault before any allocation happens, and the default budget
// admits it again.
func TestGovernedBitmapAlloc(t *testing.T) {
	prev := faults.SetAllocBudget(64)
	t.Cleanup(func() { faults.SetAllocBudget(prev); faults.Disable() })
	func() {
		defer func() {
			f, ok := recover().(*faults.Fault)
			if !ok || f.Kind != faults.OOM || f.Site != "format.alloc.bitmap" {
				t.Fatalf("recovered %v, want bitmap OOM fault", f)
			}
		}()
		NewBitmap[float64](64, 64)
		t.Fatal("oversized bitmap allocation not denied")
	}()
	faults.SetAllocBudget(0)
	if b := NewBitmap[float64](64, 64); b == nil || len(b.Val) != 64*64 {
		t.Fatal("bitmap allocation denied under default budget")
	}
}

// TestKernelFaultSite: the bitmap MxV kernel carries a deterministic
// injection site at its entry, before any parallel work.
func TestKernelFaultSite(t *testing.T) {
	t.Cleanup(faults.Disable)
	b := NewBitmap[float64](8, 8)
	b.Set(2, 3, 5)
	faults.Configure(1, faults.Rule{Site: "format.kernel.bitmap.mxv", Kind: faults.KernelErr})
	defer func() {
		f, ok := recover().(*faults.Fault)
		if !ok || f.Kind != faults.KernelErr {
			t.Fatalf("recovered %v, want KernelErr fault", f)
		}
	}()
	u, _ := sparse.BuildVec(8, []int{0, 3, 5}, []float64{1, 1, 1}, nil)
	DotMxVBitmap(b, u,
		func(x, y float64) float64 { return x * y },
		func(x, y float64) float64 { return x + y }, nil)
	t.Fatal("kernel site did not fire")
}

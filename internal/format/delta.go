package format

import (
	"sort"
	"unsafe"

	"graphblas/internal/sparse"
)

// HyperDelta is the hypersparse (doubly-compressed) update overlay of the
// streaming engine: the same DCSR row structure as Hyper, extended with a
// per-entry tombstone bit so a batch can record deletions of main-store
// elements it has never seen. A stream of edge updates touches a vanishing
// fraction of a large graph's rows, which is exactly the regime DCSR is
// built for — the overlay costs O(touched rows + updates) regardless of the
// main matrix's row count.
//
// Instances are immutable once built: absorption and compaction always
// produce fresh structures, so a snapshot (or a pinned epoch) holding an old
// pointer stays valid while new deltas are published.
type HyperDelta[T any] struct {
	NRows, NCols int
	Rows         []int // touched row ids, strictly increasing
	Ptr          []int // len(Rows)+1 offsets into ColIdx/Val/Del
	ColIdx       []int // columns per touched row, strictly increasing
	Val          []T
	Del          []bool // tombstone: entry k deletes (row, ColIdx[k]) from the view
}

// Dims reports the logical dimensions the overlay was built against.
func (d *HyperDelta[T]) Dims() (int, int) { return d.NRows, d.NCols }

// NNZ reports the number of recorded updates (inserts plus tombstones).
func (d *HyperDelta[T]) NNZ() int {
	if d == nil {
		return 0
	}
	return d.Ptr[len(d.Rows)]
}

// ApproxBytes estimates the heap footprint of the overlay, the quantity the
// allocation governor charges and the merge policy reasons about.
func (d *HyperDelta[T]) ApproxBytes() int64 {
	if d == nil {
		return 0
	}
	var elem T
	n := int64(d.NNZ())
	return int64(len(d.Rows)+len(d.Ptr)+len(d.ColIdx))*int64(unsafe.Sizeof(int(0))) +
		n*int64(unsafe.Sizeof(elem)) + n
}

// RowAt returns the columns, values, and tombstone flags of the k-th touched
// row.
func (d *HyperDelta[T]) RowAt(k int) ([]int, []T, []bool) {
	lo, hi := d.Ptr[k], d.Ptr[k+1]
	return d.ColIdx[lo:hi], d.Val[lo:hi], d.Del[lo:hi]
}

// Lookup returns the update recorded at (i, j): ok reports whether the
// overlay stores one, del whether that update is a deletion.
func (d *HyperDelta[T]) Lookup(i, j int) (v T, del, ok bool) {
	var zero T
	if d == nil {
		return zero, false, false
	}
	k := sort.SearchInts(d.Rows, i)
	if k == len(d.Rows) || d.Rows[k] != i {
		return zero, false, false
	}
	idx, val, dl := d.RowAt(k)
	p := sort.SearchInts(idx, j)
	if p < len(idx) && idx[p] == j {
		return val[p], dl[p], true
	}
	return zero, false, false
}

// DeltaFromTuples builds an overlay from a program-ordered update stream:
// entries are grouped by (row, col) and the last update to a position wins,
// mirroring sparse.ApplyTuples. Tombstones (Del tuples) are kept — unlike a
// pending-tuple flush they must survive until the overlay merges into a main
// store whose elements they may delete. The input slice is not modified.
func DeltaFromTuples[T any](nrows, ncols int, ts []sparse.Tuple[T]) *HyperDelta[T] {
	d := &HyperDelta[T]{NRows: nrows, NCols: ncols}
	if len(ts) == 0 {
		d.Ptr = []int{0}
		return d
	}
	perm := make([]int, len(ts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ta, tb := ts[perm[a]], ts[perm[b]]
		if ta.I != tb.I {
			return ta.I < tb.I
		}
		return ta.J < tb.J
	})
	d.Ptr = []int{0}
	k := 0
	for k < len(perm) {
		row := ts[perm[k]].I
		d.Rows = append(d.Rows, row)
		for k < len(perm) && ts[perm[k]].I == row {
			col := ts[perm[k]].J
			last := ts[perm[k]]
			for k < len(perm) && ts[perm[k]].I == row && ts[perm[k]].J == col {
				last = ts[perm[k]]
				k++
			}
			d.ColIdx = append(d.ColIdx, col)
			d.Val = append(d.Val, last.V)
			d.Del = append(d.Del, last.Del)
		}
		d.Ptr = append(d.Ptr, len(d.ColIdx))
	}
	return d
}

// MergeDeltas layers add over old: where both record an update to the same
// position the one from add wins (add is later in program order), and
// tombstones from either side are retained. Returns a fresh overlay; the
// inputs are not modified.
func MergeDeltas[T any](old, add *HyperDelta[T]) *HyperDelta[T] {
	if old == nil || old.NNZ() == 0 {
		return add
	}
	if add == nil || add.NNZ() == 0 {
		return old
	}
	out := &HyperDelta[T]{NRows: add.NRows, NCols: add.NCols, Ptr: []int{0}}
	emitRow := func(row int, idx []int, val []T, del []bool) {
		out.Rows = append(out.Rows, row)
		out.ColIdx = append(out.ColIdx, idx...)
		out.Val = append(out.Val, val...)
		out.Del = append(out.Del, del...)
		out.Ptr = append(out.Ptr, len(out.ColIdx))
	}
	a, b := 0, 0
	for a < len(old.Rows) || b < len(add.Rows) {
		switch {
		case b == len(add.Rows) || (a < len(old.Rows) && old.Rows[a] < add.Rows[b]):
			i, v, dl := old.RowAt(a)
			emitRow(old.Rows[a], i, v, dl)
			a++
		case a == len(old.Rows) || add.Rows[b] < old.Rows[a]:
			i, v, dl := add.RowAt(b)
			emitRow(add.Rows[b], i, v, dl)
			b++
		default: // same row in both: column-wise merge, add wins
			row := old.Rows[a]
			oi, ov, od := old.RowAt(a)
			ai, av, ad := add.RowAt(b)
			out.Rows = append(out.Rows, row)
			p, q := 0, 0
			for p < len(oi) || q < len(ai) {
				switch {
				case q == len(ai) || (p < len(oi) && oi[p] < ai[q]):
					out.ColIdx = append(out.ColIdx, oi[p])
					out.Val = append(out.Val, ov[p])
					out.Del = append(out.Del, od[p])
					p++
				case p == len(oi) || ai[q] < oi[p]:
					out.ColIdx = append(out.ColIdx, ai[q])
					out.Val = append(out.Val, av[q])
					out.Del = append(out.Del, ad[q])
					q++
				default:
					out.ColIdx = append(out.ColIdx, ai[q])
					out.Val = append(out.Val, av[q])
					out.Del = append(out.Del, ad[q])
					p++
					q++
				}
			}
			out.Ptr = append(out.Ptr, len(out.ColIdx))
			a++
			b++
		}
	}
	return out
}

// MergeDeltaCSR compacts the overlay into a main store: a row-wise
// two-pointer merge where overlay inserts replace main elements and
// tombstones drop them. Updates outside the main store's current dimensions
// are discarded — a Resize enqueued between absorption and compaction may
// legitimately have shrunk the matrix. Returns fresh storage; neither input
// is modified.
func MergeDeltaCSR[T any](main *sparse.CSR[T], d *HyperDelta[T]) *sparse.CSR[T] {
	if d == nil || d.NNZ() == 0 {
		return main
	}
	out := &sparse.CSR[T]{NRows: main.NRows, NCols: main.NCols, Ptr: make([]int, main.NRows+1)}
	k := 0
	for i := 0; i < main.NRows; i++ {
		for k < len(d.Rows) && d.Rows[k] < i {
			k++ // overlay row with no main row counterpart below: skip (out of range)
		}
		mi, mv := main.Row(i)
		if k == len(d.Rows) || d.Rows[k] != i {
			out.ColIdx = append(out.ColIdx, mi...)
			out.Val = append(out.Val, mv...)
			out.Ptr[i+1] = len(out.ColIdx)
			continue
		}
		di, dv, dd := d.RowAt(k)
		p, q := 0, 0
		for p < len(mi) || q < len(di) {
			switch {
			case q == len(di) || (p < len(mi) && mi[p] < di[q]):
				out.ColIdx = append(out.ColIdx, mi[p])
				out.Val = append(out.Val, mv[p])
				p++
			case p == len(mi) || di[q] < mi[p]:
				if !dd[q] && di[q] < main.NCols {
					out.ColIdx = append(out.ColIdx, di[q])
					out.Val = append(out.Val, dv[q])
				}
				q++
			default:
				if !dd[q] {
					out.ColIdx = append(out.ColIdx, di[q])
					out.Val = append(out.Val, dv[q])
				}
				p++
				q++
			}
		}
		out.Ptr[i+1] = len(out.ColIdx)
	}
	return out
}

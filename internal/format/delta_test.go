package format

import (
	"math/rand"
	"testing"

	"graphblas/internal/sparse"
)

func deltaOf(t *testing.T, nr, nc int, ts ...sparse.Tuple[float64]) *HyperDelta[float64] {
	t.Helper()
	return DeltaFromTuples(nr, nc, ts)
}

func TestDeltaFromTuplesLastWins(t *testing.T) {
	d := deltaOf(t, 4, 4,
		sparse.Tuple[float64]{I: 2, J: 1, V: 1},
		sparse.Tuple[float64]{I: 0, J: 3, V: 5},
		sparse.Tuple[float64]{I: 2, J: 1, V: 7},          // overwrite
		sparse.Tuple[float64]{I: 0, J: 3, Del: true},     // delete wins over insert
		sparse.Tuple[float64]{I: 3, J: 0, Del: true},     // tombstone for unseen element
		sparse.Tuple[float64]{I: 3, J: 0, V: 9},          // then re-insert
	)
	if d.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", d.NNZ())
	}
	if v, del, ok := d.Lookup(2, 1); !ok || del || v != 7 {
		t.Fatalf("Lookup(2,1) = %v,%v,%v; want 7,false,true", v, del, ok)
	}
	if _, del, ok := d.Lookup(0, 3); !ok || !del {
		t.Fatalf("Lookup(0,3): tombstone expected")
	}
	if v, del, ok := d.Lookup(3, 0); !ok || del || v != 9 {
		t.Fatalf("Lookup(3,0) = %v,%v,%v; want 9,false,true", v, del, ok)
	}
	if _, _, ok := d.Lookup(1, 1); ok {
		t.Fatalf("Lookup(1,1): no update recorded there")
	}
}

func TestMergeDeltasAddWins(t *testing.T) {
	old := deltaOf(t, 4, 4,
		sparse.Tuple[float64]{I: 1, J: 1, V: 1},
		sparse.Tuple[float64]{I: 1, J: 2, V: 2},
		sparse.Tuple[float64]{I: 3, J: 3, Del: true},
	)
	add := deltaOf(t, 4, 4,
		sparse.Tuple[float64]{I: 1, J: 2, Del: true}, // shadows old insert
		sparse.Tuple[float64]{I: 2, J: 0, V: 8},      // new row between old rows
		sparse.Tuple[float64]{I: 3, J: 3, V: 6},      // resurrects old tombstone
	)
	m := MergeDeltas(old, add)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if v, _, _ := m.Lookup(1, 1); v != 1 {
		t.Fatalf("(1,1) lost: %v", v)
	}
	if _, del, ok := m.Lookup(1, 2); !ok || !del {
		t.Fatalf("(1,2): add's tombstone must win")
	}
	if v, del, ok := m.Lookup(3, 3); !ok || del || v != 6 {
		t.Fatalf("(3,3): add's insert must win, got %v,%v,%v", v, del, ok)
	}
	// Identity cases share structure instead of copying.
	if got := MergeDeltas(nil, add); got != add {
		t.Fatalf("MergeDeltas(nil, add) must return add")
	}
	if got := MergeDeltas(old, nil); got != old {
		t.Fatalf("MergeDeltas(old, nil) must return old")
	}
}

func TestMergeDeltaCSRAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nr, nc = 12, 9
	for trial := 0; trial < 50; trial++ {
		model := map[[2]int]float64{}
		var is, js []int
		var vs []float64
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if rng.Float64() < 0.3 {
					v := float64(rng.Intn(9) + 1)
					model[[2]int{i, j}] = v
					is, js, vs = append(is, i), append(js, j), append(vs, v)
				}
			}
		}
		main, _ := sparse.BuildCSR(nr, nc, is, js, vs, nil)
		var ts []sparse.Tuple[float64]
		for k := 0; k < 40; k++ {
			i, j := rng.Intn(nr), rng.Intn(nc)
			if rng.Float64() < 0.35 {
				ts = append(ts, sparse.Tuple[float64]{I: i, J: j, Del: true})
				delete(model, [2]int{i, j})
			} else {
				v := float64(rng.Intn(9) + 1)
				ts = append(ts, sparse.Tuple[float64]{I: i, J: j, V: v})
				model[[2]int{i, j}] = v
			}
		}
		got := MergeDeltaCSR(main, DeltaFromTuples(nr, nc, ts))
		if got.NNZ() != len(model) {
			t.Fatalf("trial %d: NNZ %d, want %d", trial, got.NNZ(), len(model))
		}
		gi, gj, gv := got.Tuples()
		for k := range gi {
			if model[[2]int{gi[k], gj[k]}] != gv[k] {
				t.Fatalf("trial %d: (%d,%d)=%v, want %v", trial, gi[k], gj[k], gv[k], model[[2]int{gi[k], gj[k]}])
			}
		}
	}
}

func TestMergeDeltaCSRClampsOutOfRange(t *testing.T) {
	// The overlay may hold updates a later Resize put out of range; the
	// merge must drop them rather than corrupt the store.
	main := sparse.NewCSR[float64](2, 2)
	main.Set(0, 0, 1)
	d := deltaOf(t, 5, 5,
		sparse.Tuple[float64]{I: 0, J: 1, V: 2},
		sparse.Tuple[float64]{I: 0, J: 4, V: 9}, // col out of range
		sparse.Tuple[float64]{I: 4, J: 0, V: 9}, // row out of range
	)
	got := MergeDeltaCSR(main, d)
	if got.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (out-of-range updates dropped)", got.NNZ())
	}
	if _, ok := got.Get(0, 1); !ok {
		t.Fatalf("in-range insert lost")
	}
}

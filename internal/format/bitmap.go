package format

import (
	"math/bits"

	"graphblas/internal/faults"
	"graphblas/internal/parallel"
	"graphblas/internal/sparse"
)

// elemBytes is the per-element size estimate the allocation governor uses
// for generic value arrays: the dominant domains are 8-byte scalars, and an
// estimate only needs to be monotone in the true size to bound allocations.
const elemBytes = 8

// Bitmap is the dense matrix layout: a validity bitset (one bit per cell,
// row-major, 64 cells per word) over a full nrows×ncols value array. Stored
// elements cost one bit of structure each regardless of position, random
// access is O(1), and presence of 64 consecutive cells is tested with one
// word load — the property the dot-product kernels exploit by ANDing matrix
// and vector presence words. Absent cells hold the zero value of T but are
// undefined, as everywhere in the paper's model.
type Bitmap[T any] struct {
	NRows, NCols int
	// Words is the number of bitset words per row: ceil(NCols/64). Row i's
	// presence words are Bits[i*Words : (i+1)*Words]; its values are
	// Val[i*NCols : (i+1)*NCols].
	Words int
	Bits  []uint64
	Val   []T
	nvals int
}

// NewBitmap returns an empty nrows×ncols bitmap matrix. The dense form is
// the storage engine's largest allocation class, so it passes through the
// allocation-budget governor: an oversized request fails with an injected
// OutOfMemory before the allocation is attempted.
func NewBitmap[T any](nrows, ncols int) *Bitmap[T] {
	w := (ncols + 63) / 64
	faults.GovernAlloc("format.alloc.bitmap", int64(nrows)*int64(w)*8+int64(nrows)*int64(ncols)*elemBytes)
	return &Bitmap[T]{
		NRows: nrows, NCols: ncols, Words: w,
		Bits: make([]uint64, nrows*w),
		Val:  make([]T, nrows*ncols),
	}
}

// Dims reports the logical dimensions.
func (b *Bitmap[T]) Dims() (int, int) { return b.NRows, b.NCols }

// NNZ reports the number of stored elements.
func (b *Bitmap[T]) NNZ() int { return b.nvals }

// Kind reports BitmapKind.
func (b *Bitmap[T]) Kind() Kind { return BitmapKind }

// RowBits returns row i's presence words.
func (b *Bitmap[T]) RowBits(i int) []uint64 { return b.Bits[i*b.Words : (i+1)*b.Words] }

// RowVals returns row i's dense value slice.
func (b *Bitmap[T]) RowVals(i int) []T { return b.Val[i*b.NCols : (i+1)*b.NCols] }

// Has reports whether cell (i, j) is stored.
func (b *Bitmap[T]) Has(i, j int) bool {
	return b.Bits[i*b.Words+j>>6]&(1<<(uint(j)&63)) != 0
}

// Get returns the element at (i, j) and whether it is stored.
func (b *Bitmap[T]) Get(i, j int) (T, bool) {
	if b.Has(i, j) {
		return b.Val[i*b.NCols+j], true
	}
	var zero T
	return zero, false
}

// Set stores x at (i, j), in O(1) — the point of the dense layout.
func (b *Bitmap[T]) Set(i, j int, x T) {
	w := i*b.Words + j>>6
	mask := uint64(1) << (uint(j) & 63)
	if b.Bits[w]&mask == 0 {
		b.Bits[w] |= mask
		b.nvals++
	}
	b.Val[i*b.NCols+j] = x
}

// Remove deletes the element at (i, j), reporting whether it existed.
func (b *Bitmap[T]) Remove(i, j int) bool {
	w := i*b.Words + j>>6
	mask := uint64(1) << (uint(j) & 63)
	if b.Bits[w]&mask == 0 {
		return false
	}
	b.Bits[w] &^= mask
	var zero T
	b.Val[i*b.NCols+j] = zero
	b.nvals--
	return true
}

// rowNNZ counts the stored elements of row i by popcount.
func (b *Bitmap[T]) rowNNZ(i int) int {
	n := 0
	for _, w := range b.RowBits(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// recount recomputes the cached element count; builders that write Bits
// directly call it once at the end instead of counting per Set.
func (b *Bitmap[T]) recount() {
	n := 0
	for _, w := range b.Bits {
		n += bits.OnesCount64(w)
	}
	b.nvals = n
}

// BitmapFromCSR converts a CSR matrix to the bitmap layout, row-parallel.
func BitmapFromCSR[T any](m *sparse.CSR[T]) *Bitmap[T] {
	b := NewBitmap[T](m.NRows, m.NCols)
	parallel.ForWeighted(m.NRows, m.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			idx, val := m.Row(i)
			rb := b.RowBits(i)
			rv := b.RowVals(i)
			for p, j := range idx {
				rb[j>>6] |= 1 << (uint(j) & 63)
				rv[j] = val[p]
			}
		}
	})
	b.nvals = m.NNZ()
	return b
}

// ToCSR converts back to the CSR layout: popcount pass for row pointers,
// then a parallel bit-scan fill.
func (b *Bitmap[T]) ToCSR() *sparse.CSR[T] {
	c := sparse.NewCSR[T](b.NRows, b.NCols)
	for i := 0; i < b.NRows; i++ {
		c.Ptr[i+1] = c.Ptr[i] + b.rowNNZ(i)
	}
	nnz := c.Ptr[b.NRows]
	c.ColIdx = make([]int, nnz)
	c.Val = make([]T, nnz)
	parallel.ForWeighted(b.NRows, c.Ptr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := c.Ptr[i]
			rv := b.RowVals(i)
			for wi, w := range b.RowBits(i) {
				base := wi << 6
				for w != 0 {
					j := base + bits.TrailingZeros64(w)
					w &= w - 1
					c.ColIdx[p] = j
					c.Val[p] = rv[j]
					p++
				}
			}
		}
	})
	return c
}

// Tuples returns copies of the stored triples in row-major order.
func (b *Bitmap[T]) Tuples() (is, js []int, vals []T) {
	is = make([]int, 0, b.nvals)
	js = make([]int, 0, b.nvals)
	vals = make([]T, 0, b.nvals)
	for i := 0; i < b.NRows; i++ {
		rv := b.RowVals(i)
		for wi, w := range b.RowBits(i) {
			base := wi << 6
			for w != 0 {
				j := base + bits.TrailingZeros64(w)
				w &= w - 1
				is = append(is, i)
				js = append(js, j)
				vals = append(vals, rv[j])
			}
		}
	}
	return is, js, vals
}

package format

import (
	"math/bits"

	"graphblas/internal/sparse"
)

// Store is the common surface of the three matrix layouts. The core package
// keeps CSR as the canonical mutation target and caches the alternative
// layouts on the opaque Matrix; kernels dispatch on the concrete types, so
// Store exists for the format-agnostic paths (inspection, extraction,
// conversion) and for tests that treat layouts uniformly.
type Store[T any] interface {
	Kind() Kind
	Dims() (nrows, ncols int)
	NNZ() int
	Get(i, j int) (T, bool)
	Has(i, j int) bool
	ToCSR() *sparse.CSR[T]
	Tuples() (is, js []int, vals []T)
}

// CSRStore adapts sparse.CSR to the Store interface.
type CSRStore[T any] struct{ M *sparse.CSR[T] }

// Kind reports CSRKind.
func (s CSRStore[T]) Kind() Kind { return CSRKind }

// Dims reports the logical dimensions.
func (s CSRStore[T]) Dims() (int, int) { return s.M.NRows, s.M.NCols }

// NNZ reports the number of stored elements.
func (s CSRStore[T]) NNZ() int { return s.M.NNZ() }

// Get returns the element at (i, j) and whether it is stored.
func (s CSRStore[T]) Get(i, j int) (T, bool) { return s.M.Get(i, j) }

// Has reports whether (i, j) is stored.
func (s CSRStore[T]) Has(i, j int) bool { return s.M.Has(i, j) }

// ToCSR returns the wrapped matrix itself.
func (s CSRStore[T]) ToCSR() *sparse.CSR[T] { return s.M }

// Tuples returns copies of the stored triples in row-major order.
func (s CSRStore[T]) Tuples() ([]int, []int, []T) { return s.M.Tuples() }

// Wrap presents a CSR matrix as a Store.
func Wrap[T any](m *sparse.CSR[T]) Store[T] { return CSRStore[T]{M: m} }

// Convert re-materializes s in the layout k (Auto consults Choose with
// HintNone). Converting to the layout s already has returns s unchanged;
// every ordered pair of distinct layouts is reachable, with the
// bitmap↔hypersparse pairs taking the direct routines below rather than
// bouncing through CSR.
func Convert[T any](s Store[T], k Kind) Store[T] {
	if k == Auto {
		nr, nc := s.Dims()
		k = Choose(nr, nc, s.NNZ(), HintNone)
	}
	if k == s.Kind() {
		return s
	}
	switch k {
	case BitmapKind:
		if h, ok := s.(*Hyper[T]); ok {
			return BitmapFromHyper(h)
		}
		return BitmapFromCSR(s.ToCSR())
	case HyperKind:
		if b, ok := s.(*Bitmap[T]); ok {
			return HyperFromBitmap(b)
		}
		return HyperFromCSR(s.ToCSR())
	default:
		return Wrap(s.ToCSR())
	}
}

// BitmapFromHyper converts hypersparse content to the bitmap layout without
// materializing the intermediate CSR row pointers.
func BitmapFromHyper[T any](h *Hyper[T]) *Bitmap[T] {
	b := NewBitmap[T](h.NRows, h.NCols)
	for k := range h.Rows {
		i := h.Rows[k]
		idx, val := h.RowAt(k)
		rb := b.RowBits(i)
		rv := b.RowVals(i)
		for p, j := range idx {
			rb[j>>6] |= 1 << (uint(j) & 63)
			rv[j] = val[p]
		}
	}
	b.nvals = h.NNZ()
	return b
}

// HyperFromBitmap converts bitmap content to the hypersparse layout,
// visiting only the non-empty rows' payload.
func HyperFromBitmap[T any](b *Bitmap[T]) *Hyper[T] {
	h := &Hyper[T]{NRows: b.NRows, NCols: b.NCols}
	h.Ptr = append(h.Ptr, 0)
	for i := 0; i < b.NRows; i++ {
		n := b.rowNNZ(i)
		if n == 0 {
			continue
		}
		h.Rows = append(h.Rows, i)
		rv := b.RowVals(i)
		for wi, w := range b.RowBits(i) {
			base := wi << 6
			for w != 0 {
				j := base + bits.TrailingZeros64(w)
				w &= w - 1
				h.ColIdx = append(h.ColIdx, j)
				h.Val = append(h.Val, rv[j])
			}
		}
		h.Ptr = append(h.Ptr, len(h.ColIdx))
	}
	return h
}

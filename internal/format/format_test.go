package format

import (
	"math/rand"
	"testing"

	"graphblas/internal/sparse"
)

// randCSR builds a random nrows×ncols CSR matrix with the given fill ratio.
func randCSR(rng *rand.Rand, nrows, ncols int, fill float64) *sparse.CSR[float64] {
	var rows, cols []int
	var vals []float64
	for i := 0; i < nrows; i++ {
		for j := 0; j < ncols; j++ {
			if rng.Float64() < fill {
				rows = append(rows, i)
				cols = append(cols, j)
				vals = append(vals, float64(rng.Intn(19))-9)
			}
		}
	}
	m, ok := sparse.BuildCSR(nrows, ncols, rows, cols, vals, nil)
	if !ok {
		panic("duplicate tuples in randCSR")
	}
	return m
}

// randVec builds a random sparse vector of size n with the given fill ratio.
func randVec(rng *rand.Rand, n int, fill float64) *sparse.Vec[float64] {
	v := &sparse.Vec[float64]{N: n}
	for i := 0; i < n; i++ {
		if rng.Float64() < fill {
			v.Idx = append(v.Idx, i)
			v.Val = append(v.Val, float64(rng.Intn(19))-9)
		}
	}
	return v
}

func tuplesOf[T any](t *testing.T, s Store[T]) ([]int, []int, []T) {
	t.Helper()
	is, js, vs := s.Tuples()
	return is, js, vs
}

func TestChoosePolicy(t *testing.T) {
	cases := []struct {
		name          string
		nr, nc, nvals int
		hint          OpHint
		want          Kind
	}{
		{"empty-dims", 0, 0, 0, HintNone, CSRKind},
		{"dense-default", 100, 100, 2000, HintNone, BitmapKind},            // fill 0.2 ≥ 0.10
		{"mid-default", 100, 100, 500, HintNone, CSRKind},                  // fill 0.05 < 0.10
		{"mid-mul-hint", 100, 100, 500, HintMxV, BitmapKind},               // fill 0.05 ≥ 0.04
		{"mid-assign-hint", 100, 100, 2000, HintAssign, CSRKind},           // fill 0.2 < 0.25
		{"dense-assign-hint", 100, 100, 3000, HintAssign, BitmapKind},      // fill 0.3 ≥ 0.25
		{"huge-dense-capped", 1 << 16, 1 << 16, 1 << 30, HintMxV, CSRKind}, // cells > cap
		{"hypersparse", 1 << 20, 1 << 20, 1000, HintNone, HyperKind},       // avg row fill ≪ 0.125
		{"small-sparse-stays-csr", 512, 512, 10, HintNone, CSRKind},        // below hyperMinRows
	}
	for _, c := range cases {
		if got := Choose(c.nr, c.nc, c.nvals, c.hint); got != c.want {
			t.Errorf("%s: Choose(%d,%d,%d,%v) = %v, want %v", c.name, c.nr, c.nc, c.nvals, c.hint, got, c.want)
		}
	}
}

func TestBitmapFeasible(t *testing.T) {
	if !BitmapFeasible(1024, 1024) {
		t.Error("1024x1024 should be feasible")
	}
	if BitmapFeasible(1<<16, 1<<16) {
		t.Error("2^32 cells should exceed the cap")
	}
	if BitmapFeasible(0, 10) || BitmapFeasible(10, -1) {
		t.Error("non-positive dimensions are never feasible")
	}
}

// TestRoundTripAllPairs is the property test of the conversion graph: for
// random matrices across fill ratios, every conversion chain must preserve
// the extracted tuples exactly.
func TestRoundTripAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fill := range []float64{0, 0.001, 0.01, 0.1, 0.5, 0.95} {
		for trial := 0; trial < 4; trial++ {
			nr := 1 + rng.Intn(70)
			nc := 1 + rng.Intn(130)
			m := randCSR(rng, nr, nc, fill)
			wantI, wantJ, wantV := m.Tuples()

			// CSR → bitmap → hypersparse → CSR, the chain named in the issue.
			b := BitmapFromCSR(m)
			h := HyperFromBitmap(b)
			back := h.ToCSR()
			gotI, gotJ, gotV := back.Tuples()
			if !sameTuples(wantI, wantJ, wantV, gotI, gotJ, gotV) {
				t.Fatalf("fill %v %dx%d: csr→bitmap→hyper→csr changed tuples", fill, nr, nc)
			}

			// Every ordered pair via Convert on the Store interface.
			kinds := []Kind{CSRKind, BitmapKind, HyperKind}
			for _, k1 := range kinds {
				for _, k2 := range kinds {
					s := Convert(Convert[float64](Wrap(m), k1), k2)
					gi, gj, gv := tuplesOf(t, s)
					if !sameTuples(wantI, wantJ, wantV, gi, gj, gv) {
						t.Fatalf("fill %v %dx%d: convert %v→%v changed tuples", fill, nr, nc, k1, k2)
					}
					if s.NNZ() != m.NNZ() {
						t.Fatalf("convert %v→%v: nnz %d, want %d", k1, k2, s.NNZ(), m.NNZ())
					}
				}
			}
		}
	}
}

func sameTuples[T comparable](ai, aj []int, av []T, bi, bj []int, bv []T) bool {
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || av[k] != bv[k] {
			return false
		}
	}
	return true
}

func TestConvertAutoUsesChoose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dense := randCSR(rng, 64, 64, 0.5)
	if got := Convert[float64](Wrap(dense), Auto).Kind(); got != BitmapKind {
		t.Errorf("dense auto-convert: got %v, want bitmap", got)
	}
	sparse64 := randCSR(rng, 2048, 2048, 0.00001)
	if got := Convert[float64](Wrap(sparse64), Auto).Kind(); got != HyperKind {
		t.Errorf("hypersparse auto-convert: got %v, want hypersparse", got)
	}
}

func TestBitmapPointOps(t *testing.T) {
	b := NewBitmap[float64](3, 130) // >2 words per row
	if b.Words != 3 {
		t.Fatalf("Words = %d, want 3", b.Words)
	}
	b.Set(1, 0, 2.5)
	b.Set(1, 64, -1)
	b.Set(1, 129, 7)
	b.Set(1, 129, 8) // overwrite must not double-count
	if b.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", b.NNZ())
	}
	if v, ok := b.Get(1, 129); !ok || v != 8 {
		t.Fatalf("Get(1,129) = %v,%v", v, ok)
	}
	if _, ok := b.Get(0, 0); ok {
		t.Fatal("Get(0,0) should be absent")
	}
	if !b.Remove(1, 64) || b.Remove(1, 64) {
		t.Fatal("Remove semantics wrong")
	}
	if b.NNZ() != 2 {
		t.Fatalf("NNZ after remove = %d, want 2", b.NNZ())
	}
	if b.Has(1, 64) {
		t.Fatal("removed cell still present")
	}
}

func TestStoreGetAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randCSR(rng, 40, 60, 0.15)
	stores := []Store[float64]{Wrap(m), BitmapFromCSR(m), HyperFromCSR(m)}
	for i := 0; i < 40; i++ {
		for j := 0; j < 60; j++ {
			wantV, wantOK := m.Get(i, j)
			for _, s := range stores {
				gotV, gotOK := s.Get(i, j)
				if gotOK != wantOK || gotV != wantV {
					t.Fatalf("%v: Get(%d,%d) = %v,%v want %v,%v", s.Kind(), i, j, gotV, gotOK, wantV, wantOK)
				}
				if s.Has(i, j) != wantOK {
					t.Fatalf("%v: Has(%d,%d) disagrees", s.Kind(), i, j)
				}
			}
		}
	}
}

func plusF(a, b float64) float64  { return a + b }
func timesF(a, b float64) float64 { return a * b }

func vecEqual(a, b *sparse.Vec[float64]) bool {
	if a.N != b.N || len(a.Idx) != len(b.Idx) {
		return false
	}
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// masksFor returns the mask variants the dot kernels must agree under.
func masksFor(rng *rand.Rand, n int) []*sparse.VecMask {
	var idx []int
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			idx = append(idx, i)
		}
	}
	return []*sparse.VecMask{
		nil,
		{N: n, Idx: idx, Structure: idx, Comp: false},
		{N: n, Idx: idx, Structure: idx, Comp: true},
	}
}

// TestKernelEquivalence checks every format kernel against the CSR reference
// kernel on random operands, with and without masks.
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		nr := 1 + rng.Intn(90)
		nc := 1 + rng.Intn(90)
		fill := []float64{0.02, 0.2, 0.7}[trial%3]
		a := randCSR(rng, nr, nc, fill)
		u := randVec(rng, nc, 0.5)
		ut := randVec(rng, nr, 0.5)
		b := BitmapFromCSR(a)
		h := HyperFromCSR(a)

		for _, vm := range masksFor(rng, nr) {
			want := sparse.DotMxV(a, u, timesF, plusF, vm)
			if got := DotMxVBitmap(b, u, timesF, plusF, vm); !vecEqual(got, want) {
				t.Fatalf("trial %d: DotMxVBitmap disagrees with DotMxV", trial)
			}
			if got := DotMxVHyper(h, u, timesF, plusF, vm); !vecEqual(got, want) {
				t.Fatalf("trial %d: DotMxVHyper disagrees with DotMxV", trial)
			}
			r, ok := TryDotMxVPlusTimes(b, u, vm)
			if !ok {
				t.Fatal("TryDotMxVPlusTimes refused float64 operands")
			}
			if got := r.(*sparse.Vec[float64]); !vecEqual(got, want) {
				t.Fatalf("trial %d: plus-times dot kernel disagrees with DotMxV", trial)
			}
		}

		for _, vm := range masksFor(rng, nc) {
			want := sparse.PushMxV(a, ut, timesF, plusF, vm)
			if got := PushMxVHyper(h, ut, timesF, plusF, vm); !vecEqual(got, want) {
				t.Fatalf("trial %d: PushMxVHyper disagrees with PushMxV", trial)
			}
		}
	}
}

// matMaskFor builds a random matrix mask over nr×nc.
func matMaskFor(rng *rand.Rand, nr, nc int, comp bool) *sparse.MatMask {
	m := randCSR(rng, nr, nc, 0.3)
	return &sparse.MatMask{
		NCols:  nc,
		EffPtr: m.Ptr, EffIdx: m.ColIdx,
		StrPtr: m.Ptr, StrIdx: m.ColIdx,
		Comp: comp,
	}
}

func csrEqual(t *testing.T, got, want *sparse.CSR[float64], what string) {
	t.Helper()
	gi, gj, gv := got.Tuples()
	wi, wj, wv := want.Tuples()
	if !sameTuples(wi, wj, wv, gi, gj, gv) {
		t.Fatalf("%s disagrees with reference SpGEMM", what)
	}
}

func TestSpGEMMBitmapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		m := 1 + rng.Intn(50)
		k := 1 + rng.Intn(50)
		n := 1 + rng.Intn(50)
		a := randCSR(rng, m, k, 0.15)
		bcsr := randCSR(rng, k, n, 0.4)
		b := BitmapFromCSR(bcsr)

		want := sparse.SpGEMM(a, bcsr, timesF, plusF, nil)
		csrEqual(t, SpGEMMBitmap(a, b, timesF, plusF, nil), want, "SpGEMMBitmap (no mask)")

		r, ok := TryMxMPlusTimes(a, b)
		if !ok {
			t.Fatal("TryMxMPlusTimes refused float64 operands")
		}
		out := r.(*Bitmap[float64])
		csrEqual(t, out.ToCSR(), want, "plus-times bitmap SpGEMM")
		if out.NNZ() != want.NNZ() {
			t.Fatalf("plus-times bitmap SpGEMM nnz = %d, want %d", out.NNZ(), want.NNZ())
		}

		for _, comp := range []bool{false, true} {
			mm := matMaskFor(rng, m, n, comp)
			wantMasked := sparse.SpGEMM(a, bcsr, timesF, plusF, mm)
			csrEqual(t, SpGEMMBitmap(a, b, timesF, plusF, mm), wantMasked, "SpGEMMBitmap (masked)")
		}
	}
}

// TestTryDispatchRefusals pins down that the any-based dispatchers refuse
// mismatched or unsupported domains instead of mis-typing.
func TestTryDispatchRefusals(t *testing.T) {
	b64 := NewBitmap[float64](4, 4)
	u32 := &sparse.Vec[float32]{N: 4}
	if _, ok := TryDotMxVPlusTimes(b64, u32, nil); ok {
		t.Error("mixed float64/float32 dot dispatch should refuse")
	}
	bc := NewBitmap[complex128](4, 4)
	uc := &sparse.Vec[complex128]{N: 4}
	if _, ok := TryDotMxVPlusTimes(bc, uc, nil); ok {
		t.Error("complex128 dot dispatch should refuse")
	}
	ai := sparse.NewCSR[int](4, 4)
	if _, ok := TryMxMPlusTimes(ai, b64); ok {
		t.Error("mixed int/float64 mxm dispatch should refuse")
	}
}

package format

import (
	"sort"

	"graphblas/internal/faults"
	"graphblas/internal/sparse"
)

// Hyper is the hypersparse (doubly-compressed) matrix layout: only rows that
// hold at least one element are represented. Rows lists them in increasing
// order; row Rows[k] occupies ColIdx/Val[Ptr[k]:Ptr[k+1]], columns strictly
// increasing. For a matrix with e non-empty rows the structure costs
// O(e + nnz) regardless of nrows, where CSR pays O(nrows + nnz) — the
// difference that matters for nearly-empty iteration frontiers.
type Hyper[T any] struct {
	NRows, NCols int
	Rows         []int // non-empty row ids, strictly increasing
	Ptr          []int // len(Rows)+1 offsets into ColIdx/Val
	ColIdx       []int
	Val          []T
}

// Dims reports the logical dimensions.
func (h *Hyper[T]) Dims() (int, int) { return h.NRows, h.NCols }

// NNZ reports the number of stored elements.
func (h *Hyper[T]) NNZ() int { return h.Ptr[len(h.Rows)] }

// Kind reports HyperKind.
func (h *Hyper[T]) Kind() Kind { return HyperKind }

// RowAt returns the column indices and values of the k-th non-empty row.
func (h *Hyper[T]) RowAt(k int) ([]int, []T) {
	lo, hi := h.Ptr[k], h.Ptr[k+1]
	return h.ColIdx[lo:hi], h.Val[lo:hi]
}

// findRow locates logical row i in Rows.
func (h *Hyper[T]) findRow(i int) (int, bool) {
	k := sort.SearchInts(h.Rows, i)
	return k, k < len(h.Rows) && h.Rows[k] == i
}

// Get returns the element at (i, j) and whether it is stored: a binary
// search over the non-empty rows, then one over the row's columns.
func (h *Hyper[T]) Get(i, j int) (T, bool) {
	var zero T
	k, ok := h.findRow(i)
	if !ok {
		return zero, false
	}
	idx, val := h.RowAt(k)
	p := sort.SearchInts(idx, j)
	if p < len(idx) && idx[p] == j {
		return val[p], true
	}
	return zero, false
}

// Has reports whether (i, j) is stored.
func (h *Hyper[T]) Has(i, j int) bool {
	_, ok := h.Get(i, j)
	return ok
}

// HyperFromCSR converts a CSR matrix to the hypersparse layout. The payload
// arrays are shared with m (CSR stores them contiguously already); only the
// row structure is recompressed, so the conversion is O(nrows).
func HyperFromCSR[T any](m *sparse.CSR[T]) *Hyper[T] {
	faults.GovernAlloc("format.alloc.hyper", int64(m.NRows)*16)
	h := &Hyper[T]{NRows: m.NRows, NCols: m.NCols, ColIdx: m.ColIdx, Val: m.Val}
	for i := 0; i < m.NRows; i++ {
		if m.Ptr[i] < m.Ptr[i+1] {
			h.Rows = append(h.Rows, i)
		}
	}
	h.Ptr = make([]int, len(h.Rows)+1)
	for k, i := range h.Rows {
		h.Ptr[k] = m.Ptr[i]
	}
	h.Ptr[len(h.Rows)] = m.NNZ()
	return h
}

// ToCSR converts back to the CSR layout, re-expanding the row pointers. The
// payload arrays are shared with h.
func (h *Hyper[T]) ToCSR() *sparse.CSR[T] {
	c := &sparse.CSR[T]{NRows: h.NRows, NCols: h.NCols, Ptr: make([]int, h.NRows+1), ColIdx: h.ColIdx, Val: h.Val}
	k := 0
	for i := 0; i < h.NRows; i++ {
		if k < len(h.Rows) && h.Rows[k] == i {
			c.Ptr[i+1] = h.Ptr[k+1]
			k++
		} else {
			c.Ptr[i+1] = c.Ptr[i]
		}
	}
	return c
}

// Tuples returns copies of the stored triples in row-major order.
func (h *Hyper[T]) Tuples() (is, js []int, vals []T) {
	nnz := h.NNZ()
	is = make([]int, 0, nnz)
	js = append([]int(nil), h.ColIdx[:nnz]...)
	vals = append([]T(nil), h.Val[:nnz]...)
	for k, i := range h.Rows {
		for p := h.Ptr[k]; p < h.Ptr[k+1]; p++ {
			is = append(is, i)
		}
	}
	return is, js, vals
}

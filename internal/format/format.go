// Package format is the multi-format sparse storage engine beneath the
// opaque GraphBLAS matrix. The paper's second design goal — opaque objects
// exist so "the implementation can adapt data structures to the hardware and
// the problem" — is realized here: alongside the CSR layout of package
// sparse, this package provides a bitmap/dense layout for saturated operands
// and a hypersparse layout for nearly-empty ones, conversions between every
// pair, and an adaptive policy (Choose) that picks a layout from the fill
// ratio and the operation about to consume the matrix.
//
// The package deliberately contains no GraphBLAS semantics: like package
// sparse, it sees pre-resolved masks and plain Go functions. The core
// package owns the decision of when to convert (it caches converted forms on
// the opaque Matrix) and which kernel to dispatch.
package format

// Kind identifies a storage layout for matrix content.
type Kind uint8

const (
	// Auto lets Choose pick a layout per operation.
	Auto Kind = iota
	// CSRKind is the compressed-sparse-row layout of sparse.CSR.
	CSRKind
	// BitmapKind is the dense layout of Bitmap: a validity bitset plus a
	// full nrows×ncols value array, O(1) random access.
	BitmapKind
	// HyperKind is the hypersparse layout of Hyper: only non-empty rows are
	// represented, so row-structure cost scales with the number of
	// non-empty rows instead of nrows.
	HyperKind
)

// String returns the layout name.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case CSRKind:
		return "csr"
	case BitmapKind:
		return "bitmap"
	case HyperKind:
		return "hypersparse"
	}
	return "unknown"
}

// OpHint tells Choose which operation is about to consume (or just produced)
// the matrix, biasing the layout decision. Descriptor settings and the
// nonblocking queue record hints so deferred results can be materialized
// directly in the cheapest format.
type OpHint uint8

const (
	// HintNone applies the default thresholds.
	HintNone OpHint = iota
	// HintMxV marks a matrix-vector multiply operand; the bitmap dot kernel
	// wins earliest here, so the bitmap threshold is lowered.
	HintMxV
	// HintMxM marks a matrix-matrix multiply operand (the B side benefits
	// from O(1) row access); bitmap threshold is lowered.
	HintMxM
	// HintEWise marks an element-wise merge operand; merges stream CSR rows
	// well, so the default thresholds apply.
	HintEWise
	// HintAssign marks an assign/extract target, which rewrites row
	// structure; CSR is preferred (bitmap threshold is raised).
	HintAssign
	// HintIterate marks extraction/iteration consumers that want tuples in
	// row-major order; CSR is preferred.
	HintIterate
)

// String returns the hint name.
func (h OpHint) String() string {
	switch h {
	case HintNone:
		return "none"
	case HintMxV:
		return "mxv"
	case HintMxM:
		return "mxm"
	case HintEWise:
		return "ewise"
	case HintAssign:
		return "assign"
	case HintIterate:
		return "iterate"
	}
	return "unknown"
}

// Threshold constants of the adaptive policy. Fill ratio is nvals/(nrows·
// ncols); row fill is nvals/nrows (average stored entries per row).
const (
	// bitmapFill is the default fill ratio at which the bitmap layout is
	// chosen: above it, the bitset+dense layout touches less memory per
	// stored entry than CSR's 16 bytes (index+value) and gains O(1) access.
	bitmapFill = 0.10
	// bitmapFillMul is the lowered threshold under HintMxV/HintMxM.
	bitmapFillMul = 0.04
	// bitmapFillAssign is the raised threshold under HintAssign/HintIterate.
	bitmapFillAssign = 0.25
	// maxBitmapCells caps the dense allocation a conversion may create
	// (cells = nrows·ncols); above it bitmap is never chosen, matching the
	// "adapt to the hardware" goal — a dense layout that cannot fit in
	// memory is no adaptation. 1<<27 cells is 1 GiB of float64 values.
	maxBitmapCells = 1 << 27
	// hyperRowFill is the average entries-per-row below which the
	// hypersparse layout is chosen: when most rows are empty, CSR's
	// nrows+1 row-pointer array dominates both space and scan cost.
	hyperRowFill = 0.125
	// hyperMinRows keeps tiny matrices in CSR, where the constant factors
	// of an extra indirection are not worth saving a few pointers.
	hyperMinRows = 1024
)

// BitmapFeasible reports whether an nrows×ncols dense allocation stays
// within the engine's bitmap cell cap; Choose never selects the bitmap
// layout beyond it, and forcing the layout past it is rejected.
func BitmapFeasible(nrows, ncols int) bool {
	return nrows > 0 && ncols > 0 && uint64(nrows)*uint64(ncols) <= maxBitmapCells
}

// Choose picks a storage layout for an nrows×ncols matrix holding nvals
// stored elements, to be consumed by the operation described by hint. It is
// the adaptive-selection policy of the storage engine; callers pass the
// result to the conversion routines or use it to pick a kernel.
func Choose(nrows, ncols, nvals int, hint OpHint) Kind {
	if nrows <= 0 || ncols <= 0 {
		return CSRKind
	}
	cells := uint64(nrows) * uint64(ncols)
	fill := float64(nvals) / float64(cells)
	threshold := bitmapFill
	switch hint {
	case HintMxV, HintMxM:
		threshold = bitmapFillMul
	case HintAssign, HintIterate:
		threshold = bitmapFillAssign
	}
	if cells <= maxBitmapCells && fill >= threshold {
		return BitmapKind
	}
	if nrows >= hyperMinRows && float64(nvals) < hyperRowFill*float64(nrows) {
		return HyperKind
	}
	return CSRKind
}

package format

import (
	"testing"
)

// FuzzBitmapBuilder drives the bitmap point-update surface (Set/Remove) from
// raw bytes, mirrors the same sequence into a plain map, and asserts the two
// agree cell-for-cell — then round-trips through CSR and the hypersparse
// layout to check the conversions preserve exactly the built content. The
// element-count bookkeeping (nvals under overwrites and double-removes) and
// the word/bit indexing of cells near the 64-column boundary are the bug
// surfaces this target exercises.
func FuzzBitmapBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 63, 2, 64, 3, 65, 4})
	f.Add([]byte{255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nr, nc = 5, 70 // 70 columns spans a word boundary
		b := NewBitmap[int](nr, nc)
		mirror := map[[2]int]int{}
		for k := 0; k+2 < len(data); k += 3 {
			i := int(data[k]) % nr
			j := int(data[k+1]) % nc
			op := data[k+2]
			if op%4 == 0 {
				b.Remove(i, j)
				delete(mirror, [2]int{i, j})
			} else {
				b.Set(i, j, int(op))
				mirror[[2]int{i, j}] = int(op)
			}
		}
		if b.NNZ() != len(mirror) {
			t.Fatalf("NNZ = %d, mirror has %d", b.NNZ(), len(mirror))
		}
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				want, wantOK := mirror[[2]int{i, j}]
				got, gotOK := b.Get(i, j)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("Get(%d,%d) = %v,%v want %v,%v", i, j, got, gotOK, want, wantOK)
				}
			}
		}
		// Round-trip bitmap → CSR → hypersparse → CSR and compare tuples.
		c := b.ToCSR()
		if c.NNZ() != len(mirror) {
			t.Fatalf("ToCSR nnz = %d, want %d", c.NNZ(), len(mirror))
		}
		back := HyperFromCSR(c).ToCSR()
		bi, bj, bv := b.Tuples()
		ci, cj, cv := back.Tuples()
		if len(bi) != len(ci) {
			t.Fatalf("round trip changed tuple count: %d vs %d", len(bi), len(ci))
		}
		for k := range bi {
			if bi[k] != ci[k] || bj[k] != cj[k] || bv[k] != cv[k] {
				t.Fatalf("round trip changed tuple %d: (%d,%d,%d) vs (%d,%d,%d)",
					k, bi[k], bj[k], bv[k], ci[k], cj[k], cv[k])
			}
		}
	})
}

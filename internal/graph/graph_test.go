package graph

import (
	"bytes"
	"math"
	"os"

	"testing"

	"graphblas/internal/core"
	"graphblas/internal/generate"
	"graphblas/internal/refalgo"
)

func TestMain(m *testing.M) {
	core.ResetForTesting()
	if err := core.Init(core.NonBlocking); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

func testGraph() *Graph {
	return FromEdges(generate.ErdosRenyiGnm(120, 600, 33))
}

func TestGraphViewsAndCaching(t *testing.T) {
	g := testGraph()
	if g.N() != 120 || g.NumEdges() != 600 {
		t.Fatalf("shape %d %d", g.N(), g.NumEdges())
	}
	b1, err := g.Bool()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := g.Bool()
	if b1 != b2 {
		t.Fatal("bool view not cached")
	}
	f1, _ := g.Float()
	f2, _ := g.Float()
	if f1 != f2 {
		t.Fatal("float view not cached")
	}
	if nv, _ := b1.NVals(); nv != 600 {
		t.Fatalf("bool nvals %d", nv)
	}
	sym, err := g.Symmetric()
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := sym.NVals()
	if nv < 600 || nv > 1200 {
		t.Fatalf("symmetric nvals %d", nv)
	}
	deg, err := g.OutDegrees()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	if total != 600 {
		t.Fatalf("degree sum %d", total)
	}
}

func TestGraphAlgorithmsDelegation(t *testing.T) {
	g := testGraph()
	adj := refalgo.NewAdjacency(g.Edges())

	levels, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(adj, 0)
	for v := range want {
		if levels[v] != want[v] {
			t.Fatalf("bfs[%d] %d want %d", v, levels[v], want[v])
		}
	}
	if _, err := g.BFS(-1); err == nil {
		t.Fatal("bad source accepted")
	}

	dist, reached, err := g.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	dj := refalgo.Dijkstra(adj, 0)
	for v := range dj {
		if math.IsInf(dj[v], 1) != !reached[v] {
			t.Fatalf("reach[%d]", v)
		}
		if reached[v] && math.Abs(dist[v]-dj[v]) > 1e-9 {
			t.Fatalf("dist[%d] %v want %v", v, dist[v], dj[v])
		}
	}

	rank, iters, err := g.PageRank(0.85, 1e-9, 200)
	if err != nil || iters == 0 {
		t.Fatalf("pagerank %v %d", err, iters)
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank sum %v", sum)
	}

	bc, err := g.BC([]int{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	wantBC := refalgo.BrandesBC(adj, []int{0, 5, 10})
	for v := range wantBC {
		if math.Abs(bc[v]-wantBC[v]) > 1e-3*math.Max(1, wantBC[v]) {
			t.Fatalf("bc[%d] %v want %v", v, bc[v], wantBC[v])
		}
	}

	tc, err := g.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	symEdges := &generate.Graph{N: g.N(), Edges: append([]generate.Edge(nil), g.Edges().Edges...)}
	symAdj := refalgo.NewAdjacency(symEdges.Symmetrize().Dedup(true))
	if wantTC := refalgo.TriangleCount(symAdj); tc != wantTC {
		t.Fatalf("triangles %d want %d", tc, wantTC)
	}

	cc, err := g.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	wantCC := refalgo.ConnectedComponents(g.Edges())
	for v := range wantCC {
		if cc[v] != wantCC[v] {
			t.Fatalf("cc[%d] %d want %d", v, cc[v], wantCC[v])
		}
	}

	scc, err := g.SCC()
	if err != nil {
		t.Fatal(err)
	}
	wantSCC := refalgo.TarjanSCC(adj)
	for v := range wantSCC {
		if scc[v] != wantSCC[v] {
			t.Fatalf("scc[%d] %d want %d", v, scc[v], wantSCC[v])
		}
	}

	cores, err := g.CoreNumbers()
	if err != nil {
		t.Fatal(err)
	}
	wantCores := refalgo.CoreNumbers(symAdj)
	for v := range wantCores {
		if cores[v] != wantCores[v] {
			t.Fatalf("core[%d] %d want %d", v, cores[v], wantCores[v])
		}
	}

	truss, err := g.KTruss(3)
	if err != nil {
		t.Fatal(err)
	}
	wantTruss := refalgo.TrussEdges(symAdj, 3)
	if len(truss) != len(wantTruss) {
		t.Fatalf("truss %d edges want %d", len(truss), len(wantTruss))
	}

	coef, err := g.ClusteringCoefficients()
	if err != nil {
		t.Fatal(err)
	}
	wantCoef := refalgo.ClusteringCoefficients(symAdj)
	for v := range wantCoef {
		if math.Abs(coef[v]-wantCoef[v]) > 1e-9 {
			t.Fatalf("coef[%d] %v want %v", v, coef[v], wantCoef[v])
		}
	}

	mis, err := g.MIS(7)
	if err != nil {
		t.Fatal(err)
	}
	inSet := map[int]bool{}
	for _, v := range mis {
		inSet[v] = true
	}
	for _, e := range symEdges.Edges {
		if inSet[e.Src] && inSet[e.Dst] && e.Src != e.Dst {
			t.Fatalf("MIS edge (%d,%d)", e.Src, e.Dst)
		}
	}
}

func TestGraphReach(t *testing.T) {
	g := FromEdges(&generate.Graph{N: 4, Edges: []generate.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
	}})
	reach, err := g.Reach([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reach[2]) != 1 || reach[2][0] != 0 {
		t.Fatalf("reach[2] = %v", reach[2])
	}
	if len(reach[3]) != 1 || reach[3][0] != 1 {
		t.Fatalf("reach[3] = %v", reach[3])
	}
	if reach[1] == nil || reach[0] == nil {
		t.Fatalf("reach incomplete: %v", reach)
	}
}

func TestFromMatrixMarket(t *testing.T) {
	src := generate.ErdosRenyiGnm(20, 60, 9)
	var buf bytes.Buffer
	if err := generate.WriteMatrixMarket(&buf, src); err != nil {
		t.Fatal(err)
	}
	g, err := FromMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.NumEdges() != 60 {
		t.Fatalf("loaded %d %d", g.N(), g.NumEdges())
	}
	// Same BFS result as the original edge list.
	want, _ := FromEdges(src).BFS(0)
	got, _ := g.BFS(0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("bfs[%d] differs after mmio round trip", v)
		}
	}
	if _, err := FromMatrixMarket(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGraphGreedyColor(t *testing.T) {
	g := testGraph()
	colors, used, err := g.GreedyColor(5)
	if err != nil {
		t.Fatal(err)
	}
	if used < 1 {
		t.Fatalf("colors %d", used)
	}
	sym := &generate.Graph{N: g.N(), Edges: append([]generate.Edge(nil), g.Edges().Edges...)}
	for _, e := range sym.Symmetrize().Dedup(true).Edges {
		if e.Src != e.Dst && colors[e.Src] == colors[e.Dst] {
			t.Fatalf("edge (%d,%d) same color", e.Src, e.Dst)
		}
	}
}

func TestGraphBCAll(t *testing.T) {
	g := FromEdges(generate.ErdosRenyiGnm(40, 160, 3))
	bc, err := g.BCAll(9)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	want := refalgo.BrandesBC(refalgo.NewAdjacency(g.Edges()), all)
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-3*math.Max(1, want[v]) {
			t.Fatalf("bc[%d] %v want %v", v, bc[v], want[v])
		}
	}
}

// Package graph is the convenience layer over the GraphBLAS API — the role
// the LAGraph library plays over the C API: a Graph handle that bundles the
// adjacency matrix in the domains the algorithm suite needs, caches derived
// objects (boolean/weighted/integer views, the symmetrized form, degrees),
// and exposes each algorithm as one call.
package graph

import (
	"fmt"
	"io"

	"graphblas/internal/algorithms"
	"graphblas/internal/builtins"
	"graphblas/internal/core"
	"graphblas/internal/generate"
)

// Graph wraps an edge list with lazily-built GraphBLAS views. It is not
// safe for concurrent use (the views build on first demand).
type Graph struct {
	src *generate.Graph

	boolA  *core.Matrix[bool]
	floatA *core.Matrix[float64]
	intA   *core.Matrix[int32]
	symA   *core.Matrix[bool] // symmetrized, deduplicated, loop-free
}

// FromEdges wraps an edge-list graph. The edge list is used as-is for the
// directed views and symmetrized on demand for the undirected algorithms.
func FromEdges(g *generate.Graph) *Graph { return &Graph{src: g} }

// FromMatrixMarket reads a coordinate Matrix Market stream.
func FromMatrixMarket(r io.Reader) (*Graph, error) {
	g, _, err := generate.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return FromEdges(g.Dedup(true)), nil
}

// N reports the vertex count.
func (g *Graph) N() int { return g.src.N }

// NumEdges reports the directed edge count.
func (g *Graph) NumEdges() int { return len(g.src.Edges) }

// Edges exposes the underlying edge list (shared; do not mutate).
func (g *Graph) Edges() *generate.Graph { return g.src }

// Bool returns the boolean structure view A(i,j) = true per edge.
func (g *Graph) Bool() (*core.Matrix[bool], error) {
	if g.boolA != nil {
		return g.boolA, nil
	}
	rows, cols, _ := g.src.Tuples()
	m, err := core.NewMatrix[bool](g.src.N, g.src.N)
	if err != nil {
		return nil, err
	}
	vals := make([]bool, len(rows))
	for i := range vals {
		vals[i] = true
	}
	if err := m.Build(rows, cols, vals, builtins.LOr()); err != nil {
		return nil, err
	}
	g.boolA = m
	return m, nil
}

// Float returns the weighted view (duplicate edges keep the first weight).
func (g *Graph) Float() (*core.Matrix[float64], error) {
	if g.floatA != nil {
		return g.floatA, nil
	}
	rows, cols, w := g.src.Tuples()
	m, err := core.NewMatrix[float64](g.src.N, g.src.N)
	if err != nil {
		return nil, err
	}
	if err := m.Build(rows, cols, w, builtins.First[float64]()); err != nil {
		return nil, err
	}
	g.floatA = m
	return m, nil
}

// Int32 returns the Figure 3 style integer view with stored 1s.
func (g *Graph) Int32() (*core.Matrix[int32], error) {
	if g.intA != nil {
		return g.intA, nil
	}
	rows, cols, _ := g.src.Tuples()
	m, err := core.NewMatrix[int32](g.src.N, g.src.N)
	if err != nil {
		return nil, err
	}
	vals := make([]int32, len(rows))
	for i := range vals {
		vals[i] = 1
	}
	if err := m.Build(rows, cols, vals, builtins.First[int32]()); err != nil {
		return nil, err
	}
	g.intA = m
	return m, nil
}

// Symmetric returns the symmetrized, deduplicated, loop-free boolean view
// required by the undirected algorithms (triangles, k-core, k-truss, MIS,
// clustering, Jaccard, components).
func (g *Graph) Symmetric() (*core.Matrix[bool], error) {
	if g.symA != nil {
		return g.symA, nil
	}
	sym := &generate.Graph{N: g.src.N, Edges: append([]generate.Edge(nil), g.src.Edges...)}
	sym = sym.Symmetrize().Dedup(true)
	rows, cols, _ := sym.Tuples()
	m, err := core.NewMatrix[bool](sym.N, sym.N)
	if err != nil {
		return nil, err
	}
	vals := make([]bool, len(rows))
	for i := range vals {
		vals[i] = true
	}
	if err := m.Build(rows, cols, vals, builtins.LOr()); err != nil {
		return nil, err
	}
	g.symA = m
	return m, nil
}

// OutDegrees returns the out-degree of every vertex (dense: zero entries
// included).
func (g *Graph) OutDegrees() ([]int, error) {
	a, err := g.Bool()
	if err != nil {
		return nil, err
	}
	n := g.src.N
	ones, err := core.NewMatrix[int64](n, n)
	if err != nil {
		return nil, err
	}
	if err := core.ApplyM(ones, core.NoMask, core.NoAccum[int64](), builtins.CastBoolTo[int64](), a, nil); err != nil {
		return nil, err
	}
	degV, err := core.NewVector[int64](n)
	if err != nil {
		return nil, err
	}
	if err := core.ReduceMatrixToVector(degV, core.NoMaskV, core.NoAccum[int64](), builtins.PlusMonoid[int64](), ones, nil); err != nil {
		return nil, err
	}
	out := make([]int, n)
	idx, val, err := degV.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = int(val[k])
	}
	return out, nil
}

// checkSource validates a source vertex id.
func (g *Graph) checkSource(src int) error {
	if src < 0 || src >= g.src.N {
		return fmt.Errorf("graph: source %d out of range [0,%d)", src, g.src.N)
	}
	return nil
}

// BFS returns hop distances from src (-1 for unreached).
func (g *Graph) BFS(src int) ([]int, error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	a, err := g.Bool()
	if err != nil {
		return nil, err
	}
	lv, err := algorithms.BFSLevelsDO(a, src)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.src.N)
	for i := range out {
		out[i] = -1
	}
	idx, val, err := lv.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = int(val[k])
	}
	return out, nil
}

// SSSP returns shortest-path distances from src (+Inf encoded as missing:
// the bool slice reports reachability).
func (g *Graph) SSSP(src int) (dist []float64, reached []bool, err error) {
	if err := g.checkSource(src); err != nil {
		return nil, nil, err
	}
	a, err := g.Float()
	if err != nil {
		return nil, nil, err
	}
	d, err := algorithms.SSSP(a, src)
	if err != nil {
		return nil, nil, err
	}
	dist = make([]float64, g.src.N)
	reached = make([]bool, g.src.N)
	idx, val, err := d.ExtractTuples()
	if err != nil {
		return nil, nil, err
	}
	for k := range idx {
		dist[idx[k]] = val[k]
		reached[idx[k]] = true
	}
	return dist, reached, nil
}

// PageRank returns the rank vector and sweep count.
func (g *Graph) PageRank(damping, tol float64, maxIter int) ([]float64, int, error) {
	a, err := g.Float()
	if err != nil {
		return nil, 0, err
	}
	r, iters, err := algorithms.PageRank(a, damping, tol, maxIter)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, g.src.N)
	idx, val, err := r.ExtractTuples()
	if err != nil {
		return nil, 0, err
	}
	for k := range idx {
		out[idx[k]] = val[k]
	}
	return out, iters, nil
}

// BC returns batched betweenness-centrality contributions from the given
// sources (the paper's BC_update).
func (g *Graph) BC(sources []int) ([]float64, error) {
	for _, s := range sources {
		if err := g.checkSource(s); err != nil {
			return nil, err
		}
	}
	a, err := g.Int32()
	if err != nil {
		return nil, err
	}
	delta, err := algorithms.BCUpdate(a, sources)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.src.N)
	idx, val, err := delta.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = float64(val[k])
	}
	return out, nil
}

// TriangleCount counts triangles of the symmetrized graph.
func (g *Graph) TriangleCount() (int64, error) {
	a, err := g.Symmetric()
	if err != nil {
		return 0, err
	}
	return algorithms.TriangleCount(a)
}

// ConnectedComponents labels weakly connected components (smallest member
// id as label) on the symmetrized graph.
func (g *Graph) ConnectedComponents() ([]int, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, err
	}
	labels, err := algorithms.ConnectedComponents(a)
	return vecToInts(g.src.N, labels, err)
}

// SCC labels strongly connected components of the directed graph.
func (g *Graph) SCC() ([]int, error) {
	a, err := g.Bool()
	if err != nil {
		return nil, err
	}
	labels, err := algorithms.SCC(a)
	return vecToInts(g.src.N, labels, err)
}

// CoreNumbers returns the coreness of every vertex (symmetrized view).
func (g *Graph) CoreNumbers() ([]int, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, err
	}
	cores, err := algorithms.CoreNumbers(a)
	return vecToInts(g.src.N, cores, err)
}

// KTruss returns the edges (u < v) of the k-truss of the symmetrized graph.
func (g *Graph) KTruss(k int) ([][2]int, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, err
	}
	truss, err := algorithms.KTruss(a, k)
	if err != nil {
		return nil, err
	}
	is, js, _, err := truss.ExtractTuples()
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for p := range is {
		if is[p] < js[p] {
			out = append(out, [2]int{is[p], js[p]})
		}
	}
	return out, nil
}

// ClusteringCoefficients returns the local clustering coefficient of every
// vertex of the symmetrized graph.
func (g *Graph) ClusteringCoefficients() ([]float64, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, err
	}
	cc, err := algorithms.ClusteringCoefficients(a)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.src.N)
	idx, val, err := cc.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = val[k]
	}
	return out, nil
}

// MIS returns a maximal independent set of the symmetrized graph.
func (g *Graph) MIS(seed uint64) ([]int, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, err
	}
	set, err := algorithms.MIS(a, seed)
	if err != nil {
		return nil, err
	}
	idx, val, err := set.ExtractTuples()
	if err != nil {
		return nil, err
	}
	var out []int
	for k := range idx {
		if val[k] {
			out = append(out, idx[k])
		}
	}
	return out, nil
}

// Reach returns, for every vertex, the set of the given sources that can
// reach it (power-set semiring).
func (g *Graph) Reach(sources []int) ([][]int, error) {
	for _, s := range sources {
		if err := g.checkSource(s); err != nil {
			return nil, err
		}
	}
	a, err := g.Bool()
	if err != nil {
		return nil, err
	}
	labels, err := algorithms.Reach(a, sources)
	if err != nil {
		return nil, err
	}
	out := make([][]int, g.src.N)
	idx, val, err := labels.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = val[k].Members()
	}
	return out, nil
}

// vecToInts flattens an (int64 vector, error) result into a dense int slice.
func vecToInts(n int, v *core.Vector[int64], err error) ([]int, error) {
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	idx, val, err := v.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = int(val[k])
	}
	return out, nil
}

// GreedyColor returns a proper vertex coloring of the symmetrized graph and
// the number of colors used.
func (g *Graph) GreedyColor(seed uint64) ([]int, int, error) {
	a, err := g.Symmetric()
	if err != nil {
		return nil, 0, err
	}
	colors, used, err := algorithms.GreedyColor(a, seed)
	if err != nil {
		return nil, 0, err
	}
	out, err := vecToInts(g.src.N, colors, nil)
	if err != nil {
		return nil, 0, err
	}
	return out, used, nil
}

// BCAll computes exact betweenness centrality over all sources in batches.
func (g *Graph) BCAll(batchSize int) ([]float64, error) {
	a, err := g.Int32()
	if err != nil {
		return nil, err
	}
	bc, err := algorithms.BCAll(a, batchSize)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.src.N)
	idx, val, err := bc.ExtractTuples()
	if err != nil {
		return nil, err
	}
	for k := range idx {
		out[idx[k]] = float64(val[k])
	}
	return out, nil
}

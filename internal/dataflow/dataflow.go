// Package dataflow is the dependency-DAG scheduler of the nonblocking
// execution engine. Section IV of the paper lets an implementation "defer
// execution" of queued methods and reorder work as long as the final result
// agrees with program order; this package supplies the machinery that makes
// deferral pay: at flush time the deferred sequence is converted into a
// dependency DAG over the opaque objects each operation reads and writes,
// and operations with no path between them execute concurrently on a
// bounded worker pool.
//
// Hazard model. Every operation writes exactly one output object and reads a
// set of input objects (operands and masks; an accumulating or merging
// operation also reads its own output). Three hazards order two operations
// that touch the same object, exactly the classic pipeline hazards:
//
//	RAW  (flow)  — an op reading X depends on the latest earlier writer of X.
//	WAW (output) — an op writing X depends on the previous writer of X.
//	WAR  (anti)  — an op writing X depends on every earlier reader of X
//	               since X's previous write (stores are replaced wholesale,
//	               so an in-flight reader must finish before the overwrite).
//
// All edges point from an earlier program position to a later one, so the
// graph is acyclic by construction and the first queued op is always ready.
//
// The scheduler dispatches ready operations to workers in ascending
// program-position order (a min-heap, not a FIFO). That policy is what makes
// the engine's deterministic fault-injection gate deadlock-free: a worker
// may block waiting for every earlier op to pass its injection site, and
// min-position dispatch guarantees the earliest unfinished op is always
// either running or the next one popped, never stranded behind blocked
// workers (see internal/faults.Sequencer).
//
// The package is semantics-free: it sees operations only as (out, reads,
// overwrites) triples plus an opaque executor callback. Program-order error
// selection, cancellation through invalid-object propagation, and rollback
// all live in internal/core.
package dataflow

import (
	"container/heap"
	"sync"

	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// OpMeta is one deferred operation's data-access footprint, in program
// order: the identity of the object it writes, the identities of the
// objects it reads (operands and mask), and whether the write fully
// determines the output without consulting its prior content. Identities
// come from the engine's per-object id counter.
type OpMeta struct {
	Out        uint64
	Reads      []uint64
	Overwrites bool
}

// Graph is the immutable dependency DAG built over one flushed queue. Node i
// is the i-th schedulable operation in program order.
type Graph struct {
	succ  [][]int32 // successors (dependents) of each node
	indeg []int32   // incoming-edge count of each node
	edges int
	// Per-hazard edge counts, after deduplication assigns each edge the
	// strongest classification in RAW > WAW > WAR order.
	raw, waw, war int
	// fused is the number of producer-consumer pairs the fusion pass
	// collapsed before this graph was built (NoteFused).
	fused int
}

// Build constructs the hazard DAG for ops. Edges are deduplicated: two
// operations sharing several objects (or several hazards on one object) are
// connected once. O(total reads + writes) expected time.
func Build(ops []OpMeta) *Graph {
	n := len(ops)
	g := &Graph{succ: make([][]int32, n), indeg: make([]int32, n)}
	// lastWriter[x] is the index of the most recent op writing object x;
	// readers[x] collects ops that read x since that write.
	lastWriter := make(map[uint64]int, n)
	readers := make(map[uint64][]int32)
	deps := make(map[int32]struct{}, 8) // dep set of the current node, reused
	for k := 0; k < n; k++ {
		op := &ops[k]
		for d := range deps {
			delete(deps, d)
		}
		addDep := func(j int32, kind *int) {
			if _, dup := deps[j]; dup {
				return
			}
			deps[j] = struct{}{}
			g.succ[j] = append(g.succ[j], int32(k))
			g.indeg[k]++
			g.edges++
			*kind++
		}
		reads := op.Reads
		if !op.Overwrites {
			// A merging/accumulating op consults its output's prior content:
			// model it as a read so the RAW edge to the previous writer (and
			// the WAR edges from it to later writers) materialize.
			reads = append(append(make([]uint64, 0, len(op.Reads)+1), op.Reads...), op.Out)
		}
		for _, r := range reads {
			if w, ok := lastWriter[r]; ok {
				addDep(int32(w), &g.raw)
			}
			readers[r] = append(readers[r], int32(k))
		}
		if w, ok := lastWriter[op.Out]; ok {
			addDep(int32(w), &g.waw)
		}
		for _, rd := range readers[op.Out] {
			if int(rd) != k {
				addDep(rd, &g.war)
			}
		}
		lastWriter[op.Out] = k
		// The write retires all recorded readers of Out: later writers need
		// only the WAW edge to this op, which transitively orders them after
		// those readers.
		delete(readers, op.Out)
	}
	return g
}

// NoteFused records that n producer-consumer pairs were collapsed by the
// flush-time fusion pass before this graph was built, so the run statistics
// expose how much of the schedule executed fused.
func (g *Graph) NoteFused(n int) { g.fused += n }

// readsObj reports whether m consults object x before writing: as a listed
// operand/mask, or as its own output's prior content when it does not fully
// overwrite.
func readsObj(m *OpMeta, x uint64) bool {
	for _, r := range m.Reads {
		if r == x {
			return true
		}
	}
	return !m.Overwrites && m.Out == x
}

// FuseLegal reports whether the producer ops[i] and the consumer ops[j] may
// be collapsed into one fused node executing at j's program position, with
// the producer's output X never materialized. The predicate is purely about
// the access pattern; operation kinds and payload compatibility are the
// caller's business. Legality requires:
//
//   - the producer fully determines X from its inputs (Overwrites) — a
//     merging producer would need X's prior content anyway;
//   - the consumer reads X, and no operation strictly between them reads or
//     writes X: the value flows directly from i to j;
//   - no operation strictly between them writes any producer input — the
//     fused kernel evaluates those inputs at j's position, so they must
//     still hold the values the producer would have seen at i (operations
//     before i are free to read X: they want its prior content, which the
//     unexecuted producer leaves in place);
//   - the consumer, if it writes X itself, fully overwrites it (a merge
//     into its own source would consult the stale unmaterialized X);
//   - X is dead after j: no later operation reads it before a later full
//     overwrite, and that overwrite exists in this flush (the consumer
//     overwriting X counts). This is exactly the condition under which the
//     skipped materialization is a dead store — without it X's stale
//     committed content would be visible to the program after the flush.
func FuseLegal(ops []OpMeta, i, j int) bool {
	if i < 0 || j <= i || j >= len(ops) {
		return false
	}
	p, c := &ops[i], &ops[j]
	if !p.Overwrites {
		return false
	}
	x := p.Out
	found := false
	for _, r := range c.Reads {
		if r == x {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if c.Out == x && !c.Overwrites {
		return false
	}
	for k := i + 1; k < j; k++ {
		m := &ops[k]
		if m.Out == x || readsObj(m, x) {
			return false
		}
		for _, r := range p.Reads {
			if m.Out == r {
				return false
			}
		}
	}
	if c.Out == x {
		return true // the consumer itself retires X (full overwrite, above)
	}
	for k := j + 1; k < len(ops); k++ {
		m := &ops[k]
		if readsObj(m, x) {
			return false
		}
		if m.Out == x {
			return m.Overwrites
		}
	}
	// X escapes the flush without being refreshed: its stale committed
	// content would be observable.
	return false
}

// Nodes reports the number of operations in the graph.
func (g *Graph) Nodes() int { return len(g.succ) }

// Edges reports the number of (deduplicated) hazard edges.
func (g *Graph) Edges() int { return g.edges }

// EdgeKinds reports the per-hazard edge counts (RAW, WAW, WAR). A deduped
// edge carrying several hazards is counted once, under the strongest kind.
func (g *Graph) EdgeKinds() (raw, waw, war int) { return g.raw, g.waw, g.war }

// Succ exposes node i's dependents (shared slice; callers must not mutate).
func (g *Graph) Succ(i int) []int32 { return g.succ[i] }

// Indeg reports node i's dependency count.
func (g *Graph) Indeg(i int) int { return int(g.indeg[i]) }

// RunStats describes one scheduler run.
type RunStats struct {
	// MaxWidth is the high-water number of operations that were executing
	// simultaneously — the realized parallelism of the flush.
	MaxWidth int
	// Fused is the number of producer-consumer pairs that executed as one
	// fused kernel in this run (recorded via NoteFused at planning time).
	Fused int
}

// minHeap is the ready queue: a min-heap of node indices, so the earliest
// ready operation in program order is always dispatched first.
type minHeap []int32

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(int32)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run executes every node on a pool of at most workers goroutines,
// dispatching a node only after all of its dependencies completed, earliest
// ready node first. exec is called exactly once per node and must not be nil.
//
// A panic escaping exec is captured per node (via parallel.Capture) rather
// than allowed to unwind: the node's dependents are still released — so the
// pool can never deadlock on a faulty node — and the first captured panic is
// re-raised, with the worker's stack preserved, after every node has
// completed. Callers that want per-node error semantics (internal/core does)
// should convert panics to errors inside exec instead.
func (g *Graph) Run(workers int, exec func(node int)) RunStats {
	return g.RunCancelable(workers, exec, nil, nil)
}

// RunCancelable is Run with cooperative cancellation. When stop is non-nil
// and returns true at dispatch time, the popped node is not executed:
// skip(node) is called in its place (outside the scheduler lock, exactly once
// per skipped node) and the node's dependents are still released, so the pool
// drains without deadlock and every node is observed exactly once — by exec
// or by skip. Nodes already executing when stop first reports true run to
// completion; cancellation stops *dispatch*, it does not interrupt kernels.
// A nil stop (or one that never fires) makes this identical to Run. skip must
// not panic; exec panics are captured per node as in Run.
func (g *Graph) RunCancelable(workers int, exec func(node int), stop func() bool, skip func(node int)) RunStats {
	n := len(g.succ)
	if n == 0 {
		return RunStats{Fused: g.fused}
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     minHeap
		indeg     = append([]int32(nil), g.indeg...)
		remaining = n
		running   int
		maxWidth  int
		pan       *parallel.Panic
	)
	heap.Init(&ready)
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			heap.Push(&ready, i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			for {
				for len(ready) == 0 && remaining > 0 {
					cond.Wait()
				}
				if remaining == 0 {
					mu.Unlock()
					return
				}
				node := int(heap.Pop(&ready).(int32))
				canceled := stop != nil && stop()
				if !canceled {
					running++
					if running > maxWidth {
						maxWidth = running
					}
				}
				width := running
				mu.Unlock()
				var p *parallel.Panic
				if canceled {
					if skip != nil {
						skip(node)
					}
				} else {
					obs.DagDispatches.Inc()
					obs.DagWidth.SetMax(int64(width))
					p = parallel.Capture(func() { exec(node) })
				}

				mu.Lock()
				if !canceled {
					running--
				}
				if p != nil && pan == nil {
					pan = p
				}
				if p != nil {
					obs.DagPoisoned.Inc()
				}
				for _, s := range g.succ[node] {
					indeg[s]--
					if indeg[s] == 0 {
						heap.Push(&ready, s)
					}
				}
				remaining--
				// Wake everyone: newly ready nodes may outnumber one waiter,
				// and the remaining==0 exit must reach all parked workers.
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	return RunStats{MaxWidth: maxWidth, Fused: g.fused}
}

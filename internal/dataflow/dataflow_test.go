package dataflow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphblas/internal/parallel"
)

// edgeSet collects the graph's edges as (from, to) pairs for comparison.
func edgeSet(g *Graph) map[[2]int]bool {
	set := map[[2]int]bool{}
	for i := 0; i < g.Nodes(); i++ {
		for _, s := range g.Succ(i) {
			set[[2]int{i, int(s)}] = true
		}
	}
	return set
}

// TestBuildHazards checks the hazard table case by case: each row is a tiny
// program over object ids, with the exact dependency edges it must induce.
func TestBuildHazards(t *testing.T) {
	w := func(out uint64, reads ...uint64) OpMeta { return OpMeta{Out: out, Reads: reads, Overwrites: true} }
	acc := func(out uint64, reads ...uint64) OpMeta { return OpMeta{Out: out, Reads: reads, Overwrites: false} }
	cases := []struct {
		name  string
		ops   []OpMeta
		edges [][2]int
		raw   int
		waw   int
		war   int
	}{
		{
			name:  "RAW: reader depends on last writer",
			ops:   []OpMeta{w(1, 10), w(2, 1)},
			edges: [][2]int{{0, 1}},
			raw:   1,
		},
		{
			name: "RAW: only the *latest* writer",
			ops:  []OpMeta{w(1, 10), w(1, 11), w(2, 1)},
			// op2 reads obj 1 written by op1; op0's write is superseded. The
			// op0→op1 edge is the WAW.
			edges: [][2]int{{0, 1}, {1, 2}},
			raw:   1,
			waw:   1,
		},
		{
			name:  "WAW: same output twice",
			ops:   []OpMeta{w(1, 10), w(1, 11)},
			edges: [][2]int{{0, 1}},
			waw:   1,
		},
		{
			name: "WAR: overwrite waits for earlier reader",
			ops:  []OpMeta{w(2, 1), w(1, 10)},
			// op0 reads obj 1; op1 replaces obj 1's store wholesale.
			edges: [][2]int{{0, 1}},
			war:   1,
		},
		{
			name: "accumulate reads own output (RAW to previous writer)",
			ops:  []OpMeta{w(1, 10), acc(1, 11)},
			// The accumulator consults obj 1's prior content: a true flow
			// dependence, classified RAW (dedup ranks RAW over WAW).
			edges: [][2]int{{0, 1}},
			raw:   1,
		},
		{
			name:  "independent chains share no edges",
			ops:   []OpMeta{w(1, 10), w(2, 1), w(3, 11), w(4, 3)},
			edges: [][2]int{{0, 1}, {2, 3}},
			raw:   2,
		},
		{
			name: "shared operand alone induces no edge",
			ops:  []OpMeta{w(1, 10), w(2, 10)},
		},
		{
			name: "dedup: reader of two outputs of one op",
			ops:  []OpMeta{w(1, 10), w(2, 1), acc(2, 1)},
			// op2 reads obj 1 (RAW on op0... no: obj1 written by op0) and obj 2
			// (its own output, written by op1): edges 0→2 (RAW), 1→2 (RAW via
			// own-output read, deduped with WAW), 0→1 (RAW).
			edges: [][2]int{{0, 1}, {0, 2}, {1, 2}},
			raw:   3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Build(tc.ops)
			want := map[[2]int]bool{}
			for _, e := range tc.edges {
				want[e] = true
			}
			got := edgeSet(g)
			if len(got) != len(want) {
				t.Fatalf("edges = %v, want %v", got, want)
			}
			for e := range want {
				if !got[e] {
					t.Fatalf("missing edge %v; got %v", e, got)
				}
			}
			raw, waw, war := g.EdgeKinds()
			if raw != tc.raw || waw != tc.waw || war != tc.war {
				t.Fatalf("edge kinds = RAW %d, WAW %d, WAR %d; want %d %d %d",
					raw, waw, war, tc.raw, tc.waw, tc.war)
			}
			if g.Edges() != len(tc.edges) {
				t.Fatalf("Edges() = %d, want %d", g.Edges(), len(tc.edges))
			}
		})
	}
}

// TestRunRespectsDependencies executes a diamond DAG with many workers and
// verifies every node ran exactly once, after all of its dependencies.
func TestRunRespectsDependencies(t *testing.T) {
	// 0 → {1, 2} → 3, plus a free-standing chain 4 → 5.
	ops := []OpMeta{
		{Out: 1, Reads: []uint64{100}, Overwrites: true},
		{Out: 2, Reads: []uint64{1}, Overwrites: true},
		{Out: 3, Reads: []uint64{1}, Overwrites: true},
		{Out: 4, Reads: []uint64{2, 3}, Overwrites: true},
		{Out: 5, Reads: []uint64{101}, Overwrites: true},
		{Out: 6, Reads: []uint64{5}, Overwrites: true},
	}
	g := Build(ops)
	var mu sync.Mutex
	finished := make([]bool, len(ops))
	ran := make([]int32, len(ops))
	deps := map[int][]int{1: {0}, 2: {0}, 3: {1, 2}, 5: {4}}
	g.Run(4, func(i int) {
		mu.Lock()
		for _, d := range deps[i] {
			if !finished[d] {
				t.Errorf("node %d started before dependency %d finished", i, d)
			}
		}
		mu.Unlock()
		atomic.AddInt32(&ran[i], 1)
		mu.Lock()
		finished[i] = true
		mu.Unlock()
	})
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("node %d executed %d times", i, n)
		}
	}
}

// TestRunOverlapsIndependentNodes proves independent nodes really run
// concurrently: two nodes block on each other's arrival at a barrier, which
// only a parallel schedule can satisfy. (Safe on one CPU: channel waits
// yield the processor.)
func TestRunOverlapsIndependentNodes(t *testing.T) {
	ops := []OpMeta{
		{Out: 1, Reads: []uint64{100}, Overwrites: true},
		{Out: 2, Reads: []uint64{101}, Overwrites: true},
	}
	g := Build(ops)
	if g.Edges() != 0 {
		t.Fatalf("expected independent nodes, got %d edges", g.Edges())
	}
	barrier := make(chan struct{}, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Run(2, func(i int) {
			barrier <- struct{}{}
			// Wait until both nodes have arrived.
			for len(barrier) < 2 {
				time.Sleep(time.Millisecond)
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("independent nodes did not overlap: Run deadlocked on the barrier")
	}
}

// TestRunMinPosDispatch verifies ready nodes are dispatched in ascending
// program order when a single worker drains a fully independent queue.
func TestRunMinPosDispatch(t *testing.T) {
	var ops []OpMeta
	for i := 0; i < 16; i++ {
		ops = append(ops, OpMeta{Out: uint64(1 + i), Reads: []uint64{100}, Overwrites: true})
	}
	g := Build(ops)
	var order []int
	g.Run(1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("single-worker dispatch order %v is not program order", order)
		}
	}
}

// TestRunPanicReleasesDependents verifies a panicking node does not strand
// its dependents: every node still executes (or observes the panic),
// and the panic resurfaces to the caller as a *parallel.Panic.
func TestRunPanicReleasesDependents(t *testing.T) {
	ops := []OpMeta{
		{Out: 1, Reads: []uint64{100}, Overwrites: true},
		{Out: 2, Reads: []uint64{1}, Overwrites: true},
		{Out: 3, Reads: []uint64{2}, Overwrites: true},
	}
	g := Build(ops)
	var ran int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the node panic to resurface")
		}
		if _, ok := r.(*parallel.Panic); !ok {
			t.Fatalf("panic value = %T, want *parallel.Panic", r)
		}
		if n := atomic.LoadInt32(&ran); n != 3 {
			t.Fatalf("only %d of 3 nodes executed before the panic resurfaced", n)
		}
	}()
	g.Run(2, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			panic("node 0 exploded")
		}
	})
}

// TestRunWidthBound verifies the pool never runs more nodes at once than
// the worker bound allows.
func TestRunWidthBound(t *testing.T) {
	var ops []OpMeta
	for i := 0; i < 12; i++ {
		ops = append(ops, OpMeta{Out: uint64(1 + i), Reads: []uint64{100}, Overwrites: true})
	}
	g := Build(ops)
	var cur, peak int32
	rs := g.Run(3, func(i int) {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Fatalf("observed %d concurrent nodes with a 3-worker bound", peak)
	}
	if rs.MaxWidth < 1 || rs.MaxWidth > 3 {
		t.Fatalf("RunStats.MaxWidth = %d, want within [1, 3]", rs.MaxWidth)
	}
}

// TestRunChainIsSequential verifies a fully dependent chain reports width 1:
// hazards leave nothing to overlap.
func TestRunChainIsSequential(t *testing.T) {
	var ops []OpMeta
	for i := 0; i < 8; i++ {
		ops = append(ops, OpMeta{Out: uint64(i + 1), Reads: []uint64{uint64(i)}, Overwrites: true})
	}
	g := Build(ops)
	if g.Edges() != len(ops)-1 {
		t.Fatalf("chain built %d edges, want %d", g.Edges(), len(ops)-1)
	}
	rs := g.Run(4, func(i int) { time.Sleep(time.Millisecond) })
	if rs.MaxWidth != 1 {
		t.Fatalf("dependent chain ran with width %d, want 1", rs.MaxWidth)
	}
}

func TestRunEmpty(t *testing.T) {
	rs := Build(nil).Run(4, func(int) { t.Fatal("exec called on empty graph") })
	if rs.MaxWidth != 0 {
		t.Fatalf("MaxWidth = %d on empty graph", rs.MaxWidth)
	}
}

// TestFuseLegal walks the legality predicate branch by branch. Object ids:
// X = 1 is the producer's output (the candidate dead store); the producer
// reads U = 2; other objects are scratch. Each case is a tiny program with
// the (i, j) pair under test.
func TestFuseLegal(t *testing.T) {
	w := func(out uint64, reads ...uint64) OpMeta { return OpMeta{Out: out, Reads: reads, Overwrites: true} }
	acc := func(out uint64, reads ...uint64) OpMeta { return OpMeta{Out: out, Reads: reads, Overwrites: false} }
	const X, U = 1, 2
	cases := []struct {
		name string
		ops  []OpMeta
		i, j int
		want bool
	}{
		{"pair with later overwrite", []OpMeta{w(X, U), w(3, X), w(X, 4)}, 0, 1, true},
		{"consumer retires X itself", []OpMeta{w(X, U), w(X, X)}, 0, 1, true},
		{"accumulating consumer ok", []OpMeta{w(X, U), acc(3, X), w(X, 4)}, 0, 1, true},
		{"merging producer", []OpMeta{acc(X, U), w(3, X), w(X, 4)}, 0, 1, false},
		{"consumer does not read X", []OpMeta{w(X, U), w(3, 4), w(X, 4)}, 0, 1, false},
		{"consumer merges into X", []OpMeta{w(X, U), acc(X, X)}, 0, 1, false},
		{"intermediate reads X", []OpMeta{w(X, U), w(3, X), w(4, X), w(X, 5)}, 0, 2, false},
		{"intermediate writes X", []OpMeta{w(X, U), w(X, 4), w(3, X), w(X, 5)}, 0, 2, false},
		{"intermediate clobbers producer input", []OpMeta{w(X, U), w(U, 4), w(3, X), w(X, 5)}, 0, 2, false},
		{"later reader before refresh", []OpMeta{w(X, U), w(3, X), w(4, X), w(X, 5)}, 0, 1, false},
		{"later merging writer of X", []OpMeta{w(X, U), w(3, X), acc(X, 4)}, 0, 1, false},
		{"X escapes the flush", []OpMeta{w(X, U), w(3, X)}, 0, 1, false},
		{"clobber after consumer is fine", []OpMeta{w(X, U), w(3, X), w(U, 4), w(X, 5)}, 0, 1, true},
		{"bad order", []OpMeta{w(X, U), w(3, X)}, 1, 0, false},
		{"same index", []OpMeta{w(X, U), w(3, X)}, 1, 1, false},
		{"out of range", []OpMeta{w(X, U), w(3, X)}, 0, 2, false},
		{"negative producer", []OpMeta{w(X, U), w(3, X)}, -1, 1, false},
	}
	for _, tc := range cases {
		if got := FuseLegal(tc.ops, tc.i, tc.j); got != tc.want {
			t.Errorf("%s: FuseLegal(%d, %d) = %v, want %v", tc.name, tc.i, tc.j, got, tc.want)
		}
	}
}

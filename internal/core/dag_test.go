package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"graphblas/internal/parallel"
)

// withDag runs f under a fresh nonblocking context with the DAG scheduler
// engaged for real: the worker bound is raised to 4 for the duration.
func withDag(t *testing.T, f func()) {
	t.Helper()
	parallel.SetMaxWorkersForTest(t, 4)
	withMode(t, NonBlocking, f)
}

// oneCell builds a committed 1×1 matrix holding v, so an ApplyM over it
// calls its unary operator exactly once — the unit of controllable work the
// scheduler tests are built from.
func oneCell(t *testing.T, v float64) *Matrix[float64] {
	t.Helper()
	m, err := NewMatrix[float64](1, 1)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := m.Build([]int{0}, []int{0}, []float64{v}, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// cellValue reads the committed (0,0) entry of a 1×1 matrix.
func cellValue(t *testing.T, m *Matrix[float64]) float64 {
	t.Helper()
	d := committedTuples(m)
	return d[key{0, 0}]
}

// TestDagIndependentChainsOverlap: queued operations on disjoint objects
// must really execute concurrently — the flush's realized width reaches at
// least two — and still produce the right values. (Observable on one CPU:
// a sleeping operation yields the processor to the other workers.)
func TestDagIndependentChainsOverlap(t *testing.T) {
	withDag(t, func() {
		const chains = 4
		var src, dst [chains]*Matrix[float64]
		for k := 0; k < chains; k++ {
			src[k] = oneCell(t, float64(k+1))
			dst[k], _ = NewMatrix[float64](1, 1)
		}
		if err := Wait(); err != nil {
			t.Fatalf("setup Wait: %v", err)
		}
		before := StatsSnapshot()
		slowDouble := UnaryOp[float64, float64]{Name: "slowDouble", F: func(x float64) float64 {
			time.Sleep(20 * time.Millisecond)
			return 2 * x
		}}
		for k := 0; k < chains; k++ {
			if err := ApplyM(dst[k], NoMask, NoAccum[float64](), slowDouble, src[k], nil); err != nil {
				t.Fatalf("ApplyM enqueue %d: %v", k, err)
			}
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		for k := 0; k < chains; k++ {
			if got, want := cellValue(t, dst[k]), 2*float64(k+1); got != want {
				t.Errorf("chain %d result = %v, want %v", k, got, want)
			}
		}
		after := StatsSnapshot()
		if after.ParallelFlushes != before.ParallelFlushes+1 {
			t.Errorf("ParallelFlushes = %d, want %d", after.ParallelFlushes, before.ParallelFlushes+1)
		}
		if nodes := after.DagNodes - before.DagNodes; nodes != chains {
			t.Errorf("DagNodes grew by %d, want %d", nodes, chains)
		}
		if edges := after.DagEdges - before.DagEdges; edges != 0 {
			t.Errorf("DagEdges grew by %d for independent chains, want 0", edges)
		}
		if after.MaxWidth < 2 {
			t.Errorf("MaxWidth = %d: independent chains never overlapped", after.MaxWidth)
		}
	})
}

// TestDagFirstErrorProgramOrder: when several independent DAG branches fail
// in one flush, Wait must return the error of the *lowest program position*,
// and SequenceErrors must list every failure in ascending position — even
// though the branches are deliberately timed so the lowest-position failure
// happens *last* in wall-clock order.
func TestDagFirstErrorProgramOrder(t *testing.T) {
	cases := []struct {
		name     string
		chains   int
		fail     []int // branch indices (= program positions) that panic
		firstPos int
	}{
		{name: "single failing branch", chains: 4, fail: []int{2}, firstPos: 2},
		{name: "first and last fail", chains: 4, fail: []int{0, 3}, firstPos: 0},
		{name: "all but one fail", chains: 4, fail: []int{1, 2, 3}, firstPos: 1},
		{name: "every branch fails", chains: 5, fail: []int{0, 1, 2, 3, 4}, firstPos: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			withDag(t, func() {
				failing := map[int]bool{}
				for _, k := range tc.fail {
					failing[k] = true
				}
				src := make([]*Matrix[float64], tc.chains)
				dst := make([]*Matrix[float64], tc.chains)
				for k := range src {
					src[k] = oneCell(t, float64(k+1))
					dst[k], _ = NewMatrix[float64](1, 1)
				}
				if err := Wait(); err != nil {
					t.Fatalf("setup Wait: %v", err)
				}
				for k := 0; k < tc.chains; k++ {
					k := k
					op := UnaryOp[float64, float64]{Name: "branch", F: func(x float64) float64 {
						if failing[k] {
							// Earlier positions panic later in wall-clock
							// time, so a first-error-by-arrival bug would
							// pick the wrong branch.
							time.Sleep(time.Duration(tc.chains-k) * 15 * time.Millisecond)
							panic(fmt.Sprintf("injected failure in branch %d", k))
						}
						return 2 * x
					}}
					if err := ApplyM(dst[k], NoMask, NoAccum[float64](), op, src[k], nil); err != nil {
						t.Fatalf("ApplyM enqueue %d: %v", k, err)
					}
				}
				waitErr := Wait()
				if waitErr == nil {
					t.Fatal("Wait returned nil with failing branches")
				}
				if InfoOf(waitErr) != PanicInfo {
					t.Fatalf("Wait error class = %v, want PanicInfo", InfoOf(waitErr))
				}
				log := SequenceErrors()
				if len(log) != len(tc.fail) {
					t.Fatalf("SequenceErrors has %d entries, want %d: %v", len(log), len(tc.fail), log)
				}
				for i, e := range log {
					if e.Pos != tc.fail[i] {
						t.Fatalf("SequenceErrors[%d].Pos = %d, want %d (log %v)", i, e.Pos, tc.fail[i], log)
					}
					if i > 0 && log[i-1].Pos >= e.Pos {
						t.Fatalf("SequenceErrors not ascending: %v", log)
					}
				}
				if log[0].Pos != tc.firstPos {
					t.Fatalf("first logged error at pos %d, want %d", log[0].Pos, tc.firstPos)
				}
				if waitErr.Error() != log[0].Err.Error() {
					t.Fatalf("Wait error %q is not the program-order-first log entry %q", waitErr, log[0].Err)
				}
				// Healthy branches completed despite their siblings failing.
				for k := 0; k < tc.chains; k++ {
					if failing[k] {
						continue
					}
					if got, want := cellValue(t, dst[k]), 2*float64(k+1); got != want {
						t.Errorf("healthy branch %d result = %v, want %v", k, got, want)
					}
				}
			})
		})
	}
}

// TestDagCancellationScopesToDependents: a failed operation cancels only its
// downstream dependents — they short-circuit with InvalidObject — while an
// independent chain in the same flush runs to completion.
func TestDagCancellationScopesToDependents(t *testing.T) {
	withDag(t, func() {
		a0 := oneCell(t, 3)
		a1, _ := NewMatrix[float64](1, 1)
		a2, _ := NewMatrix[float64](1, 1)
		b0 := oneCell(t, 5)
		b1, _ := NewMatrix[float64](1, 1)
		b2, _ := NewMatrix[float64](1, 1)
		if err := Wait(); err != nil {
			t.Fatalf("setup Wait: %v", err)
		}
		boom := UnaryOp[float64, float64]{Name: "boom", F: func(x float64) float64 { panic("chain A dies") }}
		double := UnaryOp[float64, float64]{Name: "double", F: func(x float64) float64 { return 2 * x }}
		_ = ApplyM(a1, NoMask, NoAccum[float64](), boom, a0, nil)   // pos 0: fails
		_ = ApplyM(a2, NoMask, NoAccum[float64](), double, a1, nil) // pos 1: depends on pos 0
		_ = ApplyM(b1, NoMask, NoAccum[float64](), double, b0, nil) // pos 2: independent
		_ = ApplyM(b2, NoMask, NoAccum[float64](), double, b1, nil) // pos 3: depends on pos 2
		waitErr := Wait()
		if InfoOf(waitErr) != PanicInfo {
			t.Fatalf("Wait error = %v, want the chain-A panic", waitErr)
		}
		log := SequenceErrors()
		if len(log) != 2 {
			t.Fatalf("SequenceErrors = %v, want the failure and its dependent", log)
		}
		if log[0].Pos != 0 || InfoOf(log[0].Err) != PanicInfo {
			t.Fatalf("log[0] = %+v, want pos 0 PanicInfo", log[0])
		}
		if log[1].Pos != 1 || InfoOf(log[1].Err) != InvalidObject {
			t.Fatalf("log[1] = %+v, want pos 1 InvalidObject (cancelled dependent)", log[1])
		}
		if a1.err == nil || a2.err == nil {
			t.Error("chain A objects should be invalid")
		}
		if b1.err != nil || b2.err != nil {
			t.Error("independent chain B was cancelled")
		}
		if got := cellValue(t, b2); got != 20 {
			t.Errorf("chain B result = %v, want 20 (5 doubled twice)", got)
		}
	})
}

// TestDagSequentialEquivalence: random fault-free programs over a shared
// object pool must fingerprint identically under the sequential drain and
// the DAG-parallel flush (same contents, same empty error log).
func TestDagSequentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(8)
		prog := make([]faultOp, n)
		for i := range prog {
			prog[i] = faultOp{kind: rng.Intn(4), dst: rng.Intn(diffPool), s1: rng.Intn(diffPool), s2: rng.Intn(diffPool)}
		}
		seq := runFaultProgram(t, NonBlocking, SchedSequential, prog, 1, nil)
		dag := runFaultProgram(t, NonBlocking, SchedDag, prog, 1, nil)
		if seq != dag {
			t.Fatalf("trial %d diverged (prog %v)\n-- sequential --\n%s-- dag --\n%s", trial, prog, seq, dag)
		}
	}
}

// TestDagDependentChainStaysOrdered: a fully dependent chain builds a
// linear DAG (n-1 edges) and executes with width 1, producing the same
// value a sequential drain would.
func TestDagDependentChainStaysOrdered(t *testing.T) {
	withDag(t, func() {
		const hops = 6
		m := make([]*Matrix[float64], hops+1)
		m[0] = oneCell(t, 1)
		for k := 1; k <= hops; k++ {
			m[k], _ = NewMatrix[float64](1, 1)
		}
		if err := Wait(); err != nil {
			t.Fatalf("setup Wait: %v", err)
		}
		before := StatsSnapshot()
		double := UnaryOp[float64, float64]{Name: "double", F: func(x float64) float64 { return 2 * x }}
		for k := 0; k < hops; k++ {
			if err := ApplyM(m[k+1], NoMask, NoAccum[float64](), double, m[k], nil); err != nil {
				t.Fatalf("ApplyM %d: %v", k, err)
			}
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if got := cellValue(t, m[hops]); got != 64 {
			t.Errorf("chain result = %v, want 64", got)
		}
		after := StatsSnapshot()
		if nodes := after.DagNodes - before.DagNodes; nodes != hops {
			t.Errorf("DagNodes grew by %d, want %d", nodes, hops)
		}
		if edges := after.DagEdges - before.DagEdges; edges != hops-1 {
			t.Errorf("DagEdges grew by %d, want %d (linear chain)", edges, hops-1)
		}
	})
}

// TestSchedulerSelection covers the scheduler API and the conditions under
// which the DAG path engages: never with a single queued op, never under
// SchedSequential, never with one worker.
func TestSchedulerSelection(t *testing.T) {
	t.Run("default is dag", func(t *testing.T) {
		withMode(t, NonBlocking, func() {
			if s := CurrentScheduler(); s != SchedDag {
				t.Fatalf("CurrentScheduler() = %v after Init, want dag", s)
			}
		})
	})
	t.Run("toggle returns previous", func(t *testing.T) {
		withMode(t, NonBlocking, func() {
			if prev := SetScheduler(SchedSequential); prev != SchedDag {
				t.Fatalf("SetScheduler returned %v, want dag", prev)
			}
			if prev := SetScheduler(SchedDag); prev != SchedSequential {
				t.Fatalf("SetScheduler returned %v, want sequential", prev)
			}
		})
	})
	t.Run("single op flushes sequentially", func(t *testing.T) {
		withDag(t, func() {
			src := oneCell(t, 2)
			dst, _ := NewMatrix[float64](1, 1)
			if err := Wait(); err != nil {
				t.Fatalf("setup Wait: %v", err)
			}
			before := StatsSnapshot()
			double := UnaryOp[float64, float64]{Name: "double", F: func(x float64) float64 { return 2 * x }}
			_ = ApplyM(dst, NoMask, NoAccum[float64](), double, src, nil)
			if err := Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if d := StatsSnapshot().ParallelFlushes - before.ParallelFlushes; d != 0 {
				t.Errorf("single-op flush took the DAG path (ParallelFlushes +%d)", d)
			}
		})
	})
	t.Run("sequential scheduler never parallelizes", func(t *testing.T) {
		withDag(t, func() {
			SetScheduler(SchedSequential)
			var dst [3]*Matrix[float64]
			var src [3]*Matrix[float64]
			for k := range src {
				src[k] = oneCell(t, float64(k+1))
				dst[k], _ = NewMatrix[float64](1, 1)
			}
			if err := Wait(); err != nil {
				t.Fatalf("setup Wait: %v", err)
			}
			before := StatsSnapshot()
			double := UnaryOp[float64, float64]{Name: "double", F: func(x float64) float64 { return 2 * x }}
			for k := range src {
				_ = ApplyM(dst[k], NoMask, NoAccum[float64](), double, src[k], nil)
			}
			if err := Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			after := StatsSnapshot()
			if after.ParallelFlushes != before.ParallelFlushes || after.DagNodes != before.DagNodes {
				t.Error("SchedSequential still took the DAG path")
			}
			for k := range src {
				if got, want := cellValue(t, dst[k]), 2*float64(k+1); got != want {
					t.Errorf("result %d = %v, want %v", k, got, want)
				}
			}
		})
	})
}

// TestDagElisionStillCounts: dead stores are pruned before DAG construction,
// so the scheduler sees only live operations.
func TestDagElisionStillCounts(t *testing.T) {
	withDag(t, func() {
		src := oneCell(t, 3)
		other := oneCell(t, 4)
		dst, _ := NewMatrix[float64](1, 1)
		if err := Wait(); err != nil {
			t.Fatalf("setup Wait: %v", err)
		}
		before := StatsSnapshot()
		double := UnaryOp[float64, float64]{Name: "double", F: func(x float64) float64 { return 2 * x }}
		triple := UnaryOp[float64, float64]{Name: "triple", F: func(x float64) float64 { return 3 * x }}
		// dst is written twice with no intervening read: the first write is a
		// dead store and must be elided, leaving a 2-node DAG (two live ops on
		// distinct outputs... the second write and an independent op).
		_ = ApplyM(dst, NoMask, NoAccum[float64](), double, src, nil) // dead
		_ = ApplyM(dst, NoMask, NoAccum[float64](), triple, src, nil)
		od, _ := NewMatrix[float64](1, 1)
		_ = ApplyM(od, NoMask, NoAccum[float64](), double, other, nil)
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		after := StatsSnapshot()
		if elided := after.OpsElided - before.OpsElided; elided != 1 {
			t.Errorf("OpsElided grew by %d, want 1", elided)
		}
		if nodes := after.DagNodes - before.DagNodes; nodes != 2 {
			t.Errorf("DagNodes grew by %d, want 2 (dead store pruned pre-DAG)", nodes)
		}
		if got := cellValue(t, dst); got != 9 {
			t.Errorf("dst = %v, want 9 (only the live triple ran)", got)
		}
		if got := cellValue(t, od); got != 8 {
			t.Errorf("independent op result = %v, want 8", got)
		}
	})
}

package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// vecOracleWrite applies the accumulate-then-mask pipeline to dense vector
// models.
func vecOracleWrite(c, t map[int]float64, n int, stored, eff map[int]bool, useMask, scmp, accum, replace bool) map[int]float64 {
	z := map[int]float64{}
	if accum {
		for k, v := range c {
			z[k] = v
		}
		for k, v := range t {
			if cv, ok := z[k]; ok {
				z[k] = cv + v
			} else {
				z[k] = v
			}
		}
	} else {
		z = t
	}
	out := map[int]float64{}
	allow := func(i int) bool {
		if !useMask {
			return true
		}
		if scmp {
			return !stored[i]
		}
		return eff[i]
	}
	for i := 0; i < n; i++ {
		if allow(i) {
			if v, ok := z[i]; ok {
				out[i] = v
			}
		} else if !replace {
			if v, ok := c[i]; ok {
				out[i] = v
			}
		}
	}
	return out
}

// randVecModel builds a vector plus its dense model.
func randVecModel(t *testing.T, rng *rand.Rand, n int, p float64) (*Vector[float64], map[int]float64) {
	t.Helper()
	v, err := NewVector[float64](n)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int]float64{}
	var idx []int
	var val []float64
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			x := float64(rng.Intn(9) + 1)
			idx = append(idx, i)
			val = append(val, x)
			model[i] = x
		}
	}
	if err := v.Build(idx, val, NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	return v, model
}

// randVecMask builds a bool mask vector plus stored/effective models.
func randVecMask(t *testing.T, rng *rand.Rand, n int, pStored, pTrue float64) (*Vector[bool], map[int]bool, map[int]bool) {
	t.Helper()
	v, err := NewVector[bool](n)
	if err != nil {
		t.Fatal(err)
	}
	stored := map[int]bool{}
	eff := map[int]bool{}
	var idx []int
	var val []bool
	for i := 0; i < n; i++ {
		if rng.Float64() < pStored {
			b := rng.Float64() < pTrue
			stored[i] = true
			if b {
				eff[i] = true
			}
			idx = append(idx, i)
			val = append(val, b)
		}
	}
	if err := v.Build(idx, val, NoAccum[bool]()); err != nil {
		t.Fatal(err)
	}
	return v, stored, eff
}

// TestSweep_MxVAndVxM runs both matrix-vector products through the full
// write pipeline, both kernel directions, against the dense oracle.
func TestSweep_MxVAndVxM(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	const n = 12
	a, ad := newTestMatrix(t, rng, n, n, 0.3)
	u, ud := randVecModel(t, rng, n, 0.5)
	s := plusTimesF64(t)
	// Dense product models.
	mxvT := map[int]float64{}
	vxmT := map[int]float64{}
	for i := 0; i < n; i++ {
		sm, has := 0.0, false
		sv, hasv := 0.0, false
		for k := 0; k < n; k++ {
			if av, ok := ad[key{i, k}]; ok {
				if uv, ok := ud[k]; ok {
					sm += av * uv
					has = true
				}
			}
			if av, ok := ad[key{k, i}]; ok {
				if uv, ok := ud[k]; ok {
					sv += av * uv
					hasv = true
				}
			}
		}
		if has {
			mxvT[i] = sm
		}
		if hasv {
			vxmT[i] = sv
		}
	}
	sweepCases(func(useMask, scmp, accum, replace bool, name string) {
		t.Run("mxv/"+name, func(t *testing.T) {
			w, wd := randVecModel(t, rng, n, 0.3)
			mask, stored, eff := randVecMask(t, rng, n, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Vector[bool]
			if useMask {
				mk = mask
			}
			if err := MxV(w, mk, acc, s, a, u, sweepDesc(scmp, replace)); err != nil {
				t.Fatal(err)
			}
			want := vecOracleWrite(wd, mxvT, n, stored, eff, useMask, scmp, accum, replace)
			got := vecModel(t, w)
			if len(got) != len(want) {
				t.Fatalf("%s: got %v want %v", name, got, want)
			}
			for i, v := range want {
				if got[i] != v {
					t.Fatalf("%s: [%d] got %v want %v", name, i, got[i], v)
				}
			}
		})
		t.Run("vxm/"+name, func(t *testing.T) {
			w, wd := randVecModel(t, rng, n, 0.3)
			mask, stored, eff := randVecMask(t, rng, n, 0.5, 0.7)
			acc := NoAccum[float64]()
			if accum {
				acc = plusF64()
			}
			var mk *Vector[bool]
			if useMask {
				mk = mask
			}
			if err := VxM(w, mk, acc, s, u, a, sweepDesc(scmp, replace)); err != nil {
				t.Fatal(err)
			}
			want := vecOracleWrite(wd, vxmT, n, stored, eff, useMask, scmp, accum, replace)
			got := vecModel(t, w)
			if len(got) != len(want) {
				t.Fatalf("%s: got %v want %v", name, got, want)
			}
			for i, v := range want {
				if got[i] != v {
					t.Fatalf("%s: [%d] got %v want %v", name, i, got[i], v)
				}
			}
		})
	})
}

// TestSerializeAllDomains round-trips every serializable domain.
func TestSerializeAllDomains(t *testing.T) {
	roundTrip := func(t *testing.T, build func() (any, error)) {
		t.Helper()
		if _, err := build(); err != nil {
			t.Fatal(err)
		}
	}
	_ = roundTrip
	check := func(t *testing.T, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	testDomain(t, "int8", int8(-7), check)
	testDomain(t, "int16", int16(-300), check)
	testDomain(t, "int32", int32(70000), check)
	testDomain(t, "int64", int64(1<<40), check)
	testDomain(t, "int", int(-12345), check)
	testDomain(t, "uint8", uint8(200), check)
	testDomain(t, "uint16", uint16(60000), check)
	testDomain(t, "uint32", uint32(4e9), check)
	testDomain(t, "uint64", uint64(1)<<60, check)
	testDomain(t, "uint", uint(987654321), check)
	testDomain(t, "float32", float32(3.25), check)
	testDomain(t, "float64", float64(-2.5e-10), check)
}

func testDomain[D comparable](t *testing.T, name string, sample D, check func(*testing.T, error)) {
	t.Run(name, func(t *testing.T) {
		m, err := NewMatrix[D](2, 2)
		check(t, err)
		check(t, m.SetElement(sample, 1, 0))
		var buf bytes.Buffer
		check(t, MatrixSerialize(m, &buf))
		back, err := MatrixDeserialize[D](&buf)
		check(t, err)
		v, err := back.ExtractElement(1, 0)
		check(t, err)
		if v != sample {
			t.Fatalf("round trip %v -> %v", sample, v)
		}
	})
}

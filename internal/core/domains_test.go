package core

import (
	"math/rand"
	"testing"

	"graphblas/internal/parallel"
)

// TestParallelDeterminism: kernel results are bit-identical regardless of
// the worker count — each output row is computed by one goroutine in a
// fixed order, so parallelism never reorders floating-point reductions.
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a, _ := newTestMatrix(t, rng, 60, 60, 0.2)
	b, _ := newTestMatrix(t, rng, 60, 60, 0.2)
	s := plusTimesF64(t)
	// Structural guard: even if a future edit drops one of the per-call
	// defers below, the bound cannot leak out of this test.
	parallel.SetMaxWorkersForTest(t, parallel.MaxWorkers())
	run := func(workers int) dmat {
		prev := parallel.SetMaxWorkers(workers)
		defer parallel.SetMaxWorkers(prev)
		c, _ := NewMatrix[float64](60, 60)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
			t.Fatal(err)
		}
		if err := EWiseAddM(c, NoMask, plusF64(), plusF64(), a, b, nil); err != nil {
			t.Fatal(err)
		}
		return denseOf(t, c)
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 16} {
		got := run(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: nvals %d vs %d", workers, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("workers=%d: (%d,%d) %v vs %v", workers, k.i, k.j, got[k], v)
			}
		}
	}
}

// TestComplexDomain: the API is generic over any domain — complex128
// matrices multiply over a user-built ⟨+,×⟩ semiring.
func TestComplexDomain(t *testing.T) {
	plus := BinaryOp[complex128, complex128, complex128]{Name: "plus", F: func(x, y complex128) complex128 { return x + y }}
	times := BinaryOp[complex128, complex128, complex128]{Name: "times", F: func(x, y complex128) complex128 { return x * y }}
	add, err := NewMonoid(plus, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSemiring(add, times)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewMatrix[complex128](2, 2)
	// Rotation-like matrix: [[0, i], [i, 0]].
	if err := a.Build([]int{0, 1}, []int{1, 0}, []complex128{1i, 1i}, NoAccum[complex128]()); err != nil {
		t.Fatal(err)
	}
	c, _ := NewMatrix[complex128](2, 2)
	if err := MxM(c, NoMask, NoAccum[complex128](), s, a, a, nil); err != nil {
		t.Fatal(err)
	}
	// a² = [[i·i, 0], [0, i·i]] = -I.
	for i := 0; i < 2; i++ {
		if v, err := c.ExtractElement(i, i); err != nil || v != -1 {
			t.Fatalf("c(%d,%d) = %v %v", i, i, v, err)
		}
	}
	// complex128 is not serializable (documented) ...
	if err := MatrixSerialize(a, discard{}); InfoOf(err) != DomainMismatch {
		t.Fatalf("complex serialize: %v", err)
	}
	// ... but masks treat its entries structurally (always true).
	mask, _ := NewMatrix[complex128](2, 2)
	_ = mask.SetElement(0, 0, 0) // a stored zero still counts structurally
	out, _ := NewMatrix[complex128](2, 2)
	if err := MxM(out, mask, NoAccum[complex128](), s, a, a, Desc().ReplaceOutput()); err != nil {
		t.Fatal(err)
	}
	if nv, _ := out.NVals(); nv != 1 {
		t.Fatalf("structural mask kept %d entries", nv)
	}
	if v, _ := out.ExtractElement(0, 0); v != -1 {
		t.Fatalf("masked value %v", v)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// interval is a user-defined struct domain: interval arithmetic forms a
// semiring-like structure under [min-sum, max-sum] addition.
type interval struct{ lo, hi float64 }

// TestStructDomain: GraphBLAS collections hold arbitrary Go structs, with
// user operators combining them.
func TestStructDomain(t *testing.T) {
	join := BinaryOp[interval, interval, interval]{Name: "hull", F: func(x, y interval) interval {
		lo, hi := x.lo, x.hi
		if y.lo < lo {
			lo = y.lo
		}
		if y.hi > hi {
			hi = y.hi
		}
		return interval{lo, hi}
	}}
	addIv := BinaryOp[interval, interval, interval]{Name: "add", F: func(x, y interval) interval {
		return interval{x.lo + y.lo, x.hi + y.hi}
	}}
	hull, err := NewMonoid(join, interval{lo: 1e300, hi: -1e300})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSemiring(hull, addIv)
	if err != nil {
		t.Fatal(err)
	}
	// Two parallel 2-hop paths 0→1→3 and 0→2→3 with interval weights: the
	// hull of the two path sums.
	a, _ := NewMatrix[interval](4, 4)
	if err := a.Build(
		[]int{0, 0, 1, 2},
		[]int{1, 2, 3, 3},
		[]interval{{1, 2}, {5, 6}, {1, 1}, {2, 3}},
		NoAccum[interval](),
	); err != nil {
		t.Fatal(err)
	}
	c, _ := NewMatrix[interval](4, 4)
	if err := MxM(c, NoMask, NoAccum[interval](), s, a, a, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.ExtractElement(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Path sums: {2,3} and {7,9}; hull = {2,9}.
	if got.lo != 2 || got.hi != 9 {
		t.Fatalf("interval hull got %+v", got)
	}
	// Reduce over the hull monoid.
	total, err := ReduceMatrixToScalar(interval{1e300, -1e300}, NoAccum[interval](), hull, a)
	if err != nil || total.lo != 1 || total.hi != 6 {
		t.Fatalf("hull reduce %+v %v", total, err)
	}
}

// TestNegativeWeightsSSSPStyle: the min-plus relaxation handles negative
// edges (no negative cycles), matching the algebraic definition rather than
// Dijkstra's constraints.
func TestNegativeWeightsMinPlus(t *testing.T) {
	// 0→1 (4), 0→2 (2), 2→1 (-3): shortest 0→1 is -1 via 2.
	minOp := BinaryOp[float64, float64, float64]{Name: "min", F: func(x, y float64) float64 {
		if y < x {
			return y
		}
		return x
	}}
	plus := plusF64()
	add, _ := NewMonoid(minOp, 1e300)
	s, _ := NewSemiring(add, plus)
	a, _ := NewMatrix[float64](3, 3)
	if err := a.Build([]int{0, 0, 2}, []int{1, 2, 1}, []float64{4, 2, -3}, NoAccum[float64]()); err != nil {
		t.Fatal(err)
	}
	d, _ := NewVector[float64](3)
	_ = d.SetElement(0, 0)
	for i := 0; i < 3; i++ {
		if err := VxM(d, NoMaskV, minOp, s, d, a, nil); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := d.ExtractElement(1); err != nil || v != -1 {
		t.Fatalf("dist to 1: %v %v", v, err)
	}
	if v, _ := d.ExtractElement(2); v != 2 {
		t.Fatalf("dist to 2: %v", v)
	}
}

package core

import (
	"bufio"
	"encoding/binary"

	"io"

	"graphblas/internal/sparse"
)

// Serialization of GraphBLAS collections to a stable little-endian binary
// format (a GxB_Matrix_serialize-style extension). Per the execution model,
// serializing copies values out of an opaque object into non-opaque form,
// so it forces completion of the pending sequence; deserializing constructs
// a fresh object. Supported domains are the built-in scalar types; other
// domains return DomainMismatch.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "GRB1"
//	kind    uint8    1 = matrix, 2 = vector
//	domain  uint8    type tag (see domainTag)
//	nrows   int64    (vectors: size; ncols omitted)
//	ncols   int64
//	nnz     int64
//	matrix: rowptr [nrows+1]int64, colidx [nnz]int64, values [nnz]elem
//	vector: idx [nnz]int64, values [nnz]elem

var serializeMagic = [4]byte{'G', 'R', 'B', '1'}

const (
	kindMatrix uint8 = 1
	kindVector uint8 = 2
)

// domainTag returns the wire tag and element width for supported domains.
func domainTag[D any]() (tag uint8, ok bool) {
	var z D
	switch any(z).(type) {
	case bool:
		return 1, true
	case int8:
		return 2, true
	case int16:
		return 3, true
	case int32:
		return 4, true
	case int64:
		return 5, true
	case int:
		return 6, true
	case uint8:
		return 7, true
	case uint16:
		return 8, true
	case uint32:
		return 9, true
	case uint64:
		return 10, true
	case uint:
		return 11, true
	case float32:
		return 12, true
	case float64:
		return 13, true
	}
	return 0, false
}

// writeVals encodes a value slice for a supported domain. int and uint are
// not fixed-size for encoding/binary and travel as 64-bit.
func writeVals[D any](w io.Writer, vals []D) error {
	switch vs := any(vals).(type) {
	case []bool:
		buf := make([]byte, len(vs))
		for i, b := range vs {
			if b {
				buf[i] = 1
			}
		}
		_, err := w.Write(buf)
		return err
	case []int:
		buf := make([]int64, len(vs))
		for i, x := range vs {
			buf[i] = int64(x)
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case []uint:
		buf := make([]uint64, len(vs))
		for i, x := range vs {
			buf[i] = uint64(x)
		}
		return binary.Write(w, binary.LittleEndian, buf)
	default:
		return binary.Write(w, binary.LittleEndian, vals)
	}
}

// readVals decodes a value slice for a supported domain with chunked
// allocation (see readInts).
func readVals[D any](r io.Reader, n int) ([]D, error) {
	vals := make([]D, 0, min(n, readChunk))
	buf := make([]D, min(n, readChunk))
	var byteBuf []byte
	if _, ok := any(buf).([]bool); ok {
		byteBuf = make([]byte, min(n, readChunk))
	}
	for len(vals) < n {
		c := min(n-len(vals), readChunk)
		switch bs := any(buf).(type) {
		case []bool:
			if _, err := io.ReadFull(r, byteBuf[:c]); err != nil {
				return nil, err
			}
			for i := 0; i < c; i++ {
				bs[i] = byteBuf[i] != 0
			}
		case []int:
			tmp := make([]int64, c)
			if err := binary.Read(r, binary.LittleEndian, tmp); err != nil {
				return nil, err
			}
			for i, x := range tmp {
				bs[i] = int(x)
			}
		case []uint:
			tmp := make([]uint64, c)
			if err := binary.Read(r, binary.LittleEndian, tmp); err != nil {
				return nil, err
			}
			for i, x := range tmp {
				bs[i] = uint(x)
			}
		default:
			if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
				return nil, err
			}
		}
		vals = append(vals, buf[:c]...)
	}
	return vals, nil
}

func writeInts(w io.Writer, xs []int) error {
	buf := make([]int64, len(xs))
	for i, x := range xs {
		buf[i] = int64(x)
	}
	return binary.Write(w, binary.LittleEndian, buf)
}

// maxDeserializeDim bounds the dimensions and entry counts a stream may
// declare, so hostile headers cannot trigger enormous allocations before
// the (truncated) payload is read.
const maxDeserializeDim = 1 << 40

// readChunk bounds how much is allocated ahead of the actual stream
// content when reading declared-length arrays.
const readChunk = 1 << 16

// readInts reads n little-endian int64s with chunked allocation: a stream
// that declares a huge count but holds no data fails on the first chunk
// instead of exhausting memory.
func readInts(r io.Reader, n int) ([]int, error) {
	xs := make([]int, 0, min(n, readChunk))
	buf := make([]int64, min(n, readChunk))
	for len(xs) < n {
		c := min(n-len(xs), readChunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, err
		}
		for _, x := range buf[:c] {
			xs = append(xs, int(x))
		}
	}
	return xs, nil
}

// MatrixSerialize writes m to w. Forces completion of the pending sequence
// (non-opaque output may not defer).
func MatrixSerialize[D any](m *Matrix[D], w io.Writer) error {
	const op = "MatrixSerialize"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return err
	}
	tag, ok := domainTag[D]()
	if !ok {
		return errf(DomainMismatch, op, "domain %T is not serializable", *new(D))
	}
	if err := m.obj.engine().force(op); err != nil {
		return err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(serializeMagic[:]); err != nil {
		return err
	}
	d := m.mdat()
	hdr := []int64{int64(kindMatrix)<<8 | int64(tag), int64(d.NRows), int64(d.NCols), int64(d.NNZ())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := writeInts(bw, d.Ptr); err != nil {
		return err
	}
	if err := writeInts(bw, d.ColIdx[:d.NNZ()]); err != nil {
		return err
	}
	if err := writeVals(bw, d.Val[:d.NNZ()]); err != nil {
		return err
	}
	return bw.Flush()
}

// MatrixDeserialize reconstructs a matrix written by MatrixSerialize. The
// domain must match the one serialized; mismatches return DomainMismatch.
func MatrixDeserialize[D any](r io.Reader) (*Matrix[D], error) {
	const op = "MatrixDeserialize"
	if err := checkActive(op); err != nil {
		return nil, err
	}
	kind, tag, dims, err := readHeader(op, r)
	if err != nil {
		return nil, err
	}
	if kind != kindMatrix {
		return nil, errf(InvalidValue, op, "stream holds a vector, not a matrix")
	}
	wantTag, ok := domainTag[D]()
	if !ok {
		return nil, errf(DomainMismatch, op, "domain %T is not serializable", *new(D))
	}
	if tag != wantTag {
		return nil, errf(DomainMismatch, op, "stream domain tag %d, requested %d", tag, wantTag)
	}
	nr, nc, nnz := int(dims[0]), int(dims[1]), int(dims[2])
	if nr <= 0 || nc <= 0 || nnz < 0 ||
		nr > maxDeserializeDim || nc > maxDeserializeDim || nnz > maxDeserializeDim {
		return nil, errf(InvalidValue, op, "implausible dimensions %dx%d nnz %d", nr, nc, nnz)
	}
	// Overflow-safe nnz ≤ nr·nc: when the product would exceed int64 it is
	// certainly above the capped nnz.
	if int64(nr) <= (1<<62)/int64(nc) && int64(nnz) > int64(nr)*int64(nc) {
		return nil, errf(InvalidValue, op, "nnz %d exceeds %dx%d", nnz, nr, nc)
	}
	ptr, err := readInts(r, nr+1)
	if err != nil {
		return nil, errf(InvalidValue, op, "truncated row pointers: %v", err)
	}
	colIdx, err := readInts(r, nnz)
	if err != nil {
		return nil, errf(InvalidValue, op, "truncated column indices: %v", err)
	}
	vals, err := readVals[D](r, nnz)
	if err != nil {
		return nil, errf(InvalidValue, op, "truncated values: %v", err)
	}
	// Validate the CSR invariants before trusting the stream: first the row
	// pointers in full (so no out-of-range pointer can index the arrays),
	// then the column structure.
	if ptr[0] != 0 || ptr[nr] != nnz {
		return nil, errf(InvalidValue, op, "corrupt row pointers")
	}
	for i := 0; i < nr; i++ {
		if ptr[i] > ptr[i+1] || ptr[i] < 0 || ptr[i+1] > nnz {
			return nil, errf(InvalidValue, op, "corrupt row pointers at row %d", i)
		}
	}
	for i := 0; i < nr; i++ {
		for p := ptr[i]; p < ptr[i+1]; p++ {
			if colIdx[p] < 0 || colIdx[p] >= nc {
				return nil, errf(InvalidValue, op, "column index %d out of range at row %d", colIdx[p], i)
			}
			if p > ptr[i] && colIdx[p-1] >= colIdx[p] {
				return nil, errf(InvalidValue, op, "unsorted columns in row %d", i)
			}
		}
	}
	m := &Matrix[D]{nr: nr, nc: nc, data: &sparse.CSR[D]{NRows: nr, NCols: nc, Ptr: ptr, ColIdx: colIdx, Val: vals}}
	m.initMatrix()
	return m, nil
}

// VectorSerialize writes v to w; forces completion.
func VectorSerialize[D any](v *Vector[D], w io.Writer) error {
	const op = "VectorSerialize"
	if err := objOK(&v.obj, op, "v"); err != nil {
		return err
	}
	tag, ok := domainTag[D]()
	if !ok {
		return errf(DomainMismatch, op, "domain %T is not serializable", *new(D))
	}
	if err := v.obj.engine().force(op); err != nil {
		return err
	}
	if err := invalidMark(&v.obj, op); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(serializeMagic[:]); err != nil {
		return err
	}
	hdr := []int64{int64(kindVector)<<8 | int64(tag), int64(v.vdat().N), 1, int64(v.vdat().NVals())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := writeInts(bw, v.vdat().Idx); err != nil {
		return err
	}
	if err := writeVals(bw, v.vdat().Val); err != nil {
		return err
	}
	return bw.Flush()
}

// VectorDeserialize reconstructs a vector written by VectorSerialize.
func VectorDeserialize[D any](r io.Reader) (*Vector[D], error) {
	const op = "VectorDeserialize"
	if err := checkActive(op); err != nil {
		return nil, err
	}
	kind, tag, dims, err := readHeader(op, r)
	if err != nil {
		return nil, err
	}
	if kind != kindVector {
		return nil, errf(InvalidValue, op, "stream holds a matrix, not a vector")
	}
	wantTag, ok := domainTag[D]()
	if !ok {
		return nil, errf(DomainMismatch, op, "domain %T is not serializable", *new(D))
	}
	if tag != wantTag {
		return nil, errf(DomainMismatch, op, "stream domain tag %d, requested %d", tag, wantTag)
	}
	n, nnz := int(dims[0]), int(dims[2])
	if n <= 0 || nnz < 0 || n > maxDeserializeDim || nnz > n {
		return nil, errf(InvalidValue, op, "implausible size %d nnz %d", n, nnz)
	}
	idx, err := readInts(r, nnz)
	if err != nil {
		return nil, errf(InvalidValue, op, "truncated indices: %v", err)
	}
	vals, err := readVals[D](r, nnz)
	if err != nil {
		return nil, errf(InvalidValue, op, "truncated values: %v", err)
	}
	for k := range idx {
		if idx[k] < 0 || idx[k] >= n {
			return nil, errf(InvalidValue, op, "index %d out of range", idx[k])
		}
		if k > 0 && idx[k-1] >= idx[k] {
			return nil, errf(InvalidValue, op, "unsorted indices")
		}
	}
	v := &Vector[D]{n: n, data: &sparse.Vec[D]{N: n, Idx: idx, Val: vals}}
	v.initVector()
	return v, nil
}

// readHeader parses the common stream prefix.
func readHeader(op string, r io.Reader) (kind, tag uint8, dims [3]int64, err error) {
	var magic [4]byte
	if _, err = io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, dims, errf(InvalidValue, op, "truncated header: %v", err)
	}
	if magic != serializeMagic {
		return 0, 0, dims, errf(InvalidValue, op, "bad magic %q", string(magic[:]))
	}
	var hdr [4]int64
	if err = binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return 0, 0, dims, errf(InvalidValue, op, "truncated header: %v", err)
	}
	kind = uint8(hdr[0] >> 8)
	tag = uint8(hdr[0] & 0xff)
	copy(dims[:], hdr[1:])
	return kind, tag, dims, nil
}

package core

import (
	"bytes"
	"testing"
)

// TestSerializeFlushesQueuedAssign is the regression test for the Wait
// semantics of the serialization path: serializing reads values out of the
// opaque object, so a nonblocking sequence with a queued assign must be
// forced to completion first — the bytes written always reflect the full
// program order, never a stale snapshot.
func TestSerializeFlushesQueuedAssign(t *testing.T) {
	withMode(t, NonBlocking, func() {
		m, err := NewMatrix[float64](4, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Build([]int{0, 2}, []int{1, 3}, []float64{5, 6}, NoAccum[float64]()); err != nil {
			t.Fatal(err)
		}
		// Queue a whole-matrix scalar assign and a point update; neither may
		// run before the serialize call forces the sequence.
		if err := AssignMatrixScalar(m, NoMask, NoAccum[float64](), 7, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.SetElement(9, 3, 4); err != nil {
			t.Fatal(err)
		}
		if queued := StatsSnapshot().OpsEnqueued; queued == 0 {
			t.Fatal("assign was not deferred; the regression scenario needs a queued op")
		}

		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); err != nil {
			t.Fatalf("MatrixSerialize: %v", err)
		}
		got, err := MatrixDeserialize[float64](&buf)
		if err != nil {
			t.Fatalf("MatrixDeserialize: %v", err)
		}
		is, js, vs, err := got.ExtractTuples()
		if err != nil {
			t.Fatal(err)
		}
		want := dmat{}
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				want[key{i, j}] = 7
			}
		}
		want[key{3, 4}] = 9
		d := dmat{}
		for k := range is {
			d[key{is[k], js[k]}] = vs[k]
		}
		equalDense(t, d, want, "deserialized content after queued assign")
	})
}

package core

import (
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/sparse"
)

// assign (Table II): C(i, j) ⊙= A, w(i) ⊙= u, row/column variants, and the
// scalar-fill variants Figure 3 uses on lines 61 and 77. Following the
// GrB_assign semantics, the mask and the GrB_REPLACE setting span the whole
// output object for the matrix/vector variants; for the row/column variants
// their effect is confined to the assigned row or column. Assign target
// index lists must be duplicate-free.

// AssignVector computes w(indices) ⊙= u (GrB_assign, vector variant).
func AssignVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], indices []int, desc *Descriptor) error {
	const name = "AssignVector"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	idx, err := resolveIndices(name, indices, w.n)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, indices, w.n); err != nil {
		return err
	}
	if u.n != len(idx) {
		return errf(DimensionMismatch, name, "input has size %d, index list has length %d", u.n, len(idx))
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	scmp, replace := desc.scmp(), desc.replace()
	// Assign reads the prior content of w outside the assigned region, so it
	// never fully overwrites unless the region is everything and there is no
	// mask or accumulator.
	overwrites := !accum.Defined() && mask == nil && indices == nil
	var accumF func(DC, DC) DC
	if accum.Defined() {
		accumF = accum.F
	}
	// Fusion capability (fusion.go): the full-width form w(:) ⊙= u consumes
	// a fused upstream of u directly — FusedAssignAccum computes the same
	// pre-mask Z content AssignExpandVec produces over the identity index
	// list, streaming u instead of materializing it. The region-restricted
	// form keeps the generic path (the expand/sort machinery wants a
	// materialized source), and assign's output merges into prior content,
	// so it never acts as a producer. A mask aliasing u vetoes consumption
	// (see fuseInfo.consume): the fused kernel would resolve the mask from
	// u's stale committed store while streaming u's fresh values.
	var fi *fuseInfo
	if indices == nil && (mask == nil || mask.obj.id != u.obj.id) {
		fi = &fuseInfo{srcID: u.obj.id}
		fi.consume = func(src any) (func() error, any, bool) {
			vs, ok := src.(vecSource[DC])
			if !ok {
				return nil, nil, false
			}
			run := func() error {
				_, sidx, get := vs.vecElems()
				z := sparse.FusedAssignAccum(w.vdat(), sidx, get, accumF)
				vm := resolveVecMask(mask, scmp)
				w.setVData(sparse.MaskMergeVec(w.vdat(), z, vm, replace))
				return nil
			}
			return run, nil, true
		}
	}
	return enqueueFusable(name, &w.obj, reads, overwrites, format.HintNone, obs.Begin(name), fi, func() error {
		z := sparse.AssignExpandVec(w.vdat(), u.vdat(), idx, accumF)
		vm := resolveVecMask(mask, scmp)
		w.setVData(sparse.MaskMergeVec(w.vdat(), z, vm, replace))
		return nil
	})
}

// AssignVectorScalar computes w(indices) ⊙= x: the scalar fill Figure 3
// line 77 uses to initialize delta with -nsver.
func AssignVectorScalar[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], x DC, indices []int, desc *Descriptor) error {
	const name = "AssignVectorScalar"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil {
		return errf(UninitializedObject, name, "nil output")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	idx, err := resolveIndices(name, indices, w.n)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, indices, w.n); err != nil {
		return err
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV(nil, mask)
	scmp, replace := desc.scmp(), desc.replace()
	overwrites := !accum.Defined() && mask == nil && indices == nil
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		z := sparse.AssignScalarExpandVec(w.vdat(), x, idx, accumF)
		vm := resolveVecMask(mask, scmp)
		w.setVData(sparse.MaskMergeVec(w.vdat(), z, vm, replace))
		return nil
	})
}

// AssignMatrix computes C(rows, cols) ⊙= A (GrB_assign, matrix variant).
func AssignMatrix[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows, cols []int, desc *Descriptor) error {
	const name = "AssignMatrix"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	rIdx, err := resolveIndices(name, rows, c.nr)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, rows, c.nr); err != nil {
		return err
	}
	cIdx, err := resolveIndices(name, cols, c.nc)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, cols, c.nc); err != nil {
		return err
	}
	if a.nr != len(rIdx) || a.nc != len(cIdx) {
		return errf(DimensionMismatch, name, "input is %dx%d, index lists are %dx%d", a.nr, a.nc, len(rIdx), len(cIdx))
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	scmp, replace := desc.scmp(), desc.replace()
	overwrites := !accum.Defined() && mask == nil && rows == nil && cols == nil
	c.noteHint(format.HintAssign)
	return enqueueHinted(name, &c.obj, reads, overwrites, format.HintAssign, func() error {
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		z := sparse.AssignExpandCSR(c.mdat(), a.mdat(), rIdx, cIdx, accumF)
		mm := resolveMatMask(mask, scmp)
		c.setData(sparse.MaskMergeCSR(c.mdat(), z, mm, replace))
		return nil
	})
}

// AssignMatrixScalar computes C(rows, cols) ⊙= x: the scalar fill Figure 3
// line 61 uses to initialize bcu with 1.0 over GrB_ALL × GrB_ALL.
func AssignMatrixScalar[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], x DC, rows, cols []int, desc *Descriptor) error {
	const name = "AssignMatrixScalar"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil {
		return errf(UninitializedObject, name, "nil output")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	rIdx, err := resolveIndices(name, rows, c.nr)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, rows, c.nr); err != nil {
		return err
	}
	cIdx, err := resolveIndices(name, cols, c.nc)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, cols, c.nc); err != nil {
		return err
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM(nil, mask)
	scmp, replace := desc.scmp(), desc.replace()
	overwrites := !accum.Defined() && mask == nil && rows == nil && cols == nil
	c.noteHint(format.HintAssign)
	return enqueueHinted(name, &c.obj, reads, overwrites, format.HintAssign, func() error {
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		z := sparse.AssignScalarExpandCSR(c.mdat(), x, rIdx, cIdx, accumF)
		mm := resolveMatMask(mask, scmp)
		c.setData(sparse.MaskMergeCSR(c.mdat(), z, mm, replace))
		return nil
	})
}

// AssignRow computes C(i, cols) ⊙= u (GrB_Row_assign). The mask is a
// vector over the column extent and, with GrB_REPLACE, affects only row i.
func AssignRow[DC, DM any](c *Matrix[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], i int, cols []int, desc *Descriptor) error {
	const name = "AssignRow"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if i < 0 || i >= c.nr {
		return errf(InvalidIndex, name, "row %d out of range [0,%d)", i, c.nr)
	}
	cIdx, err := resolveIndices(name, cols, c.nc)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, cols, c.nc); err != nil {
		return err
	}
	if u.n != len(cIdx) {
		return errf(DimensionMismatch, name, "input has size %d, index list has length %d", u.n, len(cIdx))
	}
	if mask != nil && mask.n != c.nc {
		return errf(DimensionMismatch, name, "mask has size %d, row extent is %d", mask.n, c.nc)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	scmp, replace := desc.scmp(), desc.replace()
	c.noteHint(format.HintAssign)
	return enqueueHinted(name, &c.obj, reads, false, format.HintAssign, func() error {
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		z := sparse.AssignRowExpandCSR(c.mdat(), u.vdat(), i, cIdx, accumF)
		vm := resolveVecMask(mask, scmp)
		c.setData(sparse.MergeRow(c.mdat(), z, i, vm, replace))
		return nil
	})
}

// AssignCol computes C(rows, j) ⊙= u (GrB_Col_assign). The mask is a
// vector over the row extent and, with GrB_REPLACE, affects only column j.
func AssignCol[DC, DM any](c *Matrix[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], rows []int, j int, desc *Descriptor) error {
	const name = "AssignCol"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if j < 0 || j >= c.nc {
		return errf(InvalidIndex, name, "column %d out of range [0,%d)", j, c.nc)
	}
	rIdx, err := resolveIndices(name, rows, c.nr)
	if err != nil {
		return err
	}
	if err := checkNoDuplicates(name, rows, c.nr); err != nil {
		return err
	}
	if u.n != len(rIdx) {
		return errf(DimensionMismatch, name, "input has size %d, index list has length %d", u.n, len(rIdx))
	}
	if mask != nil && mask.n != c.nr {
		return errf(DimensionMismatch, name, "mask has size %d, column extent is %d", mask.n, c.nr)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	scmp, replace := desc.scmp(), desc.replace()
	c.noteHint(format.HintAssign)
	return enqueueHinted(name, &c.obj, reads, false, format.HintAssign, func() error {
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		z := sparse.AssignColExpandCSR(c.mdat(), u.vdat(), rIdx, j, accumF)
		vm := resolveVecMask(mask, scmp)
		c.setData(sparse.MergeColumn(c.mdat(), z, j, vm, replace))
		return nil
	})
}

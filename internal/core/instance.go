package core

import stdctx "context"

// Instance is an independently scheduled GraphBLAS execution context — the
// engine-instance extension behind horizontal sharding. The paper's Section
// IV defines exactly one context per program (Init/Finalize); an Instance
// embeds an additional, fully isolated context beside it: its own nonblocking
// queue, hazard-DAG scheduler state, flush lock, and sequence error log.
// Objects created with NewMatrixIn/NewVectorIn bind to the instance, and
// every operation whose output is instance-bound enqueues, flushes, and
// reports errors entirely within it.
//
// Isolation is the point: two instances never serialize against each other's
// flush lock, so a row-sharded deployment (internal/shard) gets realized
// shard-level parallelism, and a deadline expiring in one shard's flush can
// only abandon operations of that shard — the blast radius of WaitContext
// cancellation shrinks from the whole process to one instance.
//
// Instances live inside the program-wide lifecycle: creating one requires the
// global context to be active (Init has been called), mirroring how shards
// live inside a serving process. Mixing operands from different instances
// (or an instance and the global context) in one operation is an InvalidValue
// error — cross-shard dataflow must go through values, not shared objects.
type Instance struct {
	c context
}

// NewInstance creates an isolated execution context in the given mode. The
// instance inherits the global context's current scheduler selection, so an
// ablation run (SetScheduler(SchedSequential)) governs sharded engines too.
func NewInstance(mode Mode) (*Instance, error) {
	if err := checkActive("NewInstance"); err != nil {
		return nil, err
	}
	if mode != Blocking && mode != NonBlocking {
		return nil, errf(InvalidValue, "NewInstance", "unknown mode %d", int(mode))
	}
	in := &Instance{}
	in.c.state = stateActive
	in.c.mode = mode
	in.c.elision = true
	in.c.fusion = FusionEnabled()
	in.c.sched = CurrentScheduler()
	return in, nil
}

// Wait terminates the instance's current sequence: all pending operations
// complete and the program-order-first execution error is returned.
func (in *Instance) Wait() error { return in.c.waitContext(nil) }

// WaitContext is Wait bounded by a caller context; semantics match the
// package-level WaitContext, but cancellation is scoped to this instance's
// queue — operations pending in other instances or in the global context are
// untouched.
func (in *Instance) WaitContext(ctx stdctx.Context) error { return in.c.waitContext(ctx) }

// SetScheduler selects the instance's nonblocking flush strategy and returns
// the previous one.
func (in *Instance) SetScheduler(s Scheduler) Scheduler {
	in.c.mu.Lock()
	defer in.c.mu.Unlock()
	prev := in.c.sched
	in.c.sched = s
	return prev
}

// CurrentScheduler reports the instance's flush strategy.
func (in *Instance) CurrentScheduler() Scheduler {
	in.c.mu.Lock()
	defer in.c.mu.Unlock()
	return in.c.sched
}

// SequenceErrors returns the instance's per-sequence execution error log;
// see the package-level SequenceErrors.
func (in *Instance) SequenceErrors() []SequenceError {
	in.c.mu.Lock()
	defer in.c.mu.Unlock()
	log := in.c.errLog
	if !in.c.seqOpen {
		log = in.c.seqDone
	}
	return append([]SequenceError(nil), log...)
}

// NewMatrixIn creates an nrows-by-ncols matrix bound to the instance: all of
// its deferred operations enqueue to — and flush with — that instance alone.
func NewMatrixIn[D any](in *Instance, nrows, ncols int) (*Matrix[D], error) {
	if in == nil {
		return nil, errf(UninitializedObject, "NewMatrixIn", "nil instance")
	}
	m, err := NewMatrix[D](nrows, ncols)
	if err != nil {
		return nil, err
	}
	m.obj.ctx = &in.c
	return m, nil
}

// NewVectorIn creates a size-n vector bound to the instance; see NewMatrixIn.
func NewVectorIn[D any](in *Instance, n int) (*Vector[D], error) {
	if in == nil {
		return nil, errf(UninitializedObject, "NewVectorIn", "nil instance")
	}
	v, err := NewVector[D](n)
	if err != nil {
		return nil, err
	}
	v.obj.ctx = &in.c
	return v, nil
}

package core

import (
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/sparse"
)

// This file implements the matrix-multiplication family of Table II:
//
//	mxm:  C ⊙= A ⊕.⊗ B
//	mxv:  w ⊙= A ⊕.⊗ u
//	vxm:  wᵀ ⊙= uᵀ ⊕.⊗ A
//
// following the three-step semantics of Section VI: (1) form the internal
// operands from the arguments per the descriptor, (2) carry out the
// computation, (3) write the internal result into the output under the
// optional accumulator and write mask. Output aliasing an input is
// permitted: every kernel produces fresh storage before the write-back.

// MxM computes C ⊙= A ⊕.⊗ B over a semiring (GrB_mxm, Figure 2). mask may
// be nil (NoMask); accum may be the zero BinaryOp (NoAccum) for assignment
// semantics; desc may be nil for defaults.
func MxM[DC, DA, DB, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], op Semiring[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	const name = "MxM"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil || b == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&b.obj, name, "B"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "Mask"); err != nil {
			return err
		}
	}
	if !op.Defined() {
		return errf(UninitializedObject, name, "semiring not initialized")
	}
	am, an := a.nr, a.nc
	if desc.tran0() {
		am, an = an, am
	}
	bm, bn := b.nr, b.nc
	if desc.tran1() {
		bm, bn = bn, bm
	}
	if an != bm {
		return errf(DimensionMismatch, name, "inner dimensions %d and %d differ", an, bm)
	}
	if c.nr != am || c.nc != bn {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, am, bn)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj, &b.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, tran1, scmp, replace := desc.tran0(), desc.tran1(), desc.scmp(), desc.replace()
	b.noteHint(format.HintMxM)
	// The span is opened here (rather than inside enqueueSpanned) so the
	// closure can record which storage layout the dispatch below consumed.
	sp := obs.Begin(name)
	return enqueueSpanned(name, &c.obj, reads, overwrites, format.HintMxM, sp, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		// The B operand benefits from the bitmap layout (Gustavson selects B
		// rows by A's column indices, and the bitmap gives O(1) row access
		// with word-level scans). A is consumed row-sequentially, so its CSR
		// form is already the right shape. A bitmap kernel that fails with a
		// recoverable fault falls through to the generic CSR path below.
		if !tran1 {
			_, handled, fault := runFallible(func() (struct{}, bool) {
				bm := b.bitmapForRead(format.HintMxM)
				if bm == nil {
					return struct{}{}, false
				}
				fmtBitmapOps.Add(1)
				if mask == nil && accumF == nil && plusTimesSemiring(op) {
					if r, ok := format.TryMxMPlusTimes(ad, bm); ok {
						fmtFastOps.Add(1)
						sp.NoteLayout("bitmap-fast")
						out := r.(*format.Bitmap[DC])
						// No mask and no accumulator: the product fully
						// overwrites C, so it can be adopted in whichever
						// layout C's recorded consumer hint favors — the
						// "materialize directly in the cheapest format"
						// payoff of the deferred queue. This closure runs on
						// a flush worker, so C's dimensions must come from
						// the lock-held accessor: a concurrent Resize
						// rewrites nr/nc eagerly.
						cnr, cnc := c.dims()
						if format.Choose(cnr, cnc, out.NNZ(), c.lastHint()) == format.BitmapKind {
							c.setDataBitmap(out)
						} else {
							c.setData(out.ToCSR())
							fmtConversions.Add(1)
						}
						return struct{}{}, true
					}
				}
				sp.NoteLayout("bitmap")
				t := format.SpGEMMBitmap(ad, bm, op.Mul.F, op.Add.Op.F, mm)
				sp.AddBytes(t.ApproxBytes())
				c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
				return struct{}{}, true
			})
			if handled {
				return nil
			}
			if fault != nil {
				execRetries.Add(1)
				sp.NoteRetry()
			}
		}
		bd := b.mdat()
		if tran1 {
			bd = b.transposed()
		}
		sp.NoteLayout("csr")
		t := sparse.SpGEMM(ad, bd, op.Mul.F, op.Add.Op.F, mm)
		sp.AddBytes(t.ApproxBytes())
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// MxV computes w ⊙= A ⊕.⊗ u (GrB_mxv). Without GrB_TRAN on INP0 a
// pull-style dot kernel is used (the mask skips whole rows); with it, a
// push-style kernel scatters the stored entries of u through the rows of A,
// doing work proportional to the edges incident on u's structure.
func MxV[DC, DA, DU, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op Semiring[DA, DU, DC], a *Matrix[DA], u *Vector[DU], desc *Descriptor) error {
	const name = "MxV"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || a == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !op.Defined() {
		return errf(UninitializedObject, name, "semiring not initialized")
	}
	am, an := a.nr, a.nc
	if desc.tran0() {
		am, an = an, am
	}
	if an != u.n {
		return errf(DimensionMismatch, name, "matrix has %d columns, vector has size %d", an, u.n)
	}
	if w.n != am {
		return errf(DimensionMismatch, name, "output has size %d, result has size %d", w.n, am)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&a.obj, &u.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	a.noteHint(format.HintMxV)
	sp := obs.Begin(name)
	var accumF func(DC, DC) DC
	if accum.Defined() {
		accumF = accum.F
	}
	// Fusion capabilities (fusion.go). Producer: unmasked, non-accumulating
	// mxv streams its (materialized-on-demand) product downstream. Consumer:
	// a fused upstream of u feeds the fused mxv kernels, which run on the
	// committed CSR store directly — the fused path trades the adaptive
	// format engine's alternate-layout kernels for eliding the intermediate.
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil && !accum.Defined() {
		fi.producer = mxvSource[DC]{compute: func() *sparse.Vec[DC] {
			if tran0 {
				return pushMxVDispatch(a, u.vdat(), op.Mul.F, op.Add.Op.F, nil, nil)
			}
			return dotMxVDispatch(a, u.vdat(), op, nil, nil)
		}}
	}
	// A mask aliasing u vetoes consumption (see fuseInfo.consume): the fused
	// kernel would resolve the mask from u's stale committed store while
	// streaming u's fresh values.
	if mask == nil || mask.obj.id != u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) {
			vs, ok := src.(vecSource[DU])
			if !ok {
				return nil, nil, false
			}
			fusedT := func(vm *sparse.VecMask) *sparse.Vec[DC] {
				n, idx, get := vs.vecElems()
				if tran0 {
					return sparse.FusedPushMxV(a.mdat(), idx, get, op.Mul.F, op.Add.Op.F, vm)
				}
				return sparse.FusedDotMxV(a.mdat(), n, idx, get, op.Mul.F, op.Add.Op.F, vm)
			}
			run := func() error {
				vm := resolveVecMask(mask, scmp)
				t := fusedT(vm)
				sp.NoteLayout("csr")
				sp.AddBytes(t.ApproxBytes())
				w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
				return nil
			}
			var chained any
			if mask == nil && !accum.Defined() {
				chained = mxvSource[DC]{compute: func() *sparse.Vec[DC] { return fusedT(nil) }}
			}
			return run, chained, true
		}
	}
	return enqueueFusable(name, &w.obj, reads, overwrites, format.HintMxV, sp, fi, func() error {
		vm := resolveVecMask(mask, scmp)
		var t *sparse.Vec[DC]
		if tran0 {
			t = pushMxVDispatch(a, u.vdat(), op.Mul.F, op.Add.Op.F, vm, sp)
		} else {
			t = dotMxVDispatch(a, u.vdat(), op, vm, sp)
		}
		sp.AddBytes(t.ApproxBytes())
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// VxM computes wᵀ ⊙= uᵀ ⊕.⊗ A (GrB_vxm). The descriptor's INP1 field
// selects transposition of A. Without it, a push-style kernel walks u's
// stored entries through the rows of A (the natural sparse-frontier
// expansion); with it, a pull-style dot kernel runs over the rows of A.
func VxM[DC, DU, DA, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], op Semiring[DU, DA, DC], u *Vector[DU], a *Matrix[DA], desc *Descriptor) error {
	const name = "VxM"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || a == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !op.Defined() {
		return errf(UninitializedObject, name, "semiring not initialized")
	}
	am, an := a.nr, a.nc
	if desc.tran1() {
		am, an = an, am
	}
	if u.n != am {
		return errf(DimensionMismatch, name, "vector has size %d, matrix has %d rows", u.n, am)
	}
	if w.n != an {
		return errf(DimensionMismatch, name, "output has size %d, result has size %d", w.n, an)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj, &a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran1, scmp, replace := desc.tran1(), desc.scmp(), desc.replace()
	flip := func(av DA, uv DU) DC { return op.Mul.F(uv, av) }
	// The flipped semiring drives the same dispatch as MxV; the builtin name
	// survives the flip, and plusTimesSemiring sample-evaluates both operand
	// orders, so the arithmetic fast path remains reachable.
	flipped := Semiring[DA, DU, DC]{Add: op.Add, Mul: BinaryOp[DA, DU, DC]{Name: op.Mul.Name, F: flip}}
	a.noteHint(format.HintMxV)
	sp := obs.Begin(name)
	var accumF func(DC, DC) DC
	if accum.Defined() {
		accumF = accum.F
	}
	// Fusion capabilities mirror MxV's, with the operand order flipped
	// through the same flipped semiring the unfused dispatch uses.
	fi := &fuseInfo{srcID: u.obj.id}
	if mask == nil && !accum.Defined() {
		fi.producer = mxvSource[DC]{compute: func() *sparse.Vec[DC] {
			if tran1 {
				return dotMxVDispatch(a, u.vdat(), flipped, nil, nil)
			}
			return pushMxVDispatch(a, u.vdat(), flip, op.Add.Op.F, nil, nil)
		}}
	}
	// A mask aliasing u vetoes consumption, exactly as in MxV.
	if mask == nil || mask.obj.id != u.obj.id {
		fi.consume = func(src any) (func() error, any, bool) {
			vs, ok := src.(vecSource[DU])
			if !ok {
				return nil, nil, false
			}
			fusedT := func(vm *sparse.VecMask) *sparse.Vec[DC] {
				n, idx, get := vs.vecElems()
				if tran1 {
					return sparse.FusedDotMxV(a.mdat(), n, idx, get, flip, op.Add.Op.F, vm)
				}
				return sparse.FusedPushMxV(a.mdat(), idx, get, flip, op.Add.Op.F, vm)
			}
			run := func() error {
				vm := resolveVecMask(mask, scmp)
				t := fusedT(vm)
				sp.NoteLayout("csr")
				sp.AddBytes(t.ApproxBytes())
				w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
				return nil
			}
			var chained any
			if mask == nil && !accum.Defined() {
				chained = mxvSource[DC]{compute: func() *sparse.Vec[DC] { return fusedT(nil) }}
			}
			return run, chained, true
		}
	}
	return enqueueFusable(name, &w.obj, reads, overwrites, format.HintMxV, sp, fi, func() error {
		vm := resolveVecMask(mask, scmp)
		var t *sparse.Vec[DC]
		if tran1 {
			t = dotMxVDispatch(a, u.vdat(), flipped, vm, sp)
		} else {
			t = pushMxVDispatch(a, u.vdat(), flip, op.Add.Op.F, vm, sp)
		}
		sp.AddBytes(t.ApproxBytes())
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

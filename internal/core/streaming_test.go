package core

import (
	stdctx "context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/stream"
)

// streamBatch builds a sealed-ready batch from (i, j, v) triples; v < 0
// means delete.
func streamBatch(ts ...[3]int) *stream.Batch[float64] {
	b := stream.NewBatch[float64]()
	for _, t := range ts {
		if t[2] < 0 {
			b.Delete(t[0], t[1])
		} else {
			b.Insert(t[0], t[1], float64(t[2]))
		}
	}
	return b
}

func TestApplyUpdateBatchBasic(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			withMode(t, mode, func() {
				m, _ := seededMatrix(t) // (0,1)=1 (1,2)=2 (2,3)=3 (3,0)=4
				if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
					t.Fatal(err)
				}
				if err := m.ApplyUpdateBatch(streamBatch([3]int{0, 1, 9}, [3]int{1, 2, -1}, [3]int{2, 2, 5})); err != nil {
					t.Fatalf("ApplyUpdateBatch: %v", err)
				}
				if err := Wait(); err != nil {
					t.Fatalf("Wait: %v", err)
				}
				if n, err := m.NVals(); err != nil || n != 4 {
					t.Fatalf("NVals = %d,%v; want 4", n, err)
				}
				if dn, err := m.DeltaNVals(); err != nil || dn != 3 {
					t.Fatalf("DeltaNVals = %d,%v; want 3 (manual policy keeps the overlay)", dn, err)
				}
				if v, err := m.ExtractElement(0, 1); err != nil || v != 9 {
					t.Fatalf("(0,1) = %v,%v; want overwrite 9", v, err)
				}
				if _, err := m.ExtractElement(1, 2); InfoOf(err) != NoValue {
					t.Fatalf("(1,2) must be deleted, got %v", err)
				}
				if v, err := m.ExtractElement(2, 2); err != nil || v != 5 {
					t.Fatalf("(2,2) = %v,%v; want insert 5", v, err)
				}
				// Explicit compaction publishes a new epoch and empties the overlay.
				e0, _ := m.EpochID()
				if err := m.Compact(); err != nil {
					t.Fatal(err)
				}
				if dn, err := m.DeltaNVals(); err != nil || dn != 0 {
					t.Fatalf("post-Compact DeltaNVals = %d,%v", dn, err)
				}
				if e1, _ := m.EpochID(); e1 != e0+1 {
					t.Fatalf("epoch %d -> %d; want +1", e0, e1)
				}
				if n, _ := m.NVals(); n != 4 {
					t.Fatalf("compaction changed NVals to %d", n)
				}
				// Out-of-range updates are rejected at call time.
				if err := m.ApplyUpdateBatch(streamBatch([3]int{7, 0, 1})); InfoOf(err) != InvalidIndex {
					t.Fatalf("out-of-range batch: %v", err)
				}
				if err := m.ApplyUpdateBatch(nil); InfoOf(err) != InvalidValue {
					t.Fatalf("nil batch: %v", err)
				}
			})
		})
	}
}

// TestStreamPendingOrder interleaves point updates (pending tuples) with
// batches: program order must decide who wins at every position.
func TestStreamPendingOrder(t *testing.T) {
	withMode(t, NonBlocking, func() {
		m, err := NewMatrix[float64](4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
			t.Fatal(err)
		}
		_ = m.SetElement(1, 0, 0) // pending before any batch
		if err := m.ApplyUpdateBatch(streamBatch([3]int{0, 0, 2}, [3]int{1, 1, 3})); err != nil {
			t.Fatal(err)
		}
		_ = m.SetElement(4, 1, 1)  // point update after the batch wins
		_ = m.RemoveElement(0, 0)  // and a point delete of a batch insert
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if _, err := m.ExtractElement(0, 0); InfoOf(err) != NoValue {
			t.Fatalf("(0,0): later RemoveElement must win, got %v", err)
		}
		if v, _ := m.ExtractElement(1, 1); v != 4 {
			t.Fatalf("(1,1) = %v; later SetElement must win", v)
		}
	})
}

// TestStreamHazardOrdering: queued readers of the matrix are hazard-ordered
// around a batch under the DAG scheduler — a Dup enqueued before the batch
// sees the old content, one enqueued after sees the new.
func TestStreamHazardOrdering(t *testing.T) {
	withMode(t, NonBlocking, func() {
		prevSched := SetScheduler(SchedDag)
		defer SetScheduler(prevSched)
		m, _ := seededMatrix(t)
		before, err := m.Dup()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyUpdateBatch(streamBatch([3]int{0, 0, 7})); err != nil {
			t.Fatal(err)
		}
		after, err := m.Dup()
		if err != nil {
			t.Fatal(err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if _, err := before.ExtractElement(0, 0); InfoOf(err) != NoValue {
			t.Fatalf("reader enqueued before the batch saw the update: %v", err)
		}
		if v, err := after.ExtractElement(0, 0); err != nil || v != 7 {
			t.Fatalf("reader enqueued after the batch missed it: %v,%v", v, err)
		}
	})
}

// TestStreamEpochIsolation: a pinned epoch keeps serving its snapshot while
// batches land and merges publish new state.
func TestStreamEpochIsolation(t *testing.T) {
	withMode(t, NonBlocking, func() {
		m, _ := seededMatrix(t)
		if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyUpdateBatch(streamBatch([3]int{2, 2, 5})); err != nil {
			t.Fatal(err)
		}
		e, err := m.PinEpoch()
		if err != nil {
			t.Fatalf("PinEpoch: %v", err)
		}
		if e.NVals() != 5 || e.DeltaNVals() != 1 {
			t.Fatalf("epoch NVals %d DeltaNVals %d; want 5, 1", e.NVals(), e.DeltaNVals())
		}
		// Mutate heavily after the pin: overwrite, delete, compact.
		if err := m.ApplyUpdateBatch(streamBatch([3]int{2, 2, -1}, [3]int{0, 0, 8})); err != nil {
			t.Fatal(err)
		}
		if err := m.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := Wait(); err != nil {
			t.Fatal(err)
		}
		if v, ok := e.Get(2, 2); !ok || v != 5 {
			t.Fatalf("pinned epoch lost its snapshot: (2,2) = %v,%v", v, ok)
		}
		if _, ok := e.Get(0, 0); ok {
			t.Fatalf("pinned epoch sees a post-pin insert")
		}
		if _, err := m.ExtractElement(2, 2); InfoOf(err) != NoValue {
			t.Fatalf("live matrix must see the post-pin delete, got %v", err)
		}
		// A fresh pin reflects the compacted state and the advanced epoch.
		e2, err := m.PinEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if e2.ID() <= e.ID() {
			t.Fatalf("epoch id did not advance: %d -> %d", e.ID(), e2.ID())
		}
		if e2.DeltaNVals() != 0 {
			t.Fatalf("post-compaction pin still has an overlay: %d", e2.DeltaNVals())
		}
	})
}

// TestStreamMergePolicy: the size and age triggers compact automatically and
// advance the epoch.
func TestStreamMergePolicy(t *testing.T) {
	withMode(t, NonBlocking, func() {
		m, err := NewMatrix[float64](64, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.SetMergePolicy(stream.Policy{MaxBatches: 3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := m.ApplyUpdateBatch(streamBatch([3]int{i, i, i + 1})); err != nil {
				t.Fatal(err)
			}
		}
		if e, err := m.EpochID(); err != nil || e != 1 {
			t.Fatalf("age trigger: epoch %d,%v; want 1", e, err)
		}
		if dn, _ := m.DeltaNVals(); dn != 0 {
			t.Fatalf("age trigger left %d overlay entries", dn)
		}
		if _, err := m.SetMergePolicy(stream.Policy{MaxDeltaNNZ: 4}); err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyUpdateBatch(streamBatch([3]int{9, 1, 1}, [3]int{9, 2, 1}, [3]int{9, 3, 1}, [3]int{9, 4, 1})); err != nil {
			t.Fatal(err)
		}
		if e, err := m.EpochID(); err != nil || e != 2 {
			t.Fatalf("size trigger: epoch %d,%v; want 2", e, err)
		}
		if n, _ := m.NVals(); n != 7 {
			t.Fatalf("NVals = %d, want 7", n)
		}
	})
}

// TestStreamFaultRollback: a fault inside the absorb or merge kernel rolls
// the matrix back to its committed pre-batch content and invalidates it; a
// full overwrite rehabilitates, and a re-applied batch then lands.
func TestStreamFaultRollback(t *testing.T) {
	for _, site := range []string{"stream.kernel.absorb", "stream.kernel.merge", "stream.alloc.delta"} {
		t.Run(site, func(t *testing.T) {
			withMode(t, NonBlocking, func() {
				m, _ := seededMatrix(t)
				// Eager merge so the batch's op body reaches the merge kernel too.
				if _, err := m.SetMergePolicy(stream.Eager()); err != nil {
					t.Fatal(err)
				}
				if err := Wait(); err != nil {
					t.Fatal(err)
				}
				pre := committedTuples(m)
				withFaults(t, 1, faults.Rule{Site: site, Kind: faults.KernelErr, Times: 1})
				if err := m.ApplyUpdateBatch(streamBatch([3]int{0, 0, 7})); err != nil {
					t.Fatal(err)
				}
				if err := Wait(); err == nil {
					t.Fatalf("fault at %s did not surface from Wait", site)
				}
				if got := committedTuples(m); len(got) != len(pre) {
					t.Fatalf("rollback incomplete: %v vs %v", got, pre)
				} else {
					for k, v := range pre {
						if got[k] != v {
							t.Fatalf("rollback corrupted (%d,%d): %v vs %v", k.i, k.j, got[k], v)
						}
					}
				}
				if _, err := m.NVals(); InfoOf(err) != InvalidObject {
					t.Fatalf("faulted matrix must be invalid, got %v", err)
				}
				// Rehabilitate with a full overwrite, then the batch succeeds
				// (the single-shot rule is exhausted).
				if err := m.Clear(); err != nil {
					t.Fatal(err)
				}
				if err := m.ApplyUpdateBatch(streamBatch([3]int{0, 0, 7})); err != nil {
					t.Fatal(err)
				}
				if err := Wait(); err != nil {
					t.Fatalf("post-rehabilitation Wait: %v", err)
				}
				if v, err := m.ExtractElement(0, 0); err != nil || v != 7 {
					t.Fatalf("post-rehabilitation (0,0) = %v,%v", v, err)
				}
			})
		})
	}
}

// TestStreamedEqualsRebuildCore: the differential rebuild oracle at the core
// layer — a random schedule of batches, point updates, and compactions must
// leave the matrix byte-identical to one built from scratch with the final
// content. Runs under every scheduler; `go test -race` covers the
// fault-free concurrency of the flush machinery it drives.
func TestStreamedEqualsRebuildCore(t *testing.T) {
	for _, sched := range []Scheduler{SchedSequential, SchedDag} {
		t.Run(sched.String(), func(t *testing.T) {
			withMode(t, NonBlocking, func() {
				prevSched := SetScheduler(sched)
				defer SetScheduler(prevSched)
				rng := rand.New(rand.NewSource(99))
				const n = 40
				m, err := NewMatrix[float64](n, n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.SetMergePolicy(stream.Policy{MaxDeltaNNZ: 50}); err != nil {
					t.Fatal(err)
				}
				model := map[key]float64{}
				for step := 0; step < 30; step++ {
					b := stream.NewBatch[float64]()
					for k := 0; k < 25; k++ {
						i, j := rng.Intn(n), rng.Intn(n)
						if rng.Float64() < 0.3 {
							b.Delete(i, j)
							delete(model, key{i, j})
						} else {
							v := float64(rng.Intn(99) + 1)
							b.Insert(i, j, v)
							model[key{i, j}] = v
						}
					}
					if err := m.ApplyUpdateBatch(b); err != nil {
						t.Fatal(err)
					}
					if step%7 == 3 { // interleaved point updates
						i, j := rng.Intn(n), rng.Intn(n)
						v := float64(rng.Intn(99) + 1)
						if err := m.SetElement(v, i, j); err != nil {
							t.Fatal(err)
						}
						model[key{i, j}] = v
					}
					if step%11 == 5 {
						if err := m.Compact(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := Wait(); err != nil {
					t.Fatalf("Wait: %v", err)
				}

				rebuilt, err := NewMatrix[float64](n, n)
				if err != nil {
					t.Fatal(err)
				}
				var is, js []int
				var vs []float64
				for k, v := range model {
					is, js, vs = append(is, k.i), append(js, k.j), append(vs, v)
				}
				if err := rebuilt.Build(is, js, vs, NoAccum[float64]()); err != nil {
					t.Fatal(err)
				}

				gi, gj, gv, err := m.ExtractTuples()
				if err != nil {
					t.Fatal(err)
				}
				ri, rj, rv, err := rebuilt.ExtractTuples()
				if err != nil {
					t.Fatal(err)
				}
				if len(gi) != len(ri) {
					t.Fatalf("nnz %d vs rebuilt %d", len(gi), len(ri))
				}
				for k := range gi {
					if gi[k] != ri[k] || gj[k] != rj[k] || gv[k] != rv[k] {
						t.Fatalf("tuple %d: (%d,%d,%v) vs rebuilt (%d,%d,%v)",
							k, gi[k], gj[k], gv[k], ri[k], rj[k], rv[k])
					}
				}
			})
		})
	}
}

// TestIngestDuringFlushRace: update batches land on a matrix while another
// goroutine keeps flushing reads of the same matrix through the scheduler —
// the engine-internal interleavings the race detector must find clean. Runs
// at GOMAXPROCS 1 and 4 under both flush schedulers.
func TestIngestDuringFlushRace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		procs int
		sched Scheduler
	}{
		{"Sequential1", 1, SchedSequential},
		{"Sequential4", 4, SchedSequential},
		{"Dag1", 1, SchedDag},
		{"Dag4", 4, SchedDag},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(tc.procs))
			withMode(t, NonBlocking, func() {
				prevSched := SetScheduler(tc.sched)
				defer SetScheduler(prevSched)
				prevElide := SetElision(false)
				defer SetElision(prevElide)
				const n = 32
				m, err := NewMatrix[float64](n, n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.SetMergePolicy(stream.Policy{MaxDeltaNNZ: 64}); err != nil {
					t.Fatal(err)
				}
				s := plusTimesF64(t)
				src, _ := NewVector[float64](n)
				for i := 0; i < n; i++ {
					_ = src.SetElement(1, i)
				}
				out, _ := NewVector[float64](n)
				done := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						// DAG flushes that read m while batches land on it.
						_ = MxV(out, NoMaskV, NoAccum[float64](), s, m, src, nil)
						_ = Wait()
					}
				}()
				rng := rand.New(rand.NewSource(7))
				for step := 0; step < 400; step++ {
					b := stream.NewBatch[float64]()
					for k := 0; k < 8; k++ {
						if rng.Float64() < 0.25 {
							b.Delete(rng.Intn(n), rng.Intn(n))
						} else {
							b.Insert(rng.Intn(n), rng.Intn(n), 1)
						}
					}
					if err := m.ApplyUpdateBatch(b); err != nil {
						t.Error(err)
						break
					}
					if step%50 == 25 {
						if err := m.Compact(); err != nil {
							t.Error(err)
							break
						}
					}
				}
				close(done)
				wg.Wait()
				if err := Wait(); err != nil {
					t.Fatalf("final Wait: %v", err)
				}
				if _, err := m.NVals(); err != nil {
					t.Fatalf("NVals after race: %v", err)
				}
			})
		})
	}
}

// TestServeDuringIngestRace is the serving-layer interleaving: one goroutine
// pins epochs and walks their tuples (the snapshot path), another issues
// queries whose flushes carry short deadlines (so WaitContext cancellation
// races the absorbs), while the main goroutine churns the matrix with update
// batches and compactions. The writer re-applies after any abandoned absorb —
// the at-least-once discipline the serve engine uses — so the store must end
// the run valid and readable. Runs at GOMAXPROCS 1 and 4 under both flush
// schedulers; the race detector must find every interleaving clean.
func TestServeDuringIngestRace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		procs int
		sched Scheduler
	}{
		{"Sequential1", 1, SchedSequential},
		{"Sequential4", 4, SchedSequential},
		{"Dag1", 1, SchedDag},
		{"Dag4", 4, SchedDag},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(tc.procs))
			withMode(t, NonBlocking, func() {
				prevSched := SetScheduler(tc.sched)
				defer SetScheduler(prevSched)
				prevElide := SetElision(false)
				defer SetElision(prevElide)
				const n = 32
				m, err := NewMatrix[float64](n, n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.SetMergePolicy(stream.Manual()); err != nil {
					t.Fatal(err)
				}
				s := plusTimesF64(t)
				src, _ := NewVector[float64](n)
				for i := 0; i < n; i++ {
					_ = src.SetElement(1, i)
				}
				done := make(chan struct{})
				var wg sync.WaitGroup

				// Snapshot path: pin epochs and walk their tuples.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						ep, err := m.PinEpoch()
						if err != nil {
							continue // poisoned mid-recovery; the writer heals it
						}
						ri, _, _ := ep.Tuples()
						_ = len(ri)
						_, _ = ep.NVals(), ep.DeltaNVals()
					}
				}()

				// Query path: flushes under expiring deadlines, so WaitContext
				// cancellation races the writer's absorbs.
				wg.Add(1)
				go func() {
					defer wg.Done()
					out, _ := NewVector[float64](n)
					i := 0
					for {
						select {
						case <-done:
							return
						default:
						}
						_ = MxV(out, NoMaskV, NoAccum[float64](), s, m, src, nil)
						i++
						if i%3 == 0 {
							ctx, cancel := stdctx.WithCancel(stdctx.Background())
							cancel()
							_ = WaitContext(ctx)
						} else {
							_ = WaitContext(stdctx.Background())
						}
					}
				}()

				// Writer: batches plus compactions, re-applying after any
				// abandoned absorb (batches are last-wins idempotent).
				rng := rand.New(rand.NewSource(11))
				for step := 0; step < 300; step++ {
					b := stream.NewBatch[float64]()
					for k := 0; k < 8; k++ {
						if rng.Float64() < 0.25 {
							b.Delete(rng.Intn(n), rng.Intn(n))
						} else {
							b.Insert(rng.Intn(n), rng.Intn(n), 1)
						}
					}
					for attempt := 0; attempt < 8; attempt++ {
						if err := m.ApplyUpdateBatch(b); err == nil {
							if m.Wait() == nil {
								break
							}
						}
						if err := m.Revalidate(); err != nil {
							t.Errorf("Revalidate: %v", err)
							break
						}
					}
					if step%60 == 30 {
						_ = m.Compact() // may fail over a racing cancel; next loop heals
					}
				}
				close(done)
				wg.Wait()
				if err := m.Revalidate(); err != nil {
					t.Fatalf("final Revalidate: %v", err)
				}
				if _, err := m.NVals(); err != nil {
					t.Fatalf("NVals after race: %v", err)
				}
			})
		})
	}
}

package core

import (
	"math/rand"
	"testing"

	"graphblas/internal/format"
)

// TestFormatForcedEquivalence runs the multiply family with each storage
// layout pinned on the matrix operand and checks the results are identical:
// format selection must never change semantics.
func TestFormatForcedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := plusTimesF64(t)
	for _, fill := range []float64{0.02, 0.3, 0.7} {
		a, _ := newTestMatrix(t, rng, 60, 50, fill)
		b, _ := newTestMatrix(t, rng, 50, 40, fill)
		u, err := NewVector[float64](50)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if rng.Float64() < 0.5 {
				if err := u.SetElement(float64(rng.Intn(9)+1), i); err != nil {
					t.Fatal(err)
				}
			}
		}

		runMxV := func(k format.Kind) dmat {
			t.Helper()
			if err := a.SetFormat(k); err != nil {
				t.Fatalf("SetFormat(%v): %v", k, err)
			}
			w, err := NewVector[float64](60)
			if err != nil {
				t.Fatal(err)
			}
			if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
				t.Fatalf("MxV under %v: %v", k, err)
			}
			is, vs, err := w.ExtractTuples()
			if err != nil {
				t.Fatal(err)
			}
			d := dmat{}
			for p := range is {
				d[key{is[p], 0}] = vs[p]
			}
			return d
		}
		want := runMxV(format.CSRKind)
		for _, k := range []format.Kind{format.BitmapKind, format.HyperKind, format.Auto} {
			equalDense(t, runMxV(k), want, "MxV/"+k.String())
		}
		if err := a.SetFormat(format.Auto); err != nil {
			t.Fatal(err)
		}

		runMxM := func(k format.Kind) dmat {
			t.Helper()
			if err := b.SetFormat(k); err != nil {
				t.Fatalf("SetFormat(%v): %v", k, err)
			}
			c, err := NewMatrix[float64](60, 40)
			if err != nil {
				t.Fatal(err)
			}
			if err := MxM(c, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
				t.Fatalf("MxM under %v: %v", k, err)
			}
			return denseOf(t, c)
		}
		wantM := runMxM(format.CSRKind)
		for _, k := range []format.Kind{format.BitmapKind, format.HyperKind, format.Auto} {
			equalDense(t, runMxM(k), wantM, "MxM/"+k.String())
		}
		if err := b.SetFormat(format.Auto); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFormatMaskedAccumEquivalence checks that the bitmap SpGEMM path agrees
// with the CSR path under masks (plain and complemented) and an accumulator,
// where the specialized adoption path must NOT be taken.
func TestFormatMaskedAccumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := plusTimesF64(t)
	a, _ := newTestMatrix(t, rng, 30, 25, 0.2)
	b, _ := newTestMatrix(t, rng, 25, 35, 0.5)
	mask, _, _ := newTestMask(t, rng, 30, 35, 0.4, 0.7)
	accum := plusF64()

	for _, scmp := range []bool{false, true} {
		var desc *Descriptor
		if scmp {
			desc = Desc().CompMask()
		}
		results := map[format.Kind]dmat{}
		for _, k := range []format.Kind{format.CSRKind, format.BitmapKind} {
			if err := b.SetFormat(k); err != nil {
				t.Fatal(err)
			}
			crng := rand.New(rand.NewSource(31))
			c, _ := newTestMatrix(t, crng, 30, 35, 0.1)
			if err := MxM(c, mask, accum, s, a, b, desc); err != nil {
				t.Fatalf("MxM masked under %v: %v", k, err)
			}
			results[k] = denseOf(t, c)
		}
		equalDense(t, results[format.BitmapKind], results[format.CSRKind], "masked/accum MxM bitmap vs csr")
	}
	if err := b.SetFormat(format.Auto); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveSelectionAndStats checks the engine's observable behavior: the
// policy picks the bitmap layout for a saturated operand, the specialized
// kernels actually run (stats counters move), and Format reports the choice.
func TestAdaptiveSelectionAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s := plusTimesF64(t)
	a, _ := newTestMatrix(t, rng, 64, 64, 0.5) // fill far above every bitmap threshold
	u, err := NewVector[float64](64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := u.SetElement(1, i); err != nil {
			t.Fatal(err)
		}
	}
	before := StatsSnapshot()
	w, err := NewVector[float64](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
		t.Fatal(err)
	}
	after := StatsSnapshot()
	if after.BitmapKernels <= before.BitmapKernels {
		t.Errorf("BitmapKernels did not advance: %d -> %d", before.BitmapKernels, after.BitmapKernels)
	}
	if after.FastKernels <= before.FastKernels {
		t.Errorf("FastKernels did not advance: %d -> %d", before.FastKernels, after.FastKernels)
	}
	if after.FormatConversions <= before.FormatConversions {
		t.Errorf("FormatConversions did not advance: %d -> %d", before.FormatConversions, after.FormatConversions)
	}
	k, err := a.Format()
	if err != nil {
		t.Fatal(err)
	}
	if k != format.BitmapKind {
		t.Errorf("Format() = %v, want bitmap for a dense MxV operand", k)
	}
}

// TestSetFormatValidation pins the SetFormat error cases.
func TestSetFormatValidation(t *testing.T) {
	m, err := NewMatrix[float64](4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFormat(format.Kind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
	big, err := NewMatrix[float64](1<<16, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.SetFormat(format.BitmapKind); err == nil {
		t.Error("forcing bitmap past the cell cap accepted")
	}
	if err := big.SetFormat(format.HyperKind); err != nil {
		t.Errorf("forcing hypersparse rejected: %v", err)
	}
}

// TestDeferredBitmapAdoption is the end-to-end check of the "materialize in
// the cheapest format" path: in nonblocking mode a plus-times MxM whose
// consumer is a multiply lands its result bitmap-resident (no CSR form
// built), and converting back for extraction still yields the right values.
func TestDeferredBitmapAdoption(t *testing.T) {
	withMode(t, NonBlocking, func() {
		rng := rand.New(rand.NewSource(41))
		s := plusTimesF64(t)
		a, da := newTestMatrix(t, rng, 40, 40, 0.3)
		b, db := newTestMatrix(t, rng, 40, 40, 0.6)
		c, err := NewMatrix[float64](40, 40)
		if err != nil {
			t.Fatal(err)
		}
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
			t.Fatal(err)
		}
		w, err := NewVector[float64](40)
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewVector[float64](40)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if err := u.SetElement(1, i); err != nil {
				t.Fatal(err)
			}
		}
		// The MxV enqueued after the MxM is C's next consumer; its hint must
		// make the deferred MxM materialize C as bitmap.
		if err := MxV(w, NoMaskV, NoAccum[float64](), s, c, u, nil); err != nil {
			t.Fatal(err)
		}
		if err := Wait(); err != nil {
			t.Fatal(err)
		}
		c.mu.Lock()
		bitmapResident := c.data == nil && c.bcache != nil
		c.mu.Unlock()
		if !bitmapResident {
			t.Error("deferred plus-times MxM result was not adopted bitmap-resident")
		}
		// Correctness of the whole chain against the dense oracle.
		want := oracleMxMWrite(dmat{}, da, 40, 40, db, 40, false, false, nil, nil, false, false, false, false)
		equalDense(t, denseOf(t, c), want, "deferred MxM content")
		is, vs, err := w.ExtractTuples()
		if err != nil {
			t.Fatal(err)
		}
		for p, i := range is {
			sum := 0.0
			for j := 0; j < 40; j++ {
				sum += want[key{i, j}]
			}
			if vs[p] != sum {
				t.Fatalf("w[%d] = %v, want %v", i, vs[p], sum)
			}
		}
	})
}

// TestUserOpNamedTimesNotFastPathed guards the fast-path gate: a user
// operator that reuses the builtin names but computes something else must
// not be routed through the arithmetic kernels.
func TestUserOpNamedTimesNotFastPathed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, _ := newTestMatrix(t, rng, 32, 32, 0.6)
	if err := a.SetFormat(format.BitmapKind); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.SetFormat(format.Auto) }()
	u, err := NewVector[float64](32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := u.SetElement(2, i); err != nil {
			t.Fatal(err)
		}
	}
	// "times" that is actually max, "plus" that is actually min: the sample
	// evaluation must reject these and take the generic kernel.
	fake := Semiring[float64, float64, float64]{
		Add: Monoid[float64]{Op: BinaryOp[float64, float64, float64]{Name: "plus", F: func(x, y float64) float64 {
			if x < y {
				return x
			}
			return y
		}}},
		Mul: BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 {
			if x > y {
				return x
			}
			return y
		}},
	}
	w, err := NewVector[float64](32)
	if err != nil {
		t.Fatal(err)
	}
	before := StatsSnapshot()
	if err := MxV(w, NoMaskV, NoAccum[float64](), fake, a, u, nil); err != nil {
		t.Fatal(err)
	}
	after := StatsSnapshot()
	if after.FastKernels != before.FastKernels {
		t.Error("mis-named user semiring took the arithmetic fast path")
	}
	// min-over-max result: every stored row yields min over k of max(a_ik, 2).
	is, vs, err := w.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	am := map[key]float64{}
	ais, ajs, avs, err := a.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	for p := range ais {
		am[key{ais[p], ajs[p]}] = avs[p]
	}
	for p, i := range is {
		best := 0.0
		has := false
		for j := 0; j < 32; j++ {
			if v, ok := am[key{i, j}]; ok {
				x := v
				if x < 2 {
					x = 2
				}
				if !has || x < best {
					best = x
					has = true
				}
			}
		}
		if !has || vs[p] != best {
			t.Fatalf("row %d: got %v want %v", i, vs[p], best)
		}
	}
}

// TestPointUpdatesInvalidateFormatCaches checks that SetElement/Remove on a
// bitmap-cached (and bitmap-resident) matrix is reflected in later reads.
func TestPointUpdatesInvalidateFormatCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	s := plusTimesF64(t)
	a, _ := newTestMatrix(t, rng, 16, 16, 0.6)
	u, err := NewVector[float64](16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := u.SetElement(1, i); err != nil {
			t.Fatal(err)
		}
	}
	w, err := NewVector[float64](16)
	if err != nil {
		t.Fatal(err)
	}
	// First multiply builds the bitmap cache.
	if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
		t.Fatal(err)
	}
	// Point update, then read back through the element path and the kernel
	// path; both must see the new value.
	if err := a.SetElement(123, 3, 3); err != nil {
		t.Fatal(err)
	}
	if v, err := a.ExtractElement(3, 3); err != nil || v != 123 {
		t.Fatalf("ExtractElement after SetElement: %v, %v", v, err)
	}
	if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
		t.Fatal(err)
	}
	is, vs, err := w.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	sum3 := 0.0
	ais, ajs, avs, err := a.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	for p := range ais {
		if ais[p] == 3 {
			sum3 += avs[p]
		}
	}
	seen := false
	for p, i := range is {
		if i == 3 {
			seen = true
			if vs[p] != sum3 {
				t.Fatalf("row 3 after update: got %v want %v", vs[p], sum3)
			}
		}
	}
	_ = ajs
	if !seen {
		t.Fatal("row 3 missing from result")
	}
}

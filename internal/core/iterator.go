package core

import "graphblas/internal/sparse"

// Entry iterators (a GxB_Iterator-style extension): stream the stored
// entries of a collection in order without materializing tuple arrays.
// Creating an iterator forces completion (it reads values out of the opaque
// object) and snapshots the storage: mutations made after creation do not
// affect an in-flight iteration, which therefore always sees a consistent
// state.

// MatrixIterator streams matrix entries in row-major order.
type MatrixIterator[D any] struct {
	data *sparse.CSR[D]
	row  int
	pos  int
}

// MatrixIterate returns an iterator over m's stored entries.
func MatrixIterate[D any](m *Matrix[D]) (*MatrixIterator[D], error) {
	const op = "MatrixIterate"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return nil, err
	}
	if err := m.obj.engine().force(op); err != nil {
		return nil, err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return nil, err
	}
	return &MatrixIterator[D]{data: m.mdat()}, nil
}

// Next returns the next entry; ok is false when iteration is complete.
func (it *MatrixIterator[D]) Next() (i, j int, v D, ok bool) {
	d := it.data
	for it.pos >= d.Ptr[it.row+1] {
		if it.row+1 >= d.NRows {
			var zero D
			return 0, 0, zero, false
		}
		it.row++
	}
	i, j, v = it.row, d.ColIdx[it.pos], d.Val[it.pos]
	it.pos++
	return i, j, v, true
}

// Seek positions the iterator at the start of the given row; subsequent
// Next calls stream that row onward.
func (it *MatrixIterator[D]) Seek(row int) error {
	if row < 0 || row >= it.data.NRows {
		return errf(InvalidIndex, "MatrixIterator.Seek", "row %d out of range [0,%d)", row, it.data.NRows)
	}
	it.row = row
	it.pos = it.data.Ptr[row]
	return nil
}

// VectorIterator streams vector entries in index order.
type VectorIterator[D any] struct {
	data *sparse.Vec[D]
	pos  int
}

// VectorIterate returns an iterator over v's stored entries.
func VectorIterate[D any](v *Vector[D]) (*VectorIterator[D], error) {
	const op = "VectorIterate"
	if err := objOK(&v.obj, op, "v"); err != nil {
		return nil, err
	}
	if err := v.obj.engine().force(op); err != nil {
		return nil, err
	}
	if err := invalidMark(&v.obj, op); err != nil {
		return nil, err
	}
	return &VectorIterator[D]{data: v.vdat()}, nil
}

// Next returns the next entry; ok is false when iteration is complete.
func (it *VectorIterator[D]) Next() (i int, v D, ok bool) {
	if it.pos >= len(it.data.Idx) {
		var zero D
		return 0, zero, false
	}
	i, v = it.data.Idx[it.pos], it.data.Val[it.pos]
	it.pos++
	return i, v, true
}

// MatrixForEach calls f for every stored entry of m in row-major order; a
// false return stops the iteration early. Convenience over MatrixIterate.
func MatrixForEach[D any](m *Matrix[D], f func(i, j int, v D) bool) error {
	it, err := MatrixIterate(m)
	if err != nil {
		return err
	}
	for {
		i, j, v, ok := it.Next()
		if !ok {
			return nil
		}
		if !f(i, j, v) {
			return nil
		}
	}
}

// VectorForEach calls f for every stored entry of v in index order; a false
// return stops the iteration early.
func VectorForEach[D any](v *Vector[D], f func(i int, x D) bool) error {
	it, err := VectorIterate(v)
	if err != nil {
		return err
	}
	for {
		i, x, ok := it.Next()
		if !ok {
			return nil
		}
		if !f(i, x) {
			return nil
		}
	}
}

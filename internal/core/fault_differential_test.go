package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/parallel"
)

// The differential sweep (and the fuzz target below) runs the same program
// under the same fault schedule in blocking and nonblocking mode and demands
// identical observable outcomes: per-object final contents (or invalidity
// class) and the sequence error log. This is the executable statement of
// Section IV's equivalence — deferral may reorder *when* work happens, never
// *what* the surviving objects hold — extended to failing executions.
//
// Programs use only op-level fault sites (method names). Kernel-level sites
// are mode-dependent by design: the nonblocking engine's hint propagation
// legitimately picks different storage kernels than blocking mode, so a
// kernel-site schedule would not be comparable across modes.

// faultOp is one step of a mode-independent program over a pool of square
// matrices: dst = op(s1 [, s2]).
type faultOp struct {
	kind int // 0 MxM, 1 Transpose, 2 EWiseAddM, 3 ApplyM
	dst  int
	s1   int
	s2   int
}

var faultOpNames = [4]string{"MxM", "Transpose", "EWiseAddM", "ApplyM"}

const (
	diffPool = 4 // matrices in the object pool
	diffDim  = 5 // pool matrices are diffDim×diffDim
)

// normalizeFaultOp keeps programs inside the API's happy path so the only
// failures are injected ones: no aliasing of output and input.
func normalizeFaultOp(op faultOp) faultOp {
	op.kind %= len(faultOpNames)
	op.dst %= diffPool
	op.s1 %= diffPool
	op.s2 %= diffPool
	if op.s1 == op.dst {
		op.s1 = (op.s1 + 1) % diffPool
	}
	if op.s2 == op.dst {
		op.s2 = (op.s2 + 1) % diffPool
	}
	return op
}

// runFaultProgram executes prog in the given mode and flush scheduler under
// the fault plan and returns a printable fingerprint of every cross-mode-
// comparable outcome. Values are small integers, so all float64 arithmetic
// is exact and results do not depend on which storage kernel performed them.
// With sched == SchedDag the worker bound is raised so the DAG path really
// engages (and really runs operations concurrently).
func runFaultProgram(t *testing.T, mode Mode, sched Scheduler, prog []faultOp, seed int64, rules []faults.Rule) string {
	t.Helper()
	ResetForTesting()
	if err := Init(mode); err != nil {
		t.Fatalf("Init(%v): %v", mode, err)
	}
	SetScheduler(sched)
	if sched == SchedDag {
		prev := parallel.SetMaxWorkers(4)
		defer parallel.SetMaxWorkers(prev)
	}
	defer func() {
		faults.Disable()
		ResetForTesting()
		if err := Init(Blocking); err != nil {
			t.Fatalf("re-Init: %v", err)
		}
	}()
	SetElision(false) // keep per-site call counts aligned across modes

	// Identical pool in both modes, committed before the plan is armed.
	rng := rand.New(rand.NewSource(99))
	pool := make([]*Matrix[float64], diffPool)
	for i := range pool {
		pool[i], _ = newTestMatrix(t, rng, diffDim, diffDim, 0.4)
	}
	if err := Wait(); err != nil {
		t.Fatalf("pool Wait: %v", err)
	}

	s := plusTimesF64(t)
	scale := UnaryOp[float64, float64]{Name: "scale", F: func(x float64) float64 { return 2 * x }}
	faults.Configure(seed, rules...)

	for _, op := range prog {
		op = normalizeFaultOp(op)
		dst, a, b := pool[op.dst], pool[op.s1], pool[op.s2]
		switch op.kind {
		case 0:
			_ = MxM(dst, NoMask, NoAccum[float64](), s, a, b, nil)
		case 1:
			_ = Transpose(dst, NoMask, NoAccum[float64](), a, nil)
		case 2:
			_ = EWiseAddM(dst, NoMask, NoAccum[float64](), plusF64(), a, b, nil)
		case 3:
			_ = ApplyM(dst, NoMask, NoAccum[float64](), scale, a, nil)
		}
	}
	waitErr := Wait()
	log := SequenceErrors()

	// Wait's contract differs by mode — blocking reports per method, Wait
	// returns nil; nonblocking returns the sequence's first error — but the
	// log must agree with it.
	if mode == NonBlocking {
		if len(log) > 0 && InfoOf(waitErr) != InfoOf(log[0].Err) {
			t.Fatalf("Wait error %v disagrees with log head %v", waitErr, log[0])
		}
		if len(log) == 0 && waitErr != nil {
			t.Fatalf("Wait error %v with empty log", waitErr)
		}
	} else if waitErr != nil {
		t.Fatalf("blocking Wait returned %v", waitErr)
	}

	faults.Disable() // fingerprinting below must not inject
	var sb strings.Builder
	for _, e := range log {
		fmt.Fprintf(&sb, "err pos=%d op=%s class=%v\n", e.Pos, e.Op, InfoOf(e.Err))
	}
	for i, m := range pool {
		if m.err != nil {
			fmt.Fprintf(&sb, "obj%d invalid class=%v\n", i, InfoOf(m.err))
		} else {
			fmt.Fprintf(&sb, "obj%d valid\n", i)
		}
		// Committed contents compare even for invalid objects: rollback
		// guarantees they hold exactly the prior committed state, which is
		// itself mode-independent.
		d := committedTuples(m)
		keys := make([]key, 0, len(d))
		for k := range d {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(x, y int) bool {
			return keys[x].i < keys[y].i || (keys[x].i == keys[y].i && keys[x].j < keys[y].j)
		})
		for _, k := range keys {
			fmt.Fprintf(&sb, "  (%d,%d)=%v\n", k.i, k.j, d[k])
		}
	}
	return sb.String()
}

// TestFaults_DifferentialSweep: random programs under a mixed deterministic/
// probabilistic fault plan must leave both modes in identical states.
func TestFaults_DifferentialSweep(t *testing.T) {
	rules := []faults.Rule{
		{Site: "MxM", Kind: faults.OOM, Every: 2},
		{Site: "ApplyM", Kind: faults.KernelErr, After: 1},
		{Site: "EWiseAddM", Kind: faults.OOM, Prob: 0.5},
		{Site: "Transpose", Kind: faults.KernelErr, Times: 1},
	}
	rng := rand.New(rand.NewSource(2024))
	for sweep := 0; sweep < 8; sweep++ {
		n := 4 + rng.Intn(9)
		prog := make([]faultOp, n)
		for i := range prog {
			prog[i] = faultOp{kind: rng.Intn(4), dst: rng.Intn(diffPool), s1: rng.Intn(diffPool), s2: rng.Intn(diffPool)}
		}
		seed := rng.Int63()
		blk := runFaultProgram(t, Blocking, SchedSequential, prog, seed, rules)
		nbl := runFaultProgram(t, NonBlocking, SchedSequential, prog, seed, rules)
		dag := runFaultProgram(t, NonBlocking, SchedDag, prog, seed, rules)
		if blk != nbl {
			t.Fatalf("sweep %d diverged (prog %v)\n-- blocking --\n%s-- nonblocking --\n%s", sweep, prog, blk, nbl)
		}
		if blk != dag {
			t.Fatalf("sweep %d DAG diverged (prog %v)\n-- blocking --\n%s-- dag --\n%s", sweep, prog, blk, dag)
		}
		if !strings.Contains(blk, "err pos=") {
			t.Logf("sweep %d injected nothing", sweep)
		}
	}
}

// FuzzFaultSchedule derives a short program and fault plan from fuzz input
// and asserts the same cross-mode equivalence. `go test` runs the seed
// corpus; CI's fuzz-smoke job explores further with -fuzz.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 0, 1, 2, 3, 1, 2, 3, 0})
	f.Add([]byte{7, 3, 0, 0, 2, 1, 3, 2, 0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		// Header: one fault rule + schedule seed.
		rule := faults.Rule{
			Site:  faultOpNames[int(data[0])%len(faultOpNames)],
			Kind:  []faults.Kind{faults.OOM, faults.KernelErr, faults.PanicFault}[int(data[1])%3],
			After: int(data[2]) % 3,
			Every: int(data[3]) % 3,
		}
		seed := int64(data[4])
		// Body: three bytes per op, at most 12 ops.
		var prog []faultOp
		for i := 5; i+2 < len(data) && len(prog) < 12; i += 3 {
			prog = append(prog, faultOp{
				kind: int(data[i]),
				dst:  int(data[i+1]),
				s1:   int(data[i+2]),
				s2:   int(data[i+1]) >> 4,
			})
		}
		if len(prog) == 0 {
			t.Skip()
		}
		blk := runFaultProgram(t, Blocking, SchedSequential, prog, seed, []faults.Rule{rule})
		nbl := runFaultProgram(t, NonBlocking, SchedSequential, prog, seed, []faults.Rule{rule})
		if blk != nbl {
			t.Fatalf("modes diverged (rule %+v, prog %v)\n-- blocking --\n%s-- nonblocking --\n%s", rule, prog, blk, nbl)
		}
	})
}

// FuzzDagSchedule is the DAG-scheduler variant of FuzzFaultSchedule: the
// same derived program and fault plan must leave blocking mode, the
// sequential nonblocking drain, and the DAG-parallel nonblocking flush in
// identical observable states — surviving-object contents, invalidity
// classes, and the sequence error log. This is the executable statement of
// the dataflow scheduler's contract: concurrency may reorder *when* work
// happens, never *what* the program observes.
func FuzzDagSchedule(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 0, 1, 2, 3, 1, 2, 3, 0})
	f.Add([]byte{7, 3, 0, 0, 2, 1, 3, 2, 0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{2, 2, 1, 0, 5, 0, 0, 1, 3, 2, 1, 1, 3, 0, 2})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		rule := faults.Rule{
			Site:  faultOpNames[int(data[0])%len(faultOpNames)],
			Kind:  []faults.Kind{faults.OOM, faults.KernelErr, faults.PanicFault}[int(data[1])%3],
			After: int(data[2]) % 3,
			Every: int(data[3]) % 3,
		}
		seed := int64(data[4])
		var prog []faultOp
		for i := 5; i+2 < len(data) && len(prog) < 12; i += 3 {
			prog = append(prog, faultOp{
				kind: int(data[i]),
				dst:  int(data[i+1]),
				s1:   int(data[i+2]),
				s2:   int(data[i+1]) >> 4,
			})
		}
		if len(prog) == 0 {
			t.Skip()
		}
		blk := runFaultProgram(t, Blocking, SchedSequential, prog, seed, []faults.Rule{rule})
		seq := runFaultProgram(t, NonBlocking, SchedSequential, prog, seed, []faults.Rule{rule})
		dag := runFaultProgram(t, NonBlocking, SchedDag, prog, seed, []faults.Rule{rule})
		if blk != seq {
			t.Fatalf("blocking vs sequential diverged (rule %+v, prog %v)\n-- blocking --\n%s-- sequential --\n%s", rule, prog, blk, seq)
		}
		if blk != dag {
			t.Fatalf("blocking vs dag diverged (rule %+v, prog %v)\n-- blocking --\n%s-- dag --\n%s", rule, prog, blk, dag)
		}
	})
}

package core

import (
	"graphblas/internal/faults"
	"graphblas/internal/obs"
	"graphblas/internal/sparse"
)

// reduce (Table II): w ⊙= ⊕_j A(:,j) — fold each matrix row into a vector
// element with a monoid — plus the scalar reductions over a whole matrix or
// vector. Scalar outputs are non-opaque, so the scalar forms force
// completion per the execution model; the vector form may defer.

// runScalarReduce executes a scalar-reduce kernel body on the caller's
// goroutine with the same protections the executor gives queued kernels: an
// executor-level fault draw keyed by the method name, and panic recovery
// converting an injected kernel fault or a panicking user monoid into the
// matching execution error. The scalar forms used to call the kernel bare
// (`acc, _ :=`), so a fault raised inside it crashed the program or — worse —
// was swallowed, handing the caller a silently wrong scalar; now it surfaces
// as the method's error and lands in the sequence error log.
func runScalarReduce[D any](c *context, name string, f func() D) (out D, err error) {
	sp := obs.Begin(name)
	sp.MarkScheduled()
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(name, r)
		}
		if err != nil {
			var zero D
			out = zero
			recordScalarError(c, name, err)
			sp.Finish(obs.OutcomeError, err)
		} else {
			sp.Finish(obs.OutcomeOK, nil)
		}
		obs.Emit(sp)
	}()
	if fl := faults.Check(name); fl != nil {
		return out, faultError(name, fl)
	}
	sp.MarkKernel()
	return f(), nil
}

// recordScalarError folds a scalar-read failure into the sequence error
// state: it takes the next program-order position and appends to the log,
// setting the GrB_error string. A sequence is opened only because an error
// actually occurred — the success path touches neither the log nor the
// error string, so passing sequences observe no change.
func recordScalarError(c *context, name string, err error) {
	c.mu.Lock()
	pos := c.beginOpLocked()
	c.errLog = append(c.errLog, SequenceError{Pos: pos, Op: name, Err: err})
	c.lastMsg = err.Error()
	c.mu.Unlock()
}

// ReduceMatrixToVector computes w ⊙= ⊕_j A(i,j) (GrB_reduce, the Figure 3
// line 78 form). Rows with no stored elements produce no output entry. Use
// the descriptor's INP0 transpose to reduce columns instead.
func ReduceMatrixToVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], m Monoid[DC], a *Matrix[DC], desc *Descriptor) error {
	const name = "ReduceMatrixToVector"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	if !m.Defined() {
		return errf(UninitializedObject, name, "monoid not initialized")
	}
	rows := a.nr
	if desc.tran0() {
		rows = a.nc
	}
	if w.n != rows {
		return errf(DimensionMismatch, name, "output has size %d, matrix has %d rows (after descriptor)", w.n, rows)
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.ReduceRowsCSR(ad, m.Op.F, m.Terminal)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// ReduceMatrixToScalar folds every stored element of A with the monoid,
// returning the monoid identity for an empty matrix. The scalar result is
// non-opaque, so this forces completion of the pending sequence. accum, when
// defined, combines the fold with the val argument (the C API's
// GrB_Matrix_reduce with a scalar accumulator); val also seeds the result
// for an empty matrix.
func ReduceMatrixToScalar[D any](val D, accum BinaryOp[D, D, D], m Monoid[D], a *Matrix[D]) (D, error) {
	const name = "ReduceMatrixToScalar"
	var zero D
	if err := checkActive(name); err != nil {
		return zero, err
	}
	if a == nil {
		return zero, errf(UninitializedObject, name, "nil matrix")
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return zero, err
	}
	if !m.Defined() {
		return zero, errf(UninitializedObject, name, "monoid not initialized")
	}
	if err := a.obj.engine().force(name); err != nil {
		return zero, err
	}
	if err := invalidMark(&a.obj, name); err != nil {
		return zero, err
	}
	acc, err := runScalarReduce(a.obj.engine(), name, func() D {
		//grblint:ignore swallowederr stored=false means no entries were folded; the identity the kernel returns is exactly the GraphBLAS empty-reduction value
		r, _ := sparse.ReduceAllCSR(a.mdat(), m.Op.F, m.Identity, m.Terminal)
		return r
	})
	if err != nil {
		return zero, err
	}
	if accum.Defined() {
		return accum.F(val, acc), nil
	}
	return acc, nil
}

// ReduceVectorToScalar folds every stored element of u with the monoid;
// semantics mirror ReduceMatrixToScalar.
func ReduceVectorToScalar[D any](val D, accum BinaryOp[D, D, D], m Monoid[D], u *Vector[D]) (D, error) {
	const name = "ReduceVectorToScalar"
	var zero D
	if err := checkActive(name); err != nil {
		return zero, err
	}
	if u == nil {
		return zero, errf(UninitializedObject, name, "nil vector")
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return zero, err
	}
	if !m.Defined() {
		return zero, errf(UninitializedObject, name, "monoid not initialized")
	}
	if err := u.obj.engine().force(name); err != nil {
		return zero, err
	}
	if err := invalidMark(&u.obj, name); err != nil {
		return zero, err
	}
	acc, err := runScalarReduce(u.obj.engine(), name, func() D {
		//grblint:ignore swallowederr stored=false means no entries were folded; the identity the kernel returns is exactly the GraphBLAS empty-reduction value
		r, _ := sparse.VecReduce(u.vdat(), m.Op.F, m.Identity, m.Terminal)
		return r
	})
	if err != nil {
		return zero, err
	}
	if accum.Defined() {
		return accum.F(val, acc), nil
	}
	return acc, nil
}

package core

import (
	stdctx "context"
	"sync"
	"sync/atomic"

	"graphblas/internal/faults"
	"graphblas/internal/format"
	"graphblas/internal/obs"
	"graphblas/internal/parallel"
)

// Mode selects the execution mode of the GraphBLAS context (Section IV).
type Mode int

const (
	// Blocking mode: each method completes its operation and stores the
	// output object before returning.
	Blocking Mode = iota
	// NonBlocking mode: methods that manipulate only opaque objects may
	// defer execution until the sequence is terminated by Wait or a method
	// forces completion of an object.
	NonBlocking
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Blocking {
		return "Blocking"
	}
	return "NonBlocking"
}

// Scheduler selects how a nonblocking flush executes the deferred queue.
type Scheduler int

const (
	// SchedSequential drains the queue one operation at a time in program
	// order — the pre-dataflow behavior, kept for ablation and debugging.
	SchedSequential Scheduler = iota
	// SchedDag builds the hazard DAG over the queue (internal/dataflow) and
	// executes independent operations concurrently on a bounded worker pool,
	// preserving observable program-order semantics. The default. It engages
	// only when the worker bound exceeds one and the flush has more than one
	// runnable operation; otherwise the sequential path runs.
	SchedDag
)

// String returns the scheduler name.
func (s Scheduler) String() string {
	if s == SchedSequential {
		return "sequential"
	}
	return "dag"
}

// contextState tracks the once-only lifecycle of Section IV: Init may be
// called once; after Finalize a subsequent Init is not allowed.
type contextState int

const (
	stateUninitialized contextState = iota
	stateActive
	stateFinalized
)

// Stats reports execution-engine counters, used by the execution-model
// benchmarks (EXPERIMENTS.md E6).
type Stats struct {
	OpsEnqueued int64 // operations deferred to the queue
	OpsExecuted int64 // operations actually run
	OpsElided   int64 // operations skipped by dead-store elimination
	Flushes     int64 // queue flushes (Wait or forced completion)

	// Storage-engine counters: kernels dispatched on the bitmap and
	// hypersparse layouts, specialized ⟨+,×⟩ fast-path kernels taken, and
	// layout conversions performed.
	BitmapKernels     int64
	HyperKernels      int64
	FastKernels       int64
	FormatConversions int64

	// Recovery counters: fast-path kernel failures retried on the generic
	// CSR path, output objects rolled back after a failed kernel, and faults
	// injected by the internal/faults plan (including governor denials).
	KernelRetries  int64
	Rollbacks      int64
	FaultsInjected int64

	// Dataflow-scheduler counters: flushes executed on the DAG-parallel
	// path, total DAG nodes scheduled and hazard edges honored across those
	// flushes, and the high-water number of operations ever observed
	// executing simultaneously.
	ParallelFlushes int64
	DagNodes        int64
	DagEdges        int64
	MaxWidth        int64

	// Fusion counters: producer operations whose computation ran inside a
	// consumer's fused kernel instead of materializing (FusedOps), and
	// producer-consumer pairs the flush-time fusion pass collapsed
	// (FusedPairs; a chain of three ops counts as two pairs).
	FusedOps   int64
	FusedPairs int64
}

// The execution-engine counters live in the internal/obs metrics registry —
// lock-free atomics bumped from inside kernels and flush workers, outside
// the context lock — and are folded into the Stats snapshot on read. The
// handles below keep the historic short names at their call sites.
var (
	fmtBitmapOps   = obs.FormatKernels.With("bitmap")
	fmtHyperOps    = obs.FormatKernels.With("hyper")
	fmtFastOps     = obs.FormatKernels.With("fast")
	fmtConversions = obs.FormatConversions
	execRetries    = obs.KernelRetries
	execRollbacks  = obs.Rollbacks
	// faultBase is the faults.InjectedCount baseline at the last stats reset,
	// so Stats.FaultsInjected counts per Init/ResetForTesting epoch even
	// though the faults package keeps its own global counter.
	faultBase atomic.Int64
)

func resetEngineStats() {
	obs.ResetEngine()
	faultBase.Store(faults.InjectedCount())
}

// pendingOp is one deferred method in a nonblocking sequence.
type pendingOp struct {
	out        *obj
	reads      []*obj
	overwrites bool // completely determines out's new content without reading its old content
	run        func() error
	name       string
	// pos is the operation's zero-based position in its sequence, in program
	// order, for the per-sequence error log.
	pos int
	// hint describes how the operation consumes its matrix operands, so a
	// deferred producer of one of those operands can materialize its result
	// directly in the layout this consumer wants (see propagateHints).
	hint format.OpHint
	// span is the operation's observability record, nil when no tracer is
	// registered (every obs.Span method is nil-safe).
	span *obs.Span
	// fuse describes how the flush-time fusion pass may combine this op with
	// a neighbor (nil for ops that neither produce nor consume fused
	// streams); fusedStub marks a producer whose computation was folded into
	// its consumer's kernel — the node keeps its program position but runs
	// nothing; fusedOuts, on a fused consumer, lists the fused-away
	// intermediate outputs so a fused-kernel failure invalidates every
	// logical result the kernel was computing. See fusion.go.
	fuse      *fuseInfo
	fusedStub bool
	fusedOuts []*obj
}

// context is the GraphBLAS execution context. The paper defines exactly one
// per program, created by GrB_init; this binding mirrors that with a
// package-level context — and, as an extension, lets a host embed additional
// independent contexts (Instance) so horizontally sharded deployments give
// every shard its own queue, scheduler, and flush lock. Objects bind to the
// context they were created in; operations route through their output's
// context, so two instances never serialize against each other.
type context struct {
	mu       sync.Mutex
	state    contextState
	mode     Mode
	queue    []*pendingOp
	execErr  error
	lastMsg  string
	elision  bool      // dead-store elimination enabled (default true)
	fusion   bool      // flush-time kernel fusion enabled (default true; DAG scheduler only)
	sched    Scheduler // nonblocking flush strategy (default SchedDag)
	reinitOK bool      // testing escape hatch

	// Per-sequence error log (Section V records only the first error of a
	// sequence in GrB_error; the log keeps all of them, with op names and
	// positions). A sequence opens at the first operation after the previous
	// flush completed and closes when the sequence terminates (Wait, a forced
	// completion, or Finalize); seqDone retains the last closed sequence's
	// log so it stays inspectable after Wait returns.
	errLog  []SequenceError
	seqDone []SequenceError
	seqOpen bool
	seqPos  int
}

var global context

// idCounter hands out object identities for the dependence tracking of the
// nonblocking engine.
var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// Init establishes the GraphBLAS context in the given mode (GrB_init). Per
// Section IV it may be called only once in the execution of a program, and
// not again after Finalize.
func Init(mode Mode) error {
	global.mu.Lock()
	defer global.mu.Unlock()
	switch global.state {
	case stateActive:
		return errf(InvalidValue, "Init", "context already initialized")
	case stateFinalized:
		if !global.reinitOK {
			return errf(InvalidValue, "Init", "context finalized; re-initialization is not allowed")
		}
	}
	if mode != Blocking && mode != NonBlocking {
		return errf(InvalidValue, "Init", "unknown mode %d", int(mode))
	}
	global.state = stateActive
	global.mode = mode
	global.queue = nil
	global.execErr = nil
	global.lastMsg = ""
	global.elision = true
	global.fusion = true
	global.sched = SchedDag
	global.errLog = nil
	global.seqDone = nil
	global.seqOpen = false
	global.seqPos = 0
	resetEngineStats()
	return nil
}

// Finalize terminates the GraphBLAS context (GrB_finalize), completing any
// pending sequence first. The context cannot be re-initialized afterwards.
func Finalize() error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.state != stateActive {
		return errf(UninitializedContext, "Finalize", "context not initialized")
	}
	obs.Flushes.Inc()
	err := global.flushLocked(nil)
	global.state = stateFinalized
	return err
}

// ResetForTesting returns the context to its pristine uninitialized state,
// discarding any pending operations. It exists so test suites and
// long-running hosts can run multiple Init/Finalize cycles; it is not part
// of the paper's API, which forbids re-initialization.
func ResetForTesting() {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.state = stateUninitialized
	global.queue = nil
	global.execErr = nil
	global.lastMsg = ""
	global.elision = true
	global.fusion = true
	global.sched = SchedDag
	global.reinitOK = true
	global.errLog = nil
	global.seqDone = nil
	global.seqOpen = false
	global.seqPos = 0
	resetEngineStats()
}

// CurrentMode reports the context mode.
func CurrentMode() Mode {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.mode
}

// SetElision toggles the nonblocking engine's dead-store elimination and
// returns the previous setting. Used by the E6 ablation benchmarks.
func SetElision(on bool) bool {
	global.mu.Lock()
	defer global.mu.Unlock()
	prev := global.elision
	global.elision = on
	return prev
}

// SetFusion toggles the flush-time kernel-fusion pass and returns the
// previous setting. Fusion engages only on the DAG scheduler; turning it off
// (or selecting SchedSequential) yields the unfused reference semantics the
// differential tests compare against. Used by the E13 ablation benchmarks.
func SetFusion(on bool) bool {
	global.mu.Lock()
	defer global.mu.Unlock()
	prev := global.fusion
	global.fusion = on
	return prev
}

// FusionEnabled reports whether the flush-time fusion pass is enabled.
func FusionEnabled() bool {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.fusion
}

// SetScheduler selects the nonblocking flush strategy and returns the
// previous one. SchedDag (the default) runs independent queued operations
// concurrently; SchedSequential restores the strict program-order drain,
// for ablation benchmarks and debugging.
func SetScheduler(s Scheduler) Scheduler {
	global.mu.Lock()
	defer global.mu.Unlock()
	prev := global.sched
	global.sched = s
	return prev
}

// CurrentScheduler reports the nonblocking flush strategy.
func CurrentScheduler() Scheduler {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.sched
}

// StatsSnapshot returns a consistent snapshot of the execution-engine
// counters, now derived entirely from the internal/obs metrics registry (the
// Stats struct remains the stable programmatic view; the registry adds the
// Prometheus/expvar exports on top of the same instruments). Taken under the
// context lock so a snapshot after Wait sees every counter the flush folded.
func StatsSnapshot() Stats {
	global.mu.Lock()
	defer global.mu.Unlock()
	s := Stats{
		OpsEnqueued:       obs.OpsEnqueued.Total(),
		OpsExecuted:       obs.OpsExecuted.Total() + obs.OpsFailed.Total(),
		OpsElided:         obs.OpsElided.Value(),
		Flushes:           obs.Flushes.Value(),
		BitmapKernels:     fmtBitmapOps.Value(),
		HyperKernels:      fmtHyperOps.Value(),
		FastKernels:       fmtFastOps.Value(),
		FormatConversions: fmtConversions.Value(),
		KernelRetries:     execRetries.Value(),
		Rollbacks:         execRollbacks.Value(),
		ParallelFlushes:   obs.ParallelFlushes.Value(),
		DagNodes:          obs.DagNodes.Value(),
		DagEdges:          obs.DagEdges.Value(),
		MaxWidth:          obs.DagWidth.Value(),
		FusedOps:          obs.OpsFused.Value(),
		FusedPairs:        obs.FusedPairs.Value(),
	}
	// faults.Configure/Reset zero the package counter independently of the
	// stats epoch; a counter below the baseline means the plan was
	// reconfigured since the epoch started, so the baseline is stale.
	n, b := faults.InjectedCount(), faultBase.Load()
	if n < b {
		b = 0
		faultBase.Store(0)
	}
	s.FaultsInjected = n - b
	return s
}

// GetStats is an alias for StatsSnapshot, kept for source compatibility.
func GetStats() Stats { return StatsSnapshot() }

// LastError returns the additional error information of the most recent
// execution error (the GrB_error() string), or "" if none.
func LastError() string {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.lastMsg
}

// checkActive verifies the context is initialized.
func checkActive(op string) error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.state != stateActive {
		return errf(UninitializedContext, op, "call Init before any GraphBLAS method")
	}
	return nil
}

// Wait terminates the current sequence (GrB_wait): all pending operations
// complete, and the first execution error encountered in the sequence, if
// any, is returned.
func Wait() error { return WaitContext(nil) }

// WaitContext is Wait bounded by a caller context (extension): the flush
// honors ctx's deadline and cancellation. Operations already executing when
// ctx fires run to completion — a kernel is never interrupted mid-write — but
// operations not yet dispatched are abandoned with a Canceled execution
// error: they land in the sequence error log in program order, their output
// objects become invalid-but-restorable (a later full overwrite
// rehabilitates them, exactly as after a kernel failure), and the
// program-order-first error of the sequence is returned.
//
// The queue is shared by every goroutine enqueueing against this context
// (the paper has one context per program), so cancellation is flush-scoped,
// not caller-scoped: a deadline expiring here may abandon operations another
// goroutine enqueued. Callers interleaving sequences under deadlines should
// treat a Canceled/InvalidObject result as transient and rebuild their
// outputs — the serving layer's retry machinery does exactly that.
//
// A nil ctx (or one that can never be canceled) makes this identical to
// Wait.
func WaitContext(ctx stdctx.Context) error { return global.waitContext(ctx) }

// waitContext is the context-scoped body of Wait/WaitContext.
func (c *context) waitContext(ctx stdctx.Context) error {
	c.mu.Lock()
	if c.state != stateActive {
		c.mu.Unlock()
		return errf(UninitializedContext, "Wait", "call Init before any GraphBLAS method")
	}
	obs.Flushes.Inc()
	err := c.flushLocked(ctx)
	c.mu.Unlock()
	return err
}

// flushLocked drains the queue, applying dead-store elimination and
// format-hint propagation first, then executing the surviving operations —
// on the DAG-parallel scheduler when it is selected and can pay off, else
// strictly sequentially in program order. Either way the observable outcome
// is identical: every failure is appended to the sequence error log in
// program order, and only the program-order-first error becomes the flush's
// return value and the GrB_error string, per Section V. A non-nil ctx bounds
// the flush (WaitContext): once it is canceled, undispatched operations are
// abandoned with a Canceled error instead of executing. Caller holds
// c.mu.
func (c *context) flushLocked(ctx stdctx.Context) error {
	queue := c.queue
	c.queue = nil
	obs.QueueDepth.Set(0)
	if len(queue) == 0 {
		c.closeSeqLocked()
		return c.takeExecErrLocked()
	}
	obs.FlushDepth.Observe(float64(len(queue)))
	elide := markElidable(queue, c.elision)
	propagateHints(queue, elide)
	nodes := queue[:0]
	for k, op := range queue {
		if elide[k] {
			obs.OpsElided.Inc()
			op.span.Finish(obs.OutcomeElided, nil)
			obs.Emit(op.span)
			continue
		}
		nodes = append(nodes, op)
	}
	var results []error
	if c.sched == SchedDag && len(nodes) > 1 && parallel.MaxWorkers() > 1 {
		results = c.runQueueDag(ctx, nodes)
	} else {
		results = make([]error, len(nodes))
		for i, op := range nodes {
			if ctx != nil && ctx.Err() != nil {
				results[i] = cancelOp(op, nil, 0, ctx.Err())
				continue
			}
			results[i] = runOp(op)
		}
	}
	// Fold the per-operation outcomes in program order: nodes is ordered by
	// queue position, so the error log and first-error selection come out
	// exactly as a sequential drain would produce them.
	for i, op := range nodes {
		if err := results[i]; err != nil {
			c.errLog = append(c.errLog, SequenceError{Pos: op.pos, Op: op.name, Err: err})
			if c.execErr == nil {
				c.execErr = err
				c.lastMsg = err.Error()
			}
		}
	}
	if c.execErr == nil {
		// A clean flush supersedes any stale GrB_error string.
		c.lastMsg = ""
	}
	c.closeSeqLocked()
	return c.takeExecErrLocked()
}

// beginOpLocked assigns the next program-order position in the current
// sequence, opening a fresh sequence (and clearing the previous log) if the
// last one has terminated. Caller holds c.mu.
func (c *context) beginOpLocked() int {
	if !c.seqOpen {
		c.seqOpen = true
		c.seqPos = 0
		c.errLog = nil
	}
	pos := c.seqPos
	c.seqPos++
	return pos
}

// closeSeqLocked terminates the current sequence, retiring its error log to
// seqDone so it remains inspectable after Wait returns. Caller holds c.mu.
func (c *context) closeSeqLocked() {
	if !c.seqOpen {
		return
	}
	c.seqOpen = false
	c.seqPos = 0
	c.seqDone = c.errLog
	c.errLog = nil
}

// SequenceErrors returns the execution error log of the current sequence,
// or, if no sequence is open, of the most recently terminated one. Wait
// reports only the first error; this exposes all of them with op names and
// program-order positions.
func SequenceErrors() []SequenceError {
	global.mu.Lock()
	defer global.mu.Unlock()
	log := global.errLog
	if !global.seqOpen {
		log = global.seqDone
	}
	return append([]SequenceError(nil), log...)
}

// takeExecErrLocked returns and clears the recorded execution error.
func (c *context) takeExecErrLocked() error {
	err := c.execErr
	c.execErr = nil
	return err
}

// scanReverse walks the queue positions len(queue)-1 … 0 — the direction
// both pre-scheduling analysis passes need, since each decides an op's fate
// from what *later* operations do with its output. It is the shared
// backward-walk skeleton of markElidable and propagateHints.
func scanReverse(n int, visit func(k int)) {
	for k := n - 1; k >= 0; k-- {
		visit(k)
	}
}

// propagateHints stamps each operation's hint onto the objects it reads,
// before any queued operation runs. Walking backward makes the *first*
// consumer's stamp win, so when an earlier producer executes and goes to
// materialize its result, the output object already records how the next
// operation will consume it — and the producer can pick that layout
// directly. This is the payoff of deferral the paper's Section IV allows:
// only in nonblocking mode is the whole sequence visible before execution.
// Elided consumers never read their operands, so their hints are skipped.
// (Hint stamping happens here, before scheduling, rather than during DAG
// execution: the stamp order is significant — first consumer wins — and a
// hazard edge already orders every producer after this pass.)
func propagateHints(queue []*pendingOp, elide []bool) {
	scanReverse(len(queue), func(k int) {
		op := queue[k]
		if elide[k] || op.hint == format.HintNone {
			return
		}
		for _, r := range op.reads {
			r.noteHint(op.hint)
		}
	})
}

// markElidable performs the backward dead-store-elimination pass: an
// operation whose output is completely overwritten by a later operation,
// with no intervening read of that object, need not execute. This is the
// lazy-evaluation freedom Section IV grants nonblocking mode ("methods may
// be placed in a queue and deferred... as long as the final result agrees
// with the mathematical definition"). Elided operations never reach the
// dataflow DAG: they are pruned here, so the scheduler sees only work that
// will actually run.
func markElidable(queue []*pendingOp, enabled bool) []bool {
	elide := make([]bool, len(queue))
	if !enabled {
		return elide
	}
	// deadUntilRead[id] is true when a later op fully overwrites the object
	// and nothing in between reads it.
	dead := make(map[uint64]bool)
	scanReverse(len(queue), func(k int) {
		op := queue[k]
		if dead[op.out.id] {
			elide[k] = true
			return // an elided op neither reads nor writes
		}
		readsOwnOutput := false
		for _, r := range op.reads {
			dead[r.id] = false
			if r == op.out {
				readsOwnOutput = true
			}
		}
		if op.overwrites && !readsOwnOutput {
			dead[op.out.id] = true
		} else {
			// The op reads its own output — either through an accumulator/
			// merge-mode mask or because an input argument aliases the
			// output — so the prior content is live.
			dead[op.out.id] = false
		}
	})
	return elide
}

// runOp validates object states and executes one operation transactionally —
// the sequential form of runOpAt (no fault-draw gate needed when operations
// run one at a time).
func runOp(op *pendingOp) error {
	return runOpAt(op, nil, 0, false)
}

// runOpAt validates object states and executes one operation transactionally.
// An input in an invalid state (from a prior execution error) propagates
// invalidity to the output, per Section V — under the DAG scheduler this *is*
// the cancellation mechanism: a failed op marks its output invalid, every
// dependent observes the invalid input when its hazard edges release it, and
// short-circuits with the same InvalidObject error a sequential drain logs,
// while independent chains never see it and complete. Before the kernel runs,
// the output object's committed store is snapshotted; if the kernel fails or
// panics, the store is rolled back, so the output is *invalid but
// restorable* — it holds exactly its prior committed contents, never a
// half-written result, and a later full overwrite rehabilitates it.
//
// gate (nil when no fault plan is installed) orders fault-plan draws from
// concurrently executing operations by program position idx, keeping the
// injection schedule identical to a sequential drain. Every return path
// releases the gate — including short circuits, which never reach the
// injection site and so must not strand later positions. With serialBody
// set (the plan can match kernel-internal sites), the gate is held across
// the whole operation body, serializing execution in program order while
// still exercising the DAG machinery.
func runOpAt(op *pendingOp, gate *faults.Sequencer, idx int, serialBody bool) error {
	op.span.MarkScheduled()
	if serialBody {
		gate.Wait(idx)
	}
	// Idempotent: a no-op on the paths that already released.
	defer gate.Release(idx)
	for _, r := range op.reads {
		if r.err != nil {
			err := errf(InvalidObject, op.name, "input object invalid from a previous execution error: %v", r.err)
			op.out.err = err
			return failOp(op, obs.OutcomeShortCircuit, err)
		}
	}
	if op.out.err != nil && !op.overwrites {
		// Reading an invalid output (merge/accumulate) is also an error; a
		// full overwrite rehabilitates the object.
		err := errf(InvalidObject, op.name, "output object invalid from a previous execution error: %v", op.out.err)
		return failOp(op, obs.OutcomeShortCircuit, err)
	}
	if op.fusedStub {
		// The operation's computation runs inside its consumer's fused kernel
		// (fusion.go); the stub holds the program position so validity
		// propagation, the sequence gate, and the error-log slot behave
		// exactly as unfused. Its output is logically recomputed — it clears
		// any prior invalidity just as the materializing op would — but its
		// committed store is untouched: the fusion legality proof guarantees
		// a later full overwrite refreshes it before anything reads it.
		op.out.err = nil
		obs.OpsExecuted.With(op.name).Inc()
		obs.OpsFused.Inc()
		op.span.Finish(obs.OutcomeFused, nil)
		obs.Emit(op.span)
		return nil
	}
	var restore func()
	if op.out.snapshot != nil {
		restore = op.out.snapshot()
	}
	op.span.MarkKernel()
	if err := runGuardedAt(op, gate, idx, serialBody); err != nil {
		if restore != nil {
			restore()
			execRollbacks.Add(1)
			op.span.NoteRollback()
		}
		op.out.err = err
		// A fused kernel was computing the fused-away intermediates too:
		// invalidate them all, so both logical operations of a fused pair
		// roll back. Their stores already hold prior committed content (the
		// stubs never wrote), and the error carries the consumer's program
		// position — the operation that actually ran.
		for _, fo := range op.fusedOuts {
			fo.err = err
		}
		return failOp(op, obs.OutcomeError, err)
	}
	op.out.err = nil
	obs.OpsExecuted.With(op.name).Inc()
	op.span.Finish(obs.OutcomeOK, nil)
	obs.Emit(op.span)
	return nil
}

// failOp records an operation's failure in the metrics and its span, then
// returns err for the caller's error-log fold.
func failOp(op *pendingOp, outcome obs.Outcome, err error) error {
	obs.OpsFailed.With(op.name).Inc()
	op.span.Finish(outcome, err)
	obs.Emit(op.span)
	return err
}

// runGuardedAt executes an operation's kernel, converting panics (e.g. from a
// faulty user-defined operator, or an injected fault) into the matching
// execution error — GrB_PANIC with a trimmed stack naming the faulty frame,
// or GrB_OUT_OF_MEMORY for allocation faults — rather than crashing the
// sequence. It is also the executor-level fault-injection site, keyed by the
// method name, so a plan can fail whole operations deterministically in
// either execution mode. Under the DAG scheduler the draw is gated on
// program position; unless the whole body is serialized, the gate is
// released right after the draw so later operations' kernels may overlap
// this one's.
func runGuardedAt(op *pendingOp, gate *faults.Sequencer, idx int, serialBody bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(op.name, r)
		}
	}()
	f := func() *faults.Fault {
		if !serialBody {
			gate.Wait(idx)
			// Deferred so an injected PanicFault releases before unwinding
			// to the recover above.
			defer gate.Release(idx)
		}
		return faults.Check(op.name)
	}()
	if f != nil {
		return faultError(op.name, f)
	}
	return op.run()
}

// enqueue is the single entry point operations use after passing their API
// checks. In blocking mode the operation runs immediately; in nonblocking
// mode it is appended to the sequence queue. name is the method name for
// diagnostics; overwrites declares that the operation fully determines the
// output's content without consulting its prior content.
func enqueue(name string, out *obj, reads []*obj, overwrites bool, run func() error) error {
	return enqueueHinted(name, out, reads, overwrites, format.HintNone, run)
}

// enqueueHinted is enqueue for operations participating in the adaptive
// storage engine: hint describes how the operation consumes its matrix
// operands. In nonblocking mode the hint rides on the queued op so
// flushLocked can propagate it backward to the producers of those operands.
func enqueueHinted(name string, out *obj, reads []*obj, overwrites bool, hint format.OpHint, run func() error) error {
	return enqueueSpanned(name, out, reads, overwrites, hint, obs.Begin(name), run)
}

// enqueueSpanned is the full-argument enqueue for operations without fusion
// capabilities: operations that thread their observability span into kernel
// dispatch (the multiply family) open it themselves with obs.Begin and pass
// it in; everything else arrives here via enqueueHinted. sp is nil whenever
// tracing is disabled.
func enqueueSpanned(name string, out *obj, reads []*obj, overwrites bool, hint format.OpHint, sp *obs.Span, run func() error) error {
	return enqueueFusable(name, out, reads, overwrites, hint, sp, nil, run)
}

// enqueueFusable is enqueueSpanned for operations that additionally declare
// how the flush-time fusion pass may combine them with a neighbor (fi; see
// fusion.go). Blocking mode runs the unfused closure immediately — fusion is
// a deferral optimization and there is nothing deferred to pair with.
func enqueueFusable(name string, out *obj, reads []*obj, overwrites bool, hint format.OpHint, sp *obs.Span, fi *fuseInfo, run func() error) error {
	c := out.engine()
	for _, r := range reads {
		if r.engine() != c {
			return errf(InvalidValue, name, "operands are bound to different engine instances")
		}
	}
	c.mu.Lock()
	if c.state != stateActive {
		c.mu.Unlock()
		return errf(UninitializedContext, name, "call Init before any GraphBLAS method")
	}
	if c.mode == Blocking {
		// Run outside the context lock: the paper permits concurrent
		// sequences in distinct threads (sharing only read-only objects),
		// and blocking-mode execution must not serialize them globally.
		pos := c.beginOpLocked()
		c.mu.Unlock()
		sp.SetPos(pos)
		op := &pendingOp{out: out, reads: reads, overwrites: overwrites, run: run, name: name, pos: pos, hint: hint, span: sp}
		err := runOp(op)
		c.mu.Lock()
		if err != nil {
			c.errLog = append(c.errLog, SequenceError{Pos: pos, Op: name, Err: err})
			c.lastMsg = err.Error()
		} else {
			// A successful operation supersedes the previous error: the
			// GrB_error string describes the *most recent* method outcome.
			c.lastMsg = ""
		}
		c.mu.Unlock()
		return err
	}
	pos := c.beginOpLocked()
	sp.SetPos(pos)
	c.queue = append(c.queue, &pendingOp{out: out, reads: reads, overwrites: overwrites, run: run, name: name, pos: pos, hint: hint, span: sp, fuse: fi})
	obs.OpsEnqueued.With(name).Inc()
	obs.QueueDepth.Set(int64(len(c.queue)))
	c.mu.Unlock()
	return nil
}

// force completes every pending operation of this context because a method
// is about to read values out of an opaque object (Section IV: such methods
// may not defer). It returns the first execution error of the flushed
// sequence.
func (c *context) force(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != stateActive {
		return errf(UninitializedContext, name, "call Init before any GraphBLAS method")
	}
	if len(c.queue) == 0 {
		return c.takeExecErrLocked()
	}
	obs.Flushes.Inc()
	return c.flushLocked(nil)
}

package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/format"
)

// Regression tests for the defects surfaced by the grblint static-analysis
// suite: the MxM bitmap-adoption closure reading C's dimensions bare on a
// flush worker (lockedmeta), and the two hypersparse MxV kernels sharing one
// fault-injection site literal (faultsite).

// TestMxMBitmapAdoptionDimsRace: the no-mask no-accum ⟨+,×⟩ MxM fast path
// adopts its bitmap result in whichever layout format.Choose picks from C's
// dimensions — inside the deferred closure, on a flush worker. One goroutine
// keeps flushing enqueued MxMs while the test goroutine Resizes C (to its
// own size, so validation keeps passing); before the fix the closure read
// c.nr/c.nc bare against Resize's eager metadata write and the race
// detector flagged it. Mirrors TestResizeDuringFlushRace.
func TestMxMBitmapAdoptionDimsRace(t *testing.T) {
	cases := []struct {
		name  string
		sched Scheduler
	}{
		{"Sequential", SchedSequential},
		{"Dag", SchedDag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
			withMode(t, NonBlocking, func() {
				prevSched := SetScheduler(tc.sched)
				defer SetScheduler(prevSched)
				// Keep every deferred MxM alive: with elision on,
				// back-to-back full-overwrite products are dead stores and
				// their closures — the racing dims readers — would never run.
				prevElide := SetElision(false)
				defer SetElision(prevElide)
				rng := rand.New(rand.NewSource(3))
				s := plusTimesF64(t)
				const n = 16
				a := buildDenseMatrix(t, n, 0.4, rng)
				b := buildDenseMatrix(t, n, 0.6, rng)
				if err := b.SetFormat(format.BitmapKind); err != nil {
					t.Fatalf("SetFormat: %v", err)
				}
				c, err := NewMatrix[float64](n, n)
				if err != nil {
					t.Fatalf("NewMatrix: %v", err)
				}
				want := func() dmat {
					ref, _ := NewMatrix[float64](n, n)
					if err := MxM(ref, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
						t.Fatalf("reference MxM: %v", err)
					}
					if err := Wait(); err != nil {
						t.Fatalf("reference Wait: %v", err)
					}
					return denseOf(t, ref)
				}()
				var wg sync.WaitGroup
				wg.Add(1)
				done := make(chan struct{})
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						_ = Wait()
					}
				}()
				// Same-size Resize: the eager metadata write still happens
				// (and still races with an unlocked closure read), while MxM's
				// dimension validation keeps passing.
				for i := 0; i < 400; i++ {
					if err := MxM(c, NoMask, NoAccum[float64](), s, a, b, nil); err != nil {
						t.Errorf("MxM: %v", err)
					}
					if err := c.Resize(n, n); err != nil {
						t.Errorf("Resize: %v", err)
					}
				}
				close(done)
				wg.Wait()
				if err := Wait(); err != nil {
					t.Fatalf("final Wait: %v", err)
				}
				equalDense(t, denseOf(t, c), want, "MxM under concurrent flush")
			})
		})
	}
}

// TestHyperMxVFaultSitesDistinct: the dot and push hypersparse MxV kernels
// draw different injection sites ("format.kernel.hyper.mxv" and
// "format.kernel.hyper.mxv.push"), so a plan can fail one without touching
// the other. Before the fix both kernels drew one literal and every plan hit
// both.
func TestHyperMxVFaultSitesDistinct(t *testing.T) {
	withMode(t, Blocking, func() {
		rng := rand.New(rand.NewSource(5))
		s := plusTimesF64(t)
		const n = 24
		a := buildDenseMatrix(t, n, 0.3, rng)
		u := buildVector(t, n, 0.6, rng)
		if err := a.SetFormat(format.HyperKind); err != nil {
			t.Fatalf("SetFormat: %v", err)
		}
		tran := Desc().Transpose0()

		// Fault-free references for both orientations.
		wantDotV, _ := NewVector[float64](n)
		if err := MxV(wantDotV, NoMaskV, NoAccum[float64](), s, a, u, nil); err != nil {
			t.Fatalf("reference dot MxV: %v", err)
		}
		wantDot := vecTuples(t, wantDotV)
		wantPushV, _ := NewVector[float64](n)
		if err := MxV(wantPushV, NoMaskV, NoAccum[float64](), s, a, u, tran); err != nil {
			t.Fatalf("reference push MxV: %v", err)
		}
		wantPush := vecTuples(t, wantPushV)

		run := func(desc *Descriptor, want map[int]float64) int64 {
			t.Helper()
			base := StatsSnapshot().KernelRetries
			w, _ := NewVector[float64](n)
			if err := MxV(w, NoMaskV, NoAccum[float64](), s, a, u, desc); err != nil {
				t.Fatalf("MxV: %v", err)
			}
			got := vecTuples(t, w)
			if len(got) != len(want) {
				t.Fatalf("nvals got %d want %d", len(got), len(want))
			}
			for i, x := range want {
				if got[i] != x {
					t.Fatalf("w[%d] got %v want %v", i, got[i], x)
				}
			}
			return StatsSnapshot().KernelRetries - base
		}

		// A plan pinned to the dot site fails only the dot kernel.
		withFaults(t, 1, faults.Rule{Site: "format.kernel.hyper.mxv", Kind: faults.KernelErr})
		if d := run(nil, wantDot); d == 0 {
			t.Errorf("dot-site plan: dot kernel not retried")
		}
		if d := run(tran, wantPush); d != 0 {
			t.Errorf("dot-site plan leaked into the push kernel: %d retries", d)
		}

		// A plan pinned to the push site fails only the push kernel.
		withFaults(t, 1, faults.Rule{Site: "format.kernel.hyper.mxv.push", Kind: faults.KernelErr})
		if d := run(tran, wantPush); d == 0 {
			t.Errorf("push-site plan: push kernel not retried")
		}
		if d := run(nil, wantDot); d != 0 {
			t.Errorf("push-site plan leaked into the dot kernel: %d retries", d)
		}
		faults.Disable()
	})
}

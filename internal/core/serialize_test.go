package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializeMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(20)
		m, md := newTestMatrix(t, rng, nr, nc, 0.4)
		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); err != nil {
			t.Logf("serialize: %v", err)
			return false
		}
		back, err := MatrixDeserialize[float64](&buf)
		if err != nil {
			t.Logf("deserialize: %v", err)
			return false
		}
		got := denseOf(t, back)
		if len(got) != len(md) {
			return false
		}
		for k, v := range md {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeVectorRoundTrip(t *testing.T) {
	v, _ := NewVector[int32](50)
	_ = v.SetElement(7, 3)
	_ = v.SetElement(-2, 20)
	_ = v.SetElement(9, 49)
	var buf bytes.Buffer
	if err := VectorSerialize(v, &buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	back, err := VectorDeserialize[int32](&buf)
	if err != nil {
		t.Fatalf("deserialize: %v", err)
	}
	idx, val, _ := back.ExtractTuples()
	if len(idx) != 3 || idx[0] != 3 || val[0] != 7 || idx[1] != 20 || val[1] != -2 || idx[2] != 49 || val[2] != 9 {
		t.Fatalf("roundtrip %v %v", idx, val)
	}
	if n, _ := back.Size(); n != 50 {
		t.Fatalf("size %d", n)
	}
}

func TestSerializeBoolAndDomains(t *testing.T) {
	m, _ := NewMatrix[bool](4, 4)
	_ = m.SetElement(true, 0, 1)
	_ = m.SetElement(false, 2, 3) // stored false must survive
	var buf bytes.Buffer
	if err := MatrixSerialize(m, &buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	back, err := MatrixDeserialize[bool](&buf)
	if err != nil {
		t.Fatalf("deserialize: %v", err)
	}
	if v, err := back.ExtractElement(2, 3); err != nil || v != false {
		t.Fatalf("stored false lost: %v %v", v, err)
	}
	if v, _ := back.ExtractElement(0, 1); v != true {
		t.Fatalf("true lost: %v", v)
	}
}

func TestSerializeErrors(t *testing.T) {
	t.Run("domain mismatch", func(t *testing.T) {
		m, _ := NewMatrix[float64](2, 2)
		_ = m.SetElement(1.5, 0, 0)
		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); err != nil {
			t.Fatal(err)
		}
		if _, err := MatrixDeserialize[int32](&buf); InfoOf(err) != DomainMismatch {
			t.Fatalf("want DomainMismatch, got %v", err)
		}
	})
	t.Run("kind mismatch", func(t *testing.T) {
		v, _ := NewVector[float64](3)
		_ = v.SetElement(1, 1)
		var buf bytes.Buffer
		if err := VectorSerialize(v, &buf); err != nil {
			t.Fatal(err)
		}
		if _, err := MatrixDeserialize[float64](&buf); InfoOf(err) != InvalidValue {
			t.Fatalf("want InvalidValue, got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		if _, err := MatrixDeserialize[float64](bytes.NewReader([]byte("NOPE1234567890"))); InfoOf(err) != InvalidValue {
			t.Fatalf("want InvalidValue, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		m, _ := NewMatrix[float64](5, 5)
		_ = m.SetElement(1, 2, 2)
		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for _, cut := range []int{3, 10, len(data) - 4} {
			if _, err := MatrixDeserialize[float64](bytes.NewReader(data[:cut])); InfoOf(err) != InvalidValue {
				t.Fatalf("cut %d: want InvalidValue, got %v", cut, err)
			}
		}
	})
	t.Run("corrupt column index", func(t *testing.T) {
		m, _ := NewMatrix[float64](2, 2)
		_ = m.SetElement(1, 1, 1)
		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		// The single column index is the int64 right before the final
		// float64 value; overwrite it with 99.
		data[len(data)-16] = 99
		if _, err := MatrixDeserialize[float64](bytes.NewReader(data)); InfoOf(err) != InvalidValue {
			t.Fatalf("want InvalidValue, got %v", err)
		}
	})
	t.Run("unserializable domain", func(t *testing.T) {
		type custom struct{ X int }
		m, _ := NewMatrix[custom](2, 2)
		var buf bytes.Buffer
		if err := MatrixSerialize(m, &buf); InfoOf(err) != DomainMismatch {
			t.Fatalf("want DomainMismatch, got %v", err)
		}
	})
}

// TestSerializeForcesCompletion: serialization outputs non-opaque data, so
// it must flush the pending sequence in nonblocking mode (Section IV).
func TestSerializeForcesCompletion(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatal(err)
		}
		if st := StatsSnapshot(); st.OpsExecuted != 0 {
			t.Fatalf("op ran before serialize: %+v", st)
		}
		var buf bytes.Buffer
		if err := MatrixSerialize(c, &buf); err != nil {
			t.Fatal(err)
		}
		if st := StatsSnapshot(); st.OpsExecuted == 0 {
			t.Fatalf("serialize did not force: %+v", st)
		}
		back, err := MatrixDeserialize[float64](&buf)
		if err != nil {
			t.Fatal(err)
		}
		if nv, _ := back.NVals(); nv != 3 {
			t.Fatalf("deserialized nvals %d", nv)
		}
	})
}

package core

import (
	stdctx "context"
	"testing"
)

// oneF64 is the presence clamp used by the instance tests.
func oneF64() UnaryOp[float64, float64] {
	return UnaryOp[float64, float64]{Name: "one", F: func(float64) float64 { return 1 }}
}

// The engine-instance contract behind horizontal sharding: instances are
// fully isolated execution contexts (own queue, scheduler, flush lock, error
// log), cross-instance operand mixing is an InvalidValue, and cancellation
// scoped to one instance never touches another's pending work.

// TestInstanceRequiresActiveContext: instances live inside the program-wide
// lifecycle.
func TestInstanceRequiresActiveContext(t *testing.T) {
	ResetForTesting()
	if _, err := NewInstance(NonBlocking); InfoOf(err) != UninitializedContext {
		t.Fatalf("NewInstance before Init: %v, want UninitializedContext", err)
	}
	withMode(t, NonBlocking, func() {
		if _, err := NewInstance(Mode(9)); InfoOf(err) != InvalidValue {
			t.Fatalf("NewInstance with bad mode: %v, want InvalidValue", err)
		}
		if _, err := NewMatrixIn[float64](nil, 2, 2); InfoOf(err) != UninitializedObject {
			t.Fatalf("NewMatrixIn(nil): %v, want UninitializedObject", err)
		}
		if _, err := NewVectorIn[float64](nil, 2); InfoOf(err) != UninitializedObject {
			t.Fatalf("NewVectorIn(nil): %v, want UninitializedObject", err)
		}
	})
}

// TestInstanceIsolation: an execution error in one instance lands in that
// instance's sequence error log only; the sibling instance and the global
// context flush clean.
func TestInstanceIsolation(t *testing.T) {
	withMode(t, NonBlocking, func() {
		a, err := NewInstance(NonBlocking)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewInstance(NonBlocking)
		if err != nil {
			t.Fatal(err)
		}

		// Instance a: a user-operator panic fails its op.
		ma, err := NewMatrixIn[float64](a, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := ma.SetElement(1, 0, 0); err != nil {
			t.Fatal(err)
		}
		boom := UnaryOp[float64, float64]{Name: "boom", F: func(float64) float64 { panic("boom") }}
		if err := ApplyM(ma, NoMask, NoAccum[float64](), boom, ma, nil); err != nil {
			t.Fatal(err)
		}

		// Instance b and the global context: clean work.
		mb, err := NewMatrixIn[float64](b, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := mb.SetElement(2, 1, 1); err != nil {
			t.Fatal(err)
		}
		mg, err := NewMatrix[float64](4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := mg.SetElement(3, 2, 2); err != nil {
			t.Fatal(err)
		}

		if err := a.Wait(); InfoOf(err) != PanicInfo {
			t.Fatalf("instance a flush: %v, want PanicInfo", err)
		}
		if err := b.Wait(); err != nil {
			t.Fatalf("instance b flush dirtied by a's failure: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatalf("global flush dirtied by instance failure: %v", err)
		}
		if log := a.SequenceErrors(); len(log) == 0 {
			t.Fatal("instance a has no sequence errors after a failed op")
		}
		if log := b.SequenceErrors(); len(log) != 0 {
			t.Fatalf("instance b's error log polluted: %v", log)
		}
	})
}

// TestInstanceCrossMixingRejected: one operation may not mix operands bound
// to different instances, or an instance and the global context.
func TestInstanceCrossMixingRejected(t *testing.T) {
	withMode(t, NonBlocking, func() {
		a, _ := NewInstance(NonBlocking)
		b, _ := NewInstance(NonBlocking)
		ma, _ := NewMatrixIn[float64](a, 4, 4)
		mb, _ := NewMatrixIn[float64](b, 4, 4)
		mg, _ := NewMatrix[float64](4, 4)
		out, _ := NewMatrixIn[float64](a, 4, 4)

		if err := EWiseAddM(out, NoMask, NoAccum[float64](), plusF64(), ma, mb, nil); InfoOf(err) != InvalidValue {
			t.Fatalf("cross-instance operands: %v, want InvalidValue", err)
		}
		if err := EWiseAddM(out, NoMask, NoAccum[float64](), plusF64(), ma, mg, nil); InfoOf(err) != InvalidValue {
			t.Fatalf("instance+global operands: %v, want InvalidValue", err)
		}
		if err := EWiseAddM(mg, NoMask, NoAccum[float64](), plusF64(), ma, ma, nil); InfoOf(err) != InvalidValue {
			t.Fatalf("global output with instance inputs: %v, want InvalidValue", err)
		}
		// Same-instance operands stay legal.
		if err := EWiseAddM(out, NoMask, NoAccum[float64](), plusF64(), ma, ma, nil); err != nil {
			t.Fatalf("same-instance operation rejected: %v", err)
		}
		if err := a.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestInstanceScopedCancellation: an already-expired deadline abandons one
// instance's pending operations (Canceled) while a sibling instance's queue
// flushes untouched — the shrunken blast radius sharded serving relies on.
func TestInstanceScopedCancellation(t *testing.T) {
	withMode(t, NonBlocking, func() {
		a, _ := NewInstance(NonBlocking)
		b, _ := NewInstance(NonBlocking)
		ma, _ := NewMatrixIn[float64](a, 8, 8)
		mb, _ := NewMatrixIn[float64](b, 8, 8)
		for i := 0; i < 8; i++ {
			if err := ma.SetElement(1, i, i); err != nil {
				t.Fatal(err)
			}
			if err := mb.SetElement(1, i, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := ApplyM(ma, NoMask, NoAccum[float64](), oneF64(), ma, nil); err != nil {
			t.Fatal(err)
		}
		if err := ApplyM(mb, NoMask, NoAccum[float64](), oneF64(), mb, nil); err != nil {
			t.Fatal(err)
		}

		ctx, cancel := stdctx.WithCancel(stdctx.Background())
		cancel()
		if err := a.WaitContext(ctx); InfoOf(err) != Canceled {
			t.Fatalf("canceled instance flush: %v, want Canceled", err)
		}
		if err := b.Wait(); err != nil {
			t.Fatalf("sibling instance caught the cancellation: %v", err)
		}
		nv, err := mb.NVals()
		if err != nil || nv != 8 {
			t.Fatalf("sibling instance state: nvals=%d err=%v", nv, err)
		}
		// The abandoned instance recovers by revalidation.
		if err := ma.Revalidate(); err != nil {
			t.Fatalf("Revalidate after abandoned flush: %v", err)
		}
	})
}

// TestInstanceSchedulerInheritanceAndOverride: instances snapshot the global
// scheduler at creation and can be re-pointed independently.
func TestInstanceSchedulerInheritanceAndOverride(t *testing.T) {
	withMode(t, NonBlocking, func() {
		prev := SetScheduler(SchedSequential)
		defer SetScheduler(prev)
		in, err := NewInstance(NonBlocking)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.CurrentScheduler(); got != SchedSequential {
			t.Fatalf("inherited scheduler = %v, want SchedSequential", got)
		}
		if old := in.SetScheduler(SchedDag); old != SchedSequential {
			t.Fatalf("SetScheduler returned %v, want SchedSequential", old)
		}
		if got := in.CurrentScheduler(); got != SchedDag {
			t.Fatalf("overridden scheduler = %v, want SchedDag", got)
		}
		if got := CurrentScheduler(); got != SchedSequential {
			t.Fatalf("instance override leaked to global scheduler: %v", got)
		}
		// Work still flushes under the overridden scheduler.
		m, _ := NewMatrixIn[float64](in, 4, 4)
		if err := m.SetElement(1, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := ApplyM(m, NoMask, NoAccum[float64](), oneF64(), m, nil); err != nil {
			t.Fatal(err)
		}
		if err := in.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestInstanceDerivedObjectsInherit: Dup and Diag results stay bound to
// their source's instance, so derived dataflow keeps flushing there.
func TestInstanceDerivedObjectsInherit(t *testing.T) {
	withMode(t, NonBlocking, func() {
		in, _ := NewInstance(NonBlocking)
		m, _ := NewMatrixIn[float64](in, 4, 4)
		if err := m.SetElement(5, 1, 2); err != nil {
			t.Fatal(err)
		}
		d, err := m.Dup()
		if err != nil {
			t.Fatal(err)
		}
		// A same-instance op with the dup must be legal; a global-output op
		// must not.
		out, _ := NewMatrixIn[float64](in, 4, 4)
		if err := EWiseAddM(out, NoMask, NoAccum[float64](), plusF64(), m, d, nil); err != nil {
			t.Fatalf("dup lost its instance binding: %v", err)
		}
		g, _ := NewMatrix[float64](4, 4)
		if err := EWiseAddM(g, NoMask, NoAccum[float64](), plusF64(), m, d, nil); InfoOf(err) != InvalidValue {
			t.Fatalf("dup mixed into global context: %v, want InvalidValue", err)
		}
		if err := in.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

package core

import "graphblas/internal/sparse"

// Transpose computes C ⊙= Aᵀ (GrB_transpose, Table II). Combining the
// descriptor's INP0 transpose with this operation yields a masked/
// accumulated copy of A itself — the spec's idiom for "apply a mask to a
// matrix", which this implementation honors without materializing a double
// transpose.
func Transpose[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], desc *Descriptor) error {
	const name = "Transpose"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	an, am := a.nc, a.nr // result dims of Aᵀ
	if desc.tran0() {
		an, am = am, an // transpose of transpose: A itself
	}
	if c.nr != an || c.nc != am {
		return errf(DimensionMismatch, name, "output is %dx%d, result is %dx%d", c.nr, c.nc, an, am)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		var t *sparse.CSR[DC]
		if tran0 {
			t = a.mdat()
		} else {
			t = a.transposed()
		}
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		res := sparse.WriteCSR(c.mdat(), t, mm, accumF, replace)
		if res == t {
			// Unlike every other operation, Transpose's internal result can
			// alias a's storage or the shared transpose cache; the unmasked
			// write-back transfers ownership, so copy before installing.
			res = t.Clone()
		}
		c.setData(res)
		return nil
	})
}

package core

import (
	"math/rand"
	"testing"
)

// vecOf builds a float64 vector from a map model.
func vecOf(t *testing.T, n int, entries map[int]float64) *Vector[float64] {
	t.Helper()
	v, err := NewVector[float64](n)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	var idx []int
	var val []float64
	for i, x := range entries {
		idx = append(idx, i)
		val = append(val, x)
	}
	if err := v.Build(idx, val, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return v
}

// vecModel extracts a map model from a vector.
func vecModel(t *testing.T, v *Vector[float64]) map[int]float64 {
	t.Helper()
	idx, val, err := v.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	m := map[int]float64{}
	for k := range idx {
		m[idx[k]] = val[k]
	}
	return m
}

func wantVec(t *testing.T, v *Vector[float64], want map[int]float64, label string) {
	t.Helper()
	got := vecModel(t, v)
	if len(got) != len(want) {
		t.Errorf("%s: got %v want %v", label, got, want)
		return
	}
	for i, x := range want {
		if got[i] != x {
			t.Errorf("%s: [%d] got %v want %v", label, i, got[i], x)
		}
	}
}

func TestTableII_EWiseAddVector(t *testing.T) {
	u := vecOf(t, 6, map[int]float64{0: 1, 2: 3, 4: 5})
	v := vecOf(t, 6, map[int]float64{2: 10, 3: 7, 4: 20})
	w, _ := NewVector[float64](6)
	if err := EWiseAddV(w, NoMaskV, NoAccum[float64](), plusF64(), u, v, nil); err != nil {
		t.Fatalf("EWiseAddV: %v", err)
	}
	// Union semantics: single-present entries copied, both-present added.
	wantVec(t, w, map[int]float64{0: 1, 2: 13, 3: 7, 4: 25}, "eWiseAdd union")
}

func TestTableII_EWiseMultVector(t *testing.T) {
	u := vecOf(t, 6, map[int]float64{0: 1, 2: 3, 4: 5})
	v := vecOf(t, 6, map[int]float64{2: 10, 3: 7, 4: 20})
	w, _ := NewVector[float64](6)
	mul := BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}
	if err := EWiseMultV(w, NoMaskV, NoAccum[float64](), mul, u, v, nil); err != nil {
		t.Fatalf("EWiseMultV: %v", err)
	}
	// Intersection semantics: only both-present entries.
	wantVec(t, w, map[int]float64{2: 30, 4: 100}, "eWiseMult intersection")
}

func TestTableII_EWiseMultMixedDomains(t *testing.T) {
	// The paper's three-domain binary operator: float × bool → float.
	u := vecOf(t, 4, map[int]float64{0: 2, 1: 3, 3: 4})
	flags, _ := NewVector[bool](4)
	_ = flags.SetElement(true, 1)
	_ = flags.SetElement(false, 3)
	w, _ := NewVector[float64](4)
	gate := BinaryOp[float64, bool, float64]{Name: "gate", F: func(x float64, b bool) float64 {
		if b {
			return x
		}
		return -x
	}}
	if err := EWiseMultV(w, NoMaskV, NoAccum[float64](), gate, u, flags, nil); err != nil {
		t.Fatalf("EWiseMultV: %v", err)
	}
	wantVec(t, w, map[int]float64{1: 3, 3: -4}, "three-domain eWiseMult")
}

func TestTableII_EWiseAddMatrixWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, ad := newTestMatrix(t, rng, 5, 4, 0.4)
	b, bd := newTestMatrix(t, rng, 4, 5, 0.4)
	c, _ := NewMatrix[float64](5, 4)
	if err := EWiseAddM(c, NoMask, NoAccum[float64](), plusF64(), a, b, Desc().Transpose1()); err != nil {
		t.Fatalf("EWiseAddM: %v", err)
	}
	want := dmat{}
	for k, v := range ad {
		want[k] = v
	}
	for k, v := range bd {
		kk := key{k.j, k.i}
		if cv, ok := want[kk]; ok {
			want[kk] = cv + v
		} else {
			want[kk] = v
		}
	}
	equalDense(t, denseOf(t, c), want, "eWiseAdd tran1")
}

func TestTableII_ApplyCastAndAccum(t *testing.T) {
	// apply used as a cast (Figure 3 line 41) and with an accumulator.
	u := vecOf(t, 5, map[int]float64{1: 2, 3: 0, 4: 9})
	w, _ := NewVector[float64](5)
	_ = w.SetElement(100, 1)
	neg := UnaryOp[float64, float64]{Name: "neg", F: func(x float64) float64 { return -x }}
	if err := ApplyV(w, NoMaskV, plusF64(), neg, u, nil); err != nil {
		t.Fatalf("ApplyV: %v", err)
	}
	wantVec(t, w, map[int]float64{1: 98, 3: 0, 4: -9}, "apply accum")

	// Cross-domain cast: float64 -> bool via explicit unary operator.
	wb, _ := NewVector[bool](5)
	toBool := UnaryOp[float64, bool]{Name: "nz", F: func(x float64) bool { return x != 0 }}
	if err := ApplyV(wb, NoMaskV, NoAccum[bool](), toBool, u, nil); err != nil {
		t.Fatalf("ApplyV cast: %v", err)
	}
	idx, val, _ := wb.ExtractTuples()
	if len(idx) != 3 {
		t.Fatalf("cast kept %d entries, want 3 (structure preserved)", len(idx))
	}
	wantBool := map[int]bool{1: true, 3: false, 4: true}
	for k := range idx {
		if val[k] != wantBool[idx[k]] {
			t.Errorf("cast [%d] got %v want %v", idx[k], val[k], wantBool[idx[k]])
		}
	}
}

func TestTableII_ReduceRows(t *testing.T) {
	a, _ := NewMatrix[float64](4, 3)
	// Row 0: 1+2; row 2: 5; rows 1 and 3 empty.
	if err := a.Build([]int{0, 0, 2}, []int{0, 2, 1}, []float64{1, 2, 5}, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	add, _ := NewMonoid(plusF64(), 0)
	w, _ := NewVector[float64](4)
	if err := ReduceMatrixToVector(w, NoMaskV, NoAccum[float64](), add, a, nil); err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	wantVec(t, w, map[int]float64{0: 3, 2: 5}, "row reduce skips empty rows")

	// Column reduce via the INP0 transpose.
	wc, _ := NewVector[float64](3)
	if err := ReduceMatrixToVector(wc, NoMaskV, NoAccum[float64](), add, a, Desc().Transpose0()); err != nil {
		t.Fatalf("Reduce tran: %v", err)
	}
	wantVec(t, wc, map[int]float64{0: 1, 1: 5, 2: 2}, "column reduce")

	// Scalar reductions.
	total, err := ReduceMatrixToScalar(0, NoAccum[float64](), add, a)
	if err != nil || total != 8 {
		t.Fatalf("matrix scalar reduce: %v %v", total, err)
	}
	vt, err := ReduceVectorToScalar(0, NoAccum[float64](), add, w)
	if err != nil || vt != 8 {
		t.Fatalf("vector scalar reduce: %v %v", vt, err)
	}
	// Scalar accumulate form.
	acc, err := ReduceMatrixToScalar(10, plusF64(), add, a)
	if err != nil || acc != 18 {
		t.Fatalf("accumulated scalar reduce: %v %v", acc, err)
	}
}

func TestTableII_Transpose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, ad := newTestMatrix(t, rng, 6, 4, 0.4)
	c, _ := NewMatrix[float64](4, 6)
	if err := Transpose(c, NoMask, NoAccum[float64](), a, nil); err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	want := dmat{}
	for k, v := range ad {
		want[key{k.j, k.i}] = v
	}
	equalDense(t, denseOf(t, c), want, "transpose")

	// Transpose + INP0 transpose = masked copy of A.
	c2, _ := NewMatrix[float64](6, 4)
	if err := Transpose(c2, NoMask, NoAccum[float64](), a, Desc().Transpose0()); err != nil {
		t.Fatalf("Transpose tran0: %v", err)
	}
	equalDense(t, denseOf(t, c2), ad, "double transpose is copy")
}

func TestTableII_ExtractSubmatrix(t *testing.T) {
	a, _ := NewMatrix[float64](4, 4)
	var is, js []int
	var vs []float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			is = append(is, i)
			js = append(js, j)
			vs = append(vs, float64(10*i+j))
		}
	}
	if err := a.Build(is, js, vs, NoAccum[float64]()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Duplicate row index replicates a row; out-of-order columns permute.
	c, _ := NewMatrix[float64](3, 2)
	if err := ExtractSubmatrix(c, NoMask, NoAccum[float64](), a, []int{2, 2, 0}, []int{3, 1}, nil); err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := dmat{
		{0, 0}: 23, {0, 1}: 21,
		{1, 0}: 23, {1, 1}: 21,
		{2, 0}: 3, {2, 1}: 1,
	}
	equalDense(t, denseOf(t, c), want, "extract with duplicates")

	// GrB_ALL rows.
	call, _ := NewMatrix[float64](4, 1)
	if err := ExtractSubmatrix(call, NoMask, NoAccum[float64](), a, All, []int{2}, nil); err != nil {
		t.Fatalf("Extract all: %v", err)
	}
	want = dmat{{0, 0}: 2, {1, 0}: 12, {2, 0}: 22, {3, 0}: 32}
	equalDense(t, denseOf(t, call), want, "extract GrB_ALL")

	// Column extract into a vector (Figure 3 line 33 shape).
	w, _ := NewVector[float64](4)
	if err := ExtractColVector(w, NoMaskV, NoAccum[float64](), a, All, 1, nil); err != nil {
		t.Fatalf("ExtractColVector: %v", err)
	}
	wantVec(t, w, map[int]float64{0: 1, 1: 11, 2: 21, 3: 31}, "col extract")

	// Row extract via transpose descriptor.
	wr, _ := NewVector[float64](4)
	if err := ExtractColVector(wr, NoMaskV, NoAccum[float64](), a, All, 2, Desc().Transpose0()); err != nil {
		t.Fatalf("ExtractColVector tran: %v", err)
	}
	wantVec(t, wr, map[int]float64{0: 20, 1: 21, 2: 22, 3: 23}, "row extract")

	// Subvector extract with duplicates.
	u := vecOf(t, 5, map[int]float64{0: 5, 2: 7})
	ws, _ := NewVector[float64](4)
	if err := ExtractSubvector(ws, NoMaskV, NoAccum[float64](), u, []int{2, 2, 1, 0}, nil); err != nil {
		t.Fatalf("ExtractSubvector: %v", err)
	}
	wantVec(t, ws, map[int]float64{0: 7, 1: 7, 3: 5}, "subvector extract")
}

func TestTableII_AssignVariants(t *testing.T) {
	t.Run("vector assign replaces subregion", func(t *testing.T) {
		w := vecOf(t, 6, map[int]float64{0: 1, 1: 2, 2: 3, 5: 9})
		u := vecOf(t, 3, map[int]float64{0: 10, 2: 30}) // position 1 empty
		if err := AssignVector(w, NoMaskV, NoAccum[float64](), u, []int{1, 2, 3}, nil); err != nil {
			t.Fatalf("AssignVector: %v", err)
		}
		// w(1)=u(0)=10, w(2)=deleted (u(1) empty), w(3)=u(2)=30; outside kept.
		wantVec(t, w, map[int]float64{0: 1, 1: 10, 3: 30, 5: 9}, "assign subregion")
	})
	t.Run("vector assign with accum keeps unmatched", func(t *testing.T) {
		w := vecOf(t, 6, map[int]float64{1: 2, 2: 3})
		u := vecOf(t, 3, map[int]float64{0: 10}) // only maps to w(1)
		if err := AssignVector(w, NoMaskV, plusF64(), u, []int{1, 2, 3}, nil); err != nil {
			t.Fatalf("AssignVector: %v", err)
		}
		wantVec(t, w, map[int]float64{1: 12, 2: 3}, "assign accum")
	})
	t.Run("duplicate assign indices rejected", func(t *testing.T) {
		w := vecOf(t, 6, map[int]float64{})
		u := vecOf(t, 2, map[int]float64{0: 1})
		err := AssignVector(w, NoMaskV, NoAccum[float64](), u, []int{3, 3}, nil)
		if InfoOf(err) != InvalidValue {
			t.Fatalf("got %v want InvalidValue", err)
		}
	})
	t.Run("scalar fill GrB_ALL", func(t *testing.T) {
		w := vecOf(t, 4, map[int]float64{2: 7})
		if err := AssignVectorScalar(w, NoMaskV, NoAccum[float64](), -3, All, nil); err != nil {
			t.Fatalf("AssignVectorScalar: %v", err)
		}
		wantVec(t, w, map[int]float64{0: -3, 1: -3, 2: -3, 3: -3}, "fill")
	})
	t.Run("matrix scalar fill then accum reduce matches Figure 3 tail", func(t *testing.T) {
		// delta = -nsver fill, then reduce accumulates row sums (lines 77-78).
		bcu, _ := NewMatrix[float64](3, 2)
		if err := AssignMatrixScalar(bcu, NoMask, NoAccum[float64](), 1, All, All, nil); err != nil {
			t.Fatalf("fill: %v", err)
		}
		nv, _ := bcu.NVals()
		if nv != 6 {
			t.Fatalf("fill nvals %d want 6", nv)
		}
		delta, _ := NewVector[float64](3)
		if err := AssignVectorScalar(delta, NoMaskV, NoAccum[float64](), -2, All, nil); err != nil {
			t.Fatalf("fill delta: %v", err)
		}
		add, _ := NewMonoid(plusF64(), 0)
		if err := ReduceMatrixToVector(delta, NoMaskV, plusF64(), add, bcu, nil); err != nil {
			t.Fatalf("reduce: %v", err)
		}
		wantVec(t, delta, map[int]float64{0: 0, 1: 0, 2: 0}, "bias cancels")
	})
	t.Run("matrix assign", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		c, cd := newTestMatrix(t, rng, 5, 5, 0.3)
		a, _ := NewMatrix[float64](2, 2)
		if err := a.Build([]int{0, 1}, []int{1, 0}, []float64{42, 17}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		rows, cols := []int{1, 3}, []int{0, 4}
		if err := AssignMatrix(c, NoMask, NoAccum[float64](), a, rows, cols, nil); err != nil {
			t.Fatalf("AssignMatrix: %v", err)
		}
		want := dmat{}
		for k, v := range cd {
			want[k] = v
		}
		// Region (rows × cols) replaced by a's content.
		for _, ri := range []int{0, 1} {
			for _, ci := range []int{0, 1} {
				delete(want, key{rows[ri], cols[ci]})
			}
		}
		want[key{1, 4}] = 42
		want[key{3, 0}] = 17
		equalDense(t, denseOf(t, c), want, "matrix assign")
	})
	t.Run("row and column assign", func(t *testing.T) {
		c, _ := NewMatrix[float64](3, 3)
		if err := c.Build([]int{0, 1, 2}, []int{0, 1, 2}, []float64{1, 2, 3}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		u := vecOf(t, 3, map[int]float64{0: 7, 2: 8})
		if err := AssignRow(c, NoMaskV, NoAccum[float64](), u, 1, All, nil); err != nil {
			t.Fatalf("AssignRow: %v", err)
		}
		// Row 1 becomes {0:7, 2:8} (the old (1,1)=2 deleted).
		want := dmat{{0, 0}: 1, {1, 0}: 7, {1, 2}: 8, {2, 2}: 3}
		equalDense(t, denseOf(t, c), want, "row assign")

		v := vecOf(t, 3, map[int]float64{1: 9})
		if err := AssignCol(c, NoMaskV, NoAccum[float64](), v, All, 0, nil); err != nil {
			t.Fatalf("AssignCol: %v", err)
		}
		// Column 0 becomes {1:9}: (0,0) and (1,0) replaced/deleted.
		want = dmat{{1, 0}: 9, {1, 2}: 8, {2, 2}: 3}
		equalDense(t, denseOf(t, c), want, "col assign")
	})
}

func TestExtensions_SelectKronDiag(t *testing.T) {
	t.Run("select lower triangle", func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		a, ad := newTestMatrix(t, rng, 5, 5, 0.5)
		c, _ := NewMatrix[float64](5, 5)
		tril := IndexUnaryOp[float64, bool]{Name: "tril", F: func(_ float64, i, j int) bool { return j < i }}
		if err := SelectM(c, NoMask, NoAccum[float64](), tril, a, nil); err != nil {
			t.Fatalf("SelectM: %v", err)
		}
		want := dmat{}
		for k, v := range ad {
			if k.j < k.i {
				want[k] = v
			}
		}
		equalDense(t, denseOf(t, c), want, "tril select")
	})
	t.Run("kronecker", func(t *testing.T) {
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
		b, _ := NewMatrix[float64](2, 2)
		_ = b.Build([]int{0, 1}, []int{0, 1}, []float64{5, 7}, NoAccum[float64]())
		c, _ := NewMatrix[float64](4, 4)
		mul := BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}
		if err := Kronecker(c, NoMask, NoAccum[float64](), mul, a, b, nil); err != nil {
			t.Fatalf("Kronecker: %v", err)
		}
		want := dmat{{0, 2}: 10, {1, 3}: 14, {2, 0}: 15, {3, 1}: 21}
		equalDense(t, denseOf(t, c), want, "kron")
	})
	t.Run("diag", func(t *testing.T) {
		v := vecOf(t, 3, map[int]float64{0: 1, 2: 3})
		m, err := Diag(v, 1)
		if err != nil {
			t.Fatalf("Diag: %v", err)
		}
		nr, _ := m.NRows()
		if nr != 4 {
			t.Fatalf("diag dims %d want 4", nr)
		}
		want := dmat{{0, 1}: 1, {2, 3}: 3}
		equalDense(t, denseOf(t, m), want, "diag k=1")
	})
}

func TestVectorObjectMethods(t *testing.T) {
	v, err := NewVector[float64](5)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	if _, err := NewVector[float64](0); InfoOf(err) != InvalidValue {
		t.Fatalf("zero size accepted: %v", err)
	}
	if n, _ := v.Size(); n != 5 {
		t.Fatalf("Size %d", n)
	}
	_ = v.SetElement(1.5, 2)
	_ = v.SetElement(2.5, 4)
	if nv, _ := v.NVals(); nv != 2 {
		t.Fatalf("NVals %d", nv)
	}
	if x, err := v.ExtractElement(2); err != nil || x != 1.5 {
		t.Fatalf("ExtractElement %v %v", x, err)
	}
	if _, err := v.ExtractElement(3); !IsNoValue(err) {
		t.Fatalf("want NoValue, got %v", err)
	}
	if _, err := v.ExtractElement(9); InfoOf(err) != InvalidIndex {
		t.Fatalf("want InvalidIndex, got %v", err)
	}
	dup, err := v.Dup()
	if err != nil {
		t.Fatalf("Dup: %v", err)
	}
	_ = v.RemoveElement(2)
	if nv, _ := v.NVals(); nv != 1 {
		t.Fatalf("NVals after remove %d", nv)
	}
	if nv, _ := dup.NVals(); nv != 2 {
		t.Fatalf("dup affected by source mutation: %d", nv)
	}
	_ = v.Resize(3)
	if nv, _ := v.NVals(); nv != 0 {
		t.Fatalf("resize kept out-of-range entry: %d", nv)
	}
	if err := v.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if err := v.Build([]int{0, 0}, []float64{1, 2}, NoAccum[float64]()); InfoOf(err) != InvalidValue {
		t.Fatalf("duplicate build without dup accepted: %v", err)
	}
	if err := v.Build([]int{0, 0}, []float64{1, 2}, plusF64()); err != nil {
		t.Fatalf("Build with dup: %v", err)
	}
	if x, _ := v.ExtractElement(0); x != 3 {
		t.Fatalf("dup combine got %v", x)
	}
	// Build on a nonempty object must fail.
	if err := v.Build([]int{1}, []float64{1}, NoAccum[float64]()); InfoOf(err) != OutputNotEmpty {
		t.Fatalf("want OutputNotEmpty, got %v", err)
	}
	if err := v.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := v.NVals(); InfoOf(err) != UninitializedObject {
		t.Fatalf("use after free: %v", err)
	}
}

func TestMatrixObjectMethods(t *testing.T) {
	m, _ := NewMatrix[int32](3, 4)
	if nr, _ := m.NRows(); nr != 3 {
		t.Fatalf("NRows %d", nr)
	}
	if nc, _ := m.NCols(); nc != 4 {
		t.Fatalf("NCols %d", nc)
	}
	_ = m.SetElement(7, 1, 2)
	_ = m.SetElement(8, 2, 3)
	if nv, _ := m.NVals(); nv != 2 {
		t.Fatalf("NVals %d", nv)
	}
	if x, err := m.ExtractElement(1, 2); err != nil || x != 7 {
		t.Fatalf("ExtractElement %v %v", x, err)
	}
	_ = m.SetElement(9, 1, 2) // overwrite
	if x, _ := m.ExtractElement(1, 2); x != 9 {
		t.Fatalf("overwrite got %v", x)
	}
	is, js, vs, _ := m.ExtractTuples()
	if len(is) != 2 || is[0] != 1 || js[0] != 2 || vs[0] != 9 {
		t.Fatalf("tuples %v %v %v", is, js, vs)
	}
	_ = m.Resize(2, 4)
	if nv, _ := m.NVals(); nv != 1 {
		t.Fatalf("resize kept entries: %d", nv)
	}
	d, _ := m.Dup()
	_ = m.Clear()
	if nv, _ := m.NVals(); nv != 0 {
		t.Fatalf("clear: %d", nv)
	}
	if nv, _ := d.NVals(); nv != 1 {
		t.Fatalf("dup: %d", nv)
	}
}

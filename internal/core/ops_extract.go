package core

import "graphblas/internal/sparse"

// extract (Table II): C ⊙= A(i, j) and w ⊙= u(i). A nil index slice plays
// the role of GrB_ALL (Table V): all indices in order. Duplicate indices
// are permitted — extract replicates rows/columns.

// All is the GrB_ALL literal: passing it (or any nil slice) as an index list
// selects all of the object's indices in order.
var All []int

// resolveIndices expands a possibly-nil index list against extent bound,
// validating ranges. The returned slice must not be modified.
func resolveIndices(op string, indices []int, bound int) ([]int, error) {
	if indices == nil {
		all := make([]int, bound)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	for _, i := range indices {
		if i < 0 || i >= bound {
			return nil, errf(InvalidIndex, op, "index %d out of range [0,%d)", i, bound)
		}
	}
	return indices, nil
}

// checkNoDuplicates rejects index lists with repeated targets; assign
// results would otherwise be ill-defined.
func checkNoDuplicates(op string, indices []int, bound int) error {
	if indices == nil {
		return nil
	}
	seen := make([]bool, bound)
	for _, i := range indices {
		if seen[i] {
			return errf(InvalidValue, op, "duplicate index %d in assign index list", i)
		}
		seen[i] = true
	}
	return nil
}

// ExtractSubmatrix computes C ⊙= A(rows, cols) (GrB_extract on matrices;
// Figure 3 line 33 uses it with a transposed input and GrB_ALL rows). The
// descriptor's INP0 transpose applies to A before indexing.
func ExtractSubmatrix[DC, DM any](c *Matrix[DC], mask *Matrix[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows, cols []int, desc *Descriptor) error {
	const name = "ExtractSubmatrix"
	if err := checkActive(name); err != nil {
		return err
	}
	if c == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&c.obj, name, "C"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	rIdx, err := resolveIndices(name, rows, an)
	if err != nil {
		return err
	}
	cIdx, err := resolveIndices(name, cols, am)
	if err != nil {
		return err
	}
	if c.nr != len(rIdx) || c.nc != len(cIdx) {
		return errf(DimensionMismatch, name, "output is %dx%d, extraction is %dx%d", c.nr, c.nc, len(rIdx), len(cIdx))
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return errf(DimensionMismatch, name, "mask is %dx%d, output is %dx%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	reads := maskReadsM([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &c.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.ExtractCSR(ad, rIdx, cIdx)
		mm := resolveMatMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		c.setData(sparse.WriteCSR(c.mdat(), t, mm, accumF, replace))
		return nil
	})
}

// ExtractSubvector computes w ⊙= u(indices) (GrB_extract on vectors).
func ExtractSubvector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], u *Vector[DC], indices []int, desc *Descriptor) error {
	const name = "ExtractSubvector"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || u == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&u.obj, name, "u"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	idx, err := resolveIndices(name, indices, u.n)
	if err != nil {
		return err
	}
	if w.n != len(idx) {
		return errf(DimensionMismatch, name, "output has size %d, extraction has size %d", w.n, len(idx))
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&u.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	scmp, replace := desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		t := sparse.ExtractVec(u.vdat(), idx)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

// ExtractColVector computes w ⊙= A(rows, j): column j of A restricted to a
// row index list (GrB_Col_extract). With the descriptor's INP0 transpose it
// extracts row j instead.
func ExtractColVector[DC, DM any](w *Vector[DC], mask *Vector[DM], accum BinaryOp[DC, DC, DC], a *Matrix[DC], rows []int, j int, desc *Descriptor) error {
	const name = "ExtractColVector"
	if err := checkActive(name); err != nil {
		return err
	}
	if w == nil || a == nil {
		return errf(UninitializedObject, name, "nil argument")
	}
	if err := objOK(&w.obj, name, "w"); err != nil {
		return err
	}
	if err := objOK(&a.obj, name, "A"); err != nil {
		return err
	}
	if mask != nil {
		if err := objOK(&mask.obj, name, "mask"); err != nil {
			return err
		}
	}
	an, am := a.nr, a.nc
	if desc.tran0() {
		an, am = am, an
	}
	if j < 0 || j >= am {
		return errf(InvalidIndex, name, "column %d out of range [0,%d)", j, am)
	}
	rIdx, err := resolveIndices(name, rows, an)
	if err != nil {
		return err
	}
	if w.n != len(rIdx) {
		return errf(DimensionMismatch, name, "output has size %d, extraction has size %d", w.n, len(rIdx))
	}
	if mask != nil && mask.n != w.n {
		return errf(DimensionMismatch, name, "mask has size %d, output has size %d", mask.n, w.n)
	}
	reads := maskReadsV([]*obj{&a.obj}, mask)
	overwrites := !accum.Defined() && (mask == nil || desc.replace())
	tran0, scmp, replace := desc.tran0(), desc.scmp(), desc.replace()
	return enqueue(name, &w.obj, reads, overwrites, func() error {
		ad := a.mdat()
		if tran0 {
			ad = a.transposed()
		}
		t := sparse.ExtractColCSR(ad, rIdx, j)
		vm := resolveVecMask(mask, scmp)
		var accumF func(DC, DC) DC
		if accum.Defined() {
			accumF = accum.F
		}
		w.setVData(sparse.WriteVec(w.vdat(), t, vm, accumF, replace))
		return nil
	})
}

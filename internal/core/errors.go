// Package core implements the GraphBLAS objects, operations, execution
// model, and error model of "Design of the GraphBLAS API for C" (Buluç,
// Mattson, McMillan, Moreira, Yang; IPDPS-W 2017) as a Go library.
//
// The mapping from the C API is documented per construct; the broad strokes:
// opaque handles become pointers to structs with unexported fields; the
// domain polymorphism of the C API (suffixed function families plus implicit
// casts) becomes Go generics, so a GraphBLAS binary operator with domains
// D1 × D2 → D3 is a BinaryOp[D1, D2, D3]; GrB_Info return codes become Go
// errors carrying an Info code; GrB_NULL mask/accumulator/descriptor
// arguments become nil or zero values.
package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"graphblas/internal/faults"
	"graphblas/internal/parallel"
)

// Info enumerates the GraphBLAS status codes (the GrB_Info values of
// Section V and Figure 2c). Codes below ExhaustedObject are API errors,
// detected when a method is called; the rest are execution errors, which in
// nonblocking mode may surface only at Wait or at a forced completion.
type Info int

const (
	// Success reports that a method returned without error. In nonblocking
	// mode it means only that the argument consistency tests passed.
	Success Info = iota
	// NoValue is the benign "element not stored" indication returned by
	// element extraction on an absent position.
	NoValue

	// --- API errors ---

	// UninitializedObject: a GraphBLAS object argument has not been
	// initialized (nil handle or use after Free).
	UninitializedObject
	// NullPointer: a required output pointer is nil.
	NullPointer
	// InvalidValue: an argument value is invalid (e.g. nonpositive
	// dimension, duplicate assign indices, mismatched slice lengths).
	InvalidValue
	// InvalidIndex: an index argument is out of range.
	InvalidIndex
	// DomainMismatch: the domains of the arguments are incompatible.
	// Go's generics make most domain errors compile-time; this code remains
	// for the few dynamically detectable cases (e.g. malformed operators).
	DomainMismatch
	// DimensionMismatch: object dimensions are incompatible.
	DimensionMismatch
	// OutputNotEmpty: an output that must be empty has stored elements.
	OutputNotEmpty
	// UninitializedContext: a method was called before Init (this binding
	// surfaces the C API's undefined behaviour as a checkable error).
	UninitializedContext

	// --- execution errors ---

	// OutOfMemory: an allocation failed.
	OutOfMemory
	// IndexOutOfBounds: an index exceeded object bounds during execution.
	IndexOutOfBounds
	// InvalidObject: an object is in an invalid state because a previous
	// execution error occurred while computing it.
	InvalidObject
	// PanicInfo: unknown internal error (GrB_PANIC).
	PanicInfo
	// Canceled: a deferred operation was abandoned unexecuted because the
	// caller's context was canceled or its deadline expired before the flush
	// reached it (extension; see WaitContext). Execution-error class: the
	// output object is left invalid but restorable — it holds its prior
	// committed content and a later full overwrite rehabilitates it, exactly
	// as after a kernel failure.
	Canceled
)

var infoNames = map[Info]string{
	Success:              "Success",
	NoValue:              "NoValue",
	UninitializedObject:  "UninitializedObject",
	NullPointer:          "NullPointer",
	InvalidValue:         "InvalidValue",
	InvalidIndex:         "InvalidIndex",
	DomainMismatch:       "DomainMismatch",
	DimensionMismatch:    "DimensionMismatch",
	OutputNotEmpty:       "OutputNotEmpty",
	UninitializedContext: "UninitializedContext",
	OutOfMemory:          "OutOfMemory",
	IndexOutOfBounds:     "IndexOutOfBounds",
	InvalidObject:        "InvalidObject",
	PanicInfo:            "Panic",
	Canceled:             "Canceled",
}

// String returns the symbolic name of the status code.
func (i Info) String() string {
	if s, ok := infoNames[i]; ok {
		return s
	}
	return fmt.Sprintf("Info(%d)", int(i))
}

// IsAPIError reports whether the code is in the API-error class: detected at
// call time with no changes made to the method's arguments (Section V).
func (i Info) IsAPIError() bool {
	return i >= UninitializedObject && i <= UninitializedContext
}

// IsExecutionError reports whether the code is in the execution-error class.
func (i Info) IsExecutionError() bool { return i >= OutOfMemory }

// Error is the error type returned by GraphBLAS methods. It carries the
// Info code, the method name, and a human-readable message (the GrB_error()
// string of the C API).
type Error struct {
	Info Info
	Op   string
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("graphblas: %s: %v", e.Op, e.Info)
	}
	return fmt.Sprintf("graphblas: %s: %v: %s", e.Op, e.Info, e.Msg)
}

// errf builds an *Error.
func errf(info Info, op, format string, args ...any) error {
	return &Error{Info: info, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// InfoOf extracts the Info code from an error returned by this package.
// A nil error maps to Success; a non-GraphBLAS error maps to PanicInfo.
func InfoOf(err error) Info {
	if err == nil {
		return Success
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Info
	}
	return PanicInfo
}

// IsNoValue reports whether err is the benign NoValue indication.
func IsNoValue(err error) bool { return InfoOf(err) == NoValue }

// SequenceError is one entry of the per-sequence execution error log: which
// operation of the sequence failed (by method name and position in program
// order) and with what error. Wait returns only the first error of a
// sequence, as Section V specifies; SequenceErrors exposes the full log.
type SequenceError struct {
	// Pos is the zero-based position of the operation in the sequence, in
	// program order.
	Pos int
	// Op is the method name, e.g. "MxM".
	Op string
	// Err is the execution error the operation failed with.
	Err error
}

// String formats the entry for diagnostics.
func (s SequenceError) String() string {
	return fmt.Sprintf("op %d (%s): %v", s.Pos, s.Op, s.Err)
}

// faultError maps an injected fault to its GraphBLAS execution error: OOM
// faults (injected or from the allocation governor) to GrB_OUT_OF_MEMORY,
// everything else to GrB_PANIC ("unknown internal error").
func faultError(op string, f *faults.Fault) error {
	if f.Kind == faults.OOM {
		return errf(OutOfMemory, op, "%v", f)
	}
	return errf(PanicInfo, op, "unknown internal error: %v", f)
}

// recoveredError converts a recovered panic value into the matching
// execution error. A *parallel.Panic carries the worker goroutine's stack
// captured at the moment of the panic — the frames that actually name the
// faulty operator; an unwrapped value panicked on the calling goroutine, so
// the stack is taken here (deferred functions run before unwinding, so the
// faulty frames are still live). Injected faults carry no useful stack.
func recoveredError(op string, r any) error {
	var stack []byte
	if pv, ok := r.(*parallel.Panic); ok {
		r, stack = pv.Val, pv.Stack
	}
	if f, ok := r.(*faults.Fault); ok {
		return faultError(op, f)
	}
	if stack == nil {
		stack = debug.Stack()
	}
	return errf(PanicInfo, op, "unknown internal error: %v\n%s", r, trimStack(stack))
}

// trimStack reduces a debug.Stack capture to the frames that identify the
// failing code: the goroutine header and runtime/recovery plumbing frames
// are dropped and the remainder capped, so a GrB_PANIC message names the
// faulty operator without pages of scheduler noise.
func trimStack(stack []byte) string {
	const maxLines = 16
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	out := make([]string, 0, maxLines)
	skipNext := false
	for i, ln := range lines {
		if i == 0 && strings.HasPrefix(ln, "goroutine ") {
			continue
		}
		if skipNext { // file:line of a dropped frame
			skipNext = false
			continue
		}
		// A frame is a function line followed by a file:line line; function
		// lines are not indented with a tab.
		if !strings.HasPrefix(ln, "\t") {
			fn := ln
			if strings.HasPrefix(fn, "runtime.") ||
				strings.HasPrefix(fn, "runtime/debug.") ||
				strings.HasPrefix(fn, "panic(") ||
				strings.Contains(fn, "panicBox") ||
				strings.Contains(fn, "runGuarded") ||
				strings.Contains(fn, "recoveredError") {
				skipNext = true
				continue
			}
		}
		out = append(out, ln)
		if len(out) >= maxLines {
			out = append(out, "\t...")
			break
		}
	}
	return strings.Join(out, "\n")
}

package core

import "graphblas/internal/sparse"

// Import/export of raw CSR and sparse-vector content (the GrB 1.3
// import/export extension): the bridge between opaque GraphBLAS objects and
// application-owned arrays, without the framing of the serialize format.
// Exports force completion (non-opaque output); the returned slices are
// copies, so the opaque object's invariants cannot be broken from outside.

// MatrixExportCSR copies out the CSR arrays of m: rowPtr has nrows+1
// entries, colIdx and values have nvals entries, columns sorted within each
// row.
func MatrixExportCSR[D any](m *Matrix[D]) (rowPtr, colIdx []int, values []D, err error) {
	const op = "MatrixExportCSR"
	if err := objOK(&m.obj, op, "m"); err != nil {
		return nil, nil, nil, err
	}
	if err := m.obj.engine().force(op); err != nil {
		return nil, nil, nil, err
	}
	if err := invalidMark(&m.obj, op); err != nil {
		return nil, nil, nil, err
	}
	d := m.mdat()
	rowPtr = append([]int(nil), d.Ptr...)
	colIdx = append([]int(nil), d.ColIdx[:d.NNZ()]...)
	values = append([]D(nil), d.Val[:d.NNZ()]...)
	return rowPtr, colIdx, values, nil
}

// MatrixImportCSR constructs a matrix from CSR arrays, validating the
// invariants (monotone row pointers, sorted in-range columns). The arrays
// are copied; the caller keeps ownership of its slices.
func MatrixImportCSR[D any](nrows, ncols int, rowPtr, colIdx []int, values []D) (*Matrix[D], error) {
	const op = "MatrixImportCSR"
	if err := checkActive(op); err != nil {
		return nil, err
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, errf(InvalidValue, op, "dimensions must be positive, got %dx%d", nrows, ncols)
	}
	if len(rowPtr) != nrows+1 {
		return nil, errf(InvalidValue, op, "rowPtr has %d entries, want %d", len(rowPtr), nrows+1)
	}
	nnz := rowPtr[nrows]
	if rowPtr[0] != 0 || nnz < 0 || len(colIdx) != nnz || len(values) != nnz {
		return nil, errf(InvalidValue, op, "inconsistent array lengths (nnz %d, colIdx %d, values %d)", nnz, len(colIdx), len(values))
	}
	for i := 0; i < nrows; i++ {
		if rowPtr[i] > rowPtr[i+1] || rowPtr[i] < 0 || rowPtr[i+1] > nnz {
			return nil, errf(InvalidValue, op, "rowPtr decreases or escapes bounds at row %d", i)
		}
	}
	for i := 0; i < nrows; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if colIdx[p] < 0 || colIdx[p] >= ncols {
				return nil, errf(InvalidIndex, op, "column %d out of range in row %d", colIdx[p], i)
			}
			if p > rowPtr[i] && colIdx[p-1] >= colIdx[p] {
				return nil, errf(InvalidValue, op, "columns not strictly increasing in row %d", i)
			}
		}
	}
	m := &Matrix[D]{nr: nrows, nc: ncols, data: &sparse.CSR[D]{
		NRows:  nrows,
		NCols:  ncols,
		Ptr:    append([]int(nil), rowPtr...),
		ColIdx: append([]int(nil), colIdx...),
		Val:    append([]D(nil), values...),
	}}
	m.initMatrix()
	return m, nil
}

// VectorExport copies out the sorted (indices, values) content of v.
func VectorExport[D any](v *Vector[D]) (indices []int, values []D, err error) {
	const op = "VectorExport"
	if err := objOK(&v.obj, op, "v"); err != nil {
		return nil, nil, err
	}
	if err := v.obj.engine().force(op); err != nil {
		return nil, nil, err
	}
	if err := invalidMark(&v.obj, op); err != nil {
		return nil, nil, err
	}
	indices, values = v.vdat().Tuples()
	return indices, values, nil
}

// VectorImport constructs a vector of size n from sorted index/value
// arrays, validating order and range. Arrays are copied.
func VectorImport[D any](n int, indices []int, values []D) (*Vector[D], error) {
	const op = "VectorImport"
	if err := checkActive(op); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errf(InvalidValue, op, "size must be positive, got %d", n)
	}
	if len(indices) != len(values) {
		return nil, errf(InvalidValue, op, "len(indices)=%d != len(values)=%d", len(indices), len(values))
	}
	for k, i := range indices {
		if i < 0 || i >= n {
			return nil, errf(InvalidIndex, op, "index %d out of range [0,%d)", i, n)
		}
		if k > 0 && indices[k-1] >= i {
			return nil, errf(InvalidValue, op, "indices not strictly increasing at %d", k)
		}
	}
	v := &Vector[D]{n: n, data: &sparse.Vec[D]{
		N:   n,
		Idx: append([]int(nil), indices...),
		Val: append([]D(nil), values...),
	}}
	v.initVector()
	return v, nil
}

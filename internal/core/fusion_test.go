package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"graphblas/internal/faults"
	"graphblas/internal/parallel"
)

// Differential tests for the flush-time kernel fusion pass (fusion.go).
//
// The bar is byte identity: a fused flush must leave every object — and the
// sequence error log — in exactly the state the unfused reference produces,
// across blocking mode, the sequential drain, and the DAG scheduler with
// fusion disabled. The fused kernels share their fold loops with the
// materializing kernels (sparse/fused.go), so identity holds even where
// floating-point arithmetic is inexact; the tests below still keep values at
// small integers so no outcome depends on which storage layout a kernel ran
// on.
//
// Fault plans split in two by site namespace, mirroring the engine's own
// gate (faults.PlanCoversSitesOutside):
//
//   - op-name rules (and anything else outside "fuse.") make fusion stand
//     down, so the fused run must be *identical* to the references and
//     report zero fused pairs;
//   - "fuse.kernel.*" rules only ever fire under the DAG scheduler — the
//     sequential reference never reaches a fused kernel — so those plans get
//     DAG-only assertions: error attribution to the consumer's program
//     position, rollback of every logical output of the fused node, and
//     rehabilitation by a later overwrite.

// fuseOp is one step of a program over a pool of size-fuseDim vectors and a
// fixed fuseDim×fuseDim matrix: dst = op(s1).
type fuseOp struct {
	kind int // see runFuseBody
	dst  int
	s1   int
}

const (
	fusePool = 4
	fuseDim  = 6
)

func normalizeFuseOp(op fuseOp) fuseOp {
	op.kind %= 7
	op.dst %= fusePool
	op.s1 %= fusePool
	if op.s1 == op.dst {
		op.s1 = (op.s1 + 1) % fusePool
	}
	return op
}

// fuseEnv is the prepared object environment a fusion-test body runs against.
type fuseEnv struct {
	pool  []*Vector[float64]
	mask  *Vector[float64]
	a     *Matrix[float64]
	s     Semiring[float64, float64, float64]
	scale UnaryOp[float64, float64]
}

// runFusionRun executes body in the given mode/scheduler with fusion toggled,
// under the fault plan, and returns a printable fingerprint of every
// comparable outcome (error log, per-vector validity class, committed
// contents) plus the engine stats of the run.
func runFusionRun(t *testing.T, mode Mode, sched Scheduler, fuse bool, seed int64, rules []faults.Rule, body func(env *fuseEnv)) (string, Stats) {
	t.Helper()
	ResetForTesting()
	if err := Init(mode); err != nil {
		t.Fatalf("Init(%v): %v", mode, err)
	}
	SetScheduler(sched)
	SetFusion(fuse)
	if sched == SchedDag {
		prev := parallel.SetMaxWorkers(4)
		defer parallel.SetMaxWorkers(prev)
	}
	defer func() {
		faults.Disable()
		ResetForTesting()
		if err := Init(Blocking); err != nil {
			t.Fatalf("re-Init: %v", err)
		}
	}()
	SetElision(false) // keep per-site call counts aligned across modes

	// Identical environment in every mode, committed before the plan arms.
	rng := rand.New(rand.NewSource(99))
	env := &fuseEnv{
		pool:  make([]*Vector[float64], fusePool),
		s:     plusTimesF64(t),
		scale: UnaryOp[float64, float64]{Name: "scale", F: func(x float64) float64 { return 2 * x }},
	}
	env.a, _ = newTestMatrix(t, rng, fuseDim, fuseDim, 0.5)
	for i := range env.pool {
		v, err := NewVector[float64](fuseDim)
		if err != nil {
			t.Fatalf("NewVector: %v", err)
		}
		for j := 0; j < fuseDim; j++ {
			if rng.Float64() < 0.6 {
				if err := v.SetElement(float64(1+rng.Intn(9)), j); err != nil {
					t.Fatalf("SetElement: %v", err)
				}
			}
		}
		env.pool[i] = v
	}
	env.mask, _ = NewVector[float64](fuseDim)
	for j := 0; j < fuseDim; j += 2 {
		if err := env.mask.SetElement(1, j); err != nil {
			t.Fatalf("mask SetElement: %v", err)
		}
	}
	if err := Wait(); err != nil {
		t.Fatalf("pool Wait: %v", err)
	}

	faults.Configure(seed, rules...)
	body(env)
	waitErr := Wait()
	log := SequenceErrors()
	st := StatsSnapshot()

	if mode == NonBlocking {
		if len(log) > 0 && InfoOf(waitErr) != InfoOf(log[0].Err) {
			t.Fatalf("Wait error %v disagrees with log head %v", waitErr, log[0])
		}
		if len(log) == 0 && waitErr != nil {
			t.Fatalf("Wait error %v with empty log", waitErr)
		}
	}

	faults.Disable() // fingerprinting below must not inject
	var sb strings.Builder
	for _, e := range log {
		fmt.Fprintf(&sb, "err pos=%d op=%s class=%v\n", e.Pos, e.Op, InfoOf(e.Err))
	}
	for i, v := range env.pool {
		if v.err != nil {
			fmt.Fprintf(&sb, "vec%d invalid class=%v\n", i, InfoOf(v.err))
		} else {
			fmt.Fprintf(&sb, "vec%d valid\n", i)
		}
		// Committed contents compare even for invalid objects: rollback (and
		// the stub's untouched store) guarantee exactly the prior committed
		// state. vdat reads the store directly, without a validity check.
		d := committedVecTuples(v)
		keys := make([]int, 0, len(d))
		for k := range d {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "  (%d)=%v\n", k, d[k])
		}
	}
	return sb.String(), st
}

// committedVecTuples reads a vector's committed store, valid or not.
func committedVecTuples(v *Vector[float64]) map[int]float64 {
	d := v.vdat()
	out := make(map[int]float64, len(d.Idx))
	for k, i := range d.Idx {
		out[i] = d.Val[k]
	}
	return out
}

// runFuseBody issues a normalized program against the environment.
func runFuseBody(env *fuseEnv, prog []fuseOp) {
	for _, op := range prog {
		op = normalizeFuseOp(op)
		dst, u := env.pool[op.dst], env.pool[op.s1]
		switch op.kind {
		case 0: // fusion producer and consumer
			_ = ApplyV(dst, NoMaskV, NoAccum[float64](), env.scale, u, nil)
		case 1: // accumulating apply: consumer only
			_ = ApplyV(dst, NoMaskV, plusF64(), env.scale, u, nil)
		case 2: // pull-style mxv
			_ = MxV(dst, NoMaskV, NoAccum[float64](), env.s, env.a, u, nil)
		case 3: // push-style vxm
			_ = VxM(dst, NoMaskV, NoAccum[float64](), env.s, u, env.a, nil)
		case 4: // full-width accumulating assign
			_ = AssignVector(dst, NoMaskV, plusF64(), u, nil, nil)
		case 5: // masked apply: consumer with mask pushdown
			_ = ApplyV(dst, env.mask, NoAccum[float64](), env.scale, u, nil)
		case 6: // mask aliases the source: consumption must be vetoed
			_ = ApplyV(dst, u, NoAccum[float64](), env.scale, u, nil)
		}
	}
}

// fuseQuad runs one program in all four comparable configurations and
// requires byte identity, returning the fused run's stats.
func fuseQuad(t *testing.T, label string, seed int64, rules []faults.Rule, body func(env *fuseEnv)) Stats {
	t.Helper()
	blk, _ := runFusionRun(t, Blocking, SchedSequential, true, seed, rules, body)
	seq, _ := runFusionRun(t, NonBlocking, SchedSequential, true, seed, rules, body)
	unf, unfSt := runFusionRun(t, NonBlocking, SchedDag, false, seed, rules, body)
	fus, fusSt := runFusionRun(t, NonBlocking, SchedDag, true, seed, rules, body)
	if blk != seq {
		t.Fatalf("%s: blocking vs sequential diverged\n-- blocking --\n%s-- sequential --\n%s", label, blk, seq)
	}
	if blk != unf {
		t.Fatalf("%s: blocking vs dag-unfused diverged\n-- blocking --\n%s-- dag-unfused --\n%s", label, blk, unf)
	}
	if blk != fus {
		t.Fatalf("%s: blocking vs dag-fused diverged\n-- blocking --\n%s-- dag-fused --\n%s", label, blk, fus)
	}
	if unfSt.FusedPairs != 0 {
		t.Fatalf("%s: fusion disabled but FusedPairs = %d", label, unfSt.FusedPairs)
	}
	if fusSt.OpsExecuted != unfSt.OpsExecuted {
		t.Fatalf("%s: fused run executed %d ops, unfused %d — stubs must still count", label, fusSt.OpsExecuted, unfSt.OpsExecuted)
	}
	return fusSt
}

// TestFusion_DifferentialSweep: random vector programs with no fault plan
// must be byte-identical fused and unfused, and the sweep as a whole must
// actually exercise fusion.
func TestFusion_DifferentialSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	var fusedTotal int64
	for sweep := 0; sweep < 12; sweep++ {
		n := 3 + rng.Intn(6)
		prog := make([]fuseOp, n)
		for i := range prog {
			prog[i] = fuseOp{kind: rng.Intn(7), dst: rng.Intn(fusePool), s1: rng.Intn(fusePool)}
		}
		st := fuseQuad(t, fmt.Sprintf("sweep %d (prog %v)", sweep, prog), rng.Int63(), nil,
			func(env *fuseEnv) { runFuseBody(env, prog) })
		fusedTotal += st.FusedPairs
	}
	if fusedTotal == 0 {
		t.Fatalf("differential sweep never fused a pair; the sweep is not exercising fusion")
	}
}

// TestFusion_SelfDisablesUnderOpNamePlan: any rule outside the "fuse."
// namespace could observe the difference between fused and separate
// execution, so fusion must stand down — and with it disabled, the usual
// four-way identity must hold under injection.
func TestFusion_SelfDisablesUnderOpNamePlan(t *testing.T) {
	rules := []faults.Rule{
		{Site: "ApplyV", Kind: faults.KernelErr, After: 2},
		{Site: "MxV", Kind: faults.OOM, Every: 2},
		{Site: "AssignVector", Kind: faults.KernelErr, Times: 1},
		{Site: "VxM", Kind: faults.OOM, Prob: 0.5},
	}
	rng := rand.New(rand.NewSource(7))
	sawInjection := false
	for sweep := 0; sweep < 6; sweep++ {
		n := 4 + rng.Intn(5)
		prog := make([]fuseOp, n)
		for i := range prog {
			prog[i] = fuseOp{kind: rng.Intn(7), dst: rng.Intn(fusePool), s1: rng.Intn(fusePool)}
		}
		st := fuseQuad(t, fmt.Sprintf("op-name sweep %d (prog %v)", sweep, prog), rng.Int63(), rules,
			func(env *fuseEnv) { runFuseBody(env, prog) })
		if st.FusedPairs != 0 {
			t.Fatalf("sweep %d: fused %d pairs under an op-name fault plan", sweep, st.FusedPairs)
		}
		// InjectedCount was zeroed by the last run's Configure, so a nonzero
		// value here means the plan fired inside that run.
		if faults.InjectedCount() > 0 {
			sawInjection = true
		}
	}
	if !sawInjection {
		t.Fatalf("op-name plan never injected; the self-disable test is vacuous")
	}
}

// TestFusion_PairShapes drives every fusable pair shape (and the legality
// negative cases) explicitly: byte identity plus an exact fused-pair count.
// Pool roles: pool[0] = source, pool[1] = intermediate x (and pool[2] = y for
// the chain), pool[3] = refresher; an op overwriting the intermediate at the
// end makes it dead within the flush, which legality requires.
func TestFusion_PairShapes(t *testing.T) {
	apply := func(env *fuseEnv, dst, src int) {
		_ = ApplyV(env.pool[dst], NoMaskV, NoAccum[float64](), env.scale, env.pool[src], nil)
	}
	shapes := []struct {
		name  string
		pairs int64
		body  func(env *fuseEnv)
	}{
		{"apply_apply", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			apply(env, 2, 1)
			apply(env, 1, 3)
		}},
		{"apply_mxv_dot", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = MxV(env.pool[2], NoMaskV, NoAccum[float64](), env.s, env.a, env.pool[1], nil)
			apply(env, 1, 3)
		}},
		{"apply_mxv_push", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = MxV(env.pool[2], NoMaskV, NoAccum[float64](), env.s, env.a, env.pool[1], Desc().Transpose0())
			apply(env, 1, 3)
		}},
		{"apply_vxm_push", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = VxM(env.pool[2], NoMaskV, NoAccum[float64](), env.s, env.pool[1], env.a, nil)
			apply(env, 1, 3)
		}},
		{"mxv_apply", 1, func(env *fuseEnv) {
			_ = MxV(env.pool[1], NoMaskV, NoAccum[float64](), env.s, env.a, env.pool[0], nil)
			apply(env, 2, 1)
			apply(env, 1, 3)
		}},
		{"mxv_assign_accum", 1, func(env *fuseEnv) {
			_ = MxV(env.pool[1], NoMaskV, NoAccum[float64](), env.s, env.a, env.pool[0], nil)
			_ = AssignVector(env.pool[2], NoMaskV, plusF64(), env.pool[1], nil, nil)
			apply(env, 1, 3)
		}},
		{"apply_assign_noaccum", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = AssignVector(env.pool[2], NoMaskV, NoAccum[float64](), env.pool[1], nil, nil)
			apply(env, 1, 3)
		}},
		{"chain_trio", 2, func(env *fuseEnv) {
			apply(env, 1, 0)
			apply(env, 2, 1)
			_ = MxV(env.pool[3], NoMaskV, NoAccum[float64](), env.s, env.a, env.pool[2], nil)
			apply(env, 1, 0)
			apply(env, 2, 0)
		}},
		{"masked_consumer", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = ApplyV(env.pool[2], env.mask, NoAccum[float64](), env.scale, env.pool[1], nil)
			apply(env, 1, 3)
		}},
		{"accum_consumer", 1, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = ApplyV(env.pool[2], NoMaskV, plusF64(), env.scale, env.pool[1], nil)
			apply(env, 1, 3)
		}},
		// Negative cases: legality must refuse these.
		{"neg_masked_producer", 0, func(env *fuseEnv) {
			_ = ApplyV(env.pool[1], env.mask, NoAccum[float64](), env.scale, env.pool[0], nil)
			apply(env, 2, 1)
			apply(env, 1, 3)
		}},
		{"neg_accum_producer", 0, func(env *fuseEnv) {
			_ = ApplyV(env.pool[1], NoMaskV, plusF64(), env.scale, env.pool[0], nil)
			apply(env, 2, 1)
			apply(env, 1, 3)
		}},
		{"neg_second_reader", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			apply(env, 2, 1)
			apply(env, 3, 1) // x has a reader after the consumer, before any refresh
			apply(env, 1, 0)
		}},
		{"neg_escapes_flush", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			apply(env, 2, 1) // x is never refreshed: its content must materialize
		}},
		// Mask aliased to the fused source: legal by footprint (the mask and
		// the data operand are indistinguishable reads to FuseLegal), so each
		// consumer must veto it itself — the fused kernel would resolve the
		// mask from x's stale committed store while streaming x's fresh
		// values. Byte identity here is the regression bar.
		{"neg_mask_aliases_src_apply", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = ApplyV(env.pool[2], env.pool[1], NoAccum[float64](), env.scale, env.pool[1], nil)
			apply(env, 1, 3)
		}},
		{"neg_mask_aliases_src_mxv", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = MxV(env.pool[2], env.pool[1], NoAccum[float64](), env.s, env.a, env.pool[1], nil)
			apply(env, 1, 3)
		}},
		{"neg_mask_aliases_src_mxv_push", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = MxV(env.pool[2], env.pool[1], NoAccum[float64](), env.s, env.a, env.pool[1], Desc().Transpose0())
			apply(env, 1, 3)
		}},
		{"neg_mask_aliases_src_vxm", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = VxM(env.pool[2], env.pool[1], NoAccum[float64](), env.s, env.pool[1], env.a, nil)
			apply(env, 1, 3)
		}},
		{"neg_mask_aliases_src_assign", 0, func(env *fuseEnv) {
			apply(env, 1, 0)
			_ = AssignVector(env.pool[2], env.pool[1], plusF64(), env.pool[1], nil, nil)
			apply(env, 1, 3)
		}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			st := fuseQuad(t, sh.name, 1, nil, sh.body)
			if st.FusedPairs != sh.pairs {
				t.Fatalf("%s: FusedPairs = %d, want %d", sh.name, st.FusedPairs, sh.pairs)
			}
			if st.FusedOps != sh.pairs {
				t.Fatalf("%s: FusedOps = %d, want %d (one stub per pair)", sh.name, st.FusedOps, sh.pairs)
			}
		})
	}
}

// TestFusion_FusedKernelFaultRollsBackPair: a fault drawn inside a fused
// kernel is one physical failure of two logical operations. The error must
// carry the consumer's program position (the operation that actually ran),
// both outputs must be invalid with their prior committed contents intact,
// and later full overwrites must rehabilitate both. "fuse.kernel.*" plans
// fire only under the DAG scheduler — the sequential reference never reaches
// a fused kernel — so these assertions are absolute, not differential.
func TestFusion_FusedKernelFaultRollsBackPair(t *testing.T) {
	for _, kind := range []faults.Kind{faults.KernelErr, faults.OOM} {
		t.Run(kind.String(), func(t *testing.T) {
			ResetForTesting()
			if err := Init(NonBlocking); err != nil {
				t.Fatalf("Init: %v", err)
			}
			SetScheduler(SchedDag)
			prevW := parallel.SetMaxWorkers(4)
			defer parallel.SetMaxWorkers(prevW)
			defer func() {
				faults.Disable()
				ResetForTesting()
				if err := Init(Blocking); err != nil {
					t.Fatalf("re-Init: %v", err)
				}
			}()

			rng := rand.New(rand.NewSource(3))
			a, _ := newTestMatrix(t, rng, fuseDim, fuseDim, 0.5)
			mk := func(vals ...float64) *Vector[float64] {
				v, err := NewVector[float64](fuseDim)
				if err != nil {
					t.Fatalf("NewVector: %v", err)
				}
				for i, x := range vals {
					if x != 0 {
						if err := v.SetElement(x, i); err != nil {
							t.Fatalf("SetElement: %v", err)
						}
					}
				}
				return v
			}
			v0 := mk(1, 0, 2, 0, 3, 4)
			x := mk(5, 6, 0, 7, 0, 0)
			v2 := mk(0, 8, 0, 9, 0, 1)
			if err := Wait(); err != nil {
				t.Fatalf("setup Wait: %v", err)
			}
			xBefore := committedVecTuples(x)
			v2Before := committedVecTuples(v2)

			s := plusTimesF64(t)
			scale := UnaryOp[float64, float64]{Name: "scale", F: func(v float64) float64 { return 2 * v }}
			faults.Configure(1, faults.Rule{Site: "fuse.kernel.*", Kind: kind, Times: 1})

			// pos 0: producer (stubbed); pos 1: consumer (fused kernel faults);
			// pos 2: overwrites x reading the poisoned v2 — it legalizes the
			// fusion but short-circuits, so x stays invalid for the assertions.
			_ = ApplyV(x, NoMaskV, NoAccum[float64](), scale, v0, nil)
			_ = MxV(v2, NoMaskV, NoAccum[float64](), s, a, x, nil)
			_ = AssignVector(x, NoMaskV, NoAccum[float64](), v2, nil, nil)
			waitErr := Wait()
			faults.Disable()

			wantInfo := PanicInfo
			if kind == faults.OOM {
				wantInfo = OutOfMemory
			}
			if InfoOf(waitErr) != wantInfo {
				t.Fatalf("Wait = %v (class %v), want class %v", waitErr, InfoOf(waitErr), wantInfo)
			}
			log := SequenceErrors()
			if len(log) != 2 {
				t.Fatalf("error log has %d entries, want 2: %v", len(log), log)
			}
			if log[0].Pos != 1 || log[0].Op != "MxV" || InfoOf(log[0].Err) != wantInfo {
				t.Fatalf("first error = pos %d op %s class %v, want pos 1 op MxV class %v (consumer position)",
					log[0].Pos, log[0].Op, InfoOf(log[0].Err), wantInfo)
			}
			if log[1].Pos != 2 || log[1].Op != "AssignVector" || InfoOf(log[1].Err) != InvalidObject {
				t.Fatalf("second error = %+v, want pos 2 AssignVector short-circuit", log[1])
			}
			if x.err == nil || v2.err == nil {
				t.Fatalf("fused fault must invalidate both outputs: x.err=%v v2.err=%v", x.err, v2.err)
			}
			if got := committedVecTuples(x); !equalVecTuples(got, xBefore) {
				t.Fatalf("x committed content changed across failed fused flush: %v, want %v", got, xBefore)
			}
			if got := committedVecTuples(v2); !equalVecTuples(got, v2Before) {
				t.Fatalf("v2 committed content changed across failed fused flush: %v, want %v", got, v2Before)
			}
			st := StatsSnapshot()
			if st.FusedPairs != 1 {
				t.Fatalf("FusedPairs = %d, want 1", st.FusedPairs)
			}
			if st.Rollbacks == 0 {
				t.Fatalf("failed fused kernel recorded no rollback")
			}

			// Full overwrites rehabilitate both, exactly as after any kernel
			// failure.
			if err := ApplyV(x, NoMaskV, NoAccum[float64](), scale, v0, nil); err != nil {
				t.Fatalf("rehabilitating ApplyV(x): %v", err)
			}
			if err := ApplyV(v2, NoMaskV, NoAccum[float64](), scale, v0, nil); err != nil {
				t.Fatalf("rehabilitating ApplyV(v2): %v", err)
			}
			if err := Wait(); err != nil {
				t.Fatalf("rehabilitation Wait: %v", err)
			}
			if x.err != nil || v2.err != nil {
				t.Fatalf("overwrite did not rehabilitate: x.err=%v v2.err=%v", x.err, v2.err)
			}
		})
	}
}

func equalVecTuples(a, b map[int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// FuzzFusionSchedule derives a short vector program and an optional op-name
// fault rule from fuzz input and asserts the four-way identity. A zero site
// selector installs no plan, so the fused path runs live; any installed rule
// is an op-name rule, under which fusion must stand down and match anyway.
func FuzzFusionSchedule(f *testing.F) {
	// Seeds covering: plain producer-consumer chains, a fused chain under no
	// plan, each op-name rule site, and junk.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0, 0, 2, 1, 0, 1, 3})
	f.Add([]byte{0, 1, 1, 2, 5, 0, 1, 0, 2, 2, 1, 0, 1, 3, 4, 2, 1})
	f.Add([]byte{1, 0, 1, 2, 9, 0, 1, 0, 2, 2, 1, 0, 1, 3})
	f.Add([]byte{3, 1, 0, 0, 7, 3, 2, 1, 4, 0, 2, 0, 3, 1})
	// Producer followed by a consumer whose mask aliases the fused source
	// (kind 6): fusion must stand down, identity must hold.
	f.Add([]byte{0, 0, 0, 0, 5, 0, 1, 0, 6, 2, 1, 0, 1, 3})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		sites := []string{"", "ApplyV", "MxV", "VxM", "AssignVector"}
		var rules []faults.Rule
		if site := sites[int(data[0])%len(sites)]; site != "" {
			rules = []faults.Rule{{
				Site:  site,
				Kind:  []faults.Kind{faults.OOM, faults.KernelErr, faults.PanicFault}[int(data[1])%3],
				After: int(data[2]) % 3,
				Every: int(data[3]) % 3,
			}}
		}
		seed := int64(data[4])
		var prog []fuseOp
		for i := 5; i+2 < len(data) && len(prog) < 8; i += 3 {
			prog = append(prog, fuseOp{kind: int(data[i]), dst: int(data[i+1]), s1: int(data[i+2])})
		}
		if len(prog) == 0 {
			t.Skip()
		}
		st := fuseQuad(t, fmt.Sprintf("fuzz (rules %v, prog %v)", rules, prog), seed, rules,
			func(env *fuseEnv) { runFuseBody(env, prog) })
		if len(rules) > 0 && st.FusedPairs != 0 {
			t.Fatalf("fused %d pairs under an op-name fault plan", st.FusedPairs)
		}
	})
}

package core

import (
	"math/rand"
	"testing"
)

// TestExecModel_ContextLifecycle checks the once-only Init/Finalize rules of
// Section IV.
func TestExecModel_ContextLifecycle(t *testing.T) {
	ResetForTesting()
	if _, err := NewMatrix[int32](2, 2); InfoOf(err) != UninitializedContext {
		t.Fatalf("method before Init: %v", err)
	}
	if err := Wait(); InfoOf(err) != UninitializedContext {
		t.Fatalf("Wait before Init: %v", err)
	}
	if err := Init(Blocking); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if err := Init(Blocking); InfoOf(err) != InvalidValue {
		t.Fatalf("second Init: %v", err)
	}
	if err := Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// After Finalize, re-Init is only allowed because ResetForTesting was
	// used earlier in this process; exercise the strict path first.
	global.mu.Lock()
	global.reinitOK = false
	global.mu.Unlock()
	if err := Init(Blocking); InfoOf(err) != InvalidValue {
		t.Fatalf("Init after Finalize: %v", err)
	}
	ResetForTesting()
	if err := Init(Blocking); err != nil {
		t.Fatalf("re-Init via testing reset: %v", err)
	}
}

// TestExecModel_NonblockingDefersUntilForced verifies that opaque-only
// methods defer in nonblocking mode and that value-reading methods force
// completion (Section IV).
func TestExecModel_NonblockingDefersUntilForced(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		if err := a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		c, _ := NewMatrix[float64](3, 3)
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatalf("MxM: %v", err)
		}
		st := StatsSnapshot()
		if st.OpsEnqueued == 0 {
			t.Fatalf("MxM did not defer: %+v", st)
		}
		if st.OpsExecuted != 0 {
			t.Fatalf("deferred op already executed: %+v", st)
		}
		// NVals forces completion.
		nv, err := c.NVals()
		if err != nil {
			t.Fatalf("NVals: %v", err)
		}
		if nv != 3 {
			t.Fatalf("nvals %d want 3", nv)
		}
		st = StatsSnapshot()
		if st.OpsExecuted == 0 {
			t.Fatalf("force did not run deferred ops: %+v", st)
		}
	})
}

// TestExecModel_BlockingNonblockingEquivalence runs a random operation
// sequence in both modes and checks identical results — the Section IV
// guarantee ("the results from blocking and nonblocking modes should be
// identical").
func TestExecModel_BlockingNonblockingEquivalence(t *testing.T) {
	run := func(seed int64) dmat {
		rng := rand.New(rand.NewSource(seed))
		s := plusTimesF64(t)
		a, _ := newTestMatrix(t, rng, 6, 6, 0.3)
		b, _ := newTestMatrix(t, rng, 6, 6, 0.3)
		c, _ := NewMatrix[float64](6, 6)
		mask, _, _ := newTestMask(t, rng, 6, 6, 0.4, 0.8)
		for step := 0; step < 12; step++ {
			switch rng.Intn(5) {
			case 0:
				_ = MxM(c, mask, NoAccum[float64](), s, a, b, Desc().ReplaceOutput())
			case 1:
				_ = EWiseAddM(c, NoMask, plusF64(), plusF64(), a, b, nil)
			case 2:
				_ = ApplyBindSecondM(c, NoMask, NoAccum[float64](), BinaryOp[float64, float64, float64]{Name: "times", F: func(x, y float64) float64 { return x * y }}, c, 2.0, nil)
			case 3:
				_ = MxM(a, NoMask, NoAccum[float64](), s, a, b, nil)
			case 4:
				_ = Transpose(c, NoMask, NoAccum[float64](), b, Desc().Transpose0())
			}
		}
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		return denseOf(t, c)
	}
	for seed := int64(0); seed < 5; seed++ {
		var blocking, nonblocking dmat
		withMode(t, Blocking, func() { blocking = run(seed) })
		withMode(t, NonBlocking, func() { nonblocking = run(seed) })
		if len(blocking) != len(nonblocking) {
			t.Fatalf("seed %d: nvals differ %d vs %d", seed, len(blocking), len(nonblocking))
		}
		for k, v := range blocking {
			if nonblocking[k] != v {
				t.Fatalf("seed %d: (%d,%d) blocking %v nonblocking %v", seed, k.i, k.j, v, nonblocking[k])
			}
		}
	}
}

// TestExecModel_DeadStoreElimination verifies the nonblocking engine elides
// operations whose output is fully overwritten before being read.
func TestExecModel_DeadStoreElimination(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](4, 4)
		if err := a.Build([]int{0, 1, 2, 3}, []int{1, 2, 3, 0}, []float64{1, 1, 1, 1}, NoAccum[float64]()); err != nil {
			t.Fatalf("Build: %v", err)
		}
		c, _ := NewMatrix[float64](4, 4)
		// Three full overwrites of c; only the last should execute.
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		_ = Transpose(c, NoMask, NoAccum[float64](), a, nil)
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		st := StatsSnapshot()
		if st.OpsElided != 2 {
			t.Fatalf("elided %d want 2 (%+v)", st.OpsElided, st)
		}
		// Result equals the last op alone.
		want := dmat{{1, 0}: 1, {2, 1}: 1, {3, 2}: 1, {0, 3}: 1}
		equalDense(t, denseOf(t, c), want, "after elision")

		// An accumulating op reads its output: the preceding write is live.
		SetElision(true)
		c2, _ := NewMatrix[float64](4, 4)
		_ = Transpose(c2, NoMask, NoAccum[float64](), a, nil)
		_ = EWiseAddM(c2, NoMask, plusF64(), plusF64(), a, a, nil) // accum reads c2
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		st2 := StatsSnapshot()
		if st2.OpsElided != st.OpsElided {
			t.Fatalf("accumulating op elided its input: %+v", st2)
		}
	})
}

// TestExecModel_ElisionRespectsReads: an intervening read of the object
// keeps the earlier write live.
func TestExecModel_ElisionRespectsReads(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{2, 2, 2}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		d, _ := NewMatrix[float64](3, 3)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil) // write 1 of c
		_ = Transpose(d, NoMask, NoAccum[float64](), c, nil) // reads c
		_ = Transpose(c, NoMask, NoAccum[float64](), a, nil) // write 2 of c
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if st := StatsSnapshot(); st.OpsElided != 0 {
			t.Fatalf("elided %d want 0", st.OpsElided)
		}
		// d must reflect write 1: (a·a)ᵀ where a·a has 4s on the cycle squared.
		want := dmat{{2, 0}: 4, {0, 1}: 4, {1, 2}: 4}
		equalDense(t, denseOf(t, d), want, "read saw pre-overwrite value")
	})
}

// TestErrorModel_ExecutionErrorSurfaceing verifies the Section V nonblocking
// error flow: an execution error (from a user operator panic) surfaces at
// Wait, poisons the output object, and propagates InvalidObject to
// dependents, while a full overwrite rehabilitates the object.
func TestErrorModel_ExecutionError(t *testing.T) {
	withMode(t, NonBlocking, func() {
		boom := BinaryOp[float64, float64, float64]{Name: "boom", F: func(x, y float64) float64 {
			panic("operator failure")
		}}
		add, _ := NewMonoid(plusF64(), 0)
		bad, err := NewSemiring(add, boom)
		if err != nil {
			t.Fatalf("NewSemiring: %v", err)
		}
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{1, 1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		if err := MxM(c, NoMask, NoAccum[float64](), bad, a, a, nil); err != nil {
			t.Fatalf("MxM call-time error in nonblocking mode: %v", err)
		}
		err = Wait()
		if InfoOf(err) != PanicInfo {
			t.Fatalf("Wait: got %v want Panic", err)
		}
		if LastError() == "" {
			t.Fatalf("LastError empty after execution error")
		}
		// c is now invalid: reading it reports InvalidObject.
		if _, err := c.NVals(); InfoOf(err) != InvalidObject {
			t.Fatalf("NVals on invalid object: %v", err)
		}
		// Using c as an input poisons the dependent output.
		s := plusTimesF64(t)
		d, _ := NewMatrix[float64](2, 2)
		if err := MxM(d, NoMask, NoAccum[float64](), s, c, a, nil); err != nil {
			t.Fatalf("enqueue with invalid input: %v", err)
		}
		if err := Wait(); InfoOf(err) != InvalidObject {
			t.Fatalf("Wait after poisoned input: %v", err)
		}
		if _, err := d.NVals(); InfoOf(err) != InvalidObject {
			t.Fatalf("dependent not poisoned: %v", err)
		}
		// A full overwrite rehabilitates c.
		if err := Transpose(c, NoMask, NoAccum[float64](), a, nil); err != nil {
			t.Fatalf("Transpose: %v", err)
		}
		if nv, err := c.NVals(); err != nil || nv != 2 {
			t.Fatalf("rehabilitated object: nv=%d err=%v", nv, err)
		}
	})
}

// TestErrorModel_BlockingReportsImmediately: in blocking mode execution
// errors come back from the method itself.
func TestErrorModel_BlockingReportsImmediately(t *testing.T) {
	boom := UnaryOp[float64, float64]{Name: "boom", F: func(float64) float64 { panic("bad op") }}
	a, _ := NewMatrix[float64](2, 2)
	_ = a.Build([]int{0}, []int{1}, []float64{1}, NoAccum[float64]())
	c, _ := NewMatrix[float64](2, 2)
	err := ApplyM(c, NoMask, NoAccum[float64](), boom, a, nil)
	if InfoOf(err) != PanicInfo {
		t.Fatalf("blocking mode execution error: %v", err)
	}
}

// TestExecModel_WaitEquivalence: a nonblocking sequence with Wait after
// every method equals blocking mode (the Section IV equivalence).
func TestExecModel_WaitEquivalence(t *testing.T) {
	var viaWaits, blocking dmat
	seq := func(waitEach bool) dmat {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		if waitEach {
			if err := Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
		}
		_ = EWiseAddM(c, NoMask, plusF64(), plusF64(), c, a, nil)
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		return denseOf(t, c)
	}
	withMode(t, NonBlocking, func() { viaWaits = seq(true) })
	withMode(t, Blocking, func() { blocking = seq(false) })
	if len(viaWaits) != len(blocking) {
		t.Fatalf("nvals differ: %d vs %d", len(viaWaits), len(blocking))
	}
	for k, v := range blocking {
		if viaWaits[k] != v {
			t.Fatalf("(%d,%d): %v vs %v", k.i, k.j, viaWaits[k], v)
		}
	}
}

// TestExecModel_ElisionMaskAlias: when a later overwriting op uses the
// earlier output as its *mask*, that is a read and blocks elision.
func TestExecModel_ElisionMaskAlias(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](3, 3)
		_ = a.Build([]int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 1, 1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](3, 3)
		// Write 1: c = a·a (full overwrite).
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		// Write 2: c⟨c⟩ = aᵀ·a with replace — "overwrites" by the flag, but
		// the mask reads c's prior content.
		_ = MxM(c, c, NoAccum[float64](), s, a, a, Desc().Transpose0().ReplaceOutput())
		if err := Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if st := StatsSnapshot(); st.OpsElided != 0 {
			t.Fatalf("mask read elided: %+v", st)
		}
		// Semantics check: a is a cyclic permutation so a·a is also a
		// permutation with entries at (0,2),(1,0),(2,1); aᵀ·a is the
		// identity pattern. The masked product keeps only positions where
		// the first product had entries — the intersection is empty.
		if nv, _ := c.NVals(); nv != 0 {
			t.Fatalf("masked overwrite nvals %d want 0", nv)
		}
	})
}

// TestExecModel_ForceIsScoped: after a force, further ops defer again.
func TestExecModel_RequeueAfterForce(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{1, 1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		if _, err := c.NVals(); err != nil {
			t.Fatal(err)
		}
		before := StatsSnapshot()
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		after := StatsSnapshot()
		if after.OpsEnqueued != before.OpsEnqueued+1 {
			t.Fatalf("op after force did not defer: %+v -> %+v", before, after)
		}
		if after.OpsExecuted != before.OpsExecuted {
			t.Fatalf("op after force ran eagerly: %+v -> %+v", before, after)
		}
	})
}

// TestExecModel_ResizeInSequence: dimension metadata updates eagerly (API
// checks see program-order dims) while the storage trim defers; the final
// state must match program order regardless.
func TestExecModel_ResizeInSequence(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](4, 4)
		_ = a.Build([]int{0, 1, 2, 3}, []int{1, 2, 3, 0}, []float64{1, 1, 1, 1}, NoAccum[float64]())
		c, _ := NewMatrix[float64](4, 4)
		// Enqueue a product at 4x4, then shrink c: the product runs first,
		// the trim second.
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Resize(2, 2); err != nil {
			t.Fatal(err)
		}
		// After the resize, API checks see 2x2: a 4x4 op must be rejected.
		if err := MxM(c, NoMask, NoAccum[float64](), s, a, a, nil); InfoOf(err) != DimensionMismatch {
			t.Fatalf("post-resize op accepted: %v", err)
		}
		if err := Wait(); err != nil {
			t.Fatal(err)
		}
		nr, _ := c.NRows()
		nv, _ := c.NVals()
		// a·a on the 4-cycle has entries (0,2),(1,3),(2,0),(3,1); the 2x2
		// trim keeps none of them... except (0,2),(1,3) drop, (2,0),(3,1)
		// drop: all outside 2x2.
		if nr != 2 || nv != 0 {
			t.Fatalf("resize sequence: %dx nvals %d", nr, nv)
		}

		// Growing mid-sequence also follows program order.
		v, _ := NewVector[float64](2)
		_ = v.SetElement(1, 1)
		if err := v.Resize(5); err != nil {
			t.Fatal(err)
		}
		if err := v.SetElement(2, 4); err != nil { // valid only post-resize
			t.Fatal(err)
		}
		idx, _, err := v.ExtractTuples()
		if err != nil || len(idx) != 2 {
			t.Fatalf("grow sequence: %v %v", idx, err)
		}
	})
}

// TestObjectScopedWait: the 1.3-style per-object Wait completes pending
// work and reports the invalid state of a poisoned object.
func TestObjectScopedWait(t *testing.T) {
	withMode(t, NonBlocking, func() {
		s := plusTimesF64(t)
		a, _ := NewMatrix[float64](2, 2)
		_ = a.Build([]int{0, 1}, []int{1, 0}, []float64{2, 3}, NoAccum[float64]())
		c, _ := NewMatrix[float64](2, 2)
		_ = MxM(c, NoMask, NoAccum[float64](), s, a, a, nil)
		if st := StatsSnapshot(); st.OpsExecuted != 0 {
			t.Fatalf("ran early: %+v", st)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		if st := StatsSnapshot(); st.OpsExecuted == 0 {
			t.Fatalf("Wait did not force: %+v", st)
		}
		// Poisoned object reports InvalidObject from Wait.
		boom := UnaryOp[float64, float64]{Name: "boom", F: func(float64) float64 { panic("x") }}
		d, _ := NewMatrix[float64](2, 2)
		_ = ApplyM(d, NoMask, NoAccum[float64](), boom, a, nil)
		if err := Wait(); InfoOf(err) != PanicInfo {
			t.Fatalf("sequence error: %v", err)
		}
		if err := d.Wait(); InfoOf(err) != InvalidObject {
			t.Fatalf("object wait on poisoned: %v", err)
		}
		// Vector form.
		v, _ := NewVector[float64](3)
		_ = v.SetElement(1, 1)
		if err := v.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

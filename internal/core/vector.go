package core

import (
	"sync"

	"graphblas/internal/sparse"
)

// Vector is the opaque GraphBLAS vector v = ⟨D, N, {(i, v_i)}⟩ of Section
// III-A: a domain D, a size N > 0, and a set of stored (index, value)
// tuples. Elements that are not stored are undefined — not implicit zeros —
// which is what lets the semiring change between operations without
// reinterpreting the stored data.
//
// Vectors are not safe for concurrent mutation; the paper's execution model
// permits sharing between threads only for read-only objects.
type Vector[D any] struct {
	obj
	// n is the logical size. Resize rewrites it while enqueued closures may
	// still be running on flush workers, so deferred code must read it
	// through size() and writes must hold mu. grblint:guarded
	n    int
	data *sparse.Vec[D]

	// pending buffers single-element updates; see Matrix.pending.
	pending []sparse.Tuple[D]
	mu      sync.Mutex
}

// setVData replaces the storage and drops buffered updates.
func (v *Vector[D]) setVData(d *sparse.Vec[D]) {
	v.mu.Lock()
	v.data = d
	v.pending = nil
	v.mu.Unlock()
}

// vdat returns the up-to-date storage, merging buffered point updates
// first. Safe for concurrent readers.
func (v *Vector[D]) vdat() *sparse.Vec[D] {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.pending) > 0 {
		v.data = sparse.ApplyVecTuples(v.data, v.pending)
		v.pending = nil
	}
	return v.data
}

// initVector stamps a fresh identity and registers the transactional
// snapshot hook; see Matrix.initMatrix.
func (v *Vector[D]) initVector() {
	v.initObj()
	v.snapshot = v.snapshotState
}

// snapshotState captures the vector's committed store and returns a closure
// restoring it; see Matrix.snapshotState.
func (v *Vector[D]) snapshotState() func() {
	v.mu.Lock()
	data := v.data
	pending := append([]sparse.Tuple[D](nil), v.pending...)
	v.mu.Unlock()
	return func() {
		v.mu.Lock()
		v.data = data
		v.pending = pending
		v.mu.Unlock()
	}
}

// NewVector creates a vector of size n (GrB_Vector_new). n must be
// positive.
func NewVector[D any](n int) (*Vector[D], error) {
	if err := checkActive("NewVector"); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errf(InvalidValue, "NewVector", "size must be positive, got %d", n)
	}
	v := &Vector[D]{n: n, data: sparse.NewVec[D](n)}
	v.initVector()
	return v, nil
}

// size returns the logical size under the object lock; see Matrix.dims for
// why concurrent readers must not touch v.n bare.
func (v *Vector[D]) size() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.n
}

// Size reports the vector's size N (GrB_Vector_size). Dimension metadata is
// maintained eagerly, so this never forces pending operations.
func (v *Vector[D]) Size() (int, error) {
	if err := objOK(&v.obj, "Vector.Size", "v"); err != nil {
		return 0, err
	}
	return v.size(), nil
}

// NVals reports the number of stored elements (GrB_Vector_nvals). Reading a
// value out of an opaque object forces completion of the pending sequence.
func (v *Vector[D]) NVals() (int, error) {
	if err := objOK(&v.obj, "Vector.NVals", "v"); err != nil {
		return 0, err
	}
	if err := v.obj.engine().force("Vector.NVals"); err != nil {
		return 0, err
	}
	if err := invalidMark(&v.obj, "Vector.NVals"); err != nil {
		return 0, err
	}
	return v.vdat().NVals(), nil
}

// Clear removes all stored elements (GrB_Vector_clear). May defer.
func (v *Vector[D]) Clear() error {
	if err := objOK(&v.obj, "Vector.Clear", "v"); err != nil {
		return err
	}
	return enqueue("Vector.Clear", &v.obj, nil, true, func() error {
		// Executes on a flush worker; read the size under the lock in case
		// the user goroutine Resizes while the flush is in flight.
		v.setVData(sparse.NewVec[D](v.size()))
		return nil
	})
}

// Dup creates a new vector with the same domain, size, and content
// (GrB_Vector_dup). The copy itself may defer.
func (v *Vector[D]) Dup() (*Vector[D], error) {
	if err := objOK(&v.obj, "Vector.Dup", "v"); err != nil {
		return nil, err
	}
	w := &Vector[D]{n: v.n, data: sparse.NewVec[D](v.n)}
	w.initVector()
	w.obj.ctx = v.obj.ctx // the copy lives in the source's execution context
	err := enqueue("Vector.Dup", &w.obj, []*obj{&v.obj}, true, func() error {
		w.setVData(v.vdat().Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Resize changes the size of the vector, dropping elements at indices >= n
// (spec 1.3 extension). Dimension metadata updates eagerly; the storage trim
// may defer.
func (v *Vector[D]) Resize(n int) error {
	if err := objOK(&v.obj, "Vector.Resize", "v"); err != nil {
		return err
	}
	if n <= 0 {
		return errf(InvalidValue, "Vector.Resize", "size must be positive, got %d", n)
	}
	// Eager metadata update, but under the object lock: deferred operations
	// from before this call may still be running on flush workers and read
	// the size through size(). Rollback semantics are unchanged — a failed
	// trim restores storage only, the new size stays.
	v.mu.Lock()
	v.n = n
	v.mu.Unlock()
	return enqueue("Vector.Resize", &v.obj, nil, false, func() error {
		// Clone before trimming so rollback can restore the committed store.
		d := v.vdat().Clone()
		d.Resize(n)
		v.setVData(d)
		return nil
	})
}

// Build populates an empty vector from index/value arrays, combining
// duplicates with dup (GrB_Vector_build). Per the execution model, a method
// whose inputs are non-opaque arrays may not defer, so Build forces the
// pending sequence and executes immediately. If dup is not defined,
// duplicate indices are an InvalidValue error.
func (v *Vector[D]) Build(indices []int, values []D, dup BinaryOp[D, D, D]) error {
	const op = "Vector.Build"
	if err := objOK(&v.obj, op, "v"); err != nil {
		return err
	}
	if len(indices) != len(values) {
		return errf(InvalidValue, op, "len(indices)=%d != len(values)=%d", len(indices), len(values))
	}
	for _, i := range indices {
		if i < 0 || i >= v.n {
			return errf(InvalidIndex, op, "index %d out of range [0,%d)", i, v.n)
		}
	}
	if err := v.obj.engine().force(op); err != nil {
		return err
	}
	if err := invalidMark(&v.obj, op); err != nil {
		return err
	}
	if nnz := v.vdat().NVals(); nnz != 0 {
		return errf(OutputNotEmpty, op, "vector already has %d stored elements", nnz)
	}
	var dupF func(D, D) D
	if dup.Defined() {
		dupF = dup.F
	}
	built, ok := sparse.BuildVec(v.n, indices, values, dupF)
	if !ok {
		return errf(InvalidValue, op, "duplicate index with no dup operator")
	}
	v.setVData(built)
	return nil
}

// SetElement stores x at index i (GrB_Vector_setElement). Scalar inputs may
// defer.
func (v *Vector[D]) SetElement(x D, i int) error {
	if err := objOK(&v.obj, "Vector.SetElement", "v"); err != nil {
		return err
	}
	if i < 0 || i >= v.n {
		return errf(InvalidIndex, "Vector.SetElement", "index %d out of range [0,%d)", i, v.n)
	}
	return enqueue("Vector.SetElement", &v.obj, nil, false, func() error {
		v.mu.Lock()
		v.pending = append(v.pending, sparse.Tuple[D]{I: i, V: x})
		v.mu.Unlock()
		return nil
	})
}

// RemoveElement deletes the element at index i if present
// (GrB_Vector_removeElement).
func (v *Vector[D]) RemoveElement(i int) error {
	if err := objOK(&v.obj, "Vector.RemoveElement", "v"); err != nil {
		return err
	}
	if i < 0 || i >= v.n {
		return errf(InvalidIndex, "Vector.RemoveElement", "index %d out of range [0,%d)", i, v.n)
	}
	return enqueue("Vector.RemoveElement", &v.obj, nil, false, func() error {
		v.mu.Lock()
		v.pending = append(v.pending, sparse.Tuple[D]{I: i, Del: true})
		v.mu.Unlock()
		return nil
	})
}

// ExtractElement returns the element at index i (GrB_Vector_extractElement).
// Absent elements return a NoValue error. Forces completion.
func (v *Vector[D]) ExtractElement(i int) (D, error) {
	var zero D
	if err := objOK(&v.obj, "Vector.ExtractElement", "v"); err != nil {
		return zero, err
	}
	if i < 0 || i >= v.n {
		return zero, errf(InvalidIndex, "Vector.ExtractElement", "index %d out of range [0,%d)", i, v.n)
	}
	if err := v.obj.engine().force("Vector.ExtractElement"); err != nil {
		return zero, err
	}
	if err := invalidMark(&v.obj, "Vector.ExtractElement"); err != nil {
		return zero, err
	}
	if x, ok := v.vdat().Get(i); ok {
		return x, nil
	}
	return zero, errf(NoValue, "Vector.ExtractElement", "no element stored at index %d", i)
}

// ExtractTuples copies the stored (index, value) pairs out of the opaque
// object in index order (GrB_Vector_extractTuples). Forces completion.
func (v *Vector[D]) ExtractTuples() ([]int, []D, error) {
	if err := objOK(&v.obj, "Vector.ExtractTuples", "v"); err != nil {
		return nil, nil, err
	}
	if err := v.obj.engine().force("Vector.ExtractTuples"); err != nil {
		return nil, nil, err
	}
	if err := invalidMark(&v.obj, "Vector.ExtractTuples"); err != nil {
		return nil, nil, err
	}
	idx, val := v.vdat().Tuples()
	return idx, val, nil
}

// Free destroys the vector (GrB_free). Pending operations involving it
// complete first; afterwards any use returns UninitializedObject.
func (v *Vector[D]) Free() error {
	if v == nil || !v.initialized {
		return nil // freeing an uninitialized object is a no-op, as in C
	}
	if err := v.obj.engine().force("Vector.Free"); err != nil {
		return err
	}
	v.initialized = false
	v.data = nil
	return nil
}

package core

// Flush-time kernel fusion. Section IV lets a nonblocking implementation
// defer, reorder, *and transform* queued methods as long as the committed
// results agree with program order; dead-store elimination (markElidable)
// already exploits the "skip" freedom, and this file exploits the "combine"
// freedom: when the hazard DAG shows a producer whose materialized output is
// consumed by exactly one later operation and then dies, the pair collapses
// into one fused node that evaluates the producer's computation inside the
// consumer's kernel, never building the intermediate vector at all.
//
// The mechanism is deliberately structural, not kind-specific:
//
//   - An operation that can *produce* attaches a payload — a vecSource
//     describing its output as a virtual sparse vector (a cursor over
//     (index, value) pairs computed on demand).
//   - An operation that can *consume* attaches a callback that, handed a
//     compatible payload, returns a replacement run closure calling one of
//     internal/sparse's fused kernels, plus (when the combined computation is
//     itself side-effect-free) a chained payload so fusion composes across
//     longer producer chains (apply∘apply→mxv and the like).
//   - planFusion pairs them up under dataflow.FuseLegal, which proves from
//     the access footprints alone that skipping the materialization is a dead
//     store and that every operand the fused kernel will read still holds the
//     value the producer would have seen.
//
// The producer is *not* removed from the schedule: it degrades into a stub
// that keeps its program position — its validity checks, its sequence-gate
// slot, and its slot in the error log all still happen at the right place —
// but performs no work (runOpAt short-cuts it to OutcomeFused). Keeping the
// node preserves every observable ordering the unfused engine has: error-log
// positions, fault-plan draw order, and the hazard edges later operations
// formed against the producer's write.
//
// Fusion is a DAG-scheduler feature (SchedSequential stays the unfused
// reference semantics for differential testing) and disables itself whenever
// a fault plan contains any rule outside the "fuse." namespace: an injected
// failure of an unfused producer has no fused counterpart, so replaying such
// a plan fused would diverge from the sequential schedule. Plans confined to
// the fuse.kernel.* sites target exactly the fused kernels and exercise the
// fused rollback path: a fault there invalidates the consumer's output *and*
// every fused-away intermediate (pendingOp.fusedOuts), attributing the error
// to the consumer's program position — the one operation that actually ran.

import (
	"graphblas/internal/dataflow"
	"graphblas/internal/sparse"
)

// vecSource is the fusion handshake: a virtual sparse vector of domain T.
// vecElems returns the vector's logical dimension, its sorted index list,
// and a cursor producing the stored value at position p of that list. The
// cursor contract matches the fused kernels in internal/sparse: get is
// invoked at most once per position — in increasing position order from one
// goroutine by the streaming kernels (map, dot scatter, assign), but
// possibly concurrently and out of order by the push kernel's parallel
// scatter — so get must be a pure function of committed state. Every source
// here is: each closes over immutable committed stores and operator
// closures. vecElems itself runs inside the consumer's kernel, after every
// hazard edge ordering it behind the operands' writers, so sources read
// their operands' committed stores directly.
type vecSource[T any] interface {
	vecElems() (n int, idx []int, get func(p int) T)
}

// applySource is ApplyV's producer payload: its output viewed as f mapped
// over the stored values of u, without materializing.
type applySource[DA, DC any] struct {
	u *Vector[DA]
	f func(DA) DC
}

func (s applySource[DA, DC]) vecElems() (int, []int, func(p int) DC) {
	d := s.u.vdat()
	f, val := s.f, d.Val
	return d.N, d.Idx, func(p int) DC { return f(val[p]) }
}

// composedSource chains a unary map over another virtual vector — the
// payload a fused apply offers downstream, so apply∘apply∘…→consumer
// collapses into a single kernel.
type composedSource[DA, DC any] struct {
	inner vecSource[DA]
	f     func(DA) DC
}

func (s composedSource[DA, DC]) vecElems() (int, []int, func(p int) DC) {
	n, idx, get := s.inner.vecElems()
	f := s.f
	return n, idx, func(p int) DC { return f(get(p)) }
}

// mxvSource wraps a matrix-vector product as a virtual vector. The product
// is inherently gather-shaped — every output entry folds a whole row or
// column — so the source materializes it on first use (inside the consuming
// kernel) and streams the result; what fusion elides is the *committed*
// intermediate object, its snapshot, and its store swap, not the arithmetic.
type mxvSource[DC any] struct {
	compute func() *sparse.Vec[DC]
}

func (s mxvSource[DC]) vecElems() (int, []int, func(p int) DC) {
	t := s.compute()
	val := t.Val
	return t.N, t.Idx, func(p int) DC { return val[p] }
}

// fuseInfo is the fusion capability descriptor an operation attaches at
// enqueue time (enqueueFusable). All fields are optional: an op may be only
// a producer, only a consumer, or neither under its current arguments.
type fuseInfo struct {
	// producer is the virtual-vector payload this op offers a downstream
	// consumer instead of materializing its output; nil when the op cannot
	// stream (a mask or accumulator makes its output depend on the prior
	// committed content, which a virtual view cannot express).
	producer any
	// srcID identifies the operand this op could consume a fused stream
	// for — the object whose producing operation would be fused away.
	srcID uint64
	// consume attempts to absorb a producer payload for the srcID operand.
	// On success it returns the replacement run closure (calling a fused
	// kernel from internal/sparse) and the payload *this* op's output should
	// present to consumers further down the chain (nil when the fused result
	// is merged/masked into prior content and cannot stream onward).
	// ok is false when the payload's domain does not match.
	//
	// Ops must leave consume nil when their mask is the srcID operand
	// itself. The fused kernels resolve the mask from its committed store at
	// run time, but fusing stubs the producer so the source's store is never
	// refreshed: a mask aliasing the source would filter through the *stale*
	// content while the kernel streams the fresh values. dataflow.FuseLegal
	// cannot veto this case — footprints list the mask and the data operand
	// as indistinguishable reads — so the veto lives here, where the mask's
	// identity is known. (Transitive aliasing needs no guard: a mask reading
	// a fused-away intermediate from *outside* the pair is a plain read of X
	// after j, which FuseLegal already rejects.)
	consume func(src any) (run func() error, chained any, ok bool)
}

// planFusion is the flush-time fusion pass. It scans the runnable queue in
// program order, pairing each fusion-capable consumer with the most recent
// writer of its source operand when dataflow.FuseLegal proves the pair
// collapsible, and rewrites both pending operations in place:
//
//   - the consumer's run closure is replaced by the fused kernel, its read
//     set is extended with the producer's reads (the fused kernel evaluates
//     them at the consumer's position, so the hazard graph must order it
//     against their writers exactly as it ordered the producer), and the
//     fused-away output is recorded in fusedOuts so a fused-kernel failure
//     invalidates both logical results;
//   - the producer becomes a stub (fusedStub): it keeps its program position
//     and validity semantics but runs no kernel.
//
// metas is mutated in step with the nodes (extended consumer read sets) and
// must be the slice later handed to dataflow.Build. Chains fuse through the
// consumers' chained payloads: once (i,j) fuses, node j's offered payload is
// the composition, so a later consumer of j's output folds all three. The
// scan is greedy in program order, which is optimal for linear chains — the
// only shape the pairwise legality predicate admits, since fusing (i,j)
// requires j to be X's sole reader.
//
// Returns the number of pairs fused. Caller holds the context lock; the
// rewrites touch only the pending ops themselves.
func planFusion(nodes []*pendingOp, metas []dataflow.OpMeta) int {
	fused := 0
	// payload[i] is the virtual-vector view of nodes[i]'s output as of the
	// current rewrite state: the op's own offer, or the chained composition
	// after the op itself consumed an upstream producer.
	payload := make([]any, len(nodes))
	lastWriter := make(map[uint64]int, len(nodes))
	for j, cons := range nodes {
		if cons.fuse != nil {
			payload[j] = cons.fuse.producer
		}
		if cons.fuse != nil && cons.fuse.consume != nil {
			if i, ok := lastWriter[cons.fuse.srcID]; ok {
				prod := nodes[i]
				if !prod.fusedStub && payload[i] != nil && dataflow.FuseLegal(metas, i, j) {
					if run, chained, ok := cons.fuse.consume(payload[i]); ok {
						cons.run = run
						// The fused kernel computes every fused-away ancestor's
						// value: a failure there must invalidate them all.
						cons.fusedOuts = append(append([]*obj(nil), prod.fusedOuts...), prod.out)
						// Extend the consumer's footprint with the producer's
						// reads — appended after the originals so the validity
						// scan reports the same first-invalid operand as the
						// unfused pair would.
						cons.reads = append(append([]*obj(nil), cons.reads...), prod.reads...)
						metas[j].Reads = append(metas[j].Reads, metas[i].Reads...)
						payload[j] = chained
						prod.fusedStub = true
						fused++
					}
				}
			}
		}
		lastWriter[metas[j].Out] = j
	}
	return fused
}
